// Command greyctl is the operator's view of a running daemon's live
// observatory (greylistd or mailflow with -admin-addr): it fetches the
// versioned /observatory snapshot and renders the windowed rollups the
// daemon streams on its hot path.
//
// Usage:
//
//	greyctl [-addr http://127.0.0.1:9925] [-windows N] [-k K] <command>
//
//	greyctl top [set]     # heavy hitters per top-K set (or one set)
//	greyctl delay         # quantile sketches: retry delay, check latency, ...
//	greyctl stages        # per-window counters: verdicts, bypass stages, WAL
//	greyctl watch         # poll and print one line per closed window
//	greyctl health        # GET /healthz and print the readiness report
//
// top prints each set's estimated counts with the Space-Saving error
// bound (true count lies in [count-err, count]). delay prints each
// sketch's p50/p90/p99/p999 capped at the exact max — quantiles are
// bucket upper edges, so they never understate. watch tracks window
// sequence numbers and prints a summary line whenever a window closes
// (-interval tunes the poll; -n bounds the iterations for scripting).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "greyctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("greyctl", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:9925", "daemon admin listener base URL")
		windows  = fs.Int("windows", 0, "closed windows to fetch (0 = the whole ring)")
		k        = fs.Int("k", 0, "top-K entries per set (0 = the daemon's default)")
		interval = fs.Duration("interval", 2*time.Second, "watch: poll interval")
		iters    = fs.Int("n", 0, "watch: stop after this many polls (0 = forever)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: greyctl [flags] top|delay|stages|watch|health (see -h)")
	}
	c := &client{base: strings.TrimSuffix(*addr, "/"), windows: *windows, k: *k}
	switch cmd := fs.Arg(0); cmd {
	case "top":
		return c.top(out, fs.Arg(1))
	case "delay":
		return c.delay(out)
	case "stages":
		return c.stages(out)
	case "watch":
		return c.watch(out, *interval, *iters)
	case "health":
		return c.health(out)
	default:
		return fmt.Errorf("unknown command %q (want top, delay, stages, watch or health)", cmd)
	}
}

type client struct {
	base    string
	windows int
	k       int
}

// snapshot fetches and decodes /observatory.
func (c *client) snapshot() (*obs.Snapshot, error) {
	url := fmt.Sprintf("%s/observatory?windows=%d&k=%d", c.base, c.windows, c.k)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	if snap.Version != obs.SnapshotVersion {
		return nil, fmt.Errorf("snapshot version %d, greyctl speaks %d", snap.Version, obs.SnapshotVersion)
	}
	return &snap, nil
}

// span renders the merged view's coverage for report headers.
func span(snap *obs.Snapshot) string {
	return fmt.Sprintf("%d closed windows of %v + the open one",
		len(snap.Recent), time.Duration(snap.WindowNs))
}

// top renders the heavy-hitter sets (or just the named one).
func (c *client) top(out io.Writer, set string) error {
	snap, err := c.snapshot()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(snap.Merged.TopK))
	for name := range snap.Merged.TopK {
		if set != "" && name != set {
			continue
		}
		names = append(names, name)
	}
	if set != "" && len(names) == 0 {
		return fmt.Errorf("no top-K set %q (have: %s)", set, strings.Join(topkNames(snap), ", "))
	}
	sort.Strings(names)
	fmt.Fprintf(out, "top talkers over %s\n", span(snap))
	for _, name := range names {
		entries := snap.Merged.TopK[name]
		if len(entries) == 0 {
			continue
		}
		fmt.Fprintf(out, "\n%s:\n", name)
		tbl := stats.NewTable("KEY", "COUNT", "ERR")
		for _, e := range entries {
			tbl.AddRow(e.Key, fmt.Sprintf("%d", e.Count), fmt.Sprintf("≤%d", e.ErrMax))
		}
		fmt.Fprint(out, tbl.String())
	}
	return nil
}

func topkNames(snap *obs.Snapshot) []string {
	names := make([]string, 0, len(snap.Merged.TopK))
	for name := range snap.Merged.TopK {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// delay renders every quantile sketch.
func (c *client) delay(out io.Writer) error {
	snap, err := c.snapshot()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(snap.Merged.Sketches))
	for name := range snap.Merged.Sketches {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "latency/delay sketches over %s (relative error %.1f%%)\n\n",
		span(snap), 100*snap.RelativeError)
	tbl := stats.NewTable("SKETCH", "COUNT", "MEAN", "P50", "P90", "P99", "P99.9", "MAX")
	for _, name := range names {
		v := snap.Merged.Sketches[name]
		tbl.AddRow(name, fmt.Sprintf("%d", v.Count),
			inUnit(v.Mean, v.Unit), inUnit(v.P50, v.Unit), inUnit(v.P90, v.Unit),
			inUnit(v.P99, v.Unit), inUnit(v.P999, v.Unit), inUnit(v.Max, v.Unit))
	}
	fmt.Fprint(out, tbl.String())
	return nil
}

// stages renders the counter deltas: merged totals plus the open window.
func (c *client) stages(out io.Writer) error {
	snap, err := c.snapshot()
	if err != nil {
		return err
	}
	names := make([]string, 0, len(snap.Merged.Counters))
	for name := range snap.Merged.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(out, "counters over %s\n\n", span(snap))
	tbl := stats.NewTable("COUNTER", "TOTAL", "OPEN WINDOW")
	for _, name := range names {
		tbl.AddRow(name, fmt.Sprintf("%d", snap.Merged.Counters[name]),
			fmt.Sprintf("%d", snap.Current.Counters[name]))
	}
	fmt.Fprint(out, tbl.String())
	return nil
}

// watch polls the observatory and prints one summary line per closed
// window, diffing by window sequence number so a slow poll that misses
// a rotation reports every window it can still see.
func (c *client) watch(out io.Writer, interval time.Duration, iters int) error {
	lastSeq := uint64(0)
	for i := 0; iters <= 0 || i < iters; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		snap, err := c.snapshot()
		if err != nil {
			return err
		}
		// Recent is newest-first; walk backward so lines print oldest
		// first.
		for j := len(snap.Recent) - 1; j >= 0; j-- {
			w := snap.Recent[j]
			if w.Seq <= lastSeq {
				continue
			}
			lastSeq = w.Seq
			fmt.Fprintln(out, windowLine(&w))
		}
	}
	return nil
}

// windowLine is one closed window's summary: verdict deltas, the retry
// delay p99 and the top deferred client.
func windowLine(w *obs.Window) string {
	checks := w.Counters["greylist.checks"]
	deferred := w.Counters["greylist.deferred.first_seen"] +
		w.Counters["greylist.deferred.too_soon"] +
		w.Counters["greylist.deferred.window_expired"]
	var passed uint64
	for name, v := range w.Counters {
		if strings.HasPrefix(name, "greylist.passed.") {
			passed += v
		}
	}
	line := fmt.Sprintf("window %d %s: checks=%d deferred=%d passed=%d",
		w.Seq, time.Unix(0, w.StartUnixNs).UTC().Format("15:04:05"), checks, deferred, passed)
	if v, ok := w.Sketches[obs.SketchRetryDelay]; ok && v.Count > 0 {
		line += fmt.Sprintf(" retry_p99=%s", inUnit(v.P99, v.Unit))
	}
	if top := w.TopK[obs.TopClientsDeferred]; len(top) > 0 {
		line += fmt.Sprintf(" top_deferred=%s(%d)", top[0].Key, top[0].Count)
	}
	return line
}

// health fetches /healthz and prints the body; a degraded daemon makes
// greyctl exit non-zero.
func (c *client) health(out io.Writer) error {
	resp, err := http.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err != nil {
		return err
	}
	fmt.Fprint(out, string(body))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon degraded (%s)", resp.Status)
	}
	return nil
}

// inUnit renders a sketch value in its unit: durations for ns/ms,
// raw numbers otherwise.
func inUnit(v int64, unit string) string {
	switch unit {
	case "ns":
		return time.Duration(v).Round(time.Microsecond).String()
	case "ms":
		return stats.FormatDuration(time.Duration(v) * time.Millisecond)
	default:
		return fmt.Sprintf("%d%s", v, unit)
	}
}
