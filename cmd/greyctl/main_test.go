package main

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/greylist"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// testDaemon stands up the same admin surface a daemon serves — the
// observatory endpoint plus a health probe — fed by a real greylist
// engine, so greyctl is tested against the wire format it will meet.
func testDaemon(t *testing.T, degrade bool) string {
	t.Helper()
	clock := simtime.NewSim(simtime.Epoch)
	g := greylist.New(greylist.DefaultPolicy(), clock)
	o := obs.New(obs.Config{Window: 10 * time.Second, Windows: 8, Clock: clock})
	g.SetObserver(o.Greylist())
	o.WatchGreylist(g.Stats)

	trip := greylist.Triplet{ClientIP: "198.51.100.7", Sender: "news@bulk.example", Recipient: "user@victim.example"}
	g.Check(trip) // deferred: first sight
	clock.Advance(301 * time.Second)
	g.Check(trip) // passed: retry accepted after 301s
	o.Rotate()    // close the window so watch has a closed window to report

	health := metrics.NewHealth()
	health.Add("engine", func() error {
		if degrade {
			return errors.New("synthetic failure")
		}
		return nil
	})

	mux := metrics.NewAdminMux(metrics.NewRegistry(), o.Endpoint(), health.Endpoint())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf strings.Builder
	err := run(args, &buf)
	return buf.String(), err
}

func TestTop(t *testing.T) {
	url := testDaemon(t, false)
	out, err := runCmd(t, "-addr", url, "top")
	if err != nil {
		t.Fatalf("top: %v", err)
	}
	for _, want := range []string{obs.TopClientsDeferred, obs.TopClientsPassed, "198.51.100.7"} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}

	out, err = runCmd(t, "-addr", url, "top", obs.TopClientsDeferred)
	if err != nil {
		t.Fatalf("top %s: %v", obs.TopClientsDeferred, err)
	}
	if strings.Contains(out, obs.TopClientsPassed) {
		t.Errorf("top %s leaked other sets:\n%s", obs.TopClientsDeferred, out)
	}

	if _, err := runCmd(t, "-addr", url, "top", "no_such_set"); err == nil {
		t.Error("top no_such_set: want error, got nil")
	}
}

func TestDelay(t *testing.T) {
	out, err := runCmd(t, "-addr", testDaemon(t, false), "delay")
	if err != nil {
		t.Fatalf("delay: %v", err)
	}
	if !strings.Contains(out, obs.SketchRetryDelay) || !strings.Contains(out, obs.SketchCheckLatency) {
		t.Errorf("delay output missing sketches:\n%s", out)
	}
	// The retry waited 301 virtual seconds; the p50 line must show a
	// minutes-scale value (sketch records ms, rendered as a duration).
	if !strings.Contains(out, "5:0") {
		t.Errorf("delay output missing the ~5m retry delay:\n%s", out)
	}
}

func TestStages(t *testing.T) {
	out, err := runCmd(t, "-addr", testDaemon(t, false), "stages")
	if err != nil {
		t.Fatalf("stages: %v", err)
	}
	for _, want := range []string{"greylist.checks", "greylist.passed.retry", "greylist.deferred.first_seen"} {
		if !strings.Contains(out, want) {
			t.Errorf("stages output missing %q:\n%s", want, out)
		}
	}
}

func TestWatch(t *testing.T) {
	out, err := runCmd(t, "-addr", testDaemon(t, false), "-n", "1", "-interval", "1ms", "watch")
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if !strings.Contains(out, "checks=2") || !strings.Contains(out, "passed=1") {
		t.Errorf("watch line missing verdict deltas:\n%s", out)
	}

	// A second poll of the same daemon must not repeat the window.
	var buf strings.Builder
	c := &client{base: testDaemon(t, false)}
	if err := c.watch(&buf, time.Millisecond, 2); err != nil {
		t.Fatalf("watch twice: %v", err)
	}
	if got := strings.Count(buf.String(), "window "); got != 1 {
		t.Errorf("watch printed %d window lines over 2 polls, want 1:\n%s", got, buf.String())
	}
}

func TestHealth(t *testing.T) {
	out, err := runCmd(t, "-addr", testDaemon(t, false), "health")
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	if !strings.Contains(out, "ok engine") {
		t.Errorf("health output missing probe line:\n%s", out)
	}

	out, err = runCmd(t, "-addr", testDaemon(t, true), "health")
	if err == nil {
		t.Fatal("health against a degraded daemon: want error, got nil")
	}
	if !strings.Contains(out, "degraded engine: synthetic failure") {
		t.Errorf("degraded health output missing failure line:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := runCmd(t, "-addr", "http://127.0.0.1:1", "frobnicate"); err == nil {
		t.Error("unknown command: want error, got nil")
	}
	if _, err := runCmd(t, "-addr", "http://127.0.0.1:1"); err == nil {
		t.Error("no command: want error, got nil")
	}
}
