package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const header = `package p

import "repro/internal/trace"

var tracer *trace.Tracer
`

func lintSource(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", header+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, file)
}

func TestLeakedTraceFlagged(t *testing.T) {
	cases := map[string]string{
		"never finished": `
func f() {
	tr := tracer.StartAttempt(trace.Tags{}, "r", 0, nil)
	tr.Queue("x", "y", 0)
}`,
		"early return skips finish": `
func f(fail bool) error {
	tr := tracer.StartSession(trace.Tags{}, "ip", nil)
	if fail {
		return nil
	}
	tr.Finish("ok")
	return nil
}`,
		"finish only before the start": `
func f() {
	tr := tracer.StartMessage(trace.Tags{}, "r", nil)
	_ = tr
	tr = tracer.StartMessage(trace.Tags{}, "r", nil)
	tr.Finish("ok")
	tr = tracer.StartMessage(trace.Tags{}, "r", nil)
}`,
	}
	for name, src := range cases {
		if diags := lintSource(t, src); len(diags) == 0 {
			t.Errorf("%s: expected a diagnostic, got none", name)
		}
	}
}

func TestFinishedTraceAccepted(t *testing.T) {
	cases := map[string]string{
		"finish before each return": `
func f(fail bool) error {
	tr := tracer.StartAttempt(trace.Tags{}, "r", 0, nil)
	if fail {
		tr.Finish("failed")
		return nil
	}
	tr.Finish("ok")
	return nil
}`,
		"deferred finish": `
func f() {
	tr := tracer.StartSession(trace.Tags{}, "ip", nil)
	defer tr.Finish("ok")
	tr.Verb("MAIL", 250, "", 0)
}`,
		"deferred closure finish": `
func f() {
	tr := tracer.StartSession(trace.Tags{}, "ip", nil)
	defer func() { tr.Finish("ok") }()
}`,
		"ownership stored in a field": `
func f(e *entry) {
	tr := tracer.StartMessage(trace.Tags{}, "r", nil)
	e.tr = tr
}`,
		"ownership returned": `
func f() interface{} {
	tr := tracer.StartMessage(trace.Tags{}, "r", nil)
	return tr
}`,
		"ownership in composite literal": `
func f() {
	tr := tracer.StartMessage(trace.Tags{}, "r", nil)
	_ = entry2{tr: tr}
}`,
		"borrowing callees do not transfer": `
func f(fail bool) {
	tr := tracer.StartAttempt(trace.Tags{}, "r", 0, nil)
	record(tr)
	tr.Finish("ok")
}`,
		"selector assignment is the owner's problem": `
func f(s *session) {
	s.tr = tracer.StartSession(trace.Tags{}, "ip", nil)
}`,
	}
	for name, src := range cases {
		if diags := lintSource(t, src); len(diags) != 0 {
			t.Errorf("%s: unexpected diagnostics: %v", name, diags)
		}
	}
}

func TestNonTraceFileIgnored(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", `package p

func f() {
	tr := tracer.StartAttempt(nil, "r", 0, nil)
	_ = tr
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diags := lintFile(fset, file); len(diags) != 0 {
		t.Errorf("file without the trace import should be ignored, got %v", diags)
	}
}

func TestDiagnosticNamesTheLeak(t *testing.T) {
	diags := lintSource(t, `
func f() {
	tr := tracer.StartAttempt(trace.Tags{}, "r", 0, nil)
	tr.Queue("x", "y", 0)
}`)
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0], `trace "tr"`) || !strings.Contains(diags[0], "src.go:") {
		t.Errorf("diagnostic lacks the trace name or position: %s", diags[0])
	}
}
