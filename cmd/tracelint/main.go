// Command tracelint is a vet-style checker for the tracing discipline:
// every trace started with Tracer.StartAttempt / StartMessage /
// StartSession must be finished on every return path of the function
// that started it, or visibly hand the trace off to another owner. An
// unfinished trace never reaches the ring — the attempt it describes
// silently vanishes from /debug/traces and JSONL exports, which is
// exactly the kind of observability rot a linter should catch at CI
// time rather than a debugging session.
//
// Usage:
//
//	tracelint [dir ...]   (default ".", recursing; vendor, testdata
//	                       and _test.go files are skipped)
//
// The check is syntactic (no type information): it considers
// single-ident assignments whose right-hand side is a Start* selector
// call in files importing repro/internal/trace. A started trace is
// satisfied by a deferred Finish, or by a Finish call lexically between
// the start and each subsequent return (and the function end). It is
// exempt when ownership demonstrably moves: the ident is returned,
// stored into a field, slice, map or another variable, or placed in a
// composite literal. Passing the trace as a call argument is borrowing,
// not a transfer — callees record spans, the starter still finishes.
//
// Exit status is nonzero when any diagnostic is emitted.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// tracePath is the import whose Start*/Finish discipline is enforced.
const tracePath = "repro/internal/trace"

// startMethods are the trace constructors whose results must be
// finished.
var startMethods = map[string]bool{
	"StartAttempt": true,
	"StartMessage": true,
	"StartSession": true,
}

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	fset := token.NewFileSet()
	var diags []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case "vendor", "testdata", ".git":
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("parsing %s: %w", path, err)
			}
			diags = append(diags, lintFile(fset, file)...)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracelint:", err)
			os.Exit(2)
		}
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// lintFile checks one parsed file and returns its diagnostics.
func lintFile(fset *token.FileSet, file *ast.File) []string {
	if !importsTrace(file) {
		return nil
	}
	var diags []string
	// Visit every function (declaration or literal) and check the
	// starts it owns. Nested literals are visited in their own right,
	// so each start is checked against exactly its enclosing function.
	ast.Inspect(file, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		for _, s := range findStarts(body) {
			if escapes(body, s) {
				continue
			}
			if leaky, pos := unfinished(body, s); leaky {
				diags = append(diags, fmt.Sprintf(
					"%s: tracelint: trace %q started here is not finished on every return path (leaks at %s)",
					fset.Position(s.assign.Pos()), s.name, fset.Position(pos)))
			}
		}
		return true
	})
	return diags
}

// importsTrace reports whether the file imports the trace package.
func importsTrace(file *ast.File) bool {
	for _, imp := range file.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == tracePath {
			return true
		}
	}
	return false
}

// start is one `ident := x.Start*(...)` assignment.
type start struct {
	name   string
	assign *ast.AssignStmt
}

// findStarts collects the function's own Start* assignments, not those
// of nested function literals.
func findStarts(body *ast.BlockStmt) []start {
	var starts []start
	inspectShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !startMethods[sel.Sel.Name] {
			return
		}
		starts = append(starts, start{name: id.Name, assign: as})
	})
	return starts
}

// escapes reports whether ownership of the started trace demonstrably
// moves out of the function: returned, stored into another variable,
// field, index or composite literal. Receiver use and call arguments
// are borrowing and do not count.
func escapes(body *ast.BlockStmt, s start) bool {
	after := s.assign.End()
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.End() <= after {
			return !found
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				if !isIdent(rhs, s.name) {
					continue
				}
				if i < len(node.Lhs) && isIdent(node.Lhs[i], s.name) {
					continue // self-assignment, e.g. shadow refresh
				}
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if isIdent(res, s.name) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if isIdent(kv.Value, s.name) {
						found = true
					}
				} else if isIdent(elt, s.name) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// unfinished reports whether some return path after the start lacks a
// Finish call, and where that path exits. A deferred Finish covers all
// paths; otherwise every return (and the fall-off end of the body) must
// be lexically preceded by a Finish that follows the start. Lexical
// order is an approximation, but one that matches how the codebase
// writes terminal branches (finish, then return).
func unfinished(body *ast.BlockStmt, s start) (bool, token.Pos) {
	startEnd := s.assign.End()

	deferred := false
	var finishes []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeferStmt:
			if callsFinish(node.Call, s.name) || deferredClosureFinishes(node, s.name) {
				deferred = true
			}
		case *ast.CallExpr:
			if callsFinish(node, s.name) && node.Pos() > startEnd {
				finishes = append(finishes, node.Pos())
			}
		}
		return true
	})
	if deferred {
		return false, token.NoPos
	}

	covered := func(exit token.Pos) bool {
		for _, f := range finishes {
			if f < exit {
				return true
			}
		}
		return false
	}

	// Every return of this function (not of nested literals) after the
	// start is an exit; so is falling off the end of the body.
	var leak token.Pos
	inspectShallow(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= startEnd || leak != token.NoPos {
			return
		}
		if !covered(ret.Pos()) {
			leak = ret.Pos()
		}
	})
	if leak != token.NoPos {
		return true, leak
	}
	if n := len(body.List); n > 0 {
		if _, ok := body.List[n-1].(*ast.ReturnStmt); !ok && !covered(body.End()) {
			return true, body.End()
		}
	}
	return false, token.NoPos
}

// callsFinish reports whether call is `name.Finish*(...)`.
func callsFinish(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Finish") {
		return false
	}
	return isIdent(sel.X, name)
}

// deferredClosureFinishes reports whether a `defer func() { ... }()`
// body finishes the named trace.
func deferredClosureFinishes(d *ast.DeferStmt, name string) bool {
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && callsFinish(call, name) {
			found = true
		}
		return !found
	})
	return found
}

// isIdent reports whether expr is the plain identifier name.
func isIdent(expr ast.Expr, name string) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == name
}

// inspectShallow walks the node but does not descend into nested
// function literals: their statements belong to the literal, not to
// the enclosing function.
func inspectShallow(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
