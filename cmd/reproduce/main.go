// Command reproduce regenerates every table and figure of the paper's
// evaluation and writes the renderings to a results directory (and
// stdout).
//
// Usage:
//
//	reproduce [-exp all|table1|fig2|table2|fig3|fig4|fig5|table3|table4|control]
//	          [-out results] [-seed 1] [-domains 20000] [-recipients 50]
//	          [-days 120] [-rate 200] [-workers 0] [-metrics metrics.prom]
//
// -workers fans per-experiment work — scan rounds and malware-lab
// specs alike — out over a bounded pool (0 = one per core); every
// setting produces byte-identical output.
//
// -metrics writes a final process-metrics snapshot (uptime, heap, GC,
// goroutines) in Prometheus text format after the experiments finish —
// a cheap record of what a full reproduction run cost.
//
// -trace records every table2 delivery attempt as an end-to-end trace
// and writes the finished traces as JSONL. When -metrics - and -trace -
// share stdout with the report text, the order is fixed — report,
// "# == metrics snapshot ==", "# == trace snapshot (jsonl) ==" — so
// piped output splits deterministically.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lab"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp        = flag.String("exp", "all", "experiment to run: all or one of "+strings.Join(report.Experiments, ", "))
		out        = flag.String("out", "results", "output directory ('' = stdout only)")
		seed       = flag.Int64("seed", 1, "random seed")
		domains    = flag.Int("domains", 20000, "synthetic Internet size for fig2")
		recipients = flag.Int("recipients", 50, "campaign size per malware sample")
		days       = flag.Int("days", 120, "deployment log length in days for fig5")
		rate       = flag.Int("rate", 200, "greylisted messages per day for fig5")
		csv        = flag.Bool("csv", false, "also export figure data points as CSV into -out")
		workers    = flag.Int("workers", 0, "experiment/scan/lab worker pool size: 0 = one per core, 1 = serial; output is byte-identical at any setting")
		metricsOut = flag.String("metrics", "", "write a final process-metrics snapshot to this file ('-' = stdout)")
		traceOut   = flag.String("trace", "", "trace every table2 delivery attempt and write finished traces as JSONL to this file ('-' = stdout)")
	)
	flag.Parse()

	var procReg *metrics.Registry
	if *metricsOut != "" {
		procReg = metrics.NewRegistry()
		metrics.RegisterProcess(procReg)
	}

	var tracer *trace.Tracer
	if *traceOut != "" {
		// Upper-bound the Table 2 workload's attempt count so the ring
		// never wraps: each recipient costs at most 1 + retries attempts.
		capacity := 0
		for _, s := range lab.TableIISpecs(*recipients) {
			capacity += s.Recipients * (1 + len(s.Family.Retry.Peaks))
		}
		if capacity < 1 {
			capacity = 1
		}
		tracer = trace.New(capacity)
	}

	opts := report.Options{
		Seed:              *seed,
		ScanDomains:       *domains,
		Recipients:        *recipients,
		LogDays:           *days,
		LogMessagesPerDay: *rate,
		Workers:           *workers,
		Tracer:            tracer,
	}

	names := report.Experiments
	if *exp != "all" {
		names = []string{*exp}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	texts, err := report.RunMany(names, opts)
	if err != nil {
		return err
	}
	for i, name := range names {
		text := texts[i]
		fmt.Println(text)
		if *out != "" {
			path := filepath.Join(*out, name+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if *csv && *out != "" {
		for _, name := range report.CSVExperiments {
			if *exp != "all" && *exp != name {
				continue
			}
			data, err := report.CSV(name, opts)
			if err != nil {
				return err
			}
			path := filepath.Join(*out, name+".csv")
			if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	// Snapshot order on stdout is fixed — report text, then metrics,
	// then traces — each behind one marker line, so piped output stays
	// machine-separable.
	if procReg != nil {
		if *metricsOut == "-" {
			fmt.Println("# == metrics snapshot ==")
			if err := procReg.WriteText(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(*metricsOut)
			if err != nil {
				return err
			}
			if err := procReg.WriteText(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsOut)
		}
	}
	if tracer != nil {
		if *traceOut == "-" {
			fmt.Println("# == trace snapshot (jsonl) ==")
			return tracer.WriteJSONL(os.Stdout)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
	}
	return nil
}
