// Command labrun executes the contained malware experiments of Sections
// IV-B and V-A: run one family (or all) against a chosen defense and
// print the per-attempt timeline — or the full Table II matrix on the
// parallel spec runner.
//
// Usage:
//
//	labrun -table2                         # the full 11-sample matrix
//	labrun -table2 -workers 8              # 22 labs on an 8-worker pool
//	labrun -family Kelihos -defense greylisting -threshold 21600s
//	labrun -family Cutwail -defense nolisting -recipients 10
//	labrun -family Kelihos -metrics -      # dump the run's metrics
//
// -workers bounds the spec-runner pool for -table2 (0 = one per core,
// 1 = serial); the rendered matrix is byte-identical at any setting.
//
// -metrics writes a final metrics snapshot in Prometheus text format to
// the given file, or stdout for "-". Single-family runs dump the lab's
// registry (greylist verdict counters, SMTP command/reply counters, DNS
// query counters); -table2 runs dump the runner's registry (specs run,
// labs in flight, per-spec virtual time, wall clock) — 22 labs have no
// single victim snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/metrics"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "labrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table2     = flag.Bool("table2", false, "run the full Table II matrix")
		family     = flag.String("family", "Kelihos", "malware family (Cutwail, Kelihos, Darkmailer, Darkmailer(v3))")
		defense    = flag.String("defense", "greylisting", "defense: none, nolisting, greylisting, both")
		threshold  = flag.Duration("threshold", 300*time.Second, "greylisting threshold")
		recipients = flag.Int("recipients", 10, "campaign size")
		workers    = flag.Int("workers", 0, "spec-runner pool size for -table2: 0 = one per core, 1 = serial; output is byte-identical at any setting")
		metricsOut = flag.String("metrics", "", "write the final metrics snapshot to this file ('-' = stdout)")
	)
	flag.Parse()

	if *table2 {
		runner := &lab.Runner{Workers: *workers}
		var reg *metrics.Registry
		if *metricsOut != "" {
			reg = metrics.NewRegistry()
			runner.Register(reg)
		}
		results, err := runner.Run(lab.TableIISpecs(*recipients))
		if err != nil {
			return err
		}
		fmt.Println("Table II: Effect of nolisting and greylisting on popular malware families")
		fmt.Println()
		fmt.Print(lab.RenderTableII(lab.MatrixFromResults(results)))
		if reg != nil {
			return dumpMetrics(reg, *metricsOut)
		}
		return nil
	}

	f, err := botnet.ByName(*family)
	if err != nil {
		return err
	}
	var def core.Defense
	switch *defense {
	case "none":
		def = core.DefenseNone
	case "nolisting":
		def = core.DefenseNolisting
	case "greylisting":
		def = core.DefenseGreylisting
	case "both":
		def = core.DefenseBoth
	default:
		return fmt.Errorf("unknown defense %q", *defense)
	}

	l, err := lab.New(lab.Config{Defense: def, Threshold: *threshold})
	if err != nil {
		return err
	}
	defer l.Close()
	res, err := l.RunSample(f, 1, *recipients)
	if err != nil {
		return err
	}

	fmt.Printf("%s vs %s (threshold %v): delivered %d/%d, inferred behavior %s\n\n",
		f.Name, def, *threshold, res.Delivered, res.Spec.Recipients, res.Behavior)
	tbl := stats.NewTable("OFFSET", "TRY", "RECIPIENT", "HOST", "OUTCOME")
	for _, a := range res.Attempts {
		outcome := a.Outcome.String()
		if a.Refused {
			outcome += " (connection refused)"
		}
		tbl.AddRow(stats.FormatDuration(a.Offset), fmt.Sprintf("%d", a.Try), a.Recipient, a.Host, outcome)
	}
	fmt.Print(tbl.String())

	if *metricsOut != "" {
		if err := dumpMetrics(l.Metrics, *metricsOut); err != nil {
			return err
		}
	}
	return nil
}

// dumpMetrics writes a metrics registry in Prometheus text format to
// path ("-" = stdout).
func dumpMetrics(reg *metrics.Registry, path string) error {
	if path == "-" {
		return reg.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}
