// Command labrun executes the contained malware experiments of Sections
// IV-B and V-A: run one family (or all) against a chosen defense and
// print the per-attempt timeline — or the full Table II matrix on the
// parallel spec runner.
//
// Usage:
//
//	labrun -table2                         # the full 11-sample matrix
//	labrun -table2 -workers 8              # 22 labs on an 8-worker pool
//	labrun -bypass                         # the bypass-layer study
//	labrun -family Kelihos -defense greylisting -threshold 21600s
//	labrun -family Cutwail -defense nolisting -recipients 10
//	labrun -family Kelihos -metrics -      # dump the run's metrics
//
// -bypass runs every greylisting bypass layer (SPF re-keying, DNSWL,
// rDNS heuristic, earned whitelist) against two benign sender profiles
// and the bot families — the benign first-contact delay each layer
// eliminates against the bot leakage it admits; -recipients and
// -workers apply.
//
// -workers bounds the spec-runner pool for -table2 (0 = one per core,
// 1 = serial); the rendered matrix is byte-identical at any setting.
//
// -observe (single-family runs) wires the live observatory into the
// lab's greylist engine, cross-checks its streamed aggregates — counter
// window deltas, sketch sample counts, retry-delay quantiles — against
// the engine's exact counters and the recorded attempt log, prints one
// "observe PASS/FAIL" line per check, and dumps the versioned snapshot
// behind a "# == observatory snapshot (json) ==" marker. Any failed
// check exits non-zero: the live view must agree with the post-hoc
// report within the sketch's documented bucket error.
//
// -metrics writes a final metrics snapshot in Prometheus text format to
// the given file, or stdout for "-". Single-family runs dump the lab's
// registry (greylist verdict counters, SMTP command/reply counters, DNS
// query counters); -table2 runs dump the runner's registry (specs run,
// labs in flight, per-spec virtual time, wall clock) — 22 labs have no
// single victim snapshot.
//
// -trace records every delivery attempt as an end-to-end trace (MX
// walk, dials, server verbs, greylist verdict, retry scheduling,
// outcome) and writes the finished traces as JSONL to the given file,
// or stdout for "-". When snapshots share stdout with the report text,
// the order is fixed — report, then metrics behind a "# == metrics
// snapshot ==" marker line, then traces behind "# == trace snapshot
// (jsonl) ==" — so piped output splits deterministically.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "labrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table2     = flag.Bool("table2", false, "run the full Table II matrix")
		bypassRun  = flag.Bool("bypass", false, "run the bypass-layer study: benign delay eliminated vs bot leakage per chain stage")
		family     = flag.String("family", "Kelihos", "malware family (Cutwail, Kelihos, Darkmailer, Darkmailer(v3))")
		defense    = flag.String("defense", "greylisting", "defense: none, nolisting, greylisting, both")
		threshold  = flag.Duration("threshold", 300*time.Second, "greylisting threshold")
		recipients = flag.Int("recipients", 10, "campaign size")
		workers    = flag.Int("workers", 0, "spec-runner pool size for -table2: 0 = one per core, 1 = serial; output is byte-identical at any setting")
		observe    = flag.Bool("observe", false, "wire the live observatory into a single-family run, cross-check its streamed aggregates against the run's exact counters and attempt log, and print the snapshot")
		metricsOut = flag.String("metrics", "", "write the final metrics snapshot to this file ('-' = stdout)")
		traceOut   = flag.String("trace", "", "record every delivery attempt and write the finished traces as JSONL to this file ('-' = stdout)")
	)
	flag.Parse()

	if *bypassRun {
		var tracer *trace.Tracer
		if *traceOut != "" {
			tracer = trace.New(specAttemptBound(lab.BypassSpecs(*recipients)))
		}
		rows, err := lab.RunBypassStudy(*recipients, *workers, tracer)
		if err != nil {
			return err
		}
		fmt.Print(lab.RenderBypassStudy(rows))
		if tracer != nil {
			return dumpTraces(tracer, *traceOut)
		}
		return nil
	}

	if *table2 {
		specs := lab.TableIISpecs(*recipients)
		runner := &lab.Runner{Workers: *workers}
		var reg *metrics.Registry
		if *metricsOut != "" {
			reg = metrics.NewRegistry()
			runner.Register(reg)
		}
		var tracer *trace.Tracer
		if *traceOut != "" {
			tracer = trace.New(specAttemptBound(specs))
			runner.Tracer = tracer
		}
		results, err := runner.Run(specs)
		if err != nil {
			return err
		}
		fmt.Println("Table II: Effect of nolisting and greylisting on popular malware families")
		fmt.Println()
		fmt.Print(lab.RenderTableII(lab.MatrixFromResults(results)))
		// Snapshot order on stdout is fixed — report, metrics, traces —
		// with one marker line before each snapshot, so piped output
		// stays machine-separable.
		if reg != nil {
			if err := dumpMetrics(reg, *metricsOut); err != nil {
				return err
			}
		}
		if tracer != nil {
			return dumpTraces(tracer, *traceOut)
		}
		return nil
	}

	f, err := botnet.ByName(*family)
	if err != nil {
		return err
	}
	var def core.Defense
	switch *defense {
	case "none":
		def = core.DefenseNone
	case "nolisting":
		def = core.DefenseNolisting
	case "greylisting":
		def = core.DefenseGreylisting
	case "both":
		def = core.DefenseBoth
	default:
		return fmt.Errorf("unknown defense %q", *defense)
	}

	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(*recipients * (1 + len(f.Retry.Peaks)))
	}
	l, err := lab.New(lab.Config{Defense: def, Threshold: *threshold, Tracer: tracer})
	if err != nil {
		return err
	}
	defer l.Close()
	var obsv *obs.Observatory
	if *observe {
		obsv = observatoryFor(l)
	}
	res, err := l.RunSpec(lab.Spec{
		Defense:        def,
		Threshold:      *threshold,
		Family:         f,
		SampleID:       1,
		Recipients:     *recipients,
		RecordAttempts: true,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%s vs %s (threshold %v): delivered %d/%d, inferred behavior %s\n\n",
		f.Name, def, *threshold, res.Delivered, res.Spec.Recipients, res.Behavior)
	tbl := stats.NewTable("OFFSET", "TRY", "RECIPIENT", "HOST", "OUTCOME")
	for _, a := range res.Attempts {
		outcome := a.Outcome.String()
		if a.Refused {
			outcome += " (connection refused)"
		}
		tbl.AddRow(stats.FormatDuration(a.Offset), fmt.Sprintf("%d", a.Try), a.Recipient, a.Host, outcome)
	}
	fmt.Print(tbl.String())

	if obsv != nil {
		if err := observeReport(obsv, l, res); err != nil {
			return err
		}
	}
	if *metricsOut != "" {
		if err := dumpMetrics(l.Metrics, *metricsOut); err != nil {
			return err
		}
	}
	if tracer != nil {
		if err := dumpTraces(tracer, *traceOut); err != nil {
			return err
		}
	}
	return nil
}

// specAttemptBound upper-bounds the attempts a spec list can generate
// (each recipient costs at most 1 + retries attempts), sizing the trace
// ring so it never wraps.
func specAttemptBound(specs []lab.Spec) int {
	n := 0
	for _, s := range specs {
		n += s.Recipients * (1 + len(s.Family.Retry.Peaks))
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Stdout snapshot markers: when -metrics - and/or -trace - share
// stdout with the report text, each snapshot is preceded by one fixed
// marker line (metrics first, traces last), so piped output splits
// deterministically.
const (
	metricsMarker = "# == metrics snapshot =="
	traceMarker   = "# == trace snapshot (jsonl) =="
)

// dumpMetrics writes a metrics registry in Prometheus text format to
// path ("-" = stdout, preceded by the metrics marker line).
func dumpMetrics(reg *metrics.Registry, path string) error {
	if path == "-" {
		fmt.Println(metricsMarker)
		return reg.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}

// dumpTraces writes the tracer's finished traces as deterministic JSONL
// to path ("-" = stdout, preceded by the trace marker line).
func dumpTraces(tracer *trace.Tracer, path string) error {
	if path == "-" {
		fmt.Println(traceMarker)
		return tracer.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote trace snapshot to %s\n", path)
	return nil
}
