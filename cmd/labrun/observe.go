package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"time"

	"repro/internal/hdr"
	"repro/internal/lab"
	"repro/internal/obs"
	"repro/internal/smtpclient"
	"repro/internal/stats"
)

// observeMarker precedes the observatory snapshot when it shares stdout
// with the report text (same contract as the metrics/trace markers).
const observeMarker = "# == observatory snapshot (json) =="

// observatoryFor wires a live observatory into a single-family lab: the
// greylist engine feeds the verdict observer on every check, and the
// engine's cumulative stats become per-window counter deltas. The lab's
// virtual clock drives window timestamps; rotation is explicit (the
// run's virtual time advances in bursts, not wall ticks).
func observatoryFor(l *lab.Lab) *obs.Observatory {
	o := obs.New(obs.Config{Clock: l.Clock})
	eng := l.Domain.Greylister()
	eng.SetObserver(o.Greylist())
	o.WatchGreylist(eng.Stats)
	return o
}

// observeReport closes the run's window, cross-checks the observatory's
// streamed aggregates against the run's exact ground truth, prints the
// verdict lines and the snapshot behind the observe marker, and fails
// if any check failed.
//
// The checks tie the two measurement paths together: the engine's
// authoritative counters (exact, counted at decision time) versus the
// observatory's counter deltas and sketch counts (streamed through the
// window ring), and the retry-delay sketch's quantiles versus the
// exact delays reconstructed from the recorded attempt log — the live
// view of the paper's Fig. 5 benign-delay CDF must agree with the
// post-hoc one within the sketch's documented bucket error.
func observeReport(o *obs.Observatory, l *lab.Lab, res *lab.Result) error {
	// Rotate once so the campaign's window closes and its counter
	// deltas finalize through the same path a live daemon exercises.
	o.Rotate()
	snap := o.Snapshot(0, 0)
	gs := l.Domain.Greylister().Stats()

	failed := 0
	check := func(name string, ok bool, detail string) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("observe %s: %s (%s)\n", verdict, name, detail)
	}

	mc := snap.Merged.Counters
	check("counter greylist.checks == engine checks",
		mc["greylist.checks"] == gs.Checks,
		fmt.Sprintf("observatory %d, engine %d", mc["greylist.checks"], gs.Checks))
	check("counter greylist.passed.retry == engine passed-retry",
		mc["greylist.passed.retry"] == gs.PassedRetry,
		fmt.Sprintf("observatory %d, engine %d", mc["greylist.passed.retry"], gs.PassedRetry))

	latency := snap.Merged.Sketches[obs.SketchCheckLatency]
	check("latency sketch count == engine checks",
		latency.Count == gs.Checks,
		fmt.Sprintf("sketch %d, engine %d", latency.Count, gs.Checks))

	retry := snap.Merged.Sketches[obs.SketchRetryDelay]
	check("retry-delay sketch count == engine passed-retry",
		retry.Count == gs.PassedRetry,
		fmt.Sprintf("sketch %d, engine %d", retry.Count, gs.PassedRetry))

	// Exact retry delays from the attempt log: a recipient delivered on
	// try > 1 waited exactly its delivered attempt's offset (the triplet
	// was first seen on try 1, at offset 0). Only the chronologically
	// first retry.Count of those passed as retry-accepted — once enough
	// deliveries accumulate, Postgrey's auto-whitelist passes the rest
	// without a waited delay, so they never reach the sketch.
	type delivery struct{ at, ms int64 }
	var retried []delivery
	for _, a := range res.Attempts {
		if a.Outcome == smtpclient.Delivered && a.Try > 1 {
			retried = append(retried, delivery{a.At.UnixNano(), a.Offset.Milliseconds()})
		}
	}
	sort.Slice(retried, func(i, j int) bool { return retried[i].at < retried[j].at })
	var exact []int64
	for _, d := range retried {
		if uint64(len(exact)) == retry.Count {
			break
		}
		exact = append(exact, d.ms)
	}
	if uint64(len(exact)) == retry.Count && len(exact) > 0 {
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		for _, q := range []struct {
			name string
			q    float64
			est  int64
		}{{"p50", 0.50, retry.P50}, {"p99", 0.99, retry.P99}} {
			want := exactQuantile(exact, q.q)
			check(fmt.Sprintf("retry-delay %s within sketch error of exact", q.name),
				withinSketchError(q.est, want),
				fmt.Sprintf("sketch %s, exact %s",
					stats.FormatDuration(msDuration(q.est)), stats.FormatDuration(msDuration(want))))
		}
	} else if retry.Count == 0 {
		fmt.Println("observe SKIP: no retry-accepted deliveries to check quantiles against")
	} else {
		check("retry-delay sample count covered by attempt log",
			false, fmt.Sprintf("sketch %d, delivered retries %d", retry.Count, len(retried)))
	}

	fmt.Println(observeMarker)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("observatory cross-check failed (%d checks)", failed)
	}
	return nil
}

// exactQuantile mirrors hdr.Hist.Quantile's rank rule (the sample at
// index floor(q*n), clamped) over exact sorted samples.
func exactQuantile(sorted []int64, q float64) int64 {
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// withinSketchError accepts an estimate that is at least the exact
// value (sketch quantiles are bucket upper edges — they never
// understate) and overstates it by at most twice the sketch's relative
// error plus rounding slack.
func withinSketchError(est, exact int64) bool {
	if est < exact {
		return false
	}
	slack := int64(float64(exact)*2*hdr.RelativeError) + 2
	return est-exact <= slack
}

func msDuration(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }
