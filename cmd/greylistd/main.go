// Command greylistd is a standalone greylisting SMTP server — a usable
// Postgrey-style daemon built on the reproduction's library. It answers
// real SMTP on a TCP port, defers unknown (client IP, sender, recipient)
// triplets with 451 4.7.1, accepts retries past the threshold, supports
// client/recipient whitelists and persists its state across restarts.
//
// Usage:
//
//	greylistd [-listen :2525] [-hostname mx.example.org]
//	          [-threshold 300s] [-retry-window 48h] [-max-age 840h]
//	          [-auto-whitelist 5] [-whiteexp 0] [-subnet] [-state greylist.db]
//	          [-wal greylist.wal] [-wal-sync interval] [-wal-compact-every 16777216]
//	          [-shards 1] [-rcpt-batch 64] [-admin-addr 127.0.0.1:9925]
//	          [-trace-ring 1024]
//	          [-dns 9.9.9.9:53] [-spf] [-dnswl list.dnswl.org] [-rdns]
//	          [-whitelist-ip CIDR]... [-unprotect postmaster@dom]...
//
// The -spf, -dnswl and -rdns flags enable bypass-chain stages evaluated
// ahead of the triplet check (they need -dns, the upstream resolver to
// query): SPF-passing senders continue one dance per domain however
// their pool rotates, DNSWL-listed clients and mail-server-named
// clients skip the dance, and any DNS trouble fails open to plain
// greylisting. -whiteexp grants clients that complete one dance an
// auto-renewed whitelist entry (journaled through the WAL like all
// state). See DESIGN.md, "Bypass chain".
//
// Without -wal, state is written only on clean shutdown, so a crash
// loses everything since startup. With -wal, every state mutation is
// journaled to a write-ahead log as it happens (-state becomes the
// checkpoint file compaction maintains), and a SIGKILLed daemon
// restarts with its pending/passed/auto-whitelist tables intact up to
// the last fsync (-wal-sync: "always" per batch, "interval" once per
// -wal-sync-interval, "none" leaves it to the OS). See DESIGN.md,
// "Durability".
//
// With -admin-addr, an HTTP listener exposes Prometheus metrics on
// /metrics, live profiling on /debug/pprof/ and — when -trace-ring is
// nonzero — the most recent finished session traces on /debug/traces
// (filter with ?outcome=, ?defense=, ?min_attempts=; see DESIGN.md,
// "Tracing"). Each trace follows one SMTP session verb by verb through
// its greylist verdicts to the final outcome.
//
// The admin listener also carries the live observatory: /observatory
// serves versioned JSON rollups — per-window verdict counters, retry
// delay and check-latency quantile sketches, top-K clients and senders
// per verdict class and bypass stage — over a ring of -obs-window ×
// -obs-windows windows (greyctl renders it: top, delay, stages,
// watch), and /healthz answers 200 only while the WAL consumer, the
// bypass chain and the observatory ring are all healthy. See
// DESIGN.md, "Observatory".
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bypass"
	"repro/internal/dialect"
	"repro/internal/dnsresolver"
	"repro/internal/greylist"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policyd"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
	"repro/internal/smtpserver"
	"repro/internal/spf"
	"repro/internal/trace"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "greylistd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", ":2525", "address to listen on")
		hostname    = flag.String("hostname", "greylistd.local", "announced hostname")
		threshold   = flag.Duration("threshold", 300*time.Second, "greylisting threshold")
		retryWindow = flag.Duration("retry-window", 48*time.Hour, "how long a deferred triplet awaits its retry")
		maxAge      = flag.Duration("max-age", 35*24*time.Hour, "lifetime of passed triplets")
		autoWL      = flag.Int("auto-whitelist", 5, "deliveries before a client is auto-whitelisted (0 = off)")
		subnet      = flag.Bool("subnet", false, "key triplets by /24 network instead of full IP")
		whiteexp    = flag.Duration("whiteexp", 0, "earned-whitelist lifetime: a client that completes one greylisting dance skips the dance entirely until this long after its last delivery (0 = off; postgrey's --whiteexp)")
		spfKey      = flag.Bool("spf", false, "re-key triplets by sender domain when SPF passes, so a provider's rotating pool continues one dance (needs -dns)")
		dnswl       = flag.String("dnswl", "", "DNS whitelist origin (e.g. list.dnswl.org): listed clients bypass greylisting (needs -dns)")
		rdns        = flag.Bool("rdns", false, "bypass greylisting for clients whose PTR name looks like a dedicated mail server (needs -dns)")
		dnsAddr     = flag.String("dns", "", "upstream DNS server (host:port) the -spf/-dnswl/-rdns bypass stages query")
		state       = flag.String("state", "", "state file for persistence across restarts")
		walPath     = flag.String("wal", "", "write-ahead log file: journal every mutation so a crash loses at most the unsynced tail (requires -state, which becomes the checkpoint file)")
		walSync     = flag.String("wal-sync", "interval", "wal fsync policy: always, interval or none")
		walSyncIntv = flag.Duration("wal-sync-interval", time.Second, "fsync cadence under -wal-sync interval")
		walCompact  = flag.Int64("wal-compact-every", 16<<20, "bytes of wal growth before checkpoint compaction (<0 disables)")
		gcEvery     = flag.Duration("gc", 10*time.Minute, "state garbage-collection interval")
		fingerprint = flag.Bool("fingerprint", false, "log an SMTP-dialect fingerprint for every session")
		shards      = flag.Int("shards", 1, "greylist store shards; >1 partitions state by triplet hash so concurrent sessions rarely contend on one lock")
		rcptBatch   = flag.Int("rcpt-batch", 64, "max pipelined RCPT commands decided per engine batch (RFC 2920 clients); replies are per-RCPT identical to serial handling")
		policyAddr  = flag.String("policy-listen", "", "also serve the Postfix policy-delegation protocol on this address (for check_policy_service)")
		tlsCert     = flag.String("tls-cert", "", "TLS certificate file for STARTTLS (with -tls-key)")
		tlsKey      = flag.String("tls-key", "", "TLS key file for STARTTLS")
		tlsSelf     = flag.Bool("tls-self-signed", false, "enable STARTTLS with an ephemeral self-signed certificate")
		adminAddr   = flag.String("admin-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9925)")
		traceRing   = flag.Int("trace-ring", 1024, "finished session traces kept for /debug/traces (0 = tracing off); needs -admin-addr")
		obsWindow   = flag.Duration("obs-window", 10*time.Second, "observatory rollup window duration; needs -admin-addr")
		obsWindows  = flag.Int("obs-windows", 30, "observatory ring length (closed windows kept for /observatory)")
	)
	var whitelistCIDRs, unprotect stringList
	flag.Var(&whitelistCIDRs, "whitelist-ip", "client CIDR to exempt (repeatable)")
	flag.Var(&unprotect, "unprotect", "recipient mailbox to exempt (repeatable)")
	flag.Parse()

	policy := greylist.Policy{
		Threshold:             *threshold,
		RetryWindow:           *retryWindow,
		PassLifetime:          *maxAge,
		AutoWhitelistAfter:    *autoWL,
		AutoWhitelistLifetime: *maxAge,
		EarnedLifetime:        *whiteexp,
		SubnetKeying:          *subnet,
	}
	// The engine: a single-lock store by default, a sharded one for
	// high-connection-rate deployments.
	type engine interface {
		greylist.BatchChecker
		greylist.TracedChecker
		SaveFile(string) error
		LoadFile(string) error
		PendingCount() int
		PassedCount() int
		Stats() greylist.Stats
		Register(*metrics.Registry)
	}
	var (
		g   engine
		eng greylist.Engine // the same object, full-interface view for OpenWAL
	)
	if *shards > 1 {
		s := greylist.NewSharded(*shards, policy, simtime.Real{})
		g, eng = s, s
	} else {
		gl := greylist.New(policy, simtime.Real{})
		g, eng = gl, gl
	}
	for _, cidr := range whitelistCIDRs {
		if err := g.Whitelist().AddCIDR(cidr); err != nil {
			return err
		}
	}
	for _, rcpt := range unprotect {
		g.Whitelist().AddRecipient(rcpt)
	}

	// The bypass chain: DNS-backed stages evaluated ahead of the triplet
	// check (after the static whitelist), failing open to plain
	// greylisting on DNS trouble. See DESIGN.md, "Bypass chain".
	var stages []greylist.Stage
	if *spfKey || *dnswl != "" || *rdns {
		if *dnsAddr == "" {
			return fmt.Errorf("-spf/-dnswl/-rdns need -dns (the upstream resolver to query)")
		}
		res := dnsresolver.New(dnsresolver.UDP(*dnsAddr, 5*time.Second), simtime.Real{})
		if *spfKey {
			stages = append(stages, bypass.SPF(spf.NewCached(spf.New(res), spf.CacheConfig{})))
		}
		if *dnswl != "" {
			stages = append(stages, bypass.DNSWL(res, *dnswl, bypass.CacheConfig{}))
		}
		if *rdns {
			stages = append(stages, bypass.RDNS(res, bypass.CacheConfig{}))
		}
		chain := append([]greylist.Stage{greylist.WhitelistStage(g.Whitelist())}, stages...)
		eng.SetChain(greylist.NewChain(chain...))
		names := make([]string, len(stages))
		for i, s := range stages {
			names[i] = s.Name()
		}
		fmt.Fprintf(os.Stderr, "bypass chain: whitelist -> %s (dns %s)\n",
			strings.Join(names, " -> "), *dnsAddr)
	}
	if *walPath != "" && *state == "" {
		return fmt.Errorf("-wal requires -state (the checkpoint file compaction maintains)")
	}
	if *state != "" && *walPath == "" {
		// Without a WAL the state file is loaded once here. A missing
		// file is a fresh start; any other stat error (permissions, a
		// bad mount) must refuse to start rather than silently
		// re-greylist the world with an empty table.
		switch _, err := os.Stat(*state); {
		case err == nil:
			if err := g.LoadFile(*state); err != nil {
				return fmt.Errorf("loading state: %w", err)
			}
			fmt.Fprintf(os.Stderr, "restored state from %s (%d pending, %d passed)\n",
				*state, g.PendingCount(), g.PassedCount())
		case os.IsNotExist(err):
			// fresh start
		default:
			return fmt.Errorf("checking state file: %w", err)
		}
	}

	var tlsConfig *tls.Config
	switch {
	case *tlsCert != "" && *tlsKey != "":
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			return fmt.Errorf("loading TLS keypair: %w", err)
		}
		tlsConfig = &tls.Config{Certificates: []tls.Certificate{cert}}
	case *tlsSelf:
		cert, err := smtpserver.SelfSignedCert(*hostname)
		if err != nil {
			return err
		}
		tlsConfig = &tls.Config{Certificates: []tls.Certificate{cert}}
		fmt.Fprintln(os.Stderr, "STARTTLS enabled with an ephemeral self-signed certificate")
	}

	// The trace ring only matters when /debug/traces can serve it.
	var tracer *trace.Tracer
	if *adminAddr != "" && *traceRing > 0 {
		tracer = trace.New(*traceRing)
	}

	// With -wal, recovery (checkpoint + log replay with torn-tail
	// truncation) and all further persistence run through the WAL.
	var wal *greylist.WAL
	if *walPath != "" {
		sync, err := greylist.ParseSyncPolicy(*walSync)
		if err != nil {
			return err
		}
		var info greylist.RecoverInfo
		wal, info, err = greylist.OpenWAL(greylist.WALConfig{
			Path:           *walPath,
			CheckpointPath: *state,
			Sync:           sync,
			SyncEvery:      *walSyncIntv,
			CompactBytes:   *walCompact,
			Tracer:         tracer,
		}, eng)
		if err != nil {
			return fmt.Errorf("opening wal: %w", err)
		}
		fmt.Fprintf(os.Stderr,
			"wal: recovered from %s (checkpoint=%v, %d records replayed, %d torn bytes dropped, generation %d): %d pending, %d passed\n",
			*walPath, info.CheckpointLoaded, info.ReplayedRecords, info.TornBytes, info.Generation,
			g.PendingCount(), g.PassedCount())
	}

	deferReply := func(v greylist.Verdict) *smtpproto.Reply {
		if v.Decision == greylist.Pass {
			return nil
		}
		r := smtpproto.NewReply(451, "4.7.1",
			fmt.Sprintf("Greylisted, please retry in %d seconds", int(v.WaitRemaining.Seconds())))
		return &r
	}
	srv := smtpserver.New(smtpserver.Config{
		Hostname:      *hostname,
		Clock:         simtime.Real{},
		TLS:           tlsConfig,
		StampReceived: true,
		ReadTimeout:   5 * time.Minute, // RFC 5321 §4.5.3.2
		MaxRcptBatch:  *rcptBatch,
		Tracer:        tracer,
		Hooks: smtpserver.Hooks{
			OnRcptTraced: func(tr *trace.Trace, clientIP, sender, rcpt string) *smtpproto.Reply {
				return deferReply(g.CheckTraced(greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: rcpt}, tr))
			},
			// Pipelined RCPT bursts take one trip through the engine's
			// locks instead of one per recipient.
			OnRcptBatch: func(clientIP, sender string, rcpts []string) []*smtpproto.Reply {
				ts := make([]greylist.Triplet, len(rcpts))
				for i, rcpt := range rcpts {
					ts[i] = greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: rcpt}
				}
				replies := make([]*smtpproto.Reply, len(rcpts))
				for i, v := range g.CheckBatch(ts, nil) {
					replies[i] = deferReply(v)
				}
				return replies
			},
			OnMessage: func(env *smtpserver.Envelope) *smtpproto.Reply {
				fmt.Fprintf(os.Stderr, "accepted: client=%s from=<%s> rcpts=%d bytes=%d\n",
					env.ClientIP, env.Sender, len(env.Recipients), len(env.Data))
				return nil
			},
			OnSessionEnd: func(tr *smtpserver.SessionTrace) {
				if !*fingerprint {
					return
				}
				v := dialect.Analyze(tr)
				fmt.Fprintf(os.Stderr, "fingerprint: client=%s %s suspicious=%v\n",
					tr.ClientIP, v, v.Suspicious())
			},
		},
	})

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "greylistd listening on %s (threshold %v, subnet keying %v)\n",
		l.Addr(), *threshold, *subnet)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()

	var policySrv *policyd.Server
	if *policyAddr != "" {
		policySrv = policyd.New(g)
		policySrv.PrependHeader = true
		policySrv.SetTracer(tracer)
		pl, err := net.Listen("tcp", *policyAddr)
		if err != nil {
			return err
		}
		go func() {
			if err := policySrv.Serve(pl); err != nil {
				fmt.Fprintln(os.Stderr, "policy server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "postfix policy service on %s (check_policy_service inet:%s)\n",
			pl.Addr(), pl.Addr())
	}

	var admin *metrics.AdminServer
	var obsv *obs.Observatory
	if *adminAddr != "" {
		reg := metrics.NewRegistry()
		metrics.RegisterProcess(reg)
		g.Register(reg)
		srv.Register(reg)
		for _, s := range stages {
			if r, ok := s.(interface{ Register(*metrics.Registry) }); ok {
				r.Register(reg)
			}
		}
		if wal != nil {
			wal.Register(reg)
		}
		if policySrv != nil {
			policySrv.Register(reg)
		}
		var extra []metrics.Endpoint
		if tracer != nil {
			// /debug/traces serves the ring; the trailer appends the
			// latency exemplars that link histogram buckets to trace IDs.
			extra = append(extra, metrics.Endpoint{
				Path:    "/debug/traces",
				Handler: tracer.Handler(func(w io.Writer) { reg.WriteExemplars(w) }),
			})
		}

		// The live observatory: the engine feeds verdict sketches and
		// top-K sets on the hot path, cumulative counters are polled at
		// window rotation, and /observatory serves the windowed rollup
		// that greyctl renders.
		obsv = obs.New(obs.Config{Window: *obsWindow, Windows: *obsWindows})
		eng.SetObserver(obsv.Greylist())
		obsv.WatchGreylist(eng.Stats)
		if eng.Chain() != nil {
			obsv.WatchChain(eng.Chain)
		}
		if wal != nil {
			obsv.WatchWAL(wal)
		}
		obsv.Cumulative("smtp.sessions.delivered", func() uint64 {
			d, _, _ := srv.OutcomeCounts()
			return d
		})
		obsv.Cumulative("smtp.sessions.deferred", func() uint64 {
			_, d, _ := srv.OutcomeCounts()
			return d
		})
		obsv.Cumulative("smtp.sessions.none", func() uint64 {
			_, _, n := srv.OutcomeCounts()
			return n
		})
		obsv.Register(reg)
		extra = append(extra, obsv.Endpoint())

		// /healthz readiness: the trivial always-ok probe is replaced
		// with real subsystem checks a load balancer can drain on.
		health := metrics.NewHealth()
		if wal != nil {
			health.Add("wal", wal.Healthy)
		}
		if len(stages) > 0 {
			health.Add("bypass-chain", func() error {
				if ch := eng.Chain(); ch == nil || ch.Len() == 0 {
					return fmt.Errorf("bypass chain not loaded")
				}
				return nil
			})
		}
		health.Add("observatory", obsv.Healthy)
		extra = append(extra, health.Endpoint())
		obsv.Start()
		admin, err = metrics.ServeAdmin(*adminAddr, reg, extra...)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s/metrics (pprof at /debug/pprof/)\n",
			admin.Addr())
		if tracer != nil {
			fmt.Fprintf(os.Stderr, "session traces on http://%s/debug/traces (ring of %d)\n",
				admin.Addr(), *traceRing)
		}
	}

	gcStop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(*gcEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				if n := g.GC(); n > 0 {
					fmt.Fprintf(os.Stderr, "gc: dropped %d expired records\n", n)
				}
			case <-gcStop:
				return
			}
		}
	}()

	// shutdownState persists whatever the daemon holds: with a WAL, one
	// final checkpoint compaction (Close); without, a snapshot save.
	// Shared by the clean-signal path and the listener-failure path —
	// previously the latter returned without saving anything.
	shutdownState := func() error {
		if wal != nil {
			if err := wal.Close(); err != nil {
				return fmt.Errorf("wal close: %w", err)
			}
			fmt.Fprintf(os.Stderr, "wal: final checkpoint written to %s\n", *state)
			return nil
		}
		if *state != "" {
			if err := g.SaveFile(*state); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "saved state to %s\n", *state)
		}
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		close(gcStop)
		if obsv != nil {
			obsv.Stop()
		}
		if serr := shutdownState(); serr != nil {
			fmt.Fprintln(os.Stderr, "greylistd: saving state after listener failure:", serr)
		}
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "received %v, shutting down\n", s)
	}
	close(gcStop)
	srv.Close()
	if obsv != nil {
		obsv.Stop()
	}
	if policySrv != nil {
		policySrv.Close()
	}
	if admin != nil {
		// Drain in-flight scrapes (a /debug/traces dump mid-shutdown
		// should finish) instead of snapping the listener shut.
		if err := admin.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "admin shutdown:", err)
		}
	}

	if err := shutdownState(); err != nil {
		return err
	}
	st := g.Stats()
	fmt.Fprintf(os.Stderr, "stats: %d checks, %d deferred-new, %d passed-retry, %d passed-known\n",
		st.Checks, st.DeferredNew, st.PassedRetry, st.PassedKnown)
	return nil
}
