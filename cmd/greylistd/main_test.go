package main

import (
	"bufio"
	netsmtp "net/smtp"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoverySmoke is the acceptance test for -wal, end to end
// through the real binary: deliver mail until the engine holds both a
// passed triplet and a pending one, SIGKILL the daemon (no shutdown
// hook runs), restart it on the same state directory, and require the
// passed triplet to sail through immediately — the state survived the
// crash via the write-ahead log, not the (never-written) shutdown
// snapshot.
func TestCrashRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped under -short")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "greylistd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	statePath := filepath.Join(dir, "state.ck")
	walPath := filepath.Join(dir, "wal.log")

	listenRe := regexp.MustCompile(`^greylistd listening on (\S+) `)
	recoverRe := regexp.MustCompile(`^wal: recovered from .*: (\d+) pending, (\d+) passed$`)

	type daemon struct {
		cmd   *exec.Cmd
		addr  string
		mu    *sync.Mutex
		lines *[]string
	}
	start := func() daemon {
		cmd := exec.Command(bin,
			"-listen", "127.0.0.1:0",
			"-threshold", "1s",
			"-state", statePath,
			"-wal", walPath,
			"-wal-sync", "always",
			"-gc", "1m",
		)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting daemon: %v", err)
		}
		var mu sync.Mutex
		var lines []string
		addrCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stderr)
			for sc.Scan() {
				line := sc.Text()
				mu.Lock()
				lines = append(lines, line)
				mu.Unlock()
				if m := listenRe.FindStringSubmatch(line); m != nil {
					select {
					case addrCh <- m[1]:
					default:
					}
				}
			}
		}()
		select {
		case addr := <-addrCh:
			return daemon{cmd: cmd, addr: addr, mu: &mu, lines: &lines}
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			t.Fatalf("daemon never reported its listen address; stderr:\n%s", strings.Join(lines, "\n"))
			return daemon{}
		}
	}
	send := func(addr, sender string) error {
		return netsmtp.SendMail(addr, nil, sender,
			[]string{"victim@smoke.example"},
			[]byte("Subject: smoke\r\n\r\ncrash recovery\r\n"))
	}

	d := start()

	// First attempt defers (451), the retry after the 1 s threshold
	// passes — the engine now holds one passed triplet.
	if err := send(d.addr, "passed@client.example"); err == nil || !strings.Contains(err.Error(), "451") {
		t.Fatalf("first attempt: err = %v, want 451 greylist defer", err)
	}
	time.Sleep(1500 * time.Millisecond)
	if err := send(d.addr, "passed@client.example"); err != nil {
		t.Fatalf("retry after threshold: %v", err)
	}
	// A second sender defers and stays pending across the crash.
	if err := send(d.addr, "pending@client.example"); err == nil || !strings.Contains(err.Error(), "451") {
		t.Fatalf("second sender: err = %v, want 451 greylist defer", err)
	}

	// Appends are asynchronous (the SMTP reply races the consumer's
	// drain), so give the consumer a beat to write and fsync the last
	// record — -wal-sync always bounds the loss window to this gap, it
	// does not make the reply wait. Then kill -9: no SIGTERM handler,
	// no shutdown snapshot.
	time.Sleep(500 * time.Millisecond)
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	d2 := start()
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		d2.cmd.Wait()
	}()

	// The recovery report must account for both triplets.
	d2.mu.Lock()
	var recovered string
	for _, line := range *d2.lines {
		if recoverRe.MatchString(line) {
			recovered = line
		}
	}
	all := strings.Join(*d2.lines, "\n")
	d2.mu.Unlock()
	if recovered == "" {
		t.Fatalf("no wal recovery line in stderr:\n%s", all)
	}
	m := recoverRe.FindStringSubmatch(recovered)
	pending, _ := strconv.Atoi(m[1])
	passed, _ := strconv.Atoi(m[2])
	if pending < 1 || passed < 1 {
		t.Fatalf("recovered %d pending, %d passed (want >=1 each): %s", pending, passed, recovered)
	}

	// The proof: the passed triplet delivers on its first post-crash
	// attempt. Without recovery it would be greylisted from scratch.
	if err := send(d2.addr, "passed@client.example"); err != nil {
		t.Fatalf("passed triplet re-greylisted after crash: %v", err)
	}
}

// TestWALRequiresState covers the flag contract without the full smoke
// dance: -wal without -state must refuse to start.
func TestWALRequiresState(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the daemon source; skipped under -short")
	}
	dir := t.TempDir()
	cmd := exec.Command("go", "run", ".", "-wal", filepath.Join(dir, "wal.log"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-wal without -state started successfully:\n%s", out)
	}
	if !strings.Contains(string(out), "-state") {
		t.Fatalf("error does not mention -state:\n%s", out)
	}
}
