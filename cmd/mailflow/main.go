// Command mailflow runs the benign-mail experiments of Section V: the
// webmail retry study (Table III), the MTA schedule survey (Table IV) and
// the deployment delay CDF (Figure 5). It can also sweep the greylisting
// threshold to expose the spam-blocked vs. benign-delay trade-off behind
// the paper's "use a very short threshold" recommendation.
//
// Usage:
//
//	mailflow -exp table3|table4|fig5|sweep [-threshold 6h] [-seed 1]
//	         [-days 120] [-rate 200] [-log out.log]
//	         [-admin-addr 127.0.0.1:9926]
//
// With -admin-addr, an HTTP listener exposes process metrics on /metrics
// and live profiling on /debug/pprof/ for the duration of the run —
// useful for profiling long fig5 generations and threshold sweeps.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/maillog"
	"repro/internal/metrics"
	"repro/internal/mta"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/webmail"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mailflow:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "table3", "experiment: table3, table4, fig5, sweep")
		threshold = flag.Duration("threshold", 6*time.Hour, "greylisting threshold for table3")
		seed      = flag.Int64("seed", 1, "random seed")
		days      = flag.Int("days", 120, "fig5 deployment length")
		rate      = flag.Int("rate", 200, "fig5 messages per day")
		logOut    = flag.String("log", "", "fig5: also write the raw synthetic log here")
		adminAddr = flag.String("admin-addr", "", "serve /metrics and /debug/pprof on this address for the duration of the run")
	)
	flag.Parse()

	if *adminAddr != "" {
		reg := metrics.NewRegistry()
		metrics.RegisterProcess(reg)
		admin, err := metrics.ServeAdmin(*adminAddr, reg)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		defer admin.Close()
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s/metrics (pprof at /debug/pprof/)\n",
			admin.Addr())
	}

	switch *exp {
	case "table3":
		results := webmail.SimulateAll(*threshold)
		providers := webmail.Top10()
		tbl := stats.NewTable("PROVIDER", "SAME IP", "ATTEMPTS", "DELIVER", "DELAY/GIVE-UP")
		for i, r := range results {
			same := "yes"
			if !r.SameIP {
				same = fmt.Sprintf("no (%d)", providers[i].PoolSize)
			}
			deliver, detail := "no", stats.FormatDuration(providers[i].GiveUpAfter())+" (gave up)"
			if r.Delivered {
				deliver, detail = "yes", stats.FormatDuration(r.DeliveredAt)
			}
			tbl.AddRow(r.Provider, same, fmt.Sprintf("%d", r.AttemptsMade), deliver, detail)
		}
		fmt.Printf("Webmail delivery attempts with a %v greylisting threshold\n\n", *threshold)
		fmt.Print(tbl.String())

	case "table4":
		fmt.Print(report.Table4())

	case "fig5":
		cfg := maillog.DefaultGeneratorConfig(*seed)
		cfg.Days = *days
		cfg.MessagesPerDay = *rate
		entries, summary, err := maillog.Generate(cfg)
		if err != nil {
			return err
		}
		if *logOut != "" {
			f, err := os.Create(*logOut)
			if err != nil {
				return err
			}
			if err := maillog.WriteLog(f, entries); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d log entries to %s\n", len(entries), *logOut)
		}
		cdf := maillog.Fig5CDF(entries)
		fmt.Printf("Deployment: %d days, %d messages (%d lost), %d greylisted+delivered\n",
			cfg.Days, summary.Messages, summary.Lost, cdf.N())
		fmt.Printf("P(delay<=10min)=%.2f  P(delay>50min)=%.2f  median=%.0fs  max=%.0fs\n\n",
			cdf.P(600), 1-cdf.P(3000), cdf.Median(), cdf.Max())
		fmt.Print(stats.RenderCDF(cdf, 60, 12, "s"))

	case "sweep":
		// Threshold sweep: what each threshold costs benign senders.
		fmt.Println("Greylisting threshold sweep: benign delivery delay per MTA")
		fmt.Println()
		thresholds := []time.Duration{
			5 * time.Second, 300 * time.Second, 30 * time.Minute,
			2 * time.Hour, 6 * time.Hour, 24 * time.Hour, 3 * 24 * time.Hour,
		}
		header := []string{"MTA"}
		for _, th := range thresholds {
			header = append(header, th.String())
		}
		tbl := stats.NewTable(header...)
		for _, s := range mta.All() {
			row := []string{s.Name}
			for _, th := range thresholds {
				if delay, ok := s.DeliveryDelay(th); ok {
					row = append(row, stats.FormatDuration(delay))
				} else {
					row = append(row, "BOUNCED")
				}
			}
			tbl.AddRow(row...)
		}
		fmt.Print(tbl.String())

	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}
