// Command mailflow runs the benign-mail experiments of Section V: the
// webmail retry study (Table III), the MTA schedule survey (Table IV) and
// the deployment delay CDF (Figure 5). It can also sweep the greylisting
// threshold to expose the spam-blocked vs. benign-delay trade-off behind
// the paper's "use a very short threshold" recommendation, or — with
// -exp queue — run a live MTA retry queue against a greylisted victim
// domain in virtual time instead of evaluating the schedule analytically.
//
// -exp soak is the wire-level load harness: an open-loop TCP generator
// (internal/loadgen) drives a real greylisting SMTP server — an external
// greylistd via -addr, or an in-process engine+server listening on a
// real loopback socket — with mixed ham/spam traffic, and reports
// sustained sessions/sec plus per-verb and per-verdict latency
// percentiles. -smoke selects a short CI profile; -heap-check fails the
// run if any phase's heap watermark exceeds the given byte ceiling;
// -bench-out writes the machine-readable report (BENCH_soak.json).
//
// Usage:
//
//	mailflow -exp table3|table4|fig5|sweep|queue|soak [-threshold 6h] [-seed 1]
//	         [-days 120] [-rate 200] [-log out.log]
//	         [-mta sendmail] [-messages 5] [-trace out.jsonl]
//	         [-admin-addr 127.0.0.1:9926]
//	         [-addr host:25] [-soak-rate 20000] [-conns 32] [-ham 0.25]
//	         [-rcpt-batch 16] [-warmup 2s] [-measure 10s] [-soak 30s]
//	         [-slo 50ms] [-smoke] [-heap-check 268435456] [-bench-out BENCH_soak.json]
//
// With -admin-addr, an HTTP listener exposes process metrics on /metrics
// and live profiling on /debug/pprof/ for the duration of the run —
// useful for profiling long fig5 generations and threshold sweeps. For
// -exp queue it also serves the finished message traces on
// /debug/traces.
//
// -trace (queue experiment only) records every queued message as an
// end-to-end trace — enqueue, MX walk, dials, server verbs, greylist
// verdict, retry scheduling, final outcome — and writes the finished
// traces as JSONL to the given file, or stdout for "-" behind a
// "# == trace snapshot (jsonl) ==" marker line after the report text.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/greylist"
	"repro/internal/lab"
	"repro/internal/loadgen"
	"repro/internal/maillog"
	"repro/internal/metrics"
	"repro/internal/mta"
	"repro/internal/mtaqueue"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/smtpproto"
	"repro/internal/smtpserver"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/webmail"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mailflow:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp       = flag.String("exp", "table3", "experiment: table3, table4, fig5, sweep, queue, soak")
		threshold = flag.Duration("threshold", 6*time.Hour, "greylisting threshold for table3 and queue")
		seed      = flag.Int64("seed", 1, "random seed")
		days      = flag.Int("days", 120, "fig5 deployment length")
		rate      = flag.Int("rate", 200, "fig5 messages per day")
		logOut    = flag.String("log", "", "fig5: also write the raw synthetic log here")
		mtaName   = flag.String("mta", "sendmail", "queue: MTA retry schedule to run (sendmail, exim, postfix, qmail, courier, exchange)")
		messages  = flag.Int("messages", 5, "queue: benign messages to submit")
		traceOut  = flag.String("trace", "", "queue: write every message's end-to-end trace as JSONL to this file ('-' = stdout)")
		adminAddr = flag.String("admin-addr", "", "serve /metrics and /debug/pprof on this address for the duration of the run")

		soakAddr  = flag.String("addr", "", "soak: target server host:port (empty = in-process greylisting server on a loopback socket)")
		soakRate  = flag.Float64("soak-rate", 20000, "soak: offered sessions per second (open-loop)")
		conns     = flag.Int("conns", 32, "soak: connection pool size (one pipelined worker per connection)")
		hamFrac   = flag.Float64("ham", 0.25, "soak: ham fraction of offered sessions; the rest are spam campaign bursts")
		rcptBatch = flag.Int("rcpt-batch", 16, "soak: max pipelined RCPTs per volley (keep <= the server's -rcpt-batch)")
		warmup    = flag.Duration("warmup", 2*time.Second, "soak: warmup phase (discarded from the report)")
		measure   = flag.Duration("measure", 10*time.Second, "soak: measurement phase")
		soakLen   = flag.Duration("soak", 30*time.Second, "soak: extended phase watching for memory growth")
		slo       = flag.Duration("slo", 50*time.Millisecond, "soak: intended-to-complete session latency objective")
		smoke     = flag.Bool("smoke", false, "soak: short single-core CI profile (overrides rate, conns and phase lengths)")
		probe     = flag.Bool("probe", false, "soak: engine-stress profile — pure pipelined RCPT probe volleys over kept connections (no DATA/QUIT churn)")
		heapCheck = flag.Int64("heap-check", 0, "soak: fail if any phase's heap watermark exceeds this many bytes (0 = off)")
		benchOut  = flag.String("bench-out", "", "soak: write the machine-readable report JSON to this file")

		obsWindow  = flag.Duration("obs-window", time.Second, "observatory rollup window duration; needs -admin-addr")
		obsWindows = flag.Int("obs-windows", 60, "observatory ring length (closed windows kept for /observatory)")
	)
	flag.Parse()

	// The queue experiment is the one live (traced) path; the ring
	// holds one trace per submitted message.
	var tracer *trace.Tracer
	if *exp == "queue" && (*traceOut != "" || *adminAddr != "") {
		n := *messages
		if n < 16 {
			n = 16
		}
		tracer = trace.New(n)
	}

	var adminReg *metrics.Registry
	var obsv *obs.Observatory
	if *adminAddr != "" {
		reg := metrics.NewRegistry()
		adminReg = reg
		metrics.RegisterProcess(reg)
		var extra []metrics.Endpoint
		if tracer != nil {
			extra = append(extra, metrics.Endpoint{Path: "/debug/traces", Handler: tracer.Handler()})
		}
		// The live observatory rides the admin listener: the soak's
		// in-process engine and load generator (or the queue
		// experiment's retry scheduler) feed it, /observatory serves
		// the rollups greyctl renders. One-second windows by default —
		// soak runs are short and greyctl watch wants fine grain.
		obsv = obs.New(obs.Config{Window: *obsWindow, Windows: *obsWindows})
		obsv.Register(reg)
		extra = append(extra, obsv.Endpoint())
		health := metrics.NewHealth()
		health.Add("observatory", obsv.Healthy)
		extra = append(extra, health.Endpoint())
		obsv.Start()
		defer obsv.Stop()
		admin, err := metrics.ServeAdmin(*adminAddr, reg, extra...)
		if err != nil {
			return fmt.Errorf("admin listener: %w", err)
		}
		defer func() {
			if err := admin.Shutdown(context.Background()); err != nil {
				fmt.Fprintln(os.Stderr, "admin shutdown:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "admin endpoint on http://%s/metrics (pprof at /debug/pprof/, observatory at /observatory)\n",
			admin.Addr())
	}

	switch *exp {
	case "table3":
		results := webmail.SimulateAll(*threshold)
		providers := webmail.Top10()
		tbl := stats.NewTable("PROVIDER", "SAME IP", "ATTEMPTS", "DELIVER", "DELAY/GIVE-UP")
		for i, r := range results {
			same := "yes"
			if !r.SameIP {
				same = fmt.Sprintf("no (%d)", providers[i].PoolSize)
			}
			deliver, detail := "no", stats.FormatDuration(providers[i].GiveUpAfter())+" (gave up)"
			if r.Delivered {
				deliver, detail = "yes", stats.FormatDuration(r.DeliveredAt)
			}
			tbl.AddRow(r.Provider, same, fmt.Sprintf("%d", r.AttemptsMade), deliver, detail)
		}
		fmt.Printf("Webmail delivery attempts with a %v greylisting threshold\n\n", *threshold)
		fmt.Print(tbl.String())

	case "table4":
		fmt.Print(report.Table4())

	case "fig5":
		cfg := maillog.DefaultGeneratorConfig(*seed)
		cfg.Days = *days
		cfg.MessagesPerDay = *rate
		entries, summary, err := maillog.Generate(cfg)
		if err != nil {
			return err
		}
		if *logOut != "" {
			f, err := os.Create(*logOut)
			if err != nil {
				return err
			}
			if err := maillog.WriteLog(f, entries); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d log entries to %s\n", len(entries), *logOut)
		}
		cdf := maillog.Fig5CDF(entries)
		fmt.Printf("Deployment: %d days, %d messages (%d lost), %d greylisted+delivered\n",
			cfg.Days, summary.Messages, summary.Lost, cdf.N())
		fmt.Printf("P(delay<=10min)=%.2f  P(delay>50min)=%.2f  median=%.0fs  max=%.0fs\n\n",
			cdf.P(600), 1-cdf.P(3000), cdf.Median(), cdf.Max())
		fmt.Print(stats.RenderCDF(cdf, 60, 12, "s"))

	case "sweep":
		// Threshold sweep: what each threshold costs benign senders.
		fmt.Println("Greylisting threshold sweep: benign delivery delay per MTA")
		fmt.Println()
		thresholds := []time.Duration{
			5 * time.Second, 300 * time.Second, 30 * time.Minute,
			2 * time.Hour, 6 * time.Hour, 24 * time.Hour, 3 * 24 * time.Hour,
		}
		header := []string{"MTA"}
		for _, th := range thresholds {
			header = append(header, th.String())
		}
		tbl := stats.NewTable(header...)
		for _, s := range mta.All() {
			row := []string{s.Name}
			for _, th := range thresholds {
				if delay, ok := s.DeliveryDelay(th); ok {
					row = append(row, stats.FormatDuration(delay))
				} else {
					row = append(row, "BOUNCED")
				}
			}
			tbl.AddRow(row...)
		}
		fmt.Print(tbl.String())

	case "queue":
		// A live run of Table IV's subject matter: a real retry queue
		// delivering benign mail through a greylisted victim domain,
		// with every message traced from enqueue to verdict.
		sched, err := mta.ByName(*mtaName)
		if err != nil {
			return err
		}
		l, err := lab.New(lab.Config{Defense: core.DefenseGreylisting, Threshold: *threshold})
		if err != nil {
			return err
		}
		defer l.Close()
		qcfg := mtaqueue.Config{
			Schedule:  sched,
			HeloName:  "mta.benign.example",
			Resolver:  l.Resolver,
			Dialer:    &smtpclient.SimDialer{Net: l.Net, LocalIP: "203.0.113.50"},
			Sched:     l.Sched,
			Tracer:    tracer,
			TraceTags: trace.Tags{Defense: "greylisting", Threshold: *threshold},
		}
		if obsv != nil {
			qcfg.RetryObserver = obsv.RetrySink()
		}
		q, err := mtaqueue.New(qcfg)
		if err != nil {
			return err
		}
		for i := 0; i < *messages; i++ {
			q.Submit(lab.TargetDomain, smtpclient.Message{
				From: fmt.Sprintf("sender%d@benign.example", i),
				To:   []string{fmt.Sprintf("user%d@%s", i, lab.TargetDomain)},
				Data: []byte("Subject: hello\r\n\r\nbenign message\r\n"),
			})
		}
		l.Sched.Run()
		queued, delivered, bounced := q.Summary()
		fmt.Printf("%s retry queue vs a %v greylisting threshold: %d delivered, %d bounced, %d still queued\n\n",
			sched.Name, *threshold, delivered, bounced, queued)
		tbl := stats.NewTable("MSG", "STATUS", "ATTEMPTS", "DELAY")
		for _, m := range q.Messages() {
			status := m.Status.String()
			if m.Bounce == mtaqueue.BounceExpired {
				status += " (queue lifetime expired)"
			}
			delay := "-"
			if m.Status == mtaqueue.StatusDelivered {
				delay = stats.FormatDuration(m.Delay)
			}
			tbl.AddRow(fmt.Sprintf("%d", m.ID), status, fmt.Sprintf("%d", m.Attempts), delay)
		}
		fmt.Print(tbl.String())

	case "soak":
		// -threshold's 6h default suits the analytic experiments; a live
		// soak wants the paper's "very short threshold" so retried
		// triplets actually pass and the DATA path sees traffic. Keep an
		// explicit -threshold if the user set one.
		thr := time.Second
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threshold" {
				thr = *threshold
			}
		})
		return runSoak(soakOptions{
			addr:      *soakAddr,
			threshold: thr,
			rate:      *soakRate,
			ham:       *hamFrac,
			conns:     *conns,
			rcptBatch: *rcptBatch,
			warmup:    *warmup,
			measure:   *measure,
			soak:      *soakLen,
			slo:       *slo,
			seed:      *seed,
			smoke:     *smoke,
			probe:     *probe,
			heapCheck: *heapCheck,
			benchOut:  *benchOut,
			obsv:      obsv,
		}, adminReg)

	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	if tracer != nil && *traceOut != "" {
		if *traceOut == "-" {
			fmt.Println("# == trace snapshot (jsonl) ==")
			return tracer.WriteJSONL(os.Stdout)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote trace snapshot to %s\n", *traceOut)
	}
	return nil
}

type soakOptions struct {
	addr      string
	threshold time.Duration
	rate      float64
	ham       float64
	conns     int
	rcptBatch int
	warmup    time.Duration
	measure   time.Duration
	soak      time.Duration
	slo       time.Duration
	seed      int64
	smoke     bool
	probe     bool
	heapCheck int64
	benchOut  string
	obsv      *obs.Observatory
}

// runSoak drives internal/loadgen against a real SMTP server over real
// TCP. With no -addr it stands up the same engine+hook wiring greylistd
// runs — greylist.Greylister deciding pipelined RCPT batches through
// smtpserver.Hooks.OnRcptBatch — inside this process on a loopback
// socket, so the measured path still crosses the kernel TCP stack.
func runSoak(opt soakOptions, adminReg *metrics.Registry) error {
	if opt.smoke {
		// CI profile: small enough for a shared single-core runner,
		// long enough that a leaky session path shows in the soak
		// phase's heap watermark.
		opt.rate, opt.conns = 2000, 4
		opt.warmup, opt.measure, opt.soak = time.Second, 2*time.Second, 3*time.Second
	}

	addr := opt.addr
	if addr == "" {
		g := greylist.New(greylist.Policy{
			Threshold:    opt.threshold,
			RetryWindow:  48 * time.Hour,
			PassLifetime: 35 * 24 * time.Hour,
		}, simtime.Real{})
		if adminReg != nil {
			g.Register(adminReg)
		}
		if opt.obsv != nil {
			g.SetObserver(opt.obsv.Greylist())
			opt.obsv.WatchGreylist(g.Stats)
		}
		srv := smtpserver.New(smtpserver.Config{
			Hostname:      "soak.localdomain",
			Clock:         simtime.Real{},
			StampReceived: true,
			ReadTimeout:   time.Minute,
			MaxRcptBatch:  opt.rcptBatch,
			Hooks: smtpserver.Hooks{
				OnRcptBatch: func(clientIP, sender string, rcpts []string) []*smtpproto.Reply {
					ts := make([]greylist.Triplet, len(rcpts))
					for i, rcpt := range rcpts {
						ts[i] = greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: rcpt}
					}
					replies := make([]*smtpproto.Reply, len(rcpts))
					for i, v := range g.CheckBatch(ts, nil) {
						if v.Decision != greylist.Pass {
							r := smtpproto.NewReply(451, "4.7.1", "Greylisted, please retry")
							replies[i] = &r
						}
					}
					return replies
				},
			},
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(l)
		defer srv.Close()
		addr = l.Addr().String()
		fmt.Fprintf(os.Stderr, "in-process greylisting server on %s (threshold %v)\n", addr, opt.threshold)
	}

	gen := loadgen.New(loadgen.Config{
		Addr:         addr,
		Conns:        opt.conns,
		Rate:         opt.rate,
		HamFraction:  opt.ham,
		MaxRcptBatch: opt.rcptBatch,
		Warmup:       opt.warmup,
		Measure:      opt.measure,
		Soak:         opt.soak,
		SLO:          opt.slo,
		Seed:         opt.seed,
		Probe:        opt.probe,
		Obs:          opt.obsv,
	})
	if adminReg != nil {
		gen.Register(adminReg)
	}
	rep, err := gen.Run()
	if err != nil {
		return err
	}
	rep.WriteSummary(os.Stdout)

	if opt.benchOut != "" {
		out := struct {
			Experiment string          `json:"experiment"`
			Go         string          `json:"go"`
			Machine    string          `json:"machine"`
			Smoke      bool            `json:"smoke"`
			Report     *loadgen.Report `json:"report"`
		}{"soak", runtime.Version(), runtime.GOOS + "/" + runtime.GOARCH, opt.smoke, rep}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(opt.benchOut, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote soak report to %s\n", opt.benchOut)
	}

	if opt.heapCheck > 0 {
		for _, p := range rep.Phases {
			if p.HeapMaxBytes > uint64(opt.heapCheck) {
				return fmt.Errorf("heap check failed: phase %s watermark %d bytes exceeds ceiling %d",
					p.Name, p.HeapMaxBytes, opt.heapCheck)
			}
		}
		fmt.Printf("heap check ok: every phase watermark under %d bytes\n", opt.heapCheck)
	}
	return nil
}
