// Command authdns is a small authoritative DNS server and nolisting
// deployment tool built on the reproduction's DNS substrate.
//
// Serve one or more zone files over real UDP:
//
//	authdns -listen 127.0.0.1:5353 -zone foo.net=foo.net.zone
//
// Generate a nolisting zone file for a domain (Figure 1's layout: a
// primary MX whose host has an A record but no SMTP listener, and a
// working secondary):
//
//	authdns -make-nolisting corp.example \
//	        -dead mx1.corp.example=198.51.100.1 \
//	        -live mx2.corp.example=198.51.100.2 > corp.example.zone
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/dnsserver"
	"repro/internal/nolist"
	"repro/internal/zonefile"
)

type zoneFlags []string

func (z *zoneFlags) String() string { return strings.Join(*z, ",") }

func (z *zoneFlags) Set(v string) error {
	*z = append(*z, v)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "authdns:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen        = flag.String("listen", "127.0.0.1:5353", "UDP address to serve on")
		makeNolisting = flag.String("make-nolisting", "", "generate a nolisting zone file for this domain and exit")
		dead          = flag.String("dead", "", "host=ip of the dead primary MX (with -make-nolisting)")
		live          = flag.String("live", "", "host=ip of the working secondary MX (with -make-nolisting)")
	)
	var zones zoneFlags
	flag.Var(&zones, "zone", "origin=path of a zone file to serve (repeatable)")
	flag.Parse()

	if *makeNolisting != "" {
		return makeNolistingZone(*makeNolisting, *dead, *live)
	}
	if len(zones) == 0 {
		return fmt.Errorf("nothing to do: pass -zone or -make-nolisting (see -help)")
	}

	srv := dnsserver.New()
	for _, spec := range zones {
		origin, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("-zone %q: want origin=path", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		zone, err := zonefile.Parse(f, origin)
		f.Close()
		if err != nil {
			return err
		}
		srv.AddZone(zone)
		fmt.Fprintf(os.Stderr, "loaded zone %s from %s (%d names)\n",
			zone.Origin(), path, len(zone.Names()))
	}

	addr, err := srv.ListenAndServeUDP(*listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "authdns serving on %s (try: dig @%s -p PORT yourzone MX)\n", addr, addrHost(addr.String()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down")
	return srv.Close()
}

func addrHost(addr string) string {
	if i := strings.LastIndexByte(addr, ':'); i > 0 {
		return addr[:i]
	}
	return addr
}

func makeNolistingZone(domain, dead, live string) error {
	deadHost, deadIP, ok := strings.Cut(dead, "=")
	if !ok {
		return fmt.Errorf("-dead: want host=ip")
	}
	liveHost, liveIP, ok := strings.Cut(live, "=")
	if !ok {
		return fmt.Errorf("-live: want host=ip")
	}
	dep := nolist.Deployment{
		Domain:   domain,
		DeadHost: deadHost, DeadIP: deadIP,
		LiveHost: liveHost, LiveIP: liveIP,
	}
	zone, err := dep.Zone()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "; nolisting deployment for %s\n", domain)
	fmt.Fprintf(os.Stderr, "; REMEMBER: %s must have port 25 CLOSED (a real machine, not a black hole)\n", deadHost)
	return zonefile.Format(os.Stdout, zone)
}
