// Command nolistscan runs the Section IV-A worldwide-adoption pipeline on
// a synthetic Internet: generate a population with the Figure 2 mixture,
// scan it twice (the paper's scans were two months apart), classify every
// domain with the two-scan rule and print the adoption statistics and
// Alexa cross-check.
//
// Usage:
//
//	nolistscan [-domains 20000] [-seed 1] [-workers 0] [-transient 0.01]
//	           [-noglue 0.2] [-gap 1344h] [-truth] [-metrics FILE]
//
// At paper scale, run the disk-backed streaming pipeline instead of
// materializing the population (output is byte-identical):
//
//	nolistscan -domains 135000000 -stream -checkpoint-dir /var/tmp/scan
//	nolistscan -domains 135000000 -stream -checkpoint-dir /var/tmp/scan -resume
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/nolist"
	"repro/internal/scan"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nolistscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		domains   = flag.Int("domains", 20000, "synthetic population size")
		seed      = flag.Int64("seed", 1, "random seed")
		transient = flag.Float64("transient", 0.01, "per-scan probability of a transient primary outage")
		noglue    = flag.Float64("noglue", 0.2, "fraction of MX answers without glue")
		gap       = flag.Duration("gap", 56*24*time.Hour, "time between the two scans")
		truth     = flag.Bool("truth", false, "also print the ground-truth mixture")
		workers   = flag.Int("workers", 0, "scan worker count (0 = GOMAXPROCS, 1 = serial); any count gives identical results")
		metricsTo = flag.String("metrics", "", "write the scan metrics snapshot to this file ('-' = stdout)")

		stream   = flag.Bool("stream", false, "run the disk-backed streaming pipeline (no materialized population; required for paper-scale runs)")
		ckDir    = flag.String("checkpoint-dir", "", "streaming checkpoint directory for the per-shard verdict files (required with -stream)")
		resume   = flag.Bool("resume", false, "resume a streaming run from the checkpoint directory's last durable chunks")
		shards   = flag.Int("shards", 0, "streaming shard/file count per round (0 = GOMAXPROCS); does not affect output")
		chunkDom = flag.Int("chunk-domains", 0, "streaming durability granule in domains per chunk (0 = 8192)")
		sync     = flag.Bool("sync", false, "fsync every streaming chunk flush")
		heapMax  = flag.Int64("heap-check", 0, "fail (exit 1) if the streaming run's peak heap exceeds this many bytes (0 = off)")
		statsTo  = flag.String("stream-stats", "", "write the streaming run's stats as JSON to this file ('-' = stderr)")
		traceTo  = flag.String("trace", "", "record streaming checkpoint/resume traces and write them as JSONL to this file ('-' = stdout)")
	)
	flag.Parse()

	cfg := scan.DefaultConfig(*domains, *seed)
	cfg.TransientFailure = *transient
	cfg.NoGlueFrac = *noglue

	var reg *metrics.Registry
	if *metricsTo != "" {
		reg = metrics.NewRegistry()
	}

	var res *scan.StudyResult
	var pop *scan.Population
	if *stream {
		var tracer *trace.Tracer
		if *traceTo != "" {
			tracer = trace.New(8) // two rounds + join per run, with headroom
		}
		opts := scan.StreamOpts{
			Dir:          *ckDir,
			Shards:       *shards,
			Workers:      *workers,
			ChunkDomains: *chunkDom,
			Resume:       *resume,
			Sync:         *sync,
			Metrics:      reg,
			Tracer:       tracer,
			Progress:     os.Stderr,
		}
		var stats *scan.StreamStats
		var err error
		res, stats, err = scan.RunStream(cfg, opts)
		if stats != nil {
			if serr := dumpStreamStats(stats, *statsTo); serr != nil && err == nil {
				err = serr
			}
		}
		if tracer != nil {
			if terr := dumpTraces(tracer, *traceTo); terr != nil && err == nil {
				err = terr
			}
		}
		if err != nil {
			return err
		}
		if *heapMax > 0 && stats.PeakHeapBytes > uint64(*heapMax) {
			return fmt.Errorf("peak heap %d bytes exceeds -heap-check %d", stats.PeakHeapBytes, *heapMax)
		}
	} else {
		var err error
		pop, err = scan.Generate(cfg)
		if err != nil {
			return err
		}
		if reg != nil {
			pop.Register(reg)
		}
		clock := simtime.NewSim(simtime.Epoch)
		res = scan.RunStudyWorkers(pop, clock, *gap, *workers)
	}

	fmt.Print(res.RenderPie())
	fmt.Printf("\nemail servers: %d, resolved addresses: %d, re-resolutions: %d\n",
		res.EmailServers, res.ResolvedIPs, res.ReResolutions)
	fmt.Printf("single-scan nolisting candidates: %d; confirmed by two scans: %d\n",
		res.SingleScanNolisting, res.Counts[nolist.CatNolisting])
	fmt.Printf("classification churn between scans: %.4f%%\n", 100*res.ChangeBetweenScans)
	fmt.Printf("misclassified vs ground truth: %d (%.4f%%)\n",
		res.Misclassified, 100*float64(res.Misclassified)/float64(*domains))
	fmt.Printf("Alexa: nolisting in top-15: %d, top-500: %d, top-1000: %d\n",
		res.NolistingInTop15, res.NolistingInTop500, res.NolistingInTop1000)

	if *truth && pop != nil {
		counts := map[nolist.Category]int{}
		for _, s := range pop.Specs {
			counts[s.TrueCategory]++
		}
		fmt.Println("\nground truth:")
		for _, c := range []nolist.Category{nolist.CatOneMX, nolist.CatMultiMX, nolist.CatMisconfigured, nolist.CatNolisting} {
			fmt.Printf("  %-22s %d\n", c, counts[c])
		}
	}

	if *metricsTo != "" {
		if err := dumpMetrics(reg, *metricsTo); err != nil {
			return err
		}
	}
	return nil
}

// dumpStreamStats writes the streaming run's stats as one JSON object
// to path ("" = skip, "-" = stderr).
func dumpStreamStats(stats *scan.StreamStats, path string) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stderr.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote stream stats to %s\n", path)
	return nil
}

// dumpTraces writes the run's finished checkpoint traces as JSONL to
// path ("-" = stdout).
func dumpTraces(tr *trace.Tracer, path string) error {
	if path == "-" {
		return tr.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote checkpoint traces to %s\n", path)
	return nil
}

// dumpMetrics writes the registry in Prometheus text format to path
// ("-" = stdout).
func dumpMetrics(reg *metrics.Registry, path string) error {
	if path == "-" {
		return reg.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}
