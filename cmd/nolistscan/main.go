// Command nolistscan runs the Section IV-A worldwide-adoption pipeline on
// a synthetic Internet: generate a population with the Figure 2 mixture,
// scan it twice (the paper's scans were two months apart), classify every
// domain with the two-scan rule and print the adoption statistics and
// Alexa cross-check.
//
// Usage:
//
//	nolistscan [-domains 20000] [-seed 1] [-workers 0] [-transient 0.01]
//	           [-noglue 0.2] [-gap 1344h] [-truth] [-metrics FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
	"repro/internal/nolist"
	"repro/internal/scan"
	"repro/internal/simtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nolistscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		domains   = flag.Int("domains", 20000, "synthetic population size")
		seed      = flag.Int64("seed", 1, "random seed")
		transient = flag.Float64("transient", 0.01, "per-scan probability of a transient primary outage")
		noglue    = flag.Float64("noglue", 0.2, "fraction of MX answers without glue")
		gap       = flag.Duration("gap", 56*24*time.Hour, "time between the two scans")
		truth     = flag.Bool("truth", false, "also print the ground-truth mixture")
		workers   = flag.Int("workers", 0, "scan worker count (0 = GOMAXPROCS, 1 = serial); any count gives identical results")
		metricsTo = flag.String("metrics", "", "write the scan metrics snapshot to this file ('-' = stdout)")
	)
	flag.Parse()

	cfg := scan.DefaultConfig(*domains, *seed)
	cfg.TransientFailure = *transient
	cfg.NoGlueFrac = *noglue

	pop, err := scan.Generate(cfg)
	if err != nil {
		return err
	}
	var reg *metrics.Registry
	if *metricsTo != "" {
		reg = metrics.NewRegistry()
		pop.Register(reg)
	}
	clock := simtime.NewSim(simtime.Epoch)
	res := scan.RunStudyWorkers(pop, clock, *gap, *workers)

	fmt.Print(res.RenderPie())
	fmt.Printf("\nemail servers: %d, resolved addresses: %d, re-resolutions: %d\n",
		res.EmailServers, res.ResolvedIPs, res.ReResolutions)
	fmt.Printf("single-scan nolisting candidates: %d; confirmed by two scans: %d\n",
		res.SingleScanNolisting, res.Counts[nolist.CatNolisting])
	fmt.Printf("classification churn between scans: %.4f%%\n", 100*res.ChangeBetweenScans)
	fmt.Printf("misclassified vs ground truth: %d (%.4f%%)\n",
		res.Misclassified, 100*float64(res.Misclassified)/float64(*domains))
	fmt.Printf("Alexa: nolisting in top-15: %d, top-500: %d, top-1000: %d\n",
		res.NolistingInTop15, res.NolistingInTop500, res.NolistingInTop1000)

	if *truth {
		counts := map[nolist.Category]int{}
		for _, s := range pop.Specs {
			counts[s.TrueCategory]++
		}
		fmt.Println("\nground truth:")
		for _, c := range []nolist.Category{nolist.CatOneMX, nolist.CatMultiMX, nolist.CatMisconfigured, nolist.CatNolisting} {
			fmt.Printf("  %-22s %d\n", c, counts[c])
		}
	}

	if *metricsTo != "" {
		if err := dumpMetrics(reg, *metricsTo); err != nil {
			return err
		}
	}
	return nil
}

// dumpMetrics writes the registry in Prometheus text format to path
// ("-" = stdout).
func dumpMetrics(reg *metrics.Registry, path string) error {
	if path == "-" {
		return reg.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", path)
	return nil
}
