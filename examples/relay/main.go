// Relay: run a fleet of REAL queueing MTAs — one per Table IV schedule —
// delivering a newsletter through a greylisted domain, and watch Figure
// 5's delay distribution emerge from actual SMTP sessions and retry
// queues rather than from a model.
//
//	go run ./examples/relay
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/mta"
	"repro/internal/mtaqueue"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/stats"
)

func main() {
	// Infrastructure: network, DNS, virtual time.
	network := netsim.New()
	dns := dnsserver.New()
	clock := simtime.NewSim(simtime.Epoch)
	sched := simtime.NewScheduler(clock)
	resolver := dnsresolver.New(dnsresolver.Direct(dns), clock)

	// The destination: a domain greylisting at the Postgrey default.
	domain, err := core.New(core.Config{
		Domain:      "list.example",
		PrimaryIP:   "10.0.0.1",
		SecondaryIP: "10.0.0.2",
		Defense:     core.DefenseGreylisting,
	}, core.Deps{Net: network, DNS: dns, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Close()

	// The fleet: every Table IV MTA runs as a real queueing relay with
	// its own source address (its own greylisting identity).
	const perMTA = 10
	relays := make(map[string]*mtaqueue.MTA)
	for i, schedule := range mta.All() {
		m, err := mtaqueue.New(mtaqueue.Config{
			Schedule: schedule,
			HeloName: "relay-" + schedule.Name + ".example",
			Resolver: resolver,
			Dialer:   &smtpclient.SimDialer{Net: network, LocalIP: fmt.Sprintf("192.0.2.%d", 10+i)},
			Sched:    sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		relays[schedule.Name] = m
		for j := 0; j < perMTA; j++ {
			m.Submit("list.example", smtpclient.Message{
				From: fmt.Sprintf("news-%s-%d@sender.example", schedule.Name, j),
				To:   []string{fmt.Sprintf("subscriber%d@list.example", j)},
				Data: []byte("Subject: newsletter\r\n\r\nissue #1\r\n"),
			})
		}
	}

	// Let virtual time run until every queue drains.
	sched.Run()

	fmt.Println("Queueing MTAs vs greylisting (threshold 300s):")
	fmt.Println()
	tbl := stats.NewTable("MTA", "DELIVERED", "BOUNCED", "DELAY (each message)")
	var allDelays []time.Duration
	for _, schedule := range mta.All() {
		m := relays[schedule.Name]
		_, delivered, bounced := m.Summary()
		var delay time.Duration
		for _, rec := range m.Messages() {
			if rec.Status == mtaqueue.StatusDelivered {
				delay = rec.Delay
				allDelays = append(allDelays, rec.Delay)
			}
		}
		tbl.AddRow(schedule.Name,
			fmt.Sprintf("%d/%d", delivered, perMTA),
			fmt.Sprintf("%d", bounced),
			stats.FormatDuration(delay))
	}
	fmt.Print(tbl.String())

	cdf := stats.NewDurationCDF(allDelays)
	fmt.Println()
	fmt.Printf("delay distribution across the fleet (n=%d): min %s, median %s, max %s\n",
		cdf.N(),
		stats.FormatDuration(time.Duration(cdf.Min())*time.Second),
		stats.FormatDuration(time.Duration(cdf.Median())*time.Second),
		stats.FormatDuration(time.Duration(cdf.Max())*time.Second))
	fmt.Println()
	fmt.Println("Every message was deferred once (451) and delivered on the first retry —")
	fmt.Println("the delay IS the MTA's first retry offset, which is why Figure 5's shape")
	fmt.Println("is the mixture of sender retry schedules.")
	fmt.Printf("server saw %d deferrals for %d deliveries\n",
		len(domain.Deferrals()), len(domain.Inbox()))
}
