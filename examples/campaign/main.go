// Campaign: the full defense matrix — every Table I malware family against
// every defense configuration, with per-cell delivery rates. This is the
// paper's Table II expanded with the "none" and "both" columns that drive
// its Section VI recommendation.
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/stats"
)

func main() {
	defenses := []core.Defense{
		core.DefenseNone, core.DefenseNolisting, core.DefenseGreylisting, core.DefenseBoth,
	}
	const recipients = 20

	header := []string{"FAMILY (share of botnet spam)"}
	for _, d := range defenses {
		header = append(header, d.String())
	}
	tbl := stats.NewTable(header...)

	blockedShare := make(map[core.Defense]float64)
	for _, family := range botnet.Families() {
		row := []string{fmt.Sprintf("%s (%.2f%%)", family.Name, family.BotnetSpamShare)}
		for _, defense := range defenses {
			l, err := lab.New(lab.Config{Defense: defense})
			if err != nil {
				log.Fatal(err)
			}
			res, err := l.RunSample(family, 1, recipients)
			l.Close()
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, fmt.Sprintf("%d/%d delivered", res.Delivered, recipients))
			if res.Blocked() {
				blockedShare[defense] += family.BotnetSpamShare
			}
		}
		tbl.AddRow(row...)
	}
	fmt.Println("Spam campaign outcomes per family and defense:")
	fmt.Println()
	fmt.Print(tbl.String())

	fmt.Println()
	fmt.Println("share of botnet spam blocked (weighting families by Table I):")
	for _, d := range defenses {
		fmt.Printf("  %-24s %6.2f%%\n", d, blockedShare[d])
	}
	fmt.Println()
	fmt.Println("-> nolisting alone stops Kelihos (36.33%); greylisting alone stops the")
	fmt.Println("   fire-and-forget families (56.69%); only the combination stops all four.")
}
