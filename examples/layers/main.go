// Layers: a complete anti-spam deployment using every sender-based
// technique in the library, layered in the order a real Postfix
// restriction list would evaluate them:
//
//  1. DNSBL     — reject clients already known to be spamming (554)
//  2. SPF       — reject clients forging a protected domain (550)
//  3. recipient — reject unknown users (550, before greylisting!)
//  4. greylist  — defer unknown triplets (451)
//
// ...all behind a nolisting DNS layout, so primary-only bots never even
// reach the server. Three senders probe the stack: a legitimate MTA, a
// forger, and a known-bad bot.
//
//	go run ./examples/layers
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/dnsbl"
	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/netsim"
	"repro/internal/nolist"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/smtpproto"
	"repro/internal/smtpserver"
	"repro/internal/spf"
)

func main() {
	network := netsim.New()
	dns := dnsserver.New()
	clock := simtime.NewSim(simtime.Epoch)
	resolver := dnsresolver.New(dnsresolver.Direct(dns), clock)

	// --- The protected domain: nolisting layout. -----------------------
	dep := nolist.Deployment{
		Domain:   "fort.example",
		DeadHost: "mx1.fort.example", DeadIP: "10.0.0.1",
		LiveHost: "mx2.fort.example", LiveIP: "10.0.0.2",
	}
	zone, err := dep.Zone()
	if err != nil {
		log.Fatal(err)
	}
	dns.AddZone(zone)

	// --- Sender identities in DNS. --------------------------------------
	// goodcorp.example publishes SPF authorizing only its real MTA.
	good := dnsserver.NewZone("goodcorp.example")
	good.MustAdd(dnsmsg.RR{Name: "goodcorp.example", Type: dnsmsg.TypeTXT, TTL: 300,
		Data: spf.Record("ip4:192.0.2.10", "-all")})
	dns.AddZone(good)

	// --- The blocklist. --------------------------------------------------
	bl := dnsbl.New("bl.example", dns, clock)
	bl.Add("203.0.113.66") // a known spammer

	// --- The policy stack on the live MX. --------------------------------
	checker := spf.New(resolver)
	users := map[string]bool{"alice": true, "bob": true}
	g := greylist.New(greylist.DefaultPolicy(), clock)

	srv := smtpserver.New(smtpserver.Config{
		Hostname: "mx2.fort.example",
		Clock:    clock,
		Hooks: smtpserver.Hooks{
			OnRcpt: func(clientIP, sender, rcpt string) *smtpproto.Reply {
				if listed, _ := dnsbl.Lookup(resolver, "bl.example", clientIP); listed {
					r := smtpproto.NewReply(554, "5.7.1", "Client listed on bl.example")
					return &r
				}
				if res, _ := checker.Check(clientIP, sender, ""); res == spf.ResultFail {
					r := smtpproto.NewReply(550, "5.7.23", "SPF validation failed")
					return &r
				}
				local, _, _ := strings.Cut(rcpt, "@")
				if !users[strings.ToLower(local)] {
					r := smtpproto.NewReply(550, "5.1.1", "No such user")
					return &r
				}
				if v := g.Check(greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: rcpt}); v.Decision != greylist.Pass {
					r := smtpproto.NewReply(451, "4.7.1", "Greylisted")
					return &r
				}
				return nil
			},
		},
	})
	l, err := network.Listen("10.0.0.2:25")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// --- Three probes. ----------------------------------------------------
	probe := func(label, ip, from, to string) {
		dialer := &smtpclient.SimDialer{Net: network, LocalIP: ip}
		r := smtpclient.DeliverMX(resolver, dialer, "fort.example", smtpclient.Message{
			HeloName: "probe.example", From: from, To: []string{to},
			Data: []byte("Subject: probe\r\n\r\nhello\r\n"),
		})
		detail := ""
		if r.LastError != nil {
			detail = " — " + lastLine(r.LastError.Error())
		}
		fmt.Printf("%-34s %v via %s%s\n", label+":", r.Outcome, r.Host, detail)
	}

	fmt.Println("Layered defenses on fort.example (nolisting + DNSBL + SPF + greylisting):")
	fmt.Println()
	probe("known spammer (listed)", "203.0.113.66", "x@anything.example", "alice@fort.example")
	probe("forger claiming goodcorp", "198.51.100.99", "ceo@goodcorp.example", "alice@fort.example")
	probe("stranger to unknown user", "192.0.2.77", "new@stranger.example", "nobody@fort.example")
	probe("stranger, first attempt", "192.0.2.77", "new@stranger.example", "alice@fort.example")
	clock.Advance(301 * time.Second)
	probe("stranger, retry after 5m", "192.0.2.77", "new@stranger.example", "alice@fort.example")
	probe("goodcorp's real MTA, 1st try", "192.0.2.10", "ceo@goodcorp.example", "bob@fort.example")
	clock.Advance(301 * time.Second)
	probe("goodcorp's real MTA, retry", "192.0.2.10", "ceo@goodcorp.example", "bob@fort.example")

	fmt.Println()
	fmt.Println("Layer order matters: the DNSBL and SPF rejections are permanent (5xx),")
	fmt.Println("unknown users never touch greylisting state, and only legitimate unknown")
	fmt.Println("senders pay the greylisting delay — once.")
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	return lines[len(lines)-1]
}
