// Tuning: the threshold trade-off behind the paper's Section VI advice.
// For each candidate greylisting threshold we measure (a) which malware
// families still get through, and (b) what delay benign senders suffer —
// and land on the paper's conclusion: "the use of a very short threshold
// is probably the best way to maximize both aspects".
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/mta"
	"repro/internal/stats"
	"repro/internal/webmail"
)

func main() {
	thresholds := []time.Duration{
		5 * time.Second,
		300 * time.Second,
		30 * time.Minute,
		6 * time.Hour,
		48 * time.Hour,
	}

	tbl := stats.NewTable(
		"THRESHOLD", "SPAM BLOCKED (botnet share)", "KELIHOS", "BENIGN MEDIAN DELAY", "BENIGN LOSSES")
	for _, th := range thresholds {
		blocked := 0.0
		kelihosBlocked := "passes"
		for _, family := range botnet.Families() {
			l, err := lab.New(lab.Config{Defense: core.DefenseGreylisting, Threshold: th})
			if err != nil {
				log.Fatal(err)
			}
			res, err := l.RunSample(family, 1, 10)
			l.Close()
			if err != nil {
				log.Fatal(err)
			}
			if res.Blocked() {
				blocked += family.BotnetSpamShare
				if family.Name == "Kelihos" {
					kelihosBlocked = "blocked"
				}
			}
		}

		// Benign cost: median first-passing delay across the Table IV
		// MTA schedules, plus webmail losses (providers whose give-up
		// time the threshold exceeds).
		var delays []float64
		for _, s := range mta.All() {
			if d, ok := s.DeliveryDelay(th); ok {
				delays = append(delays, d.Seconds())
			}
		}
		medianDelay := time.Duration(stats.NewCDF(delays).Median()) * time.Second

		losses := 0
		for i, p := range webmail.Top10() {
			if r := webmail.Simulate(p, i, th); !r.Delivered {
				losses++
			}
		}

		tbl.AddRow(
			th.String(),
			fmt.Sprintf("%.2f%%", blocked),
			kelihosBlocked,
			stats.FormatDuration(medianDelay),
			fmt.Sprintf("%d/10 webmail providers", losses),
		)
	}
	fmt.Println("Greylisting threshold tuning (defense: greylisting only):")
	fmt.Println()
	fmt.Print(tbl.String())
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - The fire-and-forget families (56.69% of botnet spam) die at ANY")
	fmt.Println("    threshold, even 5 seconds.")
	fmt.Println("  - Kelihos outlasts every reasonable threshold (its last retry peak is at")
	fmt.Println("    80000-90000s ≈ 25h); only a multi-day threshold beats it — at the cost")
	fmt.Println("    of losing mail from EVERY webmail provider and bouncing Exchange mail.")
	fmt.Println("  - Raising the threshold hurts benign mail long before that: delays grow")
	fmt.Println("    and impatient providers (aol.com after ~31 min, qq.com after ~3.4h)")
	fmt.Println("    start losing messages.")
	fmt.Println("  - Hence the paper: pick a SHORT threshold, and add nolisting for Kelihos.")
}
