// Fingerprint: classify an unknown sender's MX-selection behaviour the
// way Section IV-B does — deploy a nolisting honeypot domain, let the
// sender at it, and read the connection log. The dead primary is what
// makes the four behaviours distinguishable.
//
//	go run ./examples/fingerprint
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/nolist"
	"repro/internal/stats"
)

func main() {
	// The "unknown" samples: a shuffled bag of bots from every family.
	rng := rand.New(rand.NewSource(2015))
	var unknowns []botnet.Family
	for _, f := range botnet.Families() {
		for i := 0; i < f.Samples; i++ {
			unknowns = append(unknowns, f)
		}
	}
	rng.Shuffle(len(unknowns), func(i, j int) { unknowns[i], unknowns[j] = unknowns[j], unknowns[i] })

	tbl := stats.NewTable("SAMPLE", "CONTACTED", "CLASSIFIED AS", "TRUTH", "NOLISTING WOULD")
	correct := 0
	for i, f := range unknowns {
		// A fresh honeypot per sample: nolisting layout, no greylisting,
		// so the only signal is which servers the sample dials.
		l, err := lab.New(lab.Config{Defense: core.DefenseNolisting})
		if err != nil {
			log.Fatal(err)
		}
		res, err := l.RunSample(f, i+1, 3)
		l.Close()
		if err != nil {
			log.Fatal(err)
		}
		verdict := "let it through"
		if res.Behavior.DefeatedByNolisting() {
			verdict = "BLOCK it"
		}
		if res.Behavior == f.Behavior {
			correct++
		}
		contacts := map[string]int{}
		for _, a := range res.Attempts {
			for _, h := range a.Contacted {
				contacts[h]++
			}
		}
		tbl.AddRow(
			fmt.Sprintf("sample-%02d", i+1),
			fmt.Sprintf("mx1×%d mx2×%d", contacts["mx1."+lab.TargetDomain], contacts["mx2."+lab.TargetDomain]),
			res.Behavior.String(),
			f.Behavior.String(),
			verdict,
		)
	}
	fmt.Println("MX-behaviour fingerprinting against a nolisting honeypot:")
	fmt.Println()
	fmt.Print(tbl.String())
	fmt.Printf("\nclassification accuracy: %d/%d\n", correct, len(unknowns))
	fmt.Println()
	fmt.Printf("Section IV-B's categories: %v, %v, %v, %v\n",
		nolist.BehaviorRFCCompliant, nolist.BehaviorPrimaryOnly,
		nolist.BehaviorSecondaryOnly, nolist.BehaviorAllMX)
}
