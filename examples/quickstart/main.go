// Quickstart: protect a domain with greylisting + nolisting, then watch a
// compliant mailer get through while a spam bot bounces off.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
)

func main() {
	// 1. A simulated Internet: a network, a DNS server, a virtual clock.
	net := netsim.New()
	dns := dnsserver.New()
	clock := simtime.NewSim(simtime.Epoch)
	sched := simtime.NewScheduler(clock)
	resolver := dnsresolver.New(dnsresolver.Direct(dns), clock)
	resolver.DisableCache = true

	// 2. Deploy foo.net with BOTH defenses: the primary MX is a dead
	//    host (nolisting), the live secondary greylists unknown senders.
	domain, err := core.New(core.Config{
		Domain:      "foo.net",
		PrimaryIP:   "10.0.0.1",
		SecondaryIP: "10.0.0.2",
		Defense:     core.DefenseBoth,
	}, core.Deps{Net: net, DNS: dns, Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer domain.Close()
	fmt.Printf("deployed %s: primary %s (port 25 closed), secondary %s (greylisting 300s)\n\n",
		domain.Config().Domain, domain.PrimaryHost(), domain.SecondaryHost())

	// 3. A compliant sender behaves like a real MTA: walks the MX list,
	//    gets deferred, retries after ten minutes — and is delivered.
	dialer := &smtpclient.SimDialer{Net: net, LocalIP: "192.0.2.10"}
	msg := smtpclient.Message{
		HeloName: "mail.friendly.example",
		From:     "alice@friendly.example",
		To:       []string{"bob@foo.net"},
		Data:     []byte("Subject: lunch?\r\n\r\nTomorrow at noon?\r\n"),
	}
	first := smtpclient.DeliverMX(resolver, dialer, "foo.net", msg)
	fmt.Printf("friendly MTA, attempt 1: %v via %s (tried %d hosts)\n", first.Outcome, first.Host, first.HostsTried)
	clock.Advance(10 * time.Minute)
	second := smtpclient.DeliverMX(resolver, dialer, "foo.net", msg)
	fmt.Printf("friendly MTA, attempt 2 (10 min later): %v\n\n", second.Outcome)

	// 4. A Cutwail-style bot fires and forgets: the greylisting deferral
	//    is fatal because it never retries.
	bot, err := botnet.New(botnet.Cutwail(), botnet.Env{
		Net: net, Resolver: resolver, Sched: sched, SourceIP: "203.0.113.66", Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	bot.Launch(botnet.Campaign{
		Domain:     "foo.net",
		Sender:     "winner@lottery.example",
		Recipients: []string{"bob@foo.net", "carol@foo.net"},
		Data:       botnet.SpamPayload("Cutwail", "demo"),
	})
	sched.Run()
	fmt.Printf("Cutwail bot: %d attempts, %d delivered\n\n", len(bot.Attempts()), bot.Delivered())

	// 5. What the server saw.
	fmt.Println("server-side inbox:")
	for _, d := range domain.Inbox() {
		fmt.Printf("  %s  from=<%s> to=%v via %s\n",
			d.At.Format("15:04:05"), d.Sender, d.Recipients, d.Host)
	}
	fmt.Printf("greylisting deferrals recorded: %d\n", len(domain.Deferrals()))
}
