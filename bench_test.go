// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the artifact end-to-end each iteration), plus
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics attached via b.ReportMetric carry the experiment's
// headline numbers (blocked shares, delays, classification error) so a
// benchmark run doubles as a results summary.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/dnsbl"
	"repro/internal/greylist"
	"repro/internal/lab"
	"repro/internal/maillog"
	"repro/internal/metrics"
	"repro/internal/mta"
	"repro/internal/mtaqueue"
	"repro/internal/nolist"
	"repro/internal/report"
	"repro/internal/scan"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/webmail"
)

func benchOpts() report.Options {
	return report.Options{
		Seed:              1,
		ScanDomains:       5000,
		Recipients:        20,
		LogDays:           30,
		LogMessagesPerDay: 100,
	}
}

// BenchmarkTable1MalwareDataset regenerates Table I.
func BenchmarkTable1MalwareDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := report.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2NolistingAdoption runs the full two-scan adoption study on
// a 5000-domain synthetic Internet.
func BenchmarkFig2NolistingAdoption(b *testing.B) {
	var nolistingFrac, misclassified float64
	for i := 0; i < b.N; i++ {
		pop, err := scan.Generate(scan.DefaultConfig(5000, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		clock := simtime.NewSim(simtime.Epoch)
		res := scan.RunStudy(pop, clock, 56*24*time.Hour)
		nolistingFrac = res.Fractions[nolist.CatNolisting]
		misclassified = float64(res.Misclassified)
	}
	b.ReportMetric(nolistingFrac*100, "%nolisting")
	b.ReportMetric(misclassified, "misclassified")
}

// BenchmarkTable2DefenseMatrix runs all 11 samples against both defenses.
func BenchmarkTable2DefenseMatrix(b *testing.B) {
	var effective int
	for i := 0; i < b.N; i++ {
		rows, err := lab.RunTableII(10)
		if err != nil {
			b.Fatal(err)
		}
		effective = 0
		for _, r := range rows {
			if r.GreylistingEffective {
				effective++
			}
			if r.NolistingEffective {
				effective++
			}
		}
	}
	// Table II ground truth: greylisting effective for 5 samples
	// (3 Cutwail + 2 Darkmailer), nolisting for 6 (Kelihos).
	b.ReportMetric(float64(effective), "effective-cells")
}

// BenchmarkFig3KelihosCDF regenerates both Figure 3 curves.
func BenchmarkFig3KelihosCDF(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		for _, th := range []time.Duration{5 * time.Second, 300 * time.Second} {
			cdf, _, err := lab.KelihosDeliveryCDF(th, 30)
			if err != nil {
				b.Fatal(err)
			}
			median = cdf.Median()
		}
	}
	b.ReportMetric(median, "median-delay-s")
}

// BenchmarkFig4KelihosTimeline regenerates the 6-hour-threshold timeline.
func BenchmarkFig4KelihosTimeline(b *testing.B) {
	var delivered float64
	for i := 0; i < b.N; i++ {
		points, err := lab.KelihosTimeline(21600*time.Second, 30)
		if err != nil {
			b.Fatal(err)
		}
		delivered = 0
		for _, p := range points {
			if p.Delivered {
				delivered++
			}
		}
	}
	b.ReportMetric(delivered, "delivered")
}

// BenchmarkFig5DeploymentCDF synthesizes a month of deployment logs and
// computes the benign-delay CDF.
func BenchmarkFig5DeploymentCDF(b *testing.B) {
	var p10 float64
	cfg := maillog.DefaultGeneratorConfig(1)
	cfg.Days = 30
	cfg.MessagesPerDay = 100
	for i := 0; i < b.N; i++ {
		entries, _, err := maillog.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p10 = maillog.Fig5CDF(entries).P(600)
	}
	b.ReportMetric(p10, "P(delay<=10min)")
}

// BenchmarkTable3Webmail simulates all ten providers against the 6-hour
// threshold.
func BenchmarkTable3Webmail(b *testing.B) {
	var lost float64
	for i := 0; i < b.N; i++ {
		lost = 0
		for _, r := range webmail.SimulateAll(6 * time.Hour) {
			if !r.Delivered {
				lost++
			}
		}
	}
	b.ReportMetric(lost, "providers-losing-mail")
}

// BenchmarkTable4MTASchedules expands every Table IV schedule over its
// full queue lifetime.
func BenchmarkTable4MTASchedules(b *testing.B) {
	var attempts int
	for i := 0; i < b.N; i++ {
		attempts = 0
		for _, s := range mta.All() {
			attempts += len(s.AttemptTimes(0))
		}
	}
	b.ReportMetric(float64(attempts), "total-attempts")
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationDefenseComposition measures blocked botnet-spam share
// for each defense configuration (the paper's Section VI argument).
func BenchmarkAblationDefenseComposition(b *testing.B) {
	for _, defense := range []core.Defense{
		core.DefenseNone, core.DefenseNolisting, core.DefenseGreylisting, core.DefenseBoth,
	} {
		b.Run(defense.String(), func(b *testing.B) {
			var blocked float64
			for i := 0; i < b.N; i++ {
				blocked = 0
				for _, f := range botnet.Families() {
					l, err := lab.New(lab.Config{Defense: defense})
					if err != nil {
						b.Fatal(err)
					}
					res, err := l.RunSample(f, 1, 10)
					l.Close()
					if err != nil {
						b.Fatal(err)
					}
					if res.Blocked() {
						blocked += f.BotnetSpamShare
					}
				}
			}
			b.ReportMetric(blocked, "%botnet-spam-blocked")
		})
	}
}

// BenchmarkAblationThresholdSweep measures the benign-delay cost per
// threshold choice.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	for _, th := range []time.Duration{5 * time.Second, 300 * time.Second, 6 * time.Hour} {
		b.Run(th.String(), func(b *testing.B) {
			var median float64
			for i := 0; i < b.N; i++ {
				var delays []float64
				for _, s := range mta.All() {
					if d, ok := s.DeliveryDelay(th); ok {
						delays = append(delays, d.Seconds())
					}
				}
				sum := 0.0
				for _, d := range delays {
					sum += d
				}
				median = sum / float64(len(delays))
			}
			b.ReportMetric(median, "mean-benign-delay-s")
		})
	}
}

// BenchmarkAblationSubnetKeying compares full-IP and /24 triplet keying:
// Postgrey's --lookup-by-subnet forgives webmail IP rotation at the cost
// of a coarser spam key.
func BenchmarkAblationSubnetKeying(b *testing.B) {
	run := func(b *testing.B, subnet bool) {
		var gmailDelay float64
		for i := 0; i < b.N; i++ {
			clock := simtime.NewSim(simtime.Epoch)
			policy := greylist.Policy{
				Threshold:    300 * time.Second,
				RetryWindow:  48 * time.Hour,
				SubnetKeying: subnet,
			}
			g := greylist.New(policy, clock)
			p := webmail.Gmail()
			pool := p.DefaultPool(0)
			start := clock.Now()
			for k, at := range p.AttemptTimes() {
				clock.AdvanceTo(start.Add(at))
				v := g.Check(greylist.Triplet{
					ClientIP:  p.IPForAttempt(k, pool),
					Sender:    "u@gmail.com",
					Recipient: "v@dept.example",
				})
				if v.Decision == greylist.Pass {
					gmailDelay = at.Seconds()
					break
				}
			}
		}
		b.ReportMetric(gmailDelay, "gmail-delay-s")
	}
	b.Run("full-ip", func(b *testing.B) { run(b, false) })
	b.Run("subnet-24", func(b *testing.B) { run(b, true) })
}

// benchTriplets builds the benchmark working set: 1024 triplets from one
// client, 26 distinct recipients.
func benchTriplets() []greylist.Triplet {
	triplets := make([]greylist.Triplet, 1024)
	for i := range triplets {
		triplets[i] = greylist.Triplet{
			ClientIP:  "203.0.113.9",
			Sender:    "bulk@sender.example",
			Recipient: "user" + string(rune('a'+i%26)) + "@dept.example",
		}
	}
	return triplets
}

// promoteAll drives every triplet through first-seen and an accepted
// retry so the engine holds them all as passed — the warmed serving
// state where nearly every production check lands.
func promoteAll(b *testing.B, g greylist.Checker, clock *simtime.Sim, triplets []greylist.Triplet) {
	b.Helper()
	for _, t := range triplets {
		g.Check(t)
	}
	clock.Advance(301 * time.Second)
	for _, t := range triplets {
		if v := g.Check(t); v.Decision != greylist.Pass {
			b.Fatalf("promotion failed: %+v", v)
		}
	}
}

// BenchmarkGreylistCheck measures the policy engine's decision paths with
// allocation reporting: the write-locked pending path, the read-locked
// known-passed fast path (the production steady state — must be
// 0 allocs/op), and the auto-whitelisted client path.
func BenchmarkGreylistCheck(b *testing.B) {
	b.Run("pending", func(b *testing.B) {
		g := greylist.New(greylist.DefaultPolicy(), simtime.NewSim(simtime.Epoch))
		triplets := benchTriplets()
		for _, t := range triplets {
			g.Check(t) // records exist; every timed check is a too-soon retry
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Check(triplets[i%len(triplets)])
		}
	})
	b.Run("known-passed", func(b *testing.B) {
		clock := simtime.NewSim(simtime.Epoch)
		p := greylist.DefaultPolicy()
		p.AutoWhitelistAfter = 0 // isolate the passed-triplet path
		g := greylist.New(p, clock)
		triplets := benchTriplets()
		promoteAll(b, g, clock, triplets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Check(triplets[i%len(triplets)])
		}
	})
	b.Run("known-passed-instrumented", func(b *testing.B) {
		// Same path with the metrics registry attached: the latency
		// histogram observation must keep the fast path at 0 allocs/op.
		clock := simtime.NewSim(simtime.Epoch)
		p := greylist.DefaultPolicy()
		p.AutoWhitelistAfter = 0
		g := greylist.New(p, clock)
		g.Register(metrics.NewRegistry())
		triplets := benchTriplets()
		promoteAll(b, g, clock, triplets)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Check(triplets[i%len(triplets)])
		}
	})
	b.Run("auto-whitelisted", func(b *testing.B) {
		clock := simtime.NewSim(simtime.Epoch)
		g := greylist.New(greylist.DefaultPolicy(), clock)
		triplets := benchTriplets()
		promoteAll(b, g, clock, triplets) // >5 deliveries: client auto-whitelisted
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Check(triplets[i%len(triplets)])
		}
	})
}

// BenchmarkGreylistCheckParallel measures concurrent checks against a
// warmed store (every triplet passed), comparing the single RWMutex
// engine against sharded variants (the DESIGN.md store-sharding
// ablation).
func BenchmarkGreylistCheckParallel(b *testing.B) {
	bench := func(b *testing.B, g greylist.Checker, clock *simtime.Sim) {
		triplets := benchTriplets()
		promoteAll(b, g, clock, triplets)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				g.Check(triplets[i%len(triplets)])
				i++
			}
		})
	}
	b.Run("single-lock", func(b *testing.B) {
		clock := simtime.NewSim(simtime.Epoch)
		bench(b, greylist.New(greylist.DefaultPolicy(), clock), clock)
	})
	for _, shards := range []int{4, 16} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			clock := simtime.NewSim(simtime.Epoch)
			bench(b, greylist.NewSharded(shards, greylist.DefaultPolicy(), clock), clock)
		})
	}
}

// BenchmarkGreylistCheckBatch measures the batch API on a pipelined-style
// burst of 32 known-passed triplets, one locking round-trip per batch.
// ns/op is per batch (divide by 32 for per-check cost); the out slice is
// reused so the steady state allocates nothing.
func BenchmarkGreylistCheckBatch(b *testing.B) {
	const batch = 32
	bench := func(b *testing.B, g greylist.BatchChecker, clock *simtime.Sim) {
		triplets := benchTriplets()[:batch]
		promoteAll(b, g, clock, triplets)
		out := make([]greylist.Verdict, 0, batch)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = g.CheckBatch(triplets, out)
		}
		if out[0].Decision != greylist.Pass {
			b.Fatalf("batch verdict: %+v", out[0])
		}
	}
	b.Run("single-lock", func(b *testing.B) {
		clock := simtime.NewSim(simtime.Epoch)
		bench(b, greylist.New(greylist.DefaultPolicy(), clock), clock)
	})
	b.Run("sharded-16", func(b *testing.B) {
		clock := simtime.NewSim(simtime.Epoch)
		bench(b, greylist.NewSharded(16, greylist.DefaultPolicy(), clock), clock)
	})
}

// BenchmarkScanStudyWorkers runs the Fig 2 two-scan study serially and
// with the parallel domain scanner; the outputs are byte-identical, only
// wall-clock differs.
func BenchmarkScanStudyWorkers(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers-%d", workers)
		if workers == 0 {
			name = "workers-gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pop, err := scan.Generate(scan.DefaultConfig(3000, 1))
				if err != nil {
					b.Fatal(err)
				}
				clock := simtime.NewSim(simtime.Epoch)
				res := scan.RunStudyWorkers(pop, clock, 56*24*time.Hour, workers)
				if res.EmailServers == 0 {
					b.Fatal("empty study")
				}
			}
		})
	}
}

// BenchmarkRunStudy100k runs the two-scan adoption study on a
// paper-scale 100k-domain population with allocation reporting — the
// headline number for the streaming scan pipeline (BENCH_scan.json
// tracks B/op and allocs/op against the pre-streaming implementation).
func BenchmarkRunStudy100k(b *testing.B) {
	pop, err := scan.Generate(scan.DefaultConfig(100000, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock := simtime.NewSim(simtime.Epoch)
		res := scan.RunStudyWorkers(pop, clock, 56*24*time.Hour, 0)
		if res.EmailServers == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkRunStream100k runs the same 100k study through the
// disk-backed streaming pipeline (derived population, columnar verdict
// checkpoints, streaming join). Allocation reporting here covers the
// whole run including file I/O; the flat-heap claim at 1M/10M/135M is
// recorded in BENCH_scan.json from `nolistscan -stream` runs.
func BenchmarkRunStream100k(b *testing.B) {
	cfg := scan.DefaultConfig(100000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := scan.RunStream(cfg, scan.StreamOpts{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		if res.EmailServers == 0 {
			b.Fatal("empty study")
		}
	}
}

// BenchmarkScanDomain measures one domain observation on the glue-present
// dataset-join path; the steady state must stay at 0 allocs/op (asserted
// by TestScanDomainZeroAlloc).
func BenchmarkScanDomain(b *testing.B) {
	cfg := scan.DefaultConfig(2000, 1)
	cfg.NoGlueFrac = 0
	cfg.TransientFailure = 0
	pop, err := scan.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := scan.NewScanner(pop, nil)
	s.UseDataset(scan.BannerGrab(pop, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScanDomain(pop.Specs[i%len(pop.Specs)].Name)
	}
}

// BenchmarkEndToEndReport regenerates every artifact back to back — the
// "full reproduction" cost — serially and on the experiment worker pool
// (byte-identical output either way).
func BenchmarkEndToEndReport(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			opts := benchOpts()
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := report.All(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSwarmCost measures greylist state growth and reclamation under
// a fire-and-forget botnet swarm (the Section VI cost discussion).
func BenchmarkSwarmCost(b *testing.B) {
	var pending int
	for i := 0; i < b.N; i++ {
		res, err := lab.SwarmCost(50, 10)
		if err != nil {
			b.Fatal(err)
		}
		pending = res.PendingRecords
	}
	b.ReportMetric(float64(pending), "pending-records")
}

// BenchmarkMTAQueueLive runs a real queueing MTA (postfix schedule)
// through greylisting end to end.
func BenchmarkMTAQueueLive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := lab.New(lab.Config{Defense: core.DefenseGreylisting})
		if err != nil {
			b.Fatal(err)
		}
		m, err := mtaqueue.New(mtaqueue.Config{
			Schedule: mta.Postfix(),
			Resolver: l.Resolver,
			Dialer:   &smtpclient.SimDialer{Net: l.Net, LocalIP: "192.0.2.9"},
			Sched:    l.Sched,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			m.Submit(lab.TargetDomain, smtpclient.Message{
				From: fmt.Sprintf("a%d@s.example", j),
				To:   []string{fmt.Sprintf("u%d@%s", j, lab.TargetDomain)},
				Data: []byte("Subject: b\r\n\r\nx\r\n"),
			})
		}
		l.Sched.Run()
		_, delivered, _ := m.Summary()
		l.Close()
		if delivered != 10 {
			b.Fatalf("delivered = %d", delivered)
		}
	}
}

// BenchmarkObsolescence runs the Results Validity projection sweep.
func BenchmarkObsolescence(b *testing.B) {
	var atHalf float64
	for i := 0; i < b.N; i++ {
		points, err := lab.Obsolescence([]float64{0, 0.5, 1}, 5)
		if err != nil {
			b.Fatal(err)
		}
		atHalf = points[1].BlockedByDefense[core.DefenseBoth]
	}
	b.ReportMetric(atHalf, "both-blocked-at-50%-evolution")
}

// BenchmarkSynergy runs the greylisting+DNSBL race at a fast feed.
func BenchmarkSynergy(b *testing.B) {
	var blocked float64
	for i := 0; i < b.N; i++ {
		res, err := dnsbl.Synergy(60*time.Second, 5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		blocked = float64(res.DeliveredGreylistOnly - res.DeliveredWithDNSBL)
	}
	b.ReportMetric(blocked, "spam-converted-to-blocks")
}
