package smtpproto

import (
	"bufio"
	"strings"
	"testing"
)

// FuzzParseReply: the reply parser must never panic and must only accept
// replies whose re-rendering it would parse identically.
func FuzzParseReply(f *testing.F) {
	f.Add("250 OK\r\n")
	f.Add("451 4.7.1 Greylisted\r\n")
	f.Add("250-a\r\n250-b\r\n250 c\r\n")
	f.Add("xyz\r\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, input string) {
		r, err := ParseReply(bufio.NewReader(strings.NewReader(input)))
		if err != nil {
			return
		}
		r2, err := ParseReply(bufio.NewReader(strings.NewReader(r.String())))
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", r.String(), err)
		}
		if r2.Code != r.Code || r2.Enhanced != r.Enhanced {
			t.Fatalf("unstable: %+v vs %+v", r, r2)
		}
	})
}

// FuzzParseMailArg: path parsing must never panic, and accepted
// mailboxes must round-trip through the client's MAIL FROM rendering.
func FuzzParseMailArg(f *testing.F) {
	f.Add("FROM:<a@b.example>")
	f.Add("FROM:<>")
	f.Add("FROM:<@r.example:u@d.example> SIZE=100")
	f.Add("junk")

	f.Fuzz(func(t *testing.T, input string) {
		mailbox, _, err := ParseMailArg(input)
		if err != nil {
			return
		}
		if mailbox == "" {
			return // null path
		}
		again, _, err := ParseMailArg("FROM:<" + mailbox + ">")
		if err != nil {
			t.Fatalf("accepted mailbox %q does not re-parse: %v", mailbox, err)
		}
		if again != mailbox {
			t.Fatalf("mailbox unstable: %q vs %q", mailbox, again)
		}
	})
}
