package smtpproto

// Zero-allocation wire helpers. The server's verb loop and the client's
// command loop are the two hottest paths in a wire-level soak: every
// reply used to be rendered through Reply.String (a strings.Builder and
// several fmt calls per reply) and every command line read through a
// per-line strings.Builder. The helpers here append into caller-owned
// buffers instead, so a pooled session can serve an entire SMTP
// conversation without per-verb garbage. Byte-identity with the
// string-based paths is pinned by TestAppendToMatchesString and
// TestReadCommandLineAppendMatches.

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
)

// AppendTo appends the wire form of the reply (with CRLFs) to buf and
// returns the extended buffer. The output is byte-identical to String.
func (r Reply) AppendTo(buf []byte) []byte {
	lines := r.Lines
	if len(lines) == 0 {
		buf = r.appendLine(buf, "", true)
		return buf
	}
	for i, line := range lines {
		buf = r.appendLine(buf, line, i == len(lines)-1)
	}
	return buf
}

// appendLine renders one reply line: code, separator, optional enhanced
// status code, text, with String's trailing-space trimming semantics.
func (r Reply) appendLine(buf []byte, line string, last bool) []byte {
	buf = appendCode(buf, r.Code)
	sep := byte('-')
	if last {
		sep = ' '
	}
	mark := len(buf)
	buf = append(buf, sep)
	if r.Enhanced != "" {
		buf = append(buf, r.Enhanced...)
		buf = append(buf, ' ')
	}
	buf = append(buf, line...)
	for len(buf) > mark+1 && buf[len(buf)-1] == ' ' {
		buf = buf[:len(buf)-1]
	}
	if len(buf) == mark+1 && sep == ' ' {
		buf = buf[:mark] // bare "250\r\n" form
	}
	return append(buf, '\r', '\n')
}

// appendCode appends the three-digit reply code.
func appendCode(buf []byte, code int) []byte {
	return append(buf, byte('0'+code/100%10), byte('0'+code/10%10), byte('0'+code%10))
}

// ReadCommandLineAppend reads one CRLF-terminated command line into
// buf[:0] (bare LF tolerated, CR stripped), enforcing MaxCommandLine
// exactly like ReadCommandLine. The returned slice aliases buf's
// backing array and is valid until the next call with the same buffer;
// callers reuse one buffer per session, so the steady state reads
// commands with zero allocations.
func ReadCommandLineAppend(br *bufio.Reader, buf []byte) ([]byte, error) {
	return readLineAppend(br, buf, MaxCommandLine)
}

// readLineAppend is readLine appending into a reusable buffer, using
// ReadSlice so the common short-line case is one memchr instead of a
// byte-at-a-time loop.
func readLineAppend(br *bufio.Reader, buf []byte, limit int) ([]byte, error) {
	buf = buf[:0]
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(buf) > limit {
				// Drain the rest of the oversized line so the session
				// can resynchronize, as readLine does.
				for {
					b, err := br.ReadByte()
					if err != nil || b == '\n' {
						break
					}
				}
				return buf[:0], ErrLineTooLong
			}
			continue
		}
		return buf[:0], err
	}
	n := len(buf) - 1 // strip '\n'
	if n > limit {
		return buf[:0], ErrLineTooLong
	}
	if n > 0 && buf[n-1] == '\r' {
		n--
	}
	return buf[:n], nil
}

// verbTable lists every verb the server dispatches on; ParseCommandBytes
// interns matches so parsing a well-formed command allocates nothing
// beyond its argument.
var verbTable = []string{
	VerbHELO, VerbEHLO, VerbMAIL, VerbRCPT, VerbDATA,
	VerbRSET, VerbNOOP, VerbQUIT, VerbVRFY, VerbHELP,
	"STARTTLS",
}

// internVerb returns the canonical (upper-case, interned) spelling of a
// verb given its raw bytes, or "" when the verb is not in the table.
func internVerb(raw []byte) string {
	for _, v := range verbTable {
		if len(raw) != len(v) {
			continue
		}
		match := true
		for i := 0; i < len(raw); i++ {
			c := raw[i]
			if c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			if c != v[i] {
				match = false
				break
			}
		}
		if match {
			return v
		}
	}
	return ""
}

// ParseCommandBytes parses one SMTP command line, semantically identical
// to ParseCommand(string(line)) but allocating only for the argument
// (and for verbs outside the standard repertoire).
func ParseCommandBytes(line []byte) (Command, error) {
	line = bytes.TrimRight(line, " ")
	if len(line) == 0 {
		return Command{}, errEmptyCommand
	}
	verb := line
	var arg []byte
	if i := bytes.IndexByte(line, ' '); i >= 0 {
		verb, arg = line[:i], bytes.TrimSpace(line[i+1:])
	}
	for _, c := range verb {
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			// Rare path: fall back for the identical error text.
			return ParseCommand(string(line))
		}
	}
	v := internVerb(verb)
	if v == "" {
		v = strings.ToUpper(string(verb))
	}
	if len(arg) == 0 {
		return Command{Verb: v}, nil
	}
	return Command{Verb: v, Arg: string(arg)}, nil
}

// errEmptyCommand mirrors ParseCommand's empty-line error without
// reformatting it per call.
var errEmptyCommand = func() error {
	_, err := ParseCommand("")
	return err
}()

// ReadReplyCode reads one complete (possibly multi-line) reply but
// surfaces only its code, skipping the per-line string allocations of
// ParseReply — a load generator classifying 100k+ verdicts/sec needs
// nothing but the code. buf carries the line scratch across calls
// (pass the returned slice back in).
func ReadReplyCode(br *bufio.Reader, buf []byte) (int, []byte, error) {
	code := 0
	for {
		line, err := readLineAppend(br, buf, MaxTextLine)
		if err != nil {
			return 0, line[:0], err
		}
		buf = line[:cap(line)]
		if len(line) < 3 {
			return 0, buf, fmt.Errorf("smtpproto: short reply line %q", line)
		}
		c := 0
		for _, b := range line[:3] {
			if b < '0' || b > '9' {
				return 0, buf, fmt.Errorf("smtpproto: bad reply code in %q", line)
			}
			c = c*10 + int(b-'0')
		}
		if code == 0 {
			code = c
		} else if c != code {
			return 0, buf, fmt.Errorf("smtpproto: inconsistent codes %d and %d in multiline reply", code, c)
		}
		if len(line) == 3 || line[3] != '-' {
			return code, buf, nil
		}
	}
}

// ParseReplyBuf is ParseReply reading its lines through a reusable
// buffer: buf carries the line scratch across calls (pass the previous
// return value back in), so a client session's reply loop stops paying
// a strings.Builder per line. The returned Reply still owns its Lines.
func ParseReplyBuf(br *bufio.Reader, buf []byte) (Reply, []byte, error) {
	var reply Reply
	for {
		line, err := readLineAppend(br, buf, MaxTextLine)
		if err != nil {
			return Reply{}, line[:0], err
		}
		buf = line[:cap(line)]
		rest, more, err := parseReplyLine(&reply, string(line))
		if err != nil {
			return Reply{}, buf, err
		}
		reply.Lines = append(reply.Lines, rest)
		if !more {
			return reply, buf, nil
		}
	}
}
