package smtpproto

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

// appendToCases covers every reply shape the server emits: single line,
// enhanced codes, multi-line, empty text, trailing spaces, no lines.
var appendToCases = []Reply{
	NewReply(220, "", "mail.example ESMTP ready"),
	NewReply(250, "2.0.0", "OK"),
	NewReply(451, "4.7.1", "Greylisted, please retry in 300 seconds"),
	NewReply(500, "5.5.2", "Unrecognized command"),
	{Code: 250, Lines: []string{"mail.example Hello client", "PIPELINING", "SIZE 10485760", "8BITMIME", "ENHANCEDSTATUSCODES"}},
	{Code: 214, Lines: []string{"Commands: HELO EHLO MAIL RCPT DATA RSET NOOP QUIT VRFY HELP"}},
	{Code: 250, Enhanced: "2.1.5", Lines: []string{"first", "", "last"}},
	{Code: 354, Lines: []string{""}},
	{Code: 221},
	NewReply(250, "", "trailing spaces   "),
	NewReply(250, "2.0.0", ""),
	{Code: 502, Enhanced: "5.5.1", Lines: []string{"a", "b"}},
}

func TestAppendToMatchesString(t *testing.T) {
	for _, r := range appendToCases {
		want := r.String()
		got := string(r.AppendTo(nil))
		if got != want {
			t.Errorf("AppendTo mismatch for %+v:\n got %q\nwant %q", r, got, want)
		}
		// Appending to a non-empty buffer must extend, not clobber.
		buf := []byte("prefix")
		if got := string(r.AppendTo(buf)); got != "prefix"+want {
			t.Errorf("AppendTo with prefix: got %q", got)
		}
	}
}

func TestAppendToAllocs(t *testing.T) {
	r := NewReply(250, "2.1.5", "Recipient OK")
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(100, func() {
		buf = r.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendTo into a sized buffer allocated %.1f times/op", allocs)
	}
}

func TestReadCommandLineAppendMatches(t *testing.T) {
	inputs := []string{
		"EHLO client.example\r\n",
		"MAIL FROM:<a@b.example>\r\n",
		"bare-lf line\n",
		"\r\n",
		strings.Repeat("x", MaxCommandLine+10) + "\r\nNEXT\r\n", // oversized then resync
	}
	for _, in := range inputs {
		a := bufio.NewReader(strings.NewReader(in))
		b := bufio.NewReader(strings.NewReader(in))
		var buf []byte
		for {
			s1, err1 := ReadCommandLine(a)
			s2, err2 := ReadCommandLineAppend(b, buf)
			buf = s2[:0]
			if (err1 == nil) != (err2 == nil) || !errors.Is(err2, err1) && err1 != nil && !errors.Is(err1, ErrLineTooLong) {
				t.Fatalf("input %q: err mismatch %v vs %v", in, err1, err2)
			}
			if err1 != nil && errors.Is(err1, ErrLineTooLong) && !errors.Is(err2, ErrLineTooLong) {
				t.Fatalf("input %q: want ErrLineTooLong, got %v", in, err2)
			}
			if err1 != nil && !errors.Is(err1, ErrLineTooLong) {
				break // both hit EOF
			}
			if s1 != string(s2) {
				t.Fatalf("input %q: line mismatch %q vs %q", in, s1, s2)
			}
			if err1 != nil && err2 != nil {
				continue // both saw too-long; resync and keep reading
			}
		}
	}
}

func TestParseCommandBytesMatches(t *testing.T) {
	lines := []string{
		"EHLO client.example",
		"helo lower.example",
		"MAIL FROM:<a@b.example> SIZE=100",
		"RCPT TO:<u@foo.net>",
		"DATA",
		"rset",
		"NOOP ",
		"QUIT",
		"XUNKNOWN arg here",
		"starttls",
		"BAD-VERB x",
		"",
		"   ",
	}
	for _, line := range lines {
		c1, err1 := ParseCommand(line)
		c2, err2 := ParseCommandBytes([]byte(line))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%q: err mismatch %v vs %v", line, err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Errorf("%q: error text mismatch %q vs %q", line, err1, err2)
			}
			continue
		}
		if c1 != c2 {
			t.Errorf("%q: command mismatch %+v vs %+v", line, c1, c2)
		}
	}
}

// TestParseCommandBytesInterns pins the zero-alloc contract for
// argument-less commands: known verbs come back as interned constants.
func TestParseCommandBytesInterns(t *testing.T) {
	line := []byte("RSET")
	allocs := testing.AllocsPerRun(100, func() {
		c, err := ParseCommandBytes(line)
		if err != nil || c.Verb != VerbRSET {
			t.Fatalf("ParseCommandBytes: %+v, %v", c, err)
		}
	})
	if allocs != 0 {
		t.Errorf("argument-less known verb allocated %.1f times/op", allocs)
	}
}

func TestParseReplyBufMatches(t *testing.T) {
	wire := "" +
		"220 mail.example ESMTP ready\r\n" +
		"250-mail.example Hello client\r\n250-PIPELINING\r\n250 ENHANCEDSTATUSCODES\r\n" +
		"250 2.1.0 Sender OK\r\n" +
		"451 4.7.1 Greylisted, please retry in 300 seconds\r\n" +
		"221 2.0.0 mail.example closing connection\r\n"
	a := bufio.NewReader(strings.NewReader(wire))
	b := bufio.NewReader(strings.NewReader(wire))
	var buf []byte
	for i := 0; i < 5; i++ {
		r1, err1 := ParseReply(a)
		var r2 Reply
		var err2 error
		r2, buf, err2 = ParseReplyBuf(b, buf)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("reply %d: err mismatch %v vs %v", i, err1, err2)
		}
		if r1.String() != r2.String() || r1.Code != r2.Code || r1.Enhanced != r2.Enhanced {
			t.Fatalf("reply %d mismatch:\n%+v\n%+v", i, r1, r2)
		}
	}
}
