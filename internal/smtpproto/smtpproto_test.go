package smtpproto

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseCommand(t *testing.T) {
	cases := []struct {
		in      string
		verb    string
		arg     string
		wantErr bool
	}{
		{"HELO local.domain.name", "HELO", "local.domain.name", false},
		{"ehlo Example.ORG", "EHLO", "Example.ORG", false},
		{"MAIL FROM:<a@b.com> SIZE=100", "MAIL", "FROM:<a@b.com> SIZE=100", false},
		{"QUIT", "QUIT", "", false},
		{"NOOP ", "NOOP", "", false},
		{"rset", "RSET", "", false},
		{"", "", "", true},
		{"MA IL", "MA", "IL", false}, // verb "MA" is alphabetic, parses; server rejects later
		{"M@IL FROM:<x>", "", "", true},
	}
	for _, tc := range cases {
		got, err := ParseCommand(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseCommand(%q) succeeded, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCommand(%q): %v", tc.in, err)
			continue
		}
		if got.Verb != tc.verb || got.Arg != tc.arg {
			t.Errorf("ParseCommand(%q) = %+v, want verb=%q arg=%q", tc.in, got, tc.verb, tc.arg)
		}
	}
}

func TestCommandString(t *testing.T) {
	if got := (Command{Verb: "MAIL", Arg: "FROM:<a@b>"}).String(); got != "MAIL FROM:<a@b>" {
		t.Errorf("String = %q", got)
	}
	if got := (Command{Verb: "QUIT"}).String(); got != "QUIT" {
		t.Errorf("String = %q", got)
	}
}

func TestReadCommandLine(t *testing.T) {
	br := bufio.NewReader(strings.NewReader("HELO a\r\nEHLO b\nQUIT\r\n"))
	for i, want := range []string{"HELO a", "EHLO b", "QUIT"} {
		got, err := ReadCommandLine(br)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("line %d = %q, want %q", i, got, want)
		}
	}
	if _, err := ReadCommandLine(br); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestReadCommandLineTooLongResyncs(t *testing.T) {
	long := strings.Repeat("X", 2*MaxCommandLine)
	br := bufio.NewReader(strings.NewReader(long + "\r\nQUIT\r\n"))
	if _, err := ReadCommandLine(br); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
	// The reader must have consumed the oversized line so the next read
	// sees the following command.
	got, err := ReadCommandLine(br)
	if err != nil || got != "QUIT" {
		t.Fatalf("after oversized line: %q, %v", got, err)
	}
}

func TestReplyString(t *testing.T) {
	cases := []struct {
		reply Reply
		want  string
	}{
		{NewReply(250, "", "OK"), "250 OK\r\n"},
		{NewReply(451, "4.7.1", "Greylisted, try again later"), "451 4.7.1 Greylisted, try again later\r\n"},
		{Reply{Code: 250, Lines: []string{"smtp.foo.net", "PIPELINING", "SIZE 10240000"}},
			"250-smtp.foo.net\r\n250-PIPELINING\r\n250 SIZE 10240000\r\n"},
		{Reply{Code: 221}, "221\r\n"},
	}
	for _, tc := range cases {
		if got := tc.reply.String(); got != tc.want {
			t.Errorf("Reply.String() = %q, want %q", got, tc.want)
		}
	}
}

func TestReplyClassPredicates(t *testing.T) {
	if !NewReply(250, "", "x").Positive() || NewReply(250, "", "x").Transient() {
		t.Error("250 classification wrong")
	}
	if !NewReply(354, "", "x").Intermediate() {
		t.Error("354 classification wrong")
	}
	if !NewReply(451, "", "x").Transient() {
		t.Error("451 classification wrong")
	}
	if !NewReply(550, "", "x").Permanent() {
		t.Error("550 classification wrong")
	}
}

func parseReplyString(t *testing.T, s string) (Reply, error) {
	t.Helper()
	return ParseReply(bufio.NewReader(strings.NewReader(s)))
}

func TestParseReplySingleLine(t *testing.T) {
	r, err := parseReplyString(t, "250 OK\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != 250 || len(r.Lines) != 1 || r.Lines[0] != "OK" {
		t.Fatalf("reply = %+v", r)
	}
}

func TestParseReplyMultiLine(t *testing.T) {
	r, err := parseReplyString(t, "250-smtp.foo.net\r\n250-PIPELINING\r\n250 SIZE 10240000\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != 250 || len(r.Lines) != 3 || r.Lines[2] != "SIZE 10240000" {
		t.Fatalf("reply = %+v", r)
	}
}

func TestParseReplyEnhancedCode(t *testing.T) {
	r, err := parseReplyString(t, "451 4.7.1 Greylisted\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Enhanced != "4.7.1" || r.Lines[0] != "Greylisted" {
		t.Fatalf("reply = %+v", r)
	}
}

func TestParseReplyEnhancedClassMismatchNotStripped(t *testing.T) {
	// "2.0.0" with a 451 code is not a valid enhanced code; keep it as text.
	r, err := parseReplyString(t, "451 2.0.0 odd\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Enhanced != "" || r.Lines[0] != "2.0.0 odd" {
		t.Fatalf("reply = %+v", r)
	}
}

func TestParseReplyErrors(t *testing.T) {
	for _, in := range []string{
		"25 OK\r\n",
		"abc nope\r\n",
		"250-first\r\n500 second\r\n",
		"250~sep\r\n",
	} {
		if _, err := parseReplyString(t, in); err == nil {
			t.Errorf("ParseReply(%q) succeeded", in)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	replies := []Reply{
		NewReply(250, "", "OK"),
		NewReply(451, "4.7.1", "Greylisted, try again in 300 seconds"),
		{Code: 250, Lines: []string{"host", "PIPELINING", "8BITMIME"}},
		{Code: 550, Enhanced: "5.1.1", Lines: []string{"No such user", "really"}},
	}
	for _, want := range replies {
		got, err := parseReplyString(t, want.String())
		if err != nil {
			t.Fatalf("ParseReply(%q): %v", want.String(), err)
		}
		if got.Code != want.Code || got.Enhanced != want.Enhanced || len(got.Lines) != len(want.Lines) {
			t.Fatalf("round trip %q -> %+v", want.String(), got)
		}
		for i := range got.Lines {
			if got.Lines[i] != want.Lines[i] {
				t.Fatalf("line %d: %q vs %q", i, got.Lines[i], want.Lines[i])
			}
		}
	}
}

func TestParseMailArg(t *testing.T) {
	cases := []struct {
		in      string
		mailbox string
		wantErr bool
		params  map[string]string
	}{
		{"FROM:<spammer@bot.example>", "spammer@bot.example", false, nil},
		{"FROM:<>", "", false, nil}, // null reverse path (bounces)
		{"from:<User@Dom.example> SIZE=1000 BODY=8BITMIME", "User@Dom.example", false,
			map[string]string{"SIZE": "1000", "BODY": "8BITMIME"}},
		{"FROM: <relaxed@spacing.example>", "relaxed@spacing.example", false, nil},
		{"FROM:<@relay1.example,@relay2.example:user@final.example>", "user@final.example", false, nil},
		{"TO:<a@b.example>", "", true, nil},
		{"FROM:a@b.example", "", true, nil},
		{"FROM:<no-at-sign>", "", true, nil},
		{"FROM:<a@>", "", true, nil},
		{"FROM:<@b.example>", "", true, nil},
		{"FROM:<unterminated@b.example", "", true, nil},
		{"FROM:<a@bad..domain>", "", true, nil},
	}
	for _, tc := range cases {
		mailbox, params, err := ParseMailArg(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseMailArg(%q) succeeded with %q", tc.in, mailbox)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseMailArg(%q): %v", tc.in, err)
			continue
		}
		if mailbox != tc.mailbox {
			t.Errorf("ParseMailArg(%q) = %q, want %q", tc.in, mailbox, tc.mailbox)
		}
		for k, v := range tc.params {
			if params[k] != v {
				t.Errorf("ParseMailArg(%q) params[%s] = %q, want %q", tc.in, k, params[k], v)
			}
		}
	}
}

func TestParseRcptArg(t *testing.T) {
	mailbox, _, err := ParseRcptArg("TO:<postmaster@foo.net>")
	if err != nil || mailbox != "postmaster@foo.net" {
		t.Fatalf("ParseRcptArg = %q, %v", mailbox, err)
	}
	if _, _, err := ParseRcptArg("TO:<>"); err == nil {
		t.Fatal("empty forward path accepted")
	}
	if _, _, err := ParseRcptArg("FROM:<a@b.example>"); err == nil {
		t.Fatal("FROM keyword accepted for RCPT")
	}
}

func TestPathTooLong(t *testing.T) {
	long := strings.Repeat("a", MaxPathLength) + "@example.org"
	if _, _, err := ParseMailArg("FROM:<" + long + ">"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("err = %v, want ErrBadPath", err)
	}
}

func TestDomainOf(t *testing.T) {
	if got := DomainOf("User@Foo.NET"); got != "foo.net" {
		t.Errorf("DomainOf = %q", got)
	}
	if got := DomainOf("no-at"); got != "" {
		t.Errorf("DomainOf(no-at) = %q", got)
	}
}

func TestDotReaderBasic(t *testing.T) {
	in := "line one\r\nline two\r\n.\r\nNEXT COMMAND\r\n"
	br := bufio.NewReader(strings.NewReader(in))
	d := NewDotReader(br, 0)
	data, err := d.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(data) != "line one\r\nline two\r\n" {
		t.Fatalf("data = %q", data)
	}
	// The terminator must be consumed, leaving the next command.
	rest, _ := ReadCommandLine(br)
	if rest != "NEXT COMMAND" {
		t.Fatalf("rest = %q", rest)
	}
}

func TestDotReaderUnstuffing(t *testing.T) {
	in := "..leading dot\r\n...two dots\r\n.\r\n"
	d := NewDotReader(bufio.NewReader(strings.NewReader(in)), 0)
	data, err := d.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	want := ".leading dot\r\n..two dots\r\n"
	if string(data) != want {
		t.Fatalf("data = %q, want %q", data, want)
	}
}

func TestDotReaderSizeLimit(t *testing.T) {
	in := strings.Repeat("0123456789\r\n", 100) + ".\r\nQUIT\r\n"
	br := bufio.NewReader(strings.NewReader(in))
	d := NewDotReader(br, 50)
	_, err := d.ReadAll()
	if !errors.Is(err, ErrMessageTooBig) {
		t.Fatalf("err = %v, want ErrMessageTooBig", err)
	}
	if !d.TooBig() {
		t.Fatal("TooBig() = false")
	}
	// Oversized payloads are still drained to the terminator.
	rest, _ := ReadCommandLine(br)
	if rest != "QUIT" {
		t.Fatalf("rest = %q", rest)
	}
}

func TestDotReaderEOFMidMessage(t *testing.T) {
	d := NewDotReader(bufio.NewReader(strings.NewReader("no terminator\r\n")), 0)
	if _, err := d.ReadAll(); err == nil {
		t.Fatal("ReadAll succeeded without terminator")
	}
}

func TestWriteDotStuffed(t *testing.T) {
	var buf bytes.Buffer
	err := WriteDotStuffed(&buf, []byte("hello\r\n.starts with dot\r\nworld"))
	if err != nil {
		t.Fatal(err)
	}
	want := "hello\r\n..starts with dot\r\nworld\r\n.\r\n"
	if buf.String() != want {
		t.Fatalf("stuffed = %q, want %q", buf.String(), want)
	}
}

func TestWriteDotStuffedNormalizesLF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDotStuffed(&buf, []byte("a\nb\n")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "a\r\nb\r\n.\r\n" {
		t.Fatalf("stuffed = %q", buf.String())
	}
}

// Property: WriteDotStuffed and DotReader are inverse for CRLF-normalized
// payloads without oversized lines.
func TestDotStuffingRoundTrip(t *testing.T) {
	f := func(lines []string) bool {
		var payload strings.Builder
		for _, l := range lines {
			clean := strings.Map(func(r rune) rune {
				if r == '\r' || r == '\n' {
					return 'x'
				}
				return r
			}, l)
			if len(clean) > 900 {
				clean = clean[:900]
			}
			payload.WriteString(clean)
			payload.WriteString("\r\n")
		}
		var wire bytes.Buffer
		if err := WriteDotStuffed(&wire, []byte(payload.String())); err != nil {
			return false
		}
		d := NewDotReader(bufio.NewReader(&wire), 0)
		got, err := d.ReadAll()
		if err != nil {
			return false
		}
		return string(got) == payload.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
