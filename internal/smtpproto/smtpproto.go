// Package smtpproto implements the protocol grammar shared by the SMTP
// server and client: command parsing, reply formatting (including
// multi-line replies and RFC 2034 enhanced status codes), reverse/forward
// path parsing per RFC 5321, and transparent dot-stuffing for the DATA
// phase.
//
// Greylisting lives entirely inside this grammar: a greylisted delivery is
// nothing more than a 451 reply with enhanced code 4.7.1 at RCPT time, and
// whether a sender retries after it is precisely what separates a
// compliant MTA from a fire-and-forget spam bot (Section II of the paper).
package smtpproto

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Protocol limits from RFC 5321 §4.5.3.1.
const (
	// MaxCommandLine is the maximum total command line length including
	// CRLF.
	MaxCommandLine = 512
	// MaxTextLine is the maximum message text line length including
	// CRLF.
	MaxTextLine = 1000
	// MaxPathLength is the maximum reverse/forward path length.
	MaxPathLength = 256
)

// Errors returned by the parsers.
var (
	ErrLineTooLong   = errors.New("smtpproto: line too long")
	ErrBadSyntax     = errors.New("smtpproto: bad syntax")
	ErrBadPath       = errors.New("smtpproto: malformed path")
	ErrMessageTooBig = errors.New("smtpproto: message exceeds size limit")
)

// SMTP command verbs.
const (
	VerbHELO = "HELO"
	VerbEHLO = "EHLO"
	VerbMAIL = "MAIL"
	VerbRCPT = "RCPT"
	VerbDATA = "DATA"
	VerbRSET = "RSET"
	VerbNOOP = "NOOP"
	VerbQUIT = "QUIT"
	VerbVRFY = "VRFY"
	VerbHELP = "HELP"
)

// Command is a parsed SMTP command line.
type Command struct {
	// Verb is the upper-cased command verb.
	Verb string
	// Arg is the raw argument text following the verb, trimmed.
	Arg string
}

// String implements fmt.Stringer.
func (c Command) String() string {
	if c.Arg == "" {
		return c.Verb
	}
	return c.Verb + " " + c.Arg
}

// ParseCommand parses one SMTP command line (without CRLF).
func ParseCommand(line string) (Command, error) {
	line = strings.TrimRight(line, " ")
	if line == "" {
		return Command{}, fmt.Errorf("%w: empty command", ErrBadSyntax)
	}
	verb := line
	arg := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		verb, arg = line[:i], strings.TrimSpace(line[i+1:])
	}
	for _, r := range verb {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return Command{}, fmt.Errorf("%w: verb %q", ErrBadSyntax, verb)
		}
	}
	return Command{Verb: strings.ToUpper(verb), Arg: arg}, nil
}

// ReadCommandLine reads one CRLF-terminated command line from br, enforcing
// MaxCommandLine. Bare LF is tolerated (robustness principle), since real
// bots are sloppy about line endings — one of the SMTP "dialect" signals
// from Stringhini et al. the paper builds on.
func ReadCommandLine(br *bufio.Reader) (string, error) {
	line, err := readLine(br, MaxCommandLine)
	if err != nil {
		return "", err
	}
	return line, nil
}

func readLine(br *bufio.Reader, limit int) (string, error) {
	var sb strings.Builder
	for {
		b, err := br.ReadByte()
		if err != nil {
			return "", err
		}
		if b == '\n' {
			s := sb.String()
			s = strings.TrimSuffix(s, "\r")
			return s, nil
		}
		if sb.Len() >= limit {
			// Drain the rest of the oversized line before reporting,
			// so the session can resynchronize.
			for {
				b, err := br.ReadByte()
				if err != nil || b == '\n' {
					break
				}
			}
			return "", ErrLineTooLong
		}
		sb.WriteByte(b)
	}
}

// Reply is an SMTP reply: a three-digit code, an optional RFC 2034
// enhanced status code, and one or more text lines.
type Reply struct {
	Code     int
	Enhanced string // e.g. "4.7.1"; empty to omit
	Lines    []string
}

// NewReply builds a single-line reply.
func NewReply(code int, enhanced, text string) Reply {
	return Reply{Code: code, Enhanced: enhanced, Lines: []string{text}}
}

// Positive reports a 2xx code.
func (r Reply) Positive() bool { return r.Code >= 200 && r.Code < 300 }

// Intermediate reports a 3xx code (e.g. 354 after DATA).
func (r Reply) Intermediate() bool { return r.Code >= 300 && r.Code < 400 }

// Transient reports a 4xx code — the class greylisting uses, telling a
// compliant client to retry later.
func (r Reply) Transient() bool { return r.Code >= 400 && r.Code < 500 }

// Permanent reports a 5xx code.
func (r Reply) Permanent() bool { return r.Code >= 500 && r.Code < 600 }

// String renders the reply in wire format (with CRLFs).
func (r Reply) String() string {
	lines := r.Lines
	if len(lines) == 0 {
		lines = []string{""}
	}
	var sb strings.Builder
	for i, line := range lines {
		sep := " "
		if i < len(lines)-1 {
			sep = "-"
		}
		text := line
		if r.Enhanced != "" {
			text = r.Enhanced + " " + line
		}
		text = strings.TrimRight(text, " ")
		if text == "" && sep == " " {
			fmt.Fprintf(&sb, "%03d\r\n", r.Code)
			continue
		}
		fmt.Fprintf(&sb, "%03d%s%s\r\n", r.Code, sep, text)
	}
	return sb.String()
}

// WriteTo writes the wire form of the reply to w.
func (r Reply) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, r.String())
	return int64(n), err
}

// ParseReply parses a complete (possibly multi-line) reply from br.
func ParseReply(br *bufio.Reader) (Reply, error) {
	var reply Reply
	for {
		line, err := readLine(br, MaxTextLine)
		if err != nil {
			return Reply{}, err
		}
		rest, more, err := parseReplyLine(&reply, line)
		if err != nil {
			return Reply{}, err
		}
		reply.Lines = append(reply.Lines, rest)
		if !more {
			return reply, nil
		}
	}
}

// parseReplyLine folds one raw reply line into reply (code consistency,
// separator, enhanced status code), returning the text remainder and
// whether more lines follow. Shared by ParseReply and ParseReplyBuf.
func parseReplyLine(reply *Reply, line string) (rest string, more bool, err error) {
	if len(line) < 3 {
		return "", false, fmt.Errorf("%w: short reply line %q", ErrBadSyntax, line)
	}
	code := 0
	for _, c := range line[:3] {
		if c < '0' || c > '9' {
			return "", false, fmt.Errorf("%w: reply code %q", ErrBadSyntax, line[:3])
		}
		code = code*10 + int(c-'0')
	}
	if reply.Code != 0 && code != reply.Code {
		return "", false, fmt.Errorf("%w: inconsistent codes %d and %d", ErrBadSyntax, reply.Code, code)
	}
	reply.Code = code
	switch {
	case len(line) == 3:
	case line[3] == '-':
		more = true
		rest = line[4:]
	case line[3] == ' ':
		rest = line[4:]
	default:
		return "", false, fmt.Errorf("%w: separator in %q", ErrBadSyntax, line)
	}
	if reply.Enhanced == "" {
		if enh, remainder, ok := splitEnhanced(code, rest); ok {
			reply.Enhanced = enh
			rest = remainder
		}
	} else if enh, remainder, ok := splitEnhanced(code, rest); ok && enh == reply.Enhanced {
		rest = remainder
	}
	return rest, more, nil
}

// splitEnhanced recognizes a leading RFC 2034 enhanced status code whose
// class digit agrees with the reply code class.
func splitEnhanced(code int, s string) (enhanced, rest string, ok bool) {
	fields := strings.SplitN(s, " ", 2)
	cand := fields[0]
	parts := strings.Split(cand, ".")
	if len(parts) != 3 {
		return "", s, false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return "", s, false
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return "", s, false
			}
		}
	}
	if int(cand[0]-'0') != code/100 {
		return "", s, false
	}
	if len(fields) == 2 {
		return cand, fields[1], true
	}
	return cand, "", true
}

// ParseMailArg parses the argument of MAIL ("FROM:<path> [params]"),
// returning the reverse-path mailbox (empty for the null sender "<>") and
// any ESMTP parameters.
func ParseMailArg(arg string) (mailbox string, params map[string]string, err error) {
	return parsePathArg(arg, "FROM")
}

// ParseRcptArg parses the argument of RCPT ("TO:<path> [params]").
func ParseRcptArg(arg string) (mailbox string, params map[string]string, err error) {
	mailbox, params, err = parsePathArg(arg, "TO")
	if err == nil && mailbox == "" {
		return "", nil, fmt.Errorf("%w: empty forward-path", ErrBadPath)
	}
	return mailbox, params, err
}

func parsePathArg(arg, keyword string) (string, map[string]string, error) {
	rest, ok := cutPrefixFold(arg, keyword+":")
	if !ok {
		return "", nil, fmt.Errorf("%w: expected %s:", ErrBadSyntax, keyword)
	}
	rest = strings.TrimLeft(rest, " ")
	if len(rest) == 0 || rest[0] != '<' {
		return "", nil, fmt.Errorf("%w: path must be angle-bracketed", ErrBadPath)
	}
	end := strings.IndexByte(rest, '>')
	if end < 0 {
		return "", nil, fmt.Errorf("%w: unterminated path", ErrBadPath)
	}
	path := rest[1:end]
	mailbox, err := parsePath(path)
	if err != nil {
		return "", nil, err
	}
	params, err := parseESMTPParams(strings.TrimSpace(rest[end+1:]))
	if err != nil {
		return "", nil, err
	}
	return mailbox, params, nil
}

func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}

// parsePath handles the inside of <...>: optional source route
// ("@a,@b:user@dom") which RFC 5321 says receivers MUST accept and ignore,
// then the mailbox.
func parsePath(path string) (string, error) {
	if path == "" {
		return "", nil // null reverse-path
	}
	if len(path) > MaxPathLength {
		return "", fmt.Errorf("%w: %d octets", ErrBadPath, len(path))
	}
	if path[0] == '@' {
		colon := strings.IndexByte(path, ':')
		if colon < 0 {
			return "", fmt.Errorf("%w: source route without colon", ErrBadPath)
		}
		path = path[colon+1:]
	}
	return parseMailbox(path)
}

func parseMailbox(mbox string) (string, error) {
	at := strings.LastIndexByte(mbox, '@')
	if at <= 0 || at == len(mbox)-1 {
		return "", fmt.Errorf("%w: mailbox %q", ErrBadPath, mbox)
	}
	local, domain := mbox[:at], mbox[at+1:]
	if strings.ContainsAny(local, " \t<>") {
		return "", fmt.Errorf("%w: local part %q", ErrBadPath, local)
	}
	for _, label := range strings.Split(domain, ".") {
		if label == "" {
			return "", fmt.Errorf("%w: domain %q", ErrBadPath, domain)
		}
		for _, c := range label {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == '[' || c == ']' || c == ':') {
				return "", fmt.Errorf("%w: domain %q", ErrBadPath, domain)
			}
		}
	}
	return mbox, nil
}

func parseESMTPParams(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	params := make(map[string]string)
	for _, field := range strings.Fields(s) {
		k, v, _ := strings.Cut(field, "=")
		if k == "" {
			return nil, fmt.Errorf("%w: parameter %q", ErrBadSyntax, field)
		}
		params[strings.ToUpper(k)] = v
	}
	return params, nil
}

// DomainOf returns the domain part of a mailbox, lower-cased, or "".
func DomainOf(mailbox string) string {
	at := strings.LastIndexByte(mailbox, '@')
	if at < 0 {
		return ""
	}
	return strings.ToLower(mailbox[at+1:])
}

// DotReader reads a DATA payload from br up to the terminating ".",
// transparently removing dot-stuffing and enforcing maxSize (0 = no
// limit). After it returns io.EOF, the terminator has been consumed.
// A DotReader can be reused across messages via Reset; its line scratch
// buffer survives the reset, so a pooled SMTP session reads every DATA
// payload without per-line allocation.
type DotReader struct {
	br      *bufio.Reader
	maxSize int
	read    int
	buf     []byte
	line    []byte // reusable line scratch (readLineAppend)
	done    bool
	tooBig  bool
}

// NewDotReader returns a DotReader over br.
func NewDotReader(br *bufio.Reader, maxSize int) *DotReader {
	return &DotReader{br: br, maxSize: maxSize}
}

// Reset rearms the reader for a new payload on br, keeping the line
// scratch buffer. The previous payload's backing array is released (it
// belongs to whoever received it from ReadAll).
func (d *DotReader) Reset(br *bufio.Reader, maxSize int) {
	d.br = br
	d.maxSize = maxSize
	d.read = 0
	d.buf = nil
	d.done = false
	d.tooBig = false
}

// TooBig reports whether the payload exceeded the size limit. The reader
// consumes the whole payload either way so the session can continue.
func (d *DotReader) TooBig() bool { return d.tooBig }

// nextLine fetches the next unstuffed payload line (no CRLF), handling
// size accounting. keep reports whether the line belongs in the payload
// (false once the size limit is exceeded); io.EOF means the terminator
// was consumed.
func (d *DotReader) nextLine() (line []byte, keep bool, err error) {
	for {
		l, err := readLineAppend(d.br, d.line, MaxTextLine)
		d.line = l[:0]
		if err != nil {
			if errors.Is(err, ErrLineTooLong) {
				// Keep the oversized line's tail out of the message but
				// keep reading; mark as oversized.
				d.tooBig = true
				continue
			}
			if errors.Is(err, io.EOF) {
				// Stream ended before the ".": the message is incomplete.
				return nil, false, io.ErrUnexpectedEOF
			}
			return nil, false, err
		}
		if len(l) == 1 && l[0] == '.' {
			d.done = true
			return nil, false, io.EOF
		}
		if len(l) > 0 && l[0] == '.' {
			l = l[1:] // unstuff
		}
		d.read += len(l) + 2
		if d.maxSize > 0 && d.read > d.maxSize {
			d.tooBig = true
			return l, false, nil // drain to terminator without buffering
		}
		return l, true, nil
	}
}

// Read implements io.Reader.
func (d *DotReader) Read(p []byte) (int, error) {
	for len(d.buf) == 0 {
		if d.done {
			return 0, io.EOF
		}
		line, keep, err := d.nextLine()
		if err != nil {
			if errors.Is(err, io.EOF) && d.done {
				return 0, io.EOF
			}
			return 0, err
		}
		if !keep {
			continue
		}
		d.buf = append(d.buf, line...)
		d.buf = append(d.buf, '\r', '\n')
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// ReadAll drains the DotReader and returns the payload in one buffer
// (ownership passes to the caller; Reset releases it).
func (d *DotReader) ReadAll() ([]byte, error) {
	out := d.buf
	d.buf = nil
	for !d.done {
		line, keep, err := d.nextLine()
		if err != nil {
			if errors.Is(err, io.EOF) && d.done {
				break
			}
			return nil, err
		}
		if !keep {
			continue
		}
		out = append(out, line...)
		out = append(out, '\r', '\n')
	}
	if d.tooBig {
		return out, ErrMessageTooBig
	}
	return out, nil
}

// WriteDotStuffed writes data to w with dot-stuffing applied and the final
// "CRLF.CRLF" terminator appended. The data is normalized to CRLF line
// endings.
func WriteDotStuffed(w io.Writer, data []byte) error {
	bw := bufio.NewWriter(w)
	lines := strings.Split(strings.ReplaceAll(string(data), "\r\n", "\n"), "\n")
	// A trailing newline produces one empty trailing element; drop it so
	// we don't emit a spurious blank line before the terminator.
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1]
	}
	for _, line := range lines {
		if strings.HasPrefix(line, ".") {
			if err := bw.WriteByte('.'); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
		if _, err := bw.WriteString("\r\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(".\r\n"); err != nil {
		return err
	}
	return bw.Flush()
}
