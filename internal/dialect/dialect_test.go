package dialect

import (
	"sync"
	"testing"

	"repro/internal/botnet"
	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/smtpserver"
)

func TestPlausibleHeloName(t *testing.T) {
	good := []string{"mail.example.org", "mx1.foo.net", "[192.0.2.1]", "a-b.c_d.example"}
	for _, name := range good {
		if !PlausibleHeloName(name) {
			t.Errorf("PlausibleHeloName(%q) = false", name)
		}
	}
	bad := []string{"", "localhost", "LOCALHOST", "localhost.localdomain", "mail",
		"192.0.2.1", "ex ample.org", "a..b", "[not-an-ip]"}
	for _, name := range bad {
		if PlausibleHeloName(name) {
			t.Errorf("PlausibleHeloName(%q) = true", name)
		}
	}
}

func TestAnalyzeCleanMTATrace(t *testing.T) {
	tr := &smtpserver.SessionTrace{
		ClientIP: "192.0.2.1",
		HeloName: "mail.benign.example",
		UsedEHLO: true,
		SentQuit: true,
		Verbs:    []string{"EHLO", "MAIL", "RCPT", "DATA", "QUIT"},
	}
	v := Analyze(tr)
	if v.Score != 0 || len(v.Signals) != 0 {
		t.Fatalf("clean trace verdict = %+v", v)
	}
	if v.Suspicious() {
		t.Fatal("clean trace suspicious")
	}
}

func TestAnalyzeBotTrace(t *testing.T) {
	tr := &smtpserver.SessionTrace{
		ClientIP:       "203.0.113.9",
		HeloName:       "localhost",
		UsedEHLO:       false,
		SentQuit:       false,
		Verbs:          []string{"HELO", "MAIL", "RCPT", "DATA"},
		ProtocolErrors: 1,
	}
	v := Analyze(tr)
	if !v.Suspicious() {
		t.Fatalf("bot trace not suspicious: %+v", v)
	}
	names := map[string]bool{}
	for _, s := range v.Signals {
		names[s.Name] = true
	}
	for _, want := range []string{"helo-not-ehlo", "no-quit", "bad-helo-name", "protocol-errors"} {
		if !names[want] {
			t.Errorf("missing signal %q in %v", want, v.Signals)
		}
	}
	// Signals sorted by weight descending.
	for i := 1; i < len(v.Signals); i++ {
		if v.Signals[i].Weight > v.Signals[i-1].Weight {
			t.Fatalf("signals not sorted: %v", v.Signals)
		}
	}
	if v.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAnalyzeNoGreeting(t *testing.T) {
	tr := &smtpserver.SessionTrace{Verbs: []string{"MAIL", "?"}, ProtocolErrors: 2}
	v := Analyze(tr)
	names := map[string]bool{}
	for _, s := range v.Signals {
		names[s.Name] = true
	}
	if !names["no-helo"] || !names["unknown-verbs"] {
		t.Fatalf("signals = %v", v.Signals)
	}
	if v.Score > 1 {
		t.Fatalf("score %v not saturated at 1", v.Score)
	}
}

func TestAggregate(t *testing.T) {
	clean := &smtpserver.SessionTrace{HeloName: "mail.x.example", UsedEHLO: true, SentQuit: true, Verbs: []string{"EHLO", "QUIT"}}
	dirty := &smtpserver.SessionTrace{HeloName: "localhost", Verbs: []string{"HELO", "MAIL"}}
	v := Aggregate([]*smtpserver.SessionTrace{clean, dirty})
	if v.Score <= 0 || v.Score >= 1 {
		t.Fatalf("aggregate score = %v", v.Score)
	}
	if got := Aggregate(nil); got.Score != 0 {
		t.Fatalf("empty aggregate = %+v", got)
	}
}

// TestEndToEndFingerprinting runs real bot models and a benign client
// against a trace-collecting server and verifies the fingerprints
// separate them — the B@bel result in miniature.
func TestEndToEndFingerprinting(t *testing.T) {
	network := netsim.New()
	clock := simtime.NewSim(simtime.Epoch)
	sched := simtime.NewScheduler(clock)

	zone := dnsserver.NewZone("victim.example")
	zone.MustAdd(dnsmsg.RR{Name: "victim.example", Type: dnsmsg.TypeMX, TTL: 300,
		Data: dnsmsg.MX{Preference: 0, Host: "mx.victim.example"}})
	zone.MustAdd(dnsmsg.RR{Name: "mx.victim.example", Type: dnsmsg.TypeA, TTL: 300,
		Data: dnsmsg.MustIPv4("10.0.0.1")})
	dns := dnsserver.New()
	dns.AddZone(zone)
	resolver := dnsresolver.New(dnsresolver.Direct(dns), clock)

	collector := NewCollector()
	var mu sync.Mutex
	srv := smtpserver.New(smtpserver.Config{
		Hostname: "mx.victim.example",
		Clock:    clock,
		Hooks: smtpserver.Hooks{
			OnSessionEnd: func(tr *smtpserver.SessionTrace) {
				mu.Lock()
				defer mu.Unlock()
				collector.Observe(tr)
			},
		},
	})
	l, err := network.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	// A benign sender via the compliant client path.
	dialer := &smtpclient.SimDialer{Net: network, LocalIP: "192.0.2.10"}
	r := smtpclient.DeliverMX(resolver, dialer, "victim.example", smtpclient.Message{
		HeloName: "mail.benign.example",
		From:     "alice@benign.example",
		To:       []string{"bob@victim.example"},
		Data:     []byte("Subject: hi\r\n\r\nhello\r\n"),
	})
	if r.Outcome != smtpclient.Delivered {
		t.Fatalf("benign delivery = %+v", r)
	}

	// A Cutwail-style bot: HELO "localhost", no QUIT.
	bot, err := botnet.New(botnet.Cutwail(), botnet.Env{
		Net: network, Resolver: resolver, Sched: sched,
		SourceIP: "203.0.113.66", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot.Launch(botnet.Campaign{
		Domain: "victim.example", Sender: "x@spam.example",
		Recipients: []string{"bob@victim.example"},
		Data:       botnet.SpamPayload("Cutwail", "fp"),
	})
	sched.Run()

	// Sessions end asynchronously after the client closes; close the
	// server to drain them before reading the collector.
	srv.Close()

	mu.Lock()
	defer mu.Unlock()
	clients := collector.Clients()
	if len(clients) != 2 {
		t.Fatalf("clients = %v", clients)
	}
	benign := collector.VerdictFor("192.0.2.10")
	spam := collector.VerdictFor("203.0.113.66")
	if benign.Suspicious() {
		t.Fatalf("benign client flagged: %v", benign)
	}
	if !spam.Suspicious() {
		t.Fatalf("bot not flagged: %v", spam)
	}
	if spam.Score <= benign.Score {
		t.Fatalf("scores do not separate: bot %.2f vs benign %.2f", spam.Score, benign.Score)
	}
}
