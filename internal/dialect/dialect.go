// Package dialect fingerprints SMTP senders from their protocol
// behaviour — the direction the paper builds on (Stringhini et al.'s
// B@bel, USENIX Security 2012, showed that "details about the protocol
// can ... be used to fingerprint botnets and tell them apart from benign
// MTA agents", and the paper's Section VIII asks AV vendors to start
// reporting exactly these behavioural traits).
//
// The input is the smtpserver.SessionTrace the server records for every
// session; the output is a scored verdict with human-readable signals.
// The features are the classic bot tells:
//
//   - plain HELO instead of EHLO (modern MTAs are ESMTP),
//   - no QUIT — the connection is simply dropped,
//   - a HELO name that is not a plausible FQDN (bare "localhost",
//     unbracketed IP literals, single labels),
//   - protocol errors (out-of-order or malformed commands),
//   - unknown verbs.
//
// Scores are heuristic, designed for ranking and thresholding rather
// than proof; Aggregate combines multiple sessions from one client the
// way a mail server actually observes senders over time.
package dialect

import (
	"fmt"
	"net"
	"sort"
	"strings"

	"repro/internal/smtpserver"
)

// Signal is one observed bot tell, with its score contribution.
type Signal struct {
	// Name is a stable identifier ("no-quit", "helo-not-ehlo", ...).
	Name string
	// Detail explains the observation.
	Detail string
	// Weight is the score contribution in [0, 1].
	Weight float64
}

// Verdict is the fingerprint of one session (or one client, when
// aggregated).
type Verdict struct {
	// Score is the bot-likelihood in [0, 1].
	Score float64
	// Signals lists the contributing observations, strongest first.
	Signals []Signal
}

// Suspicious applies the default decision threshold.
func (v Verdict) Suspicious() bool { return v.Score >= 0.5 }

// String implements fmt.Stringer.
func (v Verdict) String() string {
	names := make([]string, len(v.Signals))
	for i, s := range v.Signals {
		names[i] = s.Name
	}
	return fmt.Sprintf("score %.2f [%s]", v.Score, strings.Join(names, " "))
}

// Feature weights. They sum to > 1 deliberately; the score saturates.
const (
	weightNoQuit      = 0.30
	weightHeloNotEhlo = 0.25
	weightBadHeloName = 0.25
	weightProtoErrors = 0.20
	weightUnknownVerb = 0.20
	weightNoHelo      = 0.35
)

// Analyze fingerprints a single session trace.
func Analyze(tr *smtpserver.SessionTrace) Verdict {
	var v Verdict
	add := func(name, detail string, weight float64) {
		v.Signals = append(v.Signals, Signal{Name: name, Detail: detail, Weight: weight})
		v.Score += weight
	}

	greeted := false
	for _, verb := range tr.Verbs {
		if verb == "HELO" || verb == "EHLO" {
			greeted = true
			break
		}
	}
	switch {
	case !greeted:
		add("no-helo", "session never greeted with HELO/EHLO", weightNoHelo)
	case !tr.UsedEHLO:
		add("helo-not-ehlo", "client used legacy HELO; modern MTAs speak ESMTP", weightHeloNotEhlo)
	}

	if !tr.SentQuit && len(tr.Verbs) > 0 {
		add("no-quit", "connection dropped without QUIT", weightNoQuit)
	}
	if greeted && !PlausibleHeloName(tr.HeloName) {
		add("bad-helo-name", fmt.Sprintf("implausible HELO name %q", tr.HeloName), weightBadHeloName)
	}
	if tr.ProtocolErrors > 0 {
		add("protocol-errors", fmt.Sprintf("%d syntax/sequencing errors", tr.ProtocolErrors), weightProtoErrors)
	}
	for _, verb := range tr.Verbs {
		if verb == "?" {
			add("unknown-verbs", "unparsable command lines", weightUnknownVerb)
			break
		}
	}

	if v.Score > 1 {
		v.Score = 1
	}
	sort.SliceStable(v.Signals, func(i, j int) bool { return v.Signals[i].Weight > v.Signals[j].Weight })
	return v
}

// PlausibleHeloName reports whether a HELO argument looks like something
// a legitimate MTA would announce: a multi-label domain name or a
// bracketed address literal (RFC 5321 §4.1.3).
func PlausibleHeloName(name string) bool {
	if name == "" {
		return false
	}
	if strings.HasPrefix(name, "[") && strings.HasSuffix(name, "]") {
		return net.ParseIP(strings.Trim(name, "[]")) != nil
	}
	if net.ParseIP(name) != nil {
		return false // bare IP without brackets: non-compliant
	}
	lower := strings.ToLower(name)
	if lower == "localhost" || strings.HasSuffix(lower, ".localdomain") || lower == "localhost.localdomain" {
		return false
	}
	labels := strings.Split(lower, ".")
	if len(labels) < 2 {
		return false // single label: not an FQDN
	}
	for _, l := range labels {
		if l == "" || len(l) > 63 {
			return false
		}
		for _, c := range l {
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
				return false
			}
		}
	}
	return true
}

// Aggregate combines several sessions from the same client into one
// verdict: the mean score, with each distinct signal reported once (at
// its maximum observed weight).
func Aggregate(traces []*smtpserver.SessionTrace) Verdict {
	if len(traces) == 0 {
		return Verdict{}
	}
	best := make(map[string]Signal)
	total := 0.0
	for _, tr := range traces {
		v := Analyze(tr)
		total += v.Score
		for _, s := range v.Signals {
			if cur, ok := best[s.Name]; !ok || s.Weight > cur.Weight {
				best[s.Name] = s
			}
		}
	}
	out := Verdict{Score: total / float64(len(traces))}
	for _, s := range best {
		out.Signals = append(out.Signals, s)
	}
	sort.SliceStable(out.Signals, func(i, j int) bool {
		if out.Signals[i].Weight != out.Signals[j].Weight {
			return out.Signals[i].Weight > out.Signals[j].Weight
		}
		return out.Signals[i].Name < out.Signals[j].Name
	})
	return out
}

// Collector accumulates session traces per client IP; plug its Observe
// method into smtpserver.Hooks.OnSessionEnd.
type Collector struct {
	byClient map[string][]*smtpserver.SessionTrace
}

// NewCollector returns an empty Collector.
//
// Collector is NOT safe for concurrent use; wrap Observe with a mutex
// when the server handles parallel sessions.
func NewCollector() *Collector {
	return &Collector{byClient: make(map[string][]*smtpserver.SessionTrace)}
}

// Observe records one finished session.
func (c *Collector) Observe(tr *smtpserver.SessionTrace) {
	c.byClient[tr.ClientIP] = append(c.byClient[tr.ClientIP], tr)
}

// Clients returns the observed client IPs, sorted.
func (c *Collector) Clients() []string {
	out := make([]string, 0, len(c.byClient))
	for ip := range c.byClient {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// VerdictFor aggregates the verdict for one client.
func (c *Collector) VerdictFor(clientIP string) Verdict {
	return Aggregate(c.byClient[clientIP])
}
