package loadgen

import (
	"math"
	"math/rand"
	"time"
)

// Arrival processes and per-flow session shapes, modelled on the
// flow-level contrast Schatzmann et al. measured between ham and spam
// ("Flow-level Characteristics of Spam and Ham"): legitimate mail
// arrives as a roughly Poisson stream of complete, long-lived dialogs
// carrying real message bodies, while spam arrives in campaign bursts —
// short, aborted sessions that fire pipelined RCPT volleys, rarely
// finish a DATA transaction, and rarely bother with QUIT. The load
// generator schedules an open-loop merge of both processes so the
// server under test sees the traffic mix greylisting was designed for.

// Class labels a session as ham or spam.
type Class int

// Classes.
const (
	Ham Class = iota
	Spam
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Ham {
		return "ham"
	}
	return "spam"
}

// Shape is one session's plan: how the dialog opens, how many RCPTs it
// fires in one pipelined volley, whether it carries a payload, and how
// it ends.
type Shape struct {
	// Class is the traffic class the shape was drawn for.
	Class Class
	// Rcpts is the pipelined RCPT volley size.
	Rcpts int
	// MsgBytes is the DATA payload size; 0 means the session does not
	// attempt DATA (the RCPT-probe-and-abort pattern).
	MsgBytes int
	// End is the session boundary: RSET keeps the pooled connection
	// alive for the next session, QUIT closes it politely, Abort drops
	// it the way bots do (forcing the worker to redial).
	End End
}

// End is how a session gives up its connection.
type End int

// Session boundaries.
const (
	// EndRset leaves the connection open; the next session leads with
	// a pipelined RSET.
	EndRset End = iota
	// EndQuit sends QUIT and closes.
	EndQuit
	// EndAbort drops the connection with no farewell.
	EndAbort
)

// Event is one scheduled session: when it is meant to start (offset
// from run start — the open-loop intended time that makes latency
// accounting coordinated-omission-safe) and what shape it takes.
type Event struct {
	At    time.Duration
	Shape Shape
}

// ArrivalConfig parameterizes the merged arrival process.
type ArrivalConfig struct {
	// Rate is the total offered sessions/sec across both classes.
	Rate float64
	// HamFraction is the share of sessions that are ham (0..1).
	HamFraction float64
	// SpamBurst is the mean campaign burst length in sessions; inside
	// a burst, arrivals are 20x denser than the spam average.
	SpamBurst float64
	// Probe selects the engine-stress profile: every session is a
	// pipelined RCPT probe volley that keeps its pooled connection (no
	// DATA, no QUIT, no teardown), arriving with the same campaign
	// burst dynamics. This isolates the greylist decision path — the
	// part of the server a bot flood actually exercises — from
	// connection churn and message transfer.
	Probe bool
	// Seed makes the schedule reproducible.
	Seed int64
}

// Arrivals generates the merged, time-ordered event stream.
type Arrivals struct {
	rng      *rand.Rand
	cfg      ArrivalConfig
	hamRate  float64 // sessions/sec
	spamRate float64

	nextHam   time.Duration
	nextSpam  time.Duration
	burstLeft int // spam sessions remaining in the current campaign
	seq       uint64
}

// NewArrivals builds the process. Rate must be positive; HamFraction is
// clamped to [0,1]; SpamBurst defaults to 16.
func NewArrivals(cfg ArrivalConfig) *Arrivals {
	if cfg.HamFraction < 0 {
		cfg.HamFraction = 0
	}
	if cfg.HamFraction > 1 {
		cfg.HamFraction = 1
	}
	if cfg.SpamBurst <= 0 {
		cfg.SpamBurst = 16
	}
	if cfg.Probe {
		cfg.HamFraction = 0
	}
	a := &Arrivals{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
		hamRate:  cfg.Rate * cfg.HamFraction,
		spamRate: cfg.Rate * (1 - cfg.HamFraction),
	}
	a.nextHam = a.expGap(a.hamRate)
	a.nextSpam = a.spamGap()
	return a
}

// expGap draws an exponential inter-arrival gap for a Poisson process
// of the given rate; a zero rate pushes the stream past any horizon.
func (a *Arrivals) expGap(rate float64) time.Duration {
	if rate <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(a.rng.ExpFloat64() / rate * float64(time.Second))
}

// spamGap draws the gap to the next spam session: dense inside a
// campaign burst, sparse between campaigns. The intra-burst rate is
// 20x the average so campaigns read as spikes, while the long
// inter-campaign gap keeps the long-run average at spamRate.
func (a *Arrivals) spamGap() time.Duration {
	if a.spamRate <= 0 {
		return time.Duration(math.MaxInt64)
	}
	if a.burstLeft > 0 {
		a.burstLeft--
		return a.expGap(a.spamRate * 20)
	}
	// Start a new campaign: uniform burst length with the configured
	// mean, then an inter-campaign gap sized from the realized length
	// so each cycle (this gap + burstLeft dense arrivals, burstLeft+1
	// sessions) averages exactly (burstLeft+1)/spamRate. Sizing the gap
	// from the mean instead runs the process a few percent hot, which
	// an open-loop harness would misread as steadily growing lateness.
	a.burstLeft = 1 + a.rng.Intn(int(2*a.cfg.SpamBurst))
	mean := float64(a.burstLeft+1) - float64(a.burstLeft)/20
	return a.expGap(a.spamRate / mean)
}

// Next returns the next event in the merged stream. Events are strictly
// time-ordered; the sequence is fully determined by the seed.
func (a *Arrivals) Next() Event {
	a.seq++
	if a.nextHam <= a.nextSpam {
		at := a.nextHam
		a.nextHam += a.expGap(a.hamRate)
		return Event{At: at, Shape: a.hamShape()}
	}
	at := a.nextSpam
	a.nextSpam += a.spamGap()
	return Event{At: at, Shape: a.spamShape()}
}

// hamShape draws a legitimate session: one or two recipients, a real
// message body (1–9 KiB), and a polite QUIT on a fifth of sessions
// (flow boundaries — MTAs drain several transactions per connection,
// so most sessions end at an RSET and keep the connection).
func (a *Arrivals) hamShape() Shape {
	rcpts := 1
	if a.rng.Intn(4) == 0 {
		rcpts = 2
	}
	end := EndRset
	if a.rng.Intn(5) == 0 {
		end = EndQuit
	}
	return Shape{
		Class:    Ham,
		Rcpts:    rcpts,
		MsgBytes: 1024 + a.rng.Intn(8*1024),
		End:      end,
	}
}

// spamShape draws a campaign session: a pipelined RCPT volley (4–32),
// usually no DATA at all (greylisting defers the recipients and the bot
// moves on), a small template payload when it does send, and a dropped
// connection in place of any farewell on a third of sessions.
func (a *Arrivals) spamShape() Shape {
	s := Shape{
		Class: Spam,
		Rcpts: 4 + a.rng.Intn(29),
	}
	if a.cfg.Probe {
		return s // probe profile: volley only, connection kept
	}
	if a.rng.Intn(3) == 0 {
		s.End = EndAbort
	}
	if a.rng.Intn(5) == 0 {
		s.MsgBytes = 400 + a.rng.Intn(800)
	}
	return s
}
