package loadgen

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// LatencySummary condenses one histogram for the report.
type LatencySummary struct {
	Count  uint64     `json:"count"`
	P50ns  int64      `json:"p50_ns"`
	P99ns  int64      `json:"p99_ns"`
	P999ns int64      `json:"p999_ns"`
	MaxNs  int64      `json:"max_ns"`
	MeanNs int64      `json:"mean_ns"`
	Exempl []Exemplar `json:"exemplars,omitempty"`
}

func summarize(h *Hist, exemplars bool) LatencySummary {
	s := LatencySummary{
		Count:  h.Count(),
		P50ns:  int64(h.Quantile(0.50)),
		P99ns:  int64(h.Quantile(0.99)),
		P999ns: int64(h.Quantile(0.999)),
		MaxNs:  int64(h.Max()),
		MeanNs: int64(h.Mean()),
	}
	if exemplars {
		s.Exempl = h.Exemplars()
	}
	return s
}

// PhaseReport is one phase's throughput and memory accounting.
type PhaseReport struct {
	Name         string  `json:"name"`
	Seconds      float64 `json:"seconds"`
	Offered      uint64  `json:"offered_sessions"`
	Completed    uint64  `json:"completed_sessions"`
	Failed       uint64  `json:"failed_sessions"`
	OfferedRate  float64 `json:"offered_rate_per_sec"`
	AchievedRate float64 `json:"achieved_rate_per_sec"`
	HeapMaxBytes uint64  `json:"heap_max_bytes"`
}

// Report is the full result of a soak run, shaped for BENCH_soak.json.
type Report struct {
	Addr          string                    `json:"addr"`
	Profile       string                    `json:"profile"`
	RateTarget    float64                   `json:"rate_target_per_sec"`
	Conns         int                       `json:"conns"`
	HamFraction   float64                   `json:"ham_fraction"`
	Seed          int64                     `json:"seed"`
	SLOns         int64                     `json:"slo_ns"`
	Phases        []PhaseReport             `json:"phases"`
	Verbs         map[string]LatencySummary `json:"verb_latency"`
	Sessions      map[string]LatencySummary `json:"session_latency"`
	Verdicts      map[string]LatencySummary `json:"verdict_latency"`
	Errors        map[string]uint64         `json:"errors,omitempty"`
	Redials       uint64                    `json:"redials"`
	SLOViolations uint64                    `json:"slo_violations"`
}

func (g *Generator) buildReport(stats []*workerStats, heap *heapSampler, elapsed time.Duration) *Report {
	// Merge every worker's private histograms.
	merged := newWorkerStats()
	for _, ws := range stats {
		merged.connect.Merge(&ws.connect)
		merged.ehlo.Merge(&ws.ehlo)
		merged.rcptBatch.Merge(&ws.rcptBatch)
		merged.data.Merge(&ws.data)
		merged.dataEnd.Merge(&ws.dataEnd)
		merged.quit.Merge(&ws.quit)
		for c := range merged.session {
			merged.session[c].Merge(&ws.session[c])
		}
		for v := range merged.verdict {
			merged.verdict[v].Merge(&ws.verdict[v])
		}
		merged.redials += ws.redials
		merged.sloViolations += ws.sloViolations
		for k, n := range ws.errors {
			merged.errors[k] += n
		}
	}

	profile := "mixed"
	if g.cfg.Probe {
		profile = "probe"
	}
	r := &Report{
		Addr:        g.cfg.Addr,
		Profile:     profile,
		RateTarget:  g.cfg.Rate,
		Conns:       g.cfg.Conns,
		HamFraction: g.cfg.HamFraction,
		Seed:        g.cfg.Seed,
		SLOns:       int64(g.cfg.SLO),
		Verbs: map[string]LatencySummary{
			"connect":    summarize(&merged.connect, false),
			"ehlo":       summarize(&merged.ehlo, false),
			"rcpt-batch": summarize(&merged.rcptBatch, false),
			"data":       summarize(&merged.data, false),
			"data-end":   summarize(&merged.dataEnd, false),
			"quit":       summarize(&merged.quit, false),
		},
		Sessions: map[string]LatencySummary{
			Ham.String():  summarize(&merged.session[Ham], true),
			Spam.String(): summarize(&merged.session[Spam], true),
		},
		Verdicts: map[string]LatencySummary{
			verdictNames[verdictAccepted]: summarize(&merged.verdict[verdictAccepted], false),
			verdictNames[verdictDeferred]: summarize(&merged.verdict[verdictDeferred], false),
			verdictNames[verdictRejected]: summarize(&merged.verdict[verdictRejected], false),
		},
		Redials:       merged.redials,
		SLOViolations: merged.sloViolations,
	}
	if len(merged.errors) > 0 {
		r.Errors = merged.errors
	}

	durations := [phaseCount]time.Duration{g.cfg.Warmup, g.cfg.Measure, g.cfg.Soak}
	// The last configured phase absorbs any spill-over drain time.
	for p := 0; p < phaseCount; p++ {
		d := durations[p]
		if d == 0 {
			continue
		}
		secs := d.Seconds()
		offered := g.offered[p].Load()
		completed := g.completed[p].Load()
		r.Phases = append(r.Phases, PhaseReport{
			Name:         phaseNames[p],
			Seconds:      secs,
			Offered:      offered,
			Completed:    completed,
			Failed:       g.failed[p].Load(),
			OfferedRate:  float64(offered) / secs,
			AchievedRate: float64(completed) / secs,
			HeapMaxBytes: heap.max[p],
		})
	}
	return r
}

// WriteSummary renders a human-readable digest of the report.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "soak %s [%s]: target %.0f sessions/s over %d conns (ham %.0f%%)\n",
		r.Addr, r.Profile, r.RateTarget, r.Conns, r.HamFraction*100)
	for _, p := range r.Phases {
		fmt.Fprintf(w, "  %-8s %6.1fs offered %8d (%9.1f/s)  completed %8d (%9.1f/s)  failed %5d  heap max %6.1f MiB\n",
			p.Name, p.Seconds, p.Offered, p.OfferedRate, p.Completed, p.AchievedRate, p.Failed,
			float64(p.HeapMaxBytes)/(1<<20))
	}
	fmt.Fprintf(w, "  redials %d  slo violations %d (slo %s)\n",
		r.Redials, r.SLOViolations, time.Duration(r.SLOns))
	writeLatencyTable(w, "verb", r.Verbs)
	writeLatencyTable(w, "session", r.Sessions)
	writeLatencyTable(w, "verdict", r.Verdicts)
	for class, s := range r.Sessions {
		for _, ex := range s.Exempl {
			fmt.Fprintf(w, "  exemplar %-5s %12s  %s\n", class, ex.Latency, ex.Label)
		}
	}
}

func writeLatencyTable(w io.Writer, kind string, m map[string]LatencySummary) {
	keys := make([]string, 0, len(m))
	for k := range m {
		if m[k].Count > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := m[k]
		fmt.Fprintf(w, "  %-8s %-10s n=%-9d p50 %10s  p99 %10s  p99.9 %10s  max %10s\n",
			kind, k, s.Count,
			time.Duration(s.P50ns), time.Duration(s.P99ns), time.Duration(s.P999ns), time.Duration(s.MaxNs))
	}
}
