// Package loadgen is the wire-level soak harness: an open-loop TCP load
// generator that drives a real SMTP server (greylistd, or an in-process
// smtpserver) with the mixed ham/spam traffic greylisting was built to
// face, and measures what the server actually delivers — sustained
// sessions per second, per-verb and per-verdict latency percentiles,
// and memory flatness over a soak.
//
// Open-loop means the arrival schedule is fixed before the first byte
// is sent: every session has an intended start time drawn from the
// arrival process, and its latency is measured from that intended time,
// not from when a connection finally got around to sending it. A
// closed-loop generator (send, wait, send) silently stops offering load
// the moment the server slows down, which is exactly the coordinated
// omission that makes p99s lie. Here a lagging server keeps accruing
// intended-time lateness, so stalls show up in the percentiles instead
// of disappearing from them.
package loadgen

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/smtpclient"
)

// Phase indices.
const (
	phaseWarmup = iota
	phaseMeasure
	phaseSoak
	phaseCount
)

var phaseNames = [phaseCount]string{"warmup", "measure", "soak"}

// Config parameterizes a soak run.
type Config struct {
	// Addr is the server's "host:port".
	Addr string
	// Dialer opens connections to Addr; nil means real TCP.
	Dialer smtpclient.Dialer
	// Conns bounds the connection pool (one worker per connection);
	// 0 means 8.
	Conns int
	// Rate is the offered session rate per second; 0 means 1000.
	Rate float64
	// HamFraction is the ham share of offered sessions; default 0.25.
	HamFraction float64
	// SpamBurst is the mean spam campaign burst length; default 16.
	SpamBurst float64
	// Probe switches to the engine-stress profile: every session is a
	// pipelined RCPT probe volley over a kept connection (no DATA, no
	// QUIT), isolating the greylist decision path from connection churn
	// and message transfer. See ArrivalConfig.Probe.
	Probe bool
	// MaxRcptBatch clamps the pipelined RCPT volley so the generator
	// never exceeds the server's -rcpt-batch drain window; 0 means 16.
	MaxRcptBatch int
	// HeloName is announced at EHLO; default "loadgen.invalid".
	HeloName string
	// Warmup, Measure, Soak are the phase lengths. Warmup results are
	// discarded (connections ramping, pools filling, caches cold);
	// Measure feeds the latency report; Soak extends the run to expose
	// memory growth. Zero phases are skipped.
	Warmup, Measure, Soak time.Duration
	// SLO is the intended-to-complete session latency objective;
	// sessions over it count as violations. 0 means 50ms.
	SLO time.Duration
	// Seed fixes the arrival schedule.
	Seed int64
	// SampleEvery is the heap watermark sampling interval; 0 means
	// 100ms.
	SampleEvery time.Duration
	// Obs, when non-nil, mirrors every measured-phase sample into the
	// live observatory: per-verdict RCPT round-trips land in the
	// loadgen_verdict_* sketches and session latencies in
	// loadgen_session_*, under exactly the warmup gating the end-of-run
	// report uses — so `greyctl delay` agrees with the report within a
	// bucket's relative error by construction.
	Obs *obs.Observatory
}

func (cfg *Config) setDefaults() {
	if cfg.Dialer == nil {
		cfg.Dialer = smtpclient.NetDialer{}
	}
	if cfg.Conns == 0 {
		cfg.Conns = 8
	}
	if cfg.Rate == 0 {
		cfg.Rate = 1000
	}
	if cfg.HamFraction == 0 {
		cfg.HamFraction = 0.25
	}
	if cfg.Probe {
		cfg.HamFraction = 0 // probe profile is all RCPT-volley sessions
	}
	if cfg.MaxRcptBatch == 0 {
		cfg.MaxRcptBatch = 16
	}
	if cfg.HeloName == "" {
		cfg.HeloName = "loadgen.invalid"
	}
	if cfg.SLO == 0 {
		cfg.SLO = 50 * time.Millisecond
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 100 * time.Millisecond
	}
}

// Generator drives one soak run. Create with New, optionally Register
// metrics, then Run.
type Generator struct {
	cfg  Config
	inst atomic.Pointer[instruments]

	offered   [phaseCount]atomic.Uint64
	completed [phaseCount]atomic.Uint64
	failed    [phaseCount]atomic.Uint64
	busy      atomic.Int64
	queue     chan Event

	// Observatory mirrors of the report histograms (nil without
	// cfg.Obs). Indexed like w.ws.verdict / w.ws.session.
	obsVerdict [3]*obs.Sketch
	obsSession [2]*obs.Sketch
}

// New returns a Generator for cfg.
func New(cfg Config) *Generator {
	cfg.setDefaults()
	g := &Generator{cfg: cfg}
	if cfg.Obs != nil {
		for v, name := range verdictNames {
			g.obsVerdict[v] = cfg.Obs.Sketch("loadgen_verdict_"+name, "ns")
		}
		g.obsSession[Ham] = cfg.Obs.Sketch("loadgen_session_ham", "ns")
		g.obsSession[Spam] = cfg.Obs.Sketch("loadgen_session_spam", "ns")
	}
	return g
}

// phaseOf maps an intended offset to its phase index.
func (g *Generator) phaseOf(at time.Duration) int {
	if at < g.cfg.Warmup {
		return phaseWarmup
	}
	if at < g.cfg.Warmup+g.cfg.Measure {
		return phaseMeasure
	}
	return phaseSoak
}

// Run executes the warmup/measure/soak schedule and returns the report.
func (g *Generator) Run() (*Report, error) {
	total := g.cfg.Warmup + g.cfg.Measure + g.cfg.Soak
	if total <= 0 {
		return nil, fmt.Errorf("loadgen: no phases configured")
	}
	qcap := int(g.cfg.Rate / 2)
	if qcap < 256 {
		qcap = 256
	}
	if qcap > 1<<16 {
		qcap = 1 << 16
	}
	g.queue = make(chan Event, qcap)

	stats := make([]*workerStats, g.cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range stats {
		stats[i] = newWorkerStats()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.worker(i, start, stats[i])
		}(i)
	}

	heap := newHeapSampler(g)
	heapDone := make(chan struct{})
	go func() {
		defer close(heapDone)
		heap.run(start, total)
	}()

	g.schedule(start, total)
	close(g.queue)
	wg.Wait()
	<-heapDone
	elapsed := time.Since(start)

	return g.buildReport(stats, heap, elapsed), nil
}

// schedule is the open-loop arrival pump: it walks the pre-seeded
// arrival process and releases each event once the wall clock reaches
// its intended time. Events are released in small catch-up batches
// (the scheduler sleeps ~1ms between scans, so at 100k/s each scan
// releases ~100 sessions); their intended times — set by the arrival
// process, not by this loop — are what latency is measured against.
// A full queue blocks the pump and is counted as an overrun; the
// blocked events keep their original intended times, so the stall is
// charged to the latency distribution rather than hidden.
func (g *Generator) schedule(start time.Time, total time.Duration) {
	arr := NewArrivals(ArrivalConfig{
		Rate:        g.cfg.Rate,
		HamFraction: g.cfg.HamFraction,
		SpamBurst:   g.cfg.SpamBurst,
		Probe:       g.cfg.Probe,
		Seed:        g.cfg.Seed,
	})
	inst := g.inst.Load()
	ev := arr.Next()
	for ev.At < total {
		elapsed := time.Since(start)
		if ev.At > elapsed {
			sleep := ev.At - elapsed
			if sleep > time.Millisecond {
				sleep = time.Millisecond
			}
			time.Sleep(sleep)
			continue
		}
		if ev.Shape.Rcpts > g.cfg.MaxRcptBatch {
			ev.Shape.Rcpts = g.cfg.MaxRcptBatch
		}
		g.offered[g.phaseOf(ev.At)].Add(1)
		if inst != nil {
			inst.offered.Inc()
			select {
			case g.queue <- ev:
			default:
				inst.overruns.Inc()
				g.queue <- ev // open-loop: block, never drop
			}
			inst.queueDepth.Set(int64(len(g.queue)))
		} else {
			g.queue <- ev
		}
		ev = arr.Next()
	}
}

// workerStats is one worker's private measurement state; no locks, no
// atomics — merged by the coordinator after the run.
type workerStats struct {
	connect, ehlo, rcptBatch, data, dataEnd, quit Hist
	session                                       [2]Hist // by Class
	verdict                                       [3]Hist // accepted, deferred, rejected
	redials                                       uint64
	sloViolations                                 uint64
	errors                                        map[string]uint64
}

// Verdict indices into workerStats.verdict.
const (
	verdictAccepted = iota
	verdictDeferred
	verdictRejected
)

var verdictNames = [3]string{"accepted", "deferred", "rejected"}

func newWorkerStats() *workerStats {
	return &workerStats{errors: map[string]uint64{}}
}

// worker owns one pooled connection and executes sessions from the
// queue. The smtpclient.Client (with its buffered reader/writer and
// reply scratch) is reused across redials via Rebind, and the RCPT
// volley reuses one codes slice — a worker in steady state allocates
// only what the payload path forces.
func (g *Generator) worker(id int, start time.Time, ws *workerStats) {
	w := &sessionWorker{
		g:       g,
		id:      id,
		start:   start,
		ws:      ws,
		codes:   make([]int, 0, g.cfg.MaxRcptBatch),
		payload: buildPayload(10 << 10),
		rcpts:   make([]string, 0, g.cfg.MaxRcptBatch),
	}
	// One slow-path closure per worker: the exemplar label is only
	// rendered when a session ranks among the slowest retained.
	w.label = func() string {
		return fmt.Sprintf("%s rcpts=%d msg=%dB end=%d conn=%d seq=%d",
			w.cur.Shape.Class, w.cur.Shape.Rcpts, w.cur.Shape.MsgBytes, w.cur.Shape.End, w.id, w.curSeq)
	}
	inst := g.inst.Load()
	for ev := range g.queue {
		g.busy.Add(1)
		if inst != nil {
			inst.poolBusy.Set(g.busy.Load())
		}
		// Coalesce backlog: while the newest accepted session keeps the
		// connection and carries no payload, more queued sessions can
		// join its pipelined burst. With an empty queue (generator
		// keeping up) every burst has length 1 and the wire behaviour
		// is exactly the serial exchange; under backlog the burst
		// amortizes syscalls exactly when throughput is scarce.
		w.batch = append(w.batch[:0], ev)
		for len(w.batch) < maxBurst && coalescable(w.batch[len(w.batch)-1].Shape) {
			more, ok := tryRecv(g.queue)
			if !ok {
				break
			}
			w.batch = append(w.batch, more)
		}
		w.burst(w.batch)
		g.busy.Add(-1)
	}
	if w.connected {
		w.client.Quit()
		w.connected = false
	}
}

// maxBurst bounds how many queued sessions one pipelined burst may
// carry; 16 volleys of ≤16 RCPTs keeps both sides' reply buffers well
// inside loopback TCP windows.
const maxBurst = 16

// coalescable reports whether a session can precede another inside one
// pipelined burst: it must keep the connection (EndRset) and carry no
// payload, because the pipelined RSETs destroy every envelope but the
// final one before DATA could reference it.
func coalescable(s Shape) bool { return s.End == EndRset && s.MsgBytes == 0 }

// tryRecv is a non-blocking queue receive.
func tryRecv(q chan Event) (Event, bool) {
	select {
	case ev, ok := <-q:
		return ev, ok
	default:
		return Event{}, false
	}
}

type sessionWorker struct {
	g         *Generator
	id        int
	start     time.Time
	ws        *workerStats
	client    *smtpclient.Client
	connected bool
	needRset  bool
	batch     []Event
	counts    []int
	codes     []int
	rcpts     []string
	payload   []byte
	cur       Event
	curSeq    uint64
	seq       uint64
	label     func() string
}

// buildPayload renders a reusable CRLF-lined message template; session
// shapes slice prefixes off it.
func buildPayload(n int) []byte {
	buf := make([]byte, 0, n+80)
	buf = append(buf, "Subject: soak probe\r\n\r\n"...)
	line := "The quick brown fox jumps over the lazy dog 0123456789.\r\n"
	for len(buf) < n {
		buf = append(buf, line...)
	}
	return buf
}

// ensure makes sure the worker holds a live, greeted connection.
func (w *sessionWorker) ensure(record bool) error {
	if w.connected {
		return nil
	}
	inst := w.g.inst.Load()
	t0 := time.Now()
	conn, err := w.g.cfg.Dialer.Dial(w.g.cfg.Addr)
	if err != nil {
		w.ws.errors["dial"]++
		if inst != nil {
			inst.dialErrors.Inc()
		}
		return err
	}
	if w.client == nil {
		w.client, err = smtpclient.NewClient(conn)
	} else {
		err = w.client.Rebind(conn)
		w.ws.redials++
		if inst != nil {
			inst.redials.Inc()
		}
	}
	if err != nil {
		w.ws.errors["banner"]++
		return err
	}
	if record {
		w.ws.connect.Record(time.Since(t0))
	}
	t1 := time.Now()
	if err := w.client.Hello(w.g.cfg.HeloName); err != nil {
		w.ws.errors["ehlo"]++
		w.client.Close()
		return err
	}
	if record {
		w.ws.ehlo.Record(time.Since(t1))
	}
	w.connected = true
	w.needRset = false
	return nil
}

// burst executes one or more scheduled sessions as a single pipelined
// exchange: every envelope rides one write, the reply codes come back
// in one pass, and only the final session — the only envelope that
// survives the pipelined RSETs — may carry DATA or end the connection.
// A burst of one is byte-identical to the serial exchange.
func (w *sessionWorker) burst(events []Event) {
	g := w.g
	inst := g.inst.Load()

	// failFrom marks events[from:] failed and drops the connection.
	failFrom := func(kind string, from int) {
		for _, ev := range events[from:] {
			g.failed[g.phaseOf(ev.At)].Add(1)
		}
		w.ws.errors[kind] += uint64(len(events) - from)
		if inst != nil {
			inst.ioErrors.Add(uint64(len(events) - from))
		}
		if w.connected {
			w.client.Close()
			w.connected = false
		}
	}

	if err := w.ensure(g.phaseOf(events[0].At) != phaseWarmup); err != nil {
		for _, ev := range events {
			g.failed[g.phaseOf(ev.At)].Add(1)
		}
		return
	}

	// Queue every envelope: sender domain varies by class so
	// greylisting sees distinct triplets; recipients rotate over a
	// fixed population.
	seqBase := w.seq
	w.counts = w.counts[:0]
	total := 0
	for i, ev := range events {
		w.seq++
		from := "ham@relay.example"
		if ev.Shape.Class == Spam {
			from = "spam@burst.example"
		}
		w.rcpts = w.rcpts[:0]
		for j := 0; j < ev.Shape.Rcpts; j++ {
			w.rcpts = append(w.rcpts, rcptPool[(w.seq*7+uint64(j)*13+uint64(w.id))%uint64(len(rcptPool))])
		}
		n, err := w.client.QueueMailRcpts(from, w.rcpts, w.needRset || i > 0)
		if err != nil {
			failFrom("io", i)
			return
		}
		w.counts = append(w.counts, n)
		total += n
	}
	w.needRset = true

	t0 := time.Now()
	codes, err := w.client.FlushCodes(total, w.codes)
	w.codes = codes[:0]
	if err != nil {
		failFrom("io", 0)
		return
	}
	rtt := time.Since(t0)

	// Per-envelope verdict walk; every session in the burst shares the
	// burst's wire RTT, the same way the server's batch path stamps a
	// shared service time on pipelined RCPTs.
	accepted := 0
	off := 0
	for i, ev := range events {
		record := g.phaseOf(ev.At) != phaseWarmup
		if record {
			w.ws.rcptBatch.Record(rtt)
		}
		accepted = 0
		n := w.counts[i]
		for _, code := range codes[off+n-ev.Shape.Rcpts : off+n] {
			v := verdictRejected
			switch {
			case code/100 == 2:
				v = verdictAccepted
				accepted++
			case code/100 == 4:
				v = verdictDeferred
			}
			if record {
				w.ws.verdict[v].Record(rtt)
				if s := g.obsVerdict[v]; s != nil {
					s.Record(int64(rtt))
				}
			}
			if inst != nil {
				inst.verdicts[v].Inc()
			}
		}
		off += n
		if i < len(events)-1 {
			// Non-final sessions are complete once their replies are
			// read; only the final one still owns the envelope.
			w.finish(ev, seqBase+uint64(i)+1)
		}
	}

	last := events[len(events)-1]
	record := g.phaseOf(last.At) != phaseWarmup
	if last.Shape.MsgBytes > 0 && accepted > 0 {
		t1 := time.Now()
		if err := w.client.DataStart(); err != nil {
			if _, ok := err.(*smtpclient.Error); !ok {
				failFrom("io", len(events)-1)
				return
			}
		} else {
			if record {
				w.ws.data.Record(time.Since(t1))
			}
			body := w.payload
			if last.Shape.MsgBytes < len(body) {
				body = body[:last.Shape.MsgBytes]
			}
			t2 := time.Now()
			if err := w.client.DataEnd(body); err != nil {
				if _, ok := err.(*smtpclient.Error); !ok {
					failFrom("io", len(events)-1)
					return
				}
			} else if record {
				w.ws.dataEnd.Record(time.Since(t2))
			}
			w.needRset = false // DATA completion resets the envelope
		}
	}

	switch last.Shape.End {
	case EndQuit:
		t3 := time.Now()
		if err := w.client.Quit(); err == nil && record {
			w.ws.quit.Record(time.Since(t3))
		}
		w.connected = false
	case EndAbort:
		w.client.Close()
		w.connected = false
	}
	w.finish(last, w.seq)
}

// finish records one session's completion. Coordinated-omission-safe:
// latency is measured against the intended start from the arrival
// schedule, so queue wait and scheduler lag are charged to the session.
func (w *sessionWorker) finish(ev Event, seq uint64) {
	g := w.g
	phase := g.phaseOf(ev.At)
	lat := time.Since(w.start) - ev.At
	g.completed[phase].Add(1)
	inst := g.inst.Load()
	if inst != nil {
		inst.sessions[ev.Shape.Class].Inc()
	}
	if phase != phaseWarmup {
		w.cur, w.curSeq = ev, seq
		h := &w.ws.session[ev.Shape.Class]
		h.Record(lat)
		h.RetainExemplar(lat, w.label)
		if s := g.obsSession[ev.Shape.Class]; s != nil {
			s.Record(int64(lat))
		}
		if lat > g.cfg.SLO {
			w.ws.sloViolations++
			if inst != nil {
				inst.sloViolations.Inc()
			}
		}
	}
}

// rcptPool is the rotating recipient population.
var rcptPool = func() []string {
	out := make([]string, 64)
	for i := range out {
		out[i] = fmt.Sprintf("user%02d@victim.example", i)
	}
	return out
}()

// heapSampler records the per-phase HeapAlloc high-water mark.
type heapSampler struct {
	g   *Generator
	max [phaseCount]uint64
}

func newHeapSampler(g *Generator) *heapSampler { return &heapSampler{g: g} }

func (h *heapSampler) run(start time.Time, total time.Duration) {
	var ms runtime.MemStats
	inst := h.g.inst.Load()
	for {
		elapsed := time.Since(start)
		if elapsed >= total {
			return
		}
		runtime.ReadMemStats(&ms)
		p := h.g.phaseOf(elapsed)
		if ms.HeapAlloc > h.max[p] {
			h.max[p] = ms.HeapAlloc
		}
		if inst != nil {
			inst.heapBytes.Set(int64(ms.HeapAlloc))
		}
		time.Sleep(h.g.cfg.SampleEvery)
	}
}
