package loadgen

import "repro/internal/metrics"

// Prometheus-style instruments, following the repo convention: nil
// until Register, so an unregistered generator pays only a pointer
// load per site. The loadgen_* names are a stable exported catalogue
// (pinned by TestRegisterExportsCatalogue) — offered vs achieved rate,
// pool saturation and SLO violations are exactly the signals a soak
// dashboard needs to tell "server saturated" from "generator starved".
type instruments struct {
	offered       *metrics.Counter
	sessions      [2]*metrics.Counter // by Class
	verdicts      [3]*metrics.Counter // accepted, deferred, rejected
	dialErrors    *metrics.Counter
	ioErrors      *metrics.Counter
	redials       *metrics.Counter
	overruns      *metrics.Counter
	sloViolations *metrics.Counter
	queueDepth    *metrics.Gauge
	poolBusy      *metrics.Gauge
	heapBytes     *metrics.Gauge
}

// Register creates the loadgen_* instruments in reg and arms the
// generator's recording sites. Call before Run.
func (g *Generator) Register(reg *metrics.Registry) {
	inst := &instruments{
		offered: reg.Counter("loadgen_sessions_offered_total",
			"Sessions released by the open-loop arrival schedule."),
		dialErrors: reg.Counter("loadgen_errors_total",
			"Load generator failures by kind.", "kind", "dial"),
		ioErrors: reg.Counter("loadgen_errors_total",
			"Load generator failures by kind.", "kind", "io"),
		redials: reg.Counter("loadgen_redials_total",
			"Connections re-established after QUIT, abort or failure."),
		overruns: reg.Counter("loadgen_sched_overruns_total",
			"Times the scheduler found the session queue full (pool saturated)."),
		sloViolations: reg.Counter("loadgen_slo_violations_total",
			"Sessions whose intended-to-complete latency exceeded the SLO."),
		queueDepth: reg.Gauge("loadgen_queue_depth",
			"Sessions waiting between the arrival schedule and the pool."),
		poolBusy: reg.Gauge("loadgen_pool_busy_workers",
			"Workers currently executing a session."),
		heapBytes: reg.Gauge("loadgen_heap_bytes",
			"Last sampled process heap allocation."),
	}
	for c := Ham; c <= Spam; c++ {
		inst.sessions[c] = reg.Counter("loadgen_sessions_total",
			"Sessions completed by traffic class.", "class", c.String())
	}
	for v, name := range verdictNames {
		inst.verdicts[v] = reg.Counter("loadgen_rcpt_verdicts_total",
			"RCPT replies by verdict class.", "verdict", name)
	}
	g.inst.Store(inst)
}
