package loadgen

import (
	"time"

	"repro/internal/hdr"
)

// Hist wraps the shared log-linear HDR histogram (internal/hdr — 32
// sub-buckets per octave, ~3% worst-case quantization, exact max) with
// the load generator's exemplar retention: sampled dialog descriptors
// for the slowest observations, so a slow bucket can be tied back to a
// concrete session shape.
//
// Histograms are deliberately NOT thread-safe: each load-generator
// worker owns a private set and the coordinator merges them after the
// run, so the recording path is a couple of integer operations with no
// atomics — nothing the measurement itself can perturb.
type Hist struct {
	h hdr.Hist
	// exemplars are retained for the slowest observations seen.
	exemplars [histExemplars]Exemplar
}

// histExemplars bounds how many slow-path exemplars a histogram keeps.
const histExemplars = 4

// Exemplar ties an observed latency to the session that produced it.
type Exemplar struct {
	// Latency is the observed duration.
	Latency time.Duration `json:"latency_ns"`
	// Label describes the session (class, shape, connection, sequence).
	Label string `json:"label"`
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	h.h.Record(int64(d))
}

// RecordExemplar adds one observation carrying a dialog label; the label
// is retained if the observation ranks among the slowest seen.
func (h *Hist) RecordExemplar(d time.Duration, label string) {
	h.Record(d)
	slot := 0
	for i := range h.exemplars {
		if h.exemplars[i].Latency < h.exemplars[slot].Latency {
			slot = i
		}
	}
	if d > h.exemplars[slot].Latency {
		h.exemplars[slot] = Exemplar{Latency: d, Label: label}
	}
}

// RetainExemplar offers d as an exemplar candidate for an observation
// already recorded; label is rendered only when d actually displaces a
// weaker slot, so the hot path never pays for string formatting.
func (h *Hist) RetainExemplar(d time.Duration, label func() string) {
	slot := 0
	for i := range h.exemplars {
		if h.exemplars[i].Latency < h.exemplars[slot].Latency {
			slot = i
		}
	}
	if d > h.exemplars[slot].Latency {
		h.exemplars[slot] = Exemplar{Latency: d, Label: label()}
	}
}

// Merge folds o into h (coordinator-side, after workers stop).
func (h *Hist) Merge(o *Hist) {
	h.h.Merge(&o.h)
	for _, ex := range o.exemplars {
		if ex.Latency == 0 {
			continue
		}
		slot := 0
		for i := range h.exemplars {
			if h.exemplars[i].Latency < h.exemplars[slot].Latency {
				slot = i
			}
		}
		if ex.Latency > h.exemplars[slot].Latency {
			h.exemplars[slot] = ex
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.h.Count() }

// Max returns the exact maximum observation.
func (h *Hist) Max() time.Duration { return time.Duration(h.h.Max()) }

// Mean returns the mean observation.
func (h *Hist) Mean() time.Duration { return time.Duration(h.h.Mean()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) —
// the exclusive upper edge of the bucket holding the target rank, so
// the reported p99 is never smaller than the true p99. The exact max
// caps the answer.
func (h *Hist) Quantile(q float64) time.Duration {
	return time.Duration(h.h.Quantile(q))
}

// Exemplars returns the retained slow-path exemplars (empty slots
// omitted), slowest first.
func (h *Hist) Exemplars() []Exemplar {
	var out []Exemplar
	for _, ex := range h.exemplars {
		if ex.Latency > 0 {
			out = append(out, ex)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Latency > out[j-1].Latency; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
