package loadgen

import (
	"math/bits"
	"time"
)

// HDR-style latency histogram: log-linear buckets with 32 linear
// sub-buckets per power of two, covering 1ns up to ~9.2s of latency
// with a worst-case quantization error of 1/32 (~3%) — the same layout
// family as HdrHistogram, which is what makes high percentiles (p99.9)
// trustworthy without storing raw samples. Values above the range are
// clamped into the top bucket and tracked exactly via max.
//
// Histograms are deliberately NOT thread-safe: each load-generator
// worker owns a private set and the coordinator merges them after the
// run, so the recording path is a couple of integer operations with no
// atomics — nothing the measurement itself can perturb.

const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 linear sub-buckets per octave
	histOctaves  = 33               // up to 2^(5+32) ns ≈ 137s
	histBuckets  = histSubCount + histOctaves*histSubCount
)

// Hist is a single-writer HDR-style histogram of durations.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    int64 // total ns
	max    int64 // exact maximum ns
	// exemplars are sampled dialog descriptors for the slowest
	// observations: when an observation beats (or sits near) the
	// current maximum, its label is retained so a slow bucket can be
	// tied back to a concrete session shape.
	exemplars [histExemplars]Exemplar
}

// histExemplars bounds how many slow-path exemplars a histogram keeps.
const histExemplars = 4

// Exemplar ties an observed latency to the session that produced it.
type Exemplar struct {
	// Latency is the observed duration.
	Latency time.Duration `json:"latency_ns"`
	// Label describes the session (class, shape, connection, sequence).
	Label string `json:"label"`
}

func histIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < histSubCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // e >= histSubBits
	if e-histSubBits >= histOctaves {
		return histBuckets - 1
	}
	sub := (v >> (uint(e) - histSubBits)) & (histSubCount - 1)
	return histSubCount + (e-histSubBits)*histSubCount + int(sub)
}

// histLower returns the inclusive lower bound of bucket i in ns.
func histLower(i int) int64 {
	if i < histSubCount {
		return int64(i)
	}
	i -= histSubCount
	e := i/histSubCount + histSubBits
	sub := i % histSubCount
	return int64(1)<<uint(e) + int64(sub)<<(uint(e)-histSubBits)
}

// histUpper returns the exclusive upper bound of bucket i in ns.
func histUpper(i int) int64 {
	if i < histSubCount {
		return int64(i) + 1
	}
	j := i - histSubCount
	e := j/histSubCount + histSubBits
	return histLower(i) + int64(1)<<(uint(e)-histSubBits)
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	h.counts[histIndex(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// RecordExemplar adds one observation carrying a dialog label; the label
// is retained if the observation ranks among the slowest seen.
func (h *Hist) RecordExemplar(d time.Duration, label string) {
	h.Record(d)
	slot := 0
	for i := range h.exemplars {
		if h.exemplars[i].Latency < h.exemplars[slot].Latency {
			slot = i
		}
	}
	if d > h.exemplars[slot].Latency {
		h.exemplars[slot] = Exemplar{Latency: d, Label: label}
	}
}

// RetainExemplar offers d as an exemplar candidate for an observation
// already recorded; label is rendered only when d actually displaces a
// weaker slot, so the hot path never pays for string formatting.
func (h *Hist) RetainExemplar(d time.Duration, label func() string) {
	slot := 0
	for i := range h.exemplars {
		if h.exemplars[i].Latency < h.exemplars[slot].Latency {
			slot = i
		}
	}
	if d > h.exemplars[slot].Latency {
		h.exemplars[slot] = Exemplar{Latency: d, Label: label()}
	}
}

// Merge folds o into h (coordinator-side, after workers stop).
func (h *Hist) Merge(o *Hist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for _, ex := range o.exemplars {
		if ex.Latency == 0 {
			continue
		}
		slot := 0
		for i := range h.exemplars {
			if h.exemplars[i].Latency < h.exemplars[slot].Latency {
				slot = i
			}
		}
		if ex.Latency > h.exemplars[slot].Latency {
			h.exemplars[slot] = ex
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the exact maximum observation.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the mean observation.
func (h *Hist) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) —
// the exclusive upper edge of the bucket holding the target rank, so
// the reported p99 is never smaller than the true p99. The exact max
// caps the answer.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i == histBuckets-1 {
				// Clamp bucket: its nominal edge understates out-of-range
				// observations, so fall back to the exact maximum.
				return time.Duration(h.max)
			}
			up := histUpper(i)
			if up > h.max {
				up = h.max
			}
			return time.Duration(up)
		}
	}
	return time.Duration(h.max)
}

// Exemplars returns the retained slow-path exemplars (empty slots
// omitted), slowest first.
func (h *Hist) Exemplars() []Exemplar {
	var out []Exemplar
	for _, ex := range h.exemplars {
		if ex.Latency > 0 {
			out = append(out, ex)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Latency > out[j-1].Latency; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
