package loadgen

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hdr"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/smtpclient"
	"repro/internal/smtpproto"
	"repro/internal/smtpserver"
)

func TestHistBucketEdges(t *testing.T) {
	// Every representable value must land in a bucket whose bounds
	// contain it, and bounds must tile without gaps.
	for _, ns := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 12345, 1 << 20, 1<<37 + 12345} {
		i := hdr.Index(ns)
		if lo, up := hdr.Lower(i), hdr.Upper(i); ns < lo || ns >= up {
			t.Errorf("value %d landed in bucket %d [%d,%d)", ns, i, lo, up)
		}
	}
	for i := 0; i < hdr.Buckets-1; i++ {
		if hdr.Upper(i) != hdr.Lower(i+1) {
			t.Fatalf("bucket %d upper %d != bucket %d lower %d", i, hdr.Upper(i), i+1, hdr.Lower(i+1))
		}
	}
	// Out-of-range values clamp into the top bucket; max stays exact.
	if got := hdr.Index(1 << 50); got != hdr.Buckets-1 {
		t.Errorf("out-of-range value indexed %d, want top bucket %d", got, hdr.Buckets-1)
	}
	var h Hist
	h.Record(time.Duration(1 << 50))
	if h.Max() != time.Duration(1<<50) || h.Quantile(0.99) != time.Duration(1<<50) {
		t.Errorf("clamped value lost exactness: max %v q99 %v", h.Max(), h.Quantile(0.99))
	}
}

func TestHistMatchesSharedHDR(t *testing.T) {
	// The loadgen Hist is a thin wrapper over internal/hdr: identical
	// samples must yield identical counts and quantiles, so BENCH_soak
	// percentiles and observatory sketches stay comparable.
	rng := rand.New(rand.NewSource(11))
	var lg Hist
	var shared hdr.Hist
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * float64(3*time.Millisecond))
		lg.Record(time.Duration(v))
		shared.Record(v)
	}
	if lg.Count() != shared.Count() || int64(lg.Max()) != shared.Max() || int64(lg.Mean()) != shared.Mean() {
		t.Fatalf("wrapper diverged: count %d/%d max %d/%d mean %d/%d",
			lg.Count(), shared.Count(), lg.Max(), shared.Max(), lg.Mean(), shared.Mean())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if int64(lg.Quantile(q)) != shared.Quantile(q) {
			t.Fatalf("Quantile(%v): wrapper %d, shared %d", q, lg.Quantile(q), shared.Quantile(q))
		}
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	// Against a sorted sample, the HDR quantile must be within the
	// layout's 1/32 relative error of the exact order statistic.
	rng := rand.New(rand.NewSource(7))
	var h Hist
	samples := make([]int64, 10000)
	for i := range samples {
		v := int64(rng.ExpFloat64() * float64(2*time.Millisecond))
		samples[i] = v
		h.Record(time.Duration(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("q%.3f: histogram %d below exact %d (must upper-bound)", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+2.0/32)+2 {
			t.Errorf("q%.3f: histogram %d overshoots exact %d beyond layout error", q, got, exact)
		}
	}
	if h.Max() != time.Duration(samples[len(samples)-1]) {
		t.Errorf("max %v != exact %v", h.Max(), time.Duration(samples[len(samples)-1]))
	}
}

func TestHistMergeAndExemplars(t *testing.T) {
	var a, b Hist
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
	}
	b.RecordExemplar(5*time.Millisecond, "slow-one")
	b.RecordExemplar(9*time.Millisecond, "slowest")
	a.Merge(&b)
	if a.Count() != 102 {
		t.Fatalf("merged count %d", a.Count())
	}
	ex := a.Exemplars()
	if len(ex) < 2 || ex[0].Label != "slowest" || ex[0].Latency != 9*time.Millisecond {
		t.Fatalf("exemplars after merge: %+v", ex)
	}
	// Once every slot holds a slower observation, RetainExemplar must
	// not render labels that lose.
	for i := 0; i < histExemplars; i++ {
		a.RecordExemplar(time.Duration(i+1)*time.Second, "filler")
	}
	rendered := false
	a.RetainExemplar(time.Microsecond, func() string { rendered = true; return "never" })
	if rendered {
		t.Error("losing exemplar label was rendered")
	}
}

func TestArrivalsDeterministicAndOrdered(t *testing.T) {
	cfg := ArrivalConfig{Rate: 5000, HamFraction: 0.3, Seed: 42}
	a1, a2 := NewArrivals(cfg), NewArrivals(cfg)
	var last time.Duration
	ham, spam := 0, 0
	for i := 0; i < 5000; i++ {
		e1, e2 := a1.Next(), a2.Next()
		if e1 != e2 {
			t.Fatalf("event %d diverged: %+v vs %+v", i, e1, e2)
		}
		if e1.At < last {
			t.Fatalf("event %d out of order: %v < %v", i, e1.At, last)
		}
		last = e1.At
		if e1.Shape.Class == Ham {
			ham++
			if e1.Shape.MsgBytes == 0 {
				t.Fatal("ham session without payload")
			}
		} else {
			spam++
			if e1.Shape.Rcpts < 4 {
				t.Fatalf("spam volley too small: %d", e1.Shape.Rcpts)
			}
		}
	}
	// 30% ham with generous slack.
	if frac := float64(ham) / 5000; frac < 0.2 || frac > 0.4 {
		t.Errorf("ham fraction %.2f, want ~0.3", frac)
	}
	// The 5000 events at 5000/s must span very nearly one second: a
	// few percent of rate bias here becomes unbounded intended-time
	// lateness in a long open-loop run.
	if last < 850*time.Millisecond || last > 1150*time.Millisecond {
		t.Errorf("5000 events span %v, want ~1s", last)
	}
	_ = spam
}

// loadgenMetricNames is the stable exported catalogue; renaming any of
// these breaks dashboards, so the test pins them.
var loadgenMetricNames = []string{
	"loadgen_sessions_offered_total",
	"loadgen_sessions_total",
	"loadgen_rcpt_verdicts_total",
	"loadgen_errors_total",
	"loadgen_redials_total",
	"loadgen_sched_overruns_total",
	"loadgen_slo_violations_total",
	"loadgen_queue_depth",
	"loadgen_pool_busy_workers",
	"loadgen_heap_bytes",
}

func TestRegisterExportsCatalogue(t *testing.T) {
	g := New(Config{})
	reg := metrics.NewRegistry()
	g.Register(reg)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, name := range loadgenMetricNames {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("catalogue metric %s missing from exposition", name)
		}
	}
}

// startSoakServer runs a greylisting-flavoured smtpserver on a netsim
// network: first-seen recipients are deferred 451, retries accepted.
func startSoakServer(t *testing.T) (*netsim.Network, string) {
	t.Helper()
	n := netsim.New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[string]bool{}
	deferReply := smtpproto.NewReply(451, "4.7.1", "Greylisted, please retry")
	srv := smtpserver.New(smtpserver.Config{
		Hostname: "soak.test",
		Hooks: smtpserver.Hooks{
			OnRcptBatch: func(_, sender string, rcpts []string) []*smtpproto.Reply {
				out := make([]*smtpproto.Reply, len(rcpts))
				mu.Lock()
				for i, r := range rcpts {
					key := sender + "/" + r
					if !seen[key] {
						seen[key] = true
						out[i] = &deferReply
					}
				}
				mu.Unlock()
				return out
			},
		},
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	return n, "10.0.0.1:25"
}

// TestGeneratorSmoke drives the full open-loop pipeline against a real
// smtpserver over netsim for a fraction of a second and checks the
// report holds together: sessions complete, verdicts split between
// accepted and deferred, histograms observe, phases account.
func TestGeneratorSmoke(t *testing.T) {
	n, addr := startSoakServer(t)
	g := New(Config{
		Addr:    addr,
		Dialer:  &smtpclient.SimDialer{Net: n, LocalIP: "10.9.9.9"},
		Conns:   4,
		Rate:    2000,
		Warmup:  100 * time.Millisecond,
		Measure: 300 * time.Millisecond,
		Soak:    200 * time.Millisecond,
		Seed:    1,
	})
	reg := metrics.NewRegistry()
	g.Register(reg)
	rep, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(rep.Phases) != 3 {
		t.Fatalf("phases: %+v", rep.Phases)
	}
	var completed uint64
	for _, p := range rep.Phases {
		completed += p.Completed
		if p.Offered == 0 {
			t.Errorf("phase %s offered no sessions", p.Name)
		}
		if p.HeapMaxBytes == 0 {
			t.Errorf("phase %s has no heap watermark", p.Name)
		}
	}
	if completed < 100 {
		t.Fatalf("only %d sessions completed: %+v (errors %v)", completed, rep.Phases, rep.Errors)
	}
	if rep.Verbs["rcpt-batch"].Count == 0 {
		t.Error("rcpt-batch histogram empty")
	}
	if rep.Verdicts["accepted"].Count == 0 || rep.Verdicts["deferred"].Count == 0 {
		t.Errorf("verdict split missing: %+v", rep.Verdicts)
	}
	if rep.Sessions["ham"].Count == 0 || rep.Sessions["spam"].Count == 0 {
		t.Errorf("session classes missing: ham=%d spam=%d",
			rep.Sessions["ham"].Count, rep.Sessions["spam"].Count)
	}
	if len(rep.Sessions["spam"].Exempl) == 0 && len(rep.Sessions["ham"].Exempl) == 0 {
		t.Error("no session exemplars retained")
	}

	// The metrics mirror saw the run.
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`loadgen_sessions_total{class="ham"}`,
		`loadgen_sessions_total{class="spam"}`,
		`loadgen_rcpt_verdicts_total{verdict="deferred"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The human summary renders without blowing up.
	var sum bytes.Buffer
	rep.WriteSummary(&sum)
	if !strings.Contains(sum.String(), "rcpt-batch") {
		t.Errorf("summary missing latency table:\n%s", sum.String())
	}
}
