// Package simtime provides the time substrate for the whole reproduction:
// a Clock interface implemented by both the real wall clock and a virtual
// clock, plus a discrete-event Scheduler driving experiments in virtual time.
//
// Every component in this repository that needs time (greylisting windows,
// MTA retry queues, bot retransmission schedules, scan timestamps) takes a
// Clock, never calls time.Now directly. Experiments that took the paper's
// authors hours or days of wall-clock time (a 6-hour greylisting threshold,
// four months of mail logs) run in milliseconds under a SimClock with
// identical logic.
package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock abstracts the passage of time.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks until the clock has advanced by at least d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once it has
	// advanced by at least d. The channel has a buffer of one, so the
	// send never blocks the clock.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall Clock backed by the time package.
// The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sim is a virtual Clock. Time advances only when Advance or AdvanceTo is
// called (typically by a Scheduler). Sleep and After are honored in virtual
// time: a goroutine sleeping on a Sim blocks until another goroutine
// advances the clock past its deadline.
type Sim struct {
	mu     sync.Mutex
	now    time.Time
	timers timerHeap
	seq    uint64
}

var _ Clock = (*Sim)(nil)

// NewSim returns a virtual clock starting at start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Epoch is the default start instant used by experiments; any fixed instant
// works, this one keeps logs readable and stable across runs.
var Epoch = time.Date(2015, time.January, 1, 0, 0, 0, 0, time.UTC)

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep implements Clock. It blocks the calling goroutine until the virtual
// clock reaches now+d. A non-positive d returns immediately.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	s.mu.Lock()
	defer s.mu.Unlock()
	when := s.now.Add(d)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.seq++
	heap.Push(&s.timers, &timer{when: when, seq: s.seq, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing any timers whose deadlines
// fall within the interval, in deadline order. It panics if d is negative.
func (s *Sim) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: Advance by negative duration %v", d))
	}
	s.AdvanceTo(s.Now().Add(d))
}

// AdvanceTo moves the clock forward to t, firing any timers whose deadlines
// are at or before t, in deadline order. Moving backwards is a no-op.
func (s *Sim) AdvanceTo(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		return
	}
	for len(s.timers) > 0 && !s.timers[0].when.After(t) {
		tm := heap.Pop(&s.timers).(*timer)
		// Fire the timer at its own deadline so observers that read
		// Now() from the delivered value see a consistent instant.
		s.now = tm.when
		tm.ch <- tm.when
	}
	s.now = t
}

// PendingTimers reports how many Sleep/After waiters have not yet fired.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.timers)
}

// NextTimer returns the deadline of the earliest pending timer and true, or
// the zero time and false when no timer is pending.
func (s *Sim) NextTimer() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.timers) == 0 {
		return time.Time{}, false
	}
	return s.timers[0].when, true
}

type timer struct {
	when time.Time
	seq  uint64
	ch   chan time.Time
}

type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *timerHeap) Push(x any) { *h = append(*h, x.(*timer)) }

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
