package simtime

import (
	"testing"
	"time"
)

func TestSchedulerRunsInTimeOrder(t *testing.T) {
	c := NewSim(Epoch)
	s := NewScheduler(c)
	var order []string
	s.At(Epoch.Add(30*time.Second), "c", func() { order = append(order, "c") })
	s.At(Epoch.Add(10*time.Second), "a", func() { order = append(order, "a") })
	s.At(Epoch.Add(20*time.Second), "b", func() { order = append(order, "b") })

	if n := s.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
	if got := c.Now(); !got.Equal(Epoch.Add(30 * time.Second)) {
		t.Fatalf("clock after Run = %v, want %v", got, Epoch.Add(30*time.Second))
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	c := NewSim(Epoch)
	s := NewScheduler(c)
	at := Epoch.Add(time.Second)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(at, "tie", func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant order = %v, want FIFO", order)
		}
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	c := NewSim(Epoch)
	s := NewScheduler(c)
	var times []time.Duration
	var step func()
	step = func() {
		elapsed := c.Now().Sub(Epoch)
		times = append(times, elapsed)
		if elapsed < 5*time.Minute {
			s.After(time.Minute, "retry", step)
		}
	}
	s.After(time.Minute, "retry", step)
	s.Run()

	if len(times) != 5 {
		t.Fatalf("got %d retries, want 5: %v", len(times), times)
	}
	for i, d := range times {
		if want := time.Duration(i+1) * time.Minute; d != want {
			t.Fatalf("retry %d at %v, want %v", i, d, want)
		}
	}
}

func TestSchedulerRunUntilStopsAtDeadline(t *testing.T) {
	c := NewSim(Epoch)
	s := NewScheduler(c)
	ran := 0
	for i := 1; i <= 10; i++ {
		s.At(Epoch.Add(time.Duration(i)*time.Hour), "hourly", func() { ran++ })
	}
	deadline := Epoch.Add(3*time.Hour + 30*time.Minute)
	s.RunUntil(deadline)
	if ran != 3 {
		t.Fatalf("RunUntil executed %d events, want 3", ran)
	}
	if got := c.Now(); !got.Equal(deadline) {
		t.Fatalf("clock = %v, want advanced to deadline %v", got, deadline)
	}
	if got := s.Len(); got != 7 {
		t.Fatalf("pending events = %d, want 7", got)
	}
	// Resuming executes the rest.
	s.Run()
	if ran != 10 {
		t.Fatalf("after resume executed %d total, want 10", ran)
	}
}

func TestSchedulerRunForRelativeWindow(t *testing.T) {
	c := NewSim(Epoch)
	s := NewScheduler(c)
	ran := 0
	s.After(10*time.Minute, "late", func() { ran++ })
	s.RunFor(5 * time.Minute)
	if ran != 0 {
		t.Fatal("event outside window ran")
	}
	s.RunFor(6 * time.Minute)
	if ran != 1 {
		t.Fatal("event inside second window did not run")
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	c := NewSim(Epoch)
	s := NewScheduler(c)
	c.Advance(time.Hour)
	var at time.Time
	s.At(Epoch, "stale", func() { at = c.Now() })
	s.Run()
	if !at.Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("past event ran at %v, want clamped to %v", at, Epoch.Add(time.Hour))
	}
}

func TestSchedulerNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewScheduler(NewSim(Epoch)).At(Epoch, "nil", nil)
}

func TestSchedulerExecutedCounter(t *testing.T) {
	s := NewScheduler(NewSim(Epoch))
	for i := 0; i < 4; i++ {
		s.After(time.Duration(i)*time.Second, "n", func() {})
	}
	s.Run()
	if got := s.Executed(); got != 4 {
		t.Fatalf("Executed = %d, want 4", got)
	}
}

func TestSchedulerTimersInterleaveWithEvents(t *testing.T) {
	// A goroutine sleeping on the clock must wake when the scheduler
	// advances across its deadline, even mid-run.
	c := NewSim(Epoch)
	s := NewScheduler(c)
	woke := make(chan time.Time, 1)
	go func() {
		c.Sleep(30 * time.Second)
		woke <- c.Now()
	}()
	for c.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	s.At(Epoch.Add(time.Minute), "after-sleeper", func() {})
	s.Run()
	select {
	case w := <-woke:
		if w.Before(Epoch.Add(30 * time.Second)) {
			t.Fatalf("sleeper woke early at %v", w)
		}
	case <-time.After(time.Second):
		t.Fatal("sleeper never woke")
	}
}
