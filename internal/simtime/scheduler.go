package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Scheduler is a discrete-event executor over a Sim clock. Events are
// callbacks pinned to virtual instants; Run pops them in time order,
// advances the clock to each event's instant (firing any Sleep/After
// waiters on the way) and executes the callback synchronously.
//
// Event callbacks may schedule further events, which is how the bot and MTA
// models express retry loops: an attempt handler computes the next attempt
// time and schedules itself again.
type Scheduler struct {
	clock *Sim

	mu     sync.Mutex
	events eventHeap
	seq    uint64
	count  uint64
}

// NewScheduler returns a Scheduler driving clock.
func NewScheduler(clock *Sim) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the virtual clock the scheduler drives.
func (s *Scheduler) Clock() *Sim { return s.clock }

// At schedules fn to run at instant t. The name labels the event for
// debugging; it carries no semantics. Scheduling in the past is clamped to
// the current instant (the event runs at the next Run step).
func (s *Scheduler) At(t time.Time, name string, fn func()) {
	if fn == nil {
		panic("simtime: Scheduler.At with nil callback")
	}
	now := s.clock.Now()
	if t.Before(now) {
		t = now
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	heap.Push(&s.events, &event{when: t, seq: s.seq, name: name, fn: fn})
}

// After schedules fn to run d after the current virtual instant.
func (s *Scheduler) After(d time.Duration, name string, fn func()) {
	s.At(s.clock.Now().Add(d), name, fn)
}

// Len reports the number of pending events.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Executed reports how many events have run since the scheduler was created.
func (s *Scheduler) Executed() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Run executes events in time order until none remain, returning the number
// executed. It is the main loop of every virtual-time experiment.
func (s *Scheduler) Run() int {
	return s.RunUntil(time.Time{})
}

// RunUntil executes events in time order until none remain or until the next
// event would run after deadline. A zero deadline means no limit. The clock
// is left at the last executed event's instant (or advanced to deadline when
// one is given and reached).
func (s *Scheduler) RunUntil(deadline time.Time) int {
	n := 0
	for {
		ev := s.pop(deadline)
		if ev == nil {
			break
		}
		s.clock.AdvanceTo(ev.when)
		ev.fn()
		n++
	}
	if !deadline.IsZero() && s.clock.Now().Before(deadline) {
		s.clock.AdvanceTo(deadline)
	}
	return n
}

// RunFor is RunUntil(now + d).
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.clock.Now().Add(d))
}

func (s *Scheduler) pop(deadline time.Time) *event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) == 0 {
		return nil
	}
	if !deadline.IsZero() && s.events[0].when.After(deadline) {
		return nil
	}
	ev := heap.Pop(&s.events).(*event)
	s.count++
	return ev
}

type event struct {
	when time.Time
	seq  uint64
	name string
	fn   func()
}

func (e *event) String() string {
	return fmt.Sprintf("event(%q @ %s)", e.name, e.when.Format(time.RFC3339))
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
