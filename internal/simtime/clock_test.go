package simtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSimNowStartsAtEpoch(t *testing.T) {
	c := NewSim(Epoch)
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestSimAdvance(t *testing.T) {
	c := NewSim(Epoch)
	c.Advance(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", got, want)
	}
}

func TestSimAdvanceToBackwardsIsNoop(t *testing.T) {
	c := NewSim(Epoch)
	c.Advance(time.Hour)
	c.AdvanceTo(Epoch) // in the past
	want := Epoch.Add(time.Hour)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v (backwards AdvanceTo must not rewind)", got, want)
	}
}

func TestSimAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewSim(Epoch).Advance(-time.Second)
}

func TestSimAfterFiresInOrder(t *testing.T) {
	c := NewSim(Epoch)
	ch1 := c.After(10 * time.Second)
	ch2 := c.After(5 * time.Second)
	c.Advance(20 * time.Second)

	t1 := <-ch1
	t2 := <-ch2
	if want := Epoch.Add(10 * time.Second); !t1.Equal(want) {
		t.Errorf("timer1 fired at %v, want %v", t1, want)
	}
	if want := Epoch.Add(5 * time.Second); !t2.Equal(want) {
		t.Errorf("timer2 fired at %v, want %v", t2, want)
	}
}

func TestSimAfterNonPositiveFiresImmediately(t *testing.T) {
	c := NewSim(Epoch)
	select {
	case got := <-c.After(0):
		if !got.Equal(Epoch) {
			t.Fatalf("After(0) delivered %v, want %v", got, Epoch)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimAfterNotFiredBeforeDeadline(t *testing.T) {
	c := NewSim(Epoch)
	ch := c.After(10 * time.Second)
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before its deadline")
	default:
	}
	if got := c.PendingTimers(); got != 1 {
		t.Fatalf("PendingTimers = %d, want 1", got)
	}
}

func TestSimSleepBlocksUntilAdvance(t *testing.T) {
	c := NewSim(Epoch)
	var wg sync.WaitGroup
	done := make(chan time.Time, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Sleep(time.Minute)
		done <- c.Now()
	}()

	// Wait for the sleeper to register its timer.
	for c.PendingTimers() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(2 * time.Minute)
	wg.Wait()
	woke := <-done
	if want := Epoch.Add(2 * time.Minute); !woke.Equal(want) {
		t.Fatalf("sleeper observed %v, want %v", woke, want)
	}
}

func TestSimNextTimer(t *testing.T) {
	c := NewSim(Epoch)
	if _, ok := c.NextTimer(); ok {
		t.Fatal("NextTimer reported a pending timer on a fresh clock")
	}
	c.After(30 * time.Second)
	c.After(10 * time.Second)
	next, ok := c.NextTimer()
	if !ok {
		t.Fatal("NextTimer found no timer after two After calls")
	}
	if want := Epoch.Add(10 * time.Second); !next.Equal(want) {
		t.Fatalf("NextTimer = %v, want %v", next, want)
	}
}

func TestRealClockMonotone(t *testing.T) {
	var c Real
	a := c.Now()
	c.Sleep(time.Millisecond)
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Fatal("Real.After(0) did not fire within 1s")
	}
}

// Property: after any sequence of positive advances, Now equals the start
// plus the sum, and timers never fire early.
func TestSimAdvanceAccumulates(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewSim(Epoch)
		var total time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			c.Advance(d)
			total += d
		}
		return c.Now().Equal(Epoch.Add(total))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a timer set for duration d fires exactly at start+d regardless of
// how the advance that crosses it is chunked.
func TestSimTimerFiresAtDeadline(t *testing.T) {
	f := func(d uint16, chunks []uint8) bool {
		c := NewSim(Epoch)
		dur := time.Duration(d)*time.Millisecond + time.Millisecond
		ch := c.After(dur)
		for _, chunk := range chunks {
			c.Advance(time.Duration(chunk) * time.Millisecond)
		}
		c.Advance(dur) // guarantee we cross the deadline
		got := <-ch
		return got.Equal(Epoch.Add(dur))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
