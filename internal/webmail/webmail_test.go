package webmail

import (
	"testing"
	"time"
)

// TestTableIIIAttemptCounts pins the ATTEMPTS column of Table III.
func TestTableIIIAttemptCounts(t *testing.T) {
	want := map[string]int{
		"gmail.com":   9,
		"yahoo.co.uk": 9,
		"hotmail.com": 94,
		"qq.com":      12,
		"mail.ru":     13,
		"yandex.com":  28,
		"mail.com":    10,
		"gmx.com":     10,
		"aol.com":     5,
		"india.com":   10,
	}
	for _, p := range Top10() {
		if got := p.Attempts(); got != want[p.Name] {
			t.Errorf("%s: attempts = %d, want %d", p.Name, got, want[p.Name])
		}
	}
}

// TestTableIIISameIPColumn pins the SAME IP column.
func TestTableIIISameIPColumn(t *testing.T) {
	same := map[string]bool{
		"gmail.com": false, "yahoo.co.uk": true, "hotmail.com": true,
		"qq.com": false, "mail.ru": false, "yandex.com": true,
		"mail.com": false, "gmx.com": false, "aol.com": true, "india.com": true,
	}
	pools := map[string]int{
		"gmail.com": 7, "qq.com": 2, "mail.ru": 7, "mail.com": 2, "gmx.com": 3,
	}
	for _, p := range Top10() {
		if got := p.SameIP(); got != same[p.Name] {
			t.Errorf("%s: SameIP = %v, want %v", p.Name, got, same[p.Name])
		}
		if wantPool, ok := pools[p.Name]; ok && p.PoolSize != wantPool {
			t.Errorf("%s: pool = %d, want %d", p.Name, p.PoolSize, wantPool)
		}
	}
}

// TestTableIIIDeliveredColumn is the paper's core finding: at a 6-hour
// threshold, aol.com and qq.com lose the message ("two of them abandoned
// the task earlier"), everyone else delivers.
func TestTableIIIDeliveredColumn(t *testing.T) {
	results := SimulateAll(6 * time.Hour)
	if len(results) != 10 {
		t.Fatalf("results = %d", len(results))
	}
	failures := map[string]bool{}
	for _, r := range results {
		if !r.Delivered {
			failures[r.Provider] = true
		}
	}
	if len(failures) != 2 || !failures["aol.com"] || !failures["qq.com"] {
		t.Fatalf("failed providers = %v, want exactly {aol.com, qq.com}", failures)
	}
}

func TestDeliveryPastThreshold(t *testing.T) {
	for i, p := range Top10() {
		r := Simulate(p, i, 6*time.Hour)
		if !r.Delivered {
			continue
		}
		if r.DeliveredAt < 6*time.Hour {
			t.Errorf("%s: delivered at %v, before the 6h threshold", p.Name, r.DeliveredAt)
		}
	}
}

func TestAOLGivesUpAfterHalfHour(t *testing.T) {
	aol := AOL()
	if got := aol.GiveUpAfter(); got != 31*time.Minute+32*time.Second {
		t.Fatalf("AOL give-up = %v", got)
	}
	// At a 30-minute threshold AOL squeaks through on its last attempt…
	r := Simulate(aol, 0, 30*time.Minute)
	if !r.Delivered || r.DeliveredAt != 31*time.Minute+32*time.Second {
		t.Fatalf("AOL at 30m threshold = %+v", r)
	}
	// …and at 32 minutes it loses the message.
	if r := Simulate(aol, 0, 32*time.Minute); r.Delivered {
		t.Fatalf("AOL at 32m threshold delivered: %+v", r)
	}
}

func TestLowThresholdEveryoneDelivers(t *testing.T) {
	// At the 300 s default every provider delivers. Same-IP providers
	// deliver fast (first retry at or past 5 minutes); multi-IP
	// providers pay extra because fresh addresses restart the clock —
	// the very cost Section VI warns deployments about.
	providers := Top10()
	for i, r := range SimulateAll(300 * time.Second) {
		if !r.Delivered {
			t.Errorf("%s: not delivered at 300s", r.Provider)
			continue
		}
		if providers[i].SameIP() && r.DeliveredAt > time.Hour {
			t.Errorf("%s (same IP): delivered only after %v at a 300s threshold", r.Provider, r.DeliveredAt)
		}
	}
}

func TestMultiIPProvidersStillDeliver(t *testing.T) {
	// Table III's observation: multi-IP providers were "able to
	// eventually deliver the message because the same IP was reused in
	// different connections" — except qq.com which gave up too early.
	for i, p := range Top10() {
		if p.SameIP() || p.Name == "qq.com" {
			continue
		}
		r := Simulate(p, i, 6*time.Hour)
		if !r.Delivered {
			t.Errorf("%s (pool %d): not delivered", p.Name, p.PoolSize)
		}
		if r.UniqueIPs != p.PoolSize {
			t.Errorf("%s: unique IPs = %d, want %d", p.Name, r.UniqueIPs, p.PoolSize)
		}
	}
}

func TestMultiIPDelaysDelivery(t *testing.T) {
	// Because retries from fresh addresses restart the greylisting
	// clock, a multi-IP provider delivers later than a same-IP provider
	// with the same schedule would.
	gmail := Gmail()
	same := gmail
	same.PoolSize = 1
	multi := Simulate(gmail, 0, 2*time.Hour)
	single := Simulate(same, 0, 2*time.Hour)
	if !multi.Delivered || !single.Delivered {
		t.Fatalf("multi = %+v single = %+v", multi, single)
	}
	if multi.DeliveredAt < single.DeliveredAt {
		t.Fatalf("multi-IP delivered earlier (%v) than same-IP (%v)", multi.DeliveredAt, single.DeliveredAt)
	}
}

func TestAttemptTimesStartAtZeroAndIncrease(t *testing.T) {
	for _, p := range Top10() {
		times := p.AttemptTimes()
		if times[0] != 0 {
			t.Errorf("%s: first attempt at %v", p.Name, times[0])
		}
		for i := 1; i < len(times); i++ {
			if times[i] <= times[i-1] {
				t.Errorf("%s: attempts not increasing at %d (%v then %v)", p.Name, i, times[i-1], times[i])
			}
		}
	}
}

func TestHotmailCadence(t *testing.T) {
	h := Hotmail()
	delays := h.RetryDelays
	// After the seventh retry the cadence is exactly 4 minutes.
	for i := 7; i < len(delays); i++ {
		if got := delays[i] - delays[i-1]; got != 4*time.Minute {
			t.Fatalf("hotmail gap %d = %v, want 4m", i, got)
		}
	}
	if last := h.GiveUpAfter(); last <= 6*time.Hour {
		t.Fatalf("hotmail last attempt %v must outlast the 6h threshold", last)
	}
}

func TestYandexFinalAttemptMatchesPaper(t *testing.T) {
	y := Yandex()
	want := 369*time.Minute + 21*time.Second
	if got := y.GiveUpAfter(); got != want {
		t.Fatalf("yandex last attempt = %v, want %v", got, want)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("gmail.com")
	if err != nil || p.PoolSize != 7 {
		t.Fatalf("ByName = %+v, %v", p, err)
	}
	if _, err := ByName("hooli.xyz"); err == nil {
		t.Fatal("ByName accepted unknown provider")
	}
}

func TestIPForAttemptPoolModel(t *testing.T) {
	p := Provider{Name: "x", PoolSize: 3}
	pool := p.DefaultPool(0)
	if len(pool) != 3 {
		t.Fatalf("pool = %v", pool)
	}
	// First cycle: fresh addresses; afterwards: sticks to the first.
	if p.IPForAttempt(0, pool) != pool[0] || p.IPForAttempt(2, pool) != pool[2] {
		t.Fatal("first cycle not distinct")
	}
	if p.IPForAttempt(3, pool) != pool[0] || p.IPForAttempt(9, pool) != pool[0] {
		t.Fatal("later attempts must reuse the first address")
	}
	if p.IPForAttempt(0, nil) != "" {
		t.Fatal("empty pool should yield empty IP")
	}
}

func TestDefaultPoolsDisjointAcrossProviders(t *testing.T) {
	seen := make(map[string]string)
	for i, p := range Top10() {
		for _, ip := range p.DefaultPool(i) {
			if owner, dup := seen[ip]; dup {
				t.Fatalf("IP %s shared by %s and %s", ip, owner, p.Name)
			}
			seen[ip] = p.Name
		}
	}
}
