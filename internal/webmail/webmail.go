// Package webmail models the retry behaviour of the top-10 webmail
// providers exactly as the paper measured it in Table III: the authors
// created an account at each provider, sent a message to a server
// greylisted with an excessive 6-hour threshold, and recorded every
// delivery attempt, whether consecutive attempts came from the same IP
// address, and whether the message eventually got through.
//
// The per-provider attempt schedules below are the paper's measured
// delay columns, encoded verbatim (hotmail's "every 4 minutes" and
// yandex's "every 15:30" runs are generated from their arithmetic rule).
// Two behaviours matter for greylisting:
//
//   - Give-up time: aol.com stops after ~31 minutes and qq.com after
//     ~205, so both lose mail at a 6-hour threshold — the paper's
//     headline warning about large thresholds.
//   - IP pools: half the providers rotate among several addresses. The
//     pool model here shows each address once and then settles on the
//     first ("the same IP was reused in different connections"), which
//     reproduces the paper's observation that all multi-IP providers
//     still delivered eventually.
package webmail

import (
	"fmt"
	"time"

	"repro/internal/greylist"
	"repro/internal/simtime"
)

// Provider is one webmail service's measured sending behaviour.
type Provider struct {
	// Name is the provider's domain ("gmail.com").
	Name string
	// PoolSize is the number of distinct client IPs observed; 1 means
	// the provider always retried from the same address (Table III's
	// SAME IP column).
	PoolSize int
	// RetryDelays are the offsets of the retry attempts after the
	// initial one (Table III's DELAYS column).
	RetryDelays []time.Duration
}

// SameIP reports Table III's SAME IP column.
func (p Provider) SameIP() bool { return p.PoolSize <= 1 }

// AttemptTimes returns all attempt offsets: the initial attempt at 0
// followed by the retry delays.
func (p Provider) AttemptTimes() []time.Duration {
	out := make([]time.Duration, 0, len(p.RetryDelays)+1)
	out = append(out, 0)
	out = append(out, p.RetryDelays...)
	return out
}

// Attempts returns the total attempt count (Table III's ATTEMPTS column).
func (p Provider) Attempts() int { return len(p.RetryDelays) + 1 }

// GiveUpAfter returns the offset of the last attempt — how long the
// provider keeps trying before silently dropping the message.
func (p Provider) GiveUpAfter() time.Duration {
	if len(p.RetryDelays) == 0 {
		return 0
	}
	return p.RetryDelays[len(p.RetryDelays)-1]
}

// IPForAttempt maps an attempt index to a client IP from the provider's
// pool, given the pool's base addresses. The model: the first PoolSize
// attempts each use a fresh address (that is how the paper counted the
// pool), later attempts reuse the first.
func (p Provider) IPForAttempt(i int, pool []string) string {
	if len(pool) == 0 {
		return ""
	}
	if i < len(pool) {
		return pool[i]
	}
	return pool[0]
}

// DefaultPool synthesizes pool addresses for the provider: PoolSize
// addresses under 198.18.x.0/24 (benchmark address space), one subnet per
// provider index so different providers never share a greylisting key.
func (p Provider) DefaultPool(index int) []string {
	n := p.PoolSize
	if n < 1 {
		n = 1
	}
	pool := make([]string, n)
	for i := range pool {
		pool[i] = fmt.Sprintf("198.18.%d.%d", index+1, i+10)
	}
	return pool
}

// mmss builds a duration from Table III's "minutes:seconds" notation.
func mmss(m, s int) time.Duration {
	return time.Duration(m)*time.Minute + time.Duration(s)*time.Second
}

// Gmail returns gmail.com: 7 IPs, 9 attempts over ~7.2 hours.
func Gmail() Provider {
	return Provider{Name: "gmail.com", PoolSize: 7, RetryDelays: []time.Duration{
		mmss(6, 2), mmss(29, 2), mmss(56, 36), mmss(98, 44),
		mmss(162, 3), mmss(229, 44), mmss(309, 5), mmss(434, 46),
	}}
}

// YahooCoUK returns yahoo.co.uk: single IP, 9 attempts, roughly doubling
// intervals.
func YahooCoUK() Provider {
	return Provider{Name: "yahoo.co.uk", PoolSize: 1, RetryDelays: []time.Duration{
		mmss(2, 7), mmss(5, 39), mmss(12, 58), mmss(27, 16),
		mmss(55, 13), mmss(109, 35), mmss(216, 47), mmss(430, 36),
	}}
}

// Hotmail returns hotmail.com: single IP, 94 attempts — seven quick ones,
// then every 4 minutes past the 6-hour mark.
func Hotmail() Provider {
	delays := []time.Duration{
		mmss(1, 1), mmss(2, 3), mmss(3, 4), mmss(5, 6),
		mmss(8, 7), mmss(12, 8), mmss(16, 10),
	}
	// "... every 4 minutes ..., 362:11": 86 more attempts take the
	// count to the measured 94.
	for k := 1; k <= 86; k++ {
		delays = append(delays, mmss(16, 10)+time.Duration(k)*4*time.Minute)
	}
	return Provider{Name: "hotmail.com", PoolSize: 1, RetryDelays: delays}
}

// QQ returns qq.com: 2 IPs, 12 attempts, giving up after ~3.4 hours —
// one of the two providers that lose mail at a 6-hour threshold.
func QQ() Provider {
	return Provider{Name: "qq.com", PoolSize: 2, RetryDelays: []time.Duration{
		mmss(5, 5), mmss(5, 11), mmss(5, 17), mmss(6, 19),
		mmss(8, 22), mmss(12, 25), mmss(20, 29), mmss(52, 31),
		mmss(84, 35), mmss(144, 42), mmss(204, 56),
	}}
}

// MailRu returns mail.ru: 7 IPs, 13 attempts over ~6.2 hours.
func MailRu() Provider {
	return Provider{Name: "mail.ru", PoolSize: 7, RetryDelays: []time.Duration{
		mmss(1, 18), mmss(19, 15), mmss(49, 14), mmss(79, 49),
		mmss(113, 20), mmss(154, 18), mmss(187, 53), mmss(235, 20),
		mmss(271, 3), mmss(305, 50), mmss(340, 38), mmss(373, 45),
	}}
}

// Yandex returns yandex.com: single IP, 28 attempts — seven quick ones,
// then a fixed ~15.5-minute cadence to 369:21.
func Yandex() Provider {
	delays := []time.Duration{
		mmss(1, 5), mmss(2, 58), mmss(6, 53), mmss(14, 55),
		mmss(30, 28), mmss(45, 41), mmss(61, 1),
	}
	// "...every 15:30 minutes..., 369:21": 20 steps of 15:25 land
	// exactly on the measured final attempt.
	for k := 1; k <= 20; k++ {
		delays = append(delays, mmss(61, 1)+time.Duration(k)*mmss(15, 25))
	}
	return Provider{Name: "yandex.com", PoolSize: 1, RetryDelays: delays}
}

// MailCom returns mail.com: 2 IPs, 10 attempts over ~6.3 hours.
func MailCom() Provider {
	return Provider{Name: "mail.com", PoolSize: 2, RetryDelays: []time.Duration{
		mmss(5, 2), mmss(12, 37), mmss(23, 59), mmss(41, 3),
		mmss(66, 38), mmss(105, 1), mmss(162, 35), mmss(248, 56), mmss(378, 28),
	}}
}

// GMX returns gmx.com: 3 IPs, 10 attempts over ~6.3 hours.
func GMX() Provider {
	return Provider{Name: "gmx.com", PoolSize: 3, RetryDelays: []time.Duration{
		mmss(5, 1), mmss(12, 33), mmss(23, 50), mmss(40, 46),
		mmss(66, 9), mmss(104, 14), mmss(161, 22), mmss(247, 4), mmss(375, 36),
	}}
}

// AOL returns aol.com: single IP, 5 attempts — and then it gives up
// after only ~31 minutes, violating RFC-822's 4-5 day guidance. The
// paper calls this out as "quite surprising".
func AOL() Provider {
	return Provider{Name: "aol.com", PoolSize: 1, RetryDelays: []time.Duration{
		mmss(5, 32), mmss(11, 32), mmss(21, 32), mmss(31, 32),
	}}
}

// India returns india.com: single IP, 10 attempts on a regular cadence
// past 7 hours.
func India() Provider {
	return Provider{Name: "india.com", PoolSize: 1, RetryDelays: []time.Duration{
		mmss(6, 21), mmss(16, 21), mmss(36, 21), mmss(76, 21),
		mmss(146, 22), mmss(216, 21), mmss(286, 21), mmss(356, 21), mmss(426, 21),
	}}
}

// Top10 returns the providers in Table III's row order.
func Top10() []Provider {
	return []Provider{
		Gmail(), YahooCoUK(), Hotmail(), QQ(), MailRu(),
		Yandex(), MailCom(), GMX(), AOL(), India(),
	}
}

// ByName returns the named provider, or an error.
func ByName(name string) (Provider, error) {
	for _, p := range Top10() {
		if p.Name == name {
			return p, nil
		}
	}
	return Provider{}, fmt.Errorf("webmail: unknown provider %q", name)
}

// Result is the outcome of a simulated delivery through greylisting.
type Result struct {
	Provider string
	// SameIP mirrors Table III's column.
	SameIP bool
	// UniqueIPs is the number of distinct client addresses used.
	UniqueIPs int
	// AttemptsMade counts attempts until delivery or give-up.
	AttemptsMade int
	// Delivered reports whether the message got through.
	Delivered bool
	// DeliveredAt is the delay of the successful attempt.
	DeliveredAt time.Duration
	// AttemptTimes are the offsets of attempts actually made.
	AttemptTimes []time.Duration
}

// Simulate plays the provider's schedule against a real greylisting
// engine with the given threshold (full-IP keying, as in the paper's
// experiment), reproducing one Table III row. The pool is synthesized
// with DefaultPool(index).
func Simulate(p Provider, index int, threshold time.Duration) Result {
	clock := simtime.NewSim(simtime.Epoch)
	policy := greylist.Policy{
		Threshold:   threshold,
		RetryWindow: 14 * 24 * time.Hour,
	}
	g := greylist.New(policy, clock)
	pool := p.DefaultPool(index)

	res := Result{Provider: p.Name, SameIP: p.SameIP()}
	seen := make(map[string]bool)
	sender := "tester@" + p.Name
	recipient := "probe@dept.example"

	start := clock.Now()
	for i, at := range p.AttemptTimes() {
		clock.AdvanceTo(start.Add(at))
		ip := p.IPForAttempt(i, pool)
		if !seen[ip] {
			seen[ip] = true
		}
		res.AttemptsMade++
		res.AttemptTimes = append(res.AttemptTimes, at)
		v := g.Check(greylist.Triplet{ClientIP: ip, Sender: sender, Recipient: recipient})
		if v.Decision == greylist.Pass {
			res.Delivered = true
			res.DeliveredAt = at
			break
		}
	}
	res.UniqueIPs = len(seen)
	return res
}

// SimulateAll runs Simulate for every Table III provider at the paper's
// 6-hour threshold.
func SimulateAll(threshold time.Duration) []Result {
	providers := Top10()
	out := make([]Result, len(providers))
	for i, p := range providers {
		out[i] = Simulate(p, i, threshold)
	}
	return out
}
