// Write-ahead logging for the greylist engines.
//
// Greylisting only works because the server remembers triplets across the
// retry window; a daemon that snapshots state solely on clean shutdown
// silently re-opens the greylisting window for every in-flight benign
// retry the moment it crashes — exactly the false-delay cost the paper
// measures in Figure 5. The WAL closes that hole: every state mutation
// (new pending triplet, pass, delivery-count bump, GC drop) appends one
// compact CRC32-framed record, periodic compaction writes a checkpoint
// snapshot and truncates the log, and recovery replays checkpoint + log
// with torn-tail truncation, following the same valid-prefix discipline
// as the scan pipeline's verdict files (internal/scan/verdictio.go).
//
// # Log format
//
// A log file is a fixed 32-byte header followed by records:
//
//	header (32 B):
//	  [0:8)   magic "GLWAL001"
//	  [8:12)  format version (u32 le)
//	  [12:16) flags (u32 le; bit 0 = subnet keying)
//	  [16:24) generation (u64 le; bumped by every compaction)
//	  [24:28) CRC-32 (IEEE) of bytes [0:24)
//	  [28:32) zero padding
//	record (variable):
//	  [0]     op
//	  [1:3)   key length (u16 le)
//	  [3:3+k) key — the triplet's canonical storage key; the client
//	          component is its prefix up to the first NUL
//	  per-op payload (see walOp* constants)
//	  CRC-32 (IEEE) of everything above (u32 le)
//
// A record is durable once its CRC is on disk; recovery replays the
// longest valid prefix and truncates the rest (a torn tail from a crash
// mid-append, or garbage past it).
//
// # Checkpoints
//
// Compaction pairs the log with a checkpoint file: a 40-byte envelope
// followed by the engine's Save stream (so a checkpoint written under
// one shard count loads — resharded — under any other):
//
//	envelope (40 B):
//	  [0:8)   magic "GLCKPT01"
//	  [8:12)  format version (u32 le)
//	  [12:16) flags (u32 le; bit 0 = subnet keying)
//	  [16:24) log generation this checkpoint pairs with (u64 le)
//	  [24:32) watermark — log offset covered by the snapshot (u64 le)
//	  [32:36) CRC-32 (IEEE) of bytes [0:32)
//	  [36:40) zero padding
//
// The compaction protocol makes every crash window recoverable:
//
//  1. Quiesce: under the engine's exclusive locks the ring is drained,
//     so the log buffer holds every mutation ever made; the snapshot is
//     built at that same instant, then the locks are released.
//  2. The checkpoint (generation G, watermark W = log size at the
//     barrier) is written atomically (temp file, fsync, rename, fsync
//     of the directory).
//  3. The log is truncated and re-headed with generation G+1.
//
// A crash before 2 leaves the old checkpoint plus a complete log;
// between 2 and 3 the new checkpoint covers the log exactly through W
// (recovery skips what the snapshot already holds); after 3 the fresh
// log's generation exceeds the checkpoint's, so recovery replays all of
// it (nothing, immediately after compaction). Recovery itself always
// ends with a fresh compaction, so a daemon restart leaves a checkpoint
// plus an empty log regardless of what it found.
//
// # Ordering and the lock-free appender
//
// Producers (Check fast and slow paths, GC) enqueue records into a
// bounded MPMC ring while still holding the engine lock that covers the
// mutation, so ring order equals mutation order for everything decided
// under an exclusive lock. Concurrent read-locked fast-path touches
// commute (delivery counts add, last-used takes the newest), so their
// relative ring order is irrelevant. A single consumer goroutine drains
// the ring, frames records, writes the file and applies the fsync
// policy — the known-passed fast path pays one pointer test plus a slot
// claim and stays 0 allocs/op.
package greylist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// WAL ops. The key is the triplet's canonical storage key except for
// walOpGC, which carries no key.
const (
	// walOpPendingUpsert creates or rewrites a pending record: payload
	// firstSeen ns (i64), lastSeen ns (i64), attempts (u32). Covers
	// first-seen, too-soon retry bumps and window-expired resets.
	walOpPendingUpsert = byte(iota + 1)
	// walOpPromote moves a pending triplet to the passed table at the
	// payload time (i64 ns) and credits the client auto-whitelist.
	walOpPromote
	// walOpTouch refreshes a passed triplet (last-used := payload ns,
	// deliveries += 1) and credits the client auto-whitelist — the
	// known-passed fast path's record.
	walOpTouch
	// walOpAutoPass refreshes the auto-whitelisted client's last-used
	// time (payload ns). The key is still the full triplet key so the
	// record routes to the shard whose client table was touched.
	walOpAutoPass
	// walOpDelPassed deletes an expired passed record (no payload).
	walOpDelPassed
	// walOpDelClient deletes a stale auto-whitelist client record
	// (no payload; key is the full triplet key, client prefix applies).
	walOpDelClient
	// walOpGC re-runs the GC sweep at the payload time (i64 ns).
	walOpGC
	// walOpEarnTouch refreshes (creating if missing) the earned-
	// whitelist entry for the key's client component: last-used :=
	// payload ns (i64), deliveries += 1. The grant itself has no
	// record — replaying walOpPromote re-grants whenever the policy
	// enables the earned whitelist, mirroring the live mutation.
	walOpEarnTouch
	// walOpDelEarned deletes an expired earned-whitelist entry (no
	// payload; key is the full triplet key, client prefix applies).
	walOpDelEarned
)

const (
	walMagic         = "GLWAL001"
	walVersion       = 1
	walHeaderSize    = 32
	ckptMagic        = "GLCKPT01"
	ckptVersion      = 1
	ckptEnvelopeSize = 40

	walFlagSubnet = 1 << 0

	// walMaxKeyLen bounds the record key length field (u16). Envelope
	// addresses are bounded far below this in practice; a longer key is
	// not representable and its record is dropped rather than framed
	// wrong.
	walMaxKeyLen = 1<<16 - 1

	// walOverflowLen marks a ring slot whose key spilled past the
	// inline buffer into the overflow string.
	walOverflowLen = uint16(0xFFFF)
)

// walPayloadSize maps an op to its fixed payload size; -1 marks an
// invalid op (framing can never resynchronize past one, so the tail is
// truncated there).
func walPayloadSize(op byte) int {
	switch op {
	case walOpPendingUpsert:
		return 20
	case walOpPromote, walOpTouch, walOpAutoPass, walOpGC, walOpEarnTouch:
		return 8
	case walOpDelPassed, walOpDelClient, walOpDelEarned:
		return 0
	default:
		return -1
	}
}

// ErrWALMismatch reports a log or checkpoint written under a different
// keying configuration (subnet keying changes every stored key), so
// replaying it would corrupt the tables; the caller must start from a
// fresh state directory instead.
var ErrWALMismatch = errors.New("greylist: wal written under a different keying configuration")

// SyncPolicy selects when the WAL consumer fsyncs the log.
type SyncPolicy int

const (
	// SyncInterval fsyncs at most once per SyncEvery while the log is
	// dirty (the default): bounded data loss, negligible overhead.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every drained batch of records.
	SyncAlways
	// SyncNone never fsyncs explicitly; the OS writes back on its own
	// schedule.
	SyncNone
)

// ParseSyncPolicy maps the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("greylist: unknown wal sync policy %q (want always, interval or none)", s)
	}
}

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// WALConfig configures OpenWAL.
type WALConfig struct {
	// Path is the log file. Required.
	Path string
	// CheckpointPath is the snapshot file compaction writes and
	// recovery loads (the daemon's -state file). Required.
	CheckpointPath string
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence (default 1s).
	SyncEvery time.Duration
	// CompactBytes is how many bytes of log growth trigger checkpoint
	// compaction (default 16 MiB; < 0 disables automatic compaction).
	CompactBytes int64
	// Ring is the appender ring size in slots, rounded up to a power
	// of two (default 8192). Producers briefly yield when the ring is
	// full, so a larger ring absorbs longer checkpoint pauses.
	Ring int
	// Tracer, when non-nil, records one trace per recovery and per
	// compaction with KindCheckpoint events ("wal-recover",
	// "wal-compact", "wal-torn").
	Tracer *trace.Tracer
}

// RecoverInfo reports what OpenWAL found on disk.
type RecoverInfo struct {
	// CheckpointLoaded is true when a checkpoint snapshot was loaded.
	CheckpointLoaded bool
	// LegacySnapshot is true when the checkpoint file was a raw
	// pre-WAL Save stream (no envelope); it loads fine and the first
	// compaction rewrites it enveloped.
	LegacySnapshot bool
	// ReplayedRecords counts log records applied on top of the
	// checkpoint.
	ReplayedRecords int
	// ReplayedBytes counts the log bytes those records occupied.
	ReplayedBytes int64
	// TornBytes counts bytes discarded past the valid record prefix —
	// a partial append from the crash, or garbage.
	TornBytes int64
	// Generation is the fresh log's generation after recovery.
	Generation uint64
}

// walEngine is the contract OpenWAL needs from an engine. Greylister
// and Sharded implement it; the methods are unexported because replay
// and the checkpoint barrier reach into the state tables.
type walEngine interface {
	attachWAL(*WAL)
	applyWALBatch([]walOp)
	// walBarrier drains w under the engine's exclusive locks and
	// returns an encoder for the snapshot captured at that barrier.
	// With detach set the engine's WAL pointers are cleared inside the
	// same critical section, so no record can follow the final
	// checkpoint.
	walBarrier(w *WAL, detach bool) func(io.Writer) error
	Policy() Policy
	Load(io.Reader) error
}

// walOp is one decoded log record.
type walOp struct {
	op       byte
	key      []byte
	t1, t2   int64
	attempts uint32
}

// walSlot is one ring entry. seq follows the bounded-queue discipline:
// it equals the slot's position when free, position+1 when filled.
type walSlot struct {
	seq      atomic.Uint64
	op       byte
	keyLen   uint16
	attempts uint32
	t1, t2   int64
	key      [keyBufCap]byte
	overflow string
}

// walCtl carries a synchronous request into the consumer goroutine.
type walCtl struct {
	kind walCtlKind
	done chan error
}

type walCtlKind int

const (
	ctlFlush walCtlKind = iota + 1
	ctlSync
	ctlCompact
	ctlClose
)

// WAL is an append-only write-ahead log attached to a greylist engine
// by OpenWAL. All methods are safe for concurrent use; record appends
// come from the engine's check paths and are invisible to callers.
type WAL struct {
	cfg    WALConfig
	engine walEngine
	flags  uint32

	// ring is the lock-free appender: producers claim slots with head,
	// the consumer goroutine frees them in order with tail (atomic only
	// so the backlog gauge can read it).
	ring []walSlot
	mask uint64
	head atomic.Uint64
	tail atomic.Uint64

	wake chan struct{}
	ctl  chan walCtl
	done chan struct{}

	// Consumer-only file state.
	f       *os.File
	buf     []byte
	gen     uint64
	size    int64 // log bytes on disk including header
	dirty   bool  // bytes written since the last fsync
	lastTry int64 // log size at the last failed compaction attempt

	closed atomic.Bool
	// failed is set when the consumer dies on an I/O error; producers
	// yielding on a full ring check it so a dead disk degrades to
	// journaling off instead of wedging every Check.
	failed atomic.Bool
	errMsg atomic.Pointer[string]

	// Counters exported by Register.
	nRecords     atomic.Uint64
	nBytes       atomic.Uint64
	nFsyncs      atomic.Uint64
	nCompactions atomic.Uint64
	nCkptErrors  atomic.Uint64
	nCkptBytes   atomic.Uint64
	nReplayed    atomic.Uint64
	nTornBytes   atomic.Uint64
	logBytes     atomic.Int64
	compactInst  atomic.Pointer[metrics.Histogram]
}

// OpenWAL recovers the engine's state from the checkpoint and log at
// cfg's paths — loading the checkpoint snapshot, replaying the log's
// valid record prefix on top, truncating any torn tail — then attaches
// a fresh log to the engine and starts the appender. From that moment
// every mutation the engine makes is journaled, and a crash loses at
// most the records not yet fsynced under the configured policy.
//
// Recovery always finishes with a compaction (checkpoint written,
// empty log at a new generation), so the crash-window bookkeeping never
// compounds across restarts. A checkpoint or log written under a
// different SubnetKeying setting fails with ErrWALMismatch; a missing
// checkpoint or log is a fresh start, but any other read error (e.g.
// permissions) is returned rather than silently re-greylisting the
// world.
func OpenWAL(cfg WALConfig, e Engine) (*WAL, RecoverInfo, error) {
	var info RecoverInfo
	we, ok := e.(walEngine)
	if !ok {
		return nil, info, fmt.Errorf("greylist: engine %T does not support write-ahead logging", e)
	}
	if cfg.Path == "" || cfg.CheckpointPath == "" {
		return nil, info, errors.New("greylist: wal needs both a log path and a checkpoint path")
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = time.Second
	}
	if cfg.CompactBytes == 0 {
		cfg.CompactBytes = 16 << 20
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 8192
	}
	ringSize := 1
	for ringSize < cfg.Ring {
		ringSize <<= 1
	}

	w := &WAL{
		cfg:    cfg,
		engine: we,
		wake:   make(chan struct{}, 1),
		ctl:    make(chan walCtl),
		done:   make(chan struct{}),
		ring:   make([]walSlot, ringSize),
		mask:   uint64(ringSize - 1),
	}
	for i := range w.ring {
		w.ring[i].seq.Store(uint64(i))
	}
	if we.Policy().SubnetKeying {
		w.flags |= walFlagSubnet
	}

	start := time.Now()
	ckGen, ckWatermark, err := w.recoverCheckpoint(&info)
	if err != nil {
		return nil, info, err
	}
	logGen, err := w.recoverLog(&info, ckGen, ckWatermark)
	if err != nil {
		return nil, info, err
	}
	w.nReplayed.Store(uint64(info.ReplayedRecords))
	w.nTornBytes.Store(uint64(info.TornBytes))

	// Re-checkpoint the recovered state and start a fresh log: after
	// this point the checkpoint covers everything ever replayed and
	// the log is empty at a generation past the checkpoint's.
	w.gen = max(logGen, ckGen) + 1
	if err := w.writeCheckpoint(w.gen, walHeaderSize, func(wr io.Writer) error { return saveEngine(e, wr) }); err != nil {
		return nil, info, err
	}
	if err := w.resetLog(); err != nil {
		return nil, info, err
	}
	info.Generation = w.gen

	if tr := cfg.Tracer.StartSession(trace.Tags{Family: "greylist-wal"}, "", nil); tr != nil {
		tr.Checkpoint("wal-recover",
			fmt.Sprintf("checkpoint=%v legacy=%v replayed=%d bytes=%d gen=%d",
				info.CheckpointLoaded, info.LegacySnapshot, info.ReplayedRecords, info.ReplayedBytes, w.gen),
			info.ReplayedRecords, time.Since(start))
		if info.TornBytes > 0 {
			tr.Checkpoint("wal-torn", fmt.Sprintf("%d bytes discarded past the valid prefix", info.TornBytes),
				int(info.TornBytes), 0)
		}
		tr.Finish("recovered")
	}

	we.attachWAL(w)
	go w.run()
	return w, info, nil
}

// saveEngine writes e's snapshot stream — the exact bytes Engine.Save
// produces, so checkpoints load (and reshard) through Engine.Load.
func saveEngine(e Engine, w io.Writer) error { return e.Save(w) }

// recoverCheckpoint loads the checkpoint file into the engine and
// returns the (generation, watermark) pair it pairs with. A missing
// file is a fresh start; a raw pre-WAL snapshot (no envelope) loads as
// generation 0 so the whole log replays on top of it.
func (w *WAL) recoverCheckpoint(info *RecoverInfo) (gen, watermark uint64, err error) {
	f, err := os.Open(w.cfg.CheckpointPath)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("greylist: wal checkpoint: %w", err)
	}
	defer f.Close()

	var env [ckptEnvelopeSize]byte
	_, err = io.ReadFull(f, env[:])
	if err == io.EOF {
		return 0, 0, nil // empty file: fresh start
	}
	if err != nil && err != io.ErrUnexpectedEOF {
		return 0, 0, fmt.Errorf("greylist: wal checkpoint: %w", err)
	}
	if err == io.ErrUnexpectedEOF || string(env[0:8]) != ckptMagic {
		// A raw Save stream from a pre-WAL deployment: load it whole.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return 0, 0, fmt.Errorf("greylist: wal checkpoint: %w", err)
		}
		if err := w.engine.Load(f); err != nil {
			return 0, 0, fmt.Errorf("greylist: wal checkpoint (legacy snapshot): %w", err)
		}
		info.CheckpointLoaded = true
		info.LegacySnapshot = true
		return 0, 0, nil
	}
	if v := binary.LittleEndian.Uint32(env[8:]); v != ckptVersion {
		return 0, 0, fmt.Errorf("greylist: wal checkpoint version %d (want %d)", v, ckptVersion)
	}
	if got, want := crc32.ChecksumIEEE(env[0:32]), binary.LittleEndian.Uint32(env[32:]); got != want {
		return 0, 0, errors.New("greylist: wal checkpoint envelope checksum mismatch")
	}
	if flags := binary.LittleEndian.Uint32(env[12:]); flags != w.flags {
		return 0, 0, fmt.Errorf("%w (checkpoint flags %#x, engine %#x)", ErrWALMismatch, flags, w.flags)
	}
	if err := w.engine.Load(f); err != nil {
		return 0, 0, err
	}
	info.CheckpointLoaded = true
	return binary.LittleEndian.Uint64(env[16:]), binary.LittleEndian.Uint64(env[24:]), nil
}

// recoverLog replays the log's valid record prefix onto the engine,
// skipping what the checkpoint already covers, and returns the log's
// generation. The file is left closed; resetLog recreates it.
func (w *WAL) recoverLog(info *RecoverInfo, ckGen, ckWatermark uint64) (gen uint64, err error) {
	f, err := os.Open(w.cfg.Path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("greylist: wal: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("greylist: wal: %w", err)
	}
	size := st.Size()

	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		// Shorter than a header: nothing durable (a crash between
		// truncate and re-head). The checkpoint has everything.
		info.TornBytes += size
		return ckGen + 1, nil
	}
	if string(hdr[0:8]) != walMagic ||
		binary.LittleEndian.Uint32(hdr[8:]) != walVersion ||
		crc32.ChecksumIEEE(hdr[0:24]) != binary.LittleEndian.Uint32(hdr[24:]) {
		// Torn or foreign header: same as above, but surface a bad
		// magic on a well-formed-size file as corruption.
		info.TornBytes += size
		return ckGen + 1, nil
	}
	if flags := binary.LittleEndian.Uint32(hdr[12:]); flags != w.flags {
		return 0, fmt.Errorf("%w (log flags %#x, engine %#x)", ErrWALMismatch, flags, w.flags)
	}
	gen = binary.LittleEndian.Uint64(hdr[16:])

	// What does the checkpoint already cover?
	//   log gen >  checkpoint gen: nothing — replay the whole log.
	//   log gen == checkpoint gen: everything through the watermark.
	//   log gen <  checkpoint gen: the whole log (a crash landed
	//     between checkpoint write and log reset) — replay nothing.
	skip := int64(walHeaderSize)
	switch {
	case gen == ckGen:
		skip = min(int64(ckWatermark), size)
	case gen < ckGen:
		skip = size
	}
	if skip < walHeaderSize {
		skip = walHeaderSize
	}
	if _, err := f.Seek(skip, io.SeekStart); err != nil {
		return 0, fmt.Errorf("greylist: wal: %w", err)
	}

	replayed, good, err := w.replay(f, skip)
	if err != nil {
		return 0, err
	}
	info.ReplayedRecords += replayed
	info.ReplayedBytes += good - skip
	info.TornBytes += size - good
	return gen, nil
}

// replay decodes records from r (positioned at offset off in the file)
// and applies them to the engine in batches, stopping at the first torn
// or corrupt record. It returns the record count and the offset one
// past the last valid record.
func (w *WAL) replay(r io.Reader, off int64) (replayed int, good int64, err error) {
	const batchRecords = 1024
	var (
		scratch [3]byte
		arena   []byte
		ops     = make([]walOp, 0, batchRecords)
	)
	good = off
	flush := func() {
		if len(ops) == 0 {
			return
		}
		// Keys alias the arena, which survives until the next flush.
		w.engine.applyWALBatch(ops)
		ops = ops[:0]
		arena = arena[:0]
	}
	for {
		if _, err := io.ReadFull(r, scratch[:1]); err != nil {
			break // clean end or torn single byte
		}
		psize := walPayloadSize(scratch[0])
		if psize < 0 {
			break // invalid op: truncate here
		}
		if _, err := io.ReadFull(r, scratch[1:3]); err != nil {
			break
		}
		keyLen := int(binary.LittleEndian.Uint16(scratch[1:]))
		recLen := 3 + keyLen + psize + 4
		mark := len(arena)
		arena = append(arena, scratch[:3]...)
		arena = append(arena, make([]byte, keyLen+psize+4)...)
		if _, err := io.ReadFull(r, arena[mark+3:mark+recLen]); err != nil {
			break
		}
		rec := arena[mark : mark+recLen]
		if crc32.ChecksumIEEE(rec[:recLen-4]) != binary.LittleEndian.Uint32(rec[recLen-4:]) {
			break
		}
		op := walOp{op: rec[0], key: rec[3 : 3+keyLen]}
		payload := rec[3+keyLen : 3+keyLen+psize]
		switch op.op {
		case walOpPendingUpsert:
			op.t1 = int64(binary.LittleEndian.Uint64(payload[0:]))
			op.t2 = int64(binary.LittleEndian.Uint64(payload[8:]))
			op.attempts = binary.LittleEndian.Uint32(payload[16:])
		case walOpPromote, walOpTouch, walOpAutoPass, walOpGC, walOpEarnTouch:
			op.t1 = int64(binary.LittleEndian.Uint64(payload[0:]))
		}
		ops = append(ops, op)
		replayed++
		good += int64(recLen)
		if len(ops) >= batchRecords {
			flush()
		}
	}
	flush()
	return replayed, good, nil
}

// resetLog truncates the log file (creating it if needed) and writes a
// fresh header at the current generation, durably.
func (w *WAL) resetLog() error {
	if w.f == nil {
		f, err := os.OpenFile(w.cfg.Path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return fmt.Errorf("greylist: wal: %w", err)
		}
		w.f = f
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("greylist: wal: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[0:8], walMagic)
	binary.LittleEndian.PutUint32(hdr[8:], walVersion)
	binary.LittleEndian.PutUint32(hdr[12:], w.flags)
	binary.LittleEndian.PutUint64(hdr[16:], w.gen)
	binary.LittleEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(hdr[0:24]))
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("greylist: wal: %w", err)
	}
	// Subsequent appends go through Write: park the offset just past
	// the header (WriteAt does not move it).
	if _, err := w.f.Seek(walHeaderSize, io.SeekStart); err != nil {
		return fmt.Errorf("greylist: wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("greylist: wal: %w", err)
	}
	w.size = walHeaderSize
	w.logBytes.Store(w.size)
	w.dirty = false
	w.lastTry = 0
	return nil
}

// writeCheckpoint writes the envelope plus body atomically to the
// checkpoint path (temp file, fsync, rename, fsync of the directory).
func (w *WAL) writeCheckpoint(gen, watermark uint64, body func(io.Writer) error) error {
	var written countingWriter
	err := atomicSave(w.cfg.CheckpointPath, func(wr io.Writer) error {
		var env [ckptEnvelopeSize]byte
		copy(env[0:8], ckptMagic)
		binary.LittleEndian.PutUint32(env[8:], ckptVersion)
		binary.LittleEndian.PutUint32(env[12:], w.flags)
		binary.LittleEndian.PutUint64(env[16:], gen)
		binary.LittleEndian.PutUint64(env[24:], watermark)
		binary.LittleEndian.PutUint32(env[32:], crc32.ChecksumIEEE(env[0:32]))
		written.w = wr
		if _, err := written.Write(env[:]); err != nil {
			return err
		}
		return body(&written)
	})
	if err != nil {
		return err
	}
	w.nCkptBytes.Add(uint64(written.n))
	return nil
}

// countingWriter counts bytes for the wal_checkpoint_bytes_total
// counter.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// append enqueues one record. Producers hold the engine lock covering
// the mutation (read or write), which is what makes ring order match
// mutation order; see the package comment. It never allocates for keys
// that fit the engines' stack buffers, keeping the known-passed fast
// path at 0 allocs/op with the WAL attached.
func (w *WAL) append(op byte, key []byte, t1, t2 int64, attempts uint32) {
	if len(key) > walMaxKeyLen {
		return // unrepresentable; arbitrarily long keys are not journaled
	}
	pos := w.head.Add(1) - 1
	slot := &w.ring[pos&w.mask]
	for slot.seq.Load() != pos {
		// Ring full (or the producer that claimed this slot a lap ago
		// hasn't been consumed yet): yield until the consumer frees it.
		// If the consumer died on an I/O error the slot never frees;
		// drop the record so a dead disk degrades to journaling off
		// instead of wedging every Check.
		if w.failed.Load() {
			return
		}
		runtime.Gosched()
	}
	slot.op = op
	slot.t1, slot.t2, slot.attempts = t1, t2, attempts
	if len(key) <= keyBufCap {
		slot.keyLen = uint16(len(key))
		copy(slot.key[:], key)
	} else {
		slot.keyLen = walOverflowLen
		slot.overflow = string(key)
	}
	slot.seq.Store(pos + 1)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// drainRing moves every filled ring slot into the consumer's frame
// buffer. Consumer-goroutine only (also called from inside the
// engine's checkpoint barrier, which runs on the consumer goroutine).
func (w *WAL) drainRing() {
	for {
		t := w.tail.Load()
		slot := &w.ring[t&w.mask]
		if slot.seq.Load() != t+1 {
			return
		}
		var key []byte
		if slot.keyLen == walOverflowLen {
			key = []byte(slot.overflow)
		} else {
			key = slot.key[:slot.keyLen]
		}
		w.frame(slot.op, key, slot.t1, slot.t2, slot.attempts)
		slot.overflow = ""
		slot.seq.Store(t + w.mask + 1)
		w.tail.Store(t + 1)
	}
}

// frame appends one encoded record to the write buffer.
func (w *WAL) frame(op byte, key []byte, t1, t2 int64, attempts uint32) {
	start := len(w.buf)
	w.buf = append(w.buf, op, byte(len(key)), byte(len(key)>>8))
	w.buf = append(w.buf, key...)
	switch op {
	case walOpPendingUpsert:
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(t1))
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(t2))
		w.buf = binary.LittleEndian.AppendUint32(w.buf, attempts)
	case walOpPromote, walOpTouch, walOpAutoPass, walOpGC, walOpEarnTouch:
		w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(t1))
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(w.buf[start:]))
	w.nRecords.Add(1)
}

// writeBuf flushes the frame buffer to the file.
func (w *WAL) writeBuf() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	w.logBytes.Store(w.size)
	w.nBytes.Add(uint64(n))
	w.buf = w.buf[:0]
	if n > 0 {
		w.dirty = true
	}
	if err != nil {
		return fmt.Errorf("greylist: wal: %w", err)
	}
	return nil
}

// syncNow fsyncs the log if dirty.
func (w *WAL) syncNow() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("greylist: wal: %w", err)
	}
	w.dirty = false
	w.nFsyncs.Add(1)
	return nil
}

// run is the consumer goroutine: drain, write, fsync per policy,
// compact past the threshold, serve control requests. An I/O failure
// is fatal — producers would otherwise journal into the void — so the
// consumer detaches the engine, marks itself failed (unblocking any
// producer waiting on a full ring) and exits; the daemon sees the
// error through the wal_checkpoint_errors counter and Close.
func (w *WAL) run() {
	defer close(w.done)
	fatal := func(err error) {
		msg := err.Error()
		w.errMsg.Store(&msg)
		w.failed.Store(true)
		if w.engine != nil {
			w.engine.walBarrier(w, true) // detach; the drain lands in the dead buffer
		}
		w.f.Close()
	}
	var tick <-chan time.Time
	if w.cfg.Sync == SyncInterval {
		ticker := time.NewTicker(w.cfg.SyncEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	step := func() error {
		w.drainRing()
		if err := w.writeBuf(); err != nil {
			return err
		}
		if w.cfg.Sync == SyncAlways {
			if err := w.syncNow(); err != nil {
				return err
			}
		}
		w.maybeCompact()
		return nil
	}
	for {
		select {
		case <-w.wake:
			if err := step(); err != nil {
				fatal(err)
				return
			}
		case <-tick:
			if err := step(); err != nil {
				fatal(err)
				return
			}
			if err := w.syncNow(); err != nil {
				fatal(err)
				return
			}
		case req := <-w.ctl:
			w.drainRing()
			err := w.writeBuf()
			switch req.kind {
			case ctlFlush:
				// drained and written above
			case ctlSync:
				if err == nil {
					err = w.syncNow()
				}
			case ctlCompact:
				if err == nil {
					err = w.compact(false)
				}
			case ctlClose:
				if err == nil {
					err = w.compact(true)
				}
				if err == nil {
					err = w.syncNow()
				}
				if cerr := w.f.Close(); err == nil && cerr != nil {
					err = fmt.Errorf("greylist: wal: %w", cerr)
				}
				w.failed.Store(true) // unblock producers racing the detach
				req.done <- err
				return
			}
			req.done <- err
		}
	}
}

// maybeCompact compacts when the log has outgrown the threshold. A
// failed checkpoint write leaves the log intact (nothing is lost) and
// retries only after another threshold's worth of growth, so a full
// disk does not turn into a hot loop.
func (w *WAL) maybeCompact() {
	if w.cfg.CompactBytes < 0 || w.engine == nil {
		return
	}
	if w.size-walHeaderSize < w.cfg.CompactBytes {
		return
	}
	if w.lastTry != 0 && w.size < w.lastTry+w.cfg.CompactBytes {
		return
	}
	if err := w.compact(false); err != nil {
		w.lastTry = w.size
	}
}

// compact runs the checkpoint protocol described in the package
// comment: barrier (drain under engine locks + snapshot), checkpoint
// write, log truncation. With detach the engine stops journaling at
// the barrier — the Close path.
func (w *WAL) compact(detach bool) error {
	start := time.Now()
	save := w.engine.walBarrier(w, detach)
	// The barrier drained the ring under the engine's locks: the frame
	// buffer + file now hold every mutation the snapshot contains.
	if err := w.writeBuf(); err != nil {
		w.nCkptErrors.Add(1)
		return err
	}
	watermark := w.size
	if err := w.writeCheckpoint(w.gen, uint64(watermark), save); err != nil {
		w.nCkptErrors.Add(1)
		return err
	}
	w.gen++
	if err := w.resetLog(); err != nil {
		w.nCkptErrors.Add(1)
		return err
	}
	w.nCompactions.Add(1)
	if h := w.compactInst.Load(); h != nil {
		h.ObserveDuration(time.Since(start))
	}
	if tr := w.cfg.Tracer.StartSession(trace.Tags{Family: "greylist-wal"}, "", nil); tr != nil {
		tr.Checkpoint("wal-compact",
			fmt.Sprintf("log %d bytes -> checkpoint, gen %d", watermark-walHeaderSize, w.gen),
			int(watermark-walHeaderSize), time.Since(start))
		tr.Finish("compacted")
	}
	return nil
}

// lockWithDrain acquires an exclusive engine lock from the consumer
// goroutine while keeping the ring draining, so a producer yielding on
// a full ring inside a read lock can always finish and release it —
// the lock-ordering partner of append's Gosched loop.
func (w *WAL) lockWithDrain(lock func() bool) {
	for !lock() {
		w.drainRing()
		runtime.Gosched()
	}
}

// request sends a control request to the consumer and waits.
func (w *WAL) request(kind walCtlKind) error {
	if w.closed.Load() && kind != ctlClose {
		return errors.New("greylist: wal is closed")
	}
	req := walCtl{kind: kind, done: make(chan error, 1)}
	select {
	case w.ctl <- req:
		return <-req.done
	case <-w.done:
		if msg := w.errMsg.Load(); msg != nil {
			return fmt.Errorf("greylist: wal consumer died: %s", *msg)
		}
		return errors.New("greylist: wal consumer has exited")
	}
}

// Flush drains the ring and writes buffered records to the OS.
func (w *WAL) Flush() error { return w.request(ctlFlush) }

// Sync drains, writes and fsyncs: on return every record appended
// before the call is durable.
func (w *WAL) Sync() error { return w.request(ctlSync) }

// Compact forces a checkpoint compaction regardless of log size.
func (w *WAL) Compact() error { return w.request(ctlCompact) }

// Close checkpoints the engine one last time (so a clean shutdown
// leaves a snapshot plus an empty log), detaches it, and closes the
// log file. The engine remains usable; it just stops journaling.
func (w *WAL) Close() error {
	if w.closed.Swap(true) {
		<-w.done
		return nil
	}
	return w.request(ctlClose)
}

// Generation reports the live log generation (for tests and
// diagnostics).
func (w *WAL) Generation() uint64 { return w.gen }

// WALCounts is a snapshot of the WAL's cumulative op counters — the
// observatory polls these at window rotation to derive per-window
// deltas.
type WALCounts struct {
	Records     uint64
	Bytes       uint64
	Fsyncs      uint64
	Compactions uint64
}

// Counts snapshots the cumulative WAL op counters.
func (w *WAL) Counts() WALCounts {
	return WALCounts{
		Records:     w.nRecords.Load(),
		Bytes:       w.nBytes.Load(),
		Fsyncs:      w.nFsyncs.Load(),
		Compactions: w.nCompactions.Load(),
	}
}

// Healthy reports whether the WAL consumer is still journaling: nil
// while the consumer is alive, an error after Close or after the
// consumer died on an I/O error (the engine keeps serving with
// journaling degraded to off — exactly the state a readiness probe
// should surface). It backs the /healthz wal probe.
func (w *WAL) Healthy() error {
	if w.failed.Load() {
		msg := "i/o error"
		if p := w.errMsg.Load(); p != nil {
			msg = *p
		}
		return fmt.Errorf("wal consumer died: %s", msg)
	}
	if w.closed.Load() {
		return fmt.Errorf("wal closed")
	}
	return nil
}

// Register exports the WAL's counters and gauges into reg under the
// wal_* namespace, mirroring the appender's own atomics.
func (w *WAL) Register(reg *metrics.Registry) {
	reg.CounterFunc("wal_records_total",
		"State-mutation records appended to the write-ahead log.",
		w.nRecords.Load)
	reg.CounterFunc("wal_bytes_total",
		"Record bytes written to the write-ahead log.",
		w.nBytes.Load)
	reg.CounterFunc("wal_fsyncs_total",
		"fsync calls issued by the WAL consumer.",
		w.nFsyncs.Load)
	reg.CounterFunc("wal_compactions_total",
		"Checkpoint compactions (snapshot written, log truncated).",
		w.nCompactions.Load)
	reg.CounterFunc("wal_checkpoint_errors_total",
		"Failed checkpoint compactions (log kept; retried after more growth).",
		w.nCkptErrors.Load)
	reg.CounterFunc("wal_checkpoint_bytes_total",
		"Bytes written to checkpoint snapshots.",
		w.nCkptBytes.Load)
	reg.CounterFunc("wal_replayed_records_total",
		"Records replayed from the log during crash recovery.",
		w.nReplayed.Load)
	reg.CounterFunc("wal_torn_bytes_total",
		"Bytes discarded past the valid record prefix during recovery.",
		w.nTornBytes.Load)
	reg.GaugeFunc("wal_log_bytes",
		"Current size of the write-ahead log including its header.",
		func() float64 { return float64(w.logBytes.Load()) })
	reg.GaugeFunc("wal_ring_backlog",
		"Records enqueued but not yet framed by the consumer.",
		func() float64 { return float64(w.head.Load() - w.tail.Load()) })
	w.compactInst.Store(reg.Histogram("wal_compact_seconds",
		"Wall-clock duration of checkpoint compactions.", nil))
}
