package greylist

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/simtime"
)

// Sharded partitions greylisting state across N independent Greylisters
// by triplet hash, eliminating lock contention on busy servers. All
// shards share one policy and one static whitelist.
//
// Semantics are identical to a single Greylister for everything keyed by
// the triplet. The client auto-whitelist is the one intentional
// difference: deliveries from one client land in the shard of their full
// triplet, so a client's count accumulates per shard rather than
// globally, making the auto-whitelist slightly slower to trigger. The
// trade-off is measured in BenchmarkGreylistCheckParallel vs the sharded
// variant.
type Sharded struct {
	shards    []*Greylister
	whitelist *Whitelist
}

// NewSharded returns a Sharded engine with n shards (n < 1 is treated as
// 1). A nil clock means real time.
func NewSharded(n int, policy Policy, clock simtime.Clock) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{whitelist: NewWhitelist()}
	for i := 0; i < n; i++ {
		g := New(policy, clock)
		g.whitelist = s.whitelist // shared static whitelist
		s.shards = append(s.shards, g)
	}
	return s
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Whitelist returns the shared static whitelist.
func (s *Sharded) Whitelist() *Whitelist { return s.whitelist }

// Policy returns the shared policy.
func (s *Sharded) Policy() Policy { return s.shards[0].policy }

// shardIndex picks the shard by FNV-1a over the canonical key bytes,
// built in a stack buffer — no hasher object, no intermediate string.
// The hash equals hash/fnv over t.key(...), so shard assignment (and
// therefore on-disk sharded snapshots) is unchanged from the string-based
// implementation.
func (s *Sharded) shardIndex(t Triplet) int {
	var ckBuf, kBuf [keyBufCap]byte
	clientKey := appendClientKey(ckBuf[:0], t.ClientIP, s.shards[0].policy.SubnetKeying)
	key := t.appendKey(kBuf[:0], clientKey)
	return int(fnv1a(key) % uint32(len(s.shards)))
}

// Check runs the greylisting decision on the triplet's shard.
func (s *Sharded) Check(t Triplet) Verdict {
	return s.shards[s.shardIndex(t)].Check(t)
}

// CheckBatch decides a run of attempts, grouping them by shard so each
// shard's locks are taken once per batch instead of once per triplet.
// Verdicts are positionally matched to ts; semantics are identical to
// calling Check on each triplet in order. The result reuses out when it
// has sufficient capacity.
func (s *Sharded) CheckBatch(ts []Triplet, out []Verdict) []Verdict {
	out = verdictSlice(out, len(ts))
	if len(ts) == 0 {
		return out
	}
	if len(ts) == 1 {
		out[0] = s.Check(ts[0])
		return out
	}

	// Group positions by shard. A batch is a pipelined burst from one
	// client — small — so two stack-friendly slices beat a map.
	idx := make([]int, len(ts))
	for i, t := range ts {
		idx[i] = s.shardIndex(t)
	}
	var (
		group []Triplet
		pos   []int
		sub   []Verdict
	)
	for sh := range s.shards {
		group, pos = group[:0], pos[:0]
		for i, want := range idx {
			if want == sh {
				group = append(group, ts[i])
				pos = append(pos, i)
			}
		}
		if len(group) == 0 {
			continue
		}
		sub = s.shards[sh].CheckBatch(group, sub)
		for j, i := range pos {
			out[i] = sub[j]
		}
	}
	return out
}

// GC collects every shard, returning the total dropped.
func (s *Sharded) GC() int {
	total := 0
	for _, g := range s.shards {
		total += g.GC()
	}
	return total
}

// Stats aggregates the counters across shards.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, g := range s.shards {
		st := g.Stats()
		total.Checks += st.Checks
		total.DeferredNew += st.DeferredNew
		total.DeferredEarly += st.DeferredEarly
		total.DeferredExpired += st.DeferredExpired
		total.PassedRetry += st.PassedRetry
		total.PassedKnown += st.PassedKnown
		total.PassedWhitelist += st.PassedWhitelist
		total.PassedAutoClient += st.PassedAutoClient
		total.TripletsRecorded += st.TripletsRecorded
		total.TripletsWhitelist += st.TripletsWhitelist
	}
	return total
}

// PendingCount sums the pending-triplet tables.
func (s *Sharded) PendingCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.PendingCount()
	}
	return n
}

// PassedCount sums the passed-triplet tables.
func (s *Sharded) PassedCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.PassedCount()
	}
	return n
}

// Save serializes every shard (shard count first).
func (s *Sharded) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "shards %d\n", len(s.shards)); err != nil {
		return fmt.Errorf("greylist: save sharded: %w", err)
	}
	for _, g := range s.shards {
		if err := g.Save(w); err != nil {
			return err
		}
	}
	return nil
}

// Load restores state written by Save. The shard count must match.
func (s *Sharded) Load(r io.Reader) error {
	// Buffer exactly once: gob.NewDecoder wraps non-ByteReader streams
	// in its own bufio.Reader, which over-reads past the end of one
	// shard's stream and corrupts the next. A shared bufio.Reader (a
	// ByteReader) keeps every decoder byte-exact.
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscanf(br, "shards %d\n", &n); err != nil {
		return fmt.Errorf("greylist: load sharded: %w", err)
	}
	if n != len(s.shards) {
		return fmt.Errorf("greylist: load sharded: snapshot has %d shards, engine has %d", n, len(s.shards))
	}
	for _, g := range s.shards {
		if err := g.Load(br); err != nil {
			return err
		}
	}
	return nil
}

// Checker is the interface shared by Greylister and Sharded; servers and
// experiments accept either.
type Checker interface {
	Check(Triplet) Verdict
	GC() int
	Whitelist() *Whitelist
}

var (
	_ Checker = (*Greylister)(nil)
	_ Checker = (*Sharded)(nil)
)

// BatchChecker is implemented by engines that can amortize locking over a
// run of attempts (a pipelined RCPT burst, a drained policy-request
// queue). Both Greylister and Sharded implement it; callers holding only
// a Checker can type-assert and fall back to per-triplet Check.
type BatchChecker interface {
	Checker
	// CheckBatch decides every triplet in ts, writing verdicts
	// positionally. It reuses out when cap(out) >= len(ts) and returns
	// the verdict slice. Semantics match calling Check on each triplet
	// in order.
	CheckBatch(ts []Triplet, out []Verdict) []Verdict
}

var (
	_ BatchChecker = (*Greylister)(nil)
	_ BatchChecker = (*Sharded)(nil)
)

// Engine is the full surface shared by Greylister and Sharded; servers
// that want to accept either (e.g. core.Domain with configurable
// sharding) program against it.
type Engine interface {
	BatchChecker
	Policy() Policy
	Stats() Stats
	PendingCount() int
	PassedCount() int
	Save(io.Writer) error
	Load(io.Reader) error
}

var (
	_ Engine = (*Greylister)(nil)
	_ Engine = (*Sharded)(nil)
)
