package greylist

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/simtime"
)

// Sharded partitions greylisting state across N independent Greylisters
// by triplet hash, eliminating lock contention on busy servers. All
// shards share one policy and one static whitelist.
//
// Semantics are identical to a single Greylister for everything keyed by
// the triplet. The client auto-whitelist is the one intentional
// difference: deliveries from one client land in the shard of their full
// triplet, so a client's count accumulates per shard rather than
// globally, making the auto-whitelist slightly slower to trigger. The
// trade-off is measured in BenchmarkGreylistCheckParallel vs the sharded
// variant.
type Sharded struct {
	shards    []*Greylister
	whitelist *Whitelist
}

// NewSharded returns a Sharded engine with n shards (n < 1 is treated as
// 1). A nil clock means real time.
func NewSharded(n int, policy Policy, clock simtime.Clock) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{whitelist: NewWhitelist()}
	for i := 0; i < n; i++ {
		g := New(policy, clock)
		g.whitelist = s.whitelist // shared static whitelist
		s.shards = append(s.shards, g)
	}
	return s
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Whitelist returns the shared static whitelist.
func (s *Sharded) Whitelist() *Whitelist { return s.whitelist }

// Policy returns the shared policy.
func (s *Sharded) Policy() Policy { return s.shards[0].policy }

func (s *Sharded) shardFor(t Triplet) *Greylister {
	h := fnv.New32a()
	io.WriteString(h, t.key(s.shards[0].policy.SubnetKeying))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Check runs the greylisting decision on the triplet's shard.
func (s *Sharded) Check(t Triplet) Verdict {
	return s.shardFor(t).Check(t)
}

// GC collects every shard, returning the total dropped.
func (s *Sharded) GC() int {
	total := 0
	for _, g := range s.shards {
		total += g.GC()
	}
	return total
}

// Stats aggregates the counters across shards.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, g := range s.shards {
		st := g.Stats()
		total.Checks += st.Checks
		total.DeferredNew += st.DeferredNew
		total.DeferredEarly += st.DeferredEarly
		total.DeferredExpired += st.DeferredExpired
		total.PassedRetry += st.PassedRetry
		total.PassedKnown += st.PassedKnown
		total.PassedWhitelist += st.PassedWhitelist
		total.PassedAutoClient += st.PassedAutoClient
		total.TripletsRecorded += st.TripletsRecorded
		total.TripletsWhitelist += st.TripletsWhitelist
	}
	return total
}

// PendingCount sums the pending-triplet tables.
func (s *Sharded) PendingCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.PendingCount()
	}
	return n
}

// PassedCount sums the passed-triplet tables.
func (s *Sharded) PassedCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.PassedCount()
	}
	return n
}

// Save serializes every shard (shard count first).
func (s *Sharded) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "shards %d\n", len(s.shards)); err != nil {
		return fmt.Errorf("greylist: save sharded: %w", err)
	}
	for _, g := range s.shards {
		if err := g.Save(w); err != nil {
			return err
		}
	}
	return nil
}

// Load restores state written by Save. The shard count must match.
func (s *Sharded) Load(r io.Reader) error {
	// Buffer exactly once: gob.NewDecoder wraps non-ByteReader streams
	// in its own bufio.Reader, which over-reads past the end of one
	// shard's stream and corrupts the next. A shared bufio.Reader (a
	// ByteReader) keeps every decoder byte-exact.
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscanf(br, "shards %d\n", &n); err != nil {
		return fmt.Errorf("greylist: load sharded: %w", err)
	}
	if n != len(s.shards) {
		return fmt.Errorf("greylist: load sharded: snapshot has %d shards, engine has %d", n, len(s.shards))
	}
	for _, g := range s.shards {
		if err := g.Load(br); err != nil {
			return err
		}
	}
	return nil
}

// Checker is the interface shared by Greylister and Sharded; servers and
// experiments accept either.
type Checker interface {
	Check(Triplet) Verdict
	GC() int
	Whitelist() *Whitelist
}

var (
	_ Checker = (*Greylister)(nil)
	_ Checker = (*Sharded)(nil)
)

// Engine is the full surface shared by Greylister and Sharded; servers
// that want to accept either (e.g. core.Domain with configurable
// sharding) program against it.
type Engine interface {
	Checker
	Policy() Policy
	Stats() Stats
	PendingCount() int
	PassedCount() int
	Save(io.Writer) error
	Load(io.Reader) error
}

var (
	_ Engine = (*Greylister)(nil)
	_ Engine = (*Sharded)(nil)
)
