package greylist

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// Sharded partitions greylisting state across N independent Greylisters
// by triplet hash, eliminating lock contention on busy servers. All
// shards share one policy and one static whitelist.
//
// Semantics are identical to a single Greylister for everything keyed by
// the triplet. The client auto-whitelist is the one intentional
// difference: deliveries from one client land in the shard of their full
// triplet, so a client's count accumulates per shard rather than
// globally, making the auto-whitelist slightly slower to trigger. The
// trade-off is measured in BenchmarkGreylistCheckParallel vs the sharded
// variant.
type Sharded struct {
	shards    []*Greylister
	whitelist *Whitelist

	// chain is the shared bypass chain. The Sharded engine evaluates
	// it itself, *before* shard routing: a rekeying stage changes the
	// triplet's key and therefore which shard owns its state (two
	// outbound IPs of one SPF domain must land on the same shard).
	// Every shard holds the same pointer so per-stage counters
	// aggregate in one place.
	chain atomic.Pointer[Chain]

	// obsv is the verdict observer for the batch path; single checks
	// are observed inside the owning shard's routedCheck (SetObserver
	// installs on both levels, each verdict reported exactly once).
	obsv atomic.Pointer[Observer]
}

// NewSharded returns a Sharded engine with n shards (n < 1 is treated as
// 1). A nil clock means real time.
func NewSharded(n int, policy Policy, clock simtime.Clock) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{whitelist: NewWhitelist()}
	ch := NewChain(WhitelistStage(s.whitelist))
	s.chain.Store(ch)
	for i := 0; i < n; i++ {
		g := New(policy, clock)
		g.whitelist = s.whitelist // shared static whitelist
		g.chain.Store(ch)         // shared chain (and counters)
		s.shards = append(s.shards, g)
	}
	return s
}

// SetChain installs a bypass chain on the engine (and every shard). A
// nil chain restores the default whitelist-only chain.
func (s *Sharded) SetChain(c *Chain) {
	if c == nil {
		c = NewChain(WhitelistStage(s.whitelist))
	}
	s.chain.Store(c)
	for _, g := range s.shards {
		g.chain.Store(c)
	}
}

// Chain returns the currently installed bypass chain.
func (s *Sharded) Chain() *Chain { return s.chain.Load() }

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Whitelist returns the shared static whitelist.
func (s *Sharded) Whitelist() *Whitelist { return s.whitelist }

// Policy returns the shared policy.
func (s *Sharded) Policy() Policy { return s.shards[0].policy }

// shardIndex picks the shard by FNV-1a over the canonical key bytes,
// built in a stack buffer — no hasher object, no intermediate string.
// The hash equals hash/fnv over t.key(...), so shard assignment (and
// therefore on-disk sharded snapshots) is unchanged from the string-based
// implementation.
func (s *Sharded) shardIndex(t Triplet) int { return s.shardIndexRekeyed(t, "") }

// shardIndexRekeyed is shardIndex under the chain's chosen client key:
// a rekeyed attempt routes by its key domain, so every outbound IP of
// an SPF-passing domain shares one shard's state.
func (s *Sharded) shardIndexRekeyed(t Triplet, rekey string) int {
	var ckBuf, kBuf [keyBufCap]byte
	clientKey := appendChainClientKey(ckBuf[:0], t.ClientIP, rekey, s.shards[0].policy.SubnetKeying)
	key := t.appendKey(kBuf[:0], clientKey)
	return int(fnv1a(key) % uint32(len(s.shards)))
}

// Check evaluates the bypass chain, then runs the greylisting decision
// on the shard owning the (possibly rekeyed) triplet.
func (s *Sharded) Check(t Triplet) Verdict {
	out, _ := s.chain.Load().eval(t)
	return s.shards[s.shardIndexRekeyed(t, out.rekey())].routedCheck(t, out, nil)
}

// CheckTraced runs the traced decision on the triplet's shard.
func (s *Sharded) CheckTraced(t Triplet, tr *trace.Trace) Verdict {
	if tr == nil {
		return s.Check(t)
	}
	ch := s.chain.Load()
	out, idx := ch.eval(t)
	if idx >= 0 {
		tr.Bypass(ch.StageName(idx), out.Action.String())
	}
	return s.shards[s.shardIndexRekeyed(t, out.rekey())].routedCheck(t, out, tr)
}

// CheckBatch decides a run of attempts, grouping them by shard so each
// shard's locks are taken once per batch instead of once per triplet.
// Verdicts are positionally matched to ts; semantics are identical to
// calling Check on each triplet in order. The result reuses out when it
// has sufficient capacity.
func (s *Sharded) CheckBatch(ts []Triplet, out []Verdict) []Verdict {
	out = verdictSlice(out, len(ts))
	if len(ts) == 0 {
		return out
	}
	if len(ts) == 1 {
		out[0] = s.Check(ts[0])
		return out
	}

	var start time.Time
	op := s.obsv.Load()
	if op != nil {
		start = time.Now()
	}

	// Evaluate the chain once for the whole batch, before routing:
	// bypasses complete immediately (their counters land on shard 0,
	// which feeds the same aggregate Stats), and rekeyed attempts
	// route by their domain key. The rekey slice is only allocated
	// when some stage actually rekeys.
	ch := s.chain.Load()
	g0 := s.shards[0]
	g0.stats.checks.Add(uint64(len(ts)))
	var rekeys []string
	idx := make([]int, len(ts))
	for i, t := range ts {
		o, _ := ch.eval(t)
		switch o.Action {
		case StageBypass:
			g0.countBypass(o.Reason)
			out[i] = Verdict{Decision: Pass, Reason: o.Reason}
			idx[i] = -1
			continue
		case StageRekey:
			g0.stats.spfRekeyed.Add(1)
			if rekeys == nil {
				rekeys = make([]string, len(ts))
			}
			rekeys[i] = o.Domain
		}
		out[i] = Verdict{}
		rk := ""
		if rekeys != nil {
			rk = rekeys[i]
		}
		idx[i] = s.shardIndexRekeyed(t, rk)
	}

	// Group positions by shard. A batch is a pipelined burst from one
	// client — small — so stack-friendly slices beat a map.
	var (
		group   []Triplet
		rkGroup []string
		pos     []int
		sub     []Verdict
	)
	for sh := range s.shards {
		group, pos, rkGroup = group[:0], pos[:0], rkGroup[:0]
		for i, want := range idx {
			if want == sh {
				group = append(group, ts[i])
				pos = append(pos, i)
				if rekeys != nil {
					rkGroup = append(rkGroup, rekeys[i])
				}
			}
		}
		if len(group) == 0 {
			continue
		}
		sub = verdictSlice(sub, len(group))
		for j := range sub {
			sub[j] = Verdict{} // storeBatch decides zero-verdict slots
		}
		var rk []string
		if rekeys != nil {
			rk = rkGroup
		}
		sub = s.shards[sh].storeBatchTimed(group, rk, sub)
		for j, i := range pos {
			out[i] = sub[j]
		}
	}
	if op != nil {
		// storeBatch bypasses the shards' routedCheck, so the batch
		// observes here with the amortized per-RCPT latency.
		per := int64(time.Since(start)) / int64(len(ts))
		for i := range ts {
			(*op).ObserveVerdict(ts[i], out[i], per)
		}
	}
	return out
}

// GC collects every shard, returning the total dropped.
func (s *Sharded) GC() int {
	total := 0
	for _, g := range s.shards {
		total += g.GC()
	}
	return total
}

// Stats aggregates the counters across shards.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, g := range s.shards {
		total.add(g.Stats())
	}
	return total
}

// PendingCount sums the pending-triplet tables.
func (s *Sharded) PendingCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.PendingCount()
	}
	return n
}

// PassedCount sums the passed-triplet tables.
func (s *Sharded) PassedCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.PassedCount()
	}
	return n
}

// ClientCount sums the auto-whitelist tables. A client whose deliveries
// landed in several shards is counted once per shard, matching the
// engine's per-shard auto-whitelist semantics.
func (s *Sharded) ClientCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.ClientCount()
	}
	return n
}

// EarnedCount sums the earned-whitelist tables. Like the client
// auto-whitelist, earned grants live in the shard of the triplet that
// earned them, so a client greylisted across shards may earn (and be
// counted) per shard.
func (s *Sharded) EarnedCount() int {
	n := 0
	for _, g := range s.shards {
		n += g.EarnedCount()
	}
	return n
}

// Save serializes every shard (shard count first).
func (s *Sharded) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "shards %d\n", len(s.shards)); err != nil {
		return fmt.Errorf("greylist: save sharded: %w", err)
	}
	for _, g := range s.shards {
		if err := g.Save(w); err != nil {
			return err
		}
	}
	return nil
}

// Load restores state written by Save. A snapshot written with the same
// shard count restores shard-for-shard; a snapshot written with a
// *different* shard count is resharded: every record is redistributed by
// the same key hash shardIndex uses, so a triplet saved under -shards 4
// is found again under -shards 16 (previously this case was rejected;
// loading and misplacing records is never possible because the key hash,
// not the stream position, decides placement).
func (s *Sharded) Load(r io.Reader) error {
	// Buffer exactly once: gob.NewDecoder wraps non-ByteReader streams
	// in its own bufio.Reader, which over-reads past the end of one
	// shard's stream and corrupts the next. A shared bufio.Reader (a
	// ByteReader) keeps every decoder byte-exact.
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscanf(br, "shards %d\n", &n); err != nil {
		return fmt.Errorf("greylist: load sharded: %w", err)
	}
	if n < 1 {
		return fmt.Errorf("greylist: load sharded: invalid shard count %d", n)
	}
	if n == len(s.shards) {
		for _, g := range s.shards {
			if err := g.Load(br); err != nil {
				return err
			}
		}
		return nil
	}
	return s.reshardLoad(br, n)
}

// reshardLoad decodes the n source-shard snapshots and redistributes
// their records across this engine's shards.
//
// Triplet-keyed records (pending, passed) reshard exactly: a key lived
// in source shard fnv1a(key)%n and moves to fnv1a(key)%len(s.shards);
// keys are unique across source shards, so no merging is needed.
//
// Client auto-whitelist records have no exact mapping — deliveries
// accumulate in the shard of each *triplet*, so one client may hold
// partial counts in several source shards, and its future triplets hash
// to target shards we cannot predict. The records are merged (summed
// deliveries, newest last-use) and replicated to every target shard:
// a client that had earned the auto-whitelist anywhere keeps it
// everywhere, which errs toward accepting mail rather than re-greylisting
// known senders after an operator changes -shards.
//
// Cumulative Stats are summed into shard 0 (the aggregate Sharded.Stats
// reads identically either way).
func (s *Sharded) reshardLoad(br *bufio.Reader, n int) error {
	type tables struct {
		pending map[string]pendingSnap
		passed  map[string]passedSnap
	}
	dst := make([]tables, len(s.shards))
	for i := range dst {
		dst[i] = tables{
			pending: make(map[string]pendingSnap),
			passed:  make(map[string]passedSnap),
		}
	}
	clients := make(map[string]clientSnap)
	earned := make(map[string]earnedSnap)
	var totals Stats

	for i := 0; i < n; i++ {
		snap, err := decodeSnapshot(br)
		if err != nil {
			return fmt.Errorf("greylist: load sharded: source shard %d: %w", i, err)
		}
		for k, v := range snap.Pending {
			dst[s.shardIndexKey(k)].pending[k] = v
		}
		for k, v := range snap.Passed {
			dst[s.shardIndexKey(k)].passed[k] = v
		}
		for k, v := range snap.Clients {
			merged := clients[k]
			merged.Deliveries += v.Deliveries
			if v.LastUsed.After(merged.LastUsed) {
				merged.LastUsed = v.LastUsed
			}
			clients[k] = merged
		}
		// Earned grants are client-keyed like the auto-whitelist: no
		// exact shard mapping exists, so merge (earliest grant, newest
		// use, summed deliveries) and replicate to every target shard
		// — erring toward accepting mail, exactly like clients above.
		for k, v := range snap.Earned {
			merged, ok := earned[k]
			if !ok || (!v.GrantedAt.IsZero() && v.GrantedAt.Before(merged.GrantedAt)) {
				merged.GrantedAt = v.GrantedAt
			}
			merged.Deliveries += v.Deliveries
			if v.LastUsed.After(merged.LastUsed) {
				merged.LastUsed = v.LastUsed
			}
			earned[k] = merged
		}
		totals.add(snap.Stats)
	}

	for i, g := range s.shards {
		snap := snapshot{
			Version: snapshotVersion,
			Pending: dst[i].pending,
			Passed:  dst[i].passed,
			Clients: clients,
			Earned:  earned,
		}
		if i == 0 {
			snap.Stats = totals
		}
		g.restoreSnapshot(&snap)
	}
	return nil
}

// shardIndexKey places an already-canonical record key (the map key the
// snapshot stores) on its shard, with the same hash shardIndex computes
// from a Triplet.
func (s *Sharded) shardIndexKey(key string) int {
	return int(fnv1aString(key) % uint32(len(s.shards)))
}

// Checker is the interface shared by Greylister and Sharded; servers and
// experiments accept either.
type Checker interface {
	Check(Triplet) Verdict
	GC() int
	Whitelist() *Whitelist
}

var (
	_ Checker = (*Greylister)(nil)
	_ Checker = (*Sharded)(nil)
)

// BatchChecker is implemented by engines that can amortize locking over a
// run of attempts (a pipelined RCPT burst, a drained policy-request
// queue). Both Greylister and Sharded implement it; callers holding only
// a Checker can type-assert and fall back to per-triplet Check.
type BatchChecker interface {
	Checker
	// CheckBatch decides every triplet in ts, writing verdicts
	// positionally. It reuses out when cap(out) >= len(ts) and returns
	// the verdict slice. Semantics match calling Check on each triplet
	// in order.
	CheckBatch(ts []Triplet, out []Verdict) []Verdict
}

var (
	_ BatchChecker = (*Greylister)(nil)
	_ BatchChecker = (*Sharded)(nil)
)

// TracedChecker is implemented by engines that can record a verdict
// into a per-conversation trace (with latency exemplars when metrics
// are registered). Kept out of Checker so existing third-party
// Checker implementations stay valid; callers type-assert and fall
// back to Check.
type TracedChecker interface {
	CheckTraced(t Triplet, tr *trace.Trace) Verdict
}

var (
	_ TracedChecker = (*Greylister)(nil)
	_ TracedChecker = (*Sharded)(nil)
)

// Engine is the full surface shared by Greylister and Sharded; servers
// that want to accept either (e.g. core.Domain with configurable
// sharding) program against it.
type Engine interface {
	BatchChecker
	Policy() Policy
	Stats() Stats
	PendingCount() int
	PassedCount() int
	ClientCount() int
	EarnedCount() int
	Save(io.Writer) error
	Load(io.Reader) error
	// SetChain installs a bypass chain evaluated ahead of the triplet
	// check; nil restores the default whitelist-only chain.
	SetChain(*Chain)
	// SetObserver installs (nil: removes) the verdict observer feeding
	// the live observatory; every decided verdict is reported exactly
	// once with its engine-side latency.
	SetObserver(Observer)
	// Chain returns the installed bypass chain.
	Chain() *Chain
	// Register exports the engine's counters, gauges and latency
	// histograms into reg (see metrics.go for the name catalogue).
	Register(*metrics.Registry)
}

var (
	_ Engine = (*Greylister)(nil)
	_ Engine = (*Sharded)(nil)
)
