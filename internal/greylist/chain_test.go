package greylist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// stubStage is a scriptable bypass stage for chain tests.
type stubStage struct {
	name  string
	out   StageOutcome
	err   error
	calls int
}

func (s *stubStage) Name() string { return s.name }
func (s *stubStage) Eval(Triplet) (StageOutcome, error) {
	s.calls++
	return s.out, s.err
}

// senderDomainRekey mimics the SPF stage's happy path: rekey every
// check by the sender's domain.
type senderDomainRekey struct{}

func (senderDomainRekey) Name() string { return "spf" }
func (senderDomainRekey) Eval(t Triplet) (StageOutcome, error) {
	at := -1
	for i := 0; i < len(t.Sender); i++ {
		if t.Sender[i] == '@' {
			at = i
		}
	}
	if at < 0 {
		return StageOutcome{}, nil
	}
	return StageOutcome{Action: StageRekey, Domain: t.Sender[at+1:]}, nil
}

func TestChainFirstMatchWins(t *testing.T) {
	skip := &stubStage{name: "skip"}
	hit := &stubStage{name: "dnswl", out: StageOutcome{Action: StageBypass, Reason: ReasonDNSWL}}
	shadowed := &stubStage{name: "rdns", out: StageOutcome{Action: StageBypass, Reason: ReasonRDNS}}
	g, _ := newTestGreylister(300 * time.Second)
	g.SetChain(NewChain(skip, hit, shadowed))

	v := g.Check(testTriplet)
	if v.Decision != Pass || v.Reason != ReasonDNSWL {
		t.Fatalf("verdict = %+v, want pass/dnswl-listed", v)
	}
	if skip.calls != 1 || hit.calls != 1 || shadowed.calls != 0 {
		t.Fatalf("calls = %d/%d/%d, want 1/1/0 (first match ends evaluation)",
			skip.calls, hit.calls, shadowed.calls)
	}
	stats := g.Chain().StageStats()
	if stats[1].Hits != 1 || stats[2].Hits != 0 {
		t.Fatalf("stage stats = %+v", stats)
	}
	if s := g.Stats(); s.PassedDNSWL != 1 || s.Checks != 1 {
		t.Fatalf("engine stats = %+v", s)
	}
}

func TestChainStageErrorFailsOpen(t *testing.T) {
	bad := &stubStage{name: "dnswl", err: errors.New("resolver down")}
	g, _ := newTestGreylister(300 * time.Second)
	g.SetChain(NewChain(WhitelistStage(g.Whitelist()), bad))

	// With every stage skipping or erroring, the chain degrades to plain
	// greylisting: first attempt deferred, not rejected or passed.
	v := g.Check(testTriplet)
	if v.Decision != Defer || v.Reason != ReasonFirstSeen {
		t.Fatalf("verdict = %+v, want defer/first-seen", v)
	}
	if st := g.Chain().StageStats(); st[1].Errors != 1 || st[1].Hits != 0 {
		t.Fatalf("error not counted: %+v", st)
	}

	// An erroring stage ahead of a matching one must not mask it.
	g2, _ := newTestGreylister(300 * time.Second)
	g2.Whitelist().AddRecipient(testTriplet.Recipient)
	g2.SetChain(NewChain(bad, WhitelistStage(g2.Whitelist())))
	if v := g2.Check(testTriplet); v.Decision != Pass || v.Reason != ReasonWhitelisted {
		t.Fatalf("verdict behind erroring stage = %+v, want pass/whitelisted", v)
	}
}

// TestChainDisabledVsErroring: a stage that is absent (disabled by
// flags) and a stage that errors on every call produce identical
// verdict streams — the difference is visible only in the error
// counters. This is the fail-open contract operators rely on.
func TestChainDisabledVsErroring(t *testing.T) {
	disabled, _ := newTestGreylister(300 * time.Second)
	disabled.SetChain(NewChain(WhitelistStage(disabled.Whitelist())))

	erroring, _ := newTestGreylister(300 * time.Second)
	bad := &stubStage{name: "spf", err: errors.New("dns timeout")}
	erroring.SetChain(NewChain(WhitelistStage(erroring.Whitelist()), bad))

	trips := []Triplet{
		testTriplet,
		{ClientIP: "198.51.100.7", Sender: "a@b.example", Recipient: "c@foo.net"},
		testTriplet,
	}
	for i, tr := range trips {
		v1, v2 := disabled.Check(tr), erroring.Check(tr)
		if v1 != v2 {
			t.Fatalf("verdict %d diverged: disabled=%+v erroring=%+v", i, v1, v2)
		}
	}
	if st := erroring.Chain().StageStats(); st[1].Errors != uint64(len(trips)) {
		t.Fatalf("errors = %d, want %d", st[1].Errors, len(trips))
	}
}

// TestChainRekeySharesState is the point of SPF-domain keying: a
// provider retrying from a different outbound IP continues the triplet
// dance its first IP started.
func TestChainRekeySharesState(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.SetChain(NewChain(senderDomainRekey{}))

	first := Triplet{ClientIP: "192.0.2.10", Sender: "news@bulk.example", Recipient: "user@foo.net"}
	if v := g.Check(first); v.Decision != Defer || v.Reason != ReasonFirstSeen {
		t.Fatalf("first attempt = %+v", v)
	}
	clock.Advance(301 * time.Second)
	// Retry from a different host in a different network entirely.
	second := Triplet{ClientIP: "203.0.113.99", Sender: "news@bulk.example", Recipient: "user@foo.net"}
	v := g.Check(second)
	if v.Decision != Pass || v.Reason != ReasonRetryAccepted {
		t.Fatalf("cross-IP retry = %+v, want pass/retry-accepted", v)
	}
	if s := g.Stats(); s.SPFRekeyed != 2 {
		t.Fatalf("SPFRekeyed = %d, want 2", s.SPFRekeyed)
	}
	// A different sender domain does not share the state.
	other := Triplet{ClientIP: "192.0.2.10", Sender: "news@other.example", Recipient: "user@foo.net"}
	if v := g.Check(other); v.Decision != Defer {
		t.Fatalf("other domain = %+v, want defer", v)
	}
}

func TestChainRekeyDomainCaseInsensitive(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.SetChain(NewChain(senderDomainRekey{}))
	g.Check(Triplet{ClientIP: "192.0.2.10", Sender: "a@Bulk.Example", Recipient: "u@foo.net"})
	clock.Advance(301 * time.Second)
	v := g.Check(Triplet{ClientIP: "192.0.2.11", Sender: "a@bulk.example", Recipient: "u@foo.net"})
	if v.Decision != Pass || v.Reason != ReasonRetryAccepted {
		t.Fatalf("case-folded rekey retry = %+v", v)
	}
}

// TestChainRekeyEmptyDomainSkips: a rekey to nowhere is a skip, not a
// crash or an empty-keyed shared bucket.
func TestChainRekeyEmptyDomainSkips(t *testing.T) {
	empty := &stubStage{name: "spf", out: StageOutcome{Action: StageRekey}}
	g, _ := newTestGreylister(300 * time.Second)
	g.SetChain(NewChain(empty))
	if v := g.Check(testTriplet); v.Decision != Defer || v.Reason != ReasonFirstSeen {
		t.Fatalf("verdict = %+v", v)
	}
	if s := g.Stats(); s.SPFRekeyed != 0 {
		t.Fatalf("SPFRekeyed = %d, want 0", s.SPFRekeyed)
	}
}

func TestSetChainNilRestoresDefault(t *testing.T) {
	g, _ := newTestGreylister(300 * time.Second)
	g.SetChain(NewChain())
	g.SetChain(nil)
	g.Whitelist().AddRecipient(testTriplet.Recipient)
	if v := g.Check(testTriplet); v.Decision != Pass || v.Reason != ReasonWhitelisted {
		t.Fatalf("default chain lost the whitelist: %+v", v)
	}
}

func TestCheckTracedEmitsBypassEvent(t *testing.T) {
	g, _ := newTestGreylister(300 * time.Second)
	g.SetChain(NewChain(
		&stubStage{name: "spf"},
		&stubStage{name: "dnswl", out: StageOutcome{Action: StageBypass, Reason: ReasonDNSWL}},
	))
	tracer := trace.New(4)
	tr := tracer.StartAttempt(trace.Tags{}, testTriplet.Recipient, 0, nil)
	g.CheckTraced(testTriplet, tr)
	var got *trace.Event
	for _, e := range tr.Events() {
		if e.Kind == trace.KindBypass {
			e := e
			got = &e
		}
	}
	if got == nil {
		t.Fatal("no bypass event recorded")
	}
	if got.Name != "dnswl" || got.Detail != "bypass" {
		t.Fatalf("bypass event = %+v, want dnswl/bypass", got)
	}
	// Chain-negative checks add no bypass event.
	tr2 := tracer.StartAttempt(trace.Tags{}, testTriplet.Recipient, 0, nil)
	g.SetChain(NewChain(&stubStage{name: "spf"}))
	g.CheckTraced(testTriplet, tr2)
	for _, e := range tr2.Events() {
		if e.Kind == trace.KindBypass {
			t.Fatalf("chain-negative check recorded %+v", e)
		}
	}
}

func earnedPolicy(threshold time.Duration) Policy {
	p := DefaultPolicy()
	p.Threshold = threshold
	p.EarnedLifetime = 24 * time.Hour
	return p
}

// promote walks one triplet through the greylisting dance to promotion.
func promote(t *testing.T, g interface{ Check(Triplet) Verdict }, clock *simtime.Sim, tr Triplet) {
	t.Helper()
	if v := g.Check(tr); v.Decision != Defer {
		t.Fatalf("setup: first attempt = %+v", v)
	}
	clock.Advance(301 * time.Second)
	if v := g.Check(tr); v.Decision != Pass || v.Reason != ReasonRetryAccepted {
		t.Fatalf("setup: retry = %+v", v)
	}
}

func TestEarnedWhitelistGrantRenewExpire(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(earnedPolicy(300*time.Second), clock)
	promote(t, g, clock, testTriplet)
	if s := g.Stats(); s.EarnedGranted != 1 {
		t.Fatalf("EarnedGranted = %d, want 1", s.EarnedGranted)
	}
	if g.EarnedCount() != 1 {
		t.Fatalf("EarnedCount = %d, want 1", g.EarnedCount())
	}

	// A different sender/recipient from the same client now passes
	// outright — the client, not the triplet, earned the whitelist.
	other := Triplet{ClientIP: testTriplet.ClientIP, Sender: "x@y.example", Recipient: "z@foo.net"}
	if v := g.Check(other); v.Decision != Pass || v.Reason != ReasonEarnedWhitelist {
		t.Fatalf("earned check = %+v, want pass/earned-whitelist", v)
	}

	// Each use renews: three 20h gaps (each inside the 24h lifetime)
	// stretch way past the original grant.
	for i := 0; i < 3; i++ {
		clock.Advance(20 * time.Hour)
		if v := g.Check(other); v.Reason != ReasonEarnedWhitelist {
			t.Fatalf("renewal %d = %+v", i, v)
		}
	}

	// A gap longer than the lifetime expires it: back to the dance.
	clock.Advance(25 * time.Hour)
	if v := g.Check(other); v.Decision != Defer {
		t.Fatalf("post-expiry check = %+v, want defer", v)
	}
	if g.EarnedCount() != 0 {
		t.Fatalf("EarnedCount after expiry = %d", g.EarnedCount())
	}
	if s := g.Stats(); s.PassedEarned != 4 {
		t.Fatalf("PassedEarned = %d, want 4", s.PassedEarned)
	}
}

func TestEarnedExpiredByGC(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(earnedPolicy(300*time.Second), clock)
	promote(t, g, clock, testTriplet)
	clock.Advance(25 * time.Hour)
	g.GC()
	if g.EarnedCount() != 0 {
		t.Fatalf("EarnedCount after GC = %d, want 0", g.EarnedCount())
	}
}

func TestEarnedDisabledByDefault(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	promote(t, g, clock, testTriplet)
	if g.EarnedCount() != 0 {
		t.Fatalf("EarnedCount = %d with EarnedLifetime unset", g.EarnedCount())
	}
	other := Triplet{ClientIP: testTriplet.ClientIP, Sender: "x@y.example", Recipient: "z@foo.net"}
	if v := g.Check(other); v.Decision != Defer {
		t.Fatalf("check with earned disabled = %+v, want defer", v)
	}
}

// TestEarnedRekeyedDomain: with SPF keying in front, the earned
// whitelist is granted to the domain — any outbound IP cashes it in.
func TestEarnedRekeyedDomain(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(earnedPolicy(300*time.Second), clock)
	g.SetChain(NewChain(senderDomainRekey{}))
	promote(t, g, clock, Triplet{ClientIP: "192.0.2.10", Sender: "news@bulk.example", Recipient: "u@foo.net"})
	v := g.Check(Triplet{ClientIP: "203.0.113.80", Sender: "promo@bulk.example", Recipient: "other@foo.net"})
	if v.Decision != Pass || v.Reason != ReasonEarnedWhitelist {
		t.Fatalf("cross-IP earned check = %+v", v)
	}
}

func TestWALReplayEarned(t *testing.T) {
	dir := t.TempDir()
	log, ck := filepath.Join(dir, "wal.log"), filepath.Join(dir, "state")
	clock := simtime.NewSim(simtime.Epoch)

	g := New(earnedPolicy(300*time.Second), clock)
	w, _, err := OpenWAL(WALConfig{Path: log, CheckpointPath: ck, Sync: SyncNone, CompactBytes: -1}, g)
	if err != nil {
		t.Fatal(err)
	}
	promote(t, g, clock, testTriplet)
	other := Triplet{ClientIP: testTriplet.ClientIP, Sender: "x@y.example", Recipient: "z@foo.net"}
	clock.Advance(time.Hour)
	if v := g.Check(other); v.Reason != ReasonEarnedWhitelist {
		t.Fatalf("pre-crash earned check = %+v", v)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// The crash: copy the files out from under the running WAL (Close
	// would compact the log into the checkpoint, and this test is about
	// replaying the earned records themselves).
	cdir := t.TempDir()
	log2, ck2 := filepath.Join(cdir, "wal.log"), filepath.Join(cdir, "state")
	copyFile(t, log, log2)
	copyFile(t, ck, ck2)

	g2 := New(earnedPolicy(300*time.Second), clock)
	w2, info, err := OpenWAL(WALConfig{Path: log2, CheckpointPath: ck2, Sync: SyncNone, CompactBytes: -1}, g2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.ReplayedRecords == 0 {
		t.Fatal("no WAL records replayed")
	}
	if g2.EarnedCount() != 1 {
		t.Fatalf("EarnedCount after replay = %d, want 1", g2.EarnedCount())
	}
	// Replay must leave Stats frozen: grants replayed are not re-counted.
	if s := g2.Stats(); s.EarnedGranted != 0 || s.PassedEarned != 0 {
		t.Fatalf("replay moved stats: %+v", s)
	}
	// And the recovered entry still answers, renewed from the replayed
	// last-used stamp — 20h after the touch is inside the lifetime even
	// though it is >24h after the grant.
	clock.Advance(20 * time.Hour)
	if v := g2.Check(other); v.Reason != ReasonEarnedWhitelist {
		t.Fatalf("post-recovery earned check = %+v", v)
	}
}

func TestSnapshotEarnedRoundTrip(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(earnedPolicy(300*time.Second), clock)
	promote(t, g, clock, testTriplet)

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := New(earnedPolicy(300*time.Second), clock)
	if err := g2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if g2.EarnedCount() != 1 {
		t.Fatalf("EarnedCount after load = %d, want 1", g2.EarnedCount())
	}
	other := Triplet{ClientIP: testTriplet.ClientIP, Sender: "x@y.example", Recipient: "z@foo.net"}
	if v := g2.Check(other); v.Reason != ReasonEarnedWhitelist {
		t.Fatalf("earned check after load = %+v", v)
	}
}

// TestSnapshotV1Accepted: a version-1 snapshot (written before the
// earned table existed) still loads — gob leaves the absent Earned map
// nil and the engine starts with no earned entries.
func TestSnapshotV1Accepted(t *testing.T) {
	old := &snapshot{Version: 1}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(old); err != nil {
		t.Fatal(err)
	}
	g, _ := newTestGreylister(300 * time.Second)
	if err := g.Load(&buf); err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if g.EarnedCount() != 0 {
		t.Fatalf("EarnedCount = %d", g.EarnedCount())
	}
	// A future version is rejected, not misread.
	bad := &snapshot{Version: snapshotVersion + 1}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if err := g.Load(&buf); err == nil {
		t.Fatal("future snapshot version accepted")
	}
}

// TestShardedRekeyRouting: the chain is evaluated before shard routing,
// so every outbound IP of a rekeyed domain lands on the same shard and
// shares state — the single-engine cross-IP retry test, sharded.
func TestShardedRekeyRouting(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.Threshold = 300 * time.Second
	s := NewSharded(8, p, clock)
	s.SetChain(NewChain(senderDomainRekey{}))

	if v := s.Check(Triplet{ClientIP: "192.0.2.10", Sender: "n@bulk.example", Recipient: "u@foo.net"}); v.Decision != Defer {
		t.Fatalf("first attempt = %+v", v)
	}
	clock.Advance(301 * time.Second)
	for i := 0; i < 16; i++ {
		tr := Triplet{ClientIP: fmt.Sprintf("203.0.113.%d", i), Sender: "n@bulk.example", Recipient: "u@foo.net"}
		v := s.Check(tr)
		// The domain key accrues deliveries like any client key, so
		// after AutoWhitelistAfter deliveries the auto-whitelist takes
		// over from the known-triplet path — still a pass, still shared.
		want := ReasonKnownTriplet
		switch {
		case i == 0:
			want = ReasonRetryAccepted
		case i >= s.Policy().AutoWhitelistAfter:
			want = ReasonAutoWhitelisted
		}
		if v.Decision != Pass || v.Reason != want {
			t.Fatalf("retry %d = %+v, want pass/%s", i, v, want)
		}
	}
	if st := s.Stats(); st.SPFRekeyed != 17 {
		t.Fatalf("SPFRekeyed = %d, want 17", st.SPFRekeyed)
	}
}

// TestShardedBatchMatchesSequential: CheckBatch with the chain enabled
// is verdict-for-verdict identical to sequential Check on an identical
// engine, mixed bypass/rekey/negative items included.
func TestShardedBatchMatchesSequential(t *testing.T) {
	build := func() (*Sharded, *simtime.Sim) {
		clock := simtime.NewSim(simtime.Epoch)
		p := earnedPolicy(300 * time.Second)
		s := NewSharded(4, p, clock)
		s.Whitelist().AddRecipient("postmaster@foo.net")
		s.SetChain(NewChain(WhitelistStage(s.Whitelist()), senderDomainRekey{}))
		return s, clock
	}
	trips := []Triplet{
		{ClientIP: "192.0.2.1", Sender: "a@one.example", Recipient: "u@foo.net"},
		{ClientIP: "192.0.2.2", Sender: "b@two.example", Recipient: "postmaster@foo.net"},
		{ClientIP: "192.0.2.3", Sender: "", Recipient: "u@foo.net"},
		{ClientIP: "192.0.2.4", Sender: "a@one.example", Recipient: "u@foo.net"},
		{ClientIP: "192.0.2.5", Sender: "c@three.example", Recipient: "v@foo.net"},
	}

	seq, seqClock := build()
	var want []Verdict
	for _, tr := range trips {
		want = append(want, seq.Check(tr))
	}
	seqClock.Advance(301 * time.Second)
	var want2 []Verdict
	for _, tr := range trips {
		want2 = append(want2, seq.Check(tr))
	}

	bat, batClock := build()
	got := bat.CheckBatch(trips, nil)
	batClock.Advance(301 * time.Second)
	got2 := bat.CheckBatch(trips, nil)

	for i := range trips {
		if got[i] != want[i] {
			t.Errorf("round 1 verdict %d: batch=%+v sequential=%+v", i, got[i], want[i])
		}
		if got2[i] != want2[i] {
			t.Errorf("round 2 verdict %d: batch=%+v sequential=%+v", i, got2[i], want2[i])
		}
	}
	ss, bs := seq.Stats(), bat.Stats()
	if ss != bs {
		t.Errorf("stats diverged: sequential=%+v batch=%+v", ss, bs)
	}
}

// TestShardedReshardMergesEarned: loading a snapshot saved with a
// different shard count replicates the merged earned table everywhere,
// so routing changes cannot lose earned grants.
func TestShardedReshardMergesEarned(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := earnedPolicy(300 * time.Second)
	s := NewSharded(4, p, clock)
	for i := 0; i < 4; i++ {
		promote(t, s, clock, Triplet{
			ClientIP: fmt.Sprintf("192.0.2.%d", i), Sender: "a@b.example", Recipient: "u@foo.net"})
	}
	if s.EarnedCount() == 0 {
		t.Fatal("no earned entries to reshard")
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewSharded(7, p, clock)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		tr := Triplet{ClientIP: fmt.Sprintf("192.0.2.%d", i), Sender: "x@y.example", Recipient: "w@foo.net"}
		if v := s2.Check(tr); v.Reason != ReasonEarnedWhitelist {
			t.Fatalf("client %d lost its earned grant after reshard: %+v", i, v)
		}
	}
}
