package greylist

import (
	"testing"
	"time"
)

// The tracing contract on the verdict hot path: CheckTraced with a nil
// trace must cost the same as Check — 0 allocs/op — because every
// caller (core.Domain, greylistd, policyd) now routes through it
// unconditionally and tracing is usually off.

func BenchmarkCheck(b *testing.B) {
	g, _ := newTestGreylister(300 * time.Second)
	t := Triplet{ClientIP: "203.0.113.7", Sender: "a@b.example", Recipient: "u@victim.example"}
	g.Check(t) // warm: the steady state re-checks a known triplet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(t)
	}
}

func BenchmarkCheckTracedDisabled(b *testing.B) {
	g, _ := newTestGreylister(300 * time.Second)
	t := Triplet{ClientIP: "203.0.113.7", Sender: "a@b.example", Recipient: "u@victim.example"}
	g.Check(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CheckTraced(t, nil)
	}
}
