package greylist

import (
	"testing"
	"time"
)

// The tracing contract on the verdict hot path: CheckTraced with a nil
// trace must cost the same as Check — 0 allocs/op — because every
// caller (core.Domain, greylistd, policyd) now routes through it
// unconditionally and tracing is usually off.

func BenchmarkCheck(b *testing.B) {
	g, _ := newTestGreylister(300 * time.Second)
	t := Triplet{ClientIP: "203.0.113.7", Sender: "a@b.example", Recipient: "u@victim.example"}
	g.Check(t) // warm: the steady state re-checks a known triplet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(t)
	}
}

func BenchmarkCheckTracedDisabled(b *testing.B) {
	g, _ := newTestGreylister(300 * time.Second)
	t := Triplet{ClientIP: "203.0.113.7", Sender: "a@b.example", Recipient: "u@victim.example"}
	g.Check(t)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CheckTraced(t, nil)
	}
}

// The durability contract on the same hot path: a known-passed Check
// with the WAL attached journals one touch record per call and must
// stay 0 allocs/op — the ring slot's inline key buffer absorbs the
// copy, and the consumer does the framing off the caller's path.

func BenchmarkCheckKnownPassed(b *testing.B) {
	g, clock := newTestGreylister(300 * time.Second)
	t := Triplet{ClientIP: "203.0.113.7", Sender: "a@b.example", Recipient: "u@victim.example"}
	g.Check(t)
	clock.Advance(301 * time.Second)
	if v := g.Check(t); v.Reason != ReasonRetryAccepted {
		b.Fatalf("warmup: %+v", v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(t)
	}
}

func BenchmarkCheckKnownPassedWAL(b *testing.B) {
	g, clock := newTestGreylister(300 * time.Second)
	dir := b.TempDir()
	w, _, err := OpenWAL(WALConfig{
		Path:           dir + "/wal.log",
		CheckpointPath: dir + "/state.ck",
		Sync:           SyncNone,
		CompactBytes:   1 << 30,
	}, g)
	if err != nil {
		b.Fatalf("OpenWAL: %v", err)
	}
	t := Triplet{ClientIP: "203.0.113.7", Sender: "a@b.example", Recipient: "u@victim.example"}
	g.Check(t)
	clock.Advance(301 * time.Second)
	if v := g.Check(t); v.Reason != ReasonRetryAccepted {
		b.Fatalf("warmup: %+v", v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Check(t)
	}
	b.StopTimer()
	w.Close()
}
