// Package greylist implements the greylisting policy engine — one half of
// the paper's subject matter (Section II). The semantics follow Postgrey,
// the implementation the paper tested against:
//
//   - Deliveries are keyed by the triplet (client IP, envelope sender,
//     envelope recipient). The message content is deliberately NOT part of
//     the key; Section V-A of the paper verifies this is why a later,
//     different message between the same parties is whitelisted by the
//     earlier one's retry.
//   - The first attempt for an unknown triplet is deferred with a
//     transient error (451 4.7.1 at the SMTP layer).
//   - A retry after the threshold has elapsed — but within the retry
//     window — passes and records the triplet for future deliveries.
//   - A retry before the threshold is deferred again without resetting
//     the first-seen time (Postgrey behaviour; the paper's 5 s vs 300 s
//     comparison in Figure 3 depends on it).
//   - After a configurable number of successful deliveries, the client IP
//     (optionally its /24 network) is auto-whitelisted, skipping the
//     triplet dance entirely.
//
// The package is transport-agnostic: the SMTP server calls Check at RCPT
// time and maps the verdict to a reply. All time flows through a
// simtime.Clock so thresholds of hours run in simulated instants.
//
// The decision path is built for serving load: on a warmed-up server the
// overwhelming majority of checks hit an already-passed triplet or an
// auto-whitelisted client, so Check runs that case allocation-free under
// a read lock (stack-built keys, atomic counter updates) and only takes
// the exclusive lock when it must mutate the tables. CheckBatch amortizes
// even the read lock across a pipelined run of RCPTs.
package greylist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
	"repro/internal/trace"
)

// Triplet identifies a delivery for greylisting purposes.
type Triplet struct {
	// ClientIP is the connecting client's IP address (no port).
	ClientIP string
	// Sender is the envelope reverse-path mailbox ("" for bounces).
	Sender string
	// Recipient is the envelope forward-path mailbox.
	Recipient string
}

// String implements fmt.Stringer.
func (t Triplet) String() string {
	return fmt.Sprintf("(%s, %s, %s)", t.ClientIP, t.Sender, t.Recipient)
}

// Policy configures a Greylister. The zero value is not useful; start from
// DefaultPolicy.
type Policy struct {
	// Threshold is the minimum wait between the first attempt and an
	// accepted retry (Postgrey --delay; default 300 s). The paper
	// evaluates 5 s, 300 s and 21 600 s.
	Threshold time.Duration
	// RetryWindow is how long a deferred triplet stays valid awaiting
	// its retry. A retry after the window is treated as a fresh first
	// attempt (Postgrey --retry-window).
	RetryWindow time.Duration
	// PassLifetime is how long a passed triplet stays whitelisted
	// after its last use (Postgrey --max-age).
	PassLifetime time.Duration
	// AutoWhitelistAfter is the number of successful deliveries after
	// which the client address is whitelisted outright; 0 disables
	// client auto-whitelisting (Postgrey --auto-whitelist-clients).
	AutoWhitelistAfter int
	// AutoWhitelistLifetime is how long an auto-whitelisted client
	// stays exempt after its last delivery.
	AutoWhitelistLifetime time.Duration
	// SubnetKeying keys triplets and the auto-whitelist by the client's
	// /24 network instead of the full address.
	SubnetKeying bool
	// EarnedLifetime enables the earned whitelist: once a client (its
	// post-rekey key component — IP, /24, or SPF domain) survives the
	// triplet dance, it is exempt from greylisting for this long after
	// its last delivery, the timer renewing on every use (the
	// -whiteexp knob of sqlgrey-style deployments, vs -greyexp ==
	// RetryWindow). 0 disables. Unlike the per-triplet passed table,
	// earned credit covers *new* sender/recipient pairs from the same
	// client; unlike AutoWhitelistAfter it takes one pass, not N.
	EarnedLifetime time.Duration
}

// DefaultPolicy returns Postgrey's defaults: 300 s delay, 2-day retry
// window, 35-day pass lifetime, client auto-whitelist after 5 deliveries.
func DefaultPolicy() Policy {
	return Policy{
		Threshold:             300 * time.Second,
		RetryWindow:           48 * time.Hour,
		PassLifetime:          35 * 24 * time.Hour,
		AutoWhitelistAfter:    5,
		AutoWhitelistLifetime: 35 * 24 * time.Hour,
	}
}

// Decision is the outcome of a greylisting check.
type Decision int

// Decisions.
const (
	// Defer tells the server to reply with a transient error.
	Defer Decision = iota + 1
	// Pass tells the server to accept the delivery.
	Pass
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Defer:
		return "defer"
	case Pass:
		return "pass"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Reason explains a Verdict.
type Reason int

// Reasons.
const (
	// ReasonFirstSeen: unknown triplet, deferred and recorded.
	ReasonFirstSeen Reason = iota + 1
	// ReasonTooSoon: retry arrived before the threshold elapsed.
	ReasonTooSoon
	// ReasonRetryAccepted: retry arrived after the threshold; the
	// triplet is now whitelisted.
	ReasonRetryAccepted
	// ReasonKnownTriplet: the triplet passed previously.
	ReasonKnownTriplet
	// ReasonWhitelisted: client, sender domain or recipient is on the
	// static whitelist.
	ReasonWhitelisted
	// ReasonAutoWhitelisted: the client earned the auto-whitelist.
	ReasonAutoWhitelisted
	// ReasonWindowExpired: a retry arrived after the retry window;
	// treated as a fresh first attempt (and deferred).
	ReasonWindowExpired
	// ReasonDNSWL: the client is listed on a configured DNS whitelist
	// (bypass-chain stage).
	ReasonDNSWL
	// ReasonRDNS: the client's reverse DNS looks like a legitimate
	// mail server (bypass-chain stage).
	ReasonRDNS
	// ReasonEarnedWhitelist: the client earned a whitelist pass by
	// surviving the triplet dance within Policy.EarnedLifetime.
	ReasonEarnedWhitelist
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonFirstSeen:
		return "first-seen"
	case ReasonTooSoon:
		return "too-soon"
	case ReasonRetryAccepted:
		return "retry-accepted"
	case ReasonKnownTriplet:
		return "known-triplet"
	case ReasonWhitelisted:
		return "whitelisted"
	case ReasonAutoWhitelisted:
		return "auto-whitelisted"
	case ReasonWindowExpired:
		return "window-expired"
	case ReasonDNSWL:
		return "dnswl-listed"
	case ReasonRDNS:
		return "rdns-mailserver"
	case ReasonEarnedWhitelist:
		return "earned-whitelist"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Verdict is the result of a Check.
type Verdict struct {
	Decision Decision
	Reason   Reason
	// WaitRemaining, on a deferral, is how long until a retry would be
	// accepted.
	WaitRemaining time.Duration
	// Waited, on a retry-accepted pass, is how long the delivery was
	// delayed by greylisting (now minus first-seen).
	Waited time.Duration
	// FirstSeen is when the triplet was first observed (zero for
	// whitelist passes).
	FirstSeen time.Time
	// Attempts counts delivery attempts for this triplet including the
	// current one (zero for whitelist passes).
	Attempts int
}

// Stats are cumulative counters; read them with Greylister.Stats.
type Stats struct {
	Checks            uint64
	DeferredNew       uint64 // first-seen deferrals
	DeferredEarly     uint64 // retries before threshold
	DeferredExpired   uint64 // retries after the retry window
	PassedRetry       uint64 // retries accepted past threshold
	PassedKnown       uint64 // already-whitelisted triplets
	PassedWhitelist   uint64 // static whitelist hits
	PassedAutoClient  uint64 // auto-whitelisted clients
	PassedDNSWL       uint64 // DNS-whitelist bypass-stage hits
	PassedRDNS        uint64 // reverse-DNS heuristic bypass-stage hits
	PassedEarned      uint64 // earned-whitelist hits
	PassedBypassOther uint64 // bypasses from stages with custom reasons
	SPFRekeyed        uint64 // checks keyed by SPF domain instead of IP
	EarnedGranted     uint64 // earned-whitelist entries granted
	TripletsRecorded  uint64
	TripletsWhitelist uint64 // triplets promoted to passed
	GCSweeps          uint64 // GC invocations
	GCDropped         uint64 // records dropped by GC
}

// add accumulates o into s; Sharded aggregation and snapshot resharding
// both sum per-shard stats through it.
func (s *Stats) add(o Stats) {
	s.Checks += o.Checks
	s.DeferredNew += o.DeferredNew
	s.DeferredEarly += o.DeferredEarly
	s.DeferredExpired += o.DeferredExpired
	s.PassedRetry += o.PassedRetry
	s.PassedKnown += o.PassedKnown
	s.PassedWhitelist += o.PassedWhitelist
	s.PassedAutoClient += o.PassedAutoClient
	s.PassedDNSWL += o.PassedDNSWL
	s.PassedRDNS += o.PassedRDNS
	s.PassedEarned += o.PassedEarned
	s.PassedBypassOther += o.PassedBypassOther
	s.SPFRekeyed += o.SPFRekeyed
	s.EarnedGranted += o.EarnedGranted
	s.TripletsRecorded += o.TripletsRecorded
	s.TripletsWhitelist += o.TripletsWhitelist
	s.GCSweeps += o.GCSweeps
	s.GCDropped += o.GCDropped
}

// counters are the live Stats, kept as atomics so the read-locked fast
// path (and concurrent fast-path checks racing each other) can count
// without the exclusive lock.
type counters struct {
	checks            atomic.Uint64
	deferredNew       atomic.Uint64
	deferredEarly     atomic.Uint64
	deferredExpired   atomic.Uint64
	passedRetry       atomic.Uint64
	passedKnown       atomic.Uint64
	passedWhitelist   atomic.Uint64
	passedAutoClient  atomic.Uint64
	passedDNSWL       atomic.Uint64
	passedRDNS        atomic.Uint64
	passedEarned      atomic.Uint64
	passedBypassOther atomic.Uint64
	spfRekeyed        atomic.Uint64
	earnedGranted     atomic.Uint64
	tripletsRecorded  atomic.Uint64
	tripletsWhitelist atomic.Uint64
	gcSweeps          atomic.Uint64
	gcDropped         atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Checks:            c.checks.Load(),
		DeferredNew:       c.deferredNew.Load(),
		DeferredEarly:     c.deferredEarly.Load(),
		DeferredExpired:   c.deferredExpired.Load(),
		PassedRetry:       c.passedRetry.Load(),
		PassedKnown:       c.passedKnown.Load(),
		PassedWhitelist:   c.passedWhitelist.Load(),
		PassedAutoClient:  c.passedAutoClient.Load(),
		PassedDNSWL:       c.passedDNSWL.Load(),
		PassedRDNS:        c.passedRDNS.Load(),
		PassedEarned:      c.passedEarned.Load(),
		PassedBypassOther: c.passedBypassOther.Load(),
		SPFRekeyed:        c.spfRekeyed.Load(),
		EarnedGranted:     c.earnedGranted.Load(),
		TripletsRecorded:  c.tripletsRecorded.Load(),
		TripletsWhitelist: c.tripletsWhitelist.Load(),
		GCSweeps:          c.gcSweeps.Load(),
		GCDropped:         c.gcDropped.Load(),
	}
}

func (c *counters) restore(s Stats) {
	c.checks.Store(s.Checks)
	c.deferredNew.Store(s.DeferredNew)
	c.deferredEarly.Store(s.DeferredEarly)
	c.deferredExpired.Store(s.DeferredExpired)
	c.passedRetry.Store(s.PassedRetry)
	c.passedKnown.Store(s.PassedKnown)
	c.passedWhitelist.Store(s.PassedWhitelist)
	c.passedAutoClient.Store(s.PassedAutoClient)
	c.passedDNSWL.Store(s.PassedDNSWL)
	c.passedRDNS.Store(s.PassedRDNS)
	c.passedEarned.Store(s.PassedEarned)
	c.passedBypassOther.Store(s.PassedBypassOther)
	c.spfRekeyed.Store(s.SPFRekeyed)
	c.earnedGranted.Store(s.EarnedGranted)
	c.tripletsRecorded.Store(s.TripletsRecorded)
	c.tripletsWhitelist.Store(s.TripletsWhitelist)
	c.gcSweeps.Store(s.GCSweeps)
	c.gcDropped.Store(s.GCDropped)
}

// pendingRecord tracks a deferred triplet. Only touched under the write
// lock (deferrals always mutate state).
type pendingRecord struct {
	firstSeen time.Time
	lastSeen  time.Time
	attempts  int
}

// passedRecord tracks a whitelisted triplet. passedAt is immutable after
// creation; lastUsed/deliveries are atomics (unix nanoseconds / count)
// so read-locked hits can refresh them concurrently.
type passedRecord struct {
	passedAt   time.Time
	lastUsed   atomic.Int64
	deliveries atomic.Int64
}

// clientRecord tracks a client's auto-whitelist credit; fields are
// atomics for the same reason as passedRecord.
type clientRecord struct {
	deliveries atomic.Int64
	lastUsed   atomic.Int64
}

// earnedRecord tracks an earned-whitelist grant, keyed by the client
// component of the triplet key (so an SPF-rekeyed domain shares one
// grant across all its outbound IPs). grantedAt is immutable after
// creation; lastUsed/deliveries are atomics so read-locked hits renew
// the expiry timer concurrently.
type earnedRecord struct {
	grantedAt  time.Time
	lastUsed   atomic.Int64
	deliveries atomic.Int64
}

// Greylister is the policy engine. It is safe for concurrent use.
type Greylister struct {
	policy    Policy
	clock     simtime.Clock
	whitelist *Whitelist

	// chain is the bypass chain evaluated ahead of the triplet check.
	// Swapped whole via SetChain (chains are immutable), so check
	// paths pay one atomic load. Never nil after New.
	chain atomic.Pointer[Chain]

	stats counters
	// inst holds the optional metrics instrumentation (latency and batch
	// histograms) installed by Register. Nil until then, so unregistered
	// engines pay only one atomic pointer load per check.
	inst atomic.Pointer[instruments]
	// obsv holds the optional verdict observer feeding the live
	// observatory (SetObserver). Same nil-until-installed discipline
	// as inst: unobserved engines pay one atomic load per check.
	obsv atomic.Pointer[Observer]

	mu      sync.RWMutex
	pending map[string]*pendingRecord
	passed  map[string]*passedRecord
	clients map[string]*clientRecord
	earned  map[string]*earnedRecord

	// wal, when non-nil, journals every table mutation (see wal.go).
	// Read under either lock mode; attached and detached only under the
	// exclusive lock, so a plain pointer is race-free and the fast path
	// pays a single nil test when no WAL is configured.
	wal *WAL
}

// New returns a Greylister with the given policy. A nil clock means the
// real clock.
func New(policy Policy, clock simtime.Clock) *Greylister {
	if clock == nil {
		clock = simtime.Real{}
	}
	g := &Greylister{
		policy:    policy,
		clock:     clock,
		whitelist: NewWhitelist(),
		pending:   make(map[string]*pendingRecord),
		passed:    make(map[string]*passedRecord),
		clients:   make(map[string]*clientRecord),
		earned:    make(map[string]*earnedRecord),
	}
	// The default chain is the classic behaviour: static whitelist,
	// then the triplet check.
	g.chain.Store(NewChain(WhitelistStage(g.whitelist)))
	return g
}

// Policy returns the configured policy.
func (g *Greylister) Policy() Policy { return g.policy }

// Whitelist returns the static whitelist for configuration.
func (g *Greylister) Whitelist() *Whitelist { return g.whitelist }

// SetChain installs a bypass chain, replacing the current one for all
// subsequent checks (in-flight checks finish on the chain they loaded).
// A nil chain restores the default whitelist-only chain. Call before
// Register if per-stage metrics should cover the new stages.
func (g *Greylister) SetChain(c *Chain) {
	if c == nil {
		c = NewChain(WhitelistStage(g.whitelist))
	}
	g.chain.Store(c)
}

// Chain returns the currently installed bypass chain.
func (g *Greylister) Chain() *Chain { return g.chain.Load() }

// Stats returns a snapshot of the counters.
func (g *Greylister) Stats() Stats { return g.stats.snapshot() }

// Check runs the greylisting decision procedure for one delivery attempt
// and updates state accordingly.
//
// The common serving-path cases — static whitelist, auto-whitelisted
// client, already-passed triplet — complete without allocating and
// without the exclusive lock. With metrics registered, the wall-clock
// decision latency lands in the greylist_check_seconds histogram —
// still allocation-free.
func (g *Greylister) Check(t Triplet) Verdict {
	out, _ := g.chain.Load().eval(t)
	return g.routedCheck(t, out, nil)
}

// CheckTraced is Check with the verdict recorded into tr — the
// triplet key, decision, reason, wait remaining and attempt count —
// and, when metrics are registered, the check latency observed with
// tr's ID as the histogram bucket's exemplar, so a slow bucket on
// /debug/traces links to this very conversation. A nil trace is
// exactly Check: the hot path is untouched.
func (g *Greylister) CheckTraced(t Triplet, tr *trace.Trace) Verdict {
	if tr == nil {
		return g.Check(t)
	}
	ch := g.chain.Load()
	out, idx := ch.eval(t)
	if idx >= 0 {
		tr.Bypass(ch.StageName(idx), out.Action.String())
	}
	return g.routedCheck(t, out, tr)
}

// routedCheck is the post-chain decision entry: the chain has already
// been evaluated (by this engine's Check/CheckTraced, or by Sharded
// *before* shard routing, since a rekey changes which shard owns the
// state). It applies latency instrumentation and trace recording
// around decide.
func (g *Greylister) routedCheck(t Triplet, out StageOutcome, tr *trace.Trace) Verdict {
	var v Verdict
	inst := g.inst.Load()
	op := g.obsv.Load()
	if inst != nil || op != nil {
		start := time.Now()
		v = g.decide(t, out)
		elapsed := time.Since(start)
		if inst != nil {
			if tr != nil {
				inst.checkSeconds.ObserveDurationExemplar(elapsed, tr.ID())
			} else {
				inst.checkSeconds.ObserveDuration(elapsed)
			}
		}
		if op != nil {
			(*op).ObserveVerdict(t, v, int64(elapsed))
		}
	} else {
		v = g.decide(t, out)
	}
	if tr != nil {
		tr.Greylist(v.Decision.String(), v.Reason.String(), t.String(), v.WaitRemaining, v.Attempts)
	}
	return v
}

// decide turns one chain-evaluated attempt into a verdict: a bypass
// passes outright; otherwise the triplet check runs under the client
// key the chain chose (the IP, or the SPF domain on a rekey).
func (g *Greylister) decide(t Triplet, out StageOutcome) Verdict {
	now := g.clock.Now()
	g.stats.checks.Add(1)

	if out.Action == StageBypass {
		g.countBypass(out.Reason)
		return Verdict{Decision: Pass, Reason: out.Reason}
	}
	rekey := out.rekey()
	if rekey != "" {
		g.stats.spfRekeyed.Add(1)
	}

	var ckBuf, kBuf [keyBufCap]byte
	clientKey := appendChainClientKey(ckBuf[:0], t.ClientIP, rekey, g.policy.SubnetKeying)
	key := t.appendKey(kBuf[:0], clientKey)

	g.mu.RLock()
	v, ok := g.fastPath(clientKey, key, now)
	g.mu.RUnlock()
	if ok {
		return v
	}

	g.mu.Lock()
	v = g.checkSlow(clientKey, key, now)
	g.mu.Unlock()
	return v
}

// countBypass attributes a chain bypass verdict to its Stats counter.
func (g *Greylister) countBypass(r Reason) {
	switch r {
	case ReasonWhitelisted:
		g.stats.passedWhitelist.Add(1)
	case ReasonDNSWL:
		g.stats.passedDNSWL.Add(1)
	case ReasonRDNS:
		g.stats.passedRDNS.Add(1)
	default:
		g.stats.passedBypassOther.Add(1)
	}
}

// fastPath attempts the read-only decision: an auto-whitelisted client or
// a known-passed triplet. It runs under the read lock and mutates nothing
// but atomic fields. The second return value reports whether the verdict
// is final; false sends the caller to the write-locked slow path (unknown
// triplet, expired record to delete, or a client record to create).
func (g *Greylister) fastPath(clientKey, key []byte, now time.Time) (Verdict, bool) {
	nowNs := now.UnixNano()
	if g.policy.EarnedLifetime > 0 {
		if e, ok := g.earned[string(clientKey)]; ok {
			if nowNs-e.lastUsed.Load() > int64(g.policy.EarnedLifetime) {
				return Verdict{}, false // expired: slow path deletes it
			}
			e.lastUsed.Store(nowNs) // auto-renew on use
			e.deliveries.Add(1)
			if w := g.wal; w != nil {
				w.append(walOpEarnTouch, key, nowNs, 0, 0)
			}
			g.stats.passedEarned.Add(1)
			return Verdict{Decision: Pass, Reason: ReasonEarnedWhitelist, FirstSeen: e.grantedAt}, true
		}
	}
	if g.policy.AutoWhitelistAfter > 0 {
		if c, ok := g.clients[string(clientKey)]; ok {
			if g.policy.AutoWhitelistLifetime > 0 && nowNs-c.lastUsed.Load() > int64(g.policy.AutoWhitelistLifetime) {
				return Verdict{}, false // stale: slow path deletes it
			}
			if int(c.deliveries.Load()) >= g.policy.AutoWhitelistAfter {
				c.lastUsed.Store(nowNs)
				if w := g.wal; w != nil {
					w.append(walOpAutoPass, key, nowNs, 0, 0)
				}
				g.stats.passedAutoClient.Add(1)
				return Verdict{Decision: Pass, Reason: ReasonAutoWhitelisted}, true
			}
		}
	}

	p, ok := g.passed[string(key)]
	if !ok {
		return Verdict{}, false
	}
	if g.policy.PassLifetime > 0 && nowNs-p.lastUsed.Load() > int64(g.policy.PassLifetime) {
		return Verdict{}, false // expired: slow path deletes it
	}
	var c *clientRecord
	if g.policy.AutoWhitelistAfter > 0 {
		if c, ok = g.clients[string(clientKey)]; !ok {
			// First credit for this client allocates its record:
			// that's the slow path's job.
			return Verdict{}, false
		}
	}
	p.lastUsed.Store(nowNs)
	n := p.deliveries.Add(1)
	if c != nil {
		c.deliveries.Add(1)
		c.lastUsed.Store(nowNs)
	}
	if w := g.wal; w != nil {
		w.append(walOpTouch, key, nowNs, 0, 0)
	}
	g.stats.passedKnown.Add(1)
	return Verdict{Decision: Pass, Reason: ReasonKnownTriplet, FirstSeen: p.passedAt, Attempts: int(n)}, true
}

// checkSlow is the write-locked decision procedure. Callers hold g.mu
// exclusively. It re-runs the whole check (state may have changed between
// the read and write lock) and performs every mutation the fast path
// cannot: record creation, promotion, expiry deletion.
func (g *Greylister) checkSlow(clientKey, key []byte, now time.Time) Verdict {
	nowNs := now.UnixNano()

	if g.policy.EarnedLifetime > 0 {
		if e, ok := g.earned[string(clientKey)]; ok {
			if nowNs-e.lastUsed.Load() > int64(g.policy.EarnedLifetime) {
				delete(g.earned, string(clientKey))
				if w := g.wal; w != nil {
					w.append(walOpDelEarned, key, 0, 0, 0)
				}
			} else {
				e.lastUsed.Store(nowNs)
				e.deliveries.Add(1)
				if w := g.wal; w != nil {
					w.append(walOpEarnTouch, key, nowNs, 0, 0)
				}
				g.stats.passedEarned.Add(1)
				return Verdict{Decision: Pass, Reason: ReasonEarnedWhitelist, FirstSeen: e.grantedAt}
			}
		}
	}

	if g.policy.AutoWhitelistAfter > 0 {
		if c, ok := g.clients[string(clientKey)]; ok {
			if g.policy.AutoWhitelistLifetime > 0 && nowNs-c.lastUsed.Load() > int64(g.policy.AutoWhitelistLifetime) {
				delete(g.clients, string(clientKey))
				if w := g.wal; w != nil {
					w.append(walOpDelClient, key, 0, 0, 0)
				}
			} else if int(c.deliveries.Load()) >= g.policy.AutoWhitelistAfter {
				c.lastUsed.Store(nowNs)
				if w := g.wal; w != nil {
					w.append(walOpAutoPass, key, nowNs, 0, 0)
				}
				g.stats.passedAutoClient.Add(1)
				return Verdict{Decision: Pass, Reason: ReasonAutoWhitelisted}
			}
		}
	}

	if p, ok := g.passed[string(key)]; ok {
		if g.policy.PassLifetime > 0 && nowNs-p.lastUsed.Load() > int64(g.policy.PassLifetime) {
			delete(g.passed, string(key))
			if w := g.wal; w != nil {
				w.append(walOpDelPassed, key, 0, 0, 0)
			}
		} else {
			p.lastUsed.Store(nowNs)
			n := p.deliveries.Add(1)
			g.creditClient(clientKey, nowNs)
			if w := g.wal; w != nil {
				w.append(walOpTouch, key, nowNs, 0, 0)
			}
			g.stats.passedKnown.Add(1)
			return Verdict{Decision: Pass, Reason: ReasonKnownTriplet, FirstSeen: p.passedAt, Attempts: int(n)}
		}
	}

	rec, known := g.pending[string(key)]
	if known && g.policy.RetryWindow > 0 && now.Sub(rec.firstSeen) > g.policy.RetryWindow {
		// The retry came too late: start over.
		g.stats.deferredExpired.Add(1)
		rec.firstSeen = now
		rec.lastSeen = now
		rec.attempts = 1
		if w := g.wal; w != nil {
			w.append(walOpPendingUpsert, key, nowNs, nowNs, 1)
		}
		return Verdict{
			Decision:      Defer,
			Reason:        ReasonWindowExpired,
			WaitRemaining: g.policy.Threshold,
			FirstSeen:     now,
			Attempts:      1,
		}
	}

	if !known {
		g.pending[string(key)] = &pendingRecord{firstSeen: now, lastSeen: now, attempts: 1}
		if w := g.wal; w != nil {
			w.append(walOpPendingUpsert, key, nowNs, nowNs, 1)
		}
		g.stats.deferredNew.Add(1)
		g.stats.tripletsRecorded.Add(1)
		return Verdict{
			Decision:      Defer,
			Reason:        ReasonFirstSeen,
			WaitRemaining: g.policy.Threshold,
			FirstSeen:     now,
			Attempts:      1,
		}
	}

	rec.attempts++
	rec.lastSeen = now
	elapsed := now.Sub(rec.firstSeen)
	if elapsed < g.policy.Threshold {
		if w := g.wal; w != nil {
			w.append(walOpPendingUpsert, key, rec.firstSeen.UnixNano(), nowNs, uint32(rec.attempts))
		}
		g.stats.deferredEarly.Add(1)
		return Verdict{
			Decision:      Defer,
			Reason:        ReasonTooSoon,
			WaitRemaining: g.policy.Threshold - elapsed,
			FirstSeen:     rec.firstSeen,
			Attempts:      rec.attempts,
		}
	}

	// Retry accepted: promote to passed.
	delete(g.pending, string(key))
	p := &passedRecord{passedAt: now}
	p.lastUsed.Store(nowNs)
	p.deliveries.Store(1)
	g.passed[string(key)] = p
	g.creditClient(clientKey, nowNs)
	if g.grantEarned(clientKey, now) {
		g.stats.earnedGranted.Add(1)
	}
	if w := g.wal; w != nil {
		// No separate grant record: replaying the promote re-grants
		// the earned entry whenever the policy enables it, mirroring
		// this very mutation.
		w.append(walOpPromote, key, nowNs, 0, 0)
	}
	g.stats.passedRetry.Add(1)
	g.stats.tripletsWhitelist.Add(1)
	return Verdict{
		Decision:  Pass,
		Reason:    ReasonRetryAccepted,
		FirstSeen: rec.firstSeen,
		Attempts:  rec.attempts,
		Waited:    elapsed,
	}
}

// CheckBatch decides a run of delivery attempts (e.g. a pipelined burst
// of RCPTs) sharing one timestamp and one trip through the store's
// locks: a single read-lock pass decides every fast-path attempt, and
// only the misses take the exclusive lock, once, together.
//
// The result slice is out when it has sufficient capacity (letting
// callers reuse one slice across batches), a fresh allocation otherwise.
// Verdicts are positionally matched to ts. Semantics are identical to
// calling Check on each triplet in order at the same instant.
func (g *Greylister) CheckBatch(ts []Triplet, out []Verdict) []Verdict {
	inst := g.inst.Load()
	op := g.obsv.Load()
	if inst == nil && op == nil {
		return g.checkBatch(ts, out)
	}
	start := time.Now()
	out = g.checkBatch(ts, out)
	elapsed := time.Since(start)
	if inst != nil {
		inst.batchSeconds.ObserveDuration(elapsed)
		inst.batchSize.Observe(float64(len(ts)))
	}
	if op != nil && len(ts) > 0 {
		// Batch verdicts share the amortized per-RCPT latency, the
		// same accounting the batch path uses for its locks.
		per := int64(elapsed) / int64(len(ts))
		for i := range ts {
			(*op).ObserveVerdict(ts[i], out[i], per)
		}
	}
	return out
}

func (g *Greylister) checkBatch(ts []Triplet, out []Verdict) []Verdict {
	out = verdictSlice(out, len(ts))
	if len(ts) == 0 {
		return out
	}
	g.stats.checks.Add(uint64(len(ts)))

	// Evaluate the chain before (and outside) the store locks: stages
	// may do DNS I/O on a cache miss, which must never run under the
	// read lock the fast path shares with every other connection.
	// Bypass verdicts complete here; out[i].Decision == 0 marks the
	// attempts the store must decide. The rekey slice is only
	// allocated when some stage actually rekeys, keeping the
	// chain-negative batch allocation-free.
	ch := g.chain.Load()
	var rekeys []string
	for i, t := range ts {
		o, _ := ch.eval(t)
		switch o.Action {
		case StageBypass:
			g.countBypass(o.Reason)
			out[i] = Verdict{Decision: Pass, Reason: o.Reason}
		case StageRekey:
			g.stats.spfRekeyed.Add(1)
			if rekeys == nil {
				rekeys = make([]string, len(ts))
			}
			rekeys[i] = o.Domain
			out[i] = Verdict{}
		default:
			out[i] = Verdict{}
		}
	}
	return g.storeBatch(ts, rekeys, out)
}

// storeBatchTimed wraps storeBatch with the engine's batch histograms;
// the Sharded engine calls it per shard group so per-shard batch sizes
// and latencies land in the same series the single engine reports.
func (g *Greylister) storeBatchTimed(ts []Triplet, rekeys []string, out []Verdict) []Verdict {
	if inst := g.inst.Load(); inst != nil {
		start := time.Now()
		out = g.storeBatch(ts, rekeys, out)
		inst.batchSeconds.ObserveDuration(time.Since(start))
		inst.batchSize.Observe(float64(len(ts)))
		return out
	}
	return g.storeBatch(ts, rekeys, out)
}

// storeBatch runs the triplet check for every attempt whose verdict in
// out is still zero (chain-undecided), sharing one clock read and one
// trip through the locks. rekeys, when non-nil, carries the per-attempt
// key domain ("" = key by client IP). Callers have already counted
// stats.checks and chain outcomes.
func (g *Greylister) storeBatch(ts []Triplet, rekeys []string, out []Verdict) []Verdict {
	now := g.clock.Now()

	var kb keyBuilder
	var miss []int

	g.mu.RLock()
	for i := range ts {
		if out[i].Decision != 0 {
			continue
		}
		rk := ""
		if rekeys != nil {
			rk = rekeys[i]
		}
		clientKey, key := kb.build(ts[i], rk, g.policy.SubnetKeying)
		if v, ok := g.fastPath(clientKey, key, now); ok {
			out[i] = v
		} else {
			miss = append(miss, i)
		}
	}
	g.mu.RUnlock()

	if len(miss) == 0 {
		return out
	}
	g.mu.Lock()
	for _, i := range miss {
		rk := ""
		if rekeys != nil {
			rk = rekeys[i]
		}
		clientKey, key := kb.build(ts[i], rk, g.policy.SubnetKeying)
		out[i] = g.checkSlow(clientKey, key, now)
	}
	g.mu.Unlock()
	return out
}

// keyBuilder amortizes key construction across a batch. A pipelined
// RCPT burst shares one client and one sender, so the (clientKey, NUL,
// lowercased sender, NUL) prefix is identical for every triplet; the
// builder caches it and rebuilds only the recipient suffix until the
// client or sender string changes.
type keyBuilder struct {
	ckBuf, kBuf          [keyBufCap]byte
	clientKey, prefix    []byte
	prevClient, prevSend string
	prevRekey            string
	valid                bool
}

// build returns (clientKey, storage key) for t, keying the client
// component by rekey (an SPF domain) when non-empty. Both results share
// the builder's buffers and are invalidated by the next call.
func (kb *keyBuilder) build(t Triplet, rekey string, subnet bool) (clientKey, key []byte) {
	if !kb.valid || t.ClientIP != kb.prevClient || rekey != kb.prevRekey {
		kb.clientKey = appendChainClientKey(kb.ckBuf[:0], t.ClientIP, rekey, subnet)
		kb.prevClient = t.ClientIP
		kb.prevRekey = rekey
		kb.valid = true
		kb.prefix = nil
	}
	if kb.prefix == nil || t.Sender != kb.prevSend {
		p := append(kb.kBuf[:0], kb.clientKey...)
		p = append(p, 0)
		p = appendLower(p, t.Sender)
		kb.prefix = append(p, 0)
		kb.prevSend = t.Sender
	}
	return kb.clientKey, appendLower(kb.prefix, t.Recipient)
}

// verdictSlice returns out resized to n, reusing its backing array when
// possible. Every element is overwritten by the caller.
func verdictSlice(out []Verdict, n int) []Verdict {
	if cap(out) < n {
		return make([]Verdict, n)
	}
	return out[:n]
}

// creditClient counts a successful delivery toward the client
// auto-whitelist. Callers hold g.mu exclusively.
func (g *Greylister) creditClient(clientKey []byte, nowNs int64) {
	if g.policy.AutoWhitelistAfter <= 0 {
		return
	}
	c, ok := g.clients[string(clientKey)]
	if !ok {
		c = &clientRecord{}
		g.clients[string(clientKey)] = c
	}
	c.deliveries.Add(1)
	c.lastUsed.Store(nowNs)
}

// grantEarned records an earned-whitelist grant for the client key
// after a promote, reporting whether a new entry was created
// (re-granting an existing one just renews it). Callers hold g.mu
// exclusively. Stats are the caller's job: WAL replay shares this
// mutation but must leave counters frozen.
func (g *Greylister) grantEarned(clientKey []byte, now time.Time) bool {
	if g.policy.EarnedLifetime <= 0 {
		return false
	}
	e, ok := g.earned[string(clientKey)]
	if !ok {
		e = &earnedRecord{grantedAt: now}
		g.earned[string(clientKey)] = e
	}
	e.lastUsed.Store(now.UnixNano())
	return !ok
}

// GC removes expired pending and passed records and stale auto-whitelist
// entries, returning how many were dropped. Deployments run this
// periodically; experiments call it between phases.
func (g *Greylister) GC() int {
	now := g.clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	// One keyless record replays the whole sweep: the expiry decisions
	// are a pure function of the tables and the sweep time.
	if w := g.wal; w != nil {
		w.append(walOpGC, nil, now.UnixNano(), 0, 0)
	}
	dropped := g.gcLocked(now)
	g.stats.gcSweeps.Add(1)
	g.stats.gcDropped.Add(uint64(dropped))
	return dropped
}

// gcLocked sweeps expired records at the given instant, returning how
// many were dropped. Callers hold g.mu exclusively. Split from GC so
// WAL replay can re-run a logged sweep without touching Stats or
// re-journaling it.
func (g *Greylister) gcLocked(now time.Time) int {
	nowNs := now.UnixNano()
	dropped := 0
	if g.policy.RetryWindow > 0 {
		for k, rec := range g.pending {
			if now.Sub(rec.firstSeen) > g.policy.RetryWindow {
				delete(g.pending, k)
				dropped++
			}
		}
	}
	if g.policy.PassLifetime > 0 {
		for k, rec := range g.passed {
			if nowNs-rec.lastUsed.Load() > int64(g.policy.PassLifetime) {
				delete(g.passed, k)
				dropped++
			}
		}
	}
	if g.policy.AutoWhitelistLifetime > 0 {
		for k, rec := range g.clients {
			if nowNs-rec.lastUsed.Load() > int64(g.policy.AutoWhitelistLifetime) {
				delete(g.clients, k)
				dropped++
			}
		}
	}
	if g.policy.EarnedLifetime > 0 {
		for k, rec := range g.earned {
			if nowNs-rec.lastUsed.Load() > int64(g.policy.EarnedLifetime) {
				delete(g.earned, k)
				dropped++
			}
		}
	}
	return dropped
}

// PendingCount and PassedCount report table sizes (for monitoring and the
// paper's "cost for the system ... disk space" discussion).
func (g *Greylister) PendingCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.pending)
}

// PassedCount reports the number of whitelisted triplets.
func (g *Greylister) PassedCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.passed)
}

// ClientCount reports the number of auto-whitelist client records.
func (g *Greylister) ClientCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.clients)
}

// EarnedCount reports the number of earned-whitelist records.
func (g *Greylister) EarnedCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.earned)
}
