// Package greylist implements the greylisting policy engine — one half of
// the paper's subject matter (Section II). The semantics follow Postgrey,
// the implementation the paper tested against:
//
//   - Deliveries are keyed by the triplet (client IP, envelope sender,
//     envelope recipient). The message content is deliberately NOT part of
//     the key; Section V-A of the paper verifies this is why a later,
//     different message between the same parties is whitelisted by the
//     earlier one's retry.
//   - The first attempt for an unknown triplet is deferred with a
//     transient error (451 4.7.1 at the SMTP layer).
//   - A retry after the threshold has elapsed — but within the retry
//     window — passes and records the triplet for future deliveries.
//   - A retry before the threshold is deferred again without resetting
//     the first-seen time (Postgrey behaviour; the paper's 5 s vs 300 s
//     comparison in Figure 3 depends on it).
//   - After a configurable number of successful deliveries, the client IP
//     (optionally its /24 network) is auto-whitelisted, skipping the
//     triplet dance entirely.
//
// The package is transport-agnostic: the SMTP server calls Check at RCPT
// time and maps the verdict to a reply. All time flows through a
// simtime.Clock so thresholds of hours run in simulated instants.
package greylist

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/simtime"
)

// Triplet identifies a delivery for greylisting purposes.
type Triplet struct {
	// ClientIP is the connecting client's IP address (no port).
	ClientIP string
	// Sender is the envelope reverse-path mailbox ("" for bounces).
	Sender string
	// Recipient is the envelope forward-path mailbox.
	Recipient string
}

// String implements fmt.Stringer.
func (t Triplet) String() string {
	return fmt.Sprintf("(%s, %s, %s)", t.ClientIP, t.Sender, t.Recipient)
}

// key returns the storage key, collapsing the client address to its /24
// network when subnet keying is enabled (Postgrey's --lookup-by-subnet,
// which tolerates webmail farms rotating through nearby addresses —
// the failure mode Table III documents).
func (t Triplet) key(subnet bool) string {
	ip := t.ClientIP
	if subnet {
		ip = SubnetOf(ip)
	}
	return ip + "\x00" + strings.ToLower(t.Sender) + "\x00" + strings.ToLower(t.Recipient)
}

// SubnetOf maps an IPv4 address to its /24 network ("a.b.c"). Non-IPv4
// input is returned unchanged.
func SubnetOf(ip string) string {
	parsed := net.ParseIP(ip)
	if v4 := parsed.To4(); v4 != nil {
		return fmt.Sprintf("%d.%d.%d", v4[0], v4[1], v4[2])
	}
	return ip
}

// Policy configures a Greylister. The zero value is not useful; start from
// DefaultPolicy.
type Policy struct {
	// Threshold is the minimum wait between the first attempt and an
	// accepted retry (Postgrey --delay; default 300 s). The paper
	// evaluates 5 s, 300 s and 21 600 s.
	Threshold time.Duration
	// RetryWindow is how long a deferred triplet stays valid awaiting
	// its retry. A retry after the window is treated as a fresh first
	// attempt (Postgrey --retry-window).
	RetryWindow time.Duration
	// PassLifetime is how long a passed triplet stays whitelisted
	// after its last use (Postgrey --max-age).
	PassLifetime time.Duration
	// AutoWhitelistAfter is the number of successful deliveries after
	// which the client address is whitelisted outright; 0 disables
	// client auto-whitelisting (Postgrey --auto-whitelist-clients).
	AutoWhitelistAfter int
	// AutoWhitelistLifetime is how long an auto-whitelisted client
	// stays exempt after its last delivery.
	AutoWhitelistLifetime time.Duration
	// SubnetKeying keys triplets and the auto-whitelist by the client's
	// /24 network instead of the full address.
	SubnetKeying bool
}

// DefaultPolicy returns Postgrey's defaults: 300 s delay, 2-day retry
// window, 35-day pass lifetime, client auto-whitelist after 5 deliveries.
func DefaultPolicy() Policy {
	return Policy{
		Threshold:             300 * time.Second,
		RetryWindow:           48 * time.Hour,
		PassLifetime:          35 * 24 * time.Hour,
		AutoWhitelistAfter:    5,
		AutoWhitelistLifetime: 35 * 24 * time.Hour,
	}
}

// Decision is the outcome of a greylisting check.
type Decision int

// Decisions.
const (
	// Defer tells the server to reply with a transient error.
	Defer Decision = iota + 1
	// Pass tells the server to accept the delivery.
	Pass
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Defer:
		return "defer"
	case Pass:
		return "pass"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Reason explains a Verdict.
type Reason int

// Reasons.
const (
	// ReasonFirstSeen: unknown triplet, deferred and recorded.
	ReasonFirstSeen Reason = iota + 1
	// ReasonTooSoon: retry arrived before the threshold elapsed.
	ReasonTooSoon
	// ReasonRetryAccepted: retry arrived after the threshold; the
	// triplet is now whitelisted.
	ReasonRetryAccepted
	// ReasonKnownTriplet: the triplet passed previously.
	ReasonKnownTriplet
	// ReasonWhitelisted: client, sender domain or recipient is on the
	// static whitelist.
	ReasonWhitelisted
	// ReasonAutoWhitelisted: the client earned the auto-whitelist.
	ReasonAutoWhitelisted
	// ReasonWindowExpired: a retry arrived after the retry window;
	// treated as a fresh first attempt (and deferred).
	ReasonWindowExpired
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonFirstSeen:
		return "first-seen"
	case ReasonTooSoon:
		return "too-soon"
	case ReasonRetryAccepted:
		return "retry-accepted"
	case ReasonKnownTriplet:
		return "known-triplet"
	case ReasonWhitelisted:
		return "whitelisted"
	case ReasonAutoWhitelisted:
		return "auto-whitelisted"
	case ReasonWindowExpired:
		return "window-expired"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Verdict is the result of a Check.
type Verdict struct {
	Decision Decision
	Reason   Reason
	// WaitRemaining, on a deferral, is how long until a retry would be
	// accepted.
	WaitRemaining time.Duration
	// Waited, on a retry-accepted pass, is how long the delivery was
	// delayed by greylisting (now minus first-seen).
	Waited time.Duration
	// FirstSeen is when the triplet was first observed (zero for
	// whitelist passes).
	FirstSeen time.Time
	// Attempts counts delivery attempts for this triplet including the
	// current one (zero for whitelist passes).
	Attempts int
}

// Stats are cumulative counters; read them with Greylister.Stats.
type Stats struct {
	Checks            uint64
	DeferredNew       uint64 // first-seen deferrals
	DeferredEarly     uint64 // retries before threshold
	DeferredExpired   uint64 // retries after the retry window
	PassedRetry       uint64 // retries accepted past threshold
	PassedKnown       uint64 // already-whitelisted triplets
	PassedWhitelist   uint64 // static whitelist hits
	PassedAutoClient  uint64 // auto-whitelisted clients
	TripletsRecorded  uint64
	TripletsWhitelist uint64 // triplets promoted to passed
}

type pendingRecord struct {
	firstSeen time.Time
	lastSeen  time.Time
	attempts  int
}

type passedRecord struct {
	passedAt   time.Time
	lastUsed   time.Time
	deliveries int
}

type clientRecord struct {
	deliveries int
	lastUsed   time.Time
}

// Greylister is the policy engine. It is safe for concurrent use.
type Greylister struct {
	policy    Policy
	clock     simtime.Clock
	whitelist *Whitelist

	mu      sync.Mutex
	pending map[string]*pendingRecord
	passed  map[string]*passedRecord
	clients map[string]*clientRecord
	stats   Stats
}

// New returns a Greylister with the given policy. A nil clock means the
// real clock.
func New(policy Policy, clock simtime.Clock) *Greylister {
	if clock == nil {
		clock = simtime.Real{}
	}
	return &Greylister{
		policy:    policy,
		clock:     clock,
		whitelist: NewWhitelist(),
		pending:   make(map[string]*pendingRecord),
		passed:    make(map[string]*passedRecord),
		clients:   make(map[string]*clientRecord),
	}
}

// Policy returns the configured policy.
func (g *Greylister) Policy() Policy { return g.policy }

// Whitelist returns the static whitelist for configuration.
func (g *Greylister) Whitelist() *Whitelist { return g.whitelist }

// Stats returns a snapshot of the counters.
func (g *Greylister) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Check runs the greylisting decision procedure for one delivery attempt
// and updates state accordingly.
func (g *Greylister) Check(t Triplet) Verdict {
	now := g.clock.Now()

	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.Checks++

	if g.whitelist.Match(t) {
		g.stats.PassedWhitelist++
		return Verdict{Decision: Pass, Reason: ReasonWhitelisted}
	}

	clientKey := t.ClientIP
	if g.policy.SubnetKeying {
		clientKey = SubnetOf(t.ClientIP)
	}
	if g.policy.AutoWhitelistAfter > 0 {
		if c, ok := g.clients[clientKey]; ok {
			if g.policy.AutoWhitelistLifetime > 0 && now.Sub(c.lastUsed) > g.policy.AutoWhitelistLifetime {
				delete(g.clients, clientKey)
			} else if c.deliveries >= g.policy.AutoWhitelistAfter {
				c.lastUsed = now
				g.stats.PassedAutoClient++
				return Verdict{Decision: Pass, Reason: ReasonAutoWhitelisted}
			}
		}
	}

	key := t.key(g.policy.SubnetKeying)

	if p, ok := g.passed[key]; ok {
		if g.policy.PassLifetime > 0 && now.Sub(p.lastUsed) > g.policy.PassLifetime {
			delete(g.passed, key)
		} else {
			p.lastUsed = now
			p.deliveries++
			g.creditClient(clientKey, now)
			g.stats.PassedKnown++
			return Verdict{Decision: Pass, Reason: ReasonKnownTriplet, FirstSeen: p.passedAt, Attempts: p.deliveries}
		}
	}

	rec, known := g.pending[key]
	if known && g.policy.RetryWindow > 0 && now.Sub(rec.firstSeen) > g.policy.RetryWindow {
		// The retry came too late: start over.
		g.stats.DeferredExpired++
		rec.firstSeen = now
		rec.lastSeen = now
		rec.attempts = 1
		return Verdict{
			Decision:      Defer,
			Reason:        ReasonWindowExpired,
			WaitRemaining: g.policy.Threshold,
			FirstSeen:     now,
			Attempts:      1,
		}
	}

	if !known {
		g.pending[key] = &pendingRecord{firstSeen: now, lastSeen: now, attempts: 1}
		g.stats.DeferredNew++
		g.stats.TripletsRecorded++
		return Verdict{
			Decision:      Defer,
			Reason:        ReasonFirstSeen,
			WaitRemaining: g.policy.Threshold,
			FirstSeen:     now,
			Attempts:      1,
		}
	}

	rec.attempts++
	rec.lastSeen = now
	elapsed := now.Sub(rec.firstSeen)
	if elapsed < g.policy.Threshold {
		g.stats.DeferredEarly++
		return Verdict{
			Decision:      Defer,
			Reason:        ReasonTooSoon,
			WaitRemaining: g.policy.Threshold - elapsed,
			FirstSeen:     rec.firstSeen,
			Attempts:      rec.attempts,
		}
	}

	// Retry accepted: promote to passed.
	delete(g.pending, key)
	g.passed[key] = &passedRecord{passedAt: now, lastUsed: now, deliveries: 1}
	g.creditClient(clientKey, now)
	g.stats.PassedRetry++
	g.stats.TripletsWhitelist++
	return Verdict{
		Decision:  Pass,
		Reason:    ReasonRetryAccepted,
		FirstSeen: rec.firstSeen,
		Attempts:  rec.attempts,
		Waited:    elapsed,
	}
}

// creditClient counts a successful delivery toward the client
// auto-whitelist. Callers hold g.mu.
func (g *Greylister) creditClient(clientKey string, now time.Time) {
	if g.policy.AutoWhitelistAfter <= 0 {
		return
	}
	c, ok := g.clients[clientKey]
	if !ok {
		c = &clientRecord{}
		g.clients[clientKey] = c
	}
	c.deliveries++
	c.lastUsed = now
}

// GC removes expired pending and passed records and stale auto-whitelist
// entries, returning how many were dropped. Deployments run this
// periodically; experiments call it between phases.
func (g *Greylister) GC() int {
	now := g.clock.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	dropped := 0
	if g.policy.RetryWindow > 0 {
		for k, rec := range g.pending {
			if now.Sub(rec.firstSeen) > g.policy.RetryWindow {
				delete(g.pending, k)
				dropped++
			}
		}
	}
	if g.policy.PassLifetime > 0 {
		for k, rec := range g.passed {
			if now.Sub(rec.lastUsed) > g.policy.PassLifetime {
				delete(g.passed, k)
				dropped++
			}
		}
	}
	if g.policy.AutoWhitelistLifetime > 0 {
		for k, rec := range g.clients {
			if now.Sub(rec.lastUsed) > g.policy.AutoWhitelistLifetime {
				delete(g.clients, k)
				dropped++
			}
		}
	}
	return dropped
}

// PendingCount and PassedCount report table sizes (for monitoring and the
// paper's "cost for the system ... disk space" discussion).
func (g *Greylister) PendingCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.pending)
}

// PassedCount reports the number of whitelisted triplets.
func (g *Greylister) PassedCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.passed)
}
