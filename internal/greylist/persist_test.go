package greylist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(DefaultPolicy(), clock)

	pendingT := Triplet{ClientIP: "203.0.113.9", Sender: "a@x.example", Recipient: "u@foo.net"}
	passedT := Triplet{ClientIP: "203.0.113.10", Sender: "b@x.example", Recipient: "u@foo.net"}
	g.Check(pendingT)
	g.Check(passedT)
	clock.Advance(301 * time.Second)
	g.Check(passedT) // promote to passed

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// A fresh greylister restored from the snapshot must honor both the
	// pending record (retry passes, since >300s elapsed) and the passed
	// record (immediate pass).
	g2 := New(DefaultPolicy(), clock)
	if err := g2.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if v := g2.Check(passedT); v.Decision != Pass || v.Reason != ReasonKnownTriplet {
		t.Fatalf("restored passed triplet = %+v", v)
	}
	if v := g2.Check(pendingT); v.Decision != Pass || v.Reason != ReasonRetryAccepted {
		t.Fatalf("restored pending triplet = %+v (first-seen must survive restart)", v)
	}
	if got := g2.Stats().Checks; got == 0 {
		t.Fatal("stats not restored")
	}
}

func TestLoadGarbage(t *testing.T) {
	g := New(DefaultPolicy(), simtime.NewSim(simtime.Epoch))
	if err := g.Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestSaveLoadPreservesAutoWhitelist(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.AutoWhitelistAfter = 1
	g := New(p, clock)
	tr := Triplet{ClientIP: "198.51.100.3", Sender: "m@b.example", Recipient: "a@foo.net"}
	g.Check(tr)
	clock.Advance(301 * time.Second)
	g.Check(tr) // client now auto-whitelisted

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := New(p, clock)
	if err := g2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	v := g2.Check(Triplet{ClientIP: "198.51.100.3", Sender: "m@b.example", Recipient: "fresh@foo.net"})
	if v.Reason != ReasonAutoWhitelisted {
		t.Fatalf("restored auto-whitelist = %+v", v)
	}
}

func TestSaveFileLoadFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.db")

	clock := simtime.NewSim(simtime.Epoch)
	g := New(DefaultPolicy(), clock)
	tr := Triplet{ClientIP: "203.0.113.4", Sender: "a@b.example", Recipient: "u@foo.net"}
	g.Check(tr)
	clock.Advance(301 * time.Second)
	g.Check(tr)

	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Name() != "state.db" {
		t.Fatalf("dir contents = %v", files)
	}

	g2 := New(DefaultPolicy(), clock)
	if err := g2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if v := g2.Check(tr); v.Reason != ReasonKnownTriplet {
		t.Fatalf("restored = %+v", v)
	}
	if err := g2.LoadFile(filepath.Join(dir, "missing.db")); err == nil {
		t.Fatal("LoadFile on missing path succeeded")
	}
}

func TestShardedSaveFileLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sharded.db")
	clock := simtime.NewSim(simtime.Epoch)
	s := NewSharded(4, DefaultPolicy(), clock)
	tr := Triplet{ClientIP: "203.0.113.4", Sender: "a@b.example", Recipient: "u@foo.net"}
	s.Check(tr)
	clock.Advance(301 * time.Second)
	s.Check(tr)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewSharded(4, DefaultPolicy(), clock)
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if v := s2.Check(tr); v.Reason != ReasonKnownTriplet {
		t.Fatalf("restored = %+v", v)
	}
	if err := s2.LoadFile(filepath.Join(dir, "nope.db")); err == nil {
		t.Fatal("LoadFile on missing path succeeded")
	}
}
