package greylist

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestWhitelistIP(t *testing.T) {
	w := NewWhitelist()
	if err := w.AddIP("198.51.100.7"); err != nil {
		t.Fatal(err)
	}
	if !w.Match(Triplet{ClientIP: "198.51.100.7", Sender: "a@b.example", Recipient: "c@d.example"}) {
		t.Fatal("exact IP not matched")
	}
	if w.Match(Triplet{ClientIP: "198.51.100.8", Sender: "a@b.example", Recipient: "c@d.example"}) {
		t.Fatal("wrong IP matched")
	}
	if err := w.AddIP("not-an-ip"); err == nil {
		t.Fatal("AddIP accepted garbage")
	}
}

func TestWhitelistCIDR(t *testing.T) {
	w := NewWhitelist()
	if err := w.AddCIDR("66.163.0.0/16"); err != nil {
		t.Fatal(err)
	}
	if !w.Match(Triplet{ClientIP: "66.163.44.5"}) {
		t.Fatal("in-range IP not matched")
	}
	if w.Match(Triplet{ClientIP: "66.164.0.1"}) {
		t.Fatal("out-of-range IP matched")
	}
	if err := w.AddCIDR("garbage"); err == nil {
		t.Fatal("AddCIDR accepted garbage")
	}
}

func TestWhitelistSenderDomain(t *testing.T) {
	w := NewWhitelist()
	w.AddSenderDomain("gmail.com")
	if !w.Match(Triplet{ClientIP: "1.2.3.4", Sender: "user@gmail.com"}) {
		t.Fatal("sender domain not matched")
	}
	if !w.Match(Triplet{ClientIP: "1.2.3.4", Sender: "user@mx.Gmail.COM"}) {
		t.Fatal("subdomain / case not matched")
	}
	if w.Match(Triplet{ClientIP: "1.2.3.4", Sender: "user@notgmail.com"}) {
		t.Fatal("unrelated domain matched")
	}
	if w.Match(Triplet{ClientIP: "1.2.3.4", Sender: ""}) {
		t.Fatal("null sender matched")
	}
}

func TestWhitelistRecipient(t *testing.T) {
	w := NewWhitelist()
	w.AddRecipient("postmaster@foo.net")
	if !w.Match(Triplet{ClientIP: "1.2.3.4", Sender: "bot@spam.example", Recipient: "Postmaster@foo.net"}) {
		t.Fatal("recipient exemption not matched")
	}
	if w.Match(Triplet{ClientIP: "1.2.3.4", Sender: "bot@spam.example", Recipient: "user@foo.net"}) {
		t.Fatal("protected recipient matched")
	}
}

func TestWhitelistBypassesGreylisting(t *testing.T) {
	// The paper's control experiment: postmaster is unprotected, so the
	// same bot delivery that is greylisted for a user lands instantly
	// for postmaster.
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	g := New(p, clock)
	g.Whitelist().AddRecipient("postmaster@foo.net")

	blocked := g.Check(Triplet{ClientIP: "203.0.113.9", Sender: "bot@spam.example", Recipient: "user@foo.net"})
	if blocked.Decision != Defer {
		t.Fatalf("protected recipient = %+v, want defer", blocked)
	}
	open := g.Check(Triplet{ClientIP: "203.0.113.9", Sender: "bot@spam.example", Recipient: "postmaster@foo.net"})
	if open.Decision != Pass || open.Reason != ReasonWhitelisted {
		t.Fatalf("control recipient = %+v, want pass/whitelisted", open)
	}
}

func TestWhitelistSizes(t *testing.T) {
	w := NewWhitelist()
	w.AddIP("1.2.3.4")
	w.AddCIDR("10.0.0.0/8")
	w.AddSenderDomain("x.example")
	w.AddRecipient("a@b.example")
	ips, cidrs, doms, rcpts := w.Sizes()
	if ips != 1 || cidrs != 1 || doms != 1 || rcpts != 1 {
		t.Fatalf("sizes = %d %d %d %d", ips, cidrs, doms, rcpts)
	}
}

func TestWhitelistedClientNeverDelayed(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(DefaultPolicy(), clock)
	if err := g.Whitelist().AddCIDR("74.125.0.0/16"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v := g.Check(Triplet{ClientIP: "74.125.1.1", Sender: "u@gmail.example", Recipient: "v@foo.net"})
		if v.Decision != Pass {
			t.Fatalf("attempt %d = %+v, want pass", i, v)
		}
		clock.Advance(time.Second)
	}
}

// TestWhitelistConcurrentMutate hammers Match while every Add* mutator
// runs concurrently; run under -race this pins the netip.Prefix rewrite
// (a torn []net.IPNet append was the risk the RWMutex guards against).
func TestWhitelistConcurrentMutate(t *testing.T) {
	w := NewWhitelist()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				w.Match(Triplet{
					ClientIP:  "66.163.44.5",
					Sender:    "user@gmail.com",
					Recipient: "postmaster@victim.example",
				})
				w.Match(Triplet{ClientIP: "198.51.100.7"})
			}
		}()
	}
	for n := 0; n < 200; n++ {
		if err := w.AddCIDR(fmt.Sprintf("10.%d.0.0/16", n%200)); err != nil {
			t.Error(err)
		}
		if err := w.AddIP(fmt.Sprintf("198.51.100.%d", n%250)); err != nil {
			t.Error(err)
		}
		w.AddSenderDomain(fmt.Sprintf("d%d.example", n))
		w.AddRecipient(fmt.Sprintf("u%d@victim.example", n))
	}
	close(stop)
	wg.Wait()
	if !w.Match(Triplet{ClientIP: "10.42.1.1"}) {
		t.Fatal("CIDR added during the hammering not matched")
	}
}

func TestWhitelistCIDRHostBitsAndMapped(t *testing.T) {
	w := NewWhitelist()
	// Host bits in the CIDR are masked away, as net.ParseCIDR used to.
	if err := w.AddCIDR("66.163.1.2/16"); err != nil {
		t.Fatal(err)
	}
	if !w.Match(Triplet{ClientIP: "66.163.200.1"}) {
		t.Fatal("masked CIDR not matched")
	}
	// A 4-in-6 mapped client address matches a v4 prefix.
	if !w.Match(Triplet{ClientIP: "::ffff:66.163.4.4"}) {
		t.Fatal("mapped v4 client not matched")
	}
}
