package greylist

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

func newSharded(n int) (*Sharded, *simtime.Sim) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	return NewSharded(n, p, clock), clock
}

func TestShardedBasicSemantics(t *testing.T) {
	s, clock := newSharded(8)
	tr := Triplet{ClientIP: "203.0.113.9", Sender: "a@b.example", Recipient: "u@foo.net"}
	if v := s.Check(tr); v.Decision != Defer {
		t.Fatalf("first = %+v", v)
	}
	clock.Advance(301 * time.Second)
	if v := s.Check(tr); v.Decision != Pass || v.Reason != ReasonRetryAccepted {
		t.Fatalf("retry = %+v", v)
	}
	if v := s.Check(tr); v.Reason != ReasonKnownTriplet {
		t.Fatalf("known = %+v", v)
	}
}

func TestShardedMatchesSingleForManyTriplets(t *testing.T) {
	// The same triplet sequence must produce identical verdicts on a
	// single engine and on any shard count.
	type step struct {
		tr      Triplet
		advance time.Duration
	}
	var steps []step
	for i := 0; i < 200; i++ {
		steps = append(steps, step{
			tr: Triplet{
				ClientIP:  fmt.Sprintf("203.0.113.%d", i%40),
				Sender:    fmt.Sprintf("s%d@x.example", i%17),
				Recipient: fmt.Sprintf("u%d@foo.net", i%11),
			},
			advance: time.Duration(i%120) * time.Second,
		})
	}
	run := func(check func(Triplet) Verdict, clock *simtime.Sim) []Verdict {
		var out []Verdict
		for _, st := range steps {
			clock.Advance(st.advance)
			out = append(out, check(st.tr))
		}
		return out
	}

	clock1 := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.AutoWhitelistAfter = 0 // the one intentionally different behaviour
	single := New(p, clock1)
	want := run(single.Check, clock1)

	for _, shards := range []int{1, 4, 16} {
		clockN := simtime.NewSim(simtime.Epoch)
		sharded := NewSharded(shards, p, clockN)
		got := run(sharded.Check, clockN)
		for i := range want {
			if got[i].Decision != want[i].Decision || got[i].Reason != want[i].Reason {
				t.Fatalf("%d shards, step %d: %+v != %+v", shards, i, got[i], want[i])
			}
		}
	}
}

func TestShardedSharedWhitelist(t *testing.T) {
	s, _ := newSharded(4)
	s.Whitelist().AddRecipient("postmaster@foo.net")
	for i := 0; i < 20; i++ {
		tr := Triplet{ClientIP: fmt.Sprintf("10.0.0.%d", i), Sender: "x@y.example", Recipient: "postmaster@foo.net"}
		if v := s.Check(tr); v.Reason != ReasonWhitelisted {
			t.Fatalf("triplet %d = %+v", i, v)
		}
	}
}

func TestShardedStatsAggregate(t *testing.T) {
	s, clock := newSharded(4)
	for i := 0; i < 50; i++ {
		tr := Triplet{ClientIP: "203.0.113.1", Sender: "a@b.example", Recipient: fmt.Sprintf("u%d@foo.net", i)}
		s.Check(tr)
	}
	clock.Advance(301 * time.Second)
	for i := 0; i < 50; i++ {
		tr := Triplet{ClientIP: "203.0.113.1", Sender: "a@b.example", Recipient: fmt.Sprintf("u%d@foo.net", i)}
		s.Check(tr)
	}
	st := s.Stats()
	if st.Checks != 100 || st.DeferredNew != 50 {
		t.Fatalf("stats = %+v", st)
	}
	// With the default auto-whitelist (5 deliveries) the client earns
	// exemption shard by shard; retries + auto passes must cover all 50.
	if st.PassedRetry+st.PassedAutoClient != 50 {
		t.Fatalf("passed = %d retry + %d auto, want 50 total", st.PassedRetry, st.PassedAutoClient)
	}
	if s.PassedCount()+s.PendingCount() > 100 {
		t.Fatalf("tables too large: %d + %d", s.PassedCount(), s.PendingCount())
	}
}

func TestShardedGC(t *testing.T) {
	s, clock := newSharded(4)
	for i := 0; i < 30; i++ {
		s.Check(Triplet{ClientIP: fmt.Sprintf("10.0.%d.1", i), Sender: "a@b.example", Recipient: "u@foo.net"})
	}
	clock.Advance(50 * time.Hour)
	if dropped := s.GC(); dropped != 30 {
		t.Fatalf("GC dropped %d, want 30", dropped)
	}
	if s.PendingCount() != 0 {
		t.Fatalf("pending = %d", s.PendingCount())
	}
}

func TestShardedSaveLoad(t *testing.T) {
	s, clock := newSharded(4)
	tr := Triplet{ClientIP: "203.0.113.5", Sender: "a@b.example", Recipient: "u@foo.net"}
	s.Check(tr)
	clock.Advance(301 * time.Second)
	s.Check(tr)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	s2 := NewSharded(4, DefaultPolicy(), clock)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if v := s2.Check(tr); v.Reason != ReasonKnownTriplet {
		t.Fatalf("restored = %+v", v)
	}

	// A snapshot written with a different shard count reshards on load:
	// the passed triplet must be found on its new shard, not misplaced.
	var buf2 bytes.Buffer
	if err := s.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	s3 := NewSharded(8, DefaultPolicy(), clock)
	if err := s3.Load(&buf2); err != nil {
		t.Fatalf("Load across shard counts: %v", err)
	}
	if v := s3.Check(tr); v.Reason != ReasonKnownTriplet {
		t.Fatalf("resharded restore = %+v", v)
	}
	if err := s3.Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if err := s3.Load(bytes.NewReader([]byte("shards 0\n"))); err == nil {
		t.Fatal("Load accepted a zero shard count")
	}
}

func TestShardedMinimumOneShard(t *testing.T) {
	s := NewSharded(0, DefaultPolicy(), simtime.NewSim(simtime.Epoch))
	if s.Shards() != 1 {
		t.Fatalf("shards = %d", s.Shards())
	}
	if s.Policy().Threshold != DefaultPolicy().Threshold {
		t.Fatal("policy not propagated")
	}
}

func TestShardedConcurrent(t *testing.T) {
	s, _ := newSharded(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Check(Triplet{
					ClientIP:  fmt.Sprintf("10.%d.%d.1", w, i%50),
					Sender:    "bulk@x.example",
					Recipient: fmt.Sprintf("u%d@foo.net", i%20),
				})
			}
		}(w)
	}
	wg.Wait()
	if got := s.Stats().Checks; got != 4000 {
		t.Fatalf("checks = %d", got)
	}
}
