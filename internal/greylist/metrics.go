package greylist

import (
	"repro/internal/metrics"
)

// instruments holds the optional latency/batch histograms installed by
// Register. The hot path reaches them through one atomic pointer load;
// a nil pointer (no registry attached) costs exactly that load.
type instruments struct {
	checkSeconds *metrics.Histogram
	batchSeconds *metrics.Histogram
	batchSize    *metrics.Histogram
	saveSeconds  *metrics.Histogram
	loadSeconds  *metrics.Histogram
}

func newInstruments(reg *metrics.Registry) *instruments {
	return &instruments{
		checkSeconds: reg.Histogram("greylist_check_seconds",
			"Wall-clock latency of one greylisting check.", nil),
		batchSeconds: reg.Histogram("greylist_batch_seconds",
			"Wall-clock latency of one CheckBatch call.", nil),
		batchSize: reg.Histogram("greylist_batch_size",
			"Triplets decided per CheckBatch call.", metrics.DefSizeBuckets),
		saveSeconds: reg.Histogram("greylist_snapshot_save_seconds",
			"Wall-clock duration of state snapshot saves.", nil),
		loadSeconds: reg.Histogram("greylist_snapshot_load_seconds",
			"Wall-clock duration of state snapshot loads.", nil),
	}
}

// verdict reason label -> Stats accessor; the exposition mirrors the
// engine's own atomic counters, so greylist_verdicts_total can never
// disagree with Greylister.Stats (and a lab campaign's Table I/II
// verdict counts come from the same registers a daemon exports).
var reasonMirrors = []struct {
	reason string
	value  func(Stats) uint64
}{
	{"first-seen", func(s Stats) uint64 { return s.DeferredNew }},
	{"too-soon", func(s Stats) uint64 { return s.DeferredEarly }},
	{"window-expired", func(s Stats) uint64 { return s.DeferredExpired }},
	{"retry-accepted", func(s Stats) uint64 { return s.PassedRetry }},
	{"known-triplet", func(s Stats) uint64 { return s.PassedKnown }},
	{"whitelisted", func(s Stats) uint64 { return s.PassedWhitelist }},
	{"auto-whitelisted", func(s Stats) uint64 { return s.PassedAutoClient }},
	{"dnswl-listed", func(s Stats) uint64 { return s.PassedDNSWL }},
	{"rdns-mailserver", func(s Stats) uint64 { return s.PassedRDNS }},
	{"earned-whitelist", func(s Stats) uint64 { return s.PassedEarned }},
	{"bypass-other", func(s Stats) uint64 { return s.PassedBypassOther }},
}

// registerMirror exports the cumulative Stats counters through stats
// (Greylister.Stats or the shard-summing Sharded.Stats).
func registerMirror(reg *metrics.Registry, stats func() Stats) {
	reg.CounterFunc("greylist_checks_total",
		"Greylisting checks performed.",
		func() uint64 { return stats().Checks })
	for _, m := range reasonMirrors {
		m := m
		reg.CounterFunc("greylist_verdicts_total",
			"Greylisting verdicts by reason.",
			func() uint64 { return m.value(stats()) },
			"reason", m.reason)
	}
	reg.CounterFunc("greylist_triplets_recorded_total",
		"New triplets recorded as pending.",
		func() uint64 { return stats().TripletsRecorded })
	reg.CounterFunc("greylist_triplets_whitelisted_total",
		"Triplets promoted to the passed table.",
		func() uint64 { return stats().TripletsWhitelist })
	reg.CounterFunc("greylist_gc_sweeps_total",
		"GC sweeps over the state tables.",
		func() uint64 { return stats().GCSweeps })
	reg.CounterFunc("greylist_gc_dropped_total",
		"Expired records dropped by GC.",
		func() uint64 { return stats().GCDropped })
	reg.CounterFunc("greylist_spf_rekeyed_total",
		"Checks keyed by SPF domain instead of client IP.",
		func() uint64 { return stats().SPFRekeyed })
	reg.CounterFunc("greylist_earned_granted_total",
		"Earned-whitelist entries granted.",
		func() uint64 { return stats().EarnedGranted })
}

// registerChain exports per-stage bypass-chain counters. The stage set
// is read at registration time (install chains with SetChain before
// Register); the counters themselves read live through chain(), so a
// later SetChain keeping the same stage names keeps reporting.
func registerChain(reg *metrics.Registry, chain func() *Chain) {
	statFor := func(name string) StageStat {
		for _, st := range chain().StageStats() {
			if st.Name == name {
				return st
			}
		}
		return StageStat{}
	}
	for _, st := range chain().StageStats() {
		name := st.Name
		reg.CounterFunc("greylist_bypass_stage_total",
			"Bypass-chain stage outcomes by stage and action.",
			func() uint64 { return statFor(name).Hits },
			"stage", name, "action", "bypass")
		reg.CounterFunc("greylist_bypass_stage_total",
			"Bypass-chain stage outcomes by stage and action.",
			func() uint64 { return statFor(name).Rekeys },
			"stage", name, "action", "rekey")
		reg.CounterFunc("greylist_bypass_stage_errors_total",
			"Bypass-chain stage evaluation errors (failed open).",
			func() uint64 { return statFor(name).Errors },
			"stage", name)
	}
}

// Register exports the engine's counters, table-size gauges, and latency
// histograms into reg under the greylist_* namespace. Counters mirror
// the engine's existing atomics (no double counting); histograms are
// observed on the hot path without allocating, preserving the
// known-passed Check at 0 allocs/op.
func (g *Greylister) Register(reg *metrics.Registry) {
	registerMirror(reg, g.Stats)
	reg.GaugeFunc("greylist_pending_triplets",
		"Deferred triplets awaiting their retry.",
		func() float64 { return float64(g.PendingCount()) })
	reg.GaugeFunc("greylist_passed_triplets",
		"Whitelisted (passed) triplets.",
		func() float64 { return float64(g.PassedCount()) })
	reg.GaugeFunc("greylist_autowl_clients",
		"Auto-whitelist client records.",
		func() float64 { return float64(g.ClientCount()) })
	reg.GaugeFunc("greylist_earned_entries",
		"Earned-whitelist records.",
		func() float64 { return float64(g.EarnedCount()) })
	reg.GaugeFunc("greylist_shards",
		"Store shards in the engine.",
		func() float64 { return 1 })
	registerChain(reg, g.Chain)
	g.inst.Store(newInstruments(reg))
}

// Register exports the sharded engine's aggregate counters and gauges;
// every shard shares one set of histograms, so per-check latencies land
// in a single greylist_check_seconds series regardless of shard count.
func (s *Sharded) Register(reg *metrics.Registry) {
	registerMirror(reg, s.Stats)
	reg.GaugeFunc("greylist_pending_triplets",
		"Deferred triplets awaiting their retry.",
		func() float64 { return float64(s.PendingCount()) })
	reg.GaugeFunc("greylist_passed_triplets",
		"Whitelisted (passed) triplets.",
		func() float64 { return float64(s.PassedCount()) })
	reg.GaugeFunc("greylist_autowl_clients",
		"Auto-whitelist client records (summed across shards).",
		func() float64 { return float64(s.ClientCount()) })
	reg.GaugeFunc("greylist_earned_entries",
		"Earned-whitelist records (summed across shards).",
		func() float64 { return float64(s.EarnedCount()) })
	reg.GaugeFunc("greylist_shards",
		"Store shards in the engine.",
		func() float64 { return float64(len(s.shards)) })
	registerChain(reg, s.Chain)
	inst := newInstruments(reg)
	for _, g := range s.shards {
		g.inst.Store(inst)
	}
}
