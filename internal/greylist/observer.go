package greylist

// Observer receives every decided verdict on the hot path — the feed
// for the live observatory (internal/obs), which rolls verdicts into
// windowed sketches and heavy-hitter sets. Implementations MUST be
// safe for concurrent use and MUST NOT allocate on the steady-state
// path or block: they run inline inside Check/CheckBatch under the
// engine's latency budget (the bypass hot-path allocation tests pin
// the observed paths at 0 allocs/op).
//
// latencyNs is the engine-side decision latency. Single checks carry
// their own measurement; batch verdicts share the batch's elapsed time
// divided by its size (the per-RCPT amortized cost, matching how the
// batch path amortizes locking).
type Observer interface {
	ObserveVerdict(t Triplet, v Verdict, latencyNs int64)
}

// SetObserver installs (or, with nil, removes) the engine's verdict
// observer. Safe to call while checks are in flight: the pointer is
// swapped atomically and in-flight checks finish against whichever
// observer they loaded.
func (g *Greylister) SetObserver(o Observer) {
	if o == nil {
		g.obsv.Store(nil)
		return
	}
	g.obsv.Store(&o)
}

// SetObserver installs the observer on the sharded engine: each shard
// observes its own single checks (after chain evaluation and shard
// routing), and the Sharded batch path observes whole batches itself —
// every verdict is reported exactly once either way.
func (s *Sharded) SetObserver(o Observer) {
	for _, g := range s.shards {
		g.SetObserver(o)
	}
	if o == nil {
		s.obsv.Store(nil)
		return
	}
	s.obsv.Store(&o)
}
