package greylist

import "sync/atomic"

// The bypass chain generalizes the old hardcoded "static whitelist, then
// triplet check" verdict path into an ordered list of pluggable stages
// evaluated before greylisting. Deployed filters grew exactly this shape
// after the paper's measurements — spfgreylist keys the greylist at the
// SPF-domain level so relaying providers pass from any outbound IP, and
// grayland waives greylisting on SPF Pass, DNSWL listings and a
// reverse-DNS "looks like a mail server" heuristic. The stage contract
// below is the least structure that expresses all of them:
//
//   - A stage inspects the triplet and answers Skip (not my business,
//     ask the next stage), Bypass (accept outright with a Reason), or
//     Rekey (greylist as usual, but key the triplet by a domain instead
//     of the client IP — the SPF-Pass case, where any outbound IP of
//     the passing domain must share greylist state).
//   - First match wins: the first stage answering Bypass or Rekey ends
//     evaluation. A Rekey therefore shadows later stages by design — if
//     SPF passes, DNSWL/rDNS never run for that attempt.
//   - Stages fail open: an erroring stage counts an error and is
//     treated as Skip. Greylisting is itself the safety net (a
//     temporarily unanswerable DNS question must never block mail the
//     triplet dance would eventually accept), so the chain degrades to
//     plain greylisting when its inputs are down.
//
// Stages run before the engine's locks and may do I/O (a cache-missing
// SPF evaluation resolves TXT records); the chain-negative path through
// warmed stages must stay allocation-free — bench_test.go pins it.

// StageAction is a bypass stage's answer for one triplet.
type StageAction int

// Stage actions.
const (
	// StageSkip: the stage has no opinion; evaluation continues.
	StageSkip StageAction = iota
	// StageBypass: accept the delivery outright, skipping greylisting.
	StageBypass
	// StageRekey: greylist, but key the triplet's client component by
	// StageOutcome.Domain so every outbound IP of that domain shares
	// pending/passed/earned state.
	StageRekey
)

// String implements fmt.Stringer.
func (a StageAction) String() string {
	switch a {
	case StageSkip:
		return "skip"
	case StageBypass:
		return "bypass"
	case StageRekey:
		return "rekey"
	default:
		return "invalid"
	}
}

// StageOutcome is the result of evaluating one stage.
type StageOutcome struct {
	Action StageAction
	// Reason labels a StageBypass verdict (e.g. ReasonWhitelisted,
	// ReasonDNSWL). Ignored for other actions.
	Reason Reason
	// Domain is the greylisting key domain for StageRekey (the
	// SPF-evaluated sender domain). Ignored for other actions.
	Domain string
}

// rekey returns the key domain when the outcome asks for re-keying.
func (o StageOutcome) rekey() string {
	if o.Action == StageRekey {
		return o.Domain
	}
	return ""
}

// Stage is one step of the bypass chain. Implementations must be safe
// for concurrent use and should answer from warmed caches without
// allocating — Eval sits on the per-RCPT hot path ahead of the triplet
// check. Returning a non-nil error marks the stage unhealthy for this
// attempt; the chain counts it and continues as if the stage had
// answered Skip (fail open).
type Stage interface {
	// Name labels the stage in metrics and traces ("whitelist",
	// "spf", "dnswl", "rdns").
	Name() string
	Eval(t Triplet) (StageOutcome, error)
}

// stageCounters are one stage's cumulative outcomes, atomics so chain
// evaluation never takes a lock.
type stageCounters struct {
	hits   atomic.Uint64 // StageBypass answers
	rekeys atomic.Uint64 // StageRekey answers
	errors atomic.Uint64 // Eval errors (treated as Skip)
}

// StageStat is a snapshot of one stage's counters.
type StageStat struct {
	Name   string
	Hits   uint64
	Rekeys uint64
	Errors uint64
}

// Chain is an ordered bypass-stage list with per-stage counters. A
// Chain is immutable after NewChain; engines swap whole chains through
// SetChain, so evaluation needs no lock.
type Chain struct {
	stages []Stage
	counts []stageCounters
}

// NewChain builds a chain evaluating stages in order.
func NewChain(stages ...Stage) *Chain {
	return &Chain{stages: stages, counts: make([]stageCounters, len(stages))}
}

// eval runs the chain: first stage answering Bypass or Rekey wins; an
// erroring stage is counted and skipped. The second result is the index
// of the deciding stage, -1 when every stage skipped (chain-negative).
// A nil chain is chain-negative.
func (c *Chain) eval(t Triplet) (StageOutcome, int) {
	if c == nil {
		return StageOutcome{}, -1
	}
	for i, s := range c.stages {
		out, err := s.Eval(t)
		if err != nil {
			c.counts[i].errors.Add(1)
			continue
		}
		switch out.Action {
		case StageBypass:
			c.counts[i].hits.Add(1)
			return out, i
		case StageRekey:
			if out.Domain == "" {
				continue // a rekey to nowhere is a skip
			}
			c.counts[i].rekeys.Add(1)
			return out, i
		}
	}
	return StageOutcome{}, -1
}

// Len returns the stage count (0 for a nil chain).
func (c *Chain) Len() int {
	if c == nil {
		return 0
	}
	return len(c.stages)
}

// StageName returns the i-th stage's name ("" out of range).
func (c *Chain) StageName(i int) string {
	if c == nil || i < 0 || i >= len(c.stages) {
		return ""
	}
	return c.stages[i].Name()
}

// StageStats snapshots every stage's counters in chain order.
func (c *Chain) StageStats() []StageStat {
	if c == nil {
		return nil
	}
	out := make([]StageStat, len(c.stages))
	for i, s := range c.stages {
		out[i] = StageStat{
			Name:   s.Name(),
			Hits:   c.counts[i].hits.Load(),
			Rekeys: c.counts[i].rekeys.Load(),
			Errors: c.counts[i].errors.Load(),
		}
	}
	return out
}

// whitelistStage adapts the static Whitelist to the stage contract; it
// is the default (and previously hardwired) first link of every chain.
type whitelistStage struct{ w *Whitelist }

// WhitelistStage wraps a static whitelist as a bypass stage answering
// Bypass/ReasonWhitelisted on a match. Chains built for an engine
// should lead with its own Whitelist so -whitelist-* flags keep
// working unchanged.
func WhitelistStage(w *Whitelist) Stage { return whitelistStage{w} }

func (s whitelistStage) Name() string { return "whitelist" }

func (s whitelistStage) Eval(t Triplet) (StageOutcome, error) {
	if s.w.Match(t) {
		return StageOutcome{Action: StageBypass, Reason: ReasonWhitelisted}, nil
	}
	return StageOutcome{}, nil
}
