package greylist

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

// TestConcurrentSharded hammers a Sharded engine from many goroutines —
// Check, CheckBatch, GC, Save, Stats, counts — while another advances the
// sim clock, locking in the RWMutex fast path and the atomic record
// fields under the race detector (go test -race ./internal/greylist/...
// is part of the tier-1 recipe).
func TestConcurrentSharded(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.AutoWhitelistAfter = 3
	s := NewSharded(4, p, clock)
	s.Whitelist().AddRecipient("postmaster@foo.net")

	const (
		workers = 8
		iters   = 400
	)
	var wg sync.WaitGroup

	// Clock advancer: pushes time forward so checks cross the threshold,
	// promote to passed, and exercise the read-locked known-passed path.
	stop := make(chan struct{})
	advanced := make(chan struct{})
	go func() {
		defer close(advanced)
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(90 * time.Second)
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []Verdict
			batch := make([]Triplet, 0, 4)
			for i := 0; i < iters; i++ {
				tr := Triplet{
					ClientIP:  fmt.Sprintf("203.0.113.%d", i%32),
					Sender:    fmt.Sprintf("s%d@x.example", i%16),
					Recipient: fmt.Sprintf("u%d@foo.net", w%4),
				}
				switch i % 8 {
				case 0:
					batch = append(batch[:0], tr,
						Triplet{ClientIP: tr.ClientIP, Sender: tr.Sender, Recipient: "postmaster@foo.net"},
						Triplet{ClientIP: "2001:db8::1", Sender: "v6@x.example", Recipient: "u@foo.net"})
					out = s.CheckBatch(batch, out)
					for j, v := range out {
						if v.Decision != Defer && v.Decision != Pass {
							t.Errorf("batch[%d]: zero verdict %+v", j, v)
						}
					}
				case 3:
					s.GC()
				case 5:
					var buf bytes.Buffer
					if err := s.Save(&buf); err != nil {
						t.Errorf("Save: %v", err)
					}
				case 7:
					_ = s.Stats()
					_ = s.PendingCount()
					_ = s.PassedCount()
				default:
					if v := s.Check(tr); v.Decision != Defer && v.Decision != Pass {
						t.Errorf("check: zero verdict %+v", v)
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(stop)
	<-advanced
	if st := s.Stats(); st.Checks == 0 {
		t.Fatal("no checks counted")
	}
}

// TestConcurrentGreylisterFastPath drives a single Greylister to the
// known-passed and auto-whitelisted states, then hits it from many
// goroutines at once: every hit should take the read-locked fast path
// concurrently and agree on the verdict.
func TestConcurrentGreylisterFastPath(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.AutoWhitelistAfter = 2
	g := New(p, clock)

	tr := Triplet{ClientIP: "198.51.100.7", Sender: "a@x.example", Recipient: "u@foo.net"}
	g.Check(tr)
	clock.Advance(301 * time.Second)
	if v := g.Check(tr); v.Reason != ReasonRetryAccepted {
		t.Fatalf("setup: %+v", v)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := g.Check(tr)
				if v.Decision != Pass {
					t.Errorf("fast path deferred: %+v", v)
					return
				}
				if v.Reason != ReasonKnownTriplet && v.Reason != ReasonAutoWhitelisted {
					t.Errorf("unexpected reason: %+v", v)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := g.Stats()
	if got := st.PassedKnown + st.PassedAutoClient; got < workers*500 {
		t.Fatalf("passed counters = %d, want >= %d", got, workers*500)
	}
}

// TestConcurrentSaveVsCheck hammers Save (now read-locked — snapshots
// must not stall the known-passed fast path) against concurrent Check,
// CheckBatch and GC on a single Greylister. Under -race this locks in
// that Save's map iteration is safe alongside fast-path atomic updates
// and write-locked mutations.
func TestConcurrentSaveVsCheck(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.AutoWhitelistAfter = 3
	g := New(p, clock)

	// Warm a passed triplet so checkers exercise the read-locked path.
	warm := Triplet{ClientIP: "192.0.2.1", Sender: "w@x.example", Recipient: "u@foo.net"}
	g.Check(warm)
	clock.Advance(301 * time.Second)
	if v := g.Check(warm); v.Decision != Pass {
		t.Fatalf("warmup: %+v", v)
	}

	stop := make(chan struct{})
	advanced := make(chan struct{})
	go func() {
		defer close(advanced)
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(45 * time.Second)
			}
		}
	}()

	const savers = 2
	var wg sync.WaitGroup
	for w := 0; w < savers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var buf bytes.Buffer
				if err := g.Save(&buf); err != nil {
					t.Errorf("Save: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []Verdict
			for i := 0; i < 500; i++ {
				switch i % 16 {
				case 9:
					g.GC()
				case 13:
					out = g.CheckBatch([]Triplet{warm, {
						ClientIP:  fmt.Sprintf("203.0.113.%d", i%24),
						Sender:    "b@x.example",
						Recipient: "u@foo.net",
					}}, out)
				default:
					tr := warm
					if i%4 == 0 {
						tr = Triplet{
							ClientIP:  fmt.Sprintf("198.51.100.%d", (w*31+i)%40),
							Sender:    fmt.Sprintf("s%d@x.example", i%8),
							Recipient: "u@foo.net",
						}
					}
					if v := g.Check(tr); v.Decision != Defer && v.Decision != Pass {
						t.Errorf("zero verdict %+v", v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-advanced

	// A final snapshot must round-trip everything the hammering built
	// (the sim clock may have raced far enough to expire the warm
	// triplet, so assert on the counters, which are stable now).
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := New(p, clock)
	if err := g2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := g2.Stats(), g.Stats(); got != want {
		t.Fatalf("restored stats = %+v, want %+v", got, want)
	}
}
