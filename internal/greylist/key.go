package greylist

import (
	"net/netip"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Key building for the Check hot path. A greylisting engine on the
// critical path of every inbound SMTP transaction computes the storage
// key (client, NUL, sender, NUL, recipient) once per RCPT; building it
// with string concatenation plus strings.ToLower plus fmt.Sprintf (the
// original implementation) cost four allocations per check. The append
// helpers below build the same bytes into a caller-provided buffer —
// stack-allocated in Check — and map lookups use the m[string(buf)]
// form, which the compiler compiles without materializing a string. The
// key string is only ever allocated when a record is actually inserted.

// keyBufCap sizes the stack scratch buffers in Check. A key longer than
// this (unusually long mailboxes) silently spills to the heap; nothing
// breaks, the check just pays its old allocation cost.
const keyBufCap = 160

// appendKey appends the canonical storage key for the triplet to dst:
// clientKey, NUL, lowercased sender, NUL, lowercased recipient.
// clientKey must already be the triplet's client component (the full IP,
// or its /24 under subnet keying) as produced by appendClientKey.
func (t Triplet) appendKey(dst, clientKey []byte) []byte {
	dst = append(dst, clientKey...)
	dst = append(dst, 0)
	dst = appendLower(dst, t.Sender)
	dst = append(dst, 0)
	return appendLower(dst, t.Recipient)
}

// key returns the storage key as a string, collapsing the client address
// to its /24 network when subnet keying is enabled (Postgrey's
// --lookup-by-subnet, which tolerates webmail farms rotating through
// nearby addresses — the failure mode Table III documents). Non-hot-path
// convenience; Check builds the same bytes allocation-free.
func (t Triplet) key(subnet bool) string {
	var ck, kb [keyBufCap]byte
	return string(t.appendKey(kb[:0], appendClientKey(ck[:0], t.ClientIP, subnet)))
}

// appendClientKey appends the client component of the key: the IP
// verbatim, or its /24 network under subnet keying.
func appendClientKey(dst []byte, ip string, subnet bool) []byte {
	if subnet {
		return appendSubnet(dst, ip)
	}
	return append(dst, ip...)
}

// rekeyPrefix namespaces domain-keyed client components so an SPF
// domain can never collide with a literal client address (a colon is
// impossible in the IPv4/subnet forms and unambiguous here even for
// IPv6, whose textual form never starts with "spf:").
const rekeyPrefix = "spf:"

// appendChainClientKey appends the client component chosen by the
// bypass chain: "spf:" plus the lowercased key domain on a rekey, the
// plain client key otherwise. Domain-keyed state intentionally ignores
// subnet keying — the domain already aggregates across every outbound
// address the sender's SPF record covers.
func appendChainClientKey(dst []byte, ip, rekey string, subnet bool) []byte {
	if rekey != "" {
		dst = append(dst, rekeyPrefix...)
		return appendLower(dst, rekey)
	}
	return appendClientKey(dst, ip, subnet)
}

// appendLower appends s lowercased. Envelope addresses are ASCII in
// practice, so the loop lowercases byte-at-a-time without allocating;
// the first non-ASCII byte falls back to the full Unicode mapping for
// the remainder (every byte before it is ASCII, so the split point is a
// rune boundary and the result matches strings.ToLower exactly).
func appendLower(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= utf8.RuneSelf {
			return append(dst, strings.ToLower(s[i:])...)
		}
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// appendSubnet appends the /24 network ("a.b.c") of an IPv4 address
// (including IPv4-mapped IPv6 forms), or ip unchanged for anything else.
func appendSubnet(dst []byte, ip string) []byte {
	a, err := netip.ParseAddr(ip)
	if err != nil {
		return append(dst, ip...)
	}
	if a.Is4In6() {
		a = a.Unmap()
	}
	if !a.Is4() {
		return append(dst, ip...)
	}
	b := a.As4()
	dst = strconv.AppendUint(dst, uint64(b[0]), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(b[1]), 10)
	dst = append(dst, '.')
	return strconv.AppendUint(dst, uint64(b[2]), 10)
}

// SubnetOf maps an IPv4 address to its /24 network ("a.b.c"). Non-IPv4
// input is returned unchanged.
func SubnetOf(ip string) string {
	var buf [64]byte
	return string(appendSubnet(buf[:0], ip))
}

// fnv1a hashes b with 32-bit FNV-1a — the same function hash/fnv
// implements, inlined here so shard selection never constructs a hasher
// or an intermediate key string.
func fnv1a(b []byte) uint32 {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime
	}
	return h
}

// fnv1aString is fnv1a over a string's bytes without conversion; used
// when resharding snapshots, where the canonical key is already a map
// key string.
func fnv1aString(s string) uint32 {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
