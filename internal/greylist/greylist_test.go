package greylist

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

var testTriplet = Triplet{ClientIP: "203.0.113.9", Sender: "bot@spam.example", Recipient: "victim@foo.net"}

func newTestGreylister(threshold time.Duration) (*Greylister, *simtime.Sim) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.Threshold = threshold
	return New(p, clock), clock
}

func TestFirstAttemptDeferred(t *testing.T) {
	g, _ := newTestGreylister(300 * time.Second)
	v := g.Check(testTriplet)
	if v.Decision != Defer || v.Reason != ReasonFirstSeen {
		t.Fatalf("verdict = %+v, want defer/first-seen", v)
	}
	if v.WaitRemaining != 300*time.Second {
		t.Fatalf("WaitRemaining = %v, want 300s", v.WaitRemaining)
	}
	if v.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", v.Attempts)
	}
}

func TestEarlyRetryDeferredWithoutReset(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.Check(testTriplet)
	clock.Advance(100 * time.Second)
	v := g.Check(testTriplet)
	if v.Decision != Defer || v.Reason != ReasonTooSoon {
		t.Fatalf("verdict = %+v, want defer/too-soon", v)
	}
	if v.WaitRemaining != 200*time.Second {
		t.Fatalf("WaitRemaining = %v, want 200s (no first-seen reset)", v.WaitRemaining)
	}
	if v.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", v.Attempts)
	}
	// A third early retry still counts from the original first-seen.
	clock.Advance(100 * time.Second)
	v = g.Check(testTriplet)
	if v.WaitRemaining != 100*time.Second {
		t.Fatalf("WaitRemaining = %v, want 100s", v.WaitRemaining)
	}
}

func TestRetryAfterThresholdPasses(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.Check(testTriplet)
	clock.Advance(301 * time.Second)
	v := g.Check(testTriplet)
	if v.Decision != Pass || v.Reason != ReasonRetryAccepted {
		t.Fatalf("verdict = %+v, want pass/retry-accepted", v)
	}
	if v.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", v.Attempts)
	}
}

func TestRetryExactlyAtThresholdPasses(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.Check(testTriplet)
	clock.Advance(300 * time.Second)
	if v := g.Check(testTriplet); v.Decision != Pass {
		t.Fatalf("verdict at exact threshold = %+v, want pass", v)
	}
}

func TestKnownTripletPassesImmediately(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.Check(testTriplet)
	clock.Advance(301 * time.Second)
	g.Check(testTriplet)
	// Subsequent deliveries pass with no delay — this is how a second,
	// DIFFERENT spam message between the same triplet sails through
	// (Section V-A's control experiment).
	clock.Advance(time.Second)
	v := g.Check(testTriplet)
	if v.Decision != Pass || v.Reason != ReasonKnownTriplet {
		t.Fatalf("verdict = %+v, want pass/known-triplet", v)
	}
}

func TestDifferentTripletsIndependent(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.Check(testTriplet)
	clock.Advance(301 * time.Second)
	g.Check(testTriplet)

	other := testTriplet
	other.Recipient = "other@foo.net"
	if v := g.Check(other); v.Decision != Defer {
		t.Fatalf("different recipient not re-greylisted: %+v", v)
	}
	otherIP := testTriplet
	otherIP.ClientIP = "203.0.113.10"
	if v := g.Check(otherIP); v.Decision != Defer {
		t.Fatalf("different client IP not re-greylisted: %+v", v)
	}
	otherSender := testTriplet
	otherSender.Sender = "other@spam.example"
	if v := g.Check(otherSender); v.Decision != Defer {
		t.Fatalf("different sender not re-greylisted: %+v", v)
	}
}

func TestRetryWindowExpiry(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.Check(testTriplet)
	clock.Advance(49 * time.Hour) // past the 48h retry window
	v := g.Check(testTriplet)
	if v.Decision != Defer || v.Reason != ReasonWindowExpired {
		t.Fatalf("verdict = %+v, want defer/window-expired", v)
	}
	// The late retry restarts the clock: a prompt retry now passes.
	clock.Advance(301 * time.Second)
	if v := g.Check(testTriplet); v.Decision != Pass {
		t.Fatalf("retry after restart = %+v, want pass", v)
	}
}

func TestPassLifetimeExpiry(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	p := DefaultPolicy()
	p.Threshold = 300 * time.Second
	p.PassLifetime = time.Hour
	p.AutoWhitelistAfter = 0
	g = New(p, clock)

	g.Check(testTriplet)
	clock.Advance(301 * time.Second)
	g.Check(testTriplet) // passes, triplet whitelisted
	clock.Advance(2 * time.Hour)
	v := g.Check(testTriplet)
	if v.Decision != Defer {
		t.Fatalf("verdict after pass lifetime = %+v, want defer (record expired)", v)
	}
}

func TestAutoWhitelistClient(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.Threshold = 300 * time.Second
	p.AutoWhitelistAfter = 2
	g := New(p, clock)

	// Two successful deliveries from the same client, different triplets.
	for _, rcpt := range []string{"a@foo.net", "b@foo.net"} {
		tr := Triplet{ClientIP: "198.51.100.1", Sender: "mta@benign.example", Recipient: rcpt}
		g.Check(tr)
		clock.Advance(301 * time.Second)
		if v := g.Check(tr); v.Decision != Pass {
			t.Fatalf("setup delivery to %s failed: %+v", rcpt, v)
		}
	}
	// A brand-new triplet from that client now passes outright.
	v := g.Check(Triplet{ClientIP: "198.51.100.1", Sender: "mta@benign.example", Recipient: "c@foo.net"})
	if v.Decision != Pass || v.Reason != ReasonAutoWhitelisted {
		t.Fatalf("verdict = %+v, want pass/auto-whitelisted", v)
	}
}

func TestAutoWhitelistExpires(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.Threshold = 300 * time.Second
	p.AutoWhitelistAfter = 1
	p.AutoWhitelistLifetime = time.Hour
	g := New(p, clock)

	tr := Triplet{ClientIP: "198.51.100.2", Sender: "m@b.example", Recipient: "a@foo.net"}
	g.Check(tr)
	clock.Advance(301 * time.Second)
	g.Check(tr)
	clock.Advance(2 * time.Hour) // auto-whitelist entry goes stale
	v := g.Check(Triplet{ClientIP: "198.51.100.2", Sender: "m@b.example", Recipient: "new@foo.net"})
	if v.Reason == ReasonAutoWhitelisted {
		t.Fatalf("stale auto-whitelist still honored: %+v", v)
	}
}

func TestSubnetKeying(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := DefaultPolicy()
	p.Threshold = 300 * time.Second
	p.SubnetKeying = true
	g := New(p, clock)

	// First attempt from .10, retry from .20 in the same /24 — the
	// webmail multi-IP pattern of Table III. With subnet keying the
	// retry is credited to the same record.
	first := Triplet{ClientIP: "66.163.1.10", Sender: "u@mail.example", Recipient: "v@foo.net"}
	second := Triplet{ClientIP: "66.163.1.20", Sender: "u@mail.example", Recipient: "v@foo.net"}
	g.Check(first)
	clock.Advance(301 * time.Second)
	if v := g.Check(second); v.Decision != Pass {
		t.Fatalf("same-/24 retry = %+v, want pass under subnet keying", v)
	}
}

func TestFullIPKeyingRejectsOtherIP(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	first := Triplet{ClientIP: "66.163.1.10", Sender: "u@mail.example", Recipient: "v@foo.net"}
	second := Triplet{ClientIP: "66.163.1.20", Sender: "u@mail.example", Recipient: "v@foo.net"}
	g.Check(first)
	clock.Advance(301 * time.Second)
	if v := g.Check(second); v.Decision != Defer {
		t.Fatalf("cross-IP retry = %+v, want defer under full-IP keying", v)
	}
}

func TestSubnetOf(t *testing.T) {
	if got := SubnetOf("66.163.1.10"); got != "66.163.1" {
		t.Errorf("SubnetOf = %q", got)
	}
	if got := SubnetOf("::1"); got != "::1" {
		t.Errorf("SubnetOf(v6) = %q", got)
	}
	if got := SubnetOf("bogus"); got != "bogus" {
		t.Errorf("SubnetOf(bogus) = %q", got)
	}
}

func TestGC(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	for i := byte(1); i <= 10; i++ {
		g.Check(Triplet{ClientIP: "10.0.0." + string('0'+i%10), Sender: "s@x.example", Recipient: "r@foo.net"})
	}
	if g.PendingCount() == 0 {
		t.Fatal("no pending records created")
	}
	clock.Advance(50 * time.Hour) // past retry window
	dropped := g.GC()
	if dropped == 0 || g.PendingCount() != 0 {
		t.Fatalf("GC dropped %d, pending %d", dropped, g.PendingCount())
	}
}

func TestStatsCounters(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	g.Check(testTriplet) // deferred-new
	clock.Advance(10 * time.Second)
	g.Check(testTriplet) // deferred-early
	clock.Advance(300 * time.Second)
	g.Check(testTriplet) // passed-retry
	g.Check(testTriplet) // passed-known
	s := g.Stats()
	if s.Checks != 4 || s.DeferredNew != 1 || s.DeferredEarly != 1 || s.PassedRetry != 1 || s.PassedKnown != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDecisionReasonStrings(t *testing.T) {
	if Defer.String() != "defer" || Pass.String() != "pass" || Decision(9).String() == "" {
		t.Error("Decision.String broken")
	}
	for r := ReasonFirstSeen; r <= ReasonWindowExpired; r++ {
		if r.String() == "" {
			t.Errorf("Reason %d has empty string", r)
		}
	}
	if testTriplet.String() == "" {
		t.Error("Triplet.String empty")
	}
}

// Property: for any threshold and any retry delay, the verdict is Pass iff
// the delay is >= threshold (within the retry window, no whitelists).
func TestThresholdBoundaryProperty(t *testing.T) {
	f := func(thresholdSec, delaySec uint16) bool {
		clock := simtime.NewSim(simtime.Epoch)
		p := Policy{
			Threshold:   time.Duration(thresholdSec) * time.Second,
			RetryWindow: 1000 * time.Hour,
		}
		g := New(p, clock)
		g.Check(testTriplet)
		clock.Advance(time.Duration(delaySec) * time.Second)
		v := g.Check(testTriplet)
		wantPass := time.Duration(delaySec)*time.Second >= p.Threshold
		return (v.Decision == Pass) == wantPass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fire-and-forget sender (single attempt per DISTINCT triplet)
// never gets anything delivered, for any positive threshold. Note that the
// triplets must be distinct: re-sending to the same triplet later is
// indistinguishable from a retry and eventually passes — the accidental
// self-whitelisting side effect Section II describes.
func TestFireAndForgetAlwaysBlockedProperty(t *testing.T) {
	f := func(thresholdSec uint16, nRecipients uint8) bool {
		clock := simtime.NewSim(simtime.Epoch)
		p := Policy{Threshold: time.Duration(thresholdSec%3600+1) * time.Second, RetryWindow: 48 * time.Hour}
		g := New(p, clock)
		for i := 0; i < int(nRecipients); i++ {
			tr := Triplet{ClientIP: "203.0.113.50", Sender: "bot@spam.example",
				Recipient: fmt.Sprintf("user%d@foo.net", i)}
			if v := g.Check(tr); v.Decision == Pass {
				return false
			}
			clock.Advance(time.Second)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// And the complementary behaviour: re-sending to the SAME triplet after the
// threshold is exactly how a spammer self-whitelists by volume.
func TestSameTripletResendEventuallyPasses(t *testing.T) {
	g, clock := newTestGreylister(300 * time.Second)
	if v := g.Check(testTriplet); v.Decision != Defer {
		t.Fatalf("first = %+v", v)
	}
	clock.Advance(10 * time.Minute) // bot master issues a new job later
	if v := g.Check(testTriplet); v.Decision != Pass {
		t.Fatalf("second campaign to same triplet = %+v, want pass (accidental whitelisting)", v)
	}
}

func TestConcurrentChecks(t *testing.T) {
	g, _ := newTestGreylister(300 * time.Second)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				g.Check(Triplet{
					ClientIP:  "10.0.0.1",
					Sender:    "s@x.example",
					Recipient: string(rune('a'+i)) + "@foo.net",
				})
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := g.Stats().Checks; got != 800 {
		t.Fatalf("checks = %d, want 800", got)
	}
}
