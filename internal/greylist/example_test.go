package greylist_test

import (
	"fmt"
	"time"

	"repro/internal/greylist"
	"repro/internal/simtime"
)

// Example walks the canonical greylisting flow: first attempt deferred,
// early retry deferred, patient retry accepted, later deliveries pass.
func Example() {
	clock := simtime.NewSim(simtime.Epoch)
	g := greylist.New(greylist.DefaultPolicy(), clock) // Postgrey defaults: 300s threshold

	t := greylist.Triplet{
		ClientIP:  "203.0.113.9",
		Sender:    "sender@remote.example",
		Recipient: "user@local.example",
	}

	show := func(label string) {
		v := g.Check(t)
		fmt.Println(label, v.Decision, "-", v.Reason)
	}
	show("t=0s   ")
	clock.Advance(100 * time.Second)
	show("t=100s ")
	clock.Advance(250 * time.Second)
	show("t=350s ")
	show("t=350s ")

	// Output:
	// t=0s    defer - first-seen
	// t=100s  defer - too-soon
	// t=350s  pass - retry-accepted
	// t=350s  pass - known-triplet
}

// ExampleWhitelist shows the exemptions a deployment configures: big
// provider networks and unprotected control addresses.
func ExampleWhitelist() {
	g := greylist.New(greylist.DefaultPolicy(), simtime.NewSim(simtime.Epoch))
	g.Whitelist().AddCIDR("74.125.0.0/16") // a webmail provider's range
	g.Whitelist().AddRecipient("postmaster@local.example")

	provider := greylist.Triplet{ClientIP: "74.125.3.9", Sender: "a@gmail.example", Recipient: "user@local.example"}
	control := greylist.Triplet{ClientIP: "203.0.113.9", Sender: "bot@spam.example", Recipient: "postmaster@local.example"}
	stranger := greylist.Triplet{ClientIP: "203.0.113.9", Sender: "bot@spam.example", Recipient: "user@local.example"}

	fmt.Println("provider:", g.Check(provider).Reason)
	fmt.Println("control: ", g.Check(control).Reason)
	fmt.Println("stranger:", g.Check(stranger).Reason)

	// Output:
	// provider: whitelisted
	// control:  whitelisted
	// stranger: first-seen
}
