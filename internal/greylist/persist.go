package greylist

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// snapshot is the serialized form of a Greylister's dynamic state. The
// static whitelist is configuration, not state, and is not serialized.
// Version 2 added the Earned table; gob decodes version-1 streams into
// the same struct (Earned stays nil), so old snapshots load unchanged.
type snapshot struct {
	Version int
	Pending map[string]pendingSnap
	Passed  map[string]passedSnap
	Clients map[string]clientSnap
	Earned  map[string]earnedSnap
	Stats   Stats
}

type pendingSnap struct {
	FirstSeen time.Time
	LastSeen  time.Time
	Attempts  int
}

type passedSnap struct {
	PassedAt   time.Time
	LastUsed   time.Time
	Deliveries int
}

type clientSnap struct {
	Deliveries int
	LastUsed   time.Time
}

type earnedSnap struct {
	GrantedAt  time.Time
	LastUsed   time.Time
	Deliveries int
}

const snapshotVersion = 2

// Save writes the greylister's dynamic state (pending and passed triplets,
// auto-whitelist counters, statistics) to w, so a daemon restart does not
// reopen the greylisting window for in-flight retries.
//
// Save only reads: pending records are immutable under the read lock
// (every mutation happens in checkSlow under the exclusive lock) and the
// mutable fields of passed/client records are atomics. It therefore
// holds g.mu as a *reader*, so a periodic snapshot of a large table no
// longer stalls the known-passed fast path the way the previous
// exclusive-lock implementation did.
func (g *Greylister) Save(w io.Writer) error {
	start := time.Now()
	g.mu.RLock()
	snap := g.snapshotLocked()
	g.mu.RUnlock()

	if err := encodeSnapshot(w, snap); err != nil {
		return err
	}
	if inst := g.inst.Load(); inst != nil {
		inst.saveSeconds.ObserveDuration(time.Since(start))
	}
	return nil
}

// snapshotLocked builds the serializable snapshot of the tables.
// Callers hold g.mu (either mode; the loops only read, and the
// mutable record fields are atomics). Shared by Save and the WAL's
// checkpoint barrier.
func (g *Greylister) snapshotLocked() *snapshot {
	snap := &snapshot{
		Version: snapshotVersion,
		Pending: make(map[string]pendingSnap, len(g.pending)),
		Passed:  make(map[string]passedSnap, len(g.passed)),
		Clients: make(map[string]clientSnap, len(g.clients)),
		Earned:  make(map[string]earnedSnap, len(g.earned)),
		Stats:   g.stats.snapshot(),
	}
	for k, v := range g.pending {
		snap.Pending[k] = pendingSnap{FirstSeen: v.firstSeen, LastSeen: v.lastSeen, Attempts: v.attempts}
	}
	for k, v := range g.passed {
		snap.Passed[k] = passedSnap{
			PassedAt:   v.passedAt,
			LastUsed:   time.Unix(0, v.lastUsed.Load()).UTC(),
			Deliveries: int(v.deliveries.Load()),
		}
	}
	for k, v := range g.clients {
		snap.Clients[k] = clientSnap{
			Deliveries: int(v.deliveries.Load()),
			LastUsed:   time.Unix(0, v.lastUsed.Load()).UTC(),
		}
	}
	for k, v := range g.earned {
		snap.Earned[k] = earnedSnap{
			GrantedAt:  v.grantedAt,
			LastUsed:   time.Unix(0, v.lastUsed.Load()).UTC(),
			Deliveries: int(v.deliveries.Load()),
		}
	}
	return snap
}

// encodeSnapshot writes one snapshot as Save's gob stream.
func encodeSnapshot(w io.Writer, snap *snapshot) error {
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("greylist: save: %w", err)
	}
	return nil
}

// decodeSnapshot reads and validates one serialized snapshot.
func decodeSnapshot(r io.Reader) (*snapshot, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("greylist: load: %w", err)
	}
	if snap.Version < 1 || snap.Version > snapshotVersion {
		return nil, fmt.Errorf("greylist: load: unsupported snapshot version %d", snap.Version)
	}
	return &snap, nil
}

// restoreSnapshot replaces the engine's dynamic state with the decoded
// snapshot's.
func (g *Greylister) restoreSnapshot(snap *snapshot) {
	pending := make(map[string]*pendingRecord, len(snap.Pending))
	for k, v := range snap.Pending {
		pending[k] = &pendingRecord{firstSeen: v.FirstSeen, lastSeen: v.LastSeen, attempts: v.Attempts}
	}
	passed := make(map[string]*passedRecord, len(snap.Passed))
	for k, v := range snap.Passed {
		p := &passedRecord{passedAt: v.PassedAt}
		p.lastUsed.Store(v.LastUsed.UnixNano())
		p.deliveries.Store(int64(v.Deliveries))
		passed[k] = p
	}
	clients := make(map[string]*clientRecord, len(snap.Clients))
	for k, v := range snap.Clients {
		c := &clientRecord{}
		c.deliveries.Store(int64(v.Deliveries))
		c.lastUsed.Store(v.LastUsed.UnixNano())
		clients[k] = c
	}
	earned := make(map[string]*earnedRecord, len(snap.Earned))
	for k, v := range snap.Earned {
		e := &earnedRecord{grantedAt: v.GrantedAt}
		e.lastUsed.Store(v.LastUsed.UnixNano())
		e.deliveries.Store(int64(v.Deliveries))
		earned[k] = e
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	g.pending = pending
	g.passed = passed
	g.clients = clients
	g.earned = earned
	g.stats.restore(snap.Stats)
}

// Load replaces the greylister's dynamic state with a snapshot written by
// Save. The policy and whitelist are untouched.
func (g *Greylister) Load(r io.Reader) error {
	start := time.Now()
	snap, err := decodeSnapshot(r)
	if err != nil {
		return err
	}
	g.restoreSnapshot(snap)
	if inst := g.inst.Load(); inst != nil {
		inst.loadSeconds.ObserveDuration(time.Since(start))
	}
	return nil
}

// SaveFile atomically writes the state to path (write to a temp file in
// the same directory, fsync, rename) so a crash mid-save never corrupts
// the previous state.
func (g *Greylister) SaveFile(path string) error {
	return atomicSave(path, g.Save)
}

// LoadFile restores state written by SaveFile.
func (g *Greylister) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("greylist: load: %w", err)
	}
	defer f.Close()
	return g.Load(f)
}

// SaveFile atomically writes the sharded state to path.
func (s *Sharded) SaveFile(path string) error {
	return atomicSave(path, s.Save)
}

// LoadFile restores sharded state written by SaveFile.
func (s *Sharded) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("greylist: load: %w", err)
	}
	defer f.Close()
	return s.Load(f)
}

func atomicSave(path string, save func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("greylist: save: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("greylist: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("greylist: save: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("greylist: save: %w", err)
	}
	// The rename is only durable once the directory entry is: fsync the
	// parent, or a power loss right here can forget the just-renamed
	// file while remembering the unlink of the old one.
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames inside it survive power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("greylist: save: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("greylist: save: %w", err)
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("greylist: save: %w", err)
	}
	return nil
}
