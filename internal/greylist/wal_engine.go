package greylist

import (
	"bytes"
	"fmt"
	"io"
	"time"
)

// Engine side of the write-ahead log: how Greylister and Sharded
// journal mutations, replay a recovered log, and quiesce for the
// checkpoint barrier. The WAL itself (file format, ring, consumer)
// lives in wal.go.

// clientPrefix extracts the client component of a canonical triplet
// key — the bytes before the first NUL (the key layout appendKey
// builds). Keys with no NUL (never produced by appendKey) are treated
// as all-client, which keeps replay total on any input.
func clientPrefix(key []byte) []byte {
	if i := bytes.IndexByte(key, 0); i >= 0 {
		return key[:i]
	}
	return key
}

// attachWAL starts journaling every mutation into w. It takes the
// exclusive lock so the plain g.wal pointer is safely visible to
// check paths running under either lock mode.
func (g *Greylister) attachWAL(w *WAL) {
	g.mu.Lock()
	g.wal = w
	g.mu.Unlock()
}

// applyWALBatch replays decoded log records in order under one
// exclusive lock. Replay never journals (g.wal is attached only after
// recovery) and never touches Stats — counters are frozen at whatever
// the checkpoint snapshot carried.
func (g *Greylister) applyWALBatch(ops []walOp) {
	g.mu.Lock()
	for _, op := range ops {
		g.applyOpLocked(op)
	}
	g.mu.Unlock()
}

// applyOpLocked applies one log record to the tables. Callers hold
// g.mu exclusively. Each case mirrors the live mutation that logged
// the record (see the walOp* constants), so replaying a log prefix
// reconstructs the tables the live engine had when that prefix was
// written.
func (g *Greylister) applyOpLocked(op walOp) {
	switch op.op {
	case walOpPendingUpsert:
		rec, ok := g.pending[string(op.key)]
		if !ok {
			rec = &pendingRecord{}
			g.pending[string(op.key)] = rec
		}
		rec.firstSeen = time.Unix(0, op.t1)
		rec.lastSeen = time.Unix(0, op.t2)
		rec.attempts = int(op.attempts)
	case walOpPromote:
		delete(g.pending, string(op.key))
		p := &passedRecord{passedAt: time.Unix(0, op.t1)}
		p.lastUsed.Store(op.t1)
		p.deliveries.Store(1)
		g.passed[string(op.key)] = p
		g.creditClient(clientPrefix(op.key), op.t1)
		g.grantEarned(clientPrefix(op.key), time.Unix(0, op.t1))
	case walOpTouch:
		p, ok := g.passed[string(op.key)]
		if !ok {
			// A touch always follows the promote (or checkpoint) that
			// created the record; tolerate a gap by recreating it so a
			// damaged log still converges.
			p = &passedRecord{passedAt: time.Unix(0, op.t1)}
			g.passed[string(op.key)] = p
		}
		p.lastUsed.Store(op.t1)
		p.deliveries.Add(1)
		g.creditClient(clientPrefix(op.key), op.t1)
	case walOpAutoPass:
		if c, ok := g.clients[string(clientPrefix(op.key))]; ok {
			c.lastUsed.Store(op.t1)
		}
	case walOpDelPassed:
		delete(g.passed, string(op.key))
	case walOpDelClient:
		delete(g.clients, string(clientPrefix(op.key)))
	case walOpEarnTouch:
		e, ok := g.earned[string(clientPrefix(op.key))]
		if !ok {
			// Tolerate a gap before the promote that granted the
			// entry (damaged log) by recreating it, like walOpTouch.
			e = &earnedRecord{grantedAt: time.Unix(0, op.t1)}
			g.earned[string(clientPrefix(op.key))] = e
		}
		e.lastUsed.Store(op.t1)
		e.deliveries.Add(1)
	case walOpDelEarned:
		delete(g.earned, string(clientPrefix(op.key)))
	case walOpGC:
		g.gcLocked(time.Unix(0, op.t1))
	}
}

// walBarrier quiesces the engine for a checkpoint: under the
// exclusive lock it drains the ring (no producer can be mid-append
// while we hold the lock its mutation required), snapshots the
// tables, and — on the Close path — detaches the WAL inside the same
// critical section so no record can follow the final checkpoint. The
// returned encoder writes the exact bytes Save would.
//
// The lock is acquired with lockWithDrain: a producer yielding on a
// full ring inside a read lock must be drained before it can release
// that lock, so a plain Lock here could deadlock with it.
func (g *Greylister) walBarrier(w *WAL, detach bool) func(io.Writer) error {
	w.lockWithDrain(g.mu.TryLock)
	w.drainRing()
	snap := g.snapshotLocked()
	if detach {
		g.wal = nil
	}
	g.mu.Unlock()
	return func(wr io.Writer) error { return encodeSnapshot(wr, snap) }
}

var _ walEngine = (*Greylister)(nil)

// attachWAL points every shard at the shared WAL; shard locks
// serialize visibility exactly as in the single-engine case.
func (s *Sharded) attachWAL(w *WAL) {
	for _, g := range s.shards {
		g.attachWAL(w)
	}
}

// applyWALBatch routes replayed records to shards by the same key
// hash shardIndex uses live, so a log written under one shard count
// replays correctly under any other. Records for different shards
// commute (shards share no state), so only the per-shard order —
// which routing preserves — matters. walOpGC carries no key and is a
// barrier: everything before it is flushed, then every shard sweeps.
func (s *Sharded) applyWALBatch(ops []walOp) {
	if len(s.shards) == 1 {
		s.shards[0].applyWALBatch(ops)
		return
	}
	buckets := make([][]walOp, len(s.shards))
	flush := func() {
		for i, b := range buckets {
			if len(b) > 0 {
				s.shards[i].applyWALBatch(b)
				buckets[i] = b[:0]
			}
		}
	}
	for _, op := range ops {
		if op.op == walOpGC {
			flush()
			one := [1]walOp{op}
			for _, g := range s.shards {
				g.applyWALBatch(one[:])
			}
			continue
		}
		i := int(fnv1a(op.key) % uint32(len(s.shards)))
		buckets[i] = append(buckets[i], op)
	}
	flush()
}

// walBarrier locks every shard (draining throughout), snapshots them
// at one instant, optionally detaches, and returns an encoder for the
// exact stream Sharded.Save writes — so a checkpoint taken at N
// shards recovers (resharded by Load) at any other count.
func (s *Sharded) walBarrier(w *WAL, detach bool) func(io.Writer) error {
	for _, g := range s.shards {
		w.lockWithDrain(g.mu.TryLock)
	}
	w.drainRing()
	snaps := make([]*snapshot, len(s.shards))
	for i, g := range s.shards {
		snaps[i] = g.snapshotLocked()
		if detach {
			g.wal = nil
		}
	}
	for _, g := range s.shards {
		g.mu.Unlock()
	}
	return func(wr io.Writer) error {
		if _, err := fmt.Fprintf(wr, "shards %d\n", len(snaps)); err != nil {
			return fmt.Errorf("greylist: save sharded: %w", err)
		}
		for _, snap := range snaps {
			if err := encodeSnapshot(wr, snap); err != nil {
				return err
			}
		}
		return nil
	}
}

var _ walEngine = (*Sharded)(nil)
