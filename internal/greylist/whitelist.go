package greylist

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"

	"repro/internal/smtpproto"
)

// Whitelist holds the static exemptions a greylisting deployment needs in
// practice. The paper's Section VI stresses two of them:
//
//   - Client exemptions for big webmail providers, which deliver from many
//     addresses and sometimes give up quickly (Table III shows aol.com
//     abandoning after ~30 minutes): Postgrey ships such a list by
//     default, and the authors had to remove it for their experiment.
//   - Recipient exemptions such as postmaster, which the authors used as
//     unprotected control addresses to verify that Kelihos was resending
//     the same campaign (Section V-A).
//
// A Whitelist is safe for concurrent use.
type Whitelist struct {
	mu            sync.RWMutex
	ips           map[string]bool
	cidrs         []netip.Prefix
	senderDomains map[string]bool
	recipients    map[string]bool
}

// NewWhitelist returns an empty whitelist.
func NewWhitelist() *Whitelist {
	return &Whitelist{
		ips:           make(map[string]bool),
		senderDomains: make(map[string]bool),
		recipients:    make(map[string]bool),
	}
}

// AddIP exempts a single client address.
func (w *Whitelist) AddIP(ip string) error {
	if _, err := netip.ParseAddr(ip); err != nil {
		return fmt.Errorf("greylist: %q is not an IP address", ip)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ips[ip] = true
	return nil
}

// AddCIDR exempts a client network in CIDR form ("66.163.0.0/16"). The
// address part may carry host bits ("66.163.1.2/16" works); the stored
// prefix is masked, matching net.ParseCIDR's old behaviour.
func (w *Whitelist) AddCIDR(cidr string) error {
	p, err := netip.ParsePrefix(cidr)
	if err != nil {
		return fmt.Errorf("greylist: %w", err)
	}
	p = p.Masked()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cidrs = append(w.cidrs, p)
	return nil
}

// AddSenderDomain exempts every envelope sender under the domain (and its
// subdomains).
func (w *Whitelist) AddSenderDomain(domain string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.senderDomains[strings.ToLower(strings.TrimSuffix(domain, "."))] = true
}

// AddRecipient exempts a recipient mailbox: deliveries to it bypass
// greylisting entirely (the paper's unprotected postmaster addresses).
func (w *Whitelist) AddRecipient(mailbox string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recipients[strings.ToLower(mailbox)] = true
}

// Match reports whether the triplet is exempt from greylisting.
//
// Match sits on the Check hot path, so each category is skipped — along
// with whatever parsing or lowercasing it would need — when it is empty;
// the common deployment with no exemptions configured does no work at all
// beyond the lock.
func (w *Whitelist) Match(t Triplet) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if len(w.recipients) > 0 && w.recipients[strings.ToLower(t.Recipient)] {
		return true
	}
	if len(w.ips) > 0 && w.ips[t.ClientIP] {
		return true
	}
	if len(w.cidrs) > 0 {
		// netip.ParseAddr is allocation-free (a value type), unlike the
		// old net.ParseIP slice — this scan costs nothing but compares.
		if a, err := netip.ParseAddr(t.ClientIP); err == nil {
			a = a.Unmap()
			for _, p := range w.cidrs {
				if p.Contains(a) {
					return true
				}
			}
		}
	}
	if len(w.senderDomains) == 0 {
		return false
	}
	if d := smtpproto.DomainOf(t.Sender); d != "" {
		for d != "" {
			if w.senderDomains[d] {
				return true
			}
			dot := strings.IndexByte(d, '.')
			if dot < 0 {
				break
			}
			d = d[dot+1:]
		}
	}
	return false
}

// Sizes reports entry counts (ips, cidrs, sender domains, recipients).
func (w *Whitelist) Sizes() (ips, cidrs, senderDomains, recipients int) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.ips), len(w.cidrs), len(w.senderDomains), len(w.recipients)
}
