package greylist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// walTestPolicy compresses every lifecycle transition into a short
// simulated run: 300 s threshold, 2 000 s retry window, 5 000 s pass
// and auto-whitelist lifetimes, auto-whitelist after 3 deliveries.
func walTestPolicy() Policy {
	return Policy{
		Threshold:             300 * time.Second,
		RetryWindow:           2000 * time.Second,
		PassLifetime:          5000 * time.Second,
		AutoWhitelistAfter:    3,
		AutoWhitelistLifetime: 5000 * time.Second,
	}
}

// walWorkload drives a deterministic traffic mix over a pool of 23
// recurring triplets: first-seen deferrals, immediate too-soon
// retries, accepted retries (the 920 s recurrence gap crosses the
// 300 s threshold), known-passed touches, auto-whitelist promotion and
// hits, batch checks, periodic GC, and — via the occasional 6 000 s
// jump — window expiries and lifetime-based deletions. Identical
// inputs on identical engines produce identical tables.
func walWorkload(e Engine, clock *simtime.Sim, start, end int) {
	var out []Verdict
	for i := start; i < end; i++ {
		tr := Triplet{
			ClientIP:  fmt.Sprintf("203.0.113.%d", i%23),
			Sender:    fmt.Sprintf("s%d@x.example", i%23),
			Recipient: fmt.Sprintf("u%d@y.example", i%23),
		}
		if i%11 == 0 {
			out = e.CheckBatch([]Triplet{tr,
				{ClientIP: tr.ClientIP, Sender: tr.Sender, Recipient: "cc@y.example"},
			}, out)
		} else {
			e.Check(tr)
		}
		if i%6 == 0 {
			e.Check(tr) // same instant: too-soon retry (or extra touch)
		}
		clock.Advance(40 * time.Second)
		if i%37 == 0 {
			clock.Advance(6000 * time.Second) // expire passed/pending records
		}
		if i%53 == 0 {
			e.GC()
		}
	}
}

// dumpShardTables renders one Greylister's tables as sorted text with
// nanosecond timestamps — a canonical form immune to gob's map-order
// and time-zone encoding variance. Stats are deliberately excluded:
// they are frozen at checkpoint time, not replayed (see DESIGN.md).
func dumpShardTables(g *Greylister) string {
	g.mu.RLock()
	snap := g.snapshotLocked()
	g.mu.RUnlock()
	var sb strings.Builder
	keys := make([]string, 0, len(snap.Pending))
	for k := range snap.Pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := snap.Pending[k]
		fmt.Fprintf(&sb, "P %q %d %d %d\n", k, v.FirstSeen.UnixNano(), v.LastSeen.UnixNano(), v.Attempts)
	}
	keys = keys[:0]
	for k := range snap.Passed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := snap.Passed[k]
		fmt.Fprintf(&sb, "W %q %d %d %d\n", k, v.PassedAt.UnixNano(), v.LastUsed.UnixNano(), v.Deliveries)
	}
	keys = keys[:0]
	for k := range snap.Clients {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := snap.Clients[k]
		fmt.Fprintf(&sb, "C %q %d %d\n", k, v.Deliveries, v.LastUsed.UnixNano())
	}
	return sb.String()
}

// dumpEngineTables renders an engine's complete table state (per shard
// for Sharded) for byte-equivalence assertions.
func dumpEngineTables(t *testing.T, e Engine) string {
	t.Helper()
	switch v := e.(type) {
	case *Greylister:
		return dumpShardTables(v)
	case *Sharded:
		var sb strings.Builder
		for i, g := range v.shards {
			fmt.Fprintf(&sb, "shard %d\n", i)
			sb.WriteString(dumpShardTables(g))
		}
		return sb.String()
	}
	t.Fatalf("unknown engine type %T", e)
	return ""
}

// dumpTripletTables renders only the triplet-keyed tables (pending,
// passed) merged across shards — the shard-count-independent view used
// when recovering a log under a different -shards setting (client
// records are replicated by reshardLoad, so they have no merged form).
func dumpTripletTables(t *testing.T, e Engine) string {
	t.Helper()
	var shards []*Greylister
	switch v := e.(type) {
	case *Greylister:
		shards = []*Greylister{v}
	case *Sharded:
		shards = v.shards
	default:
		t.Fatalf("unknown engine type %T", e)
	}
	var lines []string
	for _, g := range shards {
		g.mu.RLock()
		snap := g.snapshotLocked()
		g.mu.RUnlock()
		for k, v := range snap.Pending {
			lines = append(lines, fmt.Sprintf("P %q %d %d %d", k, v.FirstSeen.UnixNano(), v.LastSeen.UnixNano(), v.Attempts))
		}
		for k, v := range snap.Passed {
			lines = append(lines, fmt.Sprintf("W %q %d %d %d", k, v.PassedAt.UnixNano(), v.LastUsed.UnixNano(), v.Deliveries))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// walPaths returns (log, checkpoint) paths inside dir.
func walPaths(dir string) (string, string) {
	return filepath.Join(dir, "wal.log"), filepath.Join(dir, "state.ck")
}

// openTestWAL opens a WAL with fsync off (tests copy files after an
// explicit Sync, so the policy is irrelevant to durability here).
func openTestWAL(t *testing.T, dir string, e Engine, compactBytes int64) (*WAL, RecoverInfo) {
	t.Helper()
	log, ck := walPaths(dir)
	w, info, err := OpenWAL(WALConfig{
		Path:           log,
		CheckpointPath: ck,
		Sync:           SyncNone,
		CompactBytes:   compactBytes,
	}, e)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w, info
}

// TestWALReplayEquivalence is the core crash-recovery property: run a
// workload on a WAL-attached engine, "kill -9" it (copy the log and
// checkpoint files, abandoning the live daemon), recover into a fresh
// engine, and require the recovered tables to be byte-equivalent to an
// uninterrupted WAL-free run of the same workload — for the
// single-lock engine and Sharded at several shard counts, with
// compaction off and with compaction forced repeatedly mid-run.
func TestWALReplayEquivalence(t *testing.T) {
	engines := []struct {
		name string
		make func(c simtime.Clock) Engine
	}{
		{"single", func(c simtime.Clock) Engine { return New(walTestPolicy(), c) }},
		{"sharded3", func(c simtime.Clock) Engine { return NewSharded(3, walTestPolicy(), c) }},
		{"sharded8", func(c simtime.Clock) Engine { return NewSharded(8, walTestPolicy(), c) }},
	}
	compactions := []struct {
		name  string
		bytes int64
	}{
		{"compact-off", -1},
		{"compact-2k", 2048}, // many checkpoint cycles over ~1400 records
	}
	for _, ec := range engines {
		for _, cc := range compactions {
			t.Run(ec.name+"/"+cc.name, func(t *testing.T) {
				clockA := simtime.NewSim(simtime.Epoch)
				a := ec.make(clockA)
				dir := t.TempDir()
				w, _ := openTestWAL(t, dir, a, cc.bytes)
				walWorkload(a, clockA, 0, 600)
				if err := w.Sync(); err != nil {
					t.Fatalf("Sync: %v", err)
				}

				clockB := simtime.NewSim(simtime.Epoch)
				b := ec.make(clockB)
				walWorkload(b, clockB, 0, 600)

				// The crash: the files as they are this instant, the
				// running WAL never told.
				cdir := t.TempDir()
				srcLog, srcCk := walPaths(dir)
				dstLog, dstCk := walPaths(cdir)
				copyFile(t, srcLog, dstLog)
				copyFile(t, srcCk, dstCk)

				r := ec.make(simtime.NewSim(simtime.Epoch))
				w2, info := openTestWAL(t, cdir, r, -1)
				defer w2.Close()
				if info.TornBytes != 0 {
					t.Fatalf("torn bytes after clean sync = %d", info.TornBytes)
				}
				if got, want := dumpEngineTables(t, r), dumpEngineTables(t, b); got != want {
					t.Errorf("recovered tables differ from uninterrupted run\ngot:\n%s\nwant:\n%s", got, want)
				}
			})
		}
	}
}

// TestWALTornTailTruncation cuts the log mid-record (a crash mid-append)
// and past the end (garbage), and requires recovery to replay exactly
// the valid prefix, reporting the discarded bytes.
func TestWALTornTailTruncation(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	a := New(walTestPolicy(), clock)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, a, -1)
	walWorkload(a, clock, 0, 250)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	srcLog, srcCk := walPaths(dir)
	logData, err := os.ReadFile(srcLog)
	if err != nil {
		t.Fatal(err)
	}

	// Walk the record framing to find clean cut points.
	bounds := []int64{walHeaderSize}
	for off := walHeaderSize; off < len(logData); {
		psize := walPayloadSize(logData[off])
		if psize < 0 {
			t.Fatalf("invalid op %#x at %d in a log we just wrote", logData[off], off)
		}
		keyLen := int(binary.LittleEndian.Uint16(logData[off+1:]))
		off += 3 + keyLen + psize + 4
		bounds = append(bounds, int64(off))
	}
	if int(bounds[len(bounds)-1]) != len(logData) {
		t.Fatalf("log does not end on a record boundary: %d vs %d", bounds[len(bounds)-1], len(logData))
	}
	if len(bounds) < 10 {
		t.Fatalf("workload produced only %d records", len(bounds)-1)
	}
	cut := bounds[len(bounds)/2]

	recover := func(name string, log []byte) (Engine, RecoverInfo) {
		cdir := t.TempDir()
		dstLog, dstCk := walPaths(cdir)
		if err := os.WriteFile(dstLog, log, 0o644); err != nil {
			t.Fatal(err)
		}
		copyFile(t, srcCk, dstCk)
		r := New(walTestPolicy(), simtime.NewSim(simtime.Epoch))
		w, info, err := OpenWAL(WALConfig{Path: dstLog, CheckpointPath: dstCk, Sync: SyncNone, CompactBytes: -1}, r)
		if err != nil {
			t.Fatalf("%s: OpenWAL: %v", name, err)
		}
		t.Cleanup(func() { w.Close() })
		return r, info
	}

	clean, cleanInfo := recover("clean-cut", logData[:cut])
	if cleanInfo.TornBytes != 0 {
		t.Fatalf("clean cut reported %d torn bytes", cleanInfo.TornBytes)
	}

	// Torn mid-record: three bytes of the next record made it to disk.
	torn, tornInfo := recover("torn", logData[:cut+3])
	if tornInfo.TornBytes != 3 {
		t.Errorf("torn bytes = %d, want 3", tornInfo.TornBytes)
	}
	if got, want := dumpShardTables(torn.(*Greylister)), dumpShardTables(clean.(*Greylister)); got != want {
		t.Errorf("torn-tail recovery != clean-prefix recovery\ngot:\n%s\nwant:\n%s", got, want)
	}
	if tornInfo.ReplayedRecords != cleanInfo.ReplayedRecords {
		t.Errorf("replayed %d records, want %d", tornInfo.ReplayedRecords, cleanInfo.ReplayedRecords)
	}

	// Garbage past a valid log: an invalid op byte can never resync.
	garbage := append(append([]byte{}, logData...), 0xFF, 0xEE, 0xDD, 0xCC, 0xBB, 0xAA, 0x99)
	full, fullInfo := recover("garbage", garbage)
	if fullInfo.TornBytes != 7 {
		t.Errorf("garbage torn bytes = %d, want 7", fullInfo.TornBytes)
	}
	if got, want := dumpShardTables(full.(*Greylister)), dumpShardTables(a); got != want {
		t.Errorf("garbage-tail recovery != live state\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWALCheckpointWatermark manufactures the two compaction crash
// windows the generation/watermark pair exists for: a checkpoint that
// covers a prefix of the same-generation log (crash between checkpoint
// write and log reset — replay must skip the covered prefix, or every
// pre-checkpoint delivery count doubles), and a checkpoint from a
// *newer* generation than the log (replay must skip everything).
func TestWALCheckpointWatermark(t *testing.T) {
	clockA := simtime.NewSim(simtime.Epoch)
	a := New(walTestPolicy(), clockA)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, a, -1)

	walWorkload(a, clockA, 0, 150)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	srcLog, _ := walPaths(dir)
	st, err := os.Stat(srcLog)
	if err != nil {
		t.Fatal(err)
	}
	watermark := st.Size() // log offset the manufactured checkpoint covers

	// Reference engines: state at the watermark, and at the end.
	clockR := simtime.NewSim(simtime.Epoch)
	r1 := New(walTestPolicy(), clockR)
	walWorkload(r1, clockR, 0, 150)
	clockF := simtime.NewSim(simtime.Epoch)
	full := New(walTestPolicy(), clockF)
	walWorkload(full, clockF, 0, 300)

	walWorkload(a, clockA, 150, 300)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	gen := w.Generation()

	build := func(ckGen, ckWatermark uint64) (string, string) {
		cdir := t.TempDir()
		dstLog, dstCk := walPaths(cdir)
		copyFile(t, srcLog, dstLog)
		cw := &WAL{cfg: WALConfig{CheckpointPath: dstCk}}
		if err := cw.writeCheckpoint(ckGen, ckWatermark, r1.Save); err != nil {
			t.Fatal(err)
		}
		return dstLog, dstCk
	}
	recover := func(log, ck string) *Greylister {
		r := New(walTestPolicy(), simtime.NewSim(simtime.Epoch))
		w, _, err := OpenWAL(WALConfig{Path: log, CheckpointPath: ck, Sync: SyncNone, CompactBytes: -1}, r)
		if err != nil {
			t.Fatalf("OpenWAL: %v", err)
		}
		t.Cleanup(func() { w.Close() })
		return r
	}

	// Same generation, watermark at the phase-1 boundary: replay phase 2
	// only, on top of the phase-1 snapshot.
	r := recover(build(gen, uint64(watermark)))
	if got, want := dumpShardTables(r), dumpShardTables(full); got != want {
		t.Errorf("watermark skip: recovered != full run\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Checkpoint from a later generation: the whole log is stale.
	r = recover(build(gen+1, 0))
	if got, want := dumpShardTables(r), dumpShardTables(r1); got != want {
		t.Errorf("stale log: recovered != checkpoint state\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWALLegacySnapshot feeds OpenWAL a raw pre-WAL Save file as the
// checkpoint: it must load whole (generation 0) and upgrade to an
// enveloped checkpoint on the recovery compaction.
func TestWALLegacySnapshot(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(walTestPolicy(), clock)
	walWorkload(g, clock, 0, 120)
	dir := t.TempDir()
	_, ck := walPaths(dir)
	if err := g.SaveFile(ck); err != nil {
		t.Fatal(err)
	}

	r := New(walTestPolicy(), simtime.NewSim(simtime.Epoch))
	w, info := openTestWAL(t, dir, r, -1)
	defer w.Close()
	if !info.CheckpointLoaded || !info.LegacySnapshot {
		t.Fatalf("info = %+v, want legacy snapshot loaded", info)
	}
	if got, want := dumpShardTables(r), dumpShardTables(g); got != want {
		t.Errorf("legacy snapshot load mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The recovery compaction rewrote it enveloped: a second recovery
	// must see a normal checkpoint.
	r2 := New(walTestPolicy(), simtime.NewSim(simtime.Epoch))
	w2, info2 := openTestWAL(t, dir, r2, -1)
	defer w2.Close()
	if !info2.CheckpointLoaded || info2.LegacySnapshot {
		t.Fatalf("second recovery info = %+v, want enveloped checkpoint", info2)
	}
}

// TestWALKeyingMismatch: a log and checkpoint written under full-IP
// keying must refuse to load into a subnet-keyed engine (every stored
// key would be wrong) instead of silently corrupting the tables.
func TestWALKeyingMismatch(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(walTestPolicy(), clock)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, g, -1)
	walWorkload(g, clock, 0, 60)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	p := walTestPolicy()
	p.SubnetKeying = true
	r := New(p, simtime.NewSim(simtime.Epoch))
	log, ck := walPaths(dir)
	_, _, err := OpenWAL(WALConfig{Path: log, CheckpointPath: ck, Sync: SyncNone}, r)
	if !errors.Is(err, ErrWALMismatch) {
		t.Fatalf("err = %v, want ErrWALMismatch", err)
	}
}

// TestWALCrossShardRecovery recovers a 3-shard crash image into a
// 5-shard engine: the checkpoint reshards through Load and the log
// records route by key hash, so every triplet record survives the
// shard-count change.
func TestWALCrossShardRecovery(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	a := NewSharded(3, walTestPolicy(), clock)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, a, 2048)
	walWorkload(a, clock, 0, 400)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	cdir := t.TempDir()
	srcLog, srcCk := walPaths(dir)
	dstLog, dstCk := walPaths(cdir)
	copyFile(t, srcLog, dstLog)
	copyFile(t, srcCk, dstCk)

	r := NewSharded(5, walTestPolicy(), simtime.NewSim(simtime.Epoch))
	w2, _ := openTestWAL(t, cdir, r, -1)
	defer w2.Close()
	if got, want := dumpTripletTables(t, r), dumpTripletTables(t, a); got != want {
		t.Errorf("5-shard recovery of 3-shard image lost triplet state\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWALCloseCheckpoints: a clean Close leaves a checkpoint plus an
// empty log, reopening replays zero records, and the detached engine
// keeps serving (journaling off).
func TestWALCloseCheckpoints(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(walTestPolicy(), clock)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, g, -1)
	walWorkload(g, clock, 0, 200)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	log, _ := walPaths(dir)
	st, err := os.Stat(log)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != walHeaderSize {
		t.Fatalf("log after Close is %d bytes, want bare %d-byte header", st.Size(), walHeaderSize)
	}

	// Detached engine still serves.
	g.Check(Triplet{ClientIP: "192.0.2.1", Sender: "a@x.example", Recipient: "u@y.example"})

	before := dumpShardTables(g)
	r := New(walTestPolicy(), simtime.NewSim(simtime.Epoch))
	w2, info := openTestWAL(t, dir, r, -1)
	defer w2.Close()
	if info.ReplayedRecords != 0 || !info.CheckpointLoaded {
		t.Fatalf("info = %+v, want checkpoint only", info)
	}
	// The post-Close check above was not journaled; strip it by
	// comparing against the recovered dump plus nothing — the recovered
	// state must equal g at Close time, which lacks that one pending
	// record. Easiest: recovered tables must be a subset of g's current
	// dump minus exactly that record; assert by removing it from g.
	got := dumpShardTables(r)
	if got == before {
		t.Fatalf("recovery included the un-journaled post-Close check")
	}
	if want := before; !strings.Contains(want, "192.0.2.1") {
		t.Fatalf("setup: post-Close check missing from live dump")
	}
	var kept []string
	for _, line := range strings.SplitAfter(before, "\n") {
		if line == "" || strings.Contains(line, "192.0.2.1") {
			continue
		}
		kept = append(kept, line)
	}
	if want := strings.Join(kept, ""); got != want {
		t.Errorf("recovered state != state at Close\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWALMetrics: the wal_* series are exported and move.
func TestWALMetrics(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(walTestPolicy(), clock)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, g, 4096)
	reg := metrics.NewRegistry()
	w.Register(reg)
	walWorkload(g, clock, 0, 300)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"wal_records_total", "wal_bytes_total", "wal_fsyncs_total",
		"wal_compactions_total", "wal_checkpoint_errors_total",
		"wal_checkpoint_bytes_total", "wal_replayed_records_total",
		"wal_torn_bytes_total", "wal_log_bytes", "wal_ring_backlog",
		"wal_compact_seconds",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if w.nRecords.Load() == 0 || w.nCompactions.Load() == 0 {
		t.Fatalf("records=%d compactions=%d, want both nonzero", w.nRecords.Load(), w.nCompactions.Load())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALKnownPassedNoAllocs locks in the acceptance criterion outside
// the benchmark harness: the known-passed fast path stays 0 allocs/op
// with the WAL attached.
func TestWALKnownPassedNoAllocs(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := walTestPolicy()
	p.PassLifetime = 0 // never expires, whatever AllocsPerRun's timing
	p.AutoWhitelistAfter = 0
	p.AutoWhitelistLifetime = 0
	g := New(p, clock)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, g, -1)
	defer w.Close()

	tr := Triplet{ClientIP: "203.0.113.7", Sender: "a@b.example", Recipient: "u@victim.example"}
	g.Check(tr)
	clock.Advance(301 * time.Second)
	if v := g.Check(tr); v.Reason != ReasonRetryAccepted {
		t.Fatalf("warmup: %+v", v)
	}
	// Warm the consumer's frame buffer to its steady-state capacity.
	for i := 0; i < 2000; i++ {
		g.Check(tr)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(2000, func() { g.Check(tr) }); allocs != 0 {
		t.Errorf("known-passed Check with WAL = %v allocs/op, want 0", allocs)
	}
}

// TestWALConsumerFailureDegrades: when the consumer dies on an I/O
// error (log file removed and the descriptor poisoned is hard to fake
// portably, so the file is closed out from under it via the failed
// flag), producers must drop records instead of wedging Check.
func TestWALConsumerFailure(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(walTestPolicy(), clock)
	dir := t.TempDir()
	w, _ := openTestWAL(t, dir, g, -1)

	// Poison the consumer: close its file so the next write errors.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	w.f.Close()
	walWorkload(g, clock, 0, 100) // must not wedge
	deadline := time.Now().Add(5 * time.Second)
	for !w.failed.Load() && time.Now().Before(deadline) {
		g.Check(Triplet{ClientIP: "198.51.100.1", Sender: "x@y.example", Recipient: "u@y.example"})
		time.Sleep(time.Millisecond)
	}
	if !w.failed.Load() {
		t.Fatal("consumer never marked itself failed after its file was closed")
	}
	// Checks keep serving with journaling off.
	g.Check(Triplet{ClientIP: "198.51.100.2", Sender: "x@y.example", Recipient: "u@y.example"})
	if err := w.Close(); err == nil {
		t.Fatal("Close after consumer death returned nil, want the parked error")
	}
}
