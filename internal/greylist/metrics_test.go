package greylist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

func exposition(t *testing.T, reg *metrics.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.String()
}

// greylistMetricNames is the stable exported catalogue; renaming any of
// these breaks dashboards, so the test pins them.
var greylistMetricNames = []string{
	"greylist_checks_total",
	"greylist_verdicts_total",
	"greylist_triplets_recorded_total",
	"greylist_triplets_whitelisted_total",
	"greylist_gc_sweeps_total",
	"greylist_gc_dropped_total",
	"greylist_pending_triplets",
	"greylist_passed_triplets",
	"greylist_autowl_clients",
	"greylist_shards",
	"greylist_check_seconds",
	"greylist_batch_seconds",
	"greylist_batch_size",
	"greylist_snapshot_save_seconds",
	"greylist_snapshot_load_seconds",
}

func TestRegisterExportsCatalogue(t *testing.T) {
	for name, mk := range map[string]func() Engine{
		"single":  func() Engine { return New(DefaultPolicy(), simtime.NewSim(simtime.Epoch)) },
		"sharded": func() Engine { return NewSharded(4, DefaultPolicy(), simtime.NewSim(simtime.Epoch)) },
	} {
		t.Run(name, func(t *testing.T) {
			g := mk()
			reg := metrics.NewRegistry()
			g.Register(reg)
			out := exposition(t, reg)
			for _, name := range greylistMetricNames {
				if !strings.Contains(out, "# TYPE "+name+" ") {
					t.Errorf("catalogue metric %s missing from exposition", name)
				}
			}
		})
	}
}

func TestMirrorTracksVerdicts(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	g := New(DefaultPolicy(), clock)
	reg := metrics.NewRegistry()
	g.Register(reg)

	tr := Triplet{ClientIP: "203.0.113.7", Sender: "a@x.example", Recipient: "u@foo.net"}
	g.Check(tr) // first-seen
	g.Check(tr) // too-soon
	clock.Advance(301 * time.Second)
	g.Check(tr) // retry-accepted
	g.Check(tr) // known-triplet

	out := exposition(t, reg)
	for _, want := range []string{
		"greylist_checks_total 4\n",
		`greylist_verdicts_total{reason="first-seen"} 1` + "\n",
		`greylist_verdicts_total{reason="too-soon"} 1` + "\n",
		`greylist_verdicts_total{reason="retry-accepted"} 1` + "\n",
		`greylist_verdicts_total{reason="known-triplet"} 1` + "\n",
		"greylist_pending_triplets 0\n",
		"greylist_passed_triplets 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The check-latency histogram observed every check, allocation-free.
	if !strings.Contains(out, "greylist_check_seconds_count 4\n") {
		t.Errorf("check latency histogram missed checks:\n%s", out)
	}
}

func TestMirrorNeverDisagreesWithStats(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	s := NewSharded(4, DefaultPolicy(), clock)
	reg := metrics.NewRegistry()
	s.Register(reg)

	for i := 0; i < 40; i++ {
		s.Check(Triplet{
			ClientIP:  fmt.Sprintf("203.0.113.%d", i%8),
			Sender:    "a@x.example",
			Recipient: fmt.Sprintf("u%d@foo.net", i%5),
		})
	}
	clock.Advance(301 * time.Second)
	for i := 0; i < 40; i++ {
		s.Check(Triplet{
			ClientIP:  fmt.Sprintf("203.0.113.%d", i%8),
			Sender:    "a@x.example",
			Recipient: fmt.Sprintf("u%d@foo.net", i%5),
		})
	}
	s.GC()

	st := s.Stats()
	out := exposition(t, reg)
	for line, want := range map[string]uint64{
		"greylist_checks_total":                           st.Checks,
		`greylist_verdicts_total{reason="first-seen"}`:    st.DeferredNew,
		`greylist_verdicts_total{reason="retry-accepted"}`: st.PassedRetry,
		`greylist_verdicts_total{reason="known-triplet"}`: st.PassedKnown,
		"greylist_gc_sweeps_total":                        st.GCSweeps,
		"greylist_gc_dropped_total":                       st.GCDropped,
	} {
		if !strings.Contains(out, fmt.Sprintf("%s %d\n", line, want)) {
			t.Errorf("mirror disagrees with Stats for %s (want %d):\n%s", line, want, out)
		}
	}
	if st.GCSweeps != 4 { // one sweep per shard
		t.Errorf("GCSweeps = %d, want 4", st.GCSweeps)
	}
}

// TestStatsSurviveSaveLoadWithMirror is the satellite round-trip test:
// the full Stats struct — including the GC counters added for the
// metrics mirror — must come back identical from SaveFile/LoadFile, and
// the registry exposition over the restored engine must render the same
// counter samples the original engine rendered.
func TestStatsSurviveSaveLoadWithMirror(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/state.db"

	clock := simtime.NewSim(simtime.Epoch)
	g := New(DefaultPolicy(), clock)
	reg := metrics.NewRegistry()
	g.Register(reg)

	tr := Triplet{ClientIP: "203.0.113.9", Sender: "a@x.example", Recipient: "u@foo.net"}
	g.Check(tr)
	g.Check(tr)
	clock.Advance(301 * time.Second)
	g.Check(tr)
	g.GC()

	want := g.Stats()
	if want.GCSweeps != 1 {
		t.Fatalf("GCSweeps = %d, want 1", want.GCSweeps)
	}
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	g2 := New(DefaultPolicy(), clock)
	reg2 := metrics.NewRegistry()
	g2.Register(reg2)
	if err := g2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if got := g2.Stats(); got != want {
		t.Fatalf("Stats after round trip = %+v, want %+v", got, want)
	}

	// Counter-for-counter, the restored registry renders the same
	// samples (histograms are process-local operational state, not
	// persisted policy state, so only counter/gauge lines must match).
	filter := func(out string) []string {
		var lines []string
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "greylist_") &&
				!strings.Contains(l, "_seconds") && !strings.Contains(l, "_size") {
				lines = append(lines, l)
			}
		}
		return lines
	}
	before, after := filter(exposition(t, reg)), filter(exposition(t, reg2))
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Fatalf("mirror exposition diverged after round trip:\nbefore: %v\nafter:  %v", before, after)
	}

	// The snapshot save/load histograms observed their operations.
	if out := exposition(t, reg); !strings.Contains(out, "greylist_snapshot_save_seconds_count 1\n") {
		t.Errorf("save duration not observed:\n%s", out)
	}
	if out := exposition(t, reg2); !strings.Contains(out, "greylist_snapshot_load_seconds_count 1\n") {
		t.Errorf("load duration not observed:\n%s", out)
	}
}
