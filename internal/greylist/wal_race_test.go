package greylist

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simtime"
)

// TestConcurrentWALCheckVsCompact hammers a WAL-attached sharded
// engine from many goroutines while compaction, fsync, and flush
// control requests cycle underneath — the configuration (tiny ring,
// tiny compaction threshold, short sync interval) forces every
// contended path: producers spinning on a full ring inside engine
// locks, the consumer taking those same locks via lockWithDrain, and
// checkpoint barriers racing check traffic. Run under -race in CI.
// The final recovery asserts the log+checkpoint still reconstruct the
// closed engine's exact tables.
func TestConcurrentWALCheckVsCompact(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	e := NewSharded(4, walTestPolicy(), clock)
	dir := t.TempDir()
	log, ck := walPaths(dir)
	w, _, err := OpenWAL(WALConfig{
		Path:           log,
		CheckpointPath: ck,
		Sync:           SyncInterval,
		SyncEvery:      5 * time.Millisecond,
		CompactBytes:   4096,
		Ring:           64,
	}, e)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Virtual time advances continuously so thresholds and lifetimes
	// actually elapse mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(30 * time.Second)
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	// Check workers: single checks, batches, GC.
	const workers = 8
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var out []Verdict
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr := Triplet{
					ClientIP:  fmt.Sprintf("203.0.113.%d", (wk*31+i)%97),
					Sender:    fmt.Sprintf("s%d@x.example", i%13),
					Recipient: fmt.Sprintf("u%d@y.example", wk),
				}
				switch i % 7 {
				case 0:
					out = e.CheckBatch([]Triplet{tr,
						{ClientIP: tr.ClientIP, Sender: "b@x.example", Recipient: tr.Recipient},
					}, out[:0])
				case 5:
					if i%91 == 0 {
						e.GC()
					}
					e.Check(tr)
				default:
					e.Check(tr)
				}
			}
		}(wk)
	}

	// Control churn: explicit compactions, syncs, flushes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			switch i % 3 {
			case 0:
				err = w.Compact()
			case 1:
				err = w.Sync()
			default:
				err = w.Flush()
			}
			if err != nil {
				t.Errorf("control request: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Everything the engine holds must be reconstructible from disk.
	r := NewSharded(4, walTestPolicy(), simtime.NewSim(simtime.Epoch))
	w2, info, err := OpenWAL(WALConfig{Path: log, CheckpointPath: ck, Sync: SyncNone, CompactBytes: -1}, r)
	if err != nil {
		t.Fatalf("recovery OpenWAL: %v", err)
	}
	defer w2.Close()
	if info.TornBytes != 0 {
		t.Errorf("clean Close left %d torn bytes", info.TornBytes)
	}
	if got, want := dumpEngineTables(t, r), dumpEngineTables(t, e); got != want {
		t.Errorf("recovered tables != closed engine tables\ngot %d bytes, want %d bytes", len(got), len(want))
	}
}
