package botnet

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/smtpclient"
)

// countingSink records only what it is handed, to observe the stream
// from outside the bot.
type countingSink struct {
	mu       sync.Mutex
	attempts []Attempt
}

func (s *countingSink) ObserveAttempt(a Attempt) {
	s.mu.Lock()
	s.attempts = append(s.attempts, a)
	s.mu.Unlock()
}

// TestExternalSinkStreams checks a bot with an external sink streams
// every attempt and retains nothing itself, while aggregates still
// work.
func TestExternalSinkStreams(t *testing.T) {
	e := newLabEnv(t, core.DefenseNone)
	sink := &countingSink{}
	bot, err := New(Kelihos(), Env{
		Net: e.net, Resolver: e.resolver, Sched: e.sched,
		SourceIP: "203.0.113.50", Seed: 42, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot.Launch(Campaign{
		Domain:     "victim.example",
		Sender:     "winner@lottery.example",
		Recipients: []string{"user1@victim.example", "user2@victim.example"},
		Data:       SpamPayload("Kelihos", "c1"),
	})
	e.sched.Run()

	if bot.Attempts() != nil {
		t.Errorf("streaming bot retained %d attempts", len(bot.Attempts()))
	}
	if bot.ContactedHosts() != nil {
		t.Error("streaming bot retained contacted hosts")
	}
	if len(sink.attempts) == 0 {
		t.Fatal("sink observed nothing")
	}
	if bot.Delivered() != 2 {
		t.Errorf("delivered = %d, want 2 (no defenses)", bot.Delivered())
	}
	delivered := 0
	for _, a := range sink.attempts {
		if a.Outcome == smtpclient.Delivered {
			delivered++
		}
	}
	if delivered != bot.Delivered() {
		t.Errorf("sink saw %d deliveries, bot counted %d", delivered, bot.Delivered())
	}
}

// TestDefaultRecorderMatchesExternalSink runs the same campaign twice —
// default retained mode vs external sink — and requires the identical
// attempt stream.
func TestDefaultRecorderMatchesExternalSink(t *testing.T) {
	run := func(sink AttemptSink) (*Bot, []Attempt) {
		e := newLabEnv(t, core.DefenseGreylisting)
		bot, err := New(Kelihos(), Env{
			Net: e.net, Resolver: e.resolver, Sched: e.sched,
			SourceIP: "203.0.113.50", Seed: 42, Sink: sink,
		})
		if err != nil {
			t.Fatal(err)
		}
		bot.Launch(Campaign{
			Domain:     "victim.example",
			Sender:     "winner@lottery.example",
			Recipients: []string{"user1@victim.example"},
			Data:       SpamPayload("Kelihos", "c1"),
		})
		e.sched.Run()
		return bot, bot.Attempts()
	}

	_, retained := run(nil)
	external := &countingSink{}
	streamBot, _ := run(external)
	if len(retained) == 0 {
		t.Fatal("no attempts retained")
	}
	if !reflect.DeepEqual(retained, external.attempts) {
		t.Errorf("streams differ:\nretained: %+v\nstreamed: %+v", retained, external.attempts)
	}
	if streamBot.Delivered() == 0 {
		t.Error("Kelihos must beat the 300s default threshold")
	}
}

// TestTallyMatchesRecorder folds the same stream through both shipped
// sinks and checks the aggregates agree.
func TestTallyMatchesRecorder(t *testing.T) {
	rec := &Recorder{}
	tally := &Tally{}
	stream := []Attempt{
		{Try: 1, Recipient: "a", Contacted: []string{"mx1", "mx2"}},
		{Try: 2, Recipient: "a", Contacted: []string{"mx1"}},
		{Try: 1, Recipient: "b", Contacted: nil},
	}
	for _, a := range stream {
		rec.ObserveAttempt(a)
		tally.ObserveAttempt(a)
	}
	if got := tally.Attempts(); got != len(stream) {
		t.Errorf("tally attempts = %d, want %d", got, len(stream))
	}
	if got := len(rec.Attempts()); got != len(stream) {
		t.Errorf("recorder attempts = %d, want %d", got, len(stream))
	}
	if !reflect.DeepEqual(rec.ContactedHosts(), tally.ContactedHosts()) {
		t.Errorf("contacted hosts differ: %v vs %v", rec.ContactedHosts(), tally.ContactedHosts())
	}
	if want := []string{"mx1", "mx2", "mx1"}; !reflect.DeepEqual(tally.ContactedHosts(), want) {
		t.Errorf("contacted = %v, want %v", tally.ContactedHosts(), want)
	}
}

// TestSinksConcurrent hammers both sinks from many goroutines; run
// with -race (the tier-1 recipe includes this package).
func TestSinksConcurrent(t *testing.T) {
	rec := &Recorder{}
	tally := &Tally{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a := Attempt{Try: i, Contacted: []string{"mx"}}
				rec.ObserveAttempt(a)
				tally.ObserveAttempt(a)
				_ = rec.Attempts()
				_ = tally.Attempts()
				_ = tally.ContactedHosts()
			}
		}(g)
	}
	wg.Wait()
	if got := tally.Attempts(); got != 800 {
		t.Errorf("tally = %d, want 800", got)
	}
	if got := len(rec.Attempts()); got != 800 {
		t.Errorf("recorder = %d, want 800", got)
	}
}
