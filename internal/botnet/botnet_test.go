package botnet

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/netsim"
	"repro/internal/nolist"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
)

// TestTableIShares pins Table I's numbers.
func TestTableIShares(t *testing.T) {
	want := map[string]struct {
		share   float64
		samples int
	}{
		"Cutwail":        {46.90, 3},
		"Kelihos":        {36.33, 6},
		"Darkmailer":     {7.21, 1},
		"Darkmailer(v3)": {2.58, 1},
	}
	for _, f := range Families() {
		w := want[f.Name]
		if f.BotnetSpamShare != w.share || f.Samples != w.samples {
			t.Errorf("%s = (%.2f%%, %d samples), want (%.2f%%, %d)",
				f.Name, f.BotnetSpamShare, f.Samples, w.share, w.samples)
		}
	}
	if got := TotalBotnetShare(); math.Abs(got-93.02) > 0.001 {
		t.Errorf("total botnet share = %.2f, want 93.02", got)
	}
	// 93.02% of the 76% of spam that came from botnets ≈ 70.69% of all
	// spam (the paper's "over 70% of the global spam").
	if got := TotalGlobalShare(); math.Abs(got-70.69) > 0.3 {
		t.Errorf("global share = %.2f, want ≈70.69", got)
	}
	totalSamples := 0
	for _, f := range Families() {
		totalSamples += f.Samples
	}
	if totalSamples != 11 {
		t.Errorf("total samples = %d, want 11", totalSamples)
	}
}

func TestFamilyBehaviors(t *testing.T) {
	want := map[string]nolist.Behavior{
		"Cutwail":        nolist.BehaviorSecondaryOnly,
		"Kelihos":        nolist.BehaviorPrimaryOnly,
		"Darkmailer":     nolist.BehaviorRFCCompliant,
		"Darkmailer(v3)": nolist.BehaviorRFCCompliant,
	}
	for _, f := range Families() {
		if f.Behavior != want[f.Name] {
			t.Errorf("%s behavior = %v, want %v", f.Name, f.Behavior, want[f.Name])
		}
	}
}

func TestRetryPolicies(t *testing.T) {
	for _, f := range Families() {
		wantRetry := f.Name == "Kelihos"
		if got := !f.Retry.FireAndForget(); got != wantRetry {
			t.Errorf("%s retries = %v, want %v", f.Name, got, wantRetry)
		}
	}
}

func TestKelihosRetryOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := Kelihos()
	bounds := []RetryPeak{
		{300 * time.Second, 600 * time.Second},
		{4500 * time.Second, 5500 * time.Second},
		{80000 * time.Second, 90000 * time.Second},
	}
	for trial := 0; trial < 100; trial++ {
		for n := 1; n <= 3; n++ {
			off, ok := k.Retry.Offset(n, rng)
			if !ok {
				t.Fatalf("retry %d: exhausted early", n)
			}
			if off < bounds[n-1].Min || off >= bounds[n-1].Max {
				t.Fatalf("retry %d offset %v outside peak [%v, %v)", n, off, bounds[n-1].Min, bounds[n-1].Max)
			}
		}
	}
	if _, ok := k.Retry.Offset(4, rng); ok {
		t.Fatal("fourth retry should not exist")
	}
	if _, ok := k.Retry.Offset(0, rng); ok {
		t.Fatal("retry 0 should not exist")
	}
}

func TestRetryOffsetDegeneratePeak(t *testing.T) {
	r := RetrySchedule{Peaks: []RetryPeak{{Min: time.Minute, Max: time.Minute}}}
	off, ok := r.Offset(1, rand.New(rand.NewSource(1)))
	if !ok || off != time.Minute {
		t.Fatalf("offset = %v, %v", off, ok)
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("Kelihos")
	if err != nil || f.Behavior != nolist.BehaviorPrimaryOnly {
		t.Fatalf("ByName = %+v, %v", f, err)
	}
	if _, err := ByName("Zeus"); err == nil {
		t.Fatal("ByName accepted unknown family")
	}
}

// labEnv builds the contained environment: a defended domain plus a bot
// runtime, all in virtual time.
type labEnv struct {
	net      *netsim.Network
	dns      *dnsserver.Server
	clock    *simtime.Sim
	sched    *simtime.Scheduler
	resolver *dnsresolver.Resolver
	domain   *core.Domain
}

func newLabEnv(t *testing.T, defense core.Defense) *labEnv {
	t.Helper()
	e := &labEnv{
		net:   netsim.New(),
		dns:   dnsserver.New(),
		clock: simtime.NewSim(simtime.Epoch),
	}
	e.sched = simtime.NewScheduler(e.clock)
	e.resolver = dnsresolver.New(dnsresolver.Direct(e.dns), e.clock)
	e.resolver.DisableCache = true
	d, err := core.New(core.Config{
		Domain:      "victim.example",
		PrimaryIP:   "10.0.0.1",
		SecondaryIP: "10.0.0.2",
		Defense:     defense,
	}, core.Deps{Net: e.net, DNS: e.dns, Clock: e.clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	e.domain = d
	return e
}

func (e *labEnv) runBot(t *testing.T, f Family) *Bot {
	t.Helper()
	bot, err := New(f, Env{
		Net: e.net, Resolver: e.resolver, Sched: e.sched,
		SourceIP: "203.0.113.50", Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot.Launch(Campaign{
		Domain:     "victim.example",
		Sender:     "winner@lottery.example",
		Recipients: []string{"user1@victim.example", "user2@victim.example"},
		Data:       SpamPayload(f.Name, "c1"),
	})
	e.sched.Run()
	return bot
}

// TestTableIIMatrix reproduces the paper's Table II: which defense stops
// which family.
func TestTableIIMatrix(t *testing.T) {
	cases := []struct {
		family               func() Family
		greylistingEffective bool
		nolistingEffective   bool
	}{
		{Cutwail, true, false},
		{Kelihos, false, true},
		{Darkmailer, true, false},
		{DarkmailerV3, true, false},
	}
	for _, tc := range cases {
		f := tc.family()
		t.Run(f.Name+"/greylisting", func(t *testing.T) {
			e := newLabEnv(t, core.DefenseGreylisting)
			bot := e.runBot(t, f)
			blocked := bot.Delivered() == 0
			if blocked != tc.greylistingEffective {
				t.Fatalf("greylisting blocked=%v, want %v (delivered %d, attempts %d)",
					blocked, tc.greylistingEffective, bot.Delivered(), len(bot.Attempts()))
			}
		})
		t.Run(f.Name+"/nolisting", func(t *testing.T) {
			e := newLabEnv(t, core.DefenseNolisting)
			bot := e.runBot(t, f)
			blocked := bot.Delivered() == 0
			if blocked != tc.nolistingEffective {
				t.Fatalf("nolisting blocked=%v, want %v (delivered %d)",
					blocked, tc.nolistingEffective, bot.Delivered())
			}
		})
	}
}

func TestBothDefensesStopEverything(t *testing.T) {
	// Section VI: "using both techniques together is a very effective
	// way to protect against the majority of spam."
	for _, f := range Families() {
		e := newLabEnv(t, core.DefenseBoth)
		bot := e.runBot(t, f)
		if bot.Delivered() != 0 {
			t.Errorf("%s delivered %d messages through both defenses", f.Name, bot.Delivered())
		}
	}
}

func TestNoDefenseEveryoneDelivers(t *testing.T) {
	for _, f := range Families() {
		e := newLabEnv(t, core.DefenseNone)
		bot := e.runBot(t, f)
		if bot.Delivered() != 2 {
			t.Errorf("%s delivered %d of 2 without defenses", f.Name, bot.Delivered())
		}
	}
}

func TestKelihosRefusedByNolisting(t *testing.T) {
	e := newLabEnv(t, core.DefenseNolisting)
	bot := e.runBot(t, Kelihos())
	attempts := bot.Attempts()
	if len(attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
	for _, a := range attempts {
		if !a.Refused {
			t.Fatalf("attempt %+v not refused — Kelihos must only hit the dead primary", a)
		}
		if a.Host != e.domain.PrimaryHost() {
			t.Fatalf("attempt contacted %s, want primary only", a.Host)
		}
	}
}

func TestBehaviorClassificationFromLogs(t *testing.T) {
	// Closing the loop with Section IV-B: the behaviour inferred from
	// the bots' contact logs matches each family's ground truth. The
	// observation must happen under NOLISTING: with a healthy primary,
	// an RFC-compliant walker stops at the first server and is
	// indistinguishable from a primary-only bot — it is exactly the
	// dead primary that makes compliant fallthrough observable.
	for _, f := range Families() {
		e := newLabEnv(t, core.DefenseNolisting)
		bot := e.runBot(t, f)
		got := nolist.ClassifyBehavior(e.domain.MXHosts(), bot.ContactedHosts())
		want := f.Behavior
		if got != want {
			t.Errorf("%s classified as %v, want %v (contacted %v)",
				f.Name, got, want, bot.ContactedHosts())
		}
	}
}

func TestCompliantWalkerLooksPrimaryOnlyWithHealthyPrimary(t *testing.T) {
	// The ambiguity itself, documented: without nolisting the walker
	// never reveals its fallthrough logic.
	e := newLabEnv(t, core.DefenseNone)
	bot := e.runBot(t, Darkmailer())
	got := nolist.ClassifyBehavior(e.domain.MXHosts(), bot.ContactedHosts())
	if got != nolist.BehaviorPrimaryOnly {
		t.Fatalf("classification = %v, want primary-only ambiguity", got)
	}
}

func TestKelihosDefeatsGreylistingOnFirstRetry(t *testing.T) {
	e := newLabEnv(t, core.DefenseGreylisting)
	bot := e.runBot(t, Kelihos())
	if bot.Delivered() != 2 {
		t.Fatalf("delivered = %d, want 2", bot.Delivered())
	}
	// With the default 300 s threshold, the first retry peak (300-600 s)
	// already clears it: exactly 2 attempts per recipient.
	for _, a := range bot.Attempts() {
		if a.Outcome == smtpclient.Delivered && (a.Try != 2 || a.Offset < 300*time.Second || a.Offset >= 600*time.Second) {
			t.Fatalf("delivered attempt = %+v, want second try inside first peak", a)
		}
	}
}

func TestKelihosRetriesAreDeterministicPerSeed(t *testing.T) {
	run := func() []Attempt {
		e := newLabEnv(t, core.DefenseGreylisting)
		return e.runBot(t, Kelihos()).Attempts()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || a[i].Try != b[i].Try {
			t.Fatalf("attempt %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBotValidation(t *testing.T) {
	if _, err := New(Cutwail(), Env{}); err == nil {
		t.Fatal("New accepted empty env")
	}
}

func TestSpamPayloadMentionsFamilyAndCampaign(t *testing.T) {
	p := string(SpamPayload("Kelihos", "xyz"))
	if !contains(p, "Kelihos") || !contains(p, "xyz") {
		t.Fatalf("payload = %q", p)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestBotAccessors(t *testing.T) {
	e := newLabEnv(t, core.DefenseNone)
	bot, err := New(Cutwail(), Env{
		Net: e.net, Resolver: e.resolver, Sched: e.sched, SourceIP: "203.0.113.7", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bot.Family().Name != "Cutwail" {
		t.Errorf("Family = %v", bot.Family().Name)
	}
	if bot.SourceIP() != "203.0.113.7" {
		t.Errorf("SourceIP = %v", bot.SourceIP())
	}
	// Default source IP when none given.
	bot2, err := New(Cutwail(), Env{Net: e.net, Resolver: e.resolver, Sched: e.sched})
	if err != nil {
		t.Fatal(err)
	}
	if bot2.SourceIP() == "" {
		t.Error("default SourceIP empty")
	}
}

func TestAllMXBehaviorShuffles(t *testing.T) {
	// An all-MX bot contacts every server; against a healthy domain the
	// FIRST contacted host should vary across seeds (random order).
	firstHosts := map[string]bool{}
	for seed := int64(0); seed < 10; seed++ {
		e := newLabEnv(t, core.DefenseNone)
		f := Cutwail()
		f.Behavior = nolist.BehaviorAllMX
		bot, err := New(f, Env{
			Net: e.net, Resolver: e.resolver, Sched: e.sched,
			SourceIP: "203.0.113.60", Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		bot.Launch(Campaign{
			Domain: "victim.example", Sender: "x@s.example",
			Recipients: []string{"u@victim.example"}, Data: SpamPayload("x", "1"),
		})
		e.sched.Run()
		attempts := bot.Attempts()
		if len(attempts) == 0 || len(attempts[0].Contacted) == 0 {
			t.Fatal("no contacts recorded")
		}
		firstHosts[attempts[0].Contacted[0]] = true
		if bot.Delivered() != 1 {
			t.Fatalf("seed %d: delivered %d", seed, bot.Delivered())
		}
	}
	if len(firstHosts) < 2 {
		t.Fatalf("all-MX order never varied across seeds: %v", firstHosts)
	}
}
