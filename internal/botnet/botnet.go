// Package botnet models the spam malware the paper experimented with
// (Table I): behavioural stand-ins for Cutwail, Kelihos and the two
// Darkmailer versions — together responsible for 93% of 2014's
// botnet-generated spam, which in turn was 76% of all spam.
//
// The paper's substitution rationale (see DESIGN.md): its conclusions
// depend only on two behavioural axes, both measured in Sections IV-B and
// V-A, and both are what these models implement:
//
//   - MX selection (Section IV-B): Kelihos contacts only the primary MX
//     (defeated by nolisting), Cutwail skips straight to the
//     lowest-priority server (immune to nolisting), the Darkmailers walk
//     the MX list in RFC order (immune to nolisting).
//   - Retry policy (Section V-A): Cutwail and Darkmailer are
//     fire-and-forget (defeated by greylisting); Kelihos retransmits
//     failed deliveries — never sooner than ~300 s, with the retry peaks
//     Figure 4 shows at 300-600 s, ~5 000 s and 80 000-90 000 s — so it
//     beats greylisting at any threshold its last peak outlasts.
//
// Each bot speaks real SMTP through the shared client over the simulated
// network, with small per-family dialect quirks (HELO vs EHLO, QUIT or
// abrupt close) in the spirit of the SMTP-dialect fingerprinting work the
// paper builds on.
package botnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsresolver"
	"repro/internal/netsim"
	"repro/internal/nolist"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/trace"
)

// RetryPeak is one cluster of retransmission offsets (measured from the
// first delivery attempt of a message).
type RetryPeak struct {
	Min, Max time.Duration
}

// RetrySchedule is a bot's retransmission behaviour: one retry per peak,
// at a uniformly drawn offset inside the peak. An empty schedule is
// fire-and-forget.
type RetrySchedule struct {
	Peaks []RetryPeak
}

// FireAndForget reports whether the schedule never retries.
func (r RetrySchedule) FireAndForget() bool { return len(r.Peaks) == 0 }

// Offset draws the offset of the n-th retry (n starting at 1). ok is
// false when the bot has exhausted its retries and abandons the message.
func (r RetrySchedule) Offset(n int, rng *rand.Rand) (time.Duration, bool) {
	if n < 1 || n > len(r.Peaks) {
		return 0, false
	}
	p := r.Peaks[n-1]
	if p.Max <= p.Min {
		return p.Min, true
	}
	return p.Min + time.Duration(rng.Int63n(int64(p.Max-p.Min))), true
}

// Dialect captures per-family SMTP quirks.
type Dialect struct {
	// UseEHLO selects EHLO (true) or bare HELO (false).
	UseEHLO bool
	// SendQuit closes sessions politely with QUIT; bots often just
	// drop the connection.
	SendQuit bool
	// HeloName is announced at HELO/EHLO time.
	HeloName string
}

// Family is one malware family's behavioural profile.
type Family struct {
	// Name is the family name as in Table I.
	Name string
	// BotnetSpamShare is the family's percentage of 2014 botnet spam
	// (Table I's middle column).
	BotnetSpamShare float64
	// Samples is the number of distinct binaries the paper analyzed.
	Samples int
	// Behavior is the family's MX-selection category (Section IV-B).
	Behavior nolist.Behavior
	// Retry is the family's retransmission schedule.
	Retry RetrySchedule
	// Dialect holds the family's SMTP quirks.
	Dialect Dialect
	// SendInterval staggers the first attempts: recipient i's campaign
	// starts at i*SendInterval instead of all at time zero. The Table I
	// bots blast (zero); the lab's benign MTA profiles drain a queue.
	SendInterval time.Duration
}

// Cutwail: 46.90% of botnet spam, 3 samples, targets only the
// lowest-priority MX ("the natural reaction of malware writers to
// nolisting"), never retries.
func Cutwail() Family {
	return Family{
		Name:            "Cutwail",
		BotnetSpamShare: 46.90,
		Samples:         3,
		Behavior:        nolist.BehaviorSecondaryOnly,
		Dialect:         Dialect{UseEHLO: false, SendQuit: false, HeloName: "localhost"},
	}
}

// Kelihos: 36.33% of botnet spam, 6 samples, targets only the primary MX,
// retransmits with Figure 4's peak structure (first retry never sooner
// than ~300 s — the Figure 3 observation that a 5 s threshold buys
// nothing over 300 s).
func Kelihos() Family {
	return Family{
		Name:            "Kelihos",
		BotnetSpamShare: 36.33,
		Samples:         6,
		Behavior:        nolist.BehaviorPrimaryOnly,
		Retry: RetrySchedule{Peaks: []RetryPeak{
			{Min: 300 * time.Second, Max: 600 * time.Second},
			{Min: 4500 * time.Second, Max: 5500 * time.Second},
			{Min: 80000 * time.Second, Max: 90000 * time.Second},
		}},
		Dialect: Dialect{UseEHLO: true, SendQuit: true, HeloName: "mail.local"},
	}
}

// Darkmailer: 7.21% of botnet spam, 1 sample, RFC-compliant MX walking,
// fire-and-forget.
func Darkmailer() Family {
	return Family{
		Name:            "Darkmailer",
		BotnetSpamShare: 7.21,
		Samples:         1,
		Behavior:        nolist.BehaviorRFCCompliant,
		Dialect:         Dialect{UseEHLO: true, SendQuit: false, HeloName: "dm.local"},
	}
}

// DarkmailerV3: 2.58% of botnet spam, 1 sample, same behaviour as
// Darkmailer.
func DarkmailerV3() Family {
	return Family{
		Name:            "Darkmailer(v3)",
		BotnetSpamShare: 2.58,
		Samples:         1,
		Behavior:        nolist.BehaviorRFCCompliant,
		Dialect:         Dialect{UseEHLO: true, SendQuit: true, HeloName: "dm3.local"},
	}
}

// SPFProbe is NOT a Table I family (it never appears in Families()):
// it models the counter-countermeasure the bypass chain invites — a
// spammer that registers a throwaway domain, publishes an SPF record
// authorizing its sending pool, buys mail-server-style PTR names, and
// gets its pool onto a DNS whitelist. It retries like a real MTA and
// rotates source IPs per try, so per-IP triplet keying never sees the
// same client twice; only the elapsed-time threshold stands between it
// and each bypass heuristic. The lab's bypass experiment measures
// which chain stages it walks through.
func SPFProbe() Family {
	return Family{
		Name:     "SPFProbe",
		Samples:  1,
		Behavior: nolist.BehaviorRFCCompliant,
		Retry: RetrySchedule{Peaks: []RetryPeak{
			{Min: 300 * time.Second, Max: 600 * time.Second},
			{Min: 4500 * time.Second, Max: 5500 * time.Second},
		}},
		Dialect: Dialect{UseEHLO: true, SendQuit: true, HeloName: "smtp.probe.example"},
	}
}

// Families returns the Table I families in row order.
func Families() []Family {
	return []Family{Cutwail(), Kelihos(), Darkmailer(), DarkmailerV3()}
}

// ByName returns the named family, or an error.
func ByName(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("botnet: unknown family %q", name)
}

// TotalBotnetShare sums the families' botnet-spam shares (Table I's
// 93.02%).
func TotalBotnetShare() float64 {
	total := 0.0
	for _, f := range Families() {
		total += f.BotnetSpamShare
	}
	return total
}

// BotnetShareOfGlobalSpam is the fraction of worldwide spam sent from
// botnets in 2014 per the Symantec report the paper cites.
const BotnetShareOfGlobalSpam = 0.76

// TotalGlobalShare is the families' share of ALL spam (Table I's 70.69%).
func TotalGlobalShare() float64 {
	return TotalBotnetShare() * BotnetShareOfGlobalSpam
}

// Campaign is one spam job: a message for a list of recipients at a
// target domain.
type Campaign struct {
	// Domain is the target mail domain.
	Domain string
	// Sender is the envelope sender the bot uses.
	Sender string
	// Recipients are the target mailboxes.
	Recipients []string
	// Data is the spam payload.
	Data []byte
}

// Attempt is one observed delivery attempt by a bot.
type Attempt struct {
	// At is the virtual time of the attempt.
	At time.Time
	// Offset is the time since the first attempt for this recipient.
	Offset time.Duration
	// Try is the attempt number for this recipient (1 = first).
	Try int
	// Recipient is the target mailbox.
	Recipient string
	// Host is the MX host that produced the outcome ("" if resolution
	// failed).
	Host string
	// Contacted lists every MX host dialed during this attempt in
	// order, including hosts that refused the connection — the
	// connection-log view the paper's Section IV-B classification is
	// built from.
	Contacted []string
	// Outcome classifies the result.
	Outcome smtpclient.Outcome
	// Refused reports a TCP-level connection refusal (the nolisting
	// signature), as opposed to an SMTP-level failure.
	Refused bool
}

// AttemptSink observes a bot's delivery attempts as they complete. The
// paper's analyses divide into two shapes — Table II needs only
// blocked/delivered aggregates, Figures 3-4 need the full per-attempt
// event stream — and the sink is where that choice is made: aggregate
// observers (Tally) fold each attempt into counters and drop it,
// recording observers (Recorder) retain the stream. Sinks are invoked
// synchronously from the scheduler goroutine driving the bot, in
// virtual-time order.
type AttemptSink interface {
	ObserveAttempt(Attempt)
}

// Recorder is an AttemptSink that retains every attempt, for callers
// that analyze the full event stream (timelines, CDFs, fingerprinting).
// It is safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	attempts []Attempt
}

// ObserveAttempt implements AttemptSink.
func (r *Recorder) ObserveAttempt(a Attempt) {
	r.mu.Lock()
	r.attempts = append(r.attempts, a)
	r.mu.Unlock()
}

// Attempts returns a copy of the recorded attempt log.
func (r *Recorder) Attempts() []Attempt {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Attempt(nil), r.attempts...)
}

// ContactedHosts returns the ordered MX host names across all recorded
// attempts (with repeats, including refused connections), the input to
// nolist.ClassifyBehavior.
func (r *Recorder) ContactedHosts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var hosts []string
	for _, a := range r.attempts {
		hosts = append(hosts, a.Contacted...)
	}
	return hosts
}

// Tally is an AttemptSink for callers that need aggregates only: it
// counts attempts and retains the ordered contacted-host list (needed
// for MX-behaviour classification — the host strings are shared with
// the resolver's records, so this is far cheaper than retaining
// Attempt structs). It is safe for concurrent use.
type Tally struct {
	mu        sync.Mutex
	attempts  int
	contacted []string
}

// ObserveAttempt implements AttemptSink.
func (t *Tally) ObserveAttempt(a Attempt) {
	t.mu.Lock()
	t.attempts++
	t.contacted = append(t.contacted, a.Contacted...)
	t.mu.Unlock()
}

// Attempts returns the number of attempts observed.
func (t *Tally) Attempts() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// ContactedHosts returns a copy of the ordered contacted-host list.
func (t *Tally) ContactedHosts() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.contacted...)
}

// Env is the environment a bot runs in.
type Env struct {
	// Net is the simulated Internet.
	Net *netsim.Network
	// Resolver answers the bot's MX lookups (in the lab this points at
	// the forged DNS).
	Resolver *dnsresolver.Resolver
	// Sched drives the bot's retry timers.
	Sched *simtime.Scheduler
	// SourceIP is the infected machine's address.
	SourceIP string
	// SourceIPs, when set, is a rotation pool: try n for a recipient is
	// sent from SourceIPs[(n-1) mod len]. Rotation is how webmail-scale
	// providers (and the SPFProbe adversary) defeat per-IP triplet
	// keying — every retry looks like a fresh client unless the
	// greylister re-keys by SPF domain. Overrides SourceIP.
	SourceIPs []string
	// Seed makes the bot's jitter deterministic.
	Seed int64
	// Sink, when set, streams attempts to the caller instead of
	// retaining them in the bot: Attempts and ContactedHosts return nil
	// and the caller's sink is the only record. When nil the bot
	// installs its own Recorder, preserving the retained-log API.
	Sink AttemptSink
	// Tracer, when non-nil, records every delivery attempt as one
	// finished trace: the MX walk, each dial (refusals included), the
	// server's per-verb replies and greylist verdict, the retry the bot
	// schedules, and the attempt's outcome.
	Tracer *trace.Tracer
	// TraceTags labels the traces (family/defense/sample).
	TraceTags trace.Tags
}

// Bot is one running malware sample.
type Bot struct {
	family  Family
	env     Env
	dialer  *smtpclient.SimDialer
	dialers []*smtpclient.SimDialer // rotation pool; nil without Env.SourceIPs
	rng     *rand.Rand

	sink AttemptSink
	rec  *Recorder // nil when env.Sink streams to an external observer
	// delivered is maintained independently of the sink so aggregate
	// callers never pay for a retained log.
	delivered atomic.Int64
}

// New creates a bot of the given family.
func New(family Family, env Env) (*Bot, error) {
	if env.Net == nil || env.Resolver == nil || env.Sched == nil {
		return nil, errors.New("botnet: Net, Resolver and Sched are required")
	}
	if len(env.SourceIPs) > 0 {
		env.SourceIP = env.SourceIPs[0]
	}
	if env.SourceIP == "" {
		env.SourceIP = "203.0.113.200"
	}
	b := &Bot{
		family: family,
		env:    env,
		dialer: &smtpclient.SimDialer{Net: env.Net, LocalIP: env.SourceIP},
		rng:    rand.New(rand.NewSource(env.Seed)),
		sink:   env.Sink,
	}
	for _, ip := range env.SourceIPs {
		b.dialers = append(b.dialers, &smtpclient.SimDialer{Net: env.Net, LocalIP: ip})
	}
	if b.sink == nil {
		b.rec = &Recorder{}
		b.sink = b.rec
	}
	return b, nil
}

// Family returns the bot's behavioural profile.
func (b *Bot) Family() Family { return b.family }

// SourceIP returns the bot's client address.
func (b *Bot) SourceIP() string { return b.env.SourceIP }

// Attempts returns a copy of the bot's delivery-attempt log, or nil
// when the bot streams to an external sink (the sink holds the only
// record).
func (b *Bot) Attempts() []Attempt {
	if b.rec == nil {
		return nil
	}
	return b.rec.Attempts()
}

// Delivered counts recipients whose message was delivered. It works in
// both retained and streaming modes.
func (b *Bot) Delivered() int {
	return int(b.delivered.Load())
}

// ContactedHosts returns the ordered MX host names the bot dialed
// (with repeats, including refused connections), the input to
// nolist.ClassifyBehavior — or nil when streaming to an external sink.
func (b *Bot) ContactedHosts() []string {
	if b.rec == nil {
		return nil
	}
	return b.rec.ContactedHosts()
}

// Launch schedules the campaign: every recipient's first delivery attempt
// fires immediately; retries (if the family supports them) are scheduled
// through the bot's environment. The caller drives env.Sched.
func (b *Bot) Launch(c Campaign) {
	for i, rcpt := range c.Recipients {
		rcpt := rcpt
		b.env.Sched.After(time.Duration(i)*b.family.SendInterval, b.family.Name+" first attempt", func() {
			b.attempt(c, rcpt, 1, b.env.Sched.Clock().Now())
		})
	}
}

// dialerFor picks the source address for a try: without a rotation
// pool every try uses the bot's single dialer; with one, tries walk
// the pool round-robin.
func (b *Bot) dialerFor(try int) *smtpclient.SimDialer {
	if len(b.dialers) == 0 {
		return b.dialer
	}
	return b.dialers[(try-1)%len(b.dialers)]
}

// attempt performs try number `try` for one recipient and schedules the
// next retry if the family's schedule has one.
func (b *Bot) attempt(c Campaign, rcpt string, try int, firstAt time.Time) {
	now := b.env.Sched.Clock().Now()
	// The bot's try is 1-based; trace retry indexes are 0-based.
	tr := b.env.Tracer.StartAttempt(b.env.TraceTags, rcpt, try-1, b.env.Sched.Clock().Now)
	contacted, host, outcome, refused := b.deliverOnce(c, rcpt, try, tr)
	if outcome == smtpclient.Delivered {
		b.delivered.Add(1)
	}
	b.sink.ObserveAttempt(Attempt{
		At:        now,
		Offset:    now.Sub(firstAt),
		Try:       try,
		Recipient: rcpt,
		Host:      host,
		Contacted: contacted,
		Outcome:   outcome,
		Refused:   refused,
	})

	if outcome == smtpclient.Delivered || outcome == smtpclient.PermanentFailure {
		tr.Finish(outcomeLabel(outcome, refused))
		return
	}
	offset, ok := b.family.Retry.Offset(try, b.rng)
	if !ok {
		tr.Queue("no-retry", "fire-and-forget or retries exhausted", 0)
		tr.Finish(outcomeLabel(outcome, refused))
		return // fire-and-forget, or retries exhausted
	}
	at := firstAt.Add(offset)
	if at.Before(now) {
		at = now
	}
	tr.Queue("retry-scheduled", b.family.Name, at.Sub(now))
	tr.Finish(outcomeLabel(outcome, refused))
	b.env.Sched.At(at, b.family.Name+" retry", func() {
		b.attempt(c, rcpt, try+1, firstAt)
	})
}

// outcomeLabel maps a delivery outcome to the trace outcome string. A
// TCP-level refusal (the nolisting signature) is distinguished from
// other unreachability.
func outcomeLabel(o smtpclient.Outcome, refused bool) string {
	switch o {
	case smtpclient.Delivered:
		return "delivered"
	case smtpclient.TransientFailure:
		return "deferred"
	case smtpclient.PermanentFailure:
		return "rejected"
	default:
		if refused {
			return "refused"
		}
		return "unreachable"
	}
}

// deliverOnce resolves the target's MX records and attempts delivery
// according to the family's MX-selection behaviour. It returns every host
// dialed (the connection log) plus the host and classification of the
// final outcome.
func (b *Bot) deliverOnce(c Campaign, rcpt string, try int, tr *trace.Trace) (contacted []string, host string, outcome smtpclient.Outcome, refused bool) {
	hosts, err := b.env.Resolver.LookupMXTrace(c.Domain, tr)
	if err != nil || len(hosts) == 0 {
		return nil, "", smtpclient.Unreachable, false
	}

	targets := b.selectTargets(hosts)
	var lastHost string
	var lastOutcome = smtpclient.Unreachable
	var lastRefused bool
	for _, t := range targets {
		if len(t.Addrs) == 0 {
			continue
		}
		lastHost = t.Host
		contacted = append(contacted, t.Host)
		out, wasRefused := b.attemptHost(t.Addrs[0], c, rcpt, try, tr)
		lastOutcome, lastRefused = out, wasRefused
		if out == smtpclient.Delivered || out == smtpclient.PermanentFailure || out == smtpclient.TransientFailure {
			return contacted, t.Host, out, wasRefused
		}
		// Unreachable: walk on (only multi-target behaviours get here
		// with more targets to try).
	}
	return contacted, lastHost, lastOutcome, lastRefused
}

// selectTargets applies the family's MX-selection behaviour to the
// priority-sorted host list.
func (b *Bot) selectTargets(hosts []dnsresolver.MXHost) []dnsresolver.MXHost {
	switch b.family.Behavior {
	case nolist.BehaviorPrimaryOnly:
		return hosts[:1]
	case nolist.BehaviorSecondaryOnly:
		return hosts[len(hosts)-1:]
	case nolist.BehaviorRFCCompliant:
		return hosts
	case nolist.BehaviorAllMX:
		shuffled := append([]dnsresolver.MXHost(nil), hosts...)
		b.rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return shuffled
	default:
		return hosts[:1]
	}
}

// attemptHost runs one SMTP transaction with the family's dialect.
func (b *Bot) attemptHost(addr string, c Campaign, rcpt string, try int, tr *trace.Trace) (smtpclient.Outcome, bool) {
	conn, err := b.dialerFor(try).DialTrace(net.JoinHostPort(addr, smtpclient.SMTPPort), tr)
	if err != nil {
		return smtpclient.Unreachable, errors.Is(err, netsim.ErrConnRefused)
	}
	client, err := smtpclient.NewClient(conn)
	if err != nil {
		return classifyClientErr(err), false
	}
	defer client.Close()

	if b.family.Dialect.UseEHLO {
		err = client.Hello(b.family.Dialect.HeloName)
	} else {
		err = client.Helo(b.family.Dialect.HeloName)
	}
	if err != nil {
		return classifyClientErr(err), false
	}
	if err := client.Mail(c.Sender); err != nil {
		return classifyClientErr(err), false
	}
	if err := client.Rcpt(rcpt); err != nil {
		return classifyClientErr(err), false
	}
	if err := client.Data(c.Data); err != nil {
		return classifyClientErr(err), false
	}
	if b.family.Dialect.SendQuit {
		client.Quit()
	}
	return smtpclient.Delivered, false
}

func classifyClientErr(err error) smtpclient.Outcome {
	var smtpErr *smtpclient.Error
	if errors.As(err, &smtpErr) {
		if smtpErr.Temporary() {
			return smtpclient.TransientFailure
		}
		return smtpclient.PermanentFailure
	}
	return smtpclient.Unreachable
}

// SpamPayload builds a representative spam message body.
func SpamPayload(family, campaignID string) []byte {
	return []byte(fmt.Sprintf(
		"From: promo <promo@deals.example>\r\n"+
			"Subject: You have won (campaign %s)\r\n"+
			"X-Mailer: %s\r\n"+
			"\r\n"+
			"Click http://deals.example/claim?c=%s now!\r\n",
		campaignID, family, campaignID))
}
