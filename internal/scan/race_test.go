package scan

import (
	"sync"
	"testing"

	"repro/internal/simtime"
)

// TestConcurrentGrabAndScan drives banner grabs and parallel domain
// scans concurrently against the failure-state toggles — the access
// pattern of a paper-scale study round — under the race detector. It
// exercises the sharded netsim read path, the lock-free dnsserver zone
// lookups, and the atomic dial counters all at once.
func TestConcurrentGrabAndScan(t *testing.T) {
	pop, err := Generate(DefaultConfig(600, 7))
	if err != nil {
		t.Fatal(err)
	}
	var workers sync.WaitGroup
	stop := make(chan struct{})

	// Failure-state churn: repeated scan windows flipping hosts down/up.
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pop.BeginScan()
			pop.EndScan()
		}
	}()

	// Concurrent banner grabs.
	for g := 0; g < 2; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 20; i++ {
				ds := BannerGrab(pop, 8)
				if ds.Size() == 0 {
					t.Error("banner grab found no listeners")
					return
				}
			}
		}()
	}

	// Concurrent parallel scans (verdict pipeline and observation path).
	for g := 0; g < 2; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			out := make([]Verdict, len(pop.Specs))
			for i := 0; i < 10; i++ {
				scanVerdicts(pop, nil, 8, out)
			}
		}()
	}
	workers.Add(1)
	go func() {
		defer workers.Done()
		s := NewScanner(pop, simtime.NewSim(simtime.Epoch))
		for i := 0; i < 3; i++ {
			s.ScanAll(pop)
		}
	}()

	workers.Wait()
	close(stop)
	churn.Wait()
}
