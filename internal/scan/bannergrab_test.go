package scan

import (
	"testing"
	"time"

	"repro/internal/nolist"
	"repro/internal/simtime"
)

func TestBannerGrabMatchesLiveState(t *testing.T) {
	cfg := DefaultConfig(800, 11)
	cfg.TransientFailure = 0
	p := generate(t, cfg)
	ds := BannerGrab(p, 8)

	for _, s := range p.Specs {
		for _, ip := range []string{s.PrimaryIP, s.SecondaryIP} {
			if ip == "" {
				continue
			}
			live := p.Net.Listening(ip + ":25")
			if got := ds.Listening(ip); got != live {
				t.Fatalf("%s (%s): dataset %v, live %v", s.Name, ip, got, live)
			}
		}
	}
	if ds.Size() == 0 {
		t.Fatal("empty dataset")
	}
	addrs := ds.Addresses()
	if len(addrs) != ds.Size() {
		t.Fatalf("addresses = %d, size = %d", len(addrs), ds.Size())
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] >= addrs[i] {
			t.Fatal("addresses not sorted")
		}
	}
}

func TestBannerGrabSnapshotsFailureState(t *testing.T) {
	// The dataset is a snapshot: hosts downed after the grab stay
	// "listening" in the dataset even though the live network changed —
	// exactly how an offline scans.io dataset behaves.
	cfg := DefaultConfig(200, 12)
	cfg.TransientFailure = 0
	p := generate(t, cfg)
	var victim string
	for _, s := range p.Specs {
		if s.TrueCategory == nolist.CatOneMX {
			victim = s.PrimaryIP
			break
		}
	}
	if victim == "" {
		t.Fatal("no one-MX domain in population")
	}
	ds := BannerGrab(p, 4)
	if !ds.Listening(victim) {
		t.Fatal("victim not in dataset")
	}
	p.Net.SetHostDown(victim, true)
	defer p.Net.SetHostDown(victim, false)
	if !ds.Listening(victim) {
		t.Fatal("dataset mutated by live network change")
	}
	if p.Net.Listening(victim + ":25") {
		t.Fatal("live network should see the host down")
	}
}

func TestScannerDatasetJoinMatchesLiveScan(t *testing.T) {
	cfg := DefaultConfig(400, 13)
	cfg.TransientFailure = 0
	p := generate(t, cfg)
	clock := simtime.NewSim(simtime.Epoch)

	live := NewScanner(p, clock)
	liveObs := live.ScanAll(p)

	joined := NewScanner(p, clock)
	joined.UseDataset(BannerGrab(p, 8))
	joinedObs := joined.ScanAll(p)

	for i := range liveObs {
		c1 := nolist.ClassifyDomain(liveObs[i])
		c2 := nolist.ClassifyDomain(joinedObs[i])
		if c1 != c2 {
			t.Fatalf("%s: live %v vs dataset %v", p.Specs[i].Name, c1, c2)
		}
	}
	// Reverting to live probing works.
	joined.UseDataset(nil)
	obs := joined.ScanDomain(p.Specs[0].Name)
	if nolist.ClassifyDomain(obs) != p.Specs[0].TrueCategory {
		t.Fatal("scanner broken after dataset removal")
	}
}

func TestBannerGrabWorkerCountClamped(t *testing.T) {
	p := generate(t, DefaultConfig(50, 14))
	ds := BannerGrab(p, 0) // clamped to 1 worker
	if ds.Size() == 0 {
		t.Fatal("empty dataset with clamped workers")
	}
}

func TestRunStudyStillReproducesWithDatasets(t *testing.T) {
	// RunStudy now goes through the dataset-join path; the headline
	// numbers must be unchanged.
	clock := simtime.NewSim(simtime.Epoch)
	cfg := DefaultConfig(2000, 15)
	cfg.TransientFailure = 0
	p := generate(t, cfg)
	res := RunStudy(p, clock, 56*24*time.Hour)
	if res.Misclassified != 0 {
		t.Fatalf("misclassified = %d", res.Misclassified)
	}
	trueNolisting := 0
	for _, s := range p.Specs {
		if s.TrueCategory == nolist.CatNolisting {
			trueNolisting++
		}
	}
	if got := res.Counts[nolist.CatNolisting]; got != trueNolisting {
		t.Fatalf("nolisting = %d, want %d", got, trueNolisting)
	}
}
