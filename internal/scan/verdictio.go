// Columnar on-disk verdict storage for the streaming scan pipeline.
//
// Each scan round writes one file per shard. A file is a fixed 64-byte
// header followed by a sequence of chunks; chunk k covers a
// deterministic index range (ChunkDomains verdicts, last chunk
// short), so a reader — and the resume scan — always knows exactly
// how many bytes the next chunk must occupy:
//
//	header (64 B):
//	  [0:8)   magic "NLSCHNK1"
//	  [8:12)  format version (u32 le)
//	  [12:16) scan round (u32 le)
//	  [16:20) shard index (u32 le)
//	  [20:24) shard count (u32 le)
//	  [24:32) lo — first domain index covered (u64 le)
//	  [32:40) hi — one past the last domain index (u64 le)
//	  [40:48) config hash (u64 le; see domainGen.configHash)
//	  [48:52) domains per chunk (u32 le)
//	  [52:56) CRC-32 (IEEE) of bytes [0:52)
//	  [56:64) zero padding
//	chunk (count·8 + 12 B):
//	  count 8-byte verdict records (see Verdict.encode)
//	  [.. +4)  count (u32 le)
//	  [.. +8)  re-resolutions incurred scanning this chunk (u32 le)
//	  [.. +12) CRC-32 (IEEE) of payload + count + reRe
//
// A chunk is durable only once its trailer is fully on disk and its
// CRC matches; resume walks the chunks in order, truncates the file at
// the first torn or corrupt one, and rescans only from there. The
// re-resolution count rides in every trailer so the study total
// survives a resume without rescanning anything.
package scan

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
)

const (
	verdictMagic       = "NLSCHNK1"
	verdictFileVersion = 1
	verdictRecSize     = 8
	shardHeaderSize    = 64
	chunkTrailerSize   = 12
)

// ErrCheckpointMismatch reports a checkpoint written under a different
// configuration (population size, seed, mixture, or generator
// version); resuming would silently join incompatible rounds, so the
// pipeline refuses.
var ErrCheckpointMismatch = errors.New("checkpoint was written by a different configuration")

// encode writes the verdict's fixed 8-byte record into b.
func (v Verdict) encode(b []byte) {
	b[0] = v.Cat
	b[1] = 0
	binary.LittleEndian.PutUint16(b[2:], v.MXs)
	binary.LittleEndian.PutUint16(b[4:], v.Resolved)
	b[6], b[7] = 0, 0
}

// decodeVerdict reads a verdict record back.
func decodeVerdict(b []byte) Verdict {
	return Verdict{
		Cat:      b[0],
		MXs:      binary.LittleEndian.Uint16(b[2:]),
		Resolved: binary.LittleEndian.Uint16(b[4:]),
	}
}

// shardHeader identifies one shard file of one scan round.
type shardHeader struct {
	Round        int
	Shard        int
	Shards       int
	Lo, Hi       int // domain index range [Lo, Hi)
	CfgHash      uint64
	ChunkDomains int
}

// chunks is the number of chunks a complete shard file holds.
func (h shardHeader) chunks() int {
	n := h.Hi - h.Lo
	if n <= 0 {
		return 0
	}
	return (n + h.ChunkDomains - 1) / h.ChunkDomains
}

// chunkBounds returns the domain index range [lo, hi) of chunk k.
func (h shardHeader) chunkBounds(k int) (lo, hi int) {
	lo = h.Lo + k*h.ChunkDomains
	hi = lo + h.ChunkDomains
	if hi > h.Hi {
		hi = h.Hi
	}
	return lo, hi
}

// encode renders the 64-byte header.
func (h shardHeader) encode() [shardHeaderSize]byte {
	var b [shardHeaderSize]byte
	copy(b[0:8], verdictMagic)
	binary.LittleEndian.PutUint32(b[8:], verdictFileVersion)
	binary.LittleEndian.PutUint32(b[12:], uint32(h.Round))
	binary.LittleEndian.PutUint32(b[16:], uint32(h.Shard))
	binary.LittleEndian.PutUint32(b[20:], uint32(h.Shards))
	binary.LittleEndian.PutUint64(b[24:], uint64(h.Lo))
	binary.LittleEndian.PutUint64(b[32:], uint64(h.Hi))
	binary.LittleEndian.PutUint64(b[40:], h.CfgHash)
	binary.LittleEndian.PutUint32(b[48:], uint32(h.ChunkDomains))
	binary.LittleEndian.PutUint32(b[52:], crc32.ChecksumIEEE(b[0:52]))
	return b
}

// decodeShardHeader parses and checksums a 64-byte header.
func decodeShardHeader(b []byte) (shardHeader, error) {
	var h shardHeader
	if len(b) < shardHeaderSize {
		return h, fmt.Errorf("scan: verdict header truncated (%d bytes)", len(b))
	}
	if string(b[0:8]) != verdictMagic {
		return h, errors.New("scan: not a verdict file (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != verdictFileVersion {
		return h, fmt.Errorf("scan: verdict file version %d (want %d)", v, verdictFileVersion)
	}
	if got, want := crc32.ChecksumIEEE(b[0:52]), binary.LittleEndian.Uint32(b[52:]); got != want {
		return h, errors.New("scan: verdict header checksum mismatch")
	}
	h.Round = int(binary.LittleEndian.Uint32(b[12:]))
	h.Shard = int(binary.LittleEndian.Uint32(b[16:]))
	h.Shards = int(binary.LittleEndian.Uint32(b[20:]))
	h.Lo = int(binary.LittleEndian.Uint64(b[24:]))
	h.Hi = int(binary.LittleEndian.Uint64(b[32:]))
	h.CfgHash = binary.LittleEndian.Uint64(b[40:])
	h.ChunkDomains = int(binary.LittleEndian.Uint32(b[48:]))
	if h.ChunkDomains <= 0 || h.Hi < h.Lo {
		return h, errors.New("scan: verdict header invalid ranges")
	}
	return h, nil
}

// shardFileName names round r's shard s verdict file.
func shardFileName(round, s int) string {
	name := make([]byte, 0, 32)
	name = append(name, "round"...)
	name = strconv.AppendInt(name, int64(round), 10)
	name = append(name, "-shard"...)
	if s < 1000 {
		name = append(name, '0')
	}
	if s < 100 {
		name = append(name, '0')
	}
	if s < 10 {
		name = append(name, '0')
	}
	name = strconv.AppendInt(name, int64(s), 10)
	name = append(name, ".nlv"...)
	return string(name)
}

// resumeInfo reports what a shard open found on disk.
type resumeInfo struct {
	// Next is the first domain index still needing a scan (Hi when the
	// shard is already complete).
	Next int
	// ValidChunks counts intact chunks reused from the checkpoint.
	ValidChunks int
	// Torn reports that bytes beyond the valid prefix were discarded —
	// a partial chunk or corrupt trailer from an interrupted run.
	Torn bool
}

// shardWriter appends verdict chunks to one shard file.
type shardWriter struct {
	f    *os.File
	hdr  shardHeader
	buf  []byte // current chunk payload, verdictRecSize per record
	sync bool

	// bytesWritten counts payload+trailer bytes flushed this session
	// (checkpoint growth, for metrics).
	bytesWritten int64
}

// openShard creates (resume=false) or opens-and-validates
// (resume=true) the shard file at path. On resume the file is walked
// chunk by chunk and truncated to its valid durable prefix; the
// returned resumeInfo says where scanning must pick up. A resume onto
// a file written under a different configuration fails with
// ErrCheckpointMismatch.
func openShard(path string, hdr shardHeader, resume, sync bool) (*shardWriter, resumeInfo, error) {
	info := resumeInfo{Next: hdr.Lo}
	if !resume {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return nil, info, err
		}
		b := hdr.encode()
		if _, err := f.Write(b[:]); err != nil {
			f.Close()
			return nil, info, err
		}
		w := &shardWriter{f: f, hdr: hdr, sync: sync, bytesWritten: shardHeaderSize}
		return w, info, nil
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, info, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, info, err
	}
	if st.Size() < shardHeaderSize {
		// Nothing durable yet (including a torn header): start fresh.
		info.Torn = st.Size() > 0
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, info, err
		}
		b := hdr.encode()
		if _, err := f.Write(b[:]); err != nil {
			f.Close()
			return nil, info, err
		}
		return &shardWriter{f: f, hdr: hdr, sync: sync, bytesWritten: shardHeaderSize}, info, nil
	}

	var hb [shardHeaderSize]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		f.Close()
		return nil, info, err
	}
	got, err := decodeShardHeader(hb[:])
	if err != nil {
		f.Close()
		return nil, info, fmt.Errorf("%s: %w", path, err)
	}
	if got.CfgHash != hdr.CfgHash {
		f.Close()
		return nil, info, fmt.Errorf("scan: %s: %w (checkpoint hash %016x, run hash %016x — population size, seed, mixture or generator version changed; use a fresh checkpoint directory or drop -resume)",
			path, ErrCheckpointMismatch, got.CfgHash, hdr.CfgHash)
	}
	if got != hdr {
		f.Close()
		return nil, info, fmt.Errorf("scan: %s: %w (shard layout changed: checkpoint %+v, run %+v)",
			path, ErrCheckpointMismatch, got, hdr)
	}

	// Walk the chunks, accepting the longest valid prefix.
	size := st.Size()
	offset := int64(shardHeaderSize)
	var scratch []byte
	for k := 0; k < hdr.chunks(); k++ {
		clo, chi := hdr.chunkBounds(k)
		chunkLen := int64(chi-clo)*verdictRecSize + chunkTrailerSize
		if offset+chunkLen > size {
			break // torn chunk
		}
		if int64(len(scratch)) < chunkLen {
			scratch = make([]byte, chunkLen)
		}
		if _, err := f.ReadAt(scratch[:chunkLen], offset); err != nil {
			break
		}
		if !validChunk(scratch[:chunkLen], chi-clo) {
			break
		}
		offset += chunkLen
		info.ValidChunks++
		info.Next = chi
	}
	if offset < size {
		info.Torn = true
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, info, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, info, err
	}
	return &shardWriter{f: f, hdr: hdr, sync: sync}, info, nil
}

// validChunk checks a chunk of the expected record count against its
// trailer.
func validChunk(b []byte, count int) bool {
	payload := count * verdictRecSize
	if len(b) != payload+chunkTrailerSize {
		return false
	}
	if binary.LittleEndian.Uint32(b[payload:]) != uint32(count) {
		return false
	}
	got := binary.LittleEndian.Uint32(b[payload+8:])
	return crc32.ChecksumIEEE(b[:payload+8]) == got
}

// append buffers one verdict into the current chunk.
func (w *shardWriter) append(v Verdict) {
	n := len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	v.encode(w.buf[n:])
}

// flushChunk writes the buffered records plus a trailer carrying reRe
// (the re-resolutions incurred scanning them) and, when the writer is
// in sync mode, fsyncs. The chunk is the durability unit: once
// flushChunk returns, resume will never rescan these domains.
func (w *shardWriter) flushChunk(reRe int) error {
	count := len(w.buf) / verdictRecSize
	n := len(w.buf)
	w.buf = append(w.buf, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(w.buf[n:], uint32(count))
	binary.LittleEndian.PutUint32(w.buf[n+4:], uint32(reRe))
	binary.LittleEndian.PutUint32(w.buf[n+8:], crc32.ChecksumIEEE(w.buf[:n+8]))
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.bytesWritten += int64(len(w.buf))
	w.buf = w.buf[:0]
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

// close syncs (in sync mode) and closes the file.
func (w *shardWriter) close() error {
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.f.Close()
}

// shardReader streams one shard file's verdicts back in index order
// for the two-scan join, holding one chunk in memory at a time.
type shardReader struct {
	f   *os.File
	hdr shardHeader
	buf []byte

	chunk int // next chunk to load
	pos   int // next record offset within buf
	end   int // payload end within buf

	// ReRe accumulates the trailer re-resolution counts of every chunk
	// read so far.
	ReRe int
}

// openShardReader opens a completed shard file for the join,
// validating its header against the run.
func openShardReader(path string, hdr shardHeader) (*shardReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hb [shardHeaderSize]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("scan: %s: %w", path, err)
	}
	got, err := decodeShardHeader(hb[:])
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if got != hdr {
		f.Close()
		return nil, fmt.Errorf("scan: %s: %w", path, ErrCheckpointMismatch)
	}
	return &shardReader{f: f, hdr: hdr}, nil
}

// next returns the next verdict in index order, or io.EOF past the
// shard's range. A torn or corrupt chunk (impossible after a clean
// scan phase) surfaces as an error.
func (r *shardReader) next() (Verdict, error) {
	if r.pos >= r.end {
		if r.chunk >= r.hdr.chunks() {
			return Verdict{}, io.EOF
		}
		clo, chi := r.hdr.chunkBounds(r.chunk)
		count := chi - clo
		chunkLen := count*verdictRecSize + chunkTrailerSize
		if cap(r.buf) < chunkLen {
			r.buf = make([]byte, chunkLen)
		}
		r.buf = r.buf[:chunkLen]
		if _, err := io.ReadFull(r.f, r.buf); err != nil {
			return Verdict{}, fmt.Errorf("scan: reading chunk %d: %w", r.chunk, err)
		}
		if !validChunk(r.buf, count) {
			return Verdict{}, fmt.Errorf("scan: chunk %d failed its checksum", r.chunk)
		}
		r.ReRe += int(binary.LittleEndian.Uint32(r.buf[count*verdictRecSize+4:]))
		r.pos, r.end = 0, count*verdictRecSize
		r.chunk++
	}
	v := decodeVerdict(r.buf[r.pos:])
	r.pos += verdictRecSize
	return v, nil
}

// close releases the file.
func (r *shardReader) close() error { return r.f.Close() }
