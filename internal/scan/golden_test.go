package scan

import (
	"os"
	"testing"
	"time"

	"repro/internal/simtime"
)

// TestStudyResultGolden pins the full StudyResult rendering for a fixed
// seed to testdata/golden_study.txt, across the serial scanner, the
// default GOMAXPROCS pool and an oversubscribed 32-worker pool. Any
// drift — classification, counter totals, formatting, or the shared
// per-index derivation both the materialized and streaming paths
// consume — fails byte-for-byte.
func TestStudyResultGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_study.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 0, 32} {
		pop, err := Generate(DefaultConfig(3000, 5))
		if err != nil {
			t.Fatal(err)
		}
		clock := simtime.NewSim(simtime.Epoch)
		res := RunStudyWorkers(pop, clock, 56*24*time.Hour, workers)
		if got := res.RenderFull(); got != string(want) {
			t.Errorf("workers=%d: study result drifted from golden:\ngot:\n%s\nwant:\n%s",
				workers, got, want)
		}
	}
}
