package scan

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// streamTestConfig is the population the identity tests compare on:
// the full 100k the issue names, 20k under -short.
func streamTestConfig(t *testing.T) Config {
	t.Helper()
	n := 100000
	if testing.Short() {
		n = 20000
	}
	return DefaultConfig(n, 1)
}

// materializedRender runs the classic Generate+RunStudyWorkers path
// and renders the result.
func materializedRender(t *testing.T, cfg Config) string {
	t.Helper()
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return RunStudyWorkers(pop, simtime.NewSim(simtime.Epoch), 56*24*time.Hour, 0).RenderFull()
}

// TestStreamByteIdentity is the golden byte-identity guarantee: the
// streaming pipeline's full rendering equals the materialized path's,
// for any shard/worker/chunk partitioning.
func TestStreamByteIdentity(t *testing.T) {
	cfg := streamTestConfig(t)
	want := materializedRender(t, cfg)
	layouts := []StreamOpts{
		{Shards: 1, Workers: 1},
		{Shards: 4, Workers: 2, ChunkDomains: 1000},
		{Shards: 7, Workers: 7, ChunkDomains: 513},
	}
	for _, opts := range layouts {
		opts.Dir = t.TempDir()
		res, stats, err := RunStream(cfg, opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", opts.Shards, err)
		}
		if got := res.RenderFull(); got != want {
			t.Errorf("shards=%d workers=%d chunk=%d: streaming output differs from materialized:\ngot:\n%s\nwant:\n%s",
				opts.Shards, opts.Workers, opts.ChunkDomains, got, want)
		}
		if stats.DomainsScanned != int64(2*cfg.Domains) {
			t.Errorf("shards=%d: scanned %d domain-rounds, want %d",
				opts.Shards, stats.DomainsScanned, 2*cfg.Domains)
		}
	}
}

// TestStreamInterruptResume interrupts a streaming study at a chunk
// boundary and resumes it; the resumed run must skip the durable
// prefix and produce byte-identical output.
func TestStreamInterruptResume(t *testing.T) {
	cfg := streamTestConfig(t)
	want := materializedRender(t, cfg)
	dir := t.TempDir()
	opts := StreamOpts{Dir: dir, Shards: 3, Workers: 1, ChunkDomains: 2048}

	interrupted := opts
	interrupted.StopAfterChunks = 5
	if _, _, err := RunStream(cfg, interrupted); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}

	resumed := opts
	resumed.Resume = true
	reg := metrics.NewRegistry()
	resumed.Metrics = reg
	res, stats, err := RunStream(cfg, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RenderFull(); got != want {
		t.Errorf("resumed output differs from uninterrupted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if stats.ChunksResumed == 0 || stats.DomainsResumed == 0 {
		t.Errorf("resume reused nothing: %+v", stats)
	}
	if stats.DomainsScanned+stats.DomainsResumed != int64(2*cfg.Domains) {
		t.Errorf("scanned %d + resumed %d != %d domain-rounds",
			stats.DomainsScanned, stats.DomainsResumed, 2*cfg.Domains)
	}
}

// TestStreamCrashRecovery simulates torn writes — a truncated chunk in
// one shard file, a corrupted CRC in another — and asserts resume
// detects both, rescans only past the valid prefix, and still matches
// the uninterrupted result byte for byte.
func TestStreamCrashRecovery(t *testing.T) {
	cfg := DefaultConfig(6000, 4)
	want := materializedRender(t, cfg)
	dir := t.TempDir()
	opts := StreamOpts{Dir: dir, Shards: 2, Workers: 1, ChunkDomains: 500}
	if _, _, err := RunStream(cfg, opts); err != nil {
		t.Fatal(err)
	}

	// Tear the tail off round 2, shard 1: a chunk whose trailer never
	// made it to disk.
	torn := filepath.Join(dir, shardFileName(2, 1))
	st, err := os.Stat(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(torn, st.Size()-17); err != nil {
		t.Fatal(err)
	}

	// Corrupt a payload byte mid-file in round 1, shard 0: its chunk's
	// CRC no longer matches, so that chunk and everything after must be
	// rescanned.
	corrupt := filepath.Join(dir, shardFileName(1, 0))
	f, err := os.OpenFile(corrupt, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, shardHeaderSize+3*int64(500*verdictRecSize+chunkTrailerSize)+11); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resumed := opts
	resumed.Resume = true
	res, stats, err := RunStream(cfg, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RenderFull(); got != want {
		t.Errorf("recovered output differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if stats.TornShards != 2 {
		t.Errorf("TornShards = %d, want 2 (one truncated, one corrupted)", stats.TornShards)
	}
	if stats.DomainsScanned == 0 || stats.DomainsResumed == 0 {
		t.Errorf("recovery should rescan some domains and reuse others: %+v", stats)
	}
	// The valid prefix before the corrupted chunk 3 must have been
	// reused, not rescanned.
	if stats.ChunksResumed < 3 {
		t.Errorf("ChunksResumed = %d, want at least the 3 chunks before the corruption", stats.ChunksResumed)
	}
}

// TestStreamConfigMismatchRefuses: resuming under any config change
// must refuse with ErrCheckpointMismatch, not silently join
// incompatible rounds.
func TestStreamConfigMismatchRefuses(t *testing.T) {
	cfg := DefaultConfig(3000, 4)
	dir := t.TempDir()
	opts := StreamOpts{Dir: dir, Shards: 2, ChunkDomains: 500}
	if _, _, err := RunStream(cfg, opts); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Config){
		"seed":      func(c *Config) { c.Seed = 5 },
		"domains":   func(c *Config) { c.Domains = 3001 },
		"transient": func(c *Config) { c.TransientFailure = 0.5 },
	} {
		changed := cfg
		mut(&changed)
		resumed := opts
		resumed.Resume = true
		if _, _, err := RunStream(changed, resumed); !errors.Is(err, ErrCheckpointMismatch) {
			t.Errorf("%s change: resume returned %v, want ErrCheckpointMismatch", name, err)
		}
	}
	// The unchanged config must still resume (and scan nothing).
	resumed := opts
	resumed.Resume = true
	_, stats, err := RunStream(cfg, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DomainsScanned != 0 {
		t.Errorf("complete checkpoint rescanned %d domains", stats.DomainsScanned)
	}
}

// TestStreamTraceEvents: checkpoint/resume progress must surface as
// trace events so /debug/traces can show where a resumed study spent
// its time.
func TestStreamTraceEvents(t *testing.T) {
	cfg := DefaultConfig(3000, 4)
	dir := t.TempDir()
	tracer := trace.New(16)
	opts := StreamOpts{Dir: dir, Shards: 2, ChunkDomains: 500, Tracer: tracer, StopAfterChunks: 2}
	if _, _, err := RunStream(cfg, opts); !errors.Is(err, ErrInterrupted) {
		t.Fatal("want interruption")
	}
	opts.StopAfterChunks = 0
	opts.Resume = true
	if _, _, err := RunStream(cfg, opts); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tr := range tracer.Snapshot() {
		for _, ev := range tr.Events() {
			if ev.Kind == trace.KindCheckpoint {
				kinds = append(kinds, ev.Name)
			}
		}
	}
	want := map[string]bool{"interrupt": false, "resume": false, "shard-done": false, "join-shard": false}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("no %q checkpoint event recorded (got %v)", k, kinds)
		}
	}
}

// TestParseDomainIndex covers the fallback name parser.
func TestParseDomainIndex(t *testing.T) {
	cases := []struct {
		name string
		idx  int
		ok   bool
	}{
		{"d000000.example", 0, true},
		{"d000123.example", 123, true},
		{"mx.d000042.example", 42, true},
		{"mx3.d1234567.example", 1234567, true},
		{"ghost.d000009.example", 9, true},
		{"example", 0, false},
		{"d.example", 0, false},
		{"dx1.example", 0, false},
		{"other.net", 0, false},
		{"mx.d00x1.example", 0, false},
	}
	for _, c := range cases {
		idx, ok := parseDomainIndex(c.name)
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("parseDomainIndex(%q) = %d,%v; want %d,%v", c.name, idx, ok, c.idx, c.ok)
		}
	}
}

// TestVerdictCodec round-trips the 8-byte record.
func TestVerdictCodec(t *testing.T) {
	for _, v := range []Verdict{{}, {Cat: 3, MXs: 2, Resolved: 1}, {Cat: 255, MXs: 65535, Resolved: 65535}} {
		var b [verdictRecSize]byte
		v.encode(b[:])
		if got := decodeVerdict(b[:]); got != v {
			t.Errorf("round trip %+v -> %+v", v, got)
		}
	}
}

// TestShardHeaderCodec round-trips and checksums the file header.
func TestShardHeaderCodec(t *testing.T) {
	h := shardHeader{Round: 2, Shard: 3, Shards: 8, Lo: 1000, Hi: 2000, CfgHash: 0xdeadbeefcafef00d, ChunkDomains: 64}
	b := h.encode()
	got, err := decodeShardHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %+v -> %+v", h, got)
	}
	b[30] ^= 1
	if _, err := decodeShardHeader(b[:]); err == nil {
		t.Fatal("corrupted header decoded without error")
	}
}

// TestStreamSyncAndProgress exercises the fsync path and the progress
// reporter (content is informational; this pins that they run).
func TestStreamSyncAndProgress(t *testing.T) {
	cfg := DefaultConfig(2000, 4)
	var buf syncBuffer
	opts := StreamOpts{
		Dir: t.TempDir(), Shards: 2, ChunkDomains: 256, Sync: true,
		Progress: &buf, ProgressEvery: time.Millisecond,
	}
	if _, _, err := RunStream(cfg, opts); err != nil {
		t.Fatal(err)
	}
}

// syncBuffer is a minimal concurrent-safe io.Writer for the progress
// goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}
