package scan

import (
	"testing"
)

// TestScanDomainZeroAlloc asserts the tentpole property: once the
// scanner's scratch buffers have warmed up, scanning a glue-present
// domain against a banner-grab dataset allocates nothing.
func TestScanDomainZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(2000, 1)
	cfg.NoGlueFrac = 0 // glue-present path
	cfg.TransientFailure = 0
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(pop, nil)
	s.UseDataset(BannerGrab(pop, 4))
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.ScanDomain(pop.Specs[i%len(pop.Specs)].Name)
		i++
	})
	if allocs != 0 {
		t.Errorf("ScanDomain allocates %.1f times per call on the glue-present path, want 0", allocs)
	}
}

// TestScanVerdictZeroAllocLiveProbe covers the other join mode: live
// port probes through the scratch address buffer instead of a dataset.
func TestScanVerdictZeroAllocLiveProbe(t *testing.T) {
	cfg := DefaultConfig(2000, 1)
	cfg.NoGlueFrac = 0
	cfg.TransientFailure = 0
	pop, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScanner(pop, nil)
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.ScanVerdict(pop.Specs[i%len(pop.Specs)].Name)
		i++
	})
	if allocs != 0 {
		t.Errorf("ScanVerdict allocates %.1f times per call with live probes, want 0", allocs)
	}
}
