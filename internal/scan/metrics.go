package scan

import (
	"repro/internal/metrics"
)

// instruments holds the optional counters and histograms installed by
// Register. The scan hot paths reach them through one atomic pointer
// load; a nil pointer (no registry attached) costs exactly that load,
// preserving the zero-allocation scan path.
type instruments struct {
	domains        *metrics.Counter
	rounds         *metrics.Counter
	reResolutions  *metrics.Counter
	grabProbes     *metrics.Counter
	grabResponsive *metrics.Counter
	roundSeconds   *metrics.Histogram
}

// scanRoundBuckets covers scan-round wall clock from sub-millisecond
// test populations to multi-minute paper-scale sweeps.
var scanRoundBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Register exports the population's scan counters into reg under the
// scan_* namespace, plus mirrors of the simulated network's own atomic
// dial counters (no double counting — the exposition and Net.Stats can
// never disagree). Call it once before RunStudy; instrumented runs stay
// allocation-free on the scan path.
func (p *Population) Register(reg *metrics.Registry) {
	inst := &instruments{
		domains: reg.Counter("scan_domains_total",
			"Domains scanned across all scan rounds."),
		rounds: reg.Counter("scan_rounds_total",
			"Completed scan rounds (banner grab + DNS sweep)."),
		reResolutions: reg.Counter("scan_reresolutions_total",
			"Glue-less MX targets that needed a follow-up A lookup."),
		grabProbes: reg.Counter("scan_bannergrab_probes_total",
			"Port-25 probes issued by banner grabs."),
		grabResponsive: reg.Counter("scan_bannergrab_responsive_total",
			"Port-25 probes that found a listener."),
		roundSeconds: reg.Histogram("scan_round_seconds",
			"Wall-clock duration of one scan round.", scanRoundBuckets),
	}
	net := p.Net
	reg.CounterFunc("netsim_dials_total",
		"Dial attempts on the simulated network.",
		func() uint64 { dials, _ := net.Stats(); return dials })
	reg.CounterFunc("netsim_dials_refused_total",
		"Dial attempts refused (no listener bound).",
		func() uint64 { _, refused := net.Stats(); return refused })
	p.inst.Store(inst)
}
