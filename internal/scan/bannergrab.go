package scan

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/dnsmsg"
)

// SMTPDataset is the reproduction of the paper's "Daily Full IPv4 SMTP
// Banner Grab" scans.io dataset: the set of addresses that answered a
// SYN on port 25 at scan time. The paper's pipeline first collects this
// dataset with zmap and then JOINS the DNS observations against it —
// classification never touches the live network. BannerGrab builds the
// same artifact from the synthetic population.
//
// Addresses are keyed by their packed IPv4 value so that the scan hot
// path joins against the dataset without building an address string.
type SMTPDataset struct {
	listening map[uint32]bool
}

// parseIPv4Key parses a dotted quad into the packed big-endian key
// without allocating (dnsmsg.ParseIPv4 splits into substrings). Generic
// over string and []byte so netsim oracles can key raw address buffers.
func parseIPv4Key[T ~string | ~[]byte](s T) (uint32, bool) {
	var key uint32
	octet, digits, dots := 0, 0, 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			octet = octet*10 + int(c-'0')
			digits++
			if digits > 3 || octet > 255 {
				return 0, false
			}
		case c == '.':
			if digits == 0 || dots == 3 {
				return 0, false
			}
			key = key<<8 | uint32(octet)
			octet, digits = 0, 0
			dots++
		default:
			return 0, false
		}
	}
	if digits == 0 || dots != 3 {
		return 0, false
	}
	return key<<8 | uint32(octet), true
}

// ipKey packs an A record's address into the dataset key.
func ipKey(a dnsmsg.A) uint32 {
	return uint32(a.IP[0])<<24 | uint32(a.IP[1])<<16 | uint32(a.IP[2])<<8 | uint32(a.IP[3])
}

// Listening reports whether ip (dotted quad) answered on port 25 during
// the grab.
func (d *SMTPDataset) Listening(ip string) bool {
	key, ok := parseIPv4Key(ip)
	return ok && d.listening[key]
}

// ListeningA is Listening keyed directly by an A record — the scan hot
// path's join, free of any string conversion.
func (d *SMTPDataset) ListeningA(a dnsmsg.A) bool { return d.listening[ipKey(a)] }

// Size reports how many addresses were responsive.
func (d *SMTPDataset) Size() int { return len(d.listening) }

// Addresses returns the responsive addresses as dotted quads, sorted
// (for export).
func (d *SMTPDataset) Addresses() []string {
	out := make([]string, 0, len(d.listening))
	var buf [15]byte
	for key := range d.listening {
		b := strconv.AppendUint(buf[:0], uint64(key>>24), 10)
		b = append(b, '.')
		b = strconv.AppendUint(b, uint64(key>>16&255), 10)
		b = append(b, '.')
		b = strconv.AppendUint(b, uint64(key>>8&255), 10)
		b = append(b, '.')
		b = strconv.AppendUint(b, uint64(key&255), 10)
		out = append(out, string(b))
	}
	sort.Strings(out)
	return out
}

// grabChunk is how many consecutive targets a grab worker claims per
// atomic-cursor fetch.
const grabChunk = 256

// BannerGrab probes port 25 of every MX address in the population with
// the given number of concurrent workers and returns the snapshot. The
// snapshot reflects the failure state at grab time — run it inside a
// BeginScan/EndScan window. The target list is precomputed at Generate;
// workers claim index ranges from an atomic cursor, probe through a
// reused address buffer (no per-target strings), and record results
// lock-free at the target's index.
func BannerGrab(p *Population, workers int) *SMTPDataset {
	targets := p.targets
	if workers < 1 {
		workers = 1
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	results := make([]bool, len(targets))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				start := int(cursor.Add(grabChunk)) - grabChunk
				if start >= len(targets) {
					break
				}
				end := start + grabChunk
				if end > len(targets) {
					end = len(targets)
				}
				for i := start; i < end; i++ {
					buf = append(buf[:0], targets[i]...)
					buf = append(buf, ":25"...)
					results[i] = p.Net.ListeningAddr(buf)
				}
			}
		}()
	}
	wg.Wait()

	ds := &SMTPDataset{listening: make(map[uint32]bool, len(targets))}
	responsive := 0
	for i, up := range results {
		if up {
			ds.listening[p.targetKeys[i]] = true
			responsive++
		}
	}
	if inst := p.inst.Load(); inst != nil {
		inst.grabProbes.Add(uint64(len(targets)))
		inst.grabResponsive.Add(uint64(responsive))
	}
	return ds
}

// UseDataset switches the scanner from live port probes to dataset
// joins, matching the paper's offline methodology. Passing nil reverts
// to live probing.
func (s *Scanner) UseDataset(ds *SMTPDataset) {
	if ds == nil {
		s.dataset = nil // avoid a typed-nil interface
		return
	}
	s.dataset = ds
}

// useLiveness installs an arbitrary liveness source — the streaming
// path's derived oracle, which answers the same join an SMTPDataset
// would without materializing the address table.
func (s *Scanner) useLiveness(src livenessSource) { s.dataset = src }

// listeningA is the scanner's liveness primitive: a dataset join when
// one is loaded, a live probe (through the scratch address buffer)
// otherwise. Neither form allocates in steady state.
func (s *Scanner) listeningA(a dnsmsg.A) bool {
	if s.dataset != nil {
		return s.dataset.ListeningA(a)
	}
	b := s.addrBuf[:0]
	b = strconv.AppendUint(b, uint64(a.IP[0]), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a.IP[1]), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a.IP[2]), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a.IP[3]), 10)
	b = append(b, ":25"...)
	s.addrBuf = b
	return s.net.ListeningAddr(b)
}
