package scan

import (
	"sort"
	"sync"
)

// SMTPDataset is the reproduction of the paper's "Daily Full IPv4 SMTP
// Banner Grab" scans.io dataset: the set of addresses that answered a
// SYN on port 25 at scan time. The paper's pipeline first collects this
// dataset with zmap and then JOINS the DNS observations against it —
// classification never touches the live network. BannerGrab builds the
// same artifact from the synthetic population.
type SMTPDataset struct {
	listening map[string]bool
}

// Listening reports whether ip answered on port 25 during the grab.
func (d *SMTPDataset) Listening(ip string) bool { return d.listening[ip] }

// Size reports how many addresses were responsive.
func (d *SMTPDataset) Size() int { return len(d.listening) }

// Addresses returns the responsive addresses, sorted (for export).
func (d *SMTPDataset) Addresses() []string {
	out := make([]string, 0, len(d.listening))
	for ip := range d.listening {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// BannerGrab probes port 25 of every MX address in the population with
// the given number of concurrent workers and returns the snapshot. The
// snapshot reflects the failure state at grab time — run it inside a
// BeginScan/EndScan window.
func BannerGrab(p *Population, workers int) *SMTPDataset {
	if workers < 1 {
		workers = 1
	}
	var targets []string
	seen := make(map[string]bool)
	for _, s := range p.Specs {
		for _, ip := range []string{s.PrimaryIP, s.SecondaryIP} {
			if ip != "" && !seen[ip] {
				seen[ip] = true
				targets = append(targets, ip)
			}
		}
	}

	ds := &SMTPDataset{listening: make(map[string]bool, len(targets))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ip := range work {
				if p.Net.Listening(ip + ":25") {
					mu.Lock()
					ds.listening[ip] = true
					mu.Unlock()
				}
			}
		}()
	}
	for _, ip := range targets {
		work <- ip
	}
	close(work)
	wg.Wait()
	return ds
}

// UseDataset switches the scanner from live port probes to dataset
// joins, matching the paper's offline methodology. Passing nil reverts
// to live probing.
func (s *Scanner) UseDataset(ds *SMTPDataset) { s.dataset = ds }

// listening is the scanner's liveness primitive: a dataset join when one
// is loaded, a live probe otherwise.
func (s *Scanner) listening(ip string) bool {
	if s.dataset != nil {
		return s.dataset.Listening(ip)
	}
	return s.net.Listening(ip + ":25")
}
