package scan

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
	"repro/internal/metrics"
	"repro/internal/nolist"
	"repro/internal/trace"
)

// ErrInterrupted reports a streaming study stopped at a chunk boundary
// before finishing (the StopAfterChunks test hook); everything flushed
// so far is durable and a -resume run picks up from it.
var ErrInterrupted = errors.New("scan: stream interrupted (checkpoint retained)")

// defaultChunkDomains is the durability granule: how many domains a
// shard worker scans between chunk flushes. 8192 verdicts is a 64 KiB
// payload — large enough that checksum and write-call overhead
// vanishes, small enough that an interrupted 135 M-domain study loses
// at most a fraction of a second of work.
const defaultChunkDomains = 8192

// StreamOpts configures RunStream.
type StreamOpts struct {
	// Dir is the checkpoint directory holding the per-shard verdict
	// files (created if missing). Required.
	Dir string
	// Shards is the number of index-range shards (and verdict files)
	// per round; 0 means GOMAXPROCS. The shard count does not affect
	// the study output, only file layout and available parallelism.
	Shards int
	// Workers is how many shards are scanned concurrently; 0 means
	// GOMAXPROCS (capped at the shard count).
	Workers int
	// ChunkDomains is the durability granule; 0 means 8192.
	ChunkDomains int
	// Resume picks up from the verdict files already in Dir, rescanning
	// only past each shard's last durable chunk. Refuses (with
	// ErrCheckpointMismatch) if they were written under a different
	// configuration. Without Resume, existing files are overwritten.
	Resume bool
	// Sync fsyncs every chunk flush. Off, durability is the OS page
	// cache's promise — fine for benchmarks, not for surviving power
	// loss.
	Sync bool
	// Metrics, when non-nil, receives the scan_stream_* counters.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records one trace per scan round with
	// checkpoint events (resumes, rescans, shard completions), so
	// /debug/traces can show where a resumed study spent its time.
	Tracer *trace.Tracer
	// Progress, when non-nil, receives one-line progress reports every
	// ProgressEvery (default 5s).
	Progress io.Writer
	// ProgressEvery is the progress report period; 0 means 5s.
	ProgressEvery time.Duration
	// StopAfterChunks aborts the run with ErrInterrupted after that
	// many chunk flushes across all shards — the crash-injection hook
	// the resume tests use. 0 means run to completion.
	StopAfterChunks int64
}

// StreamStats reports what a streaming run did and cost.
type StreamStats struct {
	Domains         int
	Shards          int
	ChunksWritten   int64
	ChunksResumed   int64
	DomainsScanned  int64
	DomainsResumed  int64
	CheckpointBytes int64
	TornShards      int
	PeakHeapBytes   uint64
	RoundSeconds    [2]float64
	JoinSeconds     float64
}

// streamInstruments is the scan_stream_* metric set.
type streamInstruments struct {
	chunksWritten   *metrics.Counter
	chunksResumed   *metrics.Counter
	domainsScanned  *metrics.Counter
	domainsResumed  *metrics.Counter
	resumes         *metrics.Counter
	checkpointBytes *metrics.Counter
}

func newStreamInstruments(reg *metrics.Registry) *streamInstruments {
	if reg == nil {
		return nil
	}
	return &streamInstruments{
		chunksWritten: reg.Counter("scan_stream_chunks_written_total",
			"Verdict chunks flushed to checkpoint files."),
		chunksResumed: reg.Counter("scan_stream_chunks_resumed_total",
			"Durable verdict chunks reused from a previous run."),
		domainsScanned: reg.Counter("scan_stream_domains_scanned_total",
			"Domains scanned by streaming workers (both rounds)."),
		domainsResumed: reg.Counter("scan_stream_domains_resumed_total",
			"Domains skipped because a resumed chunk already covered them."),
		resumes: reg.Counter("scan_stream_resumes_total",
			"Shard files resumed from a previous run."),
		checkpointBytes: reg.Counter("scan_stream_checkpoint_bytes_total",
			"Bytes appended to checkpoint files."),
	}
}

// synthSource derives DNS zones and banner-grab liveness on demand for
// one scan round. It is the streaming replacement for the materialized
// population: installed as a dnsserver fallback it synthesizes the
// queried domain's zone into a reused scratch Zone (so the scanner
// sees byte-identical answers to the materialized path), and as the
// scanner's livenessSource it answers the SMTP-dataset join from the
// derived topology and the round's transient-failure draw. One
// synthSource serves one worker; it is not safe for concurrent use.
type synthSource struct {
	gen   *domainGen
	round int

	zone      *dnsserver.Zone
	zoneIndex int

	dIndex int
	d      derivedDomain
}

func newSynthSource(gen *domainGen, round int) *synthSource {
	return &synthSource{
		gen:       gen,
		round:     round,
		zone:      dnsserver.NewZone("example"),
		zoneIndex: -1,
		dIndex:    -1,
	}
}

// parseDomainIndex extracts the domain index from any name inside a
// synthetic zone ("d000123.example", "mx1.d000123.example",
// "ghost.d000123.example", ...). ok is false for foreign names.
func parseDomainIndex(name string) (int, bool) {
	const suffix = ".example"
	if !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	label := name[:len(name)-len(suffix)]
	if dot := strings.LastIndexByte(label, '.'); dot >= 0 {
		label = label[dot+1:]
	}
	if len(label) < 2 || label[0] != 'd' {
		return 0, false
	}
	i := 0
	for k := 1; k < len(label); k++ {
		c := label[k]
		if c < '0' || c > '9' {
			return 0, false
		}
		i = i*10 + int(c-'0')
		if i < 0 {
			return 0, false
		}
	}
	return i, true
}

// derived returns domain index's topology through a one-entry cache —
// the scanner touches the same domain several times per query (MX
// answer, glue, liveness joins).
func (s *synthSource) derived(index int) *derivedDomain {
	if index != s.dIndex {
		s.d = s.gen.domain(index)
		s.dIndex = index
	}
	return &s.d
}

// zoneFor implements the dnsserver fallback: synthesize the queried
// domain's zone into the scratch Zone and hand it back.
func (s *synthSource) zoneFor(name string) *dnsserver.Zone {
	index, ok := parseDomainIndex(name)
	if !ok || index >= s.gen.n {
		return nil
	}
	if index != s.zoneIndex {
		dn := domainName(index)
		s.zone.Reset(dn)
		if populateZone(s.zone, dn, index, s.derived(index)) != nil {
			return nil
		}
		s.zoneIndex = index
	}
	return s.zone
}

// ListeningA implements livenessSource: the same join an SMTPDataset
// built by BannerGrab under this round's transient failures would
// answer, derived instead of materialized.
func (s *synthSource) ListeningA(a dnsmsg.A) bool {
	index, slot, ok := ipIndex(ipKey(a))
	if !ok || index >= s.gen.n {
		return false
	}
	d := s.derived(index)
	if slot >= d.Hosts || !d.Live[slot] {
		return false
	}
	return !s.gen.hostDown(s.round, index, slot)
}

// streamRun carries the shared state of one RunStream invocation.
type streamRun struct {
	gen   *domainGen
	opts  StreamOpts
	hdrOf func(round, shard int) shardHeader
	inst  *streamInstruments
	stats StreamStats

	shards, workers, chunk int

	flushed  atomic.Int64 // chunk flushes, for StopAfterChunks
	scanned  atomic.Int64 // domains scanned, for progress
	resumed  atomic.Int64 // domains skipped via resume
	chunksW  atomic.Int64
	chunksR  atomic.Int64
	ckBytes  atomic.Int64
	tornN    atomic.Int64
	resumesN atomic.Int64

	peakHeap atomic.Uint64
}

// sampleHeap records the current heap size into the peak.
func (r *streamRun) sampleHeap() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := r.peakHeap.Load()
		if ms.HeapAlloc <= old || r.peakHeap.CompareAndSwap(old, ms.HeapAlloc) {
			return
		}
	}
}

// RunStream executes the full two-scan Section IV-A study as a
// disk-backed streaming pipeline: no Specs slice, no zone set, no
// target table — every per-domain fact is derived from (Config, index)
// on the fly, workers append verdict chunks to per-shard checkpoint
// files, and the final classification is a sequential merge of the two
// rounds' files. The result is byte-identical to
// Generate+RunStudyWorkers on the same Config, for any shard, worker
// and chunk size, and — via opts.Resume — across interrupted runs.
func RunStream(cfg Config, opts StreamOpts) (*StudyResult, *StreamStats, error) {
	gen, err := newDomainGen(cfg)
	if err != nil {
		return nil, nil, err
	}
	if opts.Dir == "" {
		return nil, nil, errors.New("scan: RunStream needs a checkpoint directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	run := &streamRun{gen: gen, opts: opts, inst: newStreamInstruments(opts.Metrics)}
	run.chunk = opts.ChunkDomains
	if run.chunk <= 0 {
		run.chunk = defaultChunkDomains
	}
	run.shards = opts.Shards
	if run.shards <= 0 {
		run.shards = runtime.GOMAXPROCS(0)
	}
	// No point sharding finer than one chunk per shard.
	if max := (gen.n + run.chunk - 1) / run.chunk; run.shards > max {
		run.shards = max
	}
	if run.shards < 1 {
		run.shards = 1
	}
	run.workers = opts.Workers
	if run.workers <= 0 {
		run.workers = runtime.GOMAXPROCS(0)
	}
	if run.workers > run.shards {
		run.workers = run.shards
	}
	cfgHash := gen.configHash()
	per := (gen.n + run.shards - 1) / run.shards
	run.hdrOf = func(round, shard int) shardHeader {
		lo := shard * per
		hi := lo + per
		if hi > gen.n {
			hi = gen.n
		}
		return shardHeader{
			Round: round, Shard: shard, Shards: run.shards,
			Lo: lo, Hi: hi, CfgHash: cfgHash, ChunkDomains: run.chunk,
		}
	}

	stopProgress := run.startProgress()
	defer stopProgress()

	for round := 1; round <= 2; round++ {
		started := time.Now()
		if err := run.runRound(round); err != nil {
			run.fill()
			return nil, &run.stats, err
		}
		run.stats.RoundSeconds[round-1] = time.Since(started).Seconds()
	}

	joinStart := time.Now()
	res, err := run.join()
	run.stats.JoinSeconds = time.Since(joinStart).Seconds()
	run.sampleHeap()
	run.fill()
	if err != nil {
		return nil, &run.stats, err
	}
	return res, &run.stats, nil
}

// fill copies the atomics into the exported stats.
func (r *streamRun) fill() {
	r.stats.Domains = r.gen.n
	r.stats.Shards = r.shards
	r.stats.ChunksWritten = r.chunksW.Load()
	r.stats.ChunksResumed = r.chunksR.Load()
	r.stats.DomainsScanned = r.scanned.Load()
	r.stats.DomainsResumed = r.resumed.Load()
	r.stats.CheckpointBytes = r.ckBytes.Load()
	r.stats.TornShards = int(r.tornN.Load())
	r.stats.PeakHeapBytes = r.peakHeap.Load()
}

// startProgress launches the progress/heap sampler; the returned stop
// function is idempotent.
func (r *streamRun) startProgress() func() {
	every := r.opts.ProgressEvery
	if every <= 0 {
		every = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				r.sampleHeap()
				if w := r.opts.Progress; w != nil {
					total := int64(r.gen.n) * 2
					did := r.scanned.Load() + r.resumed.Load()
					fmt.Fprintf(w, "scan: %d/%d domain-rounds (%.1f%%), heap peak %.1f MiB\n",
						did, total, 100*float64(did)/float64(total),
						float64(r.peakHeap.Load())/(1<<20))
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// runRound scans every shard of one round, spreading shards over the
// worker pool. The round's trace (one per round) records resume and
// completion checkpoints per shard.
func (r *streamRun) runRound(round int) error {
	tr := r.opts.Tracer.StartSession(trace.Tags{Family: "scan-stream", Sample: round}, "", nil)
	outcome := "complete"
	defer func() { tr.Finish(outcome) }()

	// Pre-fill the work queue so no goroutine ever blocks on it: a
	// worker that hits an error simply stops draining, and the flag
	// makes the surviving workers skip the remaining shards.
	shardCh := make(chan int, r.shards)
	for s := 0; s < r.shards; s++ {
		shardCh <- s
	}
	close(shardCh)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		firstE error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstE != nil
	}
	for w := 0; w < r.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range shardCh {
				if failed() {
					return
				}
				if err := r.runShard(round, s, tr); err != nil {
					mu.Lock()
					if firstE == nil {
						firstE = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstE != nil {
		if errors.Is(firstE, ErrInterrupted) {
			outcome = "interrupted"
		} else {
			outcome = "error"
		}
		return firstE
	}
	return nil
}

// runShard scans one shard of one round from its last durable chunk to
// the end, flushing a chunk every ChunkDomains domains.
func (r *streamRun) runShard(round, shard int, tr *trace.Trace) error {
	started := time.Now()
	hdr := r.hdrOf(round, shard)
	path := filepath.Join(r.opts.Dir, shardFileName(round, shard))
	w, info, err := openShard(path, hdr, r.opts.Resume, r.opts.Sync)
	if err != nil {
		return err
	}
	defer w.close()

	if info.ValidChunks > 0 || info.Torn {
		r.chunksR.Add(int64(info.ValidChunks))
		r.resumed.Add(int64(info.Next - hdr.Lo))
		r.resumesN.Add(1)
		if r.inst != nil {
			r.inst.chunksResumed.Add(uint64(info.ValidChunks))
			r.inst.domainsResumed.Add(uint64(info.Next - hdr.Lo))
			r.inst.resumes.Inc()
		}
		detail := fmt.Sprintf("shard %d: resume at %d (range %d-%d)", shard, info.Next, hdr.Lo, hdr.Hi)
		if info.Torn {
			r.tornN.Add(1)
			detail += ", torn tail rescanned"
		}
		tr.Checkpoint("resume", detail, info.ValidChunks, 0)
	}

	src := newSynthSource(r.gen, round)
	srv := dnsserver.New()
	srv.SetFallback(src.zoneFor)
	sc := newScannerRaw(srv, nil)
	sc.useLiveness(src)

	lastReRe := 0
	for next := info.Next; next < hdr.Hi; {
		k := (next - hdr.Lo) / r.chunk
		_, chi := hdr.chunkBounds(k)
		for i := next; i < chi; i++ {
			w.append(sc.ScanVerdict(domainName(i)))
		}
		if err := w.flushChunk(sc.ReResolutions - lastReRe); err != nil {
			return err
		}
		lastReRe = sc.ReResolutions
		r.scanned.Add(int64(chi - next))
		r.chunksW.Add(1)
		if r.inst != nil {
			r.inst.chunksWritten.Inc()
			r.inst.domainsScanned.Add(uint64(chi - next))
		}
		next = chi
		if limit := r.opts.StopAfterChunks; limit > 0 && r.flushed.Add(1) >= limit {
			tr.Checkpoint("interrupt", fmt.Sprintf("shard %d: stopped after chunk ending at %d", shard, next), int(limit), 0)
			r.ckBytes.Add(w.bytesWritten)
			if r.inst != nil {
				r.inst.checkpointBytes.Add(uint64(w.bytesWritten))
			}
			return fmt.Errorf("%w: stopped after %d chunk flushes", ErrInterrupted, limit)
		}
	}
	r.ckBytes.Add(w.bytesWritten)
	if r.inst != nil {
		r.inst.checkpointBytes.Add(uint64(w.bytesWritten))
	}
	tr.Checkpoint("shard-done", fmt.Sprintf("shard %d: range %d-%d", shard, hdr.Lo, hdr.Hi),
		hdr.Hi-info.Next, time.Since(started))
	return nil
}

// join merges the two rounds' verdict files sequentially into the
// final StudyResult — the same arithmetic RunStudyWorkers performs
// over its in-memory verdict slices, but over one chunk of each round
// at a time, so a 135 M-domain join holds two chunk buffers and the
// O(1000) Alexa rank table in memory and nothing else.
func (r *streamRun) join() (*StudyResult, error) {
	tr := r.opts.Tracer.StartSession(trace.Tags{Family: "scan-stream", Sample: 3}, "", nil)
	outcome := "complete"
	defer func() { tr.Finish(outcome) }()

	res := &StudyResult{
		Counts:    make(map[nolist.Category]int),
		Fractions: make(map[nolist.Category]float64),
	}
	ranks := r.gen.alexaRanks()
	changed := 0
	for shard := 0; shard < r.shards; shard++ {
		hdr1, hdr2 := r.hdrOf(1, shard), r.hdrOf(2, shard)
		r1, err := openShardReader(filepath.Join(r.opts.Dir, shardFileName(1, shard)), hdr1)
		if err != nil {
			outcome = "error"
			return nil, err
		}
		r2, err := openShardReader(filepath.Join(r.opts.Dir, shardFileName(2, shard)), hdr2)
		if err != nil {
			r1.close()
			outcome = "error"
			return nil, err
		}
		for i := hdr1.Lo; i < hdr1.Hi; i++ {
			v1, err1 := r1.next()
			v2, err2 := r2.next()
			if err1 != nil || err2 != nil {
				r1.close()
				r2.close()
				outcome = "error"
				if err1 == nil {
					err1 = err2
				}
				return nil, fmt.Errorf("scan: join shard %d at %d: %w", shard, i, err1)
			}
			c1, c2 := v1.Category(), v2.Category()
			if c1 == nolist.CatNolisting {
				res.SingleScanNolisting++
			}
			if c1 != c2 {
				changed++
			}
			final := nolist.FinalFromCategories(c1, c2)
			res.Counts[final]++
			if final != r.gen.category(i) {
				res.Misclassified++
			}
			if final == nolist.CatNolisting {
				switch rank := ranks[i]; {
				case rank == 0:
				case rank <= 15:
					res.NolistingInTop15++
					res.NolistingInTop500++
					res.NolistingInTop1000++
				case rank <= 500:
					res.NolistingInTop500++
					res.NolistingInTop1000++
				case rank <= 1000:
					res.NolistingInTop1000++
				}
			}
			res.EmailServers += int(v1.MXs)
			res.ResolvedIPs += int(v1.Resolved)
		}
		res.ReResolutions += r1.ReRe + r2.ReRe
		r1.close()
		r2.close()
		tr.Checkpoint("join-shard", fmt.Sprintf("shard %d joined", shard), hdr1.Hi-hdr1.Lo, 0)
	}
	if n := r.gen.n; n > 0 {
		res.ChangeBetweenScans = float64(changed) / float64(n)
		for c, k := range res.Counts {
			res.Fractions[c] = float64(k) / float64(n)
		}
	}
	return res, nil
}
