// Package scan reproduces the paper's worldwide nolisting-adoption
// measurement (Section IV-A, Figure 2). The paper combined two scans.io
// datasets — a DNS-ANY sweep of 135 M domains and a full-IPv4 SMTP
// banner grab — classified every domain, repeated the measurement two
// months later to filter transient outages, and cross-checked the
// nolisting population against Alexa ranks.
//
// We cannot scan the real Internet, so this package generates a synthetic
// one with Figure 2's ground-truth mixture (47.73% one-MX, 45.97%
// multi-MX, 5.78% DNS-misconfigured, 0.52% nolisting), injects the
// failure modes the paper had to engineer around (transient primary
// outages between scans, glue-less MX answers needing re-resolution), and
// runs the same three-step pipeline:
//
//  1. retrieve the MX records of every domain (DNS dataset),
//  2. resolve each record's address in priority order (with the
//     "parallel scanner" for missing entries),
//  3. look the addresses up in the SMTP banner-grab dataset.
//
// Because the population is synthetic we also get what the paper could
// not: the classifier's confusion against ground truth.
package scan

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
	"repro/internal/netsim"
	"repro/internal/nolist"
	"repro/internal/simtime"
)

// Figure 2's published fractions.
const (
	Fig2OneMX         = 0.4773
	Fig2MultiMX       = 0.4597
	Fig2Misconfigured = 0.0578
	Fig2Nolisting     = 0.0052
)

// Config parameterizes the synthetic Internet.
type Config struct {
	// Domains is the population size.
	Domains int
	// Seed drives all randomness.
	Seed int64
	// FracOneMX, FracMultiMX, FracMisconfigured, FracNolisting are the
	// ground-truth mixture; they must sum to ~1. Zero values mean the
	// Figure 2 mixture.
	FracOneMX         float64
	FracMultiMX       float64
	FracMisconfigured float64
	FracNolisting     float64
	// TransientFailure is the per-scan probability that a healthy
	// domain's primary MX happens to be down — the noise source the
	// two-scan rule exists to cancel.
	TransientFailure float64
	// NoGlueFrac is the fraction of domains whose MX answers carry no
	// glue, forcing the scanner's re-resolution step.
	NoGlueFrac float64
	// MXBalancedFrac and MXTieredFrac split the multi-MX population
	// across the BLBFO topologies Ruohonen measured in the wild
	// (PAPERS.md): shared-priority load balancing (three exchangers,
	// one preference) and combined setups (a balanced primary tier
	// backed by a balanced backup tier). The remainder publishes the
	// classic primary/backup fail-over pair. Both zero means every
	// multi-MX domain is a plain pair.
	MXBalancedFrac float64
	MXTieredFrac   float64
}

// DefaultConfig returns a population with the Figure 2 mixture, 1%
// transient failures, 20% glue-less answers and the BLBFO multi-MX
// topology mixture (load-balanced and tiered setups alongside plain
// fail-over pairs, after Ruohonen's measurement study).
func DefaultConfig(domains int, seed int64) Config {
	return Config{
		Domains:           domains,
		Seed:              seed,
		FracOneMX:         Fig2OneMX,
		FracMultiMX:       Fig2MultiMX,
		FracMisconfigured: Fig2Misconfigured,
		FracNolisting:     Fig2Nolisting,
		TransientFailure:  0.01,
		NoGlueFrac:        0.2,
		MXBalancedFrac:    0.22,
		MXTieredFrac:      0.09,
	}
}

// DomainSpec is one synthetic domain's ground truth.
type DomainSpec struct {
	Name string
	// TrueCategory is what the domain actually is.
	TrueCategory nolist.Category
	// AlexaRank is the domain's popularity rank; 0 means unranked.
	AlexaRank int
	// PrimaryIP and SecondaryIP are the MX host addresses ("" when
	// absent); for misconfigured domains both are empty.
	PrimaryIP   string
	SecondaryIP string
}

// Population is a generated synthetic Internet.
type Population struct {
	cfg   Config
	gen   *domainGen
	Specs []DomainSpec
	DNS   *dnsserver.Server
	Net   *netsim.Network
	// round counts BeginScan calls; the transient-failure oracle
	// installed for the current scan window derives per-host downness
	// from (seed, round, index) instead of materializing a down list.
	round atomic.Int64

	// targets and targetKeys are the banner-grab target list — every MX
	// address in the population, precomputed once at Generate so each
	// scan round's grab doesn't rebuild it (addresses are unique by
	// construction; see ip).
	targets    []string
	targetKeys []uint32

	inst atomic.Pointer[instruments]
}

// Generate builds the population: one DNS zone and zero or more SMTP
// listeners per domain according to its ground-truth category, all
// derived from the same per-index generator the streaming path uses
// (so a materialized study and a streamed one agree byte for byte).
// Alexa ranks 1..1000 are assigned so that, as the paper found, one
// nolisting domain sits in the top 15, two in the top 500 and two more
// in the top 1000 (population permitting).
func Generate(cfg Config) (*Population, error) {
	gen, err := newDomainGen(cfg)
	if err != nil {
		return nil, err
	}
	p := &Population{
		cfg: gen.cfg,
		gen: gen,
		DNS: dnsserver.New(),
		Net: netsim.New(),
	}

	zones := make([]*dnsserver.Zone, 0, gen.n)
	p.Specs = make([]DomainSpec, 0, gen.n)
	for i := 0; i < gen.n; i++ {
		d := gen.domain(i)
		name := domainName(i)
		zone := dnsserver.NewZone(name)
		if err := populateZone(zone, name, i, &d); err != nil {
			return nil, fmt.Errorf("scan: building %s: %w", name, err)
		}
		spec := DomainSpec{Name: name, TrueCategory: d.Cat}
		if d.Hosts > 0 {
			spec.PrimaryIP = ip(i, 0)
		}
		if d.Hosts > 1 {
			spec.SecondaryIP = ip(i, 1)
		}
		for s := 0; s < d.Hosts; s++ {
			if !d.Live[s] {
				continue
			}
			if _, err := p.Net.Listen(ip(i, s) + ":25"); err != nil {
				return nil, fmt.Errorf("scan: building %s: %w", name, err)
			}
		}
		p.Specs = append(p.Specs, spec)
		zones = append(zones, zone)
	}
	// One copy-on-write step instead of a map copy per zone.
	p.DNS.AddZones(zones...)
	for i, rank := range gen.alexaRanks() {
		p.Specs[i].AlexaRank = rank
	}
	p.buildTargets()
	return p, nil
}

// domainName derives the i-th domain's name ("d%06d.example") without
// fmt — populations are generated by the hundreds of thousands.
func domainName(i int) string {
	var buf [24]byte
	dst := append(buf[:0], 'd')
	var digits [20]byte
	s := strconv.AppendInt(digits[:0], int64(i), 10)
	for pad := 6 - len(s); pad > 0; pad-- {
		dst = append(dst, '0')
	}
	dst = append(dst, s...)
	dst = append(dst, ".example"...)
	return string(dst)
}

// buildTargets precomputes the banner-grab target list: every address
// carrying an A record in the population (live or not — the paper's
// zmap sweep probed everything the DNS dataset resolved), with its
// dataset key. Addresses are unique by construction (ip allocates one
// per domain/slot), so no dedup set is needed.
func (p *Population) buildTargets() {
	for i := 0; i < p.gen.n; i++ {
		d := p.gen.domain(i)
		for s := 0; s < d.Hosts; s++ {
			p.targets = append(p.targets, ip(i, s))
			p.targetKeys = append(p.targetKeys, ipKeyFor(i, s))
		}
	}
}

// apportion splits n into parts proportional to fracs (largest remainder).
func apportion(n int, fracs []float64) []int {
	total := 0.0
	for _, f := range fracs {
		total += f
	}
	counts := make([]int, len(fracs))
	rem := make([]float64, len(fracs))
	used := 0
	for i, f := range fracs {
		exact := float64(n) * f / total
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		used += counts[i]
	}
	for used < n {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		used++
	}
	return counts
}

// ipBase anchors the synthetic address space at 16.0.0.0: key =
// ipBase + index*maxMXHosts + slot, injective across 135 M domains
// times four host slots.
const ipBase = uint32(0x10000000)

// ipKeyFor packs (domain index, host slot) into the address key.
func ipKeyFor(index, slot int) uint32 {
	return ipBase + uint32(index*maxMXHosts+slot)
}

// ip renders the unique address for (domain index, host slot).
func ip(index, slot int) string {
	key := ipKeyFor(index, slot)
	var buf [15]byte
	dst := strconv.AppendUint(buf[:0], uint64(key>>24), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(key>>16&255), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(key>>8&255), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(key&255), 10)
	return string(dst)
}

// ipIndex inverts ip: address key -> (domain index, host slot).
func ipIndex(key uint32) (index, slot int, ok bool) {
	if key < ipBase {
		return 0, 0, false
	}
	q := int(key - ipBase)
	return q / maxMXHosts, q % maxMXHosts, true
}

// hostName derives the s-th exchanger name of a domain: "mx.<name>"
// for one-MX domains, "mx1.<name>".."mx4.<name>" otherwise.
func hostName(name string, d *derivedDomain, s int) string {
	if d.Cat == nolist.CatOneMX {
		return "mx." + name
	}
	var buf [40]byte
	dst := append(buf[:0], 'm', 'x', byte('1'+s), '.')
	dst = append(dst, name...)
	return string(dst)
}

// populateZone writes domain index's records into z — the one zone
// builder both the materialized path (Generate, once per domain) and
// the streaming path (a per-worker scratch zone, rebuilt on the fly)
// use, so the DNS answers the scanner sees are identical bytes either
// way.
func populateZone(z *dnsserver.Zone, name string, index int, d *derivedDomain) error {
	z.SetNoGlue(d.NoGlue)
	if d.Cat == nolist.CatMisconfigured {
		// An MX record whose target has no A record anywhere.
		return z.Add(dnsmsg.RR{Name: name, Type: dnsmsg.TypeMX, TTL: 300,
			Data: dnsmsg.MX{Preference: 10, Host: "ghost." + name}})
	}
	for s := 0; s < d.Hosts; s++ {
		host := hostName(name, d, s)
		if err := z.Add(dnsmsg.RR{Name: name, Type: dnsmsg.TypeMX, TTL: 300,
			Data: dnsmsg.MX{Preference: d.Pref[s], Host: host}}); err != nil {
			return err
		}
	}
	for s := 0; s < d.Hosts; s++ {
		host := hostName(name, d, s)
		if err := z.Add(dnsmsg.RR{Name: host, Type: dnsmsg.TypeA, TTL: 300,
			Data: dnsmsg.MustIPv4(ip(index, s))}); err != nil {
			return err
		}
	}
	return nil
}

// transientOracle derives per-host downness for one scan round. It is
// installed into netsim for the duration of a BeginScan/EndScan window
// instead of materializing a down list — O(1) per round regardless of
// population size, and the exact downness the streaming path derives.
type transientOracle struct {
	gen   *domainGen
	round int
}

func (o *transientOracle) down(key uint32, ok bool) bool {
	if !ok {
		return false
	}
	index, slot, ok := ipIndex(key)
	return ok && o.gen.hostDown(o.round, index, slot)
}

// HostDown implements netsim.DownOracle.
func (o *transientOracle) HostDown(host string) bool {
	key, ok := parseIPv4Key(host)
	return o.down(key, ok)
}

// HostDownBytes implements netsim.DownOracle.
func (o *transientOracle) HostDownBytes(host []byte) bool {
	key, ok := parseIPv4Key(host)
	return o.down(key, ok)
}

// BeginScan opens a scan window: every healthy listening primary is
// down with probability TransientFailure for the duration — the noise
// source the two-scan rule exists to cancel. Downness is derived per
// (seed, round, index) through a netsim oracle; nothing is
// materialized. EndScan closes the window.
func (p *Population) BeginScan() {
	round := int(p.round.Add(1))
	p.Net.SetDownOracle(&transientOracle{gen: p.gen, round: round})
}

// EndScan brings transiently-down hosts back up.
func (p *Population) EndScan() {
	p.Net.SetDownOracle(nil)
}

// livenessSource answers the banner-grab join for one A record: an
// *SMTPDataset on the materialized path, a derived oracle on the
// streaming path.
type livenessSource interface {
	ListeningA(a dnsmsg.A) bool
}

// Scanner runs the three-step observation pipeline over a population. It
// queries the population's DNS in process through the server's reusable
// response buffers (dnsserver.HandleReuse), so a steady-state ScanDomain
// on the glue-present path allocates nothing. A Scanner is not safe for
// concurrent use; the parallel study runner gives each worker its own.
type Scanner struct {
	srv     *dnsserver.Server
	net     *netsim.Network
	dataset livenessSource
	// ReResolutions counts glue-less MX targets that needed a second
	// lookup (the paper's parallel-scanner workload).
	ReResolutions int

	// Scratch state reused across calls: the query and response messages,
	// the re-resolution response, the MX observation buffer that
	// ScanDomain's result aliases, and the "ip:port" buffer for live
	// probes.
	q       dnsmsg.Message
	resp    dnsmsg.Message
	respA   dnsmsg.Message
	mxBuf   []nolist.MXObservation
	addrBuf []byte
}

// NewScanner builds a scanner over the population's DNS and network. The
// clock parameter is unused (scans are cache-less, so nothing is
// time-dependent) and kept for call-site compatibility.
func NewScanner(p *Population, clock simtime.Clock) *Scanner {
	_ = clock
	return &Scanner{srv: p.DNS, net: p.Net}
}

// newScannerRaw builds a scanner over a bare server and network — the
// streaming path's constructor, where no Population exists. net may be
// nil if a liveness source is installed before scanning.
func newScannerRaw(srv *dnsserver.Server, net *netsim.Network) *Scanner {
	return &Scanner{srv: srv, net: net}
}

// query answers (name, t) into the given scratch response and returns it,
// or nil if the name did not resolve (any non-success RCode).
func (s *Scanner) query(resp *dnsmsg.Message, name string, t dnsmsg.Type) *dnsmsg.Message {
	s.q.Header = dnsmsg.Header{ID: 1, OpCode: dnsmsg.OpQuery, RecursionDesired: true}
	s.q.Questions = append(s.q.Questions[:0], dnsmsg.Question{
		Name: name, Type: t, Class: dnsmsg.ClassINET,
	})
	s.srv.HandleReuse(&s.q, resp)
	if resp.Header.RCode != dnsmsg.RCodeSuccess {
		return nil
	}
	return resp
}

// ScanDomain produces one domain's observation: its MX records, whether
// each target resolved, and whether any of its addresses answers on
// port 25 (the banner-grab lookup). The returned observation's MXs slice
// aliases scanner-owned scratch and is valid only until the next call;
// ScanAll clones it for callers that retain observations.
func (s *Scanner) ScanDomain(name string) nolist.DomainObservation {
	obs := nolist.DomainObservation{Domain: name}
	resp := s.query(&s.resp, name, dnsmsg.TypeMX)
	if resp == nil {
		return obs // unresolvable: no MX observations at all
	}
	s.mxBuf = s.mxBuf[:0]
	for _, rr := range resp.Answers {
		mx, ok := rr.Data.(dnsmsg.MX)
		if !ok {
			continue
		}
		mo := nolist.MXObservation{Host: mx.Host, Pref: mx.Preference}
		glue := false
		for _, arr := range resp.Additional {
			if arr.Name != mx.Host {
				continue
			}
			a, ok := arr.Data.(dnsmsg.A)
			if !ok {
				continue
			}
			glue = true
			mo.Resolved = true
			if !mo.Listening && s.listeningA(a) {
				mo.Listening = true
			}
		}
		if !glue {
			// The reply named the exchanger but carried no address:
			// re-resolve, as the paper's parallel scanner did.
			s.ReResolutions++
			s.resolveA(mx.Host, &mo)
		}
		s.mxBuf = append(s.mxBuf, mo)
	}
	obs.MXs = s.mxBuf
	return obs
}

// resolveA resolves host to addresses with the same semantics as
// dnsresolver.LookupA (CNAME chasing up to depth 8), recording into mo
// whether anything resolved and whether any resolved address listens.
func (s *Scanner) resolveA(host string, mo *nolist.MXObservation) {
	name := dnsmsg.CanonicalName(host)
	for depth := 0; depth < 8; depth++ {
		resp := s.query(&s.respA, name, dnsmsg.TypeA)
		if resp == nil {
			return
		}
		next := ""
		found := false
		for _, rr := range resp.Answers {
			switch data := rr.Data.(type) {
			case dnsmsg.A:
				if rr.Name == name || next != "" {
					found = true
					mo.Resolved = true
					if !mo.Listening && s.listeningA(data) {
						mo.Listening = true
					}
				}
			case dnsmsg.CNAME:
				if rr.Name == name {
					next = data.Target
				}
			}
		}
		if found || next == "" {
			return
		}
		name = next
	}
}

// ScanAll observes every domain in the population under the current
// failure state. Unlike bare ScanDomain calls, the returned observations
// are independently owned (MX slices are cloned out of the scratch
// buffer).
func (s *Scanner) ScanAll(p *Population) []nolist.DomainObservation {
	out := make([]nolist.DomainObservation, len(p.Specs))
	for i, spec := range p.Specs {
		obs := s.ScanDomain(spec.Name)
		if len(obs.MXs) > 0 {
			obs.MXs = append([]nolist.MXObservation(nil), obs.MXs...)
		} else {
			obs.MXs = nil
		}
		out[i] = obs
	}
	return out
}

// Verdict is the compact per-domain record a scan round emits: the
// single-scan category plus the MX and resolved-address counts the study
// report needs. At eight bytes per domain, two full scan rounds of a
// paper-scale population fit in a few megabytes where retained
// DomainObservations needed gigabytes.
type Verdict struct {
	Cat      uint8
	MXs      uint16
	Resolved uint16
}

// Category returns the verdict's single-scan category.
func (v Verdict) Category() nolist.Category { return nolist.Category(v.Cat) }

// ScanVerdict scans one domain and classifies it on the spot, returning
// the compact verdict record. Nothing of the observation is retained.
func (s *Scanner) ScanVerdict(name string) Verdict {
	obs := s.ScanDomain(name)
	v := Verdict{Cat: uint8(nolist.ClassifyDomain(obs)), MXs: uint16(len(obs.MXs))}
	for _, mx := range obs.MXs {
		if mx.Resolved {
			v.Resolved++
		}
	}
	return v
}

// verdictChunk is how many consecutive domains a scan worker claims per
// atomic-cursor fetch; large enough to keep cursor contention negligible,
// small enough to balance tail latency.
const verdictChunk = 64

// scanVerdicts scans every domain into out[i] using the given number of
// workers (0 means GOMAXPROCS, 1 forces serial) and returns the total
// re-resolution count. Any worker count produces identical output:
// verdict i depends only on domain i and the population's fixed failure
// state, workers claim index ranges from an atomic cursor and write at
// the domain's index, and the re-resolution total is an order-independent
// sum.
func scanVerdicts(p *Population, ds *SMTPDataset, workers int, out []Verdict) int {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Workers claim verdictChunk-sized ranges, so more workers than
	// chunks just idle; clamping to the chunk count (not the domain
	// count) keeps small studies parallel instead of serializing every
	// population under verdictChunk domains per worker onto one goroutine.
	if max := (len(p.Specs) + verdictChunk - 1) / verdictChunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		s := NewScanner(p, nil)
		s.UseDataset(ds)
		for i := range p.Specs {
			out[i] = s.ScanVerdict(p.Specs[i].Name)
		}
		return s.ReResolutions
	}
	var (
		cursor atomic.Int64
		reRe   atomic.Int64
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := NewScanner(p, nil)
			ws.UseDataset(ds)
			for {
				start := int(cursor.Add(verdictChunk)) - verdictChunk
				if start >= len(p.Specs) {
					break
				}
				end := start + verdictChunk
				if end > len(p.Specs) {
					end = len(p.Specs)
				}
				for i := start; i < end; i++ {
					out[i] = ws.ScanVerdict(p.Specs[i].Name)
				}
			}
			reRe.Add(int64(ws.ReResolutions))
		}()
	}
	wg.Wait()
	return int(reRe.Load())
}

// StudyResult is the Figure 2 reproduction output.
type StudyResult struct {
	// Counts and Fractions per final category.
	Counts    map[nolist.Category]int
	Fractions map[nolist.Category]float64
	// SingleScanNolisting counts nolisting candidates in scan 1 alone —
	// the overestimate the two-scan rule corrects.
	SingleScanNolisting int
	// ChangeBetweenScans is the fraction of domains whose single-scan
	// class differed between the two scans (the paper: 0.01% for
	// nolisting candidates).
	ChangeBetweenScans float64
	// Misclassified counts domains whose final category differs from
	// ground truth (measurable only because the population is
	// synthetic).
	Misclassified int
	// NolistingInTop15, 500 and 1000: the Alexa cross-check.
	NolistingInTop15   int
	NolistingInTop500  int
	NolistingInTop1000 int
	// ReResolutions is the parallel-scanner workload.
	ReResolutions int
	// EmailServers and ResolvedIPs summarize dataset size.
	EmailServers int
	ResolvedIPs  int
}

// RunStudy executes the full Section IV-A methodology on the population:
// scan, wait `gap` (the paper waited two months), scan again, classify
// with the two-scan rule, cross-check Alexa. Domains are scanned by a
// worker pool sized to GOMAXPROCS; see RunStudyWorkers for the
// determinism guarantee.
func RunStudy(p *Population, clock *simtime.Sim, gap time.Duration) *StudyResult {
	return RunStudyWorkers(p, clock, gap, 0)
}

// RunStudyWorkers is RunStudy with an explicit scan-worker count:
// 0 means GOMAXPROCS, 1 forces the serial scanner. Any worker count
// produces byte-identical results — each domain's observation depends
// only on that domain and the scan's fixed failure state, so only
// wall-clock time varies.
func RunStudyWorkers(p *Population, clock *simtime.Sim, gap time.Duration, workers int) *StudyResult {
	// Each scan round mirrors the paper's methodology: collect the SMTP
	// banner-grab dataset first (concurrently, zmap-style), then join the
	// DNS observations against that snapshot. Classification is fused into
	// the scan: workers emit 8-byte Verdicts, so the two rounds retain
	// O(domains) compact records instead of full observations.
	const grabWorkers = 16
	n := len(p.Specs)
	first := make([]Verdict, n)
	second := make([]Verdict, n)
	reRe := 0

	runRound := func(out []Verdict) {
		started := time.Now()
		p.BeginScan()
		ds := BannerGrab(p, grabWorkers)
		reRe += scanVerdicts(p, ds, workers, out)
		p.EndScan()
		if inst := p.inst.Load(); inst != nil {
			inst.rounds.Inc()
			inst.domains.Add(uint64(n))
			inst.roundSeconds.ObserveDuration(time.Since(started))
		}
	}

	runRound(first)
	clock.Advance(gap)
	runRound(second)

	res := &StudyResult{
		Counts:        make(map[nolist.Category]int),
		Fractions:     make(map[nolist.Category]float64),
		ReResolutions: reRe,
	}
	if inst := p.inst.Load(); inst != nil {
		inst.reResolutions.Add(uint64(reRe))
	}
	changed := 0
	for i := range p.Specs {
		c1, c2 := first[i].Category(), second[i].Category()
		if c1 == nolist.CatNolisting {
			res.SingleScanNolisting++
		}
		if c1 != c2 {
			changed++
		}
		final := nolist.FinalFromCategories(c1, c2)
		res.Counts[final]++
		if final != p.Specs[i].TrueCategory {
			res.Misclassified++
		}
		if final == nolist.CatNolisting {
			switch rank := p.Specs[i].AlexaRank; {
			case rank == 0:
			case rank <= 15:
				res.NolistingInTop15++
				res.NolistingInTop500++
				res.NolistingInTop1000++
			case rank <= 500:
				res.NolistingInTop500++
				res.NolistingInTop1000++
			case rank <= 1000:
				res.NolistingInTop1000++
			}
		}
		res.EmailServers += int(first[i].MXs)
		res.ResolvedIPs += int(first[i].Resolved)
	}
	if n > 0 {
		res.ChangeBetweenScans = float64(changed) / float64(n)
		for c, k := range res.Counts {
			res.Fractions[c] = float64(k) / float64(n)
		}
	}
	return res
}

// RenderFull renders every StudyResult field as text — the pie plus the
// methodology and cross-check numbers. The golden byte-identity test
// pins this rendering across scanner implementations and worker counts.
func (r *StudyResult) RenderFull() string {
	var sb strings.Builder
	sb.WriteString(r.RenderPie())
	fmt.Fprintf(&sb, "\nemail servers: %d, resolved addresses: %d, re-resolutions: %d\n",
		r.EmailServers, r.ResolvedIPs, r.ReResolutions)
	fmt.Fprintf(&sb, "single-scan nolisting candidates: %d; confirmed by two scans: %d\n",
		r.SingleScanNolisting, r.Counts[nolist.CatNolisting])
	fmt.Fprintf(&sb, "classification churn between scans: %.4f%%\n", 100*r.ChangeBetweenScans)
	fmt.Fprintf(&sb, "misclassified vs ground truth: %d\n", r.Misclassified)
	fmt.Fprintf(&sb, "Alexa: nolisting in top-15: %d, top-500: %d, top-1000: %d\n",
		r.NolistingInTop15, r.NolistingInTop500, r.NolistingInTop1000)
	return sb.String()
}

// RenderPie prints the Figure 2 proportions as text.
func (r *StudyResult) RenderPie() string {
	order := []nolist.Category{nolist.CatOneMX, nolist.CatMultiMX, nolist.CatMisconfigured, nolist.CatNolisting}
	labels := map[nolist.Category]string{
		nolist.CatOneMX:         "One MX record",
		nolist.CatMultiMX:       "Not using nolisting",
		nolist.CatMisconfigured: "DNS misconf.",
		nolist.CatNolisting:     "Using nolisting",
	}
	out := "Nolisting mail server statistics (Figure 2)\n"
	for _, c := range order {
		out += fmt.Sprintf("  %-22s %7.2f%%  (%d domains)\n", labels[c], 100*r.Fractions[c], r.Counts[c])
	}
	return out
}
