// Package scan reproduces the paper's worldwide nolisting-adoption
// measurement (Section IV-A, Figure 2). The paper combined two scans.io
// datasets — a DNS-ANY sweep of 135 M domains and a full-IPv4 SMTP
// banner grab — classified every domain, repeated the measurement two
// months later to filter transient outages, and cross-checked the
// nolisting population against Alexa ranks.
//
// We cannot scan the real Internet, so this package generates a synthetic
// one with Figure 2's ground-truth mixture (47.73% one-MX, 45.97%
// multi-MX, 5.78% DNS-misconfigured, 0.52% nolisting), injects the
// failure modes the paper had to engineer around (transient primary
// outages between scans, glue-less MX answers needing re-resolution), and
// runs the same three-step pipeline:
//
//  1. retrieve the MX records of every domain (DNS dataset),
//  2. resolve each record's address in priority order (with the
//     "parallel scanner" for missing entries),
//  3. look the addresses up in the SMTP banner-grab dataset.
//
// Because the population is synthetic we also get what the paper could
// not: the classifier's confusion against ground truth.
package scan

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/netsim"
	"repro/internal/nolist"
	"repro/internal/simtime"
)

// Figure 2's published fractions.
const (
	Fig2OneMX         = 0.4773
	Fig2MultiMX       = 0.4597
	Fig2Misconfigured = 0.0578
	Fig2Nolisting     = 0.0052
)

// Config parameterizes the synthetic Internet.
type Config struct {
	// Domains is the population size.
	Domains int
	// Seed drives all randomness.
	Seed int64
	// FracOneMX, FracMultiMX, FracMisconfigured, FracNolisting are the
	// ground-truth mixture; they must sum to ~1. Zero values mean the
	// Figure 2 mixture.
	FracOneMX         float64
	FracMultiMX       float64
	FracMisconfigured float64
	FracNolisting     float64
	// TransientFailure is the per-scan probability that a healthy
	// domain's primary MX happens to be down — the noise source the
	// two-scan rule exists to cancel.
	TransientFailure float64
	// NoGlueFrac is the fraction of domains whose MX answers carry no
	// glue, forcing the scanner's re-resolution step.
	NoGlueFrac float64
}

// DefaultConfig returns a population with the Figure 2 mixture, 1%
// transient failures and 20% glue-less answers.
func DefaultConfig(domains int, seed int64) Config {
	return Config{
		Domains:           domains,
		Seed:              seed,
		FracOneMX:         Fig2OneMX,
		FracMultiMX:       Fig2MultiMX,
		FracMisconfigured: Fig2Misconfigured,
		FracNolisting:     Fig2Nolisting,
		TransientFailure:  0.01,
		NoGlueFrac:        0.2,
	}
}

// DomainSpec is one synthetic domain's ground truth.
type DomainSpec struct {
	Name string
	// TrueCategory is what the domain actually is.
	TrueCategory nolist.Category
	// AlexaRank is the domain's popularity rank; 0 means unranked.
	AlexaRank int
	// PrimaryIP and SecondaryIP are the MX host addresses ("" when
	// absent); for misconfigured domains both are empty.
	PrimaryIP   string
	SecondaryIP string
}

// Population is a generated synthetic Internet.
type Population struct {
	cfg     Config
	Specs   []DomainSpec
	DNS     *dnsserver.Server
	Net     *netsim.Network
	rng     *rand.Rand
	downNow []string // primaries marked down for the current scan
}

// Generate builds the population: one DNS zone and zero or more SMTP
// listeners per domain according to its ground-truth category. Alexa
// ranks 1..1000 are assigned so that, as the paper found, one nolisting
// domain sits in the top 15, two in the top 500 and two more in the top
// 1000 (population permitting).
func Generate(cfg Config) (*Population, error) {
	if cfg.Domains <= 0 {
		return nil, fmt.Errorf("scan: population size %d", cfg.Domains)
	}
	if cfg.FracOneMX == 0 && cfg.FracMultiMX == 0 && cfg.FracMisconfigured == 0 && cfg.FracNolisting == 0 {
		cfg.FracOneMX, cfg.FracMultiMX = Fig2OneMX, Fig2MultiMX
		cfg.FracMisconfigured, cfg.FracNolisting = Fig2Misconfigured, Fig2Nolisting
	}
	p := &Population{
		cfg: cfg,
		DNS: dnsserver.New(),
		Net: netsim.New(),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}

	counts := apportion(cfg.Domains, []float64{
		cfg.FracOneMX, cfg.FracMultiMX, cfg.FracNolisting, cfg.FracMisconfigured,
	})
	cats := make([]nolist.Category, 0, cfg.Domains)
	for i, c := range []nolist.Category{nolist.CatOneMX, nolist.CatMultiMX, nolist.CatNolisting, nolist.CatMisconfigured} {
		for k := 0; k < counts[i]; k++ {
			cats = append(cats, c)
		}
	}
	p.rng.Shuffle(len(cats), func(i, j int) { cats[i], cats[j] = cats[j], cats[i] })

	for i, cat := range cats {
		name := fmt.Sprintf("d%06d.example", i)
		spec, err := p.buildDomain(i, name, cat)
		if err != nil {
			return nil, err
		}
		p.Specs = append(p.Specs, spec)
	}
	p.assignAlexaRanks()
	return p, nil
}

// apportion splits n into parts proportional to fracs (largest remainder).
func apportion(n int, fracs []float64) []int {
	total := 0.0
	for _, f := range fracs {
		total += f
	}
	counts := make([]int, len(fracs))
	rem := make([]float64, len(fracs))
	used := 0
	for i, f := range fracs {
		exact := float64(n) * f / total
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		used += counts[i]
	}
	for used < n {
		best := 0
		for i := 1; i < len(rem); i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		used++
	}
	return counts
}

// ip allocates a unique address for (domain index, host slot).
func ip(index, slot int) string {
	n := index*2 + slot
	return fmt.Sprintf("10.%d.%d.%d", (n>>16)&255, (n>>8)&255, n&255)
}

func (p *Population) buildDomain(index int, name string, cat nolist.Category) (DomainSpec, error) {
	spec := DomainSpec{Name: name, TrueCategory: cat}
	zone := dnsserver.NewZone(name)
	if p.rng.Float64() < p.cfg.NoGlueFrac {
		zone.SetNoGlue(true)
	}
	addHost := func(host, addr string, listening bool) error {
		if err := zone.Add(dnsmsg.RR{Name: host, Type: dnsmsg.TypeA, TTL: 300, Data: dnsmsg.MustIPv4(addr)}); err != nil {
			return err
		}
		if listening {
			if _, err := p.Net.Listen(addr + ":25"); err != nil {
				return err
			}
		}
		return nil
	}
	addMX := func(pref uint16, host string) error {
		return zone.Add(dnsmsg.RR{Name: name, Type: dnsmsg.TypeMX, TTL: 300,
			Data: dnsmsg.MX{Preference: pref, Host: host}})
	}

	var err error
	switch cat {
	case nolist.CatOneMX:
		spec.PrimaryIP = ip(index, 0)
		if err = addMX(10, "mx."+name); err == nil {
			err = addHost("mx."+name, spec.PrimaryIP, true)
		}
	case nolist.CatMultiMX:
		spec.PrimaryIP, spec.SecondaryIP = ip(index, 0), ip(index, 1)
		if err = addMX(0, "mx1."+name); err == nil {
			err = addMX(15, "mx2."+name)
		}
		if err == nil {
			err = addHost("mx1."+name, spec.PrimaryIP, true)
		}
		if err == nil {
			err = addHost("mx2."+name, spec.SecondaryIP, true)
		}
	case nolist.CatNolisting:
		spec.PrimaryIP, spec.SecondaryIP = ip(index, 0), ip(index, 1)
		if err = addMX(0, "mx1."+name); err == nil {
			err = addMX(15, "mx2."+name)
		}
		if err == nil {
			err = addHost("mx1."+name, spec.PrimaryIP, false) // the dead primary
		}
		if err == nil {
			err = addHost("mx2."+name, spec.SecondaryIP, true)
		}
	case nolist.CatMisconfigured:
		// An MX record whose target has no A record anywhere.
		err = addMX(10, "ghost."+name)
	}
	if err != nil {
		return spec, fmt.Errorf("scan: building %s: %w", name, err)
	}
	p.DNS.AddZone(zone)
	return spec, nil
}

// assignAlexaRanks plants the paper's finding in the ground truth: of the
// top-1000 ranks, nolisting domains get rank 10 (top-15), 200 and 400
// (top-500), 600 and 800 (top-1000); the rest of the top ranks go to
// ordinary domains.
func (p *Population) assignAlexaRanks() {
	nolistRanks := []int{10, 200, 400, 600, 800}
	var nolisting, others []int
	for i := range p.Specs {
		if p.Specs[i].TrueCategory == nolist.CatNolisting {
			nolisting = append(nolisting, i)
		} else {
			others = append(others, i)
		}
	}
	used := make(map[int]bool)
	for k, idx := range nolisting {
		if k >= len(nolistRanks) {
			break
		}
		p.Specs[idx].AlexaRank = nolistRanks[k]
		used[nolistRanks[k]] = true
	}
	rank := 1
	for _, idx := range others {
		for used[rank] {
			rank++
		}
		if rank > 1000 {
			break
		}
		p.Specs[idx].AlexaRank = rank
		used[rank] = true
	}
}

// BeginScan applies this scan's transient failures: every healthy
// listening primary goes down with probability TransientFailure.
// EndScan reverses them.
func (p *Population) BeginScan() {
	p.downNow = nil
	for _, s := range p.Specs {
		healthy := s.TrueCategory == nolist.CatOneMX || s.TrueCategory == nolist.CatMultiMX
		if !healthy || s.PrimaryIP == "" {
			continue
		}
		if p.rng.Float64() < p.cfg.TransientFailure {
			p.Net.SetHostDown(s.PrimaryIP, true)
			p.downNow = append(p.downNow, s.PrimaryIP)
		}
	}
}

// EndScan brings transiently-down hosts back up.
func (p *Population) EndScan() {
	for _, ip := range p.downNow {
		p.Net.SetHostDown(ip, false)
	}
	p.downNow = nil
}

// Scanner runs the three-step observation pipeline over a population.
type Scanner struct {
	resolver *dnsresolver.Resolver
	net      *netsim.Network
	dataset  *SMTPDataset
	// ReResolutions counts glue-less MX targets that needed a second
	// lookup (the paper's parallel-scanner workload).
	ReResolutions int
}

// NewScanner builds a scanner over the population's DNS and network.
func NewScanner(p *Population, clock simtime.Clock) *Scanner {
	r := dnsresolver.New(dnsresolver.Direct(p.DNS), clock)
	r.DisableCache = true // scans must see live state
	return &Scanner{resolver: r, net: p.Net}
}

// ScanDomain produces one domain's observation: its MX records, whether
// each target resolved, and whether each resolved address answers on
// port 25 (the banner-grab lookup).
func (s *Scanner) ScanDomain(name string) nolist.DomainObservation {
	obs := nolist.DomainObservation{Domain: name}
	resp, err := s.resolver.Query(name, dnsmsg.TypeMX)
	if err != nil {
		return obs // unresolvable: no MX observations at all
	}
	glue := make(map[string]bool)
	for _, rr := range resp.Additional {
		if _, ok := rr.Data.(dnsmsg.A); ok {
			glue[rr.Name] = true
		}
	}
	for _, rr := range resp.Answers {
		mx, ok := rr.Data.(dnsmsg.MX)
		if !ok {
			continue
		}
		mo := nolist.MXObservation{Host: mx.Host, Pref: mx.Preference}
		var addrs []string
		if glue[mx.Host] {
			for _, arr := range resp.Additional {
				if arr.Name == mx.Host {
					if a, ok := arr.Data.(dnsmsg.A); ok {
						addrs = append(addrs, a.String())
					}
				}
			}
		} else {
			// The reply named the exchanger but carried no address:
			// re-resolve, as the paper's parallel scanner did.
			s.ReResolutions++
			if got, err := s.resolver.LookupA(mx.Host); err == nil {
				addrs = got
			}
		}
		if len(addrs) > 0 {
			mo.Resolved = true
			for _, a := range addrs {
				if s.listening(a) {
					mo.Listening = true
					break
				}
			}
		}
		obs.MXs = append(obs.MXs, mo)
	}
	return obs
}

// ScanAll observes every domain in the population under the current
// failure state.
func (s *Scanner) ScanAll(p *Population) []nolist.DomainObservation {
	out := make([]nolist.DomainObservation, len(p.Specs))
	for i, spec := range p.Specs {
		out[i] = s.ScanDomain(spec.Name)
	}
	return out
}

// scanAllParallel observes every domain using a bounded worker pool.
// Each worker gets its own Scanner (own resolver, no shared cache locks)
// over the same population; workers claim domains from an atomic cursor.
// The output is deterministic and identical to ScanAll: observation i
// depends only on domain i and the population's (fixed) failure state,
// results land at their domain's index, and the per-worker ReResolutions
// counts are summed into s — an order-independent total.
func (s *Scanner) scanAllParallel(p *Population, clock simtime.Clock, workers int) []nolist.DomainObservation {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.Specs) {
		workers = len(p.Specs)
	}
	if workers <= 1 {
		return s.ScanAll(p)
	}
	out := make([]nolist.DomainObservation, len(p.Specs))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
		reRe atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := NewScanner(p, clock)
			ws.dataset = s.dataset
			for {
				i := int(next.Add(1)) - 1
				if i >= len(p.Specs) {
					break
				}
				out[i] = ws.ScanDomain(p.Specs[i].Name)
			}
			reRe.Add(int64(ws.ReResolutions))
		}()
	}
	wg.Wait()
	s.ReResolutions += int(reRe.Load())
	return out
}

// StudyResult is the Figure 2 reproduction output.
type StudyResult struct {
	// Counts and Fractions per final category.
	Counts    map[nolist.Category]int
	Fractions map[nolist.Category]float64
	// SingleScanNolisting counts nolisting candidates in scan 1 alone —
	// the overestimate the two-scan rule corrects.
	SingleScanNolisting int
	// ChangeBetweenScans is the fraction of domains whose single-scan
	// class differed between the two scans (the paper: 0.01% for
	// nolisting candidates).
	ChangeBetweenScans float64
	// Misclassified counts domains whose final category differs from
	// ground truth (measurable only because the population is
	// synthetic).
	Misclassified int
	// NolistingInTop15, 500 and 1000: the Alexa cross-check.
	NolistingInTop15   int
	NolistingInTop500  int
	NolistingInTop1000 int
	// ReResolutions is the parallel-scanner workload.
	ReResolutions int
	// EmailServers and ResolvedIPs summarize dataset size.
	EmailServers int
	ResolvedIPs  int
}

// RunStudy executes the full Section IV-A methodology on the population:
// scan, wait `gap` (the paper waited two months), scan again, classify
// with the two-scan rule, cross-check Alexa. Domains are scanned by a
// worker pool sized to GOMAXPROCS; see RunStudyWorkers for the
// determinism guarantee.
func RunStudy(p *Population, clock *simtime.Sim, gap time.Duration) *StudyResult {
	return RunStudyWorkers(p, clock, gap, 0)
}

// RunStudyWorkers is RunStudy with an explicit scan-worker count:
// 0 means GOMAXPROCS, 1 forces the serial scanner. Any worker count
// produces byte-identical results — each domain's observation depends
// only on that domain and the scan's fixed failure state, so only
// wall-clock time varies.
func RunStudyWorkers(p *Population, clock *simtime.Sim, gap time.Duration, workers int) *StudyResult {
	scanner := NewScanner(p, clock)

	// Each scan round mirrors the paper's methodology: collect the SMTP
	// banner-grab dataset first (concurrently, zmap-style), then join
	// the DNS observations against that snapshot.
	const grabWorkers = 16
	p.BeginScan()
	scanner.UseDataset(BannerGrab(p, grabWorkers))
	first := scanner.scanAllParallel(p, clock, workers)
	p.EndScan()

	clock.Advance(gap)

	p.BeginScan()
	scanner.UseDataset(BannerGrab(p, grabWorkers))
	second := scanner.scanAllParallel(p, clock, workers)
	p.EndScan()

	res := &StudyResult{
		Counts:        make(map[nolist.Category]int),
		Fractions:     make(map[nolist.Category]float64),
		ReResolutions: scanner.ReResolutions,
	}
	changed := 0
	for i := range p.Specs {
		c1 := nolist.ClassifyDomain(first[i])
		c2 := nolist.ClassifyDomain(second[i])
		if c1 == nolist.CatNolisting {
			res.SingleScanNolisting++
		}
		if c1 != c2 {
			changed++
		}
		final := nolist.FinalCategory(first[i], second[i])
		res.Counts[final]++
		if final != p.Specs[i].TrueCategory {
			res.Misclassified++
		}
		if final == nolist.CatNolisting {
			switch rank := p.Specs[i].AlexaRank; {
			case rank == 0:
			case rank <= 15:
				res.NolistingInTop15++
				res.NolistingInTop500++
				res.NolistingInTop1000++
			case rank <= 500:
				res.NolistingInTop500++
				res.NolistingInTop1000++
			case rank <= 1000:
				res.NolistingInTop1000++
			}
		}
		for _, mx := range first[i].MXs {
			res.EmailServers++
			if mx.Resolved {
				res.ResolvedIPs++
			}
		}
	}
	n := len(p.Specs)
	if n > 0 {
		res.ChangeBetweenScans = float64(changed) / float64(n)
		for c, k := range res.Counts {
			res.Fractions[c] = float64(k) / float64(n)
		}
	}
	return res
}

// RenderPie prints the Figure 2 proportions as text.
func (r *StudyResult) RenderPie() string {
	order := []nolist.Category{nolist.CatOneMX, nolist.CatMultiMX, nolist.CatMisconfigured, nolist.CatNolisting}
	labels := map[nolist.Category]string{
		nolist.CatOneMX:         "One MX record",
		nolist.CatMultiMX:       "Not using nolisting",
		nolist.CatMisconfigured: "DNS misconf.",
		nolist.CatNolisting:     "Using nolisting",
	}
	out := "Nolisting mail server statistics (Figure 2)\n"
	for _, c := range order {
		out += fmt.Sprintf("  %-22s %7.2f%%  (%d domains)\n", labels[c], 100*r.Fractions[c], r.Counts[c])
	}
	return out
}
