// Deterministic per-index population derivation. Everything the scan
// pipeline needs to know about domain i — its name, ground-truth
// category, MX topology, glue behaviour, per-round transient failures
// and Alexa rank — is a pure function of (Config, i). The materialized
// path (Generate) and the disk-backed streaming path (RunStream) both
// consume this one derivation, which is what makes their outputs
// byte-identical: neither path owns any population state the other
// lacks, so a 135 M-domain study can run without ever materializing a
// Specs slice, a zone set or a target table.
//
// Categories are assigned through a seeded format-preserving
// permutation (a four-round Feistel network cycle-walked onto [0, n)):
// position perm(i) is compared against the exact largest-remainder
// apportionment of the mixture, so the population hits the Figure 2
// fractions exactly — like the old shuffle did — while any single
// index's category is computable in O(1) with no retained state.
package scan

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/nolist"
)

// maxMXHosts is the widest derived MX topology (the two-tier BLBFO
// setup). The address allocator reserves this many host slots per
// domain index.
const maxMXHosts = 4

// genVersion is baked into the checkpoint config hash: any change to
// the derivation below invalidates on-disk verdict files, which must
// refuse to resume rather than silently join incompatible rounds.
const genVersion = 1

// mxShape is a multi-MX domain's topology, following Ruohonen's BLBFO
// study (PAPERS.md): real multi-MX deployments mix plain fail-over
// pairs with shared-priority load balancing and combined
// balancing+backup tiers.
type mxShape uint8

const (
	// shapePair: the classic primary/backup fail-over pair (pref 0/15).
	shapePair mxShape = iota
	// shapeBalanced: three exchangers sharing one preference — DNS
	// round-robin load balancing, no fail-over tier.
	shapeBalanced
	// shapeTiered: a balanced primary tier (two hosts, pref 0) backed
	// by a balanced backup tier (two hosts, pref 15).
	shapeTiered
)

// derivedDomain is domain i's ground truth, derived on demand.
type derivedDomain struct {
	Cat    nolist.Category
	NoGlue bool
	// Hosts is the number of MX exchangers with A records (0 for
	// DNS-misconfigured domains, whose single MX target resolves to
	// nothing). Pref and Live describe slots [0, Hosts).
	Hosts int
	Pref  [maxMXHosts]uint16
	Live  [maxMXHosts]bool
}

// domainGen derives domains from (Config, index). It is immutable
// after construction and safe for concurrent use by any number of
// shard workers.
type domainGen struct {
	cfg Config
	n   int

	// cum are cumulative category counts over permuted positions, in
	// the fixed order one-MX, multi-MX, nolisting, misconfigured
	// (exact largest-remainder apportionment of the mixture).
	cum [4]int

	// Feistel parameters: a balanced network over 2*half bits,
	// cycle-walked onto [0, n).
	half uint
	mask uint64
	keys [4]uint64

	// Independent hash streams for the iid draws.
	glueSeed      uint64
	shapeSeed     uint64
	transientSeed uint64
}

// newDomainGen validates cfg (applying the Figure 2 mixture when all
// four fractions are zero) and builds the derivation.
func newDomainGen(cfg Config) (*domainGen, error) {
	if cfg.Domains <= 0 {
		return nil, fmt.Errorf("scan: population size %d", cfg.Domains)
	}
	if cfg.FracOneMX == 0 && cfg.FracMultiMX == 0 && cfg.FracMisconfigured == 0 && cfg.FracNolisting == 0 {
		cfg.FracOneMX, cfg.FracMultiMX = Fig2OneMX, Fig2MultiMX
		cfg.FracMisconfigured, cfg.FracNolisting = Fig2Misconfigured, Fig2Nolisting
	}
	g := &domainGen{cfg: cfg, n: cfg.Domains}
	counts := apportion(cfg.Domains, []float64{
		cfg.FracOneMX, cfg.FracMultiMX, cfg.FracNolisting, cfg.FracMisconfigured,
	})
	sum := 0
	for i, c := range counts {
		sum += c
		g.cum[i] = sum
	}

	g.half = 1
	for g.n > 1 && uint64(1)<<(2*g.half) < uint64(g.n) {
		g.half++
	}
	g.mask = uint64(1)<<g.half - 1
	seed := uint64(cfg.Seed)
	for i := range g.keys {
		g.keys[i] = mix64(seed + uint64(i+1)*0x9e3779b97f4a7c15)
	}
	g.glueSeed = mix64(seed ^ 0x67e6c7459c6e49a1)
	g.shapeSeed = mix64(seed ^ 0xd1342543de82ef95)
	g.transientSeed = mix64(seed ^ 0xaf251af3b0f025b5)
	return g, nil
}

// mix64 is the splitmix64 finalizer — the derivation's hash primitive.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 returns an iid uniform draw in [0, 1) for stream position i.
func u01(streamSeed, i uint64) float64 {
	return float64(mix64(streamSeed+i*0xbf58476d1ce4e5b9)>>11) / (1 << 53)
}

// perm is a seeded bijection on [0, n): a balanced four-round Feistel
// network over 2*half bits, cycle-walked until the ciphertext lands
// inside the domain (expected < 4 rounds of walking since the cipher
// space is < 4n).
func (g *domainGen) perm(i int) int {
	if g.n <= 1 {
		return 0
	}
	x := uint64(i)
	for {
		l, r := x>>g.half, x&g.mask
		for round := 0; round < 4; round++ {
			l, r = r, l^(mix64(r^g.keys[round])&g.mask)
		}
		x = l<<g.half | r
		if x < uint64(g.n) {
			return int(x)
		}
	}
}

// category returns domain i's ground-truth category.
func (g *domainGen) category(i int) nolist.Category {
	pos := g.perm(i)
	switch {
	case pos < g.cum[0]:
		return nolist.CatOneMX
	case pos < g.cum[1]:
		return nolist.CatMultiMX
	case pos < g.cum[2]:
		return nolist.CatNolisting
	default:
		return nolist.CatMisconfigured
	}
}

// noGlue reports whether domain i's MX answers omit glue, forcing the
// scanner's re-resolution step.
func (g *domainGen) noGlue(i int) bool {
	return u01(g.glueSeed, uint64(i)) < g.cfg.NoGlueFrac
}

// shape picks a multi-MX domain's BLBFO topology.
func (g *domainGen) shape(i int) mxShape {
	v := u01(g.shapeSeed, uint64(i))
	switch {
	case v < g.cfg.MXBalancedFrac:
		return shapeBalanced
	case v < g.cfg.MXBalancedFrac+g.cfg.MXTieredFrac:
		return shapeTiered
	default:
		return shapePair
	}
}

// transientDown reports whether domain i's primary exchanger happens to
// be down during scan round r — the per-round noise the two-scan rule
// exists to cancel. Only healthy (one-MX or multi-MX) primaries are
// eligible; the caller checks eligibility.
func (g *domainGen) transientDown(round, i int) bool {
	return u01(g.transientSeed+uint64(round)*0xda942042e4dd58b5, uint64(i)) < g.cfg.TransientFailure
}

// domain derives domain i's full ground truth.
func (g *domainGen) domain(i int) derivedDomain {
	d := derivedDomain{Cat: g.category(i), NoGlue: g.noGlue(i)}
	switch d.Cat {
	case nolist.CatOneMX:
		d.Hosts = 1
		d.Pref[0] = 10
		d.Live[0] = true
	case nolist.CatMultiMX:
		switch g.shape(i) {
		case shapeBalanced:
			d.Hosts = 3
			for s := 0; s < 3; s++ {
				d.Pref[s] = 10
				d.Live[s] = true
			}
		case shapeTiered:
			d.Hosts = 4
			for s := 0; s < 4; s++ {
				if s < 2 {
					d.Pref[s] = 0
				} else {
					d.Pref[s] = 15
				}
				d.Live[s] = true
			}
		default:
			d.Hosts = 2
			d.Pref[0], d.Pref[1] = 0, 15
			d.Live[0], d.Live[1] = true, true
		}
	case nolist.CatNolisting:
		d.Hosts = 2
		d.Pref[0], d.Pref[1] = 0, 15
		d.Live[0], d.Live[1] = false, true // the dead primary
	case nolist.CatMisconfigured:
		// A single MX record whose target has no A record anywhere.
	}
	return d
}

// hostDown reports whether the host at (index, slot) is transiently
// down during round r: only slot 0 of healthy domains ever is.
func (g *domainGen) hostDown(round, index, slot int) bool {
	if slot != 0 || index < 0 || index >= g.n {
		return false
	}
	if c := g.category(index); c != nolist.CatOneMX && c != nolist.CatMultiMX {
		return false
	}
	return g.transientDown(round, index)
}

// alexaRanks reproduces the rank planting of the paper's cross-check
// over the derived categories: the first five nolisting domains (by
// index) get ranks 10, 200, 400, 600 and 800; the first non-nolisting
// domains take the remaining ranks 1..1000 in index order. Only a
// ~1000-entry prefix of the population can carry a rank, so the table
// is O(1) in the population size.
func (g *domainGen) alexaRanks() map[int]int {
	nolistRanks := [5]int{10, 200, 400, 600, 800}
	totalNolisting := g.cum[2] - g.cum[1]
	plantCount := len(nolistRanks)
	if totalNolisting < plantCount {
		plantCount = totalNolisting
	}
	planted := make(map[int]bool, plantCount)
	for k := 0; k < plantCount; k++ {
		planted[nolistRanks[k]] = true
	}

	ranks := make(map[int]int, 1000+plantCount)
	plantedN, nextRank := 0, 1
	for i := 0; i < g.n; i++ {
		if plantedN == plantCount && nextRank > 1000 {
			break
		}
		if g.category(i) == nolist.CatNolisting {
			if plantedN < plantCount {
				ranks[i] = nolistRanks[plantedN]
				plantedN++
			}
			continue
		}
		if nextRank > 1000 {
			continue
		}
		for planted[nextRank] {
			nextRank++
		}
		if nextRank > 1000 {
			continue
		}
		ranks[i] = nextRank
		nextRank++
	}
	return ranks
}

// configHash fingerprints everything that determines the derived
// population and on-disk verdict compatibility. A checkpoint written
// under one hash refuses to resume under another.
func (g *domainGen) configHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(genVersion)
	put(uint64(g.cfg.Domains))
	put(uint64(g.cfg.Seed))
	for _, f := range []float64{
		g.cfg.FracOneMX, g.cfg.FracMultiMX, g.cfg.FracMisconfigured, g.cfg.FracNolisting,
		g.cfg.TransientFailure, g.cfg.NoGlueFrac,
		g.cfg.MXBalancedFrac, g.cfg.MXTieredFrac,
	} {
		put(math.Float64bits(f))
	}
	return h.Sum64()
}
