package scan

import (
	"testing"

	"repro/internal/nolist"
)

// TestPermBijection verifies the category permutation really is a
// bijection on [0, n) for awkward sizes (powers of two, one-off sizes,
// tiny populations).
func TestPermBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 64, 1000, 4096, 4097} {
		for _, seed := range []int64{0, 1, 42} {
			g, err := newDomainGen(DefaultConfig(n, seed))
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				p := g.perm(i)
				if p < 0 || p >= n {
					t.Fatalf("n=%d seed=%d: perm(%d)=%d out of range", n, seed, i, p)
				}
				if seen[p] {
					t.Fatalf("n=%d seed=%d: perm(%d)=%d already produced", n, seed, i, p)
				}
				seen[p] = true
			}
		}
	}
}

// TestCategoryCountsExact verifies the derived categories hit the
// largest-remainder apportionment of the mixture exactly — the
// property that lets the streaming generator reproduce the old
// shuffle's precision without retaining anything.
func TestCategoryCountsExact(t *testing.T) {
	cfg := DefaultConfig(10000, 3)
	g, err := newDomainGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := apportion(cfg.Domains, []float64{
		cfg.FracOneMX, cfg.FracMultiMX, cfg.FracNolisting, cfg.FracMisconfigured,
	})
	got := map[nolist.Category]int{}
	for i := 0; i < cfg.Domains; i++ {
		got[g.category(i)]++
	}
	if got[nolist.CatOneMX] != want[0] || got[nolist.CatMultiMX] != want[1] ||
		got[nolist.CatNolisting] != want[2] || got[nolist.CatMisconfigured] != want[3] {
		t.Fatalf("category counts %v, want %v", got, want)
	}
}

// TestDerivedTopologies checks each category's derived MX layout and
// that the BLBFO mixture produces all three multi-MX shapes.
func TestDerivedTopologies(t *testing.T) {
	g, err := newDomainGen(DefaultConfig(5000, 9))
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[int]int{}
	for i := 0; i < g.n; i++ {
		d := g.domain(i)
		switch d.Cat {
		case nolist.CatOneMX:
			if d.Hosts != 1 || !d.Live[0] {
				t.Fatalf("domain %d: one-MX layout %+v", i, d)
			}
		case nolist.CatMultiMX:
			shapes[d.Hosts]++
			for s := 0; s < d.Hosts; s++ {
				if !d.Live[s] {
					t.Fatalf("domain %d: multi-MX slot %d not live", i, s)
				}
			}
		case nolist.CatNolisting:
			if d.Hosts != 2 || d.Live[0] || !d.Live[1] {
				t.Fatalf("domain %d: nolisting layout %+v", i, d)
			}
		case nolist.CatMisconfigured:
			if d.Hosts != 0 {
				t.Fatalf("domain %d: misconfigured has hosts %+v", i, d)
			}
		}
	}
	// Pair (2), balanced (3) and tiered (4) should all occur at 5000
	// domains with the default 22%/9% mixture.
	for _, hosts := range []int{2, 3, 4} {
		if shapes[hosts] == 0 {
			t.Fatalf("no multi-MX domain with %d hosts (shapes: %v)", hosts, shapes)
		}
	}
}

// TestHostDownEligibility: only slot 0 of healthy domains is ever
// transiently down, and downness varies by round.
func TestHostDownEligibility(t *testing.T) {
	cfg := DefaultConfig(4000, 2)
	cfg.TransientFailure = 0.5 // make downness common
	g, err := newDomainGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	downs, diff := 0, 0
	for i := 0; i < g.n; i++ {
		cat := g.category(i)
		healthy := cat == nolist.CatOneMX || cat == nolist.CatMultiMX
		for slot := 0; slot < maxMXHosts; slot++ {
			if g.hostDown(1, i, slot) && (slot != 0 || !healthy) {
				t.Fatalf("domain %d cat %v slot %d reported down", i, cat, slot)
			}
		}
		if g.hostDown(1, i, 0) {
			downs++
		}
		if g.hostDown(1, i, 0) != g.hostDown(2, i, 0) {
			diff++
		}
	}
	if downs == 0 {
		t.Fatal("no transient failures at 50% probability")
	}
	if diff == 0 {
		t.Fatal("rounds 1 and 2 drew identical failures")
	}
}

// TestConfigHashSensitivity: the checkpoint hash must change with any
// parameter that changes the derived population.
func TestConfigHashSensitivity(t *testing.T) {
	base := DefaultConfig(1000, 1)
	hash := func(cfg Config) uint64 {
		g, err := newDomainGen(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g.configHash()
	}
	h0 := hash(base)
	mutations := []func(*Config){
		func(c *Config) { c.Domains = 1001 },
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.TransientFailure = 0.02 },
		func(c *Config) { c.NoGlueFrac = 0.3 },
		func(c *Config) { c.MXBalancedFrac = 0.5 },
		func(c *Config) { c.FracOneMX, c.FracMultiMX = c.FracMultiMX, c.FracOneMX },
	}
	for i, mut := range mutations {
		cfg := base
		mut(&cfg)
		if hash(cfg) == h0 {
			t.Errorf("mutation %d did not change the config hash", i)
		}
	}
	if hash(base) != h0 {
		t.Error("config hash is not deterministic")
	}
}

// TestAlexaRanksDerived checks the derived rank table plants the
// paper's finding exactly as the materialized path assigns it.
func TestAlexaRanksDerived(t *testing.T) {
	pop, err := Generate(DefaultConfig(3000, 5))
	if err != nil {
		t.Fatal(err)
	}
	g := pop.gen
	ranks := g.alexaRanks()
	for i, spec := range pop.Specs {
		if spec.AlexaRank != ranks[i] {
			t.Fatalf("domain %d: spec rank %d, derived rank %d", i, spec.AlexaRank, ranks[i])
		}
	}
	planted := map[int]bool{}
	for i, rank := range ranks {
		if g.category(i) == nolist.CatNolisting {
			planted[rank] = true
		}
	}
	for _, want := range []int{10, 200, 400, 600, 800} {
		if !planted[want] {
			t.Errorf("no nolisting domain at rank %d (planted: %v)", want, planted)
		}
	}
}
