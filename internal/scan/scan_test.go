package scan

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/nolist"
	"repro/internal/simtime"
)

const testPopulation = 3000

func generate(t *testing.T, cfg Config) *Population {
	t.Helper()
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateMixtureMatchesFigure2(t *testing.T) {
	p := generate(t, DefaultConfig(testPopulation, 1))
	counts := map[nolist.Category]int{}
	for _, s := range p.Specs {
		counts[s.TrueCategory]++
	}
	n := float64(len(p.Specs))
	if len(p.Specs) != testPopulation {
		t.Fatalf("population = %d", len(p.Specs))
	}
	for cat, frac := range map[nolist.Category]float64{
		nolist.CatOneMX:         Fig2OneMX,
		nolist.CatMultiMX:       Fig2MultiMX,
		nolist.CatMisconfigured: Fig2Misconfigured,
		nolist.CatNolisting:     Fig2Nolisting,
	} {
		got := float64(counts[cat]) / n
		if math.Abs(got-frac) > 0.002 {
			t.Errorf("%v: ground truth fraction %.4f, want ≈%.4f", cat, got, frac)
		}
	}
}

func TestGenerateRejectsEmptyPopulation(t *testing.T) {
	if _, err := Generate(Config{Domains: 0}); err == nil {
		t.Fatal("Generate accepted zero domains")
	}
}

func TestNolistingDomainsHaveDeadPrimary(t *testing.T) {
	p := generate(t, DefaultConfig(500, 2))
	for _, s := range p.Specs {
		switch s.TrueCategory {
		case nolist.CatNolisting:
			if p.Net.Listening(s.PrimaryIP + ":25") {
				t.Fatalf("%s: nolisted primary %s is listening", s.Name, s.PrimaryIP)
			}
			if !p.Net.Listening(s.SecondaryIP + ":25") {
				t.Fatalf("%s: nolisted secondary %s not listening", s.Name, s.SecondaryIP)
			}
		case nolist.CatOneMX:
			if !p.Net.Listening(s.PrimaryIP + ":25") {
				t.Fatalf("%s: one-MX server %s not listening", s.Name, s.PrimaryIP)
			}
		}
	}
}

func TestScanDomainObservations(t *testing.T) {
	p := generate(t, DefaultConfig(300, 3))
	scanner := NewScanner(p, simtime.NewSim(simtime.Epoch))
	for _, s := range p.Specs[:100] {
		obs := scanner.ScanDomain(s.Name)
		got := nolist.ClassifyDomain(obs)
		if got != s.TrueCategory {
			t.Errorf("%s: single-scan class %v, truth %v (obs %+v)", s.Name, got, s.TrueCategory, obs.MXs)
		}
	}
}

func TestScannerReResolvesGluelessAnswers(t *testing.T) {
	cfg := DefaultConfig(300, 4)
	cfg.NoGlueFrac = 1.0 // every answer needs the parallel scanner
	cfg.TransientFailure = 0
	p := generate(t, cfg)
	scanner := NewScanner(p, simtime.NewSim(simtime.Epoch))
	scanner.ScanAll(p)
	if scanner.ReResolutions == 0 {
		t.Fatal("no re-resolutions despite glue-less population")
	}
}

func TestRunStudyReproducesFigure2(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := generate(t, DefaultConfig(testPopulation, 5))
	res := RunStudy(p, clock, 56*24*time.Hour) // Feb 28 → Apr 25

	for cat, want := range map[nolist.Category]float64{
		nolist.CatOneMX:         Fig2OneMX,
		nolist.CatMultiMX:       Fig2MultiMX,
		nolist.CatMisconfigured: Fig2Misconfigured,
		nolist.CatNolisting:     Fig2Nolisting,
	} {
		got := res.Fractions[cat]
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v: measured %.4f, want ≈%.4f", cat, got, want)
		}
	}
	// With 1% transient failures the classifier should still be almost
	// perfect thanks to the two-scan rule.
	if frac := float64(res.Misclassified) / float64(testPopulation); frac > 0.005 {
		t.Errorf("misclassified %.4f of domains", frac)
	}
}

func TestTwoScanRuleFiltersTransients(t *testing.T) {
	cfg := DefaultConfig(2000, 6)
	cfg.TransientFailure = 0.05 // noisy scans
	clock := simtime.NewSim(simtime.Epoch)
	p := generate(t, cfg)
	res := RunStudy(p, clock, 56*24*time.Hour)

	trueNolisting := 0
	for _, s := range p.Specs {
		if s.TrueCategory == nolist.CatNolisting {
			trueNolisting++
		}
	}
	// A single scan overcounts: transiently-down primaries of multi-MX
	// domains look like nolisting. The two-scan rule removes almost all
	// of them; what remains is the p² residue of primaries down in BOTH
	// scans — which the paper itself concedes is "in practice
	// equivalent to nolisting".
	if res.SingleScanNolisting <= trueNolisting {
		t.Fatalf("single scan found %d candidates, expected more than the %d true ones",
			res.SingleScanNolisting, trueNolisting)
	}
	got := res.Counts[nolist.CatNolisting]
	if got < trueNolisting {
		t.Fatalf("two-scan count = %d, below the %d true nolisting domains", got, trueNolisting)
	}
	if got >= res.SingleScanNolisting {
		t.Fatalf("two-scan count %d did not improve on single-scan %d", got, res.SingleScanNolisting)
	}
	// The residual false positives are bounded by ≈ p²·multiMX ≈ 2.3
	// expected here; allow generous slack.
	if got-trueNolisting > 10 {
		t.Fatalf("two-scan rule left %d false positives", got-trueNolisting)
	}
	if res.ChangeBetweenScans <= 0 {
		t.Fatal("expected some single-scan churn with 5% transient failures")
	}
}

func TestNoTransientsPerfectClassification(t *testing.T) {
	cfg := DefaultConfig(1000, 7)
	cfg.TransientFailure = 0
	clock := simtime.NewSim(simtime.Epoch)
	p := generate(t, cfg)
	res := RunStudy(p, clock, time.Hour)
	if res.Misclassified != 0 {
		t.Fatalf("misclassified = %d with a noiseless population", res.Misclassified)
	}
	if res.ChangeBetweenScans != 0 {
		t.Fatalf("scan churn = %v with no transient failures", res.ChangeBetweenScans)
	}
}

func TestAlexaCrossCheck(t *testing.T) {
	// With a population big enough for ≥5 nolisting domains, the
	// planted ranks reproduce the paper's "one in the top-15, two in
	// the top-500, two more in the top-1000".
	clock := simtime.NewSim(simtime.Epoch)
	cfg := DefaultConfig(3000, 8)
	cfg.TransientFailure = 0
	p := generate(t, cfg)
	res := RunStudy(p, clock, time.Hour)
	if res.NolistingInTop15 != 1 {
		t.Errorf("top-15 nolisting = %d, want 1", res.NolistingInTop15)
	}
	if res.NolistingInTop500 != 3 {
		t.Errorf("top-500 nolisting = %d, want 3 (1 + 2)", res.NolistingInTop500)
	}
	if res.NolistingInTop1000 != 5 {
		t.Errorf("top-1000 nolisting = %d, want 5 (1 + 2 + 2)", res.NolistingInTop1000)
	}
}

func TestRenderPie(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	p := generate(t, DefaultConfig(500, 9))
	res := RunStudy(p, clock, time.Hour)
	out := res.RenderPie()
	for _, want := range []string{"One MX record", "Using nolisting", "DNS misconf.", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pie rendering missing %q:\n%s", want, out)
		}
	}
}

func TestApportionExact(t *testing.T) {
	counts := apportion(100, []float64{0.5, 0.25, 0.25})
	if counts[0] != 50 || counts[1] != 25 || counts[2] != 25 {
		t.Fatalf("counts = %v", counts)
	}
	total := 0
	for _, c := range apportion(997, []float64{0.4773, 0.4597, 0.0052, 0.0578}) {
		total += c
	}
	if total != 997 {
		t.Fatalf("apportion total = %d", total)
	}
}

func TestIPAllocatorUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		for slot := 0; slot < 2; slot++ {
			a := ip(i, slot)
			if seen[a] {
				t.Fatalf("duplicate IP %s", a)
			}
			seen[a] = true
		}
	}
}

func TestDatasetSizeCounters(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	cfg := DefaultConfig(200, 10)
	p := generate(t, cfg)
	res := RunStudy(p, clock, time.Hour)
	if res.EmailServers == 0 || res.ResolvedIPs == 0 {
		t.Fatalf("dataset counters empty: %+v", res)
	}
	if res.ResolvedIPs > res.EmailServers {
		t.Fatalf("resolved %d > servers %d", res.ResolvedIPs, res.EmailServers)
	}
}
