package smtpserver

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestMetricsMirrorSession drives one full SMTP session and checks the
// exported counters: command verbs, reply classes, and the Stats mirrors.
func TestMetricsMirrorSession(t *testing.T) {
	env := startServer(t, Config{})
	reg := metrics.NewRegistry()
	env.server.Register(reg)

	env.script(t, "10.0.0.9", []string{
		"EHLO client.example",
		"MAIL FROM:<a@b.example>",
		"RCPT TO:<u@foo.net>",
		"DATA",
		"Subject: hi\r\n\r\nbody\r\n.",
		"BOGUS",
		"QUIT",
	})
	env.server.Close()

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"smtp_connections_total 1\n",
		`smtp_commands_total{verb="EHLO"} 1` + "\n",
		`smtp_commands_total{verb="MAIL"} 1` + "\n",
		`smtp_commands_total{verb="RCPT"} 1` + "\n",
		`smtp_commands_total{verb="DATA"} 1` + "\n",
		`smtp_commands_total{verb="QUIT"} 1` + "\n",
		`smtp_commands_total{verb="other"} 1` + "\n", // BOGUS
		"smtp_messages_accepted_total 1\n",
		"smtp_protocol_errors_total 1\n",
		"smtp_open_sessions 0\n",
		"smtp_session_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Reply classes: banner+EHLO+MAIL+RCPT+accept+QUIT are 2xx, DATA's
	// 354 is 3xx, BOGUS's 500 is 5xx.
	for _, want := range []string{
		`smtp_replies_total{class="2xx"} 6` + "\n",
		`smtp_replies_total{class="3xx"} 1` + "\n",
		`smtp_replies_total{class="5xx"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
