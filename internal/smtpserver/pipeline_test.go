package smtpserver

import (
	"bufio"
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/smtpproto"
)

// pipelineSession builds a bare session over a canned input stream, with
// the stream pre-buffered so drainPipelinedRcpts sees it the way a live
// connection would after the first RCPT read.
func pipelineSession(cfg Config, input string) (*session, *bytes.Buffer) {
	srv := New(cfg)
	out := &bytes.Buffer{}
	br := bufio.NewReader(strings.NewReader(input))
	br.Peek(1) // fill the buffer
	return &session{
		srv:       srv,
		br:        br,
		bw:        bufio.NewWriter(out),
		clientIP:  "192.0.2.7",
		state:     stateMail,
		sender:    "a@b.example",
		keepVerbs: true,
	}, out
}

func TestPipelinedRcptBatchDrain(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	cfg := Config{Hooks: Hooks{
		OnRcptBatch: func(clientIP, sender string, rcpts []string) []*smtpproto.Reply {
			mu.Lock()
			defer mu.Unlock()
			batches = append(batches, append([]string(nil), rcpts...))
			replies := make([]*smtpproto.Reply, len(rcpts))
			for i, r := range rcpts {
				if strings.HasPrefix(r, "defer") {
					rep := smtpproto.NewReply(451, "4.7.1", "Greylisted")
					replies[i] = &rep
				}
			}
			return replies
		},
	}}
	sess, out := pipelineSession(cfg,
		"RCPT TO:<defer2@x.example>\r\nRCPT TO:<ok3@x.example>\r\nDATA\r\n")

	if !sess.handleRcptPipeline("TO:<ok1@x.example>") {
		t.Fatal("session closed")
	}
	// The pipelined DATA line is still buffered, so the RFC 2920 rule
	// holds the batch replies back for the next answer to carry; force
	// them out to inspect the wire.
	sess.bw.Flush()
	if len(batches) != 1 {
		t.Fatalf("batches = %v", batches)
	}
	want := []string{"ok1@x.example", "defer2@x.example", "ok3@x.example"}
	if strings.Join(batches[0], " ") != strings.Join(want, " ") {
		t.Fatalf("batch = %v, want %v", batches[0], want)
	}
	// One reply per RCPT, in order; only the accepted ones recorded.
	br := bufio.NewReader(out)
	wantCodes := []int{250, 451, 250}
	for i, w := range wantCodes {
		r, err := smtpproto.ParseReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if r.Code != w {
			t.Fatalf("reply %d code = %d, want %d", i, r.Code, w)
		}
	}
	if got := strings.Join(sess.recipients, " "); got != "ok1@x.example ok3@x.example" {
		t.Fatalf("recipients = %q", got)
	}
	if sess.state != stateRcpt {
		t.Fatalf("state = %v", sess.state)
	}
	// The deferral was counted; the DATA line was left for the main loop.
	if st := sess.srv.Stats(); st.RecipientsDeferred != 1 {
		t.Fatalf("deferred = %d", st.RecipientsDeferred)
	}
	if line, _ := smtpproto.ReadCommandLine(sess.br); line != "DATA" {
		t.Fatalf("next line = %q, want DATA", line)
	}
	if got := strings.Join(sess.trace.Verbs, " "); got != "RCPT RCPT" {
		t.Fatalf("drained trace verbs = %q", got)
	}
}

// TestPipelinedRcptFallsBackOnBadSyntax: a parse failure anywhere in the
// drained run must replay the commands serially, preserving per-command
// error replies. The serial replay still consults the policy engine for
// the valid recipients — as length-1 batches, since no OnRcpt is set.
func TestPipelinedRcptFallsBackOnBadSyntax(t *testing.T) {
	var sizes []int
	cfg := Config{Hooks: Hooks{
		OnRcptBatch: func(clientIP, sender string, rcpts []string) []*smtpproto.Reply {
			sizes = append(sizes, len(rcpts))
			return nil
		},
	}}
	sess, out := pipelineSession(cfg, "RCPT TO:not-bracketed\r\n")
	if !sess.handleRcptPipeline("TO:<ok@x.example>") {
		t.Fatal("session closed")
	}
	// Exactly one length-1 call for the valid recipient; the malformed
	// one fails parsing before any policy hook runs.
	if len(sizes) != 1 || sizes[0] != 1 {
		t.Fatalf("batch hook calls = %v, want one length-1 call", sizes)
	}
	br := bufio.NewReader(out)
	wantCodes := []int{250, 501}
	for i, w := range wantCodes {
		r, err := smtpproto.ParseReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if r.Code != w {
			t.Fatalf("reply %d code = %d, want %d", i, r.Code, w)
		}
	}
}

// TestLoneRcptUsesBatchHook: with only OnRcptBatch configured, a single
// unpipelined RCPT still goes through the policy engine.
func TestLoneRcptUsesBatchHook(t *testing.T) {
	called := 0
	cfg := Config{Hooks: Hooks{
		OnRcptBatch: func(clientIP, sender string, rcpts []string) []*smtpproto.Reply {
			called++
			rep := smtpproto.NewReply(451, "4.7.1", "Greylisted")
			return []*smtpproto.Reply{&rep}
		},
	}}
	sess, out := pipelineSession(cfg, "")
	if !sess.handleRcptPipeline("TO:<u@x.example>") {
		t.Fatal("session closed")
	}
	if called != 1 {
		t.Fatalf("batch hook calls = %d", called)
	}
	r, err := smtpproto.ParseReply(bufio.NewReader(out))
	if err != nil || r.Code != 451 {
		t.Fatalf("reply = %+v, %v", r, err)
	}
}

// TestPipelinedRcptOverWire runs a full pipelined transaction through a
// live server: EHLO handshake, then MAIL + all RCPTs + DATA written in
// one chunk (RFC 2920 client behaviour), asserting the replies arrive
// in order whatever batching the server managed.
func TestPipelinedRcptOverWire(t *testing.T) {
	var mu sync.Mutex
	total := 0
	env := startServer(t, Config{Hooks: Hooks{
		OnRcptBatch: func(clientIP, sender string, rcpts []string) []*smtpproto.Reply {
			mu.Lock()
			defer mu.Unlock()
			total += len(rcpts)
			return nil
		},
	}})
	conn, err := env.net.Dial("192.0.2.8:40000", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := smtpproto.ParseReply(br); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("EHLO client.example\r\n")); err != nil {
		t.Fatal(err)
	}
	if r, err := smtpproto.ParseReply(br); err != nil || r.Code != 250 {
		t.Fatalf("EHLO = %+v, %v", r, err)
	}
	burst := "MAIL FROM:<a@b.example>\r\n" +
		"RCPT TO:<u1@x.example>\r\n" +
		"RCPT TO:<u2@x.example>\r\n" +
		"RCPT TO:<u3@x.example>\r\n" +
		"QUIT\r\n"
	if _, err := conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	wantCodes := []int{250, 250, 250, 250, 221}
	for i, w := range wantCodes {
		r, err := smtpproto.ParseReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if r.Code != w {
			t.Fatalf("reply %d code = %d, want %d", i, r.Code, w)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if total != 3 {
		t.Fatalf("batch hook saw %d recipients, want 3", total)
	}
}
