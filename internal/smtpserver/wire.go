package smtpserver

// Zero-allocation wire path. Every reply the verb loop can emit with
// fixed text is rendered to wire bytes exactly once, at package (or
// server) init; the session writes those bytes straight into its
// buffered writer instead of re-rendering "250 2.0.0 OK" through
// Reply.String on every RSET of a 100k-session/sec soak. Dynamic
// replies (HELO greetings, hook verdicts) append into a per-session
// scratch buffer via Reply.AppendTo. Sessions themselves — struct,
// bufio.Reader/Writer, line scratch, reply scratch, DotReader — are
// pooled in a sync.Pool, so a million-connection soak recycles a few
// dozen sessions instead of allocating 8 KiB of buffers per dial.

import (
	"bufio"
	"net"
	"sync"

	"repro/internal/smtpproto"
)

// staticReply is a pre-rendered single-reply wire image plus the two
// fields the observability paths need (reply counters want the code,
// verb traces want the first line).
type staticReply struct {
	code  int
	first string
	wire  []byte
}

// mkStatic renders a fixed reply once. The rendering goes through
// Reply.AppendTo, so the wire bytes are identical to what the old
// String-based path produced.
func mkStatic(code int, enhanced, text string) *staticReply {
	r := smtpproto.NewReply(code, enhanced, text)
	return &staticReply{code: code, first: text, wire: r.AppendTo(nil)}
}

// mkStaticLines renders a fixed multi-line reply once.
func mkStaticLines(code int, lines ...string) *staticReply {
	r := smtpproto.Reply{Code: code, Lines: lines}
	return &staticReply{code: code, first: lines[0], wire: r.AppendTo(nil)}
}

// The fixed command repertoire, rendered once.
var (
	replyOK           = mkStatic(250, "2.0.0", "OK")
	replySenderOK     = mkStatic(250, "2.1.0", "Sender OK")
	replyRcptOK       = mkStatic(250, "2.1.5", "Recipient OK")
	replyData354      = mkStatic(354, "", "Start mail input; end with <CRLF>.<CRLF>")
	replyAccepted     = mkStatic(250, "2.0.0", "OK: message accepted for delivery")
	replyVrfy         = mkStatic(252, "2.1.5", "Cannot VRFY user, send some mail and find out")
	replyHelp         = mkStaticLines(214, "Commands: HELO EHLO MAIL RCPT DATA RSET NOOP QUIT VRFY HELP")
	replyUnrecognized = mkStatic(500, "5.5.2", "Unrecognized command")
	replyNotRecog     = mkStatic(500, "5.5.2", "Command not recognized")
	replyLineTooLong  = mkStatic(500, "5.5.2", "Line too long")
	replyTooManyErrs  = mkStatic(421, "4.7.0", "Too many errors, closing connection")
	replyHostnameReq  = mkStatic(501, "5.5.4", "Hostname required")
	replyNeedHelo     = mkStatic(503, "5.5.1", "Send HELO/EHLO first")
	replyNestedMail   = mkStatic(503, "5.5.1", "Nested MAIL command")
	replyBadSender    = mkStatic(501, "5.5.4", "Bad sender address syntax")
	replyBadRcpt      = mkStatic(501, "5.5.4", "Bad recipient address syntax")
	replySizeLimit    = mkStatic(552, "5.3.4", "Message size exceeds limit")
	replyMsgTooBig    = mkStatic(552, "5.3.4", "Message exceeds size limit")
	replyTooManyRcpts = mkStatic(452, "4.5.3", "Too many recipients")
	replyNeedMail     = mkStatic(503, "5.5.1", "Need MAIL before RCPT")
	replyNeedRcpt     = mkStatic(503, "5.5.1", "Need RCPT before DATA")
	replyNeedMailRcpt = mkStatic(503, "5.5.1", "Need MAIL and RCPT before DATA")
	replyTLSNone      = mkStatic(502, "5.5.1", "TLS not available")
	replyTLSActive    = mkStatic(503, "5.5.1", "TLS already active")
	replyTLSNeedEhlo  = mkStatic(503, "5.5.1", "Send EHLO first")
	replyTLSGo        = mkStatic(220, "2.0.0", "Ready to start TLS")
)

// okRcptReply is the Reply-typed twin of replyRcptOK for the pipelined
// batch path, which mixes static accepts with hook-provided verdicts.
var okRcptReply = smtpproto.NewReply(250, "2.1.5", "Recipient OK")

// buildServerReplies precomputes the hostname-dependent wire images:
// the banner, the QUIT farewell, and the fixed tail of the EHLO
// extension listing (with and without STARTTLS).
func (s *Server) buildServerReplies() {
	s.banner = mkStatic(220, "", s.cfg.Hostname+" ESMTP ready")
	s.quit = mkStatic(221, "2.0.0", s.cfg.Hostname+" closing connection")

	tail := func(lines []string, last string) []byte {
		var buf []byte
		for _, l := range lines {
			buf = appendWireLine(buf, "250-", l)
		}
		return appendWireLine(buf, "250 ", last)
	}
	ext := []string{
		"PIPELINING",
		"SIZE " + itoa(s.cfg.MaxMessageSize),
		"8BITMIME",
	}
	s.ehloTail = tail(ext, "ENHANCEDSTATUSCODES")
	s.ehloTailTLS = tail(append(ext, "ENHANCEDSTATUSCODES"), "STARTTLS")
}

func appendWireLine(buf []byte, prefix, text string) []byte {
	buf = append(buf, prefix...)
	buf = append(buf, text...)
	return append(buf, '\r', '\n')
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// sessionPool recycles sessions with their buffered reader/writer and
// scratch buffers across connections.
var sessionPool = sync.Pool{New: func() any {
	return &session{
		br:      bufio.NewReader(nil),
		bw:      bufio.NewWriter(nil),
		lineBuf: make([]byte, 0, 128),
		out:     make([]byte, 0, 256),
	}
}}

// acquireSession checks a pooled session out for conn and rearms every
// field. Slices keep their backing arrays (capacity reuse is the whole
// point); anything handed to user hooks is either copied (Envelope) or
// detached before the session is pooled again (see releaseSession).
func (s *Server) acquireSession(conn net.Conn, clientIP string) *session {
	sess := sessionPool.Get().(*session)
	sess.srv = s
	sess.conn = conn
	sess.br.Reset(conn)
	sess.bw.Reset(conn)
	sess.clientIP = clientIP
	sess.state = stateConnected
	sess.helo = ""
	sess.sender = ""
	sess.senderSet = false
	sess.recipients = sess.recipients[:0]
	sess.errors = 0
	sess.replies4xx = 0
	sess.keepVerbs = s.cfg.Hooks.OnSessionEnd != nil
	sess.tlsActive = false
	sess.tr = nil
	sess.ownTrace = false
	sess.curVerb = ""
	sess.trace = SessionTrace{
		ClientIP:  clientIP,
		StartedAt: s.cfg.Clock.Now(),
		Verbs:     sess.trace.Verbs[:0],
	}
	return sess
}

// releaseSession returns a session to the pool. When the OnSessionEnd
// hook saw the session's trace it may have retained it, so the Verbs
// backing array is surrendered rather than reused.
func (sess *session) release(retainTrace bool) {
	if retainTrace {
		sess.trace = SessionTrace{}
	}
	sess.srv = nil
	sess.conn = nil
	sess.br.Reset(nil)
	sess.bw.Reset(nil)
	sess.tr = nil
	sessionPool.Put(sess)
}
