// Package smtpserver implements an RFC 5321 SMTP server with pluggable
// policy hooks. It is the reproduction's stand-in for the Postfix server
// the paper instrumented: the greylisting engine plugs into the RCPT hook
// (exactly where Postgrey sits as a Postfix policy service), and the lab
// harness uses the message hook to log every delivery with its virtual
// timestamp.
//
// The server implements the full command repertoire a compliant or
// non-compliant client may throw at it — HELO/EHLO, MAIL, RCPT, DATA,
// RSET, NOOP, VRFY, HELP, QUIT — with strict state-machine enforcement,
// size and recipient limits, and multi-error disconnection.
package smtpserver

import (
	"bufio"
	"bytes"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
	"repro/internal/smtpproto"
	"repro/internal/trace"
)

// Envelope is one accepted (or attempted) message delivery.
type Envelope struct {
	// ClientIP is the connecting client's address without port.
	ClientIP string
	// Helo is the argument of the client's HELO/EHLO.
	Helo string
	// Sender is the envelope reverse-path ("" for bounces).
	Sender string
	// Recipients are the accepted forward-paths.
	Recipients []string
	// Data is the message content (headers + body, CRLF lines).
	Data []byte
	// ReceivedAt is the server clock time at acceptance.
	ReceivedAt time.Time
}

// Hooks are the policy extension points. Any nil hook defaults to
// acceptance. A hook returning a non-nil Reply short-circuits with that
// reply; for OnRcpt a transient reply is how greylisting defers a
// delivery.
type Hooks struct {
	// OnConnect runs before the banner; a non-nil reply (e.g. 554)
	// is sent and, if not 2xx, the connection is closed.
	OnConnect func(clientIP string) *smtpproto.Reply
	// OnHelo runs at HELO/EHLO.
	OnHelo func(clientIP, helo string) *smtpproto.Reply
	// OnMail runs at MAIL FROM.
	OnMail func(clientIP, sender string) *smtpproto.Reply
	// OnRcpt runs at RCPT TO — the greylisting decision point.
	OnRcpt func(clientIP, sender, recipient string) *smtpproto.Reply
	// OnRcptTraced, when set, is preferred over OnRcpt for lone RCPTs
	// and additionally receives the session's trace handle (nil when
	// the session is untraced), so the policy engine can record its
	// verdict into the same per-attempt trace the client started.
	OnRcptTraced func(tr *trace.Trace, clientIP, sender, recipient string) *smtpproto.Reply
	// OnRcptBatch, when set, decides a pipelined burst of RCPT commands
	// in one call (RFC 2920 clients send MAIL and every RCPT in a
	// single write; a batch-capable policy engine amortizes its locking
	// across the burst). Replies are positional: replies[i] answers
	// recipients[i], nil meaning accept; a short or nil slice accepts
	// the unmatched tail. When both hooks are set the batch hook
	// handles pipelined runs and OnRcpt handles lone RCPTs; when only
	// OnRcptBatch is set it also receives lone RCPTs as length-1
	// batches.
	OnRcptBatch func(clientIP, sender string, recipients []string) []*smtpproto.Reply
	// OnMessage runs after the DATA payload is received; returning nil
	// accepts the message.
	OnMessage func(env *Envelope) *smtpproto.Reply
	// OnSessionEnd runs after a session terminates (QUIT, disconnect or
	// forced close), receiving the session's protocol trace. The
	// dialect package fingerprints senders from these traces.
	OnSessionEnd func(trace *SessionTrace)
}

// SessionTrace is the protocol-level record of one SMTP session — the
// raw material for SMTP "dialect" fingerprinting in the spirit of
// Stringhini et al.'s B@bel, which the paper builds on: bots betray
// themselves through HELO instead of EHLO, missing QUIT, bogus HELO
// names and out-of-order commands.
type SessionTrace struct {
	// ClientIP is the peer address.
	ClientIP string
	// HeloName is the argument of the last HELO/EHLO ("" if none).
	HeloName string
	// UsedEHLO reports whether the client ever sent EHLO.
	UsedEHLO bool
	// SentQuit reports a polite QUIT before disconnect.
	SentQuit bool
	// Verbs is the sequence of command verbs received (upper-cased;
	// unparsable lines recorded as "?"). Only recorded when an
	// OnSessionEnd hook is configured, and capped at maxTraceVerbs so a
	// connection that pipelines millions of commands (a soak run, a
	// hostile client) cannot grow an unbounded verb log; the opening
	// dialog is what sender fingerprinting reads anyway.
	Verbs []string
	// ProtocolErrors counts syntax and sequencing errors.
	ProtocolErrors int
	// MessagesSent counts accepted DATA transactions.
	MessagesSent int
	// StartedAt and EndedAt bound the session in server-clock time.
	StartedAt, EndedAt time.Time
}

// Config configures a Server.
type Config struct {
	// Hostname is announced in the banner and HELO replies.
	Hostname string
	// Clock stamps envelopes; nil means the real clock.
	Clock simtime.Clock
	// MaxMessageSize bounds the DATA payload; 0 means 10 MiB.
	MaxMessageSize int
	// MaxRecipients bounds RCPTs per envelope; 0 means 100.
	MaxRecipients int
	// MaxErrors disconnects clients after this many consecutive
	// protocol errors; 0 means 10.
	MaxErrors int
	// MaxRcptBatch bounds how many pipelined RCPT commands are drained
	// into one OnRcptBatch call; 0 means 64. Only consulted when
	// Hooks.OnRcptBatch is set.
	MaxRcptBatch int
	// TLS, when non-nil, enables STARTTLS (RFC 3207): EHLO announces
	// the capability and the STARTTLS verb upgrades the session.
	TLS *tls.Config
	// StampReceived prepends an RFC 5321 trace ("Received:") header to
	// every accepted message, as real MTAs must (§4.4). Off by default
	// so protocol tests see payloads byte-exact.
	StampReceived bool
	// ReadTimeout bounds how long the server waits for the next
	// command line (and for DATA payload progress). Zero disables the
	// timeout — virtual-time simulations rely on that, since their
	// wall-clock gaps are microseconds. Real deployments (greylistd)
	// should set it; RFC 5321 §4.5.3.2 suggests 5 minutes.
	ReadTimeout time.Duration
	// Tracer, when set, starts a server-originated trace for every
	// inbound session whose connection does not already carry one —
	// the greylistd case, where real TCP clients have no trace handle.
	// Simulated connections carrying the dialing client's trace
	// (trace.Carrier) always record into that trace instead, tracer or
	// not. Nil disables server-originated tracing at zero cost.
	Tracer *trace.Tracer
	// Hooks are the policy callbacks.
	Hooks Hooks
}

// Stats are cumulative server counters.
type Stats struct {
	Connections        uint64
	MessagesAccepted   uint64
	MessagesRejected   uint64
	RecipientsDeferred uint64
	ProtocolErrors     uint64
}

// Server is an SMTP server. Create with New.
type Server struct {
	cfg Config

	inst atomic.Pointer[instruments]

	// Pre-rendered hostname-dependent wire images (see wire.go): the
	// banner, the QUIT farewell and the EHLO extension tail are written
	// as fixed bytes instead of being re-rendered per session.
	banner      *staticReply
	quit        *staticReply
	ehloTail    []byte
	ehloTailTLS []byte

	// outcomes counts finished sessions by outcome class (delivered /
	// deferred / no-delivery, the sessionOutcome classification),
	// atomically so the observatory can poll them without the stats
	// mutex.
	outcomes [3]atomic.Uint64

	mu        sync.Mutex
	stats     Stats
	closed    bool
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	listeners []net.Listener
}

// Session-outcome classes, indexing OutcomeCounts.
const (
	OutcomeDelivered = iota // at least one message accepted
	OutcomeDeferred         // no delivery, at least one 4xx reply
	OutcomeNone             // no delivery, no transient pushback
)

// OutcomeCounts returns cumulative finished-session counts by class:
// delivered, deferred, no-delivery.
func (s *Server) OutcomeCounts() (delivered, deferred, none uint64) {
	return s.outcomes[OutcomeDelivered].Load(),
		s.outcomes[OutcomeDeferred].Load(),
		s.outcomes[OutcomeNone].Load()
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.Hostname == "" {
		cfg.Hostname = "mail.invalid"
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.Real{}
	}
	if cfg.MaxMessageSize == 0 {
		cfg.MaxMessageSize = 10 << 20
	}
	if cfg.MaxRecipients == 0 {
		cfg.MaxRecipients = 100
	}
	if cfg.MaxErrors == 0 {
		cfg.MaxErrors = 10
	}
	if cfg.MaxRcptBatch == 0 {
		cfg.MaxRcptBatch = 64
	}
	s := &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.buildServerReplies()
	return s
}

// Hostname returns the announced hostname.
func (s *Server) Hostname() string { return s.cfg.Hostname }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Serve accepts connections on l until l is closed or the server is
// closed. Each connection is handled in a tracked goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("smtpserver: server closed")
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()

	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			// netsim returns its own closed error; treat any accept
			// error after Close as clean shutdown.
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("smtpserver: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.stats.Connections++
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops every listener passed to Serve, closes active connections
// and waits for session goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := s.listeners
	s.listeners = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return nil
}

// session state machine states
type sessionState int

const (
	stateConnected sessionState = iota + 1
	stateGreeted                // after HELO/EHLO
	stateMail                   // after MAIL FROM
	stateRcpt                   // after at least one RCPT TO
)

type session struct {
	srv      *Server
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	clientIP string

	state  sessionState
	helo   string
	sender string
	// senderSet distinguishes MAIL FROM:<> (bounce) from no MAIL yet.
	senderSet  bool
	recipients []string
	errors     int
	// replies4xx counts transient replies sent, accumulated as they go
	// out so sessionOutcome never has to re-walk the trace events.
	replies4xx int
	trace      SessionTrace
	// keepVerbs gates trace.Verbs accumulation: recording a verb log
	// nobody reads would grow without bound on long-lived pipelined
	// connections, so it is only kept when OnSessionEnd will see it.
	keepVerbs bool
	tlsActive bool

	// lineBuf is the reusable command-line scratch (ReadCommandLineAppend)
	// and out the reusable reply scratch (Reply.AppendTo); both survive
	// session reuse through the pool.
	lineBuf []byte
	out     []byte
	// dr is the pooled DATA payload reader; its line scratch survives
	// across messages and sessions.
	dr smtpproto.DotReader

	// tr is the conversation trace: carried by the connection (the
	// dialing client's trace) or server-originated via Config.Tracer.
	// Nil when tracing is off — every recording site nil-checks, so
	// the untraced verb loop is byte-identical to before.
	tr *trace.Trace
	// ownTrace marks a server-originated trace this session must
	// Finish (carried traces are finished by the dialing client).
	ownTrace  bool
	curVerb   string
	verbStart time.Time
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	clientIP := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(clientIP); err == nil {
		clientIP = host
	}
	sess := s.acquireSession(conn, clientIP)
	sess.tr = trace.FromConn(conn)
	if sess.tr == nil && s.cfg.Tracer != nil {
		sess.tr = s.cfg.Tracer.StartSession(trace.Tags{}, clientIP, s.cfg.Clock.Now)
		sess.ownTrace = true
	}
	if sess.tr != nil {
		sess.curVerb = "connect"
		sess.verbStart = s.cfg.Clock.Now()
	}
	inst := s.inst.Load()
	var start time.Time
	if inst != nil {
		start = time.Now()
	}
	sess.run()
	// Replies suppressed by the pipelining rule must hit the wire
	// before the connection closes.
	sess.bw.Flush()
	// Outcome accounting mirrors sessionOutcome's classification but
	// runs for every session, traced or not.
	switch {
	case sess.trace.MessagesSent > 0:
		s.outcomes[OutcomeDelivered].Add(1)
	case sess.replies4xx > 0:
		s.outcomes[OutcomeDeferred].Add(1)
	default:
		s.outcomes[OutcomeNone].Add(1)
	}
	hook := s.cfg.Hooks.OnSessionEnd
	if hook != nil {
		// The hook may retain the trace (dialect.Collector does), so it
		// gets a detached copy — the pooled session's own trace field is
		// recycled by the next connection. The copy still shares the
		// Verbs backing array, which release() surrenders below.
		sess.trace.EndedAt = s.cfg.Clock.Now()
		t := sess.trace
		hook(&t)
	}
	if sess.ownTrace {
		sess.tr.Finish(sess.sessionOutcome())
	}
	if inst != nil {
		if sess.tr != nil {
			// The session-latency bucket remembers this conversation as
			// its exemplar, linking slow buckets to concrete dialogs.
			inst.sessionSeconds.ObserveDurationExemplar(time.Since(start), sess.tr.ID())
		} else {
			inst.sessionSeconds.ObserveDuration(time.Since(start))
		}
	}
	sess.release(hook != nil)
}

// sessionOutcome classifies a server-originated trace at session end,
// from counters the session accumulated as it ran (no event re-walk).
func (sess *session) sessionOutcome() string {
	if sess.trace.MessagesSent > 0 {
		return "delivered"
	}
	if sess.replies4xx > 0 {
		return "deferred"
	}
	return "no-delivery"
}

// sendRaw is the single exit point for reply bytes: it feeds the reply
// counters and the verb trace, counts transient replies for
// sessionOutcome, writes the wire image and flushes.
func (sess *session) sendRaw(code int, first string, wire []byte) bool {
	if inst := sess.srv.inst.Load(); inst != nil {
		inst.countReply(code)
	}
	if sess.tr != nil {
		sess.tr.Verb(sess.curVerb, code, first, sess.srv.cfg.Clock.Now().Sub(sess.verbStart))
	}
	if code >= 400 && code < 500 {
		sess.replies4xx++
	}
	if _, err := sess.bw.Write(wire); err != nil {
		return false
	}
	return sess.flush()
}

// flush writes buffered replies out — unless at least one complete
// pipelined command line is already sitting in the read buffer, the
// RFC 2920 §3.2 server-side buffering rule. Replies to a pipelined
// burst then leave in one TCP segment (one write syscall) when the
// burst's last buffered command is answered, instead of one flush per
// command. Requiring a complete line rather than any buffered bytes
// keeps the no-deadlock invariant: the next command read is served
// from memory without blocking, so a suppressed reply can never stall
// the exchange on a half-received line. Paths that hand the socket to
// a different reader (DATA payload, STARTTLS handshake) or close it
// must force the flush with bw.Flush directly.
func (sess *session) flush() bool {
	if n := sess.br.Buffered(); n > 0 {
		if buf, err := sess.br.Peek(n); err == nil && bytes.IndexByte(buf, '\n') >= 0 {
			return true
		}
	}
	return sess.bw.Flush() == nil
}

// replyStatic sends a pre-rendered fixed reply.
func (sess *session) replyStatic(p *staticReply) bool {
	return sess.sendRaw(p.code, p.first, p.wire)
}

// reply sends a dynamic reply (hook verdicts), rendering it into the
// session's reusable scratch buffer.
func (sess *session) reply(r smtpproto.Reply) bool {
	sess.out = r.AppendTo(sess.out[:0])
	first := ""
	if len(r.Lines) > 0 {
		first = r.Lines[0]
	}
	return sess.sendRaw(r.Code, first, sess.out)
}

// recordVerb appends a per-verb trace event: the verb being answered,
// the reply code and first reply line, and the verb's service time on
// the server clock. Only called on traced sessions.
func (sess *session) recordVerb(r smtpproto.Reply) {
	detail := ""
	if len(r.Lines) > 0 {
		detail = r.Lines[0]
	}
	sess.tr.Verb(sess.curVerb, r.Code, detail, sess.srv.cfg.Clock.Now().Sub(sess.verbStart))
}

func (sess *session) run() {
	s := sess.srv
	if hook := s.cfg.Hooks.OnConnect; hook != nil {
		if r := hook(sess.clientIP); r != nil {
			sess.reply(*r)
			if !r.Positive() {
				return
			}
		} else if !sess.replyStatic(s.banner) {
			return
		}
	} else if !sess.replyStatic(s.banner) {
		return
	}

	for {
		sess.armReadTimeout()
		line, err := smtpproto.ReadCommandLineAppend(sess.br, sess.lineBuf)
		sess.lineBuf = line[:0]
		if err != nil {
			if errors.Is(err, smtpproto.ErrLineTooLong) {
				if !sess.protocolError(replyLineTooLong) {
					return
				}
				continue
			}
			return // client went away
		}
		cmd, err := smtpproto.ParseCommandBytes(line)
		if err != nil {
			sess.recordTraceVerb("?")
			if sess.tr != nil {
				sess.curVerb = "?"
				sess.verbStart = s.cfg.Clock.Now()
			}
			if inst := s.inst.Load(); inst != nil {
				inst.other.Inc()
			}
			if !sess.protocolError(replyUnrecognized) {
				return
			}
			continue
		}
		sess.recordTraceVerb(cmd.Verb)
		if sess.tr != nil {
			sess.curVerb = cmd.Verb
			sess.verbStart = s.cfg.Clock.Now()
		}
		if inst := s.inst.Load(); inst != nil {
			inst.countCommand(cmd.Verb)
		}
		if !sess.dispatch(cmd) {
			return
		}
	}
}

// maxTraceVerbs caps SessionTrace.Verbs; the opening dialog is what
// dialect fingerprinting reads, and an uncapped log would leak on
// connections that stream commands indefinitely.
const maxTraceVerbs = 512

// recordTraceVerb appends one verb to the session's dialog trace,
// subject to the keepVerbs gate and the maxTraceVerbs cap.
func (sess *session) recordTraceVerb(verb string) {
	if sess.keepVerbs && len(sess.trace.Verbs) < maxTraceVerbs {
		sess.trace.Verbs = append(sess.trace.Verbs, verb)
	}
}

// protocolError replies p, counts the error and reports whether the
// session should continue.
func (sess *session) protocolError(p *staticReply) bool {
	sess.srv.mu.Lock()
	sess.srv.stats.ProtocolErrors++
	sess.srv.mu.Unlock()
	sess.errors++
	sess.trace.ProtocolErrors++
	if sess.errors >= sess.srv.cfg.MaxErrors {
		sess.replyStatic(replyTooManyErrs)
		return false
	}
	return sess.replyStatic(p)
}

// dispatch handles one command; the return value reports whether the
// session continues.
func (sess *session) dispatch(cmd smtpproto.Command) bool {
	switch cmd.Verb {
	case smtpproto.VerbHELO:
		return sess.handleHelo(cmd.Arg, false)
	case smtpproto.VerbEHLO:
		return sess.handleHelo(cmd.Arg, true)
	case smtpproto.VerbMAIL:
		return sess.handleMail(cmd.Arg)
	case smtpproto.VerbRCPT:
		return sess.handleRcptPipeline(cmd.Arg)
	case smtpproto.VerbDATA:
		return sess.handleData()
	case smtpproto.VerbRSET:
		sess.resetEnvelope()
		if sess.state != stateConnected {
			sess.state = stateGreeted
		}
		return sess.replyStatic(replyOK)
	case smtpproto.VerbNOOP:
		return sess.replyStatic(replyOK)
	case "STARTTLS":
		return sess.handleStartTLS()
	case smtpproto.VerbQUIT:
		sess.trace.SentQuit = true
		sess.replyStatic(sess.srv.quit)
		return false
	case smtpproto.VerbVRFY:
		// RFC 5321 allows a noncommittal answer; disclosing users
		// aids spammers.
		return sess.replyStatic(replyVrfy)
	case smtpproto.VerbHELP:
		return sess.replyStatic(replyHelp)
	default:
		return sess.protocolError(replyNotRecog)
	}
}

func (sess *session) handleHelo(arg string, extended bool) bool {
	if arg == "" {
		return sess.protocolError(replyHostnameReq)
	}
	sess.trace.HeloName = arg
	if extended {
		sess.trace.UsedEHLO = true
	}
	if hook := sess.srv.cfg.Hooks.OnHelo; hook != nil {
		if r := hook(sess.clientIP, arg); r != nil {
			ok := sess.reply(*r)
			if r.Positive() {
				sess.helo = arg
				sess.state = stateGreeted
				sess.resetEnvelope()
			}
			return ok
		}
	}
	sess.helo = arg
	sess.state = stateGreeted
	sess.resetEnvelope()
	// The greeting line is the only dynamic part; append it into the
	// session scratch and, for EHLO, splice in the pre-rendered
	// extension tail.
	host := sess.srv.cfg.Hostname
	sess.out = sess.out[:0]
	if !extended {
		sess.out = append(sess.out, "250 "...)
	} else {
		sess.out = append(sess.out, "250-"...)
	}
	sess.out = append(sess.out, host...)
	sess.out = append(sess.out, " Hello "...)
	sess.out = append(sess.out, arg...)
	sess.out = append(sess.out, '\r', '\n')
	if extended {
		tail := sess.srv.ehloTail
		if sess.srv.cfg.TLS != nil && !sess.tlsActive {
			tail = sess.srv.ehloTailTLS
		}
		sess.out = append(sess.out, tail...)
	}
	first := ""
	if sess.tr != nil {
		first = host + " Hello " + arg
	}
	return sess.sendRaw(250, first, sess.out)
}

func (sess *session) handleMail(arg string) bool {
	if sess.state == stateConnected {
		return sess.protocolError(replyNeedHelo)
	}
	if sess.state != stateGreeted {
		return sess.protocolError(replyNestedMail)
	}
	sender, params, err := smtpproto.ParseMailArg(arg)
	if err != nil {
		return sess.protocolError(replyBadSender)
	}
	if size, ok := params["SIZE"]; ok {
		if n, err := strconv.Atoi(size); err == nil && n > sess.srv.cfg.MaxMessageSize {
			return sess.replyStatic(replySizeLimit)
		}
	}
	if hook := sess.srv.cfg.Hooks.OnMail; hook != nil {
		if r := hook(sess.clientIP, sender); r != nil {
			return sess.reply(*r)
		}
	}
	sess.sender = sender
	sess.senderSet = true
	sess.state = stateMail
	return sess.replyStatic(replySenderOK)
}

func (sess *session) handleRcpt(arg string) bool {
	if sess.state != stateMail && sess.state != stateRcpt {
		return sess.protocolError(replyNeedMail)
	}
	rcpt, _, err := smtpproto.ParseRcptArg(arg)
	if err != nil {
		return sess.protocolError(replyBadRcpt)
	}
	if len(sess.recipients) >= sess.srv.cfg.MaxRecipients {
		return sess.replyStatic(replyTooManyRcpts)
	}
	if r := sess.rcptVerdict(rcpt); r != nil {
		if r.Transient() {
			sess.srv.mu.Lock()
			sess.srv.stats.RecipientsDeferred++
			sess.srv.mu.Unlock()
		}
		return sess.reply(*r)
	}
	sess.recipients = append(sess.recipients, rcpt)
	sess.state = stateRcpt
	return sess.replyStatic(replyRcptOK)
}

// rcptVerdict runs the policy hook for one recipient: OnRcptTraced when
// set (it sees the session's trace handle, nil on untraced sessions),
// then OnRcpt, otherwise OnRcptBatch as a length-1 batch, so an engine
// wired only for batching still vets lone RCPTs.
func (sess *session) rcptVerdict(rcpt string) *smtpproto.Reply {
	if hook := sess.srv.cfg.Hooks.OnRcptTraced; hook != nil {
		return hook(sess.tr, sess.clientIP, sess.sender, rcpt)
	}
	if hook := sess.srv.cfg.Hooks.OnRcpt; hook != nil {
		return hook(sess.clientIP, sess.sender, rcpt)
	}
	if hook := sess.srv.cfg.Hooks.OnRcptBatch; hook != nil {
		if rs := hook(sess.clientIP, sess.sender, []string{rcpt}); len(rs) > 0 {
			return rs[0]
		}
	}
	return nil
}

// handleRcptPipeline handles a RCPT command, and — when a batch hook is
// configured — drains any further RCPT commands a pipelining client
// (RFC 2920) has already sent, deciding the whole burst with one
// OnRcptBatch call and one flush. Any irregularity (bad state, a parse
// error, the recipient cap, no pipelined data) falls back to the serial
// per-command path, byte-identical to handling each RCPT alone.
func (sess *session) handleRcptPipeline(arg string) bool {
	if sess.srv.cfg.Hooks.OnRcptBatch == nil ||
		(sess.state != stateMail && sess.state != stateRcpt) {
		return sess.handleRcpt(arg)
	}
	if sess.tr != nil && sess.srv.cfg.Hooks.OnRcptTraced != nil {
		// Traced sessions take the serial path so every recipient's
		// greylist decision lands in the trace; batching would decide
		// the burst in one opaque call. Tracing is a debugging mode —
		// fidelity beats the amortized locking here.
		return sess.handleRcpt(arg)
	}
	args := sess.drainPipelinedRcpts(arg)
	if len(args) == 1 {
		return sess.handleRcpt(arg)
	}

	rcpts := make([]string, len(args))
	for i, a := range args {
		r, _, err := smtpproto.ParseRcptArg(a)
		if err != nil {
			return sess.serialRcpts(args)
		}
		rcpts[i] = r
	}
	if len(sess.recipients)+len(rcpts) > sess.srv.cfg.MaxRecipients {
		return sess.serialRcpts(args)
	}

	inst := sess.srv.inst.Load()
	if inst != nil {
		inst.rcptBatchSize.Observe(float64(len(rcpts)))
	}
	replies := sess.srv.cfg.Hooks.OnRcptBatch(sess.clientIP, sess.sender, rcpts)
	deferred := 0
	sess.out = sess.out[:0]
	for i, rcpt := range rcpts {
		var r *smtpproto.Reply
		if i < len(replies) {
			r = replies[i]
		}
		if r == nil {
			sess.recipients = append(sess.recipients, rcpt)
			sess.state = stateRcpt
			r = &okRcptReply
		} else if r.Transient() {
			deferred++
		}
		if inst != nil {
			// These replies bypass sess.reply (one flush per batch), so
			// the class counters are fed here too.
			inst.countReply(r.Code)
		}
		if sess.tr != nil {
			// Same reason: the batch path skips sess.reply, so verb
			// events are recorded here. Every reply in the burst shares
			// the batch's service time.
			sess.recordVerb(*r)
		}
		sess.out = r.AppendTo(sess.out)
	}
	// Transient hook verdicts are the only 4xx replies the batch path
	// emits, so the deferral count doubles as the sessionOutcome feed.
	sess.replies4xx += deferred
	if _, err := sess.bw.Write(sess.out); err != nil {
		return false
	}
	if deferred > 0 {
		sess.srv.mu.Lock()
		sess.srv.stats.RecipientsDeferred += uint64(deferred)
		sess.srv.mu.Unlock()
	}
	return sess.flush()
}

// serialRcpts replays already-drained RCPT commands through the serial
// handler, preserving per-command error semantics exactly.
func (sess *session) serialRcpts(args []string) bool {
	for _, a := range args {
		if !sess.handleRcpt(a) {
			return false
		}
	}
	return true
}

// drainPipelinedRcpts returns arg plus the arguments of any complete
// RCPT command lines already sitting in the read buffer, consuming them.
// It never blocks: only fully-buffered lines are taken, and the first
// non-RCPT or unparsable line stops the drain (the main loop reads it
// normally). Drained verbs are recorded in the session trace just as the
// main loop would.
func (sess *session) drainPipelinedRcpts(arg string) []string {
	args := []string{arg}
	max := sess.srv.cfg.MaxRcptBatch
	for len(args) < max {
		n := sess.br.Buffered()
		if n == 0 {
			break
		}
		buf, err := sess.br.Peek(n)
		if err != nil {
			break
		}
		nl := -1
		for i, b := range buf {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 || nl >= smtpproto.MaxCommandLine {
			break
		}
		line := buf[:nl]
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		cmd, err := smtpproto.ParseCommandBytes(line)
		if err != nil || cmd.Verb != smtpproto.VerbRCPT {
			break
		}
		sess.br.Discard(nl + 1)
		sess.recordTraceVerb(cmd.Verb)
		if inst := sess.srv.inst.Load(); inst != nil {
			inst.countCommand(cmd.Verb)
		}
		args = append(args, cmd.Arg)
	}
	return args
}

func (sess *session) handleData() bool {
	if sess.state != stateRcpt {
		if sess.state == stateMail {
			return sess.protocolError(replyNeedRcpt)
		}
		return sess.protocolError(replyNeedMailRcpt)
	}
	if !sess.replyStatic(replyData354) {
		return false
	}
	// The payload reader takes over the socket: a 354 suppressed by the
	// pipelining rule would deadlock a conforming client that waits for
	// it before streaming the message.
	if sess.bw.Flush() != nil {
		return false
	}
	sess.armReadTimeout()
	sess.dr.Reset(sess.br, sess.srv.cfg.MaxMessageSize)
	data, err := sess.dr.ReadAll()
	if err != nil {
		if errors.Is(err, smtpproto.ErrMessageTooBig) {
			sess.srv.mu.Lock()
			sess.srv.stats.MessagesRejected++
			sess.srv.mu.Unlock()
			sess.resetEnvelope()
			sess.state = stateGreeted
			return sess.replyStatic(replyMsgTooBig)
		}
		return false // stream broken mid-DATA
	}

	receivedAt := sess.srv.cfg.Clock.Now()
	if sess.srv.cfg.StampReceived {
		with := "SMTP"
		if sess.tlsActive {
			with = "ESMTPS"
		}
		// Append-formatted trace header, byte-identical to the old
		// fmt.Sprintf("Received: from %s (%s) by %s with %s; %s\r\n").
		sess.out = sess.out[:0]
		sess.out = append(sess.out, "Received: from "...)
		sess.out = append(sess.out, sess.helo...)
		sess.out = append(sess.out, " ("...)
		sess.out = append(sess.out, sess.clientIP...)
		sess.out = append(sess.out, ") by "...)
		sess.out = append(sess.out, sess.srv.cfg.Hostname...)
		sess.out = append(sess.out, " with "...)
		sess.out = append(sess.out, with...)
		sess.out = append(sess.out, "; "...)
		sess.out = receivedAt.UTC().AppendFormat(sess.out, "Mon, 02 Jan 2006 15:04:05 -0700")
		sess.out = append(sess.out, '\r', '\n')
		stamped := make([]byte, 0, len(sess.out)+len(data))
		stamped = append(stamped, sess.out...)
		data = append(stamped, data...)
	}
	env := &Envelope{
		ClientIP:   sess.clientIP,
		Helo:       sess.helo,
		Sender:     sess.sender,
		Recipients: append([]string(nil), sess.recipients...),
		Data:       data,
		ReceivedAt: receivedAt,
	}
	var verdict *smtpproto.Reply
	if hook := sess.srv.cfg.Hooks.OnMessage; hook != nil {
		verdict = hook(env)
	}
	sess.resetEnvelope()
	sess.state = stateGreeted
	if verdict != nil {
		sess.srv.mu.Lock()
		if verdict.Positive() {
			sess.srv.stats.MessagesAccepted++
			sess.trace.MessagesSent++
		} else {
			sess.srv.stats.MessagesRejected++
		}
		sess.srv.mu.Unlock()
		return sess.reply(*verdict)
	}
	sess.srv.mu.Lock()
	sess.srv.stats.MessagesAccepted++
	sess.srv.mu.Unlock()
	sess.trace.MessagesSent++
	return sess.replyStatic(replyAccepted)
}

// armReadTimeout refreshes the connection's read deadline when the
// server has one configured. Skipped while bytes are already buffered:
// a pipelined burst is served from memory without blocking, so re-arming
// per command would only pay a clock read and deadline update per line —
// the deadline from the last wire read still bounds the next one, short
// by at most the time spent draining the buffer.
func (sess *session) armReadTimeout() {
	if t := sess.srv.cfg.ReadTimeout; t > 0 && sess.br.Buffered() == 0 {
		sess.conn.SetReadDeadline(time.Now().Add(t))
	}
}

func (sess *session) resetEnvelope() {
	sess.sender = ""
	sess.senderSet = false
	// Truncate, don't nil: the backing array is reused across
	// transactions and pooled sessions (Envelope gets its own copy).
	sess.recipients = sess.recipients[:0]
}
