package smtpserver

import (
	"bufio"
	"net"
	netsmtp "net/smtp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/smtpproto"
)

func TestReadTimeoutDisconnectsIdleClient(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Hostname: "timeout.test", ReadTimeout: 100 * time.Millisecond})
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("banner: %v", err)
	}
	// Say nothing. The server must drop us once the deadline passes.
	start := time.Now()
	_, err = conn.Read(buf)
	if err == nil {
		// The server may send nothing before closing; a second read
		// must fail.
		_, err = conn.Read(buf)
	}
	if err == nil {
		t.Fatal("idle connection not closed")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("disconnect took %v", elapsed)
	}
}

func TestReadTimeoutRefreshedPerCommand(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Hostname: "timeout.test", ReadTimeout: 300 * time.Millisecond})
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	if _, err := smtpproto.ParseReply(br); err != nil {
		t.Fatal(err)
	}
	// Issue commands with 150 ms gaps: each is under the 300 ms
	// deadline, and the deadline must be re-armed every time.
	for i, cmd := range []string{"HELO a.example", "NOOP", "NOOP", "NOOP"} {
		time.Sleep(150 * time.Millisecond)
		if _, err := conn.Write([]byte(cmd + "\r\n")); err != nil {
			t.Fatalf("cmd %d: %v", i, err)
		}
		if _, err := smtpproto.ParseReply(br); err != nil {
			t.Fatalf("reply %d: %v (deadline not refreshed?)", i, err)
		}
	}
}

func TestNoTimeoutByDefault(t *testing.T) {
	cfg := Config{Hostname: "x"}
	srv := New(cfg)
	if srv.cfg.ReadTimeout != 0 {
		t.Fatalf("default ReadTimeout = %v, want 0 (virtual-time safe)", srv.cfg.ReadTimeout)
	}
}

func TestStampReceivedHeader(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []byte
	srv := New(Config{
		Hostname:      "mx.stamp.test",
		StampReceived: true,
		Hooks: Hooks{OnMessage: func(e *Envelope) *smtpproto.Reply {
			mu.Lock()
			defer mu.Unlock()
			got = e.Data
			return nil
		}},
	})
	go srv.Serve(l)
	defer srv.Close()

	if err := netsmtp.SendMail(l.Addr().String(), nil, "a@b.example",
		[]string{"u@mx.stamp.test"}, []byte("Subject: s\r\n\r\nbody\r\n")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	text := string(got)
	if !strings.HasPrefix(text, "Received: from ") {
		t.Fatalf("no Received header:\n%s", text)
	}
	for _, want := range []string{"by mx.stamp.test", "with SMTP", "127.0.0.1", "Subject: s"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Received stamp missing %q:\n%s", want, text)
		}
	}
}
