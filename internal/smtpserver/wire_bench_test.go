package smtpserver

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/smtpproto"
)

// scriptConn is a net.Conn that replays a pre-canned client script and
// discards everything the server writes. It lets benchmarks run
// serveConn alone, so allocs/op counts the *server* wire path only —
// no real socket, no client goroutine, no scheduler noise.
type scriptConn struct {
	r bytes.Reader
	n int64 // bytes written by the server (discarded)
}

func (c *scriptConn) Reset(script []byte) { c.r.Reset(script); c.n = 0 }

func (c *scriptConn) Read(p []byte) (int, error) { return c.r.Read(p) }

func (c *scriptConn) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func (c *scriptConn) Close() error { return nil }

func (c *scriptConn) LocalAddr() net.Addr  { return scriptAddr{} }
func (c *scriptConn) RemoteAddr() net.Addr { return scriptAddr{} }

func (c *scriptConn) SetDeadline(time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(time.Time) error { return nil }

type scriptAddr struct{}

func (scriptAddr) Network() string { return "tcp" }
func (scriptAddr) String() string  { return "192.0.2.77:40001" }

var _ net.Conn = (*scriptConn)(nil)

// wireScript renders a client dialog as the byte stream the server reads.
func wireScript(lines ...string) []byte {
	var b bytes.Buffer
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\r\n")
	}
	return b.Bytes()
}

// BenchmarkServeConnSession is the wire-path allocation contract: one
// full SMTP session (connect, EHLO, MAIL, RCPT, DATA with a small
// payload, QUIT) handled end to end by serveConn. allocs/op is
// allocs/session for the server side alone.
func BenchmarkServeConnSession(b *testing.B) {
	srv := New(Config{Hostname: "bench.example", StampReceived: true})
	script := wireScript(
		"EHLO client.example",
		"MAIL FROM:<a@b.example>",
		"RCPT TO:<u@foo.net>",
		"DATA",
		"Subject: hi",
		"",
		"body line one",
		".",
		"QUIT",
	)
	conn := &scriptConn{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn.Reset(script)
		srv.serveConn(conn)
	}
	if conn.n == 0 {
		b.Fatal("server wrote nothing")
	}
}

// BenchmarkServeConnReused measures the steady-state transaction cost on
// a long-lived connection: one connect + EHLO, then 64 MAIL/RCPT/RSET
// transactions (the greylistd hot shape — most spam sessions never reach
// DATA). allocs/op is per *transaction*, the unit the soak harness
// calls a session when connections are pooled.
func BenchmarkServeConnReused(b *testing.B) {
	srv := New(Config{Hostname: "bench.example"})
	const txns = 64
	lines := []string{"EHLO client.example"}
	for i := 0; i < txns; i++ {
		lines = append(lines,
			"MAIL FROM:<a@b.example>",
			"RCPT TO:<u@foo.net>",
			"RSET",
		)
	}
	lines = append(lines, "QUIT")
	script := wireScript(lines...)
	conn := &scriptConn{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += txns {
		conn.Reset(script)
		srv.serveConn(conn)
	}
	if conn.n == 0 {
		b.Fatal("server wrote nothing")
	}
}

// BenchmarkServeConnPipelinedRcpt drives the batch path: EHLO, then
// transactions of MAIL + 16 pipelined RCPTs + RSET arriving in one
// write, decided by OnRcptBatch. allocs/op is per transaction.
func BenchmarkServeConnPipelinedRcpt(b *testing.B) {
	srv := New(Config{
		Hostname: "bench.example",
		Hooks: Hooks{
			OnRcptBatch: func(clientIP, sender string, rcpts []string) []*smtpproto.Reply {
				return nil // accept all
			},
		},
	})
	const txns = 16
	const rcpts = 16
	lines := []string{"EHLO client.example"}
	for i := 0; i < txns; i++ {
		lines = append(lines, "MAIL FROM:<a@b.example>")
		for j := 0; j < rcpts; j++ {
			lines = append(lines, "RCPT TO:<u@foo.net>")
		}
		lines = append(lines, "RSET")
	}
	lines = append(lines, "QUIT")
	script := wireScript(lines...)
	conn := &scriptConn{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += txns {
		conn.Reset(script)
		srv.serveConn(conn)
	}
	if conn.n == 0 {
		b.Fatal("server wrote nothing")
	}
}
