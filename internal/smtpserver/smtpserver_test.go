package smtpserver

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
)

// testEnv runs a server on a simulated network and returns a dial helper.
type testEnv struct {
	net    *netsim.Network
	server *Server
	addr   string
}

func startServer(t *testing.T, cfg Config) *testEnv {
	t.Helper()
	n := netsim.New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hostname == "" {
		cfg.Hostname = "smtp.foo.net"
	}
	srv := New(cfg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	return &testEnv{net: n, server: srv, addr: "10.0.0.1:25"}
}

// script runs a raw SMTP conversation: sends each input line, reads one
// complete reply after each, and returns the reply codes.
func (e *testEnv) script(t *testing.T, clientIP string, lines []string) []smtpproto.Reply {
	t.Helper()
	conn, err := e.net.Dial(clientIP+":40000", e.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	banner, err := smtpproto.ParseReply(br)
	if err != nil {
		t.Fatalf("banner: %v", err)
	}
	replies := []smtpproto.Reply{banner}
	for _, line := range lines {
		if _, err := conn.Write([]byte(line + "\r\n")); err != nil {
			t.Fatalf("write %q: %v", line, err)
		}
		r, err := smtpproto.ParseReply(br)
		if err != nil {
			t.Fatalf("reply to %q: %v", line, err)
		}
		replies = append(replies, r)
	}
	return replies
}

func codes(replies []smtpproto.Reply) []int {
	out := make([]int, len(replies))
	for i, r := range replies {
		out[i] = r.Code
	}
	return out
}

func TestBannerAndHelo(t *testing.T) {
	env := startServer(t, Config{})
	replies := env.script(t, "192.0.2.1", []string{"HELO client.example", "QUIT"})
	want := []int{220, 250, 221}
	for i, w := range want {
		if replies[i].Code != w {
			t.Fatalf("codes = %v, want %v", codes(replies), want)
		}
	}
	if !strings.Contains(replies[0].Lines[0], "smtp.foo.net") {
		t.Fatalf("banner = %q", replies[0].Lines[0])
	}
}

func TestEhloExtensions(t *testing.T) {
	env := startServer(t, Config{MaxMessageSize: 5000})
	replies := env.script(t, "192.0.2.1", []string{"EHLO client.example"})
	ehlo := replies[1]
	if ehlo.Code != 250 {
		t.Fatalf("EHLO code = %d", ehlo.Code)
	}
	joined := strings.Join(ehlo.Lines, "\n")
	for _, ext := range []string{"PIPELINING", "SIZE 5000", "8BITMIME", "ENHANCEDSTATUSCODES"} {
		if !strings.Contains(joined, ext) {
			t.Errorf("EHLO missing %q in %q", ext, joined)
		}
	}
}

func TestFullTransactionDeliversEnvelope(t *testing.T) {
	var mu sync.Mutex
	var got *Envelope
	clock := simtime.NewSim(simtime.Epoch)
	env := startServer(t, Config{
		Clock: clock,
		Hooks: Hooks{OnMessage: func(e *Envelope) *smtpproto.Reply {
			mu.Lock()
			defer mu.Unlock()
			got = e
			return nil
		}},
	})
	replies := env.script(t, "192.0.2.55", []string{
		"EHLO bot.example",
		"MAIL FROM:<sender@spam.example>",
		"RCPT TO:<victim@foo.net>",
		"RCPT TO:<victim2@foo.net>",
		"DATA",
		"Subject: hi\r\n\r\nbody line\r\n.",
		"QUIT",
	})
	want := []int{220, 250, 250, 250, 250, 354, 250, 221}
	for i, w := range want {
		if replies[i].Code != w {
			t.Fatalf("codes = %v, want %v", codes(replies), want)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("OnMessage never called")
	}
	if got.ClientIP != "192.0.2.55" {
		t.Errorf("ClientIP = %q", got.ClientIP)
	}
	if got.Helo != "bot.example" || got.Sender != "sender@spam.example" {
		t.Errorf("envelope = %+v", got)
	}
	if len(got.Recipients) != 2 || got.Recipients[1] != "victim2@foo.net" {
		t.Errorf("recipients = %v", got.Recipients)
	}
	if string(got.Data) != "Subject: hi\r\n\r\nbody line\r\n" {
		t.Errorf("data = %q", got.Data)
	}
	if !got.ReceivedAt.Equal(simtime.Epoch) {
		t.Errorf("ReceivedAt = %v", got.ReceivedAt)
	}
	if env.server.Stats().MessagesAccepted != 1 {
		t.Errorf("stats = %+v", env.server.Stats())
	}
}

func TestCommandOrderEnforced(t *testing.T) {
	env := startServer(t, Config{})
	replies := env.script(t, "192.0.2.1", []string{
		"MAIL FROM:<a@b.example>",  // before HELO
		"RCPT TO:<x@foo.net>",      // before MAIL
		"DATA",                     // before MAIL
		"HELO c.example",           // now greet
		"RCPT TO:<x@foo.net>",      // before MAIL still
		"DATA",                     // before MAIL still
		"MAIL FROM:<a@b.example>",  // ok
		"MAIL FROM:<a2@b.example>", // nested MAIL
		"DATA",                     // RCPT missing
	})
	want := []int{220, 503, 503, 503, 250, 503, 503, 250, 503, 503}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	env := startServer(t, Config{})
	replies := env.script(t, "192.0.2.1", []string{
		"HELO",                    // missing arg
		"HELO c.example",          // fine
		"MAIL FROM:no-brackets",   // bad path
		"MAIL FROM:<a@b.example>", // fine
		"RCPT TO:<>",              // empty forward path
		"FROB x",                  // unknown verb
		"@#$%",                    // unparsable
	})
	want := []int{220, 501, 250, 501, 250, 501, 500, 500}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
}

func TestRsetClearsEnvelope(t *testing.T) {
	env := startServer(t, Config{})
	replies := env.script(t, "192.0.2.1", []string{
		"HELO c.example",
		"MAIL FROM:<a@b.example>",
		"RCPT TO:<x@foo.net>",
		"RSET",
		"DATA",                    // must fail: envelope cleared
		"MAIL FROM:<a@b.example>", // and MAIL is accepted again
	})
	want := []int{220, 250, 250, 250, 250, 503, 250}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
}

func TestNoopVrfyHelp(t *testing.T) {
	env := startServer(t, Config{})
	replies := env.script(t, "192.0.2.1", []string{"NOOP", "VRFY user@foo.net", "HELP"})
	want := []int{220, 250, 252, 214}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
}

func TestNullSenderAccepted(t *testing.T) {
	env := startServer(t, Config{})
	replies := env.script(t, "192.0.2.1", []string{
		"HELO c.example",
		"MAIL FROM:<>",
		"RCPT TO:<postmaster@foo.net>",
	})
	want := []int{220, 250, 250, 250}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
}

func TestRcptHookDefersLikeGreylisting(t *testing.T) {
	env := startServer(t, Config{
		Hooks: Hooks{OnRcpt: func(ip, sender, rcpt string) *smtpproto.Reply {
			r := smtpproto.NewReply(451, "4.7.1", "Greylisted, please retry later")
			return &r
		}},
	})
	replies := env.script(t, "192.0.2.1", []string{
		"HELO c.example",
		"MAIL FROM:<a@b.example>",
		"RCPT TO:<x@foo.net>",
		"DATA", // no accepted recipients
	})
	want := []int{220, 250, 250, 451, 503}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
	if replies[3].Enhanced != "4.7.1" {
		t.Fatalf("enhanced = %q, want 4.7.1", replies[3].Enhanced)
	}
	if env.server.Stats().RecipientsDeferred != 1 {
		t.Fatalf("stats = %+v", env.server.Stats())
	}
}

func TestConnectHookRejects(t *testing.T) {
	env := startServer(t, Config{
		Hooks: Hooks{OnConnect: func(ip string) *smtpproto.Reply {
			r := smtpproto.NewReply(554, "5.7.1", "You are on a blocklist")
			return &r
		}},
	})
	conn, err := env.net.Dial("192.0.2.66:40000", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	banner, err := smtpproto.ParseReply(br)
	if err != nil {
		t.Fatal(err)
	}
	if banner.Code != 554 {
		t.Fatalf("banner = %d, want 554", banner.Code)
	}
	// The server must close the connection after a rejecting banner.
	if _, err := conn.Write([]byte("HELO x\r\n")); err == nil {
		if _, err := smtpproto.ParseReply(br); err == nil {
			t.Fatal("server kept serving after rejecting banner")
		}
	}
}

func TestMaxRecipients(t *testing.T) {
	env := startServer(t, Config{MaxRecipients: 2})
	lines := []string{"HELO c.example", "MAIL FROM:<a@b.example>"}
	for i := 0; i < 3; i++ {
		lines = append(lines, fmt.Sprintf("RCPT TO:<u%d@foo.net>", i))
	}
	replies := env.script(t, "192.0.2.1", lines)
	want := []int{220, 250, 250, 250, 250, 452}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
}

func TestMessageSizeLimit(t *testing.T) {
	env := startServer(t, Config{MaxMessageSize: 64})
	big := strings.Repeat("0123456789\r\n", 20)
	replies := env.script(t, "192.0.2.1", []string{
		"HELO c.example",
		"MAIL FROM:<a@b.example>",
		"RCPT TO:<x@foo.net>",
		"DATA",
		big + ".",
		"MAIL FROM:<a@b.example>", // session survives
	})
	want := []int{220, 250, 250, 250, 354, 552, 250}
	got := codes(replies)
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("codes = %v, want %v", got, want)
		}
	}
	if env.server.Stats().MessagesRejected != 1 {
		t.Fatalf("stats = %+v", env.server.Stats())
	}
}

func TestSizeParamRejectedEarly(t *testing.T) {
	env := startServer(t, Config{MaxMessageSize: 1000})
	replies := env.script(t, "192.0.2.1", []string{
		"EHLO c.example",
		"MAIL FROM:<a@b.example> SIZE=999999",
	})
	if replies[2].Code != 552 {
		t.Fatalf("code = %d, want 552", replies[2].Code)
	}
}

func TestTooManyErrorsDisconnects(t *testing.T) {
	env := startServer(t, Config{MaxErrors: 3})
	conn, err := env.net.Dial("192.0.2.1:40000", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := smtpproto.ParseReply(br); err != nil {
		t.Fatal(err)
	}
	var last smtpproto.Reply
	for i := 0; i < 3; i++ {
		if _, err := conn.Write([]byte("BOGUS\r\n")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		last, err = smtpproto.ParseReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
	}
	if last.Code != 421 {
		t.Fatalf("final reply = %d, want 421", last.Code)
	}
	if _, err := smtpproto.ParseReply(br); err == nil {
		t.Fatal("connection still open after 421")
	}
}

func TestPipelinedCommands(t *testing.T) {
	var mu sync.Mutex
	delivered := 0
	env := startServer(t, Config{
		Hooks: Hooks{OnMessage: func(e *Envelope) *smtpproto.Reply {
			mu.Lock()
			defer mu.Unlock()
			delivered++
			return nil
		}},
	})
	conn, err := env.net.Dial("192.0.2.1:40000", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := smtpproto.ParseReply(br); err != nil {
		t.Fatal(err)
	}
	// Send the whole transaction in one burst (PIPELINING).
	burst := "EHLO c.example\r\nMAIL FROM:<a@b.example>\r\nRCPT TO:<x@foo.net>\r\nDATA\r\n"
	if _, err := conn.Write([]byte(burst)); err != nil {
		t.Fatal(err)
	}
	for i, wantCode := range []int{250, 250, 250, 354} {
		r, err := smtpproto.ParseReply(br)
		if err != nil {
			t.Fatalf("pipelined reply %d: %v", i, err)
		}
		if r.Code != wantCode {
			t.Fatalf("pipelined reply %d = %d, want %d", i, r.Code, wantCode)
		}
	}
	if _, err := conn.Write([]byte("body\r\n.\r\nQUIT\r\n")); err != nil {
		t.Fatal(err)
	}
	r, err := smtpproto.ParseReply(br)
	if err != nil || r.Code != 250 {
		t.Fatalf("DATA end = %v, %v", r, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
}

func TestCloseDrainsConnections(t *testing.T) {
	n := netsim.New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Hostname: "x"})
	done := make(chan struct{})
	go func() {
		srv.Serve(l)
		close(done)
	}()
	conn, err := n.Dial("192.0.2.1:40000", "10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if _, err := smtpproto.ParseReply(br); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
	// The open connection was killed by Close.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("connection survived Close")
	}
	conn.Close()
}
