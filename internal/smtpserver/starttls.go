package smtpserver

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"net"
	"time"
)

// STARTTLS support (RFC 3207). The scans.io dataset the paper's adoption
// study is built on is literally the "Daily Full IPv4 SMTP Banner Grab
// and StartTLS" scan, so the server side of STARTTLS belongs in a
// faithful reproduction. When Config.TLS is set, EHLO announces the
// STARTTLS keyword and the STARTTLS verb upgrades the connection;
// per the RFC, the SMTP session state is reset to its initial state
// after the handshake and the client must greet again.

// handleStartTLS processes the STARTTLS verb.
func (sess *session) handleStartTLS() bool {
	if sess.srv.cfg.TLS == nil {
		return sess.protocolError(replyTLSNone)
	}
	if sess.tlsActive {
		return sess.protocolError(replyTLSActive)
	}
	if sess.state == stateConnected {
		return sess.protocolError(replyTLSNeedEhlo)
	}
	if !sess.replyStatic(replyTLSGo) {
		return false
	}
	// The TLS handshake takes over the socket: the go-ahead must be on
	// the wire even if the pipelining rule would have held it back.
	if sess.bw.Flush() != nil {
		return false
	}
	tlsConn := tls.Server(sess.conn, sess.srv.cfg.TLS)
	if err := tlsConn.Handshake(); err != nil {
		return false // handshake failed; drop the connection
	}
	sess.conn = tlsConn
	sess.br.Reset(tlsConn)
	sess.bw.Reset(tlsConn)
	sess.tlsActive = true
	// RFC 3207 §4.2: the server MUST discard any knowledge obtained
	// from the client prior to the TLS negotiation.
	sess.state = stateConnected
	sess.helo = ""
	sess.resetEnvelope()
	return true
}

// SelfSignedCert builds an ephemeral ECDSA certificate for the given
// hosts — enough for greylistd to offer opportunistic TLS out of the box
// (real deployments should pass their own certificate).
func SelfSignedCert(hosts ...string) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("smtpserver: generating key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("smtpserver: serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: serial,
		Subject:      pkix.Name{CommonName: firstOr(hosts, "smtp.invalid")},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, fmt.Errorf("smtpserver: creating certificate: %w", err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

func firstOr(hosts []string, fallback string) string {
	if len(hosts) > 0 {
		return hosts[0]
	}
	return fallback
}
