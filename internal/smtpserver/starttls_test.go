package smtpserver

import (
	"crypto/tls"
	"errors"
	"net"
	netsmtp "net/smtp"
	"strings"
	"sync"
	"testing"

	"repro/internal/netsim"
	"repro/internal/smtpclient"
	"repro/internal/smtpproto"
)

func tlsServerConfig(t *testing.T) *tls.Config {
	t.Helper()
	cert, err := SelfSignedCert("mx.tls.test", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	return &tls.Config{Certificates: []tls.Certificate{cert}}
}

// startTLSEnv runs a TLS-capable server on netsim and returns a connected
// client plus the inbox.
func startTLSEnv(t *testing.T) (*smtpclient.Client, *[]*Envelope, *sync.Mutex) {
	t.Helper()
	n := netsim.New()
	l, err := n.Listen("10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var inbox []*Envelope
	srv := New(Config{
		Hostname: "mx.tls.test",
		TLS:      tlsServerConfig(t),
		Hooks: Hooks{OnMessage: func(e *Envelope) *smtpproto.Reply {
			mu.Lock()
			defer mu.Unlock()
			inbox = append(inbox, e)
			return nil
		}},
	})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	dialer := &smtpclient.SimDialer{Net: n, LocalIP: "192.0.2.33"}
	c, err := smtpclient.Dial(dialer, "10.0.0.1:25")
	if err != nil {
		t.Fatal(err)
	}
	return c, &inbox, &mu
}

func TestStartTLSAnnouncedOnlyWhenConfigured(t *testing.T) {
	c, _, _ := startTLSEnv(t)
	defer c.Close()
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Extensions["STARTTLS"]; !ok {
		t.Fatalf("STARTTLS missing from %v", c.Extensions)
	}

	// And a server without TLS config does not announce it.
	n := netsim.New()
	l, _ := n.Listen("10.0.0.2:25")
	srv := New(Config{Hostname: "plain.test"})
	go srv.Serve(l)
	defer srv.Close()
	dialer := &smtpclient.SimDialer{Net: n, LocalIP: "192.0.2.34"}
	c2, err := smtpclient.Dial(dialer, "10.0.0.2:25")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Extensions["STARTTLS"]; ok {
		t.Fatal("STARTTLS announced without TLS config")
	}
}

func TestStartTLSFullTransaction(t *testing.T) {
	c, inbox, mu := startTLSEnv(t)
	defer c.Close()
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.StartTLS(&tls.Config{InsecureSkipVerify: true}); err != nil {
		t.Fatalf("StartTLS: %v", err)
	}
	if !c.TLSActive() {
		t.Fatal("TLSActive = false after upgrade")
	}
	// RFC 3207: state reset — greet again, then deliver.
	if err := c.Hello("client.example"); err != nil {
		t.Fatalf("post-TLS EHLO: %v", err)
	}
	if _, ok := c.Extensions["STARTTLS"]; ok {
		t.Fatal("STARTTLS still announced inside TLS session")
	}
	if err := c.Mail("a@b.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rcpt("u@mx.tls.test"); err != nil {
		t.Fatal(err)
	}
	if err := c.Data([]byte("Subject: tls\r\n\r\nencrypted hop\r\n")); err != nil {
		t.Fatal(err)
	}
	c.Quit()
	mu.Lock()
	defer mu.Unlock()
	if len(*inbox) != 1 || !strings.Contains(string((*inbox)[0].Data), "encrypted hop") {
		t.Fatalf("inbox = %v", *inbox)
	}
}

func TestStartTLSStateResetEnforced(t *testing.T) {
	c, _, _ := startTLSEnv(t)
	defer c.Close()
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.StartTLS(&tls.Config{InsecureSkipVerify: true}); err != nil {
		t.Fatal(err)
	}
	// MAIL without re-greeting must be rejected with 503.
	err := c.Mail("a@b.example")
	var smtpErr *smtpclient.Error
	if err == nil || !errorsAs(err, &smtpErr) || smtpErr.Reply.Code != 503 {
		t.Fatalf("MAIL after TLS without EHLO = %v, want 503", err)
	}
}

func TestStartTLSRejectedWithoutConfigOrState(t *testing.T) {
	// No TLS config: 502.
	n := netsim.New()
	l, _ := n.Listen("10.0.0.3:25")
	srv := New(Config{Hostname: "plain.test"})
	go srv.Serve(l)
	defer srv.Close()
	dialer := &smtpclient.SimDialer{Net: n, LocalIP: "192.0.2.35"}
	c, err := smtpclient.Dial(dialer, "10.0.0.3:25")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("x.example"); err != nil {
		t.Fatal(err)
	}
	err = c.StartTLS(&tls.Config{InsecureSkipVerify: true})
	var smtpErr *smtpclient.Error
	if err == nil || !errorsAs(err, &smtpErr) || smtpErr.Reply.Code != 502 {
		t.Fatalf("STARTTLS without config = %v, want 502", err)
	}

	// Before EHLO: 503.
	c2, _, _ := startTLSEnv(t)
	defer c2.Close()
	err = c2.StartTLS(&tls.Config{InsecureSkipVerify: true})
	if err == nil || !errorsAs(err, &smtpErr) || smtpErr.Reply.Code != 503 {
		t.Fatalf("STARTTLS before EHLO = %v, want 503", err)
	}
}

func TestStartTLSDoubleUpgradeRejected(t *testing.T) {
	c, _, _ := startTLSEnv(t)
	defer c.Close()
	if err := c.Hello("x.example"); err != nil {
		t.Fatal(err)
	}
	if err := c.StartTLS(&tls.Config{InsecureSkipVerify: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Hello("x.example"); err != nil {
		t.Fatal(err)
	}
	err := c.StartTLS(&tls.Config{InsecureSkipVerify: true})
	var smtpErr *smtpclient.Error
	if err == nil || !errorsAs(err, &smtpErr) || smtpErr.Reply.Code != 503 {
		t.Fatalf("second STARTTLS = %v, want 503", err)
	}
}

func TestStartTLSWithStdlibClient(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Hostname: "mx.tls.test", TLS: tlsServerConfig(t)})
	go srv.Serve(l)
	defer srv.Close()

	c, err := netsmtp.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Extension("STARTTLS"); !ok {
		t.Fatal("stdlib client does not see STARTTLS")
	}
	if err := c.StartTLS(&tls.Config{InsecureSkipVerify: true}); err != nil {
		t.Fatalf("stdlib StartTLS: %v", err)
	}
	if err := c.Mail("a@b.example"); err != nil {
		t.Fatalf("stdlib MAIL over TLS: %v", err)
	}
	if err := c.Rcpt("u@mx.tls.test"); err != nil {
		t.Fatalf("stdlib RCPT over TLS: %v", err)
	}
	w, err := c.Data()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("Subject: s\r\n\r\nstdlib over TLS\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Quit(); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().MessagesAccepted != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

func TestSelfSignedCertHosts(t *testing.T) {
	cert, err := SelfSignedCert("mx.example", "192.0.2.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Certificate) != 1 {
		t.Fatal("no certificate")
	}
	if _, err := SelfSignedCert(); err != nil {
		t.Fatalf("no-host cert: %v", err)
	}
}

func errorsAs(err error, target any) bool { return errors.As(err, target) }
