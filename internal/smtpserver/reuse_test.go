package smtpserver

import (
	"bufio"
	"fmt"
	"strings"
	"testing"

	"repro/internal/smtpproto"
)

// txn is one mail transaction of the reuse table.
type txn struct {
	// lines are written in one burst (RFC 2920 pipelining); payload
	// lines ride along after DATA.
	lines []string
	// replies is how many complete SMTP replies the burst elicits.
	replies int
}

// TestReusedConnByteIdentity pins the zero-alloc refactor's contract:
// a pooled connection carrying N sequential mail transactions
// (RSET-separated, closed by QUIT) must receive byte-identical replies
// to the same N transactions issued over N fresh connections. It runs
// each shape through the batch-hook server so the pipelined RCPT path,
// the deferral path and the protocol-error path are all covered, and
// the fresh-connection mode recycles server sessions through the
// sync.Pool between dials.
func TestReusedConnByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		txns []txn
	}{
		{
			name: "simple-delivery",
			txns: []txn{
				{[]string{"MAIL FROM:<a@ham.org>", "RCPT TO:<u@foo.net>", "DATA", "Subject: hi", "", "body", "."}, 4},
				{[]string{"MAIL FROM:<b@ham.org>", "RCPT TO:<v@foo.net>", "DATA", "again", "."}, 4},
				{[]string{"MAIL FROM:<c@ham.org>", "RCPT TO:<w@foo.net>", "DATA", "..", "."}, 4},
			},
		},
		{
			name: "pipelined-rcpt-burst",
			txns: []txn{
				{append([]string{"MAIL FROM:<a@ham.org>"},
					"RCPT TO:<u1@foo.net>", "RCPT TO:<u2@foo.net>", "RCPT TO:<u3@foo.net>",
					"RCPT TO:<u4@foo.net>", "DATA", "x", "."), 7},
				{[]string{"MAIL FROM:<b@ham.org>", "RCPT TO:<u5@foo.net>", "RCPT TO:<u6@foo.net>", "DATA", "y", "."}, 5},
			},
		},
		{
			name: "greylist-deferrals",
			txns: []txn{
				// Mixed burst: accepts interleaved with 451 deferrals.
				{[]string{"MAIL FROM:<a@spam.biz>", "RCPT TO:<defer1@foo.net>", "RCPT TO:<u@foo.net>", "RCPT TO:<defer2@foo.net>", "DATA", "z", "."}, 6},
				// Every recipient deferred: DATA must draw the 503.
				{[]string{"MAIL FROM:<b@spam.biz>", "RCPT TO:<defer3@foo.net>", "DATA"}, 3},
			},
		},
		{
			name: "chatty-session",
			txns: []txn{
				{[]string{"NOOP", "VRFY u@foo.net", "HELP", "MAIL FROM:<a@ham.org>", "RCPT TO:<u@foo.net>", "DATA", "m", "."}, 7},
				{[]string{"XBOGUS", "MAIL FROM:<not-an-address", "MAIL FROM:<b@ham.org>", "RCPT TO:<v@foo.net>", "DATA", "n", "."}, 6},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := startServer(t, Config{Hooks: Hooks{
				OnRcptBatch: func(_, _ string, rcpts []string) []*smtpproto.Reply {
					out := make([]*smtpproto.Reply, len(rcpts))
					for i, r := range rcpts {
						if strings.HasPrefix(r, "defer") {
							rep := smtpproto.NewReply(451, "4.7.1", "Greylisted, please retry")
							out[i] = &rep
						}
					}
					return out
				},
			}})
			reused := runTxnsReused(t, env, "10.9.0.1", tc.txns)
			fresh := runTxnsFresh(t, env, "10.9.0.2", tc.txns)
			for i := range tc.txns {
				if reused[i] != fresh[i] {
					t.Errorf("txn %d reply bytes diverge:\nreused: %q\nfresh:  %q", i, reused[i], fresh[i])
				}
			}
		})
	}
}

// runTxnsReused issues every transaction over one connection, separated
// by RSET, and returns each transaction's raw reply bytes (the RSET and
// QUIT replies are read but excluded — they have no fresh-mode twin).
func runTxnsReused(t *testing.T, env *testEnv, ip string, txns []txn) []string {
	t.Helper()
	conn, err := env.net.Dial(ip+":41000", env.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	readRawReply(t, br) // banner
	sendLines(t, conn, []string{"EHLO client.example"})
	readRawReply(t, br)
	out := make([]string, 0, len(txns))
	for i, tx := range txns {
		if i > 0 {
			sendLines(t, conn, []string{"RSET"})
			readRawReply(t, br)
		}
		sendLines(t, conn, tx.lines)
		var sb strings.Builder
		for j := 0; j < tx.replies; j++ {
			sb.WriteString(readRawReply(t, br))
		}
		out = append(out, sb.String())
	}
	sendLines(t, conn, []string{"QUIT"})
	readRawReply(t, br)
	return out
}

// runTxnsFresh issues each transaction over its own connection; the
// sequential dials recycle server sessions through the pool.
func runTxnsFresh(t *testing.T, env *testEnv, ip string, txns []txn) []string {
	t.Helper()
	out := make([]string, 0, len(txns))
	for i, tx := range txns {
		conn, err := env.net.Dial(fmt.Sprintf("%s:%d", ip, 42000+i), env.addr)
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReader(conn)
		readRawReply(t, br) // banner
		sendLines(t, conn, []string{"EHLO client.example"})
		readRawReply(t, br)
		sendLines(t, conn, tx.lines)
		var sb strings.Builder
		for j := 0; j < tx.replies; j++ {
			sb.WriteString(readRawReply(t, br))
		}
		out = append(out, sb.String())
		sendLines(t, conn, []string{"QUIT"})
		readRawReply(t, br)
		conn.Close()
	}
	return out
}

// sendLines writes lines as one CRLF-joined burst (a pipelining client's
// single write).
func sendLines(t *testing.T, conn interface{ Write([]byte) (int, error) }, lines []string) {
	t.Helper()
	if _, err := conn.Write([]byte(strings.Join(lines, "\r\n") + "\r\n")); err != nil {
		t.Fatalf("write %v: %v", lines, err)
	}
}

// readRawReply reads one complete SMTP reply (following "xyz-"
// continuation lines) and returns its raw bytes.
func readRawReply(t *testing.T, br *bufio.Reader) string {
	t.Helper()
	var sb strings.Builder
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading reply: %v (got %q)", err, sb.String())
		}
		sb.WriteString(line)
		if len(line) < 4 || line[3] != '-' {
			return sb.String()
		}
	}
}
