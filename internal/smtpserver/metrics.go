package smtpserver

import (
	"repro/internal/metrics"
	"repro/internal/smtpproto"
)

// instruments holds the hot-path metric handles, nil until Register is
// called: an uninstrumented server pays one atomic pointer load per
// touch point and nothing else.
type instruments struct {
	// commands maps verb -> counter; built once at Register and read-only
	// afterwards, so sessions index it without locking. Unknown verbs
	// (including unparsable lines) land in other.
	commands map[string]*metrics.Counter
	other    *metrics.Counter

	reply2xx *metrics.Counter
	reply3xx *metrics.Counter
	reply4xx *metrics.Counter
	reply5xx *metrics.Counter

	rcptBatchSize  *metrics.Histogram
	sessionSeconds *metrics.Histogram
}

// sessionVerbs is the command repertoire exported with a pre-registered
// counter each, so every series exists (at 0) from the first scrape.
var sessionVerbs = []string{
	smtpproto.VerbHELO, smtpproto.VerbEHLO, smtpproto.VerbMAIL,
	smtpproto.VerbRCPT, smtpproto.VerbDATA, smtpproto.VerbRSET,
	smtpproto.VerbNOOP, smtpproto.VerbQUIT, smtpproto.VerbVRFY,
	smtpproto.VerbHELP, "STARTTLS",
}

// Register exports the SMTP server's counters into reg:
//
//	smtp_connections_total          sessions accepted (mirror of Stats)
//	smtp_open_sessions              sessions currently being served
//	smtp_commands_total{verb}       commands by verb ("other" = unknown)
//	smtp_replies_total{class}       replies by first digit (2xx..5xx)
//	smtp_messages_accepted_total    accepted DATA transactions (mirror)
//	smtp_messages_rejected_total    rejected DATA transactions (mirror)
//	smtp_recipients_deferred_total  greylist-deferred recipients (mirror)
//	smtp_protocol_errors_total      syntax/sequencing errors (mirror)
//	smtp_rcpt_batch_size            RCPTs decided per pipelined batch
//	smtp_session_seconds            wall-clock session duration
//
// The mirrors read the same mutex-guarded Stats the Stats() method
// snapshots, so exposition can never disagree with Stats().
//
// labelPairs, when given, are base labels stamped on every series — a
// domain with several MX hosts registers each server with a
// distinguishing "host" label so the mirrors don't clobber each other.
func (s *Server) Register(reg *metrics.Registry, labelPairs ...string) {
	lbl := func(extra ...string) []string {
		return append(append([]string(nil), labelPairs...), extra...)
	}
	stat := func(pick func(Stats) uint64) func() uint64 {
		return func() uint64 { return pick(s.Stats()) }
	}
	reg.CounterFunc("smtp_connections_total",
		"SMTP sessions accepted.",
		stat(func(st Stats) uint64 { return st.Connections }), labelPairs...)
	reg.CounterFunc("smtp_messages_accepted_total",
		"Messages accepted at DATA.",
		stat(func(st Stats) uint64 { return st.MessagesAccepted }), labelPairs...)
	reg.CounterFunc("smtp_messages_rejected_total",
		"Messages rejected at DATA.",
		stat(func(st Stats) uint64 { return st.MessagesRejected }), labelPairs...)
	reg.CounterFunc("smtp_recipients_deferred_total",
		"Recipients deferred by the RCPT policy hook (greylisting).",
		stat(func(st Stats) uint64 { return st.RecipientsDeferred }), labelPairs...)
	reg.CounterFunc("smtp_protocol_errors_total",
		"SMTP syntax and sequencing errors.",
		stat(func(st Stats) uint64 { return st.ProtocolErrors }), labelPairs...)
	reg.GaugeFunc("smtp_open_sessions",
		"SMTP sessions currently being served.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		}, labelPairs...)

	inst := &instruments{
		commands: make(map[string]*metrics.Counter, len(sessionVerbs)),
		other: reg.Counter("smtp_commands_total",
			"SMTP commands received by verb.", lbl("verb", "other")...),
		reply2xx: reg.Counter("smtp_replies_total",
			"SMTP replies sent by class.", lbl("class", "2xx")...),
		reply3xx: reg.Counter("smtp_replies_total",
			"SMTP replies sent by class.", lbl("class", "3xx")...),
		reply4xx: reg.Counter("smtp_replies_total",
			"SMTP replies sent by class.", lbl("class", "4xx")...),
		reply5xx: reg.Counter("smtp_replies_total",
			"SMTP replies sent by class.", lbl("class", "5xx")...),
		rcptBatchSize: reg.Histogram("smtp_rcpt_batch_size",
			"RCPT commands decided per pipelined batch.",
			metrics.DefSizeBuckets, labelPairs...),
		sessionSeconds: reg.Histogram("smtp_session_seconds",
			"Wall-clock SMTP session duration.", metrics.DefLatencyBuckets,
			labelPairs...),
	}
	for _, verb := range sessionVerbs {
		inst.commands[verb] = reg.Counter("smtp_commands_total",
			"SMTP commands received by verb.", lbl("verb", verb)...)
	}
	s.inst.Store(inst)
}

// countCommand attributes one received command (or "?" for an
// unparsable line) to its verb counter.
func (inst *instruments) countCommand(verb string) {
	if c, ok := inst.commands[verb]; ok {
		c.Inc()
		return
	}
	inst.other.Inc()
}

// countReply attributes one sent reply to its class counter.
func (inst *instruments) countReply(code int) {
	switch code / 100 {
	case 2:
		inst.reply2xx.Inc()
	case 3:
		inst.reply3xx.Inc()
	case 4:
		inst.reply4xx.Inc()
	case 5:
		inst.reply5xx.Inc()
	}
}
