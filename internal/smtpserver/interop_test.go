package smtpserver

import (
	"net"
	netsmtp "net/smtp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/greylist"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
)

// These interoperability tests run the server on a real TCP socket and
// drive it with the standard library's net/smtp client — an independent
// RFC 5321 implementation we did not write. If stdlib can deliver mail
// through our greylisting server, real MTAs can too.

func startTCPServer(t *testing.T, hooks Hooks) (addr string, srv *Server) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = New(Config{Hostname: "interop.test", Hooks: hooks})
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String(), srv
}

func TestInteropStdlibClientDelivers(t *testing.T) {
	var mu sync.Mutex
	var got *Envelope
	addr, _ := startTCPServer(t, Hooks{
		OnMessage: func(e *Envelope) *smtpproto.Reply {
			mu.Lock()
			defer mu.Unlock()
			got = e
			return nil
		},
	})

	body := []byte("Subject: interop\r\n\r\nvia net/smtp\r\n")
	err := netsmtp.SendMail(addr, nil, "alice@client.example",
		[]string{"bob@interop.test"}, body)
	if err != nil {
		t.Fatalf("net/smtp.SendMail: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got == nil {
		t.Fatal("message never arrived")
	}
	if got.Sender != "alice@client.example" || len(got.Recipients) != 1 {
		t.Fatalf("envelope = %+v", got)
	}
	if !strings.Contains(string(got.Data), "via net/smtp") {
		t.Fatalf("data = %q", got.Data)
	}
}

func TestInteropStdlibClientSeesGreylisting(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	policy := greylist.Policy{Threshold: 300 * time.Second, RetryWindow: 48 * time.Hour}
	g := greylist.New(policy, clock)
	addr, _ := startTCPServer(t, Hooks{
		OnRcpt: func(clientIP, sender, rcpt string) *smtpproto.Reply {
			v := g.Check(greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: rcpt})
			if v.Decision == greylist.Pass {
				return nil
			}
			r := smtpproto.NewReply(451, "4.7.1", "Greylisted")
			return &r
		},
	})

	send := func() error {
		return netsmtp.SendMail(addr, nil, "alice@client.example",
			[]string{"bob@interop.test"}, []byte("Subject: x\r\n\r\nhello\r\n"))
	}
	// First attempt: stdlib surfaces the 451 as a textproto error.
	err := send()
	if err == nil {
		t.Fatal("first attempt delivered through greylisting")
	}
	if !strings.Contains(err.Error(), "451") {
		t.Fatalf("error = %v, want a 451", err)
	}
	// Retry past the (virtual) threshold succeeds.
	clock.Advance(301 * time.Second)
	if err := send(); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}

func TestInteropStdlibExtensions(t *testing.T) {
	addr, _ := startTCPServer(t, Hooks{})
	c, err := netsmtp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Hello("client.example"); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{"PIPELINING", "SIZE", "8BITMIME", "ENHANCEDSTATUSCODES"} {
		if ok, _ := c.Extension(ext); !ok {
			t.Errorf("extension %s not announced to stdlib client", ext)
		}
	}
	if err := c.Verify("user@interop.test"); err != nil {
		// 252 is a non-error for Verify in stdlib? stdlib treats
		// 250/251/252 as success; anything else is reported.
		t.Logf("Verify: %v (252 expected to be accepted)", err)
	}
	if err := c.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := c.Quit(); err != nil {
		t.Fatalf("Quit: %v", err)
	}
}

func TestInteropAbruptDisconnectMidData(t *testing.T) {
	// A client that dies mid-DATA must not wedge or crash the server.
	addr, srv := startTCPServer(t, Hooks{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 512)
	conn.Read(buf) // banner
	for _, cmd := range []string{"HELO x.example", "MAIL FROM:<a@b.example>", "RCPT TO:<u@interop.test>", "DATA"} {
		if _, err := conn.Write([]byte(cmd + "\r\n")); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	conn.Write([]byte("half a message with no terminator"))
	conn.Close()

	// The server must still serve new clients.
	if err := netsmtp.SendMail(addr, nil, "a@b.example", []string{"u@interop.test"},
		[]byte("Subject: after\r\n\r\nstill alive\r\n")); err != nil {
		t.Fatalf("server wedged after abrupt disconnect: %v", err)
	}
	if srv.Stats().MessagesAccepted != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

func TestInteropManySequentialStdlibSessions(t *testing.T) {
	addr, srv := startTCPServer(t, Hooks{})
	for i := 0; i < 20; i++ {
		if err := netsmtp.SendMail(addr, nil, "a@b.example",
			[]string{"u@interop.test"}, []byte("Subject: n\r\n\r\nbody\r\n")); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := srv.Stats().MessagesAccepted; got != 20 {
		t.Fatalf("accepted = %d", got)
	}
}
