package obs

import "sync"

// TopK is a windowed Space-Saving heavy-hitter set. Every key hashes
// to exactly one stripe, so each stripe runs the classic single-table
// algorithm independently (per-shard accumulation) and a read simply
// concatenates stripes — no cross-stripe merging is ever needed.
//
// The Space-Saving invariants hold per stripe: a monitored key's
// estimated count never understates its true count and overstates it
// by at most the entry's err (the evicted minimum it inherited), and
// any key whose true count exceeds the stripe's observation total
// divided by the stripe capacity is guaranteed to be monitored. A
// steady heavy key can never be evicted by a rotating swarm of
// one-shot keys: eviction always takes the minimum-count entry, and
// the steady key's count stays above every fresh rotator's min+1.
//
// Observing an already-monitored key is allocation-free (a map hit and
// an increment under the stripe's mutex); only first sightings insert.
type TopK struct {
	o    *Observatory
	name string
	cap  int    // monitored keys per stripe
	mask uint32 // stripe index mask (power-of-two stripes)
	ring []topkWin
}

type topkWin struct {
	stripes []topkStripe
}

type topkStripe struct {
	mu      sync.Mutex
	idx     map[string]int // key → entries index, nil until first use
	entries []ssEntry
	total   uint64 // observations folded into this stripe
}

// ssEntry is one monitored key: count overestimates the key's true
// frequency by at most err.
type ssEntry struct {
	key   string
	count uint64
	err   uint64
}

// Name returns the set's registered name.
func (t *TopK) Name() string { return t.name }

// Observe counts one occurrence of key in the current window.
func (t *TopK) Observe(key string) {
	st := &t.ring[t.o.cur.Load()].stripes[fnv32a(key)&t.mask]
	st.mu.Lock()
	st.total++
	if st.idx == nil {
		st.idx = make(map[string]int, t.cap)
	}
	if i, ok := st.idx[key]; ok {
		st.entries[i].count++
	} else if len(st.entries) < t.cap {
		st.idx[key] = len(st.entries)
		st.entries = append(st.entries, ssEntry{key: key, count: 1})
	} else {
		// Space-Saving eviction: replace the minimum-count entry; the
		// newcomer inherits min as its error bound and min+1 as its
		// estimate.
		m := 0
		for i := range st.entries {
			if st.entries[i].count < st.entries[m].count {
				m = i
			}
		}
		e := &st.entries[m]
		delete(st.idx, e.key)
		e.err = e.count
		e.count++
		e.key = key
		st.idx[key] = m
	}
	st.mu.Unlock()
}

// collect appends copies of slot's monitored entries to dst and
// returns it along with the slot's observation total.
func (t *TopK) collect(slot int, dst []ssEntry) ([]ssEntry, uint64) {
	var total uint64
	for i := range t.ring[slot].stripes {
		st := &t.ring[slot].stripes[i]
		st.mu.Lock()
		dst = append(dst, st.entries...)
		total += st.total
		st.mu.Unlock()
	}
	return dst, total
}

// reset clears a recycled window slot (rotation only).
func (w *topkWin) reset() {
	for i := range w.stripes {
		st := &w.stripes[i]
		st.mu.Lock()
		for k := range st.idx {
			delete(st.idx, k)
		}
		st.entries = st.entries[:0]
		st.total = 0
		st.mu.Unlock()
	}
}
