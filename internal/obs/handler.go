package obs

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/metrics"
)

// Handler serves the versioned JSON snapshot. Query parameters:
//
//	windows=N  closed windows to include (default: the whole ring)
//	k=K        top-K entries per set (default: the configured TopK)
func (o *Observatory) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		lastN := queryInt(r, "windows", 0)
		k := queryInt(r, "k", 0)
		snap := o.Snapshot(lastN, k)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			// Too late for an error status; the connection is gone.
			return
		}
	})
}

// Endpoint mounts the handler at /observatory for the admin listener.
func (o *Observatory) Endpoint() metrics.Endpoint {
	return metrics.Endpoint{Path: "/observatory", Handler: o.Handler()}
}

func queryInt(r *http.Request, name string, def int) int {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return def
	}
	return n
}
