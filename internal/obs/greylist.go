package obs

import (
	"strings"
	"time"

	"repro/internal/greylist"
)

// Sketch and top-K set names fed by the greylist observer and the
// daemons' wiring. greyctl and dashboards key on these.
const (
	// SketchCheckLatency is the RCPT→verdict decision latency in
	// nanoseconds (batch verdicts carry the amortized per-RCPT cost).
	SketchCheckLatency = "greylist_check_latency"
	// SketchRetryDelay is the greylist retry delay in milliseconds:
	// how long a retry-accepted delivery waited from first sight to
	// acceptance — the live version of the paper's Fig. 5 benign-delay
	// CDF. Milliseconds because thresholds run minutes to days, far
	// past the HDR layout's nanosecond range.
	SketchRetryDelay = "greylist_retry_delay"
	// SketchMTARetry is the sending MTA queue's scheduled retry
	// backoff in milliseconds (Table IV territory).
	SketchMTARetry = "mtaqueue_retry_interval"
)

// Top-K heavy-hitter sets per verdict class and per bypass stage.
const (
	TopClientsPassed   = "clients_passed"
	TopClientsDeferred = "clients_deferred"
	TopSendersPassed   = "senders_passed"
	TopSendersDeferred = "senders_deferred"
	// TopBypassPrefix + stage reason names one set per bypass class:
	// whitelist, auto, dnswl, rdns, earned, other.
	TopBypassPrefix = "clients_bypass_"
)

// GreylistObserver adapts the observatory to greylist.Observer: every
// verdict lands in the latency sketch and in the top-K set of its
// class; retry-accepted passes additionally record their waited delay.
// All steady-state paths are allocation-free (sketch records are
// atomics; observing an already-monitored top-K key is a map hit).
type GreylistObserver struct {
	latency    *Sketch
	retryDelay *Sketch

	clientsPassed   *TopK
	clientsDeferred *TopK
	sendersPassed   *TopK
	sendersDeferred *TopK

	bypassWhitelist *TopK
	bypassAuto      *TopK
	bypassDNSWL     *TopK
	bypassRDNS      *TopK
	bypassEarned    *TopK
	bypassOther     *TopK
}

// Greylist returns the observatory's greylist verdict observer,
// registering its sketches and top-K sets on first use. Install it
// with engine.SetObserver.
func (o *Observatory) Greylist() *GreylistObserver {
	return &GreylistObserver{
		latency:         o.Sketch(SketchCheckLatency, "ns"),
		retryDelay:      o.Sketch(SketchRetryDelay, "ms"),
		clientsPassed:   o.TopK(TopClientsPassed),
		clientsDeferred: o.TopK(TopClientsDeferred),
		sendersPassed:   o.TopK(TopSendersPassed),
		sendersDeferred: o.TopK(TopSendersDeferred),
		bypassWhitelist: o.TopK(TopBypassPrefix + "whitelist"),
		bypassAuto:      o.TopK(TopBypassPrefix + "auto"),
		bypassDNSWL:     o.TopK(TopBypassPrefix + "dnswl"),
		bypassRDNS:      o.TopK(TopBypassPrefix + "rdns"),
		bypassEarned:    o.TopK(TopBypassPrefix + "earned"),
		bypassOther:     o.TopK(TopBypassPrefix + "other"),
	}
}

var _ greylist.Observer = (*GreylistObserver)(nil)

// ObserveVerdict implements greylist.Observer.
func (g *GreylistObserver) ObserveVerdict(t greylist.Triplet, v greylist.Verdict, latencyNs int64) {
	g.latency.Record(latencyNs)
	switch v.Decision {
	case greylist.Defer:
		g.clientsDeferred.Observe(t.ClientIP)
		g.sendersDeferred.Observe(senderDomain(t.Sender))
	case greylist.Pass:
		switch v.Reason {
		case greylist.ReasonKnownTriplet, greylist.ReasonRetryAccepted:
			g.clientsPassed.Observe(t.ClientIP)
			g.sendersPassed.Observe(senderDomain(t.Sender))
			if v.Reason == greylist.ReasonRetryAccepted && v.Waited > 0 {
				g.retryDelay.Record(v.Waited.Milliseconds())
			}
		case greylist.ReasonWhitelisted:
			g.bypassWhitelist.Observe(t.ClientIP)
		case greylist.ReasonAutoWhitelisted:
			g.bypassAuto.Observe(t.ClientIP)
		case greylist.ReasonDNSWL:
			g.bypassDNSWL.Observe(t.ClientIP)
		case greylist.ReasonRDNS:
			g.bypassRDNS.Observe(t.ClientIP)
		case greylist.ReasonEarnedWhitelist:
			g.bypassEarned.Observe(t.ClientIP)
		default:
			g.bypassOther.Observe(t.ClientIP)
		}
	}
}

// senderDomain extracts the domain of an envelope sender without
// allocating (substrings share the sender's backing array).
func senderDomain(sender string) string {
	if i := strings.LastIndexByte(sender, '@'); i >= 0 && i+1 < len(sender) {
		return sender[i+1:]
	}
	return sender
}

// WatchGreylist registers the engine's cumulative verdict counters as
// per-window delta sources — the zero-hot-path-cost half of the
// observatory: nothing is recorded per check, the totals are polled at
// rotation.
func (o *Observatory) WatchGreylist(stats func() greylist.Stats) {
	o.Cumulative("greylist.checks", func() uint64 { return stats().Checks })
	o.Cumulative("greylist.deferred.first_seen", func() uint64 { return stats().DeferredNew })
	o.Cumulative("greylist.deferred.too_soon", func() uint64 { return stats().DeferredEarly })
	o.Cumulative("greylist.deferred.window_expired", func() uint64 { return stats().DeferredExpired })
	o.Cumulative("greylist.passed.retry", func() uint64 { return stats().PassedRetry })
	o.Cumulative("greylist.passed.known", func() uint64 { return stats().PassedKnown })
	o.Cumulative("greylist.passed.whitelist", func() uint64 { return stats().PassedWhitelist })
	o.Cumulative("greylist.passed.auto", func() uint64 { return stats().PassedAutoClient })
	o.Cumulative("greylist.passed.dnswl", func() uint64 { return stats().PassedDNSWL })
	o.Cumulative("greylist.passed.rdns", func() uint64 { return stats().PassedRDNS })
	o.Cumulative("greylist.passed.earned", func() uint64 { return stats().PassedEarned })
	o.Cumulative("greylist.passed.bypass_other", func() uint64 { return stats().PassedBypassOther })
	o.Cumulative("greylist.spf_rekeyed", func() uint64 { return stats().SPFRekeyed })
	o.Cumulative("greylist.earned_granted", func() uint64 { return stats().EarnedGranted })
}

// WatchChain registers per-stage hit/rekey/error deltas for the bypass
// chain installed at call time. Stages are tracked by name, so a chain
// swapped via SetChain keeps feeding the same windows as long as stage
// names persist.
func (o *Observatory) WatchChain(chain func() *greylist.Chain) {
	ch := chain()
	for i := 0; i < ch.Len(); i++ {
		name := ch.StageName(i)
		o.Cumulative("stage."+name+".hits", func() uint64 { return stageStat(chain(), name).Hits })
		o.Cumulative("stage."+name+".rekeys", func() uint64 { return stageStat(chain(), name).Rekeys })
		o.Cumulative("stage."+name+".errors", func() uint64 { return stageStat(chain(), name).Errors })
	}
}

func stageStat(ch *greylist.Chain, name string) greylist.StageStat {
	for _, st := range ch.StageStats() {
		if st.Name == name {
			return st
		}
	}
	return greylist.StageStat{}
}

// WatchWAL registers the write-ahead log's op counters as per-window
// delta sources.
func (o *Observatory) WatchWAL(w *greylist.WAL) {
	o.Cumulative("wal.records", func() uint64 { return w.Counts().Records })
	o.Cumulative("wal.bytes", func() uint64 { return w.Counts().Bytes })
	o.Cumulative("wal.fsyncs", func() uint64 { return w.Counts().Fsyncs })
	o.Cumulative("wal.compactions", func() uint64 { return w.Counts().Compactions })
}

// RetrySink returns a hook for mtaqueue.Config.RetryObserver: every
// scheduled retry backoff lands in the mtaqueue retry-interval sketch
// (milliseconds).
func (o *Observatory) RetrySink() func(backoff time.Duration) {
	s := o.Sketch(SketchMTARetry, "ms")
	return func(backoff time.Duration) { s.Record(backoff.Milliseconds()) }
}
