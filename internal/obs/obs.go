// Package obs is the live observatory: a ring of fixed-duration time
// windows that every daemon feeds on the hot path at ~0 cost, turning
// the paper's after-the-fact aggregates (Table II block rates, Fig. 5
// delay CDFs) into a continuously updated operational view — who the
// top talkers are per verdict, what the retry-delay p50/p99 is right
// now, which bypass stage is doing the work, and how the last N
// windows differ from each other.
//
// Each window holds three kinds of state:
//
//   - Sketches: streaming quantile sketches over the shared log-linear
//     HDR layout (internal/hdr). Recording is a handful of atomic adds
//     into per-window bucket arrays — no locks, no allocations — and
//     readers fold the buckets into an hdr.Hist at snapshot time
//     (merge on read).
//   - Top-K: Space-Saving heavy-hitter tables keyed by client IP or
//     sender domain, sharded by key hash so every key lives in exactly
//     one stripe (per-shard single-writer tables behind a short
//     mutex); stripes concatenate at read time. Estimates carry the
//     classic Space-Saving guarantee: true ≤ estimate ≤ true + err.
//   - Counters: per-window deltas derived by polling registered
//     cumulative sources (the engines' existing atomic stats) at
//     window rotation — the hot path pays nothing at all for these.
//
// Rotation is driven by a single background goroutine (Start) or
// explicitly (Rotate) for virtual-time labs and tests. Stragglers that
// record into a window just as it rotates land in an adjacent window;
// nothing blocks and nothing is lost.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simtime"
)

// SnapshotVersion is the /observatory JSON schema version.
const SnapshotVersion = 1

// Config parameterizes an Observatory.
type Config struct {
	// Window is one rollup window's duration (default 10s).
	Window time.Duration
	// Windows is the ring length including the current window
	// (default 30 — five minutes of 10s windows).
	Windows int
	// TopK is the default number of heavy hitters reported per set
	// (default 10).
	TopK int
	// TopKCapacity is the number of monitored keys per stripe; the
	// Space-Saving error bound for a stripe is its observation count
	// divided by this capacity (default 4×TopK).
	TopKCapacity int
	// TopKStripes is the per-window stripe count, rounded up to a
	// power of two (default 4).
	TopKStripes int
	// Clock drives window timestamps and rotation (default wall).
	Clock simtime.Clock
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Windows < 2 {
		c.Windows = 30
	}
	if c.TopK <= 0 {
		c.TopK = 10
	}
	if c.TopKCapacity <= 0 {
		c.TopKCapacity = 4 * c.TopK
	}
	if c.TopKStripes <= 0 {
		c.TopKStripes = 4
	}
	for c.TopKStripes&(c.TopKStripes-1) != 0 {
		c.TopKStripes++
	}
	if c.Clock == nil {
		c.Clock = simtime.Real{}
	}
	return c
}

// slotMeta is one ring slot's identity. seq 0 marks a slot that has
// never held a window (or is mid-reset); readers re-check seq after
// copying a slot's data and discard the copy if it changed underneath
// them.
type slotMeta struct {
	seq     atomic.Uint64
	startNs atomic.Int64
	endNs   atomic.Int64 // 0 while the window is open
}

// cumulative is a registered cumulative counter source, polled at
// rotation; the per-window delta is end − start.
type cumulative struct {
	name  string
	fn    func() uint64
	start []atomic.Uint64 // value at each slot's window start
	delta []atomic.Uint64 // finalized delta for closed slots
}

// Observatory is the windowed rollup ring. All methods are safe for
// concurrent use.
type Observatory struct {
	cfg   Config
	clock simtime.Clock

	// mu guards registration and rotation; the record path never
	// takes it.
	mu       sync.Mutex
	sketches []*Sketch
	topks    []*TopK
	cums     []*cumulative

	slots []slotMeta
	cur   atomic.Int32

	rotations  atomic.Uint64
	lastRotate atomic.Int64 // clock ns of the last rotation (or Start)
	started    atomic.Bool
	stop       chan struct{}
	stopOnce   sync.Once
}

// New builds an Observatory and opens its first window.
func New(cfg Config) *Observatory {
	cfg = cfg.withDefaults()
	o := &Observatory{
		cfg:   cfg,
		clock: cfg.Clock,
		slots: make([]slotMeta, cfg.Windows),
		stop:  make(chan struct{}),
	}
	now := o.clock.Now().UnixNano()
	o.slots[0].startNs.Store(now)
	o.slots[0].seq.Store(1)
	o.lastRotate.Store(now)
	return o
}

// Window returns the configured window duration.
func (o *Observatory) Window() time.Duration { return o.cfg.Window }

// Windows returns the ring length.
func (o *Observatory) Windows() int { return o.cfg.Windows }

// Rotations returns how many times the ring has rotated.
func (o *Observatory) Rotations() uint64 { return o.rotations.Load() }

// Sketch registers (or returns) the named quantile sketch. unit is
// descriptive metadata carried through snapshots ("ns", "ms") — the
// sketch itself is unit-agnostic. Register all instruments before
// serving traffic; registration after recording has started is safe
// but the new instrument only fills from the current window on.
func (o *Observatory) Sketch(name, unit string) *Sketch {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.sketches {
		if s.name == name {
			return s
		}
	}
	s := &Sketch{o: o, name: name, unit: unit, ring: make([]sketchWin, o.cfg.Windows)}
	o.sketches = append(o.sketches, s)
	return s
}

// TopK registers (or returns) the named heavy-hitter set.
func (o *Observatory) TopK(name string) *TopK {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, t := range o.topks {
		if t.name == name {
			return t
		}
	}
	t := &TopK{
		o:    o,
		name: name,
		cap:  o.cfg.TopKCapacity,
		mask: uint32(o.cfg.TopKStripes - 1),
		ring: make([]topkWin, o.cfg.Windows),
	}
	for i := range t.ring {
		t.ring[i].stripes = make([]topkStripe, o.cfg.TopKStripes)
	}
	o.topks = append(o.topks, t)
	return t
}

// Cumulative registers a cumulative counter source. The source is
// polled at every rotation; each window reports the delta over its
// span. The current window's delta counts from registration time, so
// pre-existing totals never show up as a spike.
func (o *Observatory) Cumulative(name string, fn func() uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, c := range o.cums {
		if c.name == name {
			return
		}
	}
	c := &cumulative{
		name:  name,
		fn:    fn,
		start: make([]atomic.Uint64, o.cfg.Windows),
		delta: make([]atomic.Uint64, o.cfg.Windows),
	}
	c.start[o.cur.Load()].Store(fn())
	o.cums = append(o.cums, c)
}

// Rotate closes the current window and opens the next, recycling the
// oldest ring slot. It is the only writer of slot metadata; the record
// path only ever reads the current index.
func (o *Observatory) Rotate() {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.clock.Now().UnixNano()
	cur := int(o.cur.Load())
	next := (cur + 1) % len(o.slots)

	// Finalize the closing window's counter deltas.
	for _, c := range o.cums {
		v := c.fn()
		c.delta[cur].Store(v - c.start[cur].Load())
		// Seed the next window from the same poll.
		c.start[next].Store(v)
		c.delta[next].Store(0)
	}
	o.slots[cur].endNs.Store(now)

	// Invalidate the recycled slot before resetting it so a snapshot
	// caught mid-read discards its copy, then rebuild and publish.
	o.slots[next].seq.Store(0)
	for _, s := range o.sketches {
		s.ring[next].reset()
	}
	for _, t := range o.topks {
		t.ring[next].reset()
	}
	o.slots[next].startNs.Store(now)
	o.slots[next].endNs.Store(0)
	o.slots[next].seq.Store(o.slots[cur].seq.Load() + 1)
	o.cur.Store(int32(next))
	o.rotations.Add(1)
	o.lastRotate.Store(now)
}

// Start launches the background rotation driver. It is a no-op when
// already started.
func (o *Observatory) Start() {
	if !o.started.CompareAndSwap(false, true) {
		return
	}
	o.lastRotate.Store(o.clock.Now().UnixNano())
	go func() {
		for {
			select {
			case <-o.stop:
				return
			case <-o.clock.After(o.cfg.Window):
				o.Rotate()
			}
		}
	}()
}

// Stop halts the rotation driver. Recording and snapshotting remain
// valid; the current window simply stops rotating.
func (o *Observatory) Stop() {
	o.stopOnce.Do(func() { close(o.stop) })
}

// Healthy reports whether the window ring is current: the rotation
// driver is running and has rotated (or started) within two window
// durations. It backs the /healthz observatory probe.
func (o *Observatory) Healthy() error {
	if !o.started.Load() {
		return fmt.Errorf("rotation driver not started")
	}
	age := o.clock.Now().UnixNano() - o.lastRotate.Load()
	if age > 2*int64(o.cfg.Window) {
		return fmt.Errorf("window ring stale: last rotation %s ago (window %s)",
			time.Duration(age), o.cfg.Window)
	}
	return nil
}

// fnv32a hashes a key for stripe selection without allocating.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
