package obs

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecordRotateSnapshot hammers every surface at once —
// sketch records, top-K observes, cumulative polls, rotations and
// snapshot reads — so `go test -race` proves the lock-free record path
// and the rotation/reader seq protocol hold up. Invariants checked at
// the end are deliberately loose (stragglers racing a rotation may land
// in an adjacent window); the point is the race detector.
func TestConcurrentRecordRotateSnapshot(t *testing.T) {
	o := New(Config{Window: time.Second, Windows: 4, TopK: 4, TopKStripes: 2})
	s := o.Sketch("lat", "ns")
	k := o.TopK("clients")
	var cum sync.Map
	var polls int64
	o.Cumulative("checks", func() uint64 {
		cum.Store("polled", true)
		polls++
		return uint64(polls)
	})

	const (
		writers   = 4
		perWriter = 5000
		rotations = 50
		snapshots = 200
	)
	keys := []string{"198.51.100.1", "198.51.100.2", "198.51.100.3", "203.0.113.9"}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Record(int64(i%1000 + 1))
				k.Observe(keys[(i+w)%len(keys)])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rotations; i++ {
			o.Rotate()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshots; i++ {
			snap := o.Snapshot(0, 0)
			if snap.Version != SnapshotVersion {
				t.Errorf("snapshot version = %d", snap.Version)
				return
			}
			_ = o.mergedSketch("lat")
			_ = o.mergedCounter("checks")
		}
	}()
	wg.Wait()

	// Everything recorded after the last rotation is still in the ring;
	// earlier samples may have been recycled. The final snapshot must
	// be internally consistent: every window's sketch count is the sum
	// of its buckets.
	snap := o.Snapshot(0, 0)
	views := append([]Window{snap.Current, snap.Merged}, snap.Recent...)
	for _, w := range views {
		v, ok := w.Sketches["lat"]
		if !ok {
			t.Fatalf("window %d missing sketch", w.Seq)
		}
		if v.Count > 0 && (v.Max <= 0 || v.P50 <= 0) {
			t.Errorf("window %d: count %d but max %d p50 %d", w.Seq, v.Count, v.Max, v.P50)
		}
	}
}
