package obs

import (
	"sort"

	"repro/internal/hdr"
)

// Snapshot is the versioned /observatory payload: the open window,
// the most recent closed windows (newest first), and a merged rollup
// across all of them.
type Snapshot struct {
	Version       int      `json:"version"`
	WindowNs      int64    `json:"window_ns"`
	Windows       int      `json:"windows"`
	NowUnixNs     int64    `json:"now_unix_ns"`
	Rotations     uint64   `json:"rotations"`
	RelativeError float64  `json:"sketch_relative_error"`
	Current       Window   `json:"current"`
	Recent        []Window `json:"recent"`
	Merged        Window   `json:"merged"`
}

// Window is one rollup window (or the merged view across several).
type Window struct {
	Seq         uint64                `json:"seq"`
	StartUnixNs int64                 `json:"start_unix_ns"`
	EndUnixNs   int64                 `json:"end_unix_ns,omitempty"` // 0 while open
	Counters    map[string]uint64     `json:"counters"`
	Sketches    map[string]SketchView `json:"sketches"`
	TopK        map[string][]TopEntry `json:"topk"`
}

// SketchView summarizes one sketch over a window. Values are in the
// sketch's unit; quantiles are bucket upper edges capped by the exact
// max (they never understate).
type SketchView struct {
	Unit  string `json:"unit"`
	Count uint64 `json:"count"`
	Mean  int64  `json:"mean"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	P999  int64  `json:"p999"`
}

// TopEntry is one heavy hitter: Count overestimates the key's true
// frequency by at most ErrMax (Space-Saving guarantee), so the true
// count lies in [Count-ErrMax, Count].
type TopEntry struct {
	Key    string `json:"key"`
	Count  uint64 `json:"count"`
	ErrMax uint64 `json:"err_max"`
}

// windowData is one slot's raw gathered state, pre-rendering.
type windowData struct {
	seq      uint64
	startNs  int64
	endNs    int64
	sketch   map[string]*hdr.Hist
	counters map[string]uint64
	top      map[string][]ssEntry
	topTotal map[string]uint64
}

// gather copies slot's state. It returns ok=false when the slot is
// unused or was recycled mid-read (seq changed underneath the copy).
func (o *Observatory) gather(slot int, current bool) (windowData, bool) {
	seq := o.slots[slot].seq.Load()
	if seq == 0 {
		return windowData{}, false
	}
	d := windowData{
		seq:      seq,
		startNs:  o.slots[slot].startNs.Load(),
		endNs:    o.slots[slot].endNs.Load(),
		sketch:   make(map[string]*hdr.Hist, len(o.sketches)),
		counters: make(map[string]uint64, len(o.cums)),
		top:      make(map[string][]ssEntry, len(o.topks)),
		topTotal: make(map[string]uint64, len(o.topks)),
	}
	for _, s := range o.sketches {
		h := &hdr.Hist{}
		s.fold(slot, h)
		d.sketch[s.name] = h
	}
	for _, c := range o.cums {
		if current {
			d.counters[c.name] = c.fn() - c.start[slot].Load()
		} else {
			d.counters[c.name] = c.delta[slot].Load()
		}
	}
	for _, t := range o.topks {
		entries, total := t.collect(slot, nil)
		d.top[t.name] = entries
		d.topTotal[t.name] = total
	}
	if o.slots[slot].seq.Load() != seq {
		return windowData{}, false
	}
	return d, true
}

// mergeInto folds src into dst (counters sum, sketches merge, top-K
// entries merge by key with error bounds summing — a key absent from
// one window contributes nothing there, so the bound stays valid).
func mergeInto(dst *windowData, src *windowData) {
	if dst.seq < src.seq {
		dst.seq = src.seq
	}
	if dst.startNs == 0 || (src.startNs != 0 && src.startNs < dst.startNs) {
		dst.startNs = src.startNs
	}
	if src.endNs > dst.endNs {
		dst.endNs = src.endNs
	}
	for name, h := range src.sketch {
		if cur, ok := dst.sketch[name]; ok {
			cur.Merge(h)
		} else {
			cp := *h
			dst.sketch[name] = &cp
		}
	}
	for name, v := range src.counters {
		dst.counters[name] += v
	}
	for name, entries := range src.top {
		dst.topTotal[name] += src.topTotal[name]
		merged := dst.top[name]
		for _, e := range entries {
			found := false
			for i := range merged {
				if merged[i].key == e.key {
					merged[i].count += e.count
					merged[i].err += e.err
					found = true
					break
				}
			}
			if !found {
				merged = append(merged, e)
			}
		}
		dst.top[name] = merged
	}
}

// render converts gathered data into the JSON view, truncating each
// top-K set to k entries sorted by estimated count.
func (d *windowData) render(k int, units map[string]string) Window {
	w := Window{
		Seq:         d.seq,
		StartUnixNs: d.startNs,
		EndUnixNs:   d.endNs,
		Counters:    d.counters,
		Sketches:    make(map[string]SketchView, len(d.sketch)),
		TopK:        make(map[string][]TopEntry, len(d.top)),
	}
	for name, h := range d.sketch {
		w.Sketches[name] = SketchView{
			Unit:  units[name],
			Count: h.Count(),
			Mean:  h.Mean(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
	}
	for name, entries := range d.top {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].count != entries[j].count {
				return entries[i].count > entries[j].count
			}
			return entries[i].key < entries[j].key
		})
		if len(entries) > k {
			entries = entries[:k]
		}
		out := make([]TopEntry, len(entries))
		for i, e := range entries {
			out[i] = TopEntry{Key: e.key, Count: e.count, ErrMax: e.err}
		}
		w.TopK[name] = out
	}
	return w
}

// Snapshot assembles the observatory's current view: the open window,
// up to lastN closed windows (newest first; lastN <= 0 means the whole
// ring), and the merged rollup. k bounds each reported top-K list
// (<= 0 uses the configured default).
func (o *Observatory) Snapshot(lastN, k int) Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	if k <= 0 {
		k = o.cfg.TopK
	}
	if lastN <= 0 || lastN > len(o.slots)-1 {
		lastN = len(o.slots) - 1
	}
	units := make(map[string]string, len(o.sketches))
	for _, s := range o.sketches {
		units[s.name] = s.unit
	}

	snap := Snapshot{
		Version:       SnapshotVersion,
		WindowNs:      int64(o.cfg.Window),
		Windows:       o.cfg.Windows,
		NowUnixNs:     o.clock.Now().UnixNano(),
		Rotations:     o.rotations.Load(),
		RelativeError: hdr.RelativeError,
	}

	cur := int(o.cur.Load())
	curData, ok := o.gather(cur, true)
	if !ok {
		return snap
	}
	snap.Current = curData.render(k, units)

	// The merged rollup needs its own gathered copy: mergeInto mutates
	// its destination's maps, which render shares with the view above.
	merged, ok := o.gather(cur, true)
	if !ok {
		return snap
	}
	// Walk backward over closed slots, newest first.
	for i := 1; i <= lastN; i++ {
		slot := (cur - i + len(o.slots)*2) % len(o.slots)
		d, ok := o.gather(slot, false)
		if !ok {
			break
		}
		snap.Recent = append(snap.Recent, d.render(k, units))
		mergeInto(&merged, &d)
	}
	snap.Merged = merged.render(k, units)
	return snap
}

// mergedSketch folds one sketch across the whole ring — the cheap path
// backing the Prometheus summary lines, which don't need counters or
// top-K gathered.
func (o *Observatory) mergedSketch(name string) hdr.Hist {
	o.mu.Lock()
	var s *Sketch
	for _, c := range o.sketches {
		if c.name == name {
			s = c
			break
		}
	}
	o.mu.Unlock()
	var h hdr.Hist
	if s == nil {
		return h
	}
	for slot := range s.ring {
		if o.slots[slot].seq.Load() != 0 {
			s.fold(slot, &h)
		}
	}
	return h
}

// mergedCounter sums one counter's deltas across the whole ring,
// including the open window's live delta.
func (o *Observatory) mergedCounter(name string) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, c := range o.cums {
		if c.name != name {
			continue
		}
		cur := int(o.cur.Load())
		total := c.fn() - c.start[cur].Load()
		for slot := range c.delta {
			if slot != cur && o.slots[slot].seq.Load() != 0 {
				total += c.delta[slot].Load()
			}
		}
		return total
	}
	return 0
}
