package obs

import (
	"testing"
	"time"
)

// The observatory's performance contract: recording into a sketch or an
// already-monitored top-K key is allocation-free and fast enough to ride
// the per-RCPT hot path; snapshotting is the expensive merge-on-read
// side and stays off it.

func benchObservatory() *Observatory {
	return New(Config{Window: 10 * time.Second, Windows: 30})
}

func BenchmarkSketchRecord(b *testing.B) {
	o := benchObservatory()
	s := o.Sketch("lat", "ns")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Record(int64(i%1000 + 1))
	}
}

func BenchmarkTopKObserveMonitored(b *testing.B) {
	o := benchObservatory()
	k := o.TopK("clients")
	k.Observe("198.51.100.7")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Observe("198.51.100.7")
	}
}

func BenchmarkTopKObserveRotating(b *testing.B) {
	o := benchObservatory()
	k := o.TopK("clients")
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = "10.0." + string(rune('a'+i%26)) + "." + string(rune('a'+i/26%26))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Observe(keys[i%len(keys)])
	}
}

func BenchmarkRotate(b *testing.B) {
	o := benchObservatory()
	s := o.Sketch("lat", "ns")
	k := o.TopK("clients")
	var n uint64
	o.Cumulative("checks", func() uint64 { n++; return n })
	s.Record(42)
	k.Observe("198.51.100.7")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Rotate()
	}
}

func BenchmarkSnapshot(b *testing.B) {
	o := benchObservatory()
	s := o.Sketch("lat", "ns")
	k := o.TopK("clients")
	for i := 0; i < 30; i++ {
		for j := 0; j < 100; j++ {
			s.Record(int64(j + 1))
			k.Observe("198.51.100." + string(rune('0'+j%10)))
		}
		o.Rotate()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.Snapshot(0, 0)
	}
}
