package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/greylist"
	"repro/internal/hdr"
	"repro/internal/metrics"
	"repro/internal/simtime"
)

func testObservatory(clock simtime.Clock) *Observatory {
	return New(Config{Window: 10 * time.Second, Windows: 4, TopK: 3, Clock: clock})
}

func TestSketchWindowing(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := testObservatory(clock)
	s := o.Sketch("lat", "ms")

	s.Record(100)
	s.Record(200)
	clock.Advance(10 * time.Second)
	o.Rotate()
	s.Record(1000)

	snap := o.Snapshot(0, 0)
	if got := snap.Current.Sketches["lat"].Count; got != 1 {
		t.Errorf("current count = %d, want 1", got)
	}
	if len(snap.Recent) != 1 {
		t.Fatalf("recent windows = %d, want 1", len(snap.Recent))
	}
	if got := snap.Recent[0].Sketches["lat"].Count; got != 2 {
		t.Errorf("closed window count = %d, want 2", got)
	}
	merged := snap.Merged.Sketches["lat"]
	if merged.Count != 3 {
		t.Errorf("merged count = %d, want 3", merged.Count)
	}
	if merged.Max != 1000 {
		t.Errorf("merged max = %d, want 1000", merged.Max)
	}
	// p50 is the bucket upper edge of the rank-1 sample (200): at most
	// one sub-bucket over.
	if p := merged.P50; p < 200 || p > 200+200/hdr.SubCount+2 {
		t.Errorf("merged p50 = %d, want ~200", p)
	}
}

func TestRingRecycling(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := testObservatory(clock) // 4 slots: 3 closed windows visible
	s := o.Sketch("lat", "ms")
	for i := 0; i < 6; i++ {
		s.Record(int64(100 * (i + 1)))
		clock.Advance(10 * time.Second)
		o.Rotate()
	}
	snap := o.Snapshot(0, 0)
	if len(snap.Recent) != 3 {
		t.Fatalf("recent windows = %d, want 3 (ring of 4)", len(snap.Recent))
	}
	// Newest-first: windows held samples 600, 500, 400; older ones were
	// recycled.
	for i, want := range []int64{600, 500, 400} {
		if got := snap.Recent[i].Sketches["lat"].Max; got != want {
			t.Errorf("recent[%d] max = %d, want %d", i, got, want)
		}
	}
	if snap.Recent[0].Seq != 6 {
		t.Errorf("newest closed seq = %d, want 6", snap.Recent[0].Seq)
	}
}

func TestCumulativeDeltas(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := testObservatory(clock)
	var total uint64 = 40 // pre-existing count at registration
	o.Cumulative("checks", func() uint64 { return total })

	// Registration must not report the pre-existing total as a delta.
	if got := o.Snapshot(0, 0).Current.Counters["checks"]; got != 0 {
		t.Errorf("delta at registration = %d, want 0", got)
	}

	total += 7
	if got := o.Snapshot(0, 0).Current.Counters["checks"]; got != 7 {
		t.Errorf("open-window live delta = %d, want 7", got)
	}

	clock.Advance(10 * time.Second)
	o.Rotate()
	total += 5
	snap := o.Snapshot(0, 0)
	if got := snap.Recent[0].Counters["checks"]; got != 7 {
		t.Errorf("closed window delta = %d, want 7", got)
	}
	if got := snap.Current.Counters["checks"]; got != 5 {
		t.Errorf("new open window delta = %d, want 5", got)
	}
	if got := snap.Merged.Counters["checks"]; got != 12 {
		t.Errorf("merged delta = %d, want 12", got)
	}
	if got := o.mergedCounter("checks"); got != 12 {
		t.Errorf("mergedCounter = %d, want 12", got)
	}
}

func TestTopKErrorBounds(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	// One stripe so the whole set is one Space-Saving table of capacity
	// 4×3=12 and the bound is easy to state.
	o := New(Config{Window: time.Minute, Windows: 2, TopK: 3, TopKStripes: 1, Clock: clock})
	k := o.TopK("clients")

	truth := map[string]uint64{}
	observe := func(key string, n int) {
		for i := 0; i < n; i++ {
			k.Observe(key)
			truth[key]++
		}
	}
	observe("heavy-1", 500)
	observe("heavy-2", 300)
	for i := 0; i < 40; i++ {
		observe(strings.Repeat("x", 1+i%7)+string(rune('a'+i%26)), 3)
	}
	observe("heavy-3", 200)

	entries, total := k.collect(0, nil)
	if want := uint64(500 + 300 + 200 + 120); total != want {
		t.Fatalf("stripe total = %d, want %d", total, want)
	}
	found := map[string]ssEntry{}
	for _, e := range entries {
		found[e.key] = e
		// Space-Saving guarantee: true ≤ estimate ≤ true + err.
		if tr := truth[e.key]; e.count < tr || e.count > tr+e.err {
			t.Errorf("%s: estimate %d err %d outside [%d, %d+%d]", e.key, e.count, e.err, tr, tr, e.err)
		}
	}
	// Any key with true count > total/capacity is guaranteed monitored.
	for _, heavy := range []string{"heavy-1", "heavy-2", "heavy-3"} {
		if truth[heavy] > total/12 {
			if _, ok := found[heavy]; !ok {
				t.Errorf("%s (true %d > %d/12) not monitored", heavy, truth[heavy], total)
			}
		}
	}
}

// TestTopKAdversarialRotation is the Cutwail scenario: a botnet
// rotating through thousands of one-shot client IPs must not evict the
// steady benign MTA from the monitored set — Space-Saving eviction
// takes the minimum-count entry, and the steady key's count stays above
// every fresh rotator's inherited min+1.
func TestTopKAdversarialRotation(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := New(Config{Window: time.Minute, Windows: 2, TopK: 10, TopKStripes: 1, Clock: clock})
	k := o.TopK("clients")

	steady := "203.0.113.25" // the benign MTA: one delivery per round
	rotations := 10000
	for i := 0; i < rotations; i++ {
		k.Observe(steady)
		// A fresh rotator IP, never seen again.
		k.Observe("10." + string(rune('0'+i%10)) + "." + itoa(i/256%256) + "." + itoa(i%256) + ":" + itoa(i))
	}

	entries, _ := k.collect(0, nil)
	var got *ssEntry
	for i := range entries {
		if entries[i].key == steady {
			got = &entries[i]
			break
		}
	}
	if got == nil {
		t.Fatalf("steady MTA evicted by %d one-shot rotators", rotations)
	}
	if got.count < uint64(rotations) {
		t.Errorf("steady MTA estimate %d understates true %d", got.count, rotations)
	}
	if got.count > uint64(rotations)+got.err {
		t.Errorf("steady MTA estimate %d exceeds true %d + err %d", got.count, rotations, got.err)
	}
	// And it must surface as the top entry of the rendered snapshot.
	snap := o.Snapshot(0, 1)
	top := snap.Current.TopK["clients"]
	if len(top) == 0 || top[0].Key != steady {
		t.Errorf("snapshot top entry = %+v, want %s first", top, steady)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestHealthy(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := testObservatory(clock)
	if err := o.Healthy(); err == nil {
		t.Error("Healthy before Start: want error, got nil")
	}
	o.Start()
	defer o.Stop()
	if err := o.Healthy(); err != nil {
		t.Errorf("Healthy after Start: %v", err)
	}
	// Rotation keeps it fresh even as virtual time advances.
	clock.Advance(15 * time.Second)
	o.Rotate()
	clock.Advance(15 * time.Second)
	if err := o.Healthy(); err != nil {
		t.Errorf("Healthy within 2 windows of a rotation: %v", err)
	}
	clock.Advance(30 * time.Second)
	if err := o.Healthy(); err == nil {
		t.Error("Healthy with a stale ring: want error, got nil")
	}
}

func TestGreylistObserverEndToEnd(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := testObservatory(clock)
	g := greylist.New(greylist.DefaultPolicy(), clock)
	g.SetObserver(o.Greylist())
	o.WatchGreylist(g.Stats)

	trip := greylist.Triplet{ClientIP: "198.51.100.7", Sender: "news@bulk.example", Recipient: "user@victim.example"}
	if v := g.Check(trip); v.Decision != greylist.Defer {
		t.Fatalf("first check = %v, want Defer", v.Decision)
	}
	clock.Advance(301 * time.Second)
	if v := g.Check(trip); v.Reason != greylist.ReasonRetryAccepted {
		t.Fatalf("retry reason = %v, want RetryAccepted", v.Reason)
	}

	snap := o.Snapshot(0, 0)
	cur := snap.Current
	if got := cur.Sketches[SketchCheckLatency].Count; got != 2 {
		t.Errorf("latency sketch count = %d, want 2", got)
	}
	rd := cur.Sketches[SketchRetryDelay]
	if rd.Count != 1 {
		t.Fatalf("retry-delay count = %d, want 1", rd.Count)
	}
	// 301s recorded in ms; the quantile is an upper bucket edge capped
	// at the exact max.
	if rd.Max != 301_000 || rd.P99 != 301_000 {
		t.Errorf("retry-delay max/p99 = %d/%d, want 301000", rd.Max, rd.P99)
	}
	wantTop := func(set, key string, count uint64) {
		t.Helper()
		entries := cur.TopK[set]
		if len(entries) != 1 || entries[0].Key != key || entries[0].Count != count {
			t.Errorf("topk %s = %+v, want [{%s %d 0}]", set, entries, key, count)
		}
	}
	wantTop(TopClientsDeferred, "198.51.100.7", 1)
	wantTop(TopClientsPassed, "198.51.100.7", 1)
	wantTop(TopSendersDeferred, "bulk.example", 1)
	wantTop(TopSendersPassed, "bulk.example", 1)
	if got := cur.Counters["greylist.checks"]; got != 2 {
		t.Errorf("greylist.checks delta = %d, want 2", got)
	}
	if got := cur.Counters["greylist.passed.retry"]; got != 1 {
		t.Errorf("greylist.passed.retry delta = %d, want 1", got)
	}
}

func TestHandlerServesVersionedJSON(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := testObservatory(clock)
	o.Sketch("lat", "ms").Record(42)
	ts := httptest.NewServer(o.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/?windows=2&k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != SnapshotVersion {
		t.Errorf("version = %d, want %d", snap.Version, SnapshotVersion)
	}
	if got := snap.Current.Sketches["lat"].Count; got != 1 {
		t.Errorf("lat count over HTTP = %d, want 1", got)
	}

	post, err := ts.Client().Post(ts.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

// TestMetricsStableNames pins the obs_* exposition names: dashboards
// key on them, so renames are breaking changes.
func TestMetricsStableNames(t *testing.T) {
	clock := simtime.NewSim(simtime.Epoch)
	o := testObservatory(clock)
	o.Sketch("greylist_retry_delay", "ms").Record(500)
	o.TopK("clients_passed").Observe("198.51.100.7")
	o.Cumulative("greylist.checks", func() uint64 { return 3 })

	reg := metrics.NewRegistry()
	o.Register(reg)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"obs_window_seconds 10",
		"obs_windows 4",
		"obs_rotations_total 0",
		`obs_sketch_window_count{sketch="greylist_retry_delay"} 1`,
		`obs_sketch_quantile{sketch="greylist_retry_delay",q="0.5"}`,
		`obs_sketch_quantile{sketch="greylist_retry_delay",q="0.99"}`,
		`obs_counter_window{counter="greylist.checks"}`,
		`obs_topk_tracked{set="clients_passed"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
