package obs

import (
	"sync/atomic"

	"repro/internal/hdr"
)

// Sketch is a streaming quantile sketch: one atomic HDR bucket array
// per ring window. Record is lock-free and allocation-free — an atomic
// add into the value's bucket plus count/sum updates and a CAS max —
// so hot paths (greylist verdicts, loadgen samples) can feed it
// inline. Readers fold a window's buckets into an hdr.Hist at snapshot
// time; quantiles inherit hdr's ~3% worst-case quantization error with
// the exact max as a cap.
type Sketch struct {
	o    *Observatory
	name string
	unit string
	ring []sketchWin
}

// sketchWin is one window's accumulation state.
type sketchWin struct {
	counts [hdr.Buckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Name returns the sketch's registered name.
func (s *Sketch) Name() string { return s.name }

// Unit returns the sketch's descriptive unit ("ns", "ms").
func (s *Sketch) Unit() string { return s.unit }

// Record adds one observation to the current window.
func (s *Sketch) Record(v int64) {
	w := &s.ring[s.o.cur.Load()]
	w.counts[hdr.Index(v)].Add(1)
	w.count.Add(1)
	w.sum.Add(v)
	for {
		m := w.max.Load()
		if v <= m || w.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// fold converts slot's accumulation into h (merge on read).
func (s *Sketch) fold(slot int, h *hdr.Hist) {
	w := &s.ring[slot]
	for i := range w.counts {
		if n := w.counts[i].Load(); n > 0 {
			h.AddBucket(i, n)
		}
	}
	h.AddSum(w.sum.Load())
	h.ObserveMax(w.max.Load())
}

// reset clears a recycled window slot (rotation only).
func (w *sketchWin) reset() {
	for i := range w.counts {
		w.counts[i].Store(0)
	}
	w.count.Store(0)
	w.sum.Store(0)
	w.max.Store(0)
}
