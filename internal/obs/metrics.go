package obs

import (
	"strconv"

	"repro/internal/metrics"
)

// Register exposes the observatory's Prometheus summary lines on reg.
// Per-sketch series are created for every sketch registered at call
// time, so daemons should register instruments first and call this
// once afterwards. Values are windowed (merged across the live ring),
// which makes the quantile and count series gauges: they fall as old
// windows age out.
//
// Exported series (stable names, pinned by tests):
//
//	obs_window_seconds
//	obs_windows
//	obs_rotations_total
//	obs_sketch_window_count{sketch}
//	obs_sketch_quantile{sketch,q}   (q = "0.5", "0.9", "0.99")
//	obs_counter_window{counter}
//	obs_topk_tracked{set}
func (o *Observatory) Register(reg *metrics.Registry) {
	reg.GaugeFunc("obs_window_seconds", "Rollup window duration in seconds.",
		func() float64 { return o.cfg.Window.Seconds() })
	reg.GaugeFunc("obs_windows", "Window ring length including the open window.",
		func() float64 { return float64(o.cfg.Windows) })
	reg.CounterFunc("obs_rotations_total", "Window rotations since start.",
		o.rotations.Load)

	o.mu.Lock()
	sketches := append([]*Sketch(nil), o.sketches...)
	cums := append([]*cumulative(nil), o.cums...)
	topks := append([]*TopK(nil), o.topks...)
	o.mu.Unlock()

	for _, s := range sketches {
		name := s.name
		reg.GaugeFunc("obs_sketch_window_count",
			"Observations in the sketch across the live window ring.",
			func() float64 { h := o.mergedSketch(name); return float64(h.Count()) },
			"sketch", name)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			q := q
			reg.GaugeFunc("obs_sketch_quantile",
				"Sketch quantile across the live window ring, in the sketch's unit.",
				func() float64 { h := o.mergedSketch(name); return float64(h.Quantile(q)) },
				"sketch", name, "q", strconv.FormatFloat(q, 'g', -1, 64))
		}
	}
	for _, c := range cums {
		name := c.name
		reg.GaugeFunc("obs_counter_window",
			"Counter delta summed across the live window ring.",
			func() float64 { return float64(o.mergedCounter(name)) },
			"counter", name)
	}
	for _, t := range topks {
		t := t
		reg.GaugeFunc("obs_topk_tracked",
			"Distinct keys currently monitored in the open window.",
			func() float64 {
				entries, _ := t.collect(int(o.cur.Load()), nil)
				return float64(len(entries))
			},
			"set", t.name)
	}
}
