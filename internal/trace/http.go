package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler returns an http.Handler for browsing retained traces —
// mounted at /debug/traces on the admin mux.
//
// Query parameters:
//
//	family=NAME        only traces tagged with this family
//	defense=NAME       only traces tagged with this defense
//	outcome=NAME       only traces with this final outcome
//	min_attempts=N     only traces covering at least N attempts
//	id=HEX             one trace, with its full event listing
//	limit=N            at most N traces (default 100, text only)
//	format=jsonl       machine-readable export of the filtered set
//
// Each extras function is invoked after the text listing — the admin
// wiring passes the metrics registry's exemplar dump so a slow
// histogram bucket's trace ID can be looked up in place.
func (tr *Tracer) Handler(extras ...func(io.Writer)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if tr == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		ts := tr.Snapshot()
		sortTraces(ts)

		if idStr := q.Get("id"); idStr != "" {
			id, err := strconv.ParseUint(strings.TrimPrefix(idStr, "0x"), 16, 64)
			if err != nil {
				http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
				return
			}
			for _, t := range ts {
				if t.ID() == id {
					w.Header().Set("Content-Type", "text/plain; charset=utf-8")
					writeTraceDetail(w, t)
					return
				}
			}
			http.Error(w, "trace not found (evicted or never finished)", http.StatusNotFound)
			return
		}

		ts = filterTraces(ts, q.Get("family"), q.Get("defense"), q.Get("outcome"), atoiDefault(q.Get("min_attempts"), 0))

		if q.Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			enc := json.NewEncoder(w)
			for _, t := range ts {
				if err := enc.Encode(t.Record()); err != nil {
					return
				}
			}
			return
		}

		limit := atoiDefault(q.Get("limit"), 100)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "traces: %d retained (capacity %d, %d finished total)\n",
			tr.Len(), tr.Cap(), tr.Finished())
		writeCounts(w, tr.Counts())
		fmt.Fprintf(w, "\nshowing %d of %d matching (filters: family=%q defense=%q outcome=%q min_attempts=%s; ?id=HEX for events, ?format=jsonl for export)\n\n",
			minInt(limit, len(ts)), len(ts), q.Get("family"), q.Get("defense"), q.Get("outcome"), q.Get("min_attempts"))
		for i, t := range ts {
			if i >= limit {
				break
			}
			writeTraceLine(w, t)
		}
		for _, fn := range extras {
			if fn != nil {
				fmt.Fprintln(w)
				fn(w)
			}
		}
	})
}

func filterTraces(ts []*Trace, family, defense, outcome string, minAttempts int) []*Trace {
	if family == "" && defense == "" && outcome == "" && minAttempts <= 0 {
		return ts
	}
	out := ts[:0:0]
	for _, t := range ts {
		tags := t.Tags()
		if family != "" && tags.Family != family {
			continue
		}
		if defense != "" && tags.Defense != defense {
			continue
		}
		if outcome != "" && t.Outcome() != outcome {
			continue
		}
		if minAttempts > 0 && t.Attempts() < minAttempts {
			continue
		}
		out = append(out, t)
	}
	return out
}

func writeCounts(w io.Writer, counts map[string]uint64) {
	if len(counts) == 0 {
		return
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "by family|outcome:")
	for _, k := range keys {
		fmt.Fprintf(w, "  %-40s %d\n", k, counts[k])
	}
}

func writeTraceLine(w io.Writer, t *Trace) {
	tags := t.Tags()
	dur := t.End().Sub(t.Start())
	fmt.Fprintf(w, "id=%s family=%s sample=%d defense=%s rcpt=%s try=%d outcome=%s events=%d dur=%s\n",
		FormatID(t.ID()), tags.Family, tags.Sample, tags.Defense,
		t.Recipient(), t.Try(), t.Outcome(), len(t.Events()), dur)
}

func writeTraceDetail(w io.Writer, t *Trace) {
	writeTraceLine(w, t)
	start := t.Start()
	for _, e := range t.Events() {
		fmt.Fprintf(w, "  +%-14s %-9s %-24s code=%-4d dur=%-12s %s\n",
			e.At.Sub(start), e.Kind, e.Name, e.Code, e.Dur, e.Detail)
	}
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
