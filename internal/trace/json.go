package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// EventRecord is the JSON form of one Event.
type EventRecord struct {
	Kind   string  `json:"kind"`
	At     string  `json:"at"`
	Name   string  `json:"name,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Code   int     `json:"code,omitempty"`
	DurS   float64 `json:"dur_s,omitempty"`
}

// Record is the JSON form of one finished (or live) trace — one JSONL
// line per trace.
type Record struct {
	ID         string        `json:"id"`
	Family     string        `json:"family,omitempty"`
	Defense    string        `json:"defense,omitempty"`
	Sample     int           `json:"sample,omitempty"`
	ThresholdS float64       `json:"threshold_s,omitempty"`
	Recipient  string        `json:"recipient,omitempty"`
	Try        int           `json:"try"`
	Outcome    string        `json:"outcome,omitempty"`
	Start      string        `json:"start"`
	End        string        `json:"end,omitempty"`
	Events     []EventRecord `json:"events"`
}

const timeLayout = time.RFC3339Nano

// FormatID renders a trace ID the way exemplars and /debug/traces
// print it: 16 hex digits.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// Record converts the trace into its JSON form.
func (t *Trace) Record() Record {
	if t == nil {
		return Record{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Record{
		ID:         FormatID(t.id),
		Family:     t.tags.Family,
		Defense:    t.tags.Defense,
		Sample:     t.tags.Sample,
		ThresholdS: t.tags.Threshold.Seconds(),
		Recipient:  t.recipient,
		Try:        t.try,
		Outcome:    t.outcome,
		Start:      t.start.UTC().Format(timeLayout),
		Events:     make([]EventRecord, len(t.events)),
	}
	if !t.end.IsZero() {
		r.End = t.end.UTC().Format(timeLayout)
	}
	for i, e := range t.events {
		r.Events[i] = EventRecord{
			Kind:   e.Kind.String(),
			At:     e.At.UTC().Format(timeLayout),
			Name:   e.Name,
			Detail: e.Detail,
			Code:   e.Code,
			DurS:   e.Dur.Seconds(),
		}
	}
	return r
}

// sortTraces orders traces deterministically — by experiment cell,
// then recipient, then retry index, then start time — so JSONL export
// is byte-stable for a given run regardless of worker scheduling. The
// trace ID (assigned from a shared counter in scheduling order) is
// only the final tiebreak.
func sortTraces(ts []*Trace) {
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		at, bt := a.Tags(), b.Tags()
		if at.Family != bt.Family {
			return at.Family < bt.Family
		}
		if at.Sample != bt.Sample {
			return at.Sample < bt.Sample
		}
		if at.Defense != bt.Defense {
			return at.Defense < bt.Defense
		}
		if ar, br := a.Recipient(), b.Recipient(); ar != br {
			return ar < br
		}
		if atry, btry := a.Try(), b.Try(); atry != btry {
			return atry < btry
		}
		if as, bs := a.Start(), b.Start(); !as.Equal(bs) {
			return as.Before(bs)
		}
		return a.ID() < b.ID()
	})
}

// WriteJSONL writes every retained trace as one JSON object per line,
// deterministically sorted (see sortTraces).
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	if tr == nil {
		return nil
	}
	ts := tr.Snapshot()
	sortTraces(ts)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range ts {
		if err := enc.Encode(t.Record()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
