package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClock is a deterministic virtual clock for tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time { return c.t }

func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if got := tr.StartAttempt(Tags{}, "r@d", 0, nil); got != nil {
		t.Fatalf("nil tracer StartAttempt = %v, want nil", got)
	}
	if got := tr.StartMessage(Tags{}, "r@d", nil); got != nil {
		t.Fatalf("nil tracer StartMessage = %v, want nil", got)
	}
	if got := tr.StartSession(Tags{}, "1.2.3.4", nil); got != nil {
		t.Fatalf("nil tracer StartSession = %v, want nil", got)
	}
	if tr.Snapshot() != nil || tr.Len() != 0 || tr.Cap() != 0 || tr.Finished() != 0 || tr.Counts() != nil {
		t.Fatal("nil tracer accessors should be zero values")
	}
	if err := tr.WriteJSONL(io.Discard); err != nil {
		t.Fatalf("nil tracer WriteJSONL: %v", err)
	}

	// Every method on a nil trace must be a no-op.
	var tc *Trace
	tc.Attempt(1, "x")
	tc.Dial("10.0.0.1:25", nil)
	tc.MX("mx1.example.org", 10, 2, false)
	tc.MXError("example.org", fmt.Errorf("boom"))
	tc.Verb("RCPT", 451, "greylisted", time.Second)
	tc.Greylist("defer", "first-seen", "key", 300*time.Second, 1)
	tc.Policy("dunno", "")
	tc.Queue("retry-scheduled", "", time.Minute)
	tc.Add(KindVerb, "x", "y", 1, 0)
	tc.SetTry(3)
	tc.Finish("delivered")
	if tc.ID() != 0 || tc.Try() != 0 || tc.Attempts() != 0 || tc.Outcome() != "" ||
		tc.Recipient() != "" || tc.Events() != nil || (tc.Tags() != Tags{}) {
		t.Fatal("nil trace accessors should be zero values")
	}
	if !tc.Start().IsZero() || !tc.End().IsZero() {
		t.Fatal("nil trace times should be zero")
	}
	if got := tc.Record(); got.ID != "" {
		t.Fatalf("nil trace Record = %+v", got)
	}
}

func TestTraceLifecycle(t *testing.T) {
	clock := newFakeClock()
	tr := New(8)
	tags := Tags{Family: "Kelihos", Defense: "greylisting", Sample: 3, Threshold: 300 * time.Second}
	tc := tr.StartAttempt(tags, "u1@example.org", 0, clock.Now)
	if tc == nil || tc.ID() == 0 {
		t.Fatal("expected a live trace with a nonzero ID")
	}
	clock.Advance(10 * time.Millisecond)
	tc.Dial("10.0.0.2:25", nil)
	tc.Verb("MAIL", 250, "ok", time.Millisecond)
	tc.Greylist("defer", "first-seen", "10.0.0.99|a@b|u1@example.org", 300*time.Second, 1)
	clock.Advance(5 * time.Millisecond)
	if tr.Len() != 0 {
		t.Fatalf("ring should be empty before Finish, got %d", tr.Len())
	}
	tc.Finish("deferred")
	tc.Finish("delivered") // idempotent: first outcome wins
	tc.Verb("QUIT", 221, "", 0)

	if got := tc.Outcome(); got != "deferred" {
		t.Fatalf("outcome = %q, want deferred", got)
	}
	evs := tc.Events()
	if evs[len(evs)-1].Kind != KindOutcome {
		t.Fatalf("last event kind = %v, want outcome", evs[len(evs)-1].Kind)
	}
	// 1 attempt + dial + verb + greylist + outcome; post-Finish verb dropped.
	if len(evs) != 5 {
		t.Fatalf("events = %d, want 5: %+v", len(evs), evs)
	}
	if tc.End().Sub(tc.Start()) != 15*time.Millisecond {
		t.Fatalf("trace duration = %v, want 15ms", tc.End().Sub(tc.Start()))
	}
	if tr.Len() != 1 || tr.Finished() != 1 {
		t.Fatalf("ring len=%d finished=%d, want 1/1", tr.Len(), tr.Finished())
	}
	counts := tr.Counts()
	if counts["Kelihos|deferred"] != 1 {
		t.Fatalf("counts = %v, want Kelihos|deferred=1", counts)
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(4)
	clock := newFakeClock()
	for i := 0; i < 10; i++ {
		tc := tr.StartAttempt(Tags{Family: "F"}, fmt.Sprintf("u%02d@d", i), 0, clock.Now)
		tc.Finish("delivered")
	}
	if tr.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", tr.Len())
	}
	if tr.Finished() != 10 {
		t.Fatalf("finished = %d, want 10", tr.Finished())
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	// Oldest first; the 6 oldest traces were evicted.
	for i, tc := range snap {
		want := fmt.Sprintf("u%02d@d", 6+i)
		if tc.Recipient() != want {
			t.Fatalf("snapshot[%d] recipient = %q, want %q", i, tc.Recipient(), want)
		}
	}
}

func TestSinks(t *testing.T) {
	tr := New(2)
	var got []string
	tr.AddSink(func(tc *Trace) { got = append(got, tc.Outcome()) })
	tr.AddSink(func(tc *Trace) { got = append(got, "second:"+tc.Outcome()) })
	tr.StartAttempt(Tags{}, "a@b", 0, newFakeClock().Now).Finish("rejected")
	if len(got) != 2 || got[0] != "rejected" || got[1] != "second:rejected" {
		t.Fatalf("sinks saw %v", got)
	}
}

func TestWriteJSONLDeterministicOrder(t *testing.T) {
	tr := New(16)
	clock := newFakeClock()
	// Finish out of order; export must sort by cell/recipient/try.
	mk := func(family string, sample int, rcpt string, try int, outcome string) {
		tc := tr.StartAttempt(Tags{Family: family, Defense: "greylisting", Sample: sample}, rcpt, try, clock.Now)
		tc.Finish(outcome)
	}
	mk("Kelihos", 2, "u2@d", 1, "delivered")
	mk("Cutwail", 1, "u1@d", 0, "refused")
	mk("Kelihos", 2, "u2@d", 0, "deferred")
	mk("Kelihos", 1, "u9@d", 0, "deferred")

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []Record
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var r Record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, r)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	order := make([]string, len(lines))
	for i, r := range lines {
		order[i] = fmt.Sprintf("%s/%d/%s/%d", r.Family, r.Sample, r.Recipient, r.Try)
	}
	want := []string{"Cutwail/1/u1@d/0", "Kelihos/1/u9@d/0", "Kelihos/2/u2@d/0", "Kelihos/2/u2@d/1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if lines[0].Events[len(lines[0].Events)-1].Kind != "outcome" {
		t.Fatalf("last event = %+v, want outcome", lines[0].Events[len(lines[0].Events)-1])
	}
}

func TestHandlerFiltersAndDetail(t *testing.T) {
	tr := New(16)
	clock := newFakeClock()
	a := tr.StartAttempt(Tags{Family: "Kelihos", Defense: "greylisting", Sample: 1}, "u1@d", 0, clock.Now)
	a.Greylist("defer", "first-seen", "k", 300*time.Second, 1)
	a.Finish("deferred")
	b := tr.StartAttempt(Tags{Family: "Kelihos", Defense: "greylisting", Sample: 1}, "u1@d", 3, clock.Now)
	b.Finish("delivered")
	c := tr.StartAttempt(Tags{Family: "Cutwail", Defense: "nolisting", Sample: 2}, "u2@d", 0, clock.Now)
	c.Finish("refused")

	h := tr.Handler(func(w io.Writer) { fmt.Fprintln(w, "EXTRA-SECTION") })

	get := func(url string) string {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec.Body.String()
	}

	all := get("/debug/traces")
	for _, want := range []string{"Kelihos|deferred", "Kelihos|delivered", "Cutwail|refused", "EXTRA-SECTION"} {
		if !strings.Contains(all, want) {
			t.Fatalf("listing missing %q:\n%s", want, all)
		}
	}

	filtered := get("/debug/traces?family=Kelihos&outcome=delivered")
	if strings.Contains(filtered, "Cutwail") && strings.Contains(filtered, "outcome=refused") {
		t.Fatalf("family filter leaked Cutwail traces:\n%s", filtered)
	}
	if !strings.Contains(filtered, "outcome=delivered") {
		t.Fatalf("filtered listing missing delivered trace:\n%s", filtered)
	}

	minAtt := get("/debug/traces?min_attempts=4")
	if !strings.Contains(minAtt, "try=3") || strings.Contains(minAtt, "try=0 ") {
		t.Fatalf("min_attempts filter wrong:\n%s", minAtt)
	}

	jsonl := get("/debug/traces?defense=nolisting&format=jsonl")
	var r Record
	if err := json.Unmarshal([]byte(strings.TrimSpace(jsonl)), &r); err != nil {
		t.Fatalf("jsonl output not one record: %v\n%s", err, jsonl)
	}
	if r.Defense != "nolisting" || r.Outcome != "refused" {
		t.Fatalf("jsonl record = %+v", r)
	}

	detail := get("/debug/traces?id=" + FormatID(a.ID()))
	if !strings.Contains(detail, "greylist") || !strings.Contains(detail, "first-seen") {
		t.Fatalf("detail view missing greylist event:\n%s", detail)
	}

	missing := httptest.NewRecorder()
	h.ServeHTTP(missing, httptest.NewRequest("GET", "/debug/traces?id=00000000deadbeef", nil))
	if missing.Code != 404 {
		t.Fatalf("unknown id status = %d, want 404", missing.Code)
	}
}

func TestFromConn(t *testing.T) {
	tr := New(1)
	tc := tr.StartAttempt(Tags{}, "a@b", 0, newFakeClock().Now)
	if got := FromConn(carrierConn{tc}); got != tc {
		t.Fatalf("FromConn = %v, want %v", got, tc)
	}
	if got := FromConn(struct{}{}); got != nil {
		t.Fatalf("FromConn on non-carrier = %v, want nil", got)
	}
}

type carrierConn struct{ tc *Trace }

func (c carrierConn) Trace() *Trace { return c.tc }

func TestSplitmixIDsUniqueAndNonZero(t *testing.T) {
	seen := make(map[uint64]bool)
	tr := New(1)
	for i := 0; i < 1000; i++ {
		tc := tr.StartAttempt(Tags{}, "", 0, nil)
		if tc.ID() == 0 || seen[tc.ID()] {
			t.Fatalf("duplicate or zero ID %#x at %d", tc.ID(), i)
		}
		seen[tc.ID()] = true
	}
}
