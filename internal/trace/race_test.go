package trace

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// TestRingConcurrentPutSnapshot hammers the lock-free ring with
// parallel writers while readers snapshot — run under -race.
func TestRingConcurrentPutSnapshot(t *testing.T) {
	r := NewRing(64)
	clock := newFakeClock()
	tr := New(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tc := tr.StartAttempt(Tags{Family: "F"}, fmt.Sprintf("w%d-%d", w, i), 0, clock.Now)
				tc.Finish("delivered")
				r.Put(tc)
			}
		}(w)
	}
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				if len(snap) > r.Cap() {
					t.Errorf("snapshot larger than capacity: %d > %d", len(snap), r.Cap())
					return
				}
				_ = r.Len()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Len(); got != 64 {
		t.Fatalf("ring len after 16000 puts = %d, want 64", got)
	}
}

// TestConcurrentRecordingOneTrace models the real sharing pattern: a
// client goroutine and a server session goroutine record into the
// same trace handle concurrently.
func TestConcurrentRecordingOneTrace(t *testing.T) {
	tr := New(8)
	tc := tr.StartAttempt(Tags{Family: "F"}, "u@d", 0, newFakeClock().Now)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			tc.Dial("10.0.0.1:25", nil)
			tc.Verb("MAIL", 250, "", time.Microsecond)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			tc.Greylist("defer", "too-soon", "k", time.Second, i)
			_ = tc.Events()
		}
	}()
	wg.Wait()
	tc.Finish("deferred")
	evs := tc.Events()
	// attempt + 500 dials + 500 verbs + 500 greylists + outcome.
	if len(evs) != 1502 {
		t.Fatalf("events = %d, want 1502", len(evs))
	}
}

// TestTracerConcurrentFinishAndExport runs finishers against
// WriteJSONL/Counts/Handler-style readers.
func TestTracerConcurrentFinishAndExport(t *testing.T) {
	tr := New(128)
	clock := newFakeClock()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tc := tr.StartAttempt(Tags{Family: "F", Defense: "greylisting"}, fmt.Sprintf("w%d-%d@d", w, i), i%3, clock.Now)
				tc.Verb("RCPT", 451, "greylisted", time.Millisecond)
				tc.Finish("deferred")
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := tr.WriteJSONL(io.Discard); err != nil {
				t.Errorf("WriteJSONL: %v", err)
				return
			}
			_ = tr.Counts()
			_ = tr.Finished()
		}
	}()
	wg.Wait()
	<-done
	if tr.Finished() != 4000 {
		t.Fatalf("finished = %d, want 4000", tr.Finished())
	}
	if c := tr.Counts()["F|deferred"]; c != 4000 {
		t.Fatalf("index count = %d, want 4000", c)
	}
}
