package trace

import (
	"testing"
	"time"
)

// The disabled path is the contract: a nil handle must cost ≤1 ns/op
// and 0 allocs/op, because every hot path (greylist.Check, the SMTP
// verb loop, netsim.Dial) executes these calls unconditionally.

func BenchmarkDisabledVerb(b *testing.B) {
	var tc *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.Verb("RCPT", 451, "greylisted", time.Millisecond)
	}
}

func BenchmarkDisabledGreylist(b *testing.B) {
	var tc *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.Greylist("defer", "first-seen", "key", 300*time.Second, 1)
	}
}

func BenchmarkDisabledDial(b *testing.B) {
	var tc *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.Dial("10.0.0.1:25", nil)
	}
}

func BenchmarkDisabledStartAttempt(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := tr.StartAttempt(Tags{}, "u@d", 0, nil)
		tc.Finish("delivered")
	}
}

// Enabled-path costs, for BENCH_trace.json.

func BenchmarkEnabledVerb(b *testing.B) {
	tr := New(1)
	clock := newFakeClock()
	tc := tr.StartAttempt(Tags{Family: "F"}, "u@d", 0, clock.Now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Verb("RCPT", 451, "greylisted", time.Millisecond)
	}
}

func BenchmarkEnabledAttemptLifecycle(b *testing.B) {
	tr := New(1024)
	clock := newFakeClock()
	tags := Tags{Family: "Kelihos", Defense: "greylisting", Sample: 3, Threshold: 300 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := tr.StartAttempt(tags, "u@d", 0, clock.Now)
		tc.Dial("10.0.0.1:25", nil)
		tc.Verb("HELO", 250, "", 0)
		tc.Verb("MAIL", 250, "", 0)
		tc.Verb("RCPT", 451, "greylisted", 0)
		tc.Greylist("defer", "first-seen", "key", 300*time.Second, 1)
		tc.Finish("deferred")
	}
}

func BenchmarkRingPut(b *testing.B) {
	r := NewRing(4096)
	tr := New(1)
	tc := tr.StartAttempt(Tags{}, "u@d", 0, newFakeClock().Now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Put(tc)
	}
}

func BenchmarkRingPutParallel(b *testing.B) {
	r := NewRing(4096)
	tr := New(1)
	tc := tr.StartAttempt(Tags{}, "u@d", 0, newFakeClock().Now)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Put(tc)
		}
	})
}
