package trace

import "sync/atomic"

// Ring is a fixed-capacity lock-free buffer of finished traces. Put
// claims a slot with one atomic increment and stores the trace with
// one atomic pointer store; once the ring has wrapped, each Put
// overwrites the oldest retained trace. Readers never block writers.
type Ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

// NewRing returns a ring retaining the most recent capacity traces
// (clamped to at least 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], capacity)}
}

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Put stores t, evicting the oldest trace once the ring is full.
func (r *Ring) Put(t *Trace) {
	if t == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// Len returns how many traces the ring currently retains.
func (r *Ring) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	// A slot is claimed before it is stored, so under a racing Put a
	// claimed slot may still be empty; count only populated slots.
	count := 0
	for i := range r.slots {
		if uint64(i) >= n {
			break
		}
		if r.slots[i].Load() != nil {
			count++
		}
	}
	return count
}

// Snapshot returns the retained traces, oldest first. Under
// concurrent Puts the snapshot is a best-effort consistent view:
// slots claimed but not yet stored are skipped.
func (r *Ring) Snapshot() []*Trace {
	n := r.next.Load()
	capa := uint64(len(r.slots))
	out := make([]*Trace, 0, min(n, capa))
	if n <= capa {
		for i := uint64(0); i < n; i++ {
			if t := r.slots[i].Load(); t != nil {
				out = append(out, t)
			}
		}
		return out
	}
	// Wrapped: oldest surviving trace sits at next % cap.
	for i := uint64(0); i < capa; i++ {
		if t := r.slots[(n+i)%capa].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}
