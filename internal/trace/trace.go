// Package trace is a dependency-free span/event tracing subsystem for
// the message path: bot attempt → netsim dial → DNS MX walk → SMTP
// dialog → greylist/policy verdict → retry scheduling.
//
// A *Trace is a context-style handle carried alongside one SMTP
// conversation (or one queued message). Every method on *Trace and
// every Start* constructor on *Tracer is nil-safe: with tracing off
// the handle is nil and each call is a single pointer comparison —
// the disabled path is ≤1 ns/op and 0 allocs/op (see
// BenchmarkDisabled* and BENCH_trace.json). This mirrors the
// nil-until-Register pattern of internal/metrics.
//
// Completed traces are published to a fixed-capacity lock-free ring
// buffer (newest traces evict oldest) and counted in a family×outcome
// index. They can be exported as sorted JSONL (WriteJSONL) or browsed
// live at /debug/traces (Handler).
//
// The package deliberately imports nothing above the standard library
// so every layer — netsim, dnsresolver, smtpclient, smtpserver,
// greylist, policyd, mtaqueue, botnet — can record into a trace
// without import cycles.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event within a trace.
type Kind uint8

// Event kinds, in rough message-path order.
const (
	// KindAttempt marks the start of a delivery attempt (bot or MTA).
	KindAttempt Kind = iota + 1
	// KindDial records a simulated TCP dial and its outcome.
	KindDial
	// KindMX records one resolved MX host during the DNS walk (or the
	// walk's failure) — the nolisting fallthrough is visible as a
	// refused KindDial on the primary followed by a KindDial on the
	// secondary.
	KindMX
	// KindVerb records one SMTP verb: command, reply code, duration.
	KindVerb
	// KindGreylist records a greylisting verdict: triplet key,
	// decision, reason, wait remaining, attempt count.
	KindGreylist
	// KindPolicy records a policy-delegation (policyd) action.
	KindPolicy
	// KindQueue records retry scheduling (next attempt time, bounce).
	KindQueue
	// KindOutcome is the terminal event appended by Finish.
	KindOutcome
	// KindCheckpoint records scan-pipeline durability progress: a
	// verdict chunk flushed, a shard resumed, a partial chunk rescanned.
	KindCheckpoint
	// KindBypass records a greylisting bypass-chain stage match: the
	// deciding stage's name and its action ("bypass" or "rekey").
	KindBypass
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAttempt:
		return "attempt"
	case KindDial:
		return "dial"
	case KindMX:
		return "mx"
	case KindVerb:
		return "verb"
	case KindGreylist:
		return "greylist"
	case KindPolicy:
		return "policy"
	case KindQueue:
		return "queue"
	case KindOutcome:
		return "outcome"
	case KindCheckpoint:
		return "checkpoint"
	case KindBypass:
		return "bypass"
	default:
		return "unknown"
	}
}

// Event is one step of a traced conversation. The meaning of Name,
// Detail, Code and Dur depends on Kind:
//
//	dial      Name=remote addr         Detail=ok|error text
//	mx        Name=MX host             Detail=addrs/implicit note  Code=preference
//	verb      Name=SMTP verb           Detail=reply text           Code=reply code  Dur=verb latency
//	greylist  Name=decision            Detail=key + reason         Code=attempts    Dur=wait remaining
//	policy    Name=action              Detail=free text
//	queue     Name=retry-scheduled|…   Detail=free text            Dur=delay
//	outcome   Name=final outcome
type Event struct {
	Kind   Kind
	At     time.Time
	Name   string
	Detail string
	Code   int
	Dur    time.Duration
}

// Tags identify which experiment cell a trace belongs to. Family and
// Defense drive the /debug/traces filters and the attribution report.
type Tags struct {
	Family    string
	Defense   string
	Sample    int
	Threshold time.Duration
}

// Trace is an append-only sequence of events for one conversation,
// carrying a 64-bit ID. The zero value is not used directly; traces
// are created by a Tracer's Start* methods, and a nil *Trace is the
// valid "tracing off" handle — every method no-ops on it.
//
// A trace may be recorded into from two goroutines at once (the bot's
// client side and the simulated server's session goroutine share one
// handle via the connection), so recording takes a per-trace mutex.
// The nil fast path stays lock-free.
type Trace struct {
	id     uint64
	tracer *Tracer
	// now is the clock events are stamped with. Traces carry their
	// own clock closure because the package cannot import simtime and
	// a parallel lab run drives one independent virtual clock per
	// spec.
	now func() time.Time

	mu        sync.Mutex
	tags      Tags
	recipient string
	try       int
	start     time.Time
	end       time.Time
	outcome   string
	done      bool
	events    []Event
}

// ID returns the trace's 64-bit identifier (0 for a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Tags returns the experiment tags the trace was started with.
func (t *Trace) Tags() Tags {
	if t == nil {
		return Tags{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tags
}

// Recipient returns the recipient the traced attempt targets.
func (t *Trace) Recipient() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recipient
}

// Try returns the 0-based retry index of the latest attempt recorded.
func (t *Trace) Try() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.try
}

// Attempts returns how many delivery attempts the trace covers
// (Try+1; a multi-attempt mtaqueue trace advances Try per attempt).
func (t *Trace) Attempts() int {
	if t == nil {
		return 0
	}
	return t.Try() + 1
}

// Outcome returns the outcome passed to Finish ("" while live).
func (t *Trace) Outcome() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.outcome
}

// Start returns when the trace was started.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.start
}

// End returns when the trace was finished (zero while live).
func (t *Trace) End() time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.end
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// SetTry advances the trace to retry index try (used by multi-attempt
// message traces).
func (t *Trace) SetTry(try int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.try = try
	t.mu.Unlock()
}

// Add records a raw event. The typed helpers below are preferred.
func (t *Trace) Add(kind Kind, name, detail string, code int, dur time.Duration) {
	if t == nil {
		return
	}
	at := t.now()
	t.mu.Lock()
	if !t.done {
		t.events = append(t.events, Event{Kind: kind, At: at, Name: name, Detail: detail, Code: code, Dur: dur})
	}
	t.mu.Unlock()
}

// Attempt records the start of delivery attempt try (0-based).
//
// The helpers below keep their nil check in a wrapper small enough to
// inline, so the disabled (nil-handle) path costs one pointer
// comparison — the ≤1 ns/op contract proven by BenchmarkDisabled*.
func (t *Trace) Attempt(try int, detail string) {
	if t == nil {
		return
	}
	t.attempt(try, detail)
}

func (t *Trace) attempt(try int, detail string) {
	t.SetTry(try)
	t.Add(KindAttempt, "attempt", detail, try, 0)
}

// Dial records a dial of raddr; err nil means the connection opened.
func (t *Trace) Dial(raddr string, err error) {
	if t == nil {
		return
	}
	t.dial(raddr, err)
}

func (t *Trace) dial(raddr string, err error) {
	detail := "ok"
	if err != nil {
		detail = err.Error()
	}
	t.Add(KindDial, raddr, detail, 0, 0)
}

// Checkpoint records scan-pipeline durability progress: name is the
// step ("chunk-flush", "resume", "rescan"), detail carries the shard
// and index range, code a step-defined count, and dur how long the
// step took.
func (t *Trace) Checkpoint(name, detail string, code int, dur time.Duration) {
	if t == nil {
		return
	}
	t.Add(KindCheckpoint, name, detail, code, dur)
}

// MX records one host of the MX walk: its preference, how many
// addresses resolved, and whether it is an implicit (RFC 5321 §5.1)
// fallback A record.
func (t *Trace) MX(host string, pref, addrs int, implicit bool) {
	if t == nil {
		return
	}
	t.mx(host, pref, addrs, implicit)
}

func (t *Trace) mx(host string, pref, addrs int, implicit bool) {
	detail := plural(addrs, "addr")
	if implicit {
		detail += " implicit"
	}
	t.Add(KindMX, host, detail, pref, 0)
}

// MXError records a failed MX walk for domain.
func (t *Trace) MXError(domain string, err error) {
	if t == nil {
		return
	}
	t.Add(KindMX, domain, "error: "+err.Error(), -1, 0)
}

// Verb records one SMTP verb exchange with its reply code and
// latency.
func (t *Trace) Verb(verb string, code int, detail string, dur time.Duration) {
	if t == nil {
		return
	}
	t.Add(KindVerb, verb, detail, code, dur)
}

// Greylist records a greylisting verdict for key (the triplet's
// canonical form): the decision, its reason, the wait remaining
// before a retry would pass, and how many attempts the triplet has
// made.
func (t *Trace) Greylist(decision, reason, key string, wait time.Duration, attempts int) {
	if t == nil {
		return
	}
	t.Add(KindGreylist, decision, key+" "+reason, attempts, wait)
}

// Bypass records the greylisting bypass-chain stage that decided this
// attempt and its action ("bypass" accepts outright, "rekey" switches
// the greylist key to the sender's SPF domain).
func (t *Trace) Bypass(stage, action string) {
	if t == nil {
		return
	}
	t.Add(KindBypass, stage, action, 0, 0)
}

// Policy records a policy-delegation action (e.g. "defer_if_permit").
func (t *Trace) Policy(action, detail string) {
	if t == nil {
		return
	}
	t.Add(KindPolicy, action, detail, 0, 0)
}

// Queue records a retry-scheduling decision; delay is how far in the
// future the next attempt was scheduled (0 when none).
func (t *Trace) Queue(name, detail string, delay time.Duration) {
	if t == nil {
		return
	}
	t.Add(KindQueue, name, detail, 0, delay)
}

// Finish stamps the trace's end, appends the terminal outcome event
// and publishes the trace to its Tracer's ring buffer, index and
// sinks. Finish is idempotent; events recorded after it are dropped.
func (t *Trace) Finish(outcome string) {
	if t == nil {
		return
	}
	at := t.now()
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.outcome = outcome
	t.end = at
	t.events = append(t.events, Event{Kind: KindOutcome, At: at, Name: outcome})
	tracer := t.tracer
	t.mu.Unlock()
	if tracer != nil {
		tracer.finish(t)
	}
}

// Tracer creates traces and collects finished ones. A nil *Tracer is
// the valid "tracing off" state: its Start* methods return nil
// traces. Tracers are safe for concurrent use.
type Tracer struct {
	seq   atomic.Uint64
	ring  *Ring
	sinks atomic.Pointer[[]func(*Trace)]
	// index counts finished traces per family|outcome (values are
	// *atomic.Uint64).
	index    sync.Map
	finished atomic.Uint64
}

// New returns a Tracer whose ring buffer keeps the most recent
// capacity finished traces (capacity is clamped to at least 1).
func New(capacity int) *Tracer {
	return &Tracer{ring: NewRing(capacity)}
}

// splitmix64 spreads the sequential trace counter over the 64-bit ID
// space so IDs are useful exemplar labels.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (tr *Tracer) newTrace(tags Tags, recipient string, try int, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	t := &Trace{
		id:        splitmix64(tr.seq.Add(1)),
		tracer:    tr,
		now:       now,
		tags:      tags,
		recipient: recipient,
		try:       try,
		start:     now(),
	}
	return t
}

// StartAttempt begins a trace for one delivery attempt (retry index
// try) to recipient. now is the clock events are stamped with (nil =
// wall clock); lab runs pass their spec's virtual clock. Returns nil
// on a nil Tracer.
func (tr *Tracer) StartAttempt(tags Tags, recipient string, try int, now func() time.Time) *Trace {
	if tr == nil {
		return nil
	}
	return tr.startAttempt(tags, recipient, try, now)
}

func (tr *Tracer) startAttempt(tags Tags, recipient string, try int, now func() time.Time) *Trace {
	t := tr.newTrace(tags, recipient, try, now)
	t.events = append(t.events, Event{Kind: KindAttempt, At: t.start, Name: "attempt", Code: try})
	return t
}

// StartMessage begins a multi-attempt trace for a queued message
// (mtaqueue); attempts advance via SetTry. Returns nil on a nil
// Tracer.
func (tr *Tracer) StartMessage(tags Tags, recipient string, now func() time.Time) *Trace {
	if tr == nil {
		return nil
	}
	return tr.newTrace(tags, recipient, 0, now)
}

// StartSession begins a server-originated trace for an inbound SMTP
// or policy session from clientIP — used by daemons whose clients
// carry no trace of their own. Returns nil on a nil Tracer.
func (tr *Tracer) StartSession(tags Tags, clientIP string, now func() time.Time) *Trace {
	if tr == nil {
		return nil
	}
	t := tr.newTrace(tags, "", 0, now)
	t.events = append(t.events, Event{Kind: KindAttempt, At: t.start, Name: "session", Detail: clientIP})
	return t
}

// AddSink registers fn to be called with every finished trace (after
// it is placed in the ring). Sinks must be fast and are called from
// the finishing goroutine.
func (tr *Tracer) AddSink(fn func(*Trace)) {
	if tr == nil || fn == nil {
		return
	}
	for {
		old := tr.sinks.Load()
		var next []func(*Trace)
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, fn)
		if tr.sinks.CompareAndSwap(old, &next) {
			return
		}
	}
}

func (tr *Tracer) finish(t *Trace) {
	tr.ring.Put(t)
	tr.finished.Add(1)
	tags := t.Tags()
	key := tags.Family + "|" + t.Outcome()
	c, ok := tr.index.Load(key)
	if !ok {
		c, _ = tr.index.LoadOrStore(key, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)
	if sinks := tr.sinks.Load(); sinks != nil {
		for _, fn := range *sinks {
			fn(t)
		}
	}
}

// Finished returns how many traces have completed over the tracer's
// lifetime (including ones the ring has since evicted).
func (tr *Tracer) Finished() uint64 {
	if tr == nil {
		return 0
	}
	return tr.finished.Load()
}

// Len returns how many finished traces the ring currently holds.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	return tr.ring.Len()
}

// Cap returns the ring capacity.
func (tr *Tracer) Cap() int {
	if tr == nil {
		return 0
	}
	return tr.ring.Cap()
}

// Snapshot returns the retained finished traces, oldest first.
func (tr *Tracer) Snapshot() []*Trace {
	if tr == nil {
		return nil
	}
	return tr.ring.Snapshot()
}

// Counts returns the family|outcome index: how many traces finished
// per family and outcome, keyed "family|outcome".
func (tr *Tracer) Counts() map[string]uint64 {
	if tr == nil {
		return nil
	}
	out := make(map[string]uint64)
	tr.index.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

// Carrier is implemented by connections that carry the client's trace
// across a simulated network, letting the server side record into the
// same per-attempt trace without an import cycle.
type Carrier interface {
	Trace() *Trace
}

// FromConn extracts the trace carried by a connection, or nil if the
// connection carries none.
func FromConn(c any) *Trace {
	if carrier, ok := c.(Carrier); ok {
		return carrier.Trace()
	}
	return nil
}

func plural(n int, what string) string {
	if n == 1 {
		return "1 " + what
	}
	return itoa(n) + " " + what + "s"
}

// itoa avoids strconv in the one cold spot that needs it — keeps the
// import surface tiny.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
