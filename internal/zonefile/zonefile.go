// Package zonefile reads and writes a practical subset of the RFC 1035
// master file format, so nolisting deployments built with this library
// can be exported to — and loaded from — the zone files a real DNS
// operator works with.
//
// Supported: $ORIGIN and $TTL directives, comments (;), the @ owner
// shorthand, relative and absolute owner names, optional TTL and class
// fields in either order, and the record types the reproduction models
// (A, AAAA, NS, CNAME, PTR, MX, TXT, SOA). Unsupported (rejected, never
// silently mangled): multi-line parentheses records, $INCLUDE, \#
// generic rdata.
package zonefile

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
)

// DefaultTTL applies when a file sets no $TTL and a record has none.
const DefaultTTL = 300

// Parse reads a master file into a zone. The origin argument seeds
// $ORIGIN; a $ORIGIN directive in the file overrides it. An empty origin
// with no directive is an error.
func Parse(r io.Reader, origin string) (*dnsserver.Zone, error) {
	p := &parser{
		origin: dnsmsg.CanonicalName(origin),
		ttl:    DefaultTTL,
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if err := p.line(sc.Text()); err != nil {
			return nil, fmt.Errorf("zonefile: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("zonefile: %w", err)
	}
	if p.zone == nil {
		if p.origin == "" {
			return nil, fmt.Errorf("zonefile: no origin (pass one or use $ORIGIN)")
		}
		p.zone = dnsserver.NewZone(p.origin)
	}
	return p.zone, nil
}

type parser struct {
	origin    string
	ttl       uint32
	lastOwner string
	zone      *dnsserver.Zone
}

func (p *parser) ensureZone() error {
	if p.zone != nil {
		return nil
	}
	if p.origin == "" {
		return fmt.Errorf("record before any origin is known")
	}
	p.zone = dnsserver.NewZone(p.origin)
	return nil
}

func (p *parser) line(raw string) error {
	line := raw
	if i := strings.IndexByte(line, ';'); i >= 0 {
		// Comments — naive strip is fine because we reject quoted
		// semicolons only in TXT, handled below via token check.
		if !strings.Contains(line[:i], `"`) {
			line = line[:i]
		}
	}
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.ContainsAny(line, "()") {
		return fmt.Errorf("multi-line records (parentheses) are not supported")
	}

	// Directives.
	fields := strings.Fields(line)
	switch strings.ToUpper(fields[0]) {
	case "$ORIGIN":
		if len(fields) != 2 {
			return fmt.Errorf("$ORIGIN wants one argument")
		}
		p.origin = dnsmsg.CanonicalName(fields[1])
		return nil
	case "$TTL":
		if len(fields) != 2 {
			return fmt.Errorf("$TTL wants one argument")
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("$TTL: %w", err)
		}
		p.ttl = uint32(v)
		return nil
	case "$INCLUDE":
		return fmt.Errorf("$INCLUDE is not supported")
	}

	if err := p.ensureZone(); err != nil {
		return err
	}

	// Owner: absent (leading whitespace) repeats the previous owner.
	var owner string
	rest := fields
	if line[0] == ' ' || line[0] == '\t' {
		if p.lastOwner == "" {
			return fmt.Errorf("record with no owner and no previous owner")
		}
		owner = p.lastOwner
	} else {
		owner = p.absolute(fields[0])
		rest = fields[1:]
	}
	p.lastOwner = owner

	// Optional TTL and class, in either order.
	ttl := p.ttl
	class := dnsmsg.ClassINET
	for len(rest) > 0 {
		tok := strings.ToUpper(rest[0])
		if v, err := strconv.ParseUint(tok, 10, 32); err == nil {
			ttl = uint32(v)
			rest = rest[1:]
			continue
		}
		if tok == "IN" {
			rest = rest[1:]
			continue
		}
		break
	}
	if len(rest) == 0 {
		return fmt.Errorf("missing record type")
	}
	typ := strings.ToUpper(rest[0])
	rdata := rest[1:]

	rr := dnsmsg.RR{Name: owner, Class: class, TTL: ttl}
	switch typ {
	case "A":
		if len(rdata) != 1 {
			return fmt.Errorf("A wants one address")
		}
		a, err := dnsmsg.ParseIPv4(rdata[0])
		if err != nil {
			return err
		}
		rr.Type, rr.Data = dnsmsg.TypeA, a
	case "MX":
		if len(rdata) != 2 {
			return fmt.Errorf("MX wants preference and host")
		}
		pref, err := strconv.ParseUint(rdata[0], 10, 16)
		if err != nil {
			return fmt.Errorf("MX preference: %w", err)
		}
		rr.Type = dnsmsg.TypeMX
		rr.Data = dnsmsg.MX{Preference: uint16(pref), Host: p.absolute(rdata[1])}
	case "NS":
		if len(rdata) != 1 {
			return fmt.Errorf("NS wants one host")
		}
		rr.Type, rr.Data = dnsmsg.TypeNS, dnsmsg.NS{Host: p.absolute(rdata[0])}
	case "CNAME":
		if len(rdata) != 1 {
			return fmt.Errorf("CNAME wants one target")
		}
		rr.Type, rr.Data = dnsmsg.TypeCNAME, dnsmsg.CNAME{Target: p.absolute(rdata[0])}
	case "PTR":
		if len(rdata) != 1 {
			return fmt.Errorf("PTR wants one target")
		}
		rr.Type, rr.Data = dnsmsg.TypePTR, dnsmsg.PTR{Target: p.absolute(rdata[0])}
	case "TXT":
		strs, err := parseTXT(strings.Join(rdata, " "))
		if err != nil {
			return err
		}
		rr.Type, rr.Data = dnsmsg.TypeTXT, dnsmsg.TXT{Strings: strs}
	case "SOA":
		if len(rdata) != 7 {
			return fmt.Errorf("SOA wants mname rname serial refresh retry expire minimum")
		}
		var nums [5]uint32
		for i, f := range rdata[2:] {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return fmt.Errorf("SOA field %d: %w", i+3, err)
			}
			nums[i] = uint32(v)
		}
		rr.Type = dnsmsg.TypeSOA
		rr.Data = dnsmsg.SOA{
			MName: p.absolute(rdata[0]), RName: p.absolute(rdata[1]),
			Serial: nums[0], Refresh: nums[1], Retry: nums[2], Expire: nums[3], Minimum: nums[4],
		}
	case "AAAA":
		if len(rdata) != 1 {
			return fmt.Errorf("AAAA wants one address")
		}
		ip := net.ParseIP(rdata[0])
		if ip == nil || ip.To4() != nil {
			return fmt.Errorf("AAAA: %q is not an IPv6 address", rdata[0])
		}
		var aaaa dnsmsg.AAAA
		copy(aaaa.IP[:], ip.To16())
		rr.Type, rr.Data = dnsmsg.TypeAAAA, aaaa
	default:
		return fmt.Errorf("unsupported record type %q", typ)
	}
	return p.zone.Add(rr)
}

// absolute resolves an owner/target token against the origin: "@" is the
// origin, names ending in "." are absolute, everything else is relative.
func (p *parser) absolute(name string) string {
	if name == "@" {
		return p.origin
	}
	if strings.HasSuffix(name, ".") {
		return dnsmsg.CanonicalName(name)
	}
	if p.origin == "" {
		return dnsmsg.CanonicalName(name)
	}
	return dnsmsg.CanonicalName(name + "." + p.origin)
}

// parseTXT handles quoted strings ("a b" "c") and bare tokens.
func parseTXT(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		if s[0] == '"' {
			end := strings.IndexByte(s[1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated TXT string")
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
			continue
		}
		sp := strings.IndexAny(s, " \t")
		if sp < 0 {
			out = append(out, s)
			break
		}
		out = append(out, s[:sp])
		s = strings.TrimSpace(s[sp:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty TXT rdata")
	}
	return out, nil
}

// Format writes the zone as a master file, records grouped by owner and
// sorted for stable output. Round trip: Parse(Format(z)) yields an
// equivalent zone.
func Format(w io.Writer, zone *dnsserver.Zone) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$ORIGIN %s.\n$TTL %d\n", zone.Origin(), DefaultTTL)
	for _, name := range zone.Names() {
		rrs, _ := zone.Lookup(name, dnsmsg.TypeANY)
		sort.SliceStable(rrs, func(i, j int) bool { return rrs[i].Type < rrs[j].Type })
		for _, rr := range rrs {
			owner := name
			if owner == zone.Origin() {
				owner = "@"
			} else {
				owner = strings.TrimSuffix(owner, "."+zone.Origin())
			}
			data, err := formatRData(rr)
			if err != nil {
				return fmt.Errorf("zonefile: %s: %w", name, err)
			}
			fmt.Fprintf(bw, "%s\t%d\tIN\t%s\t%s\n", owner, rr.TTL, rr.Type, data)
		}
	}
	return bw.Flush()
}

func formatRData(rr dnsmsg.RR) (string, error) {
	switch d := rr.Data.(type) {
	case dnsmsg.A:
		return d.String(), nil
	case dnsmsg.AAAA:
		return d.String(), nil
	case dnsmsg.MX:
		return fmt.Sprintf("%d %s.", d.Preference, d.Host), nil
	case dnsmsg.NS:
		return d.Host + ".", nil
	case dnsmsg.CNAME:
		return d.Target + ".", nil
	case dnsmsg.PTR:
		return d.Target + ".", nil
	case dnsmsg.TXT:
		parts := make([]string, len(d.Strings))
		for i, s := range d.Strings {
			parts[i] = `"` + s + `"`
		}
		return strings.Join(parts, " "), nil
	case dnsmsg.SOA:
		return fmt.Sprintf("%s. %s. %d %d %d %d %d",
			d.MName, d.RName, d.Serial, d.Refresh, d.Retry, d.Expire, d.Minimum), nil
	default:
		return "", fmt.Errorf("type %s has no text form", rr.Type)
	}
}
