package zonefile

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
	"repro/internal/nolist"
)

const sampleZone = `
; the Figure 1 nolisting layout
$ORIGIN foo.net.
$TTL 600
@	IN	SOA	ns1 hostmaster 2015022801 7200 3600 1209600 300
@	IN	NS	ns1
@	300	IN	MX	0 smtp
@	300	IN	MX	15 smtp1.foo.net.
smtp	IN	A	1.2.3.4
smtp1	IN	A	1.2.3.5
ns1	IN	A	1.2.3.6
www	IN	CNAME	@
txt	IN	TXT	"v=spf1 -all" "second string"
`

func parseSample(t *testing.T) *dnsserver.Zone {
	t.Helper()
	z, err := Parse(strings.NewReader(sampleZone), "")
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestParseBasics(t *testing.T) {
	z := parseSample(t)
	if z.Origin() != "foo.net" {
		t.Fatalf("origin = %q", z.Origin())
	}
	mxs, ok := z.Lookup("foo.net", dnsmsg.TypeMX)
	if !ok || len(mxs) != 2 {
		t.Fatalf("MX = %v", mxs)
	}
	hosts := map[uint16]string{}
	for _, rr := range mxs {
		mx := rr.Data.(dnsmsg.MX)
		hosts[mx.Preference] = mx.Host
		if rr.TTL != 300 {
			t.Errorf("MX TTL = %d, want explicit 300", rr.TTL)
		}
	}
	if hosts[0] != "smtp.foo.net" || hosts[15] != "smtp1.foo.net" {
		t.Fatalf("MX hosts = %v (relative and absolute names must both resolve)", hosts)
	}
	as, _ := z.Lookup("smtp.foo.net", dnsmsg.TypeA)
	if len(as) != 1 || as[0].Data.(dnsmsg.A).String() != "1.2.3.4" {
		t.Fatalf("A = %v", as)
	}
	if as[0].TTL != 600 {
		t.Fatalf("A TTL = %d, want $TTL 600", as[0].TTL)
	}
	cn, _ := z.Lookup("www.foo.net", dnsmsg.TypeCNAME)
	if len(cn) != 1 || cn[0].Data.(dnsmsg.CNAME).Target != "foo.net" {
		t.Fatalf("CNAME = %v (@ must resolve to origin)", cn)
	}
	txt, _ := z.Lookup("txt.foo.net", dnsmsg.TypeTXT)
	want := []string{"v=spf1 -all", "second string"}
	if len(txt) != 1 || !reflect.DeepEqual(txt[0].Data.(dnsmsg.TXT).Strings, want) {
		t.Fatalf("TXT = %v", txt)
	}
	soa, _ := z.Lookup("foo.net", dnsmsg.TypeSOA)
	if len(soa) != 1 || soa[0].Data.(dnsmsg.SOA).Serial != 2015022801 {
		t.Fatalf("SOA = %v", soa)
	}
}

func TestParseOriginArgument(t *testing.T) {
	z, err := Parse(strings.NewReader("@ IN A 9.9.9.9\n"), "bar.org")
	if err != nil {
		t.Fatal(err)
	}
	if as, _ := z.Lookup("bar.org", dnsmsg.TypeA); len(as) != 1 {
		t.Fatalf("A = %v", as)
	}
}

func TestParseRepeatedOwner(t *testing.T) {
	src := "$ORIGIN x.example.\nhost IN A 1.1.1.1\n\tIN A 1.1.1.2\n"
	z, err := Parse(strings.NewReader(src), "")
	if err != nil {
		t.Fatal(err)
	}
	as, _ := z.Lookup("host.x.example", dnsmsg.TypeA)
	if len(as) != 2 {
		t.Fatalf("A records = %v (blank owner must repeat previous)", as)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no origin":        "host IN A 1.1.1.1\n",
		"bad A":            "$ORIGIN x.\nh IN A not-an-ip\n",
		"bad MX pref":      "$ORIGIN x.\nh IN MX abc mail\n",
		"short MX":         "$ORIGIN x.\nh IN MX 10\n",
		"unknown type":     "$ORIGIN x.\nh IN FROB data\n",
		"missing type":     "$ORIGIN x.\nh 300 IN\n",
		"parens":           "$ORIGIN x.\nh IN SOA a b ( 1 2 3 4 5 )\n",
		"$INCLUDE":         "$INCLUDE other.zone\n",
		"bad $TTL":         "$TTL soon\n",
		"bad $ORIGIN":      "$ORIGIN\n",
		"unterminated TXT": "$ORIGIN x.\nh IN TXT \"open\n",
		"short SOA":        "$ORIGIN x.\nh IN SOA a b 1 2 3\n",
		"leading blank":    "$ORIGIN x.\n\tIN A 1.1.1.1\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src), ""); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	z := parseSample(t)
	var buf bytes.Buffer
	if err := Format(&buf, z); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if z2.Origin() != z.Origin() {
		t.Fatalf("origin %q vs %q", z2.Origin(), z.Origin())
	}
	names1, names2 := z.Names(), z2.Names()
	if !reflect.DeepEqual(names1, names2) {
		t.Fatalf("names %v vs %v", names1, names2)
	}
	for _, name := range names1 {
		a, _ := z.Lookup(name, dnsmsg.TypeANY)
		b, _ := z2.Lookup(name, dnsmsg.TypeANY)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d records", name, len(a), len(b))
		}
		// Compare as rendered strings, order-insensitively; TTLs may
		// differ only where the file's $TTL applied (we formatted with
		// explicit TTLs, so they must match exactly).
		sa, sb := renderAll(a), renderAll(b)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("%s:\n%v\nvs\n%v", name, sa, sb)
		}
	}
}

func renderAll(rrs []dnsmsg.RR) []string {
	out := make([]string, len(rrs))
	for i, rr := range rrs {
		out[i] = rr.String()
	}
	sort.Strings(out)
	return out
}

func TestNolistingDeploymentExport(t *testing.T) {
	// The practical workflow: build a nolisting deployment with the
	// library, export it as a zone file an operator can load into BIND.
	dep := nolist.Deployment{
		Domain:   "corp.example",
		DeadHost: "mx1.corp.example", DeadIP: "198.51.100.1",
		LiveHost: "mx2.corp.example", LiveIP: "198.51.100.2",
	}
	zone, err := dep.Zone()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Format(&buf, zone); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"$ORIGIN corp.example.", "MX\t0 mx1.corp.example.", "MX\t15 mx2.corp.example.", "198.51.100.1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("export missing %q:\n%s", want, text)
		}
	}
	// And it round-trips into a servable zone.
	z2, err := Parse(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	mxs, _ := z2.Lookup("corp.example", dnsmsg.TypeMX)
	if len(mxs) != 2 {
		t.Fatalf("MX = %v", mxs)
	}
}

func TestParseAAAA(t *testing.T) {
	z, err := Parse(strings.NewReader("$ORIGIN x.example.\nh IN AAAA 2001:db8::1\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	rrs, _ := z.Lookup("h.x.example", dnsmsg.TypeAAAA)
	if len(rrs) != 1 {
		t.Fatalf("AAAA = %v", rrs)
	}
	if got := rrs[0].Data.(dnsmsg.AAAA).String(); got != "2001:db8:0:0:0:0:0:1" {
		t.Fatalf("AAAA = %q", got)
	}
	// Round trip through Format.
	var buf bytes.Buffer
	if err := Format(&buf, z); err != nil {
		t.Fatal(err)
	}
	z2, err := Parse(&buf, "")
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if rrs2, _ := z2.Lookup("h.x.example", dnsmsg.TypeAAAA); len(rrs2) != 1 {
		t.Fatalf("AAAA lost in round trip")
	}
	// IPv4 or garbage in an AAAA is rejected.
	for _, bad := range []string{"1.2.3.4", "zz::1", ""} {
		if _, err := Parse(strings.NewReader("$ORIGIN x.\nh IN AAAA "+bad+"\n"), ""); err == nil {
			t.Errorf("AAAA %q accepted", bad)
		}
	}
}
