package lab

import (
	"fmt"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/nolist"
)

// The paper's "Results Validity" section asks the question its snapshot
// cannot answer: "The effectiveness of these two techniques can change in
// the future and it is important to know when they will become obsolete."
// This file implements that projection as an experiment.
//
// An "evolved" bot is one that has adopted BOTH counter-countermeasures:
// RFC-compliant MX walking (beats nolisting) and greylisting-compatible
// retransmission (beats greylisting). The paper observes that in 2015 the
// top families each mastered one but not both. Obsolescence sweeps the
// fraction of spam volume sent by evolved bots and measures, by running
// the actual simulations, how much spam each defense still blocks.

// EvolvedFamily returns the hypothetical future bot: Darkmailer's MX
// walking plus Kelihos' retry ladder.
func EvolvedFamily() botnet.Family {
	evolved := botnet.Kelihos()
	evolved.Name = "Evolved"
	evolved.BotnetSpamShare = 0
	evolved.Behavior = nolist.BehaviorRFCCompliant
	return evolved
}

// ObsolescencePoint is one sweep sample.
type ObsolescencePoint struct {
	// EvolvedShare is the fraction of spam volume from evolved bots.
	EvolvedShare float64
	// BlockedByDefense maps each defense to the fraction of total spam
	// volume it blocks at this evolution level (relative to the Table I
	// families' 93.02% botnet-spam coverage, normalized to 1.0).
	BlockedByDefense map[core.Defense]float64
}

// Obsolescence runs the sweep: for each requested evolved share, the 2015
// family mix shrinks proportionally and the evolved bot takes the rest.
// Per-family blocked/passed outcomes come from live lab runs (with the
// given campaign size), not assumptions.
func Obsolescence(evolvedShares []float64, recipients int) ([]ObsolescencePoint, error) {
	return ObsolescenceWorkers(evolvedShares, recipients, 0)
}

// ObsolescenceWorkers is Obsolescence with an explicit runner worker
// count (0 = GOMAXPROCS, 1 = serial). The 20 measurement runs
// (5 families × 4 defenses) fan out across the pool.
func ObsolescenceWorkers(evolvedShares []float64, recipients, workers int) ([]ObsolescencePoint, error) {
	defenses := []core.Defense{
		core.DefenseNone, core.DefenseNolisting, core.DefenseGreylisting, core.DefenseBoth,
	}

	// Measure each family (current four + evolved) once per defense.
	// Kelihos' longest retry peak is ~25h; the default thresholds are
	// all far below it, so one threshold per defense suffices.
	families := append(botnet.Families(), EvolvedFamily())
	specs := make([]Spec, 0, len(families)*len(defenses))
	for _, f := range families {
		for _, d := range defenses {
			specs = append(specs, Spec{
				Defense:    d,
				Threshold:  300 * time.Second,
				Family:     f,
				SampleID:   1,
				Recipients: recipients,
			})
		}
	}
	r := Runner{Workers: workers}
	results, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	blocked := make(map[string]map[core.Defense]bool, len(families))
	for i := range results {
		res := &results[i]
		name := res.Spec.Family.Name
		if blocked[name] == nil {
			blocked[name] = make(map[core.Defense]bool, len(defenses))
		}
		blocked[name][res.Spec.Defense] = res.Blocked()
	}

	// Normalize the 2015 volume mix to 1.0.
	current := botnet.Families()
	totalShare := botnet.TotalBotnetShare()

	out := make([]ObsolescencePoint, 0, len(evolvedShares))
	for _, evolved := range evolvedShares {
		if evolved < 0 {
			evolved = 0
		}
		if evolved > 1 {
			evolved = 1
		}
		point := ObsolescencePoint{
			EvolvedShare:     evolved,
			BlockedByDefense: make(map[core.Defense]float64, len(defenses)),
		}
		for _, d := range defenses {
			sum := 0.0
			for _, f := range current {
				weight := (1 - evolved) * f.BotnetSpamShare / totalShare
				if blocked[f.Name][d] {
					sum += weight
				}
			}
			if blocked["Evolved"][d] {
				sum += evolved
			}
			point.BlockedByDefense[d] = sum
		}
		out = append(out, point)
	}
	return out, nil
}

// SwarmCost measures the system-side cost of greylisting that Section VI
// mentions ("a cost for the system, for example in terms of disk space
// and computation resources"): a botnet swarm of `bots` fire-and-forget
// senders, each from its own address, spamming `recipients` mailboxes,
// leaves one pending-triplet record per (bot, recipient) pair in the
// greylist store until the retry window expires them.
type SwarmCostResult struct {
	// PendingRecords is the store size right after the campaign.
	PendingRecords int
	// Checks is the number of policy decisions the engine made.
	Checks uint64
	// DroppedByGC is how many records the expiry GC reclaims after the
	// retry window.
	DroppedByGC int
}

// SwarmCost runs the swarm against a greylisting-only lab.
func SwarmCost(bots, recipients int) (res *SwarmCostResult, err error) {
	l, err := New(Config{Defense: core.DefenseGreylisting})
	if err != nil {
		return nil, err
	}
	defer func() {
		// Teardown failures matter here: a leaked MX listener would
		// skew the next experiment's dial counters.
		if cerr := l.Close(); err == nil && cerr != nil {
			err = cerr
			res = nil
		}
	}()

	for b := 0; b < bots; b++ {
		bot, err := botnet.New(botnet.Cutwail(), botnet.Env{
			Net:      l.Net,
			Resolver: l.Resolver,
			Sched:    l.Sched,
			SourceIP: fmt.Sprintf("203.%d.%d.%d", (b>>16)&255, (b>>8)&255, b&255),
			Seed:     int64(b),
		})
		if err != nil {
			return nil, err
		}
		rcpts := make([]string, recipients)
		for i := range rcpts {
			rcpts[i] = fmt.Sprintf("user%d@%s", i, TargetDomain)
		}
		bot.Launch(botnet.Campaign{
			Domain:     TargetDomain,
			Sender:     fmt.Sprintf("bot%d@swarm.example", b),
			Recipients: rcpts,
			Data:       botnet.SpamPayload("Cutwail", "swarm"),
		})
	}
	l.Sched.Run()

	g := l.Domain.Greylister()
	res = &SwarmCostResult{
		PendingRecords: g.PendingCount(),
		Checks:         g.Stats().Checks,
	}
	// Jump past the retry window and collect.
	l.Clock.Advance(g.Policy().RetryWindow + time.Hour)
	res.DroppedByGC = g.GC()
	return res, nil
}
