package lab

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/metrics"
)

// TestDeriveSeedPinned pins the per-(family, sample) seeds. These
// values are load-bearing: every committed results/ rendering that
// involves bot jitter (fig3, fig4) was generated with them, so an
// accidental change to the derivation shows up here before it shows up
// as golden-file drift.
func TestDeriveSeedPinned(t *testing.T) {
	want := map[string][2]int64{
		"Cutwail":        {-4400068927071187643, -4400072225606072276},
		"Kelihos":        {-5457686844359103329, -5457685744847475118},
		"Darkmailer":     {-5806468692987313114, -5806469792498941325},
		"Darkmailer(v3)": {2633038791469305044, 2633042090004189677},
		"Evolved":        {-4526638535602946449, -4526637436091318238},
	}
	for family, seeds := range want {
		for i, wantSeed := range seeds {
			if got := DeriveSeed(family, i+1); got != wantSeed {
				t.Errorf("DeriveSeed(%q, %d) = %d, want %d", family, i+1, got, wantSeed)
			}
		}
	}
}

// TestDeriveSeedNoLengthCollision is the regression test for the old
// sampleID*1000+len(name) derivation: Cutwail and Kelihos share a name
// length and used to share every seed.
func TestDeriveSeedNoLengthCollision(t *testing.T) {
	if len("Cutwail") != len("Kelihos") {
		t.Fatal("test premise broken: names no longer share a length")
	}
	for s := 1; s <= 6; s++ {
		if DeriveSeed("Cutwail", s) == DeriveSeed("Kelihos", s) {
			t.Errorf("sample %d: Cutwail and Kelihos derive the same seed", s)
		}
	}
	// And samples within a family must differ too.
	if DeriveSeed("Kelihos", 1) == DeriveSeed("Kelihos", 2) {
		t.Error("Kelihos samples 1 and 2 derive the same seed")
	}
}

// TestSpecDefaults checks withDefaults resolves every derived field and
// that explicit fields survive.
func TestSpecDefaults(t *testing.T) {
	s := Spec{Family: botnet.Kelihos(), SampleID: 2, Recipients: 3}.withDefaults()
	if s.Seed != DeriveSeed("Kelihos", 2) {
		t.Errorf("seed = %d", s.Seed)
	}
	if s.SourceIP != "203.0.113.12" {
		t.Errorf("source = %q", s.SourceIP)
	}
	if s.Sender != "sample2@kelihos.bot.example" {
		t.Errorf("sender = %q", s.Sender)
	}
	if len(s.RecipientAddrs) != 3 || s.RecipientAddrs[0] != "user0@"+TargetDomain {
		t.Errorf("recipients = %v", s.RecipientAddrs)
	}
	if len(s.Payload) == 0 {
		t.Error("no payload derived")
	}

	explicit := Spec{
		Family: botnet.Kelihos(), SampleID: 1,
		Seed: 42, SourceIP: "203.0.113.250", Sender: "x@y.example",
		RecipientAddrs: []string{"a@" + TargetDomain},
		Payload:        []byte("body"),
	}.withDefaults()
	if explicit.Seed != 42 || explicit.SourceIP != "203.0.113.250" ||
		explicit.Sender != "x@y.example" || len(explicit.RecipientAddrs) != 1 ||
		string(explicit.Payload) != "body" {
		t.Errorf("explicit fields overwritten: %+v", explicit)
	}
}

// TestRunnerMatchesSerial runs the same spec slice serially and on an
// oversubscribed pool and requires identical results — the runner's
// core determinism contract.
func TestRunnerMatchesSerial(t *testing.T) {
	specs := TableIISpecs(3)
	serial, err := (&Runner{Workers: 1}).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 16}).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(specs))
	}
	for i := range serial {
		// Inspect is a func field; compare the data fields.
		s, p := serial[i], parallel[i]
		s.Spec.Inspect, p.Spec.Inspect = nil, nil
		if !reflect.DeepEqual(s, p) {
			t.Errorf("spec %d: serial and parallel results differ:\n%+v\n%+v", i, s, p)
		}
	}
}

// TestRunnerStreamingMatchesRecording runs one spec in both sink modes:
// aggregates must agree, and only the recording run retains attempts.
func TestRunnerStreamingMatchesRecording(t *testing.T) {
	base := KelihosCDFSpec(300*time.Second, 5)
	stream := base
	stream.RecordAttempts = false
	results, err := (&Runner{Workers: 1}).Run([]Spec{base, stream})
	if err != nil {
		t.Fatal(err)
	}
	rec, agg := &results[0], &results[1]
	if rec.Delivered != agg.Delivered || rec.AttemptCount != agg.AttemptCount ||
		rec.Behavior != agg.Behavior || rec.VirtualElapsed != agg.VirtualElapsed {
		t.Errorf("aggregate drift between sink modes:\n%+v\n%+v", rec, agg)
	}
	if len(rec.Attempts) == 0 || rec.AttemptCount != len(rec.Attempts) {
		t.Errorf("recording run: %d attempts retained, count %d", len(rec.Attempts), rec.AttemptCount)
	}
	if agg.Attempts != nil {
		t.Errorf("streaming run retained %d attempts", len(agg.Attempts))
	}
}

// TestRunnerInspectError checks errors from the Inspect hook surface
// with spec context, and that the failing spec's siblings still ran.
func TestRunnerInspectError(t *testing.T) {
	boom := errors.New("boom")
	specs := []Spec{
		{Family: botnet.Cutwail(), SampleID: 1, Recipients: 1},
		{Family: botnet.Cutwail(), SampleID: 2, Recipients: 1,
			Inspect: func(*Lab, *Result) error { return boom }},
	}
	_, err := (&Runner{Workers: 2}).Run(specs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "Cutwail sample 2") {
		t.Errorf("error lacks spec context: %v", err)
	}
}

// TestSpecWindow bounds observation: a Kelihos run with a one-hour
// window sees only the first retry peak, never the delivery at
// 80 000-90 000 s.
func TestSpecWindow(t *testing.T) {
	spec := KelihosCDFSpec(21600*time.Second, 2)
	spec.Window = time.Hour
	results, err := (&Runner{Workers: 1}).Run([]Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	res := &results[0]
	if res.Delivered != 0 {
		t.Errorf("delivered %d inside a 1h window against a 6h threshold", res.Delivered)
	}
	// Initial attempt plus the 300-600 s retry per recipient.
	if res.AttemptCount != 4 {
		t.Errorf("attempts = %d, want 4 (2 recipients × initial+first retry)", res.AttemptCount)
	}
	if res.VirtualElapsed != time.Hour {
		t.Errorf("virtual elapsed = %v, want the full window", res.VirtualElapsed)
	}
}

// TestRunnerMetrics exercises the lab_* instruments end to end.
func TestRunnerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	r := &Runner{Workers: 4}
	r.Register(reg)
	specs := TableIISpecs(2)
	if _, err := r.Run(specs); err != nil {
		t.Fatal(err)
	}
	inst := r.inst.Load()
	if got := inst.specs.Value(); got != uint64(len(specs)) {
		t.Errorf("lab_specs_total = %d, want %d", got, len(specs))
	}
	if got := inst.inflight.Value(); got != 0 {
		t.Errorf("lab_labs_inflight = %d after Run, want 0", got)
	}
	if got := inst.virtualSeconds.Count(); got != uint64(len(specs)) {
		t.Errorf("lab_spec_virtual_seconds count = %d, want %d", got, len(specs))
	}
	if inst.virtualSeconds.Sum() <= 0 {
		t.Error("no virtual time accounted")
	}
	if got := inst.runWall.Count(); got != 1 {
		t.Errorf("lab_run_wall_seconds count = %d, want 1", got)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"lab_specs_total", "lab_labs_inflight", "lab_spec_virtual_seconds",
		"lab_spec_wall_seconds", "lab_run_wall_seconds",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("exposition lacks %s", name)
		}
	}
}

// TestRunnerSweep is the "sweep-ready" shape the runner exists for:
// N thresholds × M families in one call, with per-cell outcomes.
func TestRunnerSweep(t *testing.T) {
	thresholds := []time.Duration{5 * time.Second, 300 * time.Second, 21600 * time.Second}
	families := []botnet.Family{botnet.Cutwail(), botnet.Kelihos()}
	var specs []Spec
	for _, th := range thresholds {
		for _, f := range families {
			specs = append(specs, Spec{
				Defense: core.DefenseGreylisting, Threshold: th,
				Family: f, SampleID: 1, Recipients: 2,
			})
		}
	}
	results, err := (&Runner{}).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		res := &results[i]
		blocked := res.Blocked()
		kelihos := res.Spec.Family.Name == "Kelihos"
		switch {
		case !kelihos && !blocked:
			t.Errorf("Cutwail passed greylisting at %v", res.Spec.Threshold)
		case kelihos && blocked:
			// Kelihos beats every threshold its last peak outlasts —
			// all three here are below 80 000 s.
			t.Errorf("Kelihos blocked at %v", res.Spec.Threshold)
		}
	}
}

// TestRunSampleStillRecords pins the compatibility contract of the
// RunSample wrapper: full attempt log, derived spec fields resolved.
func TestRunSampleStillRecords(t *testing.T) {
	l, err := New(Config{Defense: core.DefenseGreylisting})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.RunSample(botnet.Cutwail(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) != 2 {
		t.Errorf("attempts = %d, want one per recipient", len(res.Attempts))
	}
	if res.Spec.Seed != DeriveSeed("Cutwail", 1) {
		t.Errorf("seed = %d", res.Spec.Seed)
	}
	if res.Spec.Recipients != 2 {
		t.Errorf("recipients = %d", res.Spec.Recipients)
	}
}
