package lab

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/botnet"
	"repro/internal/bypass"
	"repro/internal/core"
	"repro/internal/dnsbl"
	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/smtpclient"
	"repro/internal/spf"
	"repro/internal/trace"
)

// The bypass-layer study quantifies the trade every greylisting bypass
// heuristic makes. Section VI of the paper weighs greylisting's spam
// blocked against its cost — every legitimate first contact eats the
// triplet delay — and the filters that grew around greylisting
// (spfgreylist's SPF-domain keying, grayland's DNSWL and rDNS waivers,
// Postgrey's earned client whitelist) all try to spend that delay only
// on bot-looking senders. Each heuristic is also an attack surface.
// The study runs one bypass layer at a time in front of the triplet
// check and measures both sides:
//
//   - benign cost: how much first-contact delay two legitimate sender
//     profiles still pay — a conventional single-IP MTA, and a
//     webmail-style provider that retries from a rotating pool (the
//     Table III pathology: per-IP keying makes every retry look like a
//     fresh client);
//   - bot leakage: how many recipients each bot family reaches —
//     the Table I families plus SPFProbe, an adversary that publishes
//     its own SPF record, buys mail-server PTR names and gets its pool
//     DNSWL-listed, then retries through rotating IPs.
//
// Postgrey's deliveries-per-client auto-whitelist is disabled in every
// layer (including "off") so the columns isolate one mechanism each.

// Bypass layer names accepted by Config.Bypass / Spec.Bypass.
const (
	// LayerOff runs the plain triplet check (but, like every layer,
	// with the client auto-whitelist off — the study baseline).
	LayerOff = "off"
	// LayerSPF re-keys the triplet by sender domain when SPF passes.
	LayerSPF = "spf"
	// LayerDNSWL waives the dance for DNSWL-listed client IPs.
	LayerDNSWL = "dnswl"
	// LayerRDNS waives the dance for mail-server-looking PTR names.
	LayerRDNS = "rdns"
	// LayerEarned grants a per-client whitelist entry on the first
	// completed dance, auto-renewed on use (the -whiteexp knob).
	LayerEarned = "earned"
)

// BypassDNSWLOrigin is the DNS whitelist zone the lab publishes and
// the dnswl layer queries.
const BypassDNSWLOrigin = "wl.lab.example"

// bypassEarnedLifetime is the -whiteexp value the earned layer uses.
const bypassEarnedLifetime = 7 * 24 * time.Hour

// BypassLayers returns the study's layers in presentation order.
func BypassLayers() []string {
	return []string{LayerOff, LayerSPF, LayerDNSWL, LayerRDNS, LayerEarned}
}

// bypassStages maps a Config.Bypass layer to the chain stages core
// installs, adjusting the policy for the layers that live in the
// engine rather than the chain. Layer "" leaves everything untouched
// (the non-bypass experiments keep Postgrey defaults).
func (l *Lab) bypassStages(layer string, policy *greylist.Policy) ([]greylist.Stage, error) {
	if layer == "" {
		return nil, nil
	}
	// One mechanism per column: the client auto-whitelist would
	// otherwise shadow the layer under test.
	policy.AutoWhitelistAfter = 0
	switch layer {
	case LayerOff:
		return nil, nil
	case LayerSPF:
		checker := spf.NewCached(spf.New(l.Resolver), spf.CacheConfig{Clock: l.Clock})
		return []greylist.Stage{bypass.SPF(checker)}, nil
	case LayerDNSWL:
		return []greylist.Stage{bypass.DNSWL(l.Resolver, BypassDNSWLOrigin, bypass.CacheConfig{Clock: l.Clock})}, nil
	case LayerRDNS:
		return []greylist.Stage{bypass.RDNS(l.Resolver, bypass.CacheConfig{Clock: l.Clock})}, nil
	case LayerEarned:
		policy.EarnedLifetime = bypassEarnedLifetime
		return nil, nil
	}
	return nil, fmt.Errorf("unknown bypass layer %q", layer)
}

// bypassSender is one sender profile in the study.
type bypassSender struct {
	family    botnet.Family
	sender    string
	sourceIP  string
	sourceIPs []string
	benign    bool
}

// benignRetry is a conventional MTA queue: sendmail-style growing
// backoff, four redelivery passes.
func benignRetry() botnet.RetrySchedule {
	return botnet.RetrySchedule{Peaks: []botnet.RetryPeak{
		{Min: 600 * time.Second, Max: 900 * time.Second},
		{Min: 1800 * time.Second, Max: 2700 * time.Second},
		{Min: 5400 * time.Second, Max: 7200 * time.Second},
		{Min: 9000 * time.Second, Max: 10800 * time.Second},
	}}
}

// bypassSenders returns the study's sender profiles: two benign MTAs,
// the three Table I families the acceptance floor asks for, and the
// SPFProbe adversary. Order is presentation order.
func bypassSenders() []bypassSender {
	steady := botnet.Family{
		Name:         "BenignMTA",
		Behavior:     botnet.Families()[2].Behavior, // RFC-compliant MX walking
		Retry:        benignRetry(),
		Dialect:      botnet.Dialect{UseEHLO: true, SendQuit: true, HeloName: "mail.corp.example"},
		SendInterval: 60 * time.Second,
	}
	rotator := steady
	rotator.Name = "BenignRotator"
	rotator.Dialect.HeloName = "out1.bulk-sender.example"
	rotator.SendInterval = 30 * time.Second
	return []bypassSender{
		{family: steady, sender: "mta@corp.example", sourceIP: "198.51.100.10", benign: true},
		{family: rotator, sender: "news@bulk-sender.example", benign: true,
			sourceIPs: []string{"198.51.100.31", "198.51.100.32", "198.51.100.33", "198.51.100.34"}},
		{family: botnet.Cutwail()},
		{family: botnet.Kelihos()},
		{family: botnet.DarkmailerV3()},
		{family: botnet.SPFProbe(), sender: "offers@probe.example",
			sourceIPs: []string{"203.0.113.57", "203.0.113.58", "203.0.113.59"}},
	}
}

// setupBypassDNS publishes the study's extra DNS state into a lab:
// SPF records for the SPF-publishing senders (the benign MTAs and the
// probe — attacker-controlled zones exist regardless of the victim's
// layer), the DNSWL zone with its listings, and the PTR names. Records
// a layer's stage never queries are inert, so every spec shares this
// one hook.
func setupBypassDNS(l *Lab) error {
	for _, d := range []struct {
		domain string
		terms  []string
	}{
		{"corp.example", []string{"ip4:198.51.100.10", "-all"}},
		{"bulk-sender.example", []string{"ip4:198.51.100.31", "ip4:198.51.100.32", "ip4:198.51.100.33", "ip4:198.51.100.34", "-all"}},
		{"probe.example", []string{"ip4:203.0.113.56/29", "-all"}},
	} {
		z := dnsserver.NewZone(d.domain)
		z.MustAdd(dnsmsg.RR{Name: d.domain, Type: dnsmsg.TypeTXT, TTL: 300,
			Data: spf.Record(d.terms...)})
		l.DNS.AddZone(z)
	}

	wl := dnsbl.New(BypassDNSWLOrigin, l.DNS, l.Clock)
	for _, ip := range []string{
		"198.51.100.10", // the corp MTA earned its listing
		"198.51.100.31", "198.51.100.32", "198.51.100.33", "198.51.100.34",
		"203.0.113.57", "203.0.113.58", "203.0.113.59", // the probe bought its way on
	} {
		if err := wl.Add(ip); err != nil {
			return err
		}
	}

	ptr := dnsserver.NewZone("in-addr.arpa")
	for _, p := range []struct{ name, target string }{
		{"10.100.51.198", "mail.corp.example"},
		{"31.100.51.198", "out1.bulk-sender.example"},
		{"32.100.51.198", "out2.bulk-sender.example"},
		{"33.100.51.198", "out3.bulk-sender.example"},
		{"34.100.51.198", "out4.bulk-sender.example"},
		{"57.113.0.203", "smtp1.probe.example"}, // the probe's flattering names
		{"58.113.0.203", "smtp2.probe.example"},
		{"59.113.0.203", "smtp3.probe.example"},
	} {
		ptr.MustAdd(dnsmsg.RR{Name: p.name + ".in-addr.arpa", Type: dnsmsg.TypePTR, TTL: 300,
			Data: dnsmsg.PTR{Target: p.target}})
	}
	l.DNS.AddZone(ptr)
	return nil
}

// BypassCell is one sender's outcome under one layer.
type BypassCell struct {
	// Sender is the profile name (family name).
	Sender string
	// Delivered / Recipients count mailboxes reached.
	Delivered, Recipients int
	// MeanDelay averages, over delivered recipients, the time from the
	// sender's first attempt to acceptance. Benign profiles only.
	MeanDelay time.Duration
}

// BypassRow is one bypass layer's full outcome.
type BypassRow struct {
	// Layer is the Layer* constant.
	Layer string
	// Benign holds the legitimate profiles' cells (delay is the story).
	Benign []BypassCell
	// Bots holds the bot families' cells (leakage is the story).
	Bots []BypassCell
}

// BypassSpecs builds the study workload: every sender profile under
// every layer, greylisting on at the Postgrey threshold, in rendering
// order (layer-major).
func BypassSpecs(recipients int) []Spec {
	var specs []Spec
	for _, layer := range BypassLayers() {
		for _, s := range bypassSenders() {
			specs = append(specs, Spec{
				Defense:        core.DefenseGreylisting,
				Bypass:         layer,
				Family:         s.family,
				SampleID:       1,
				Recipients:     recipients,
				SourceIP:       s.sourceIP,
				SourceIPs:      s.sourceIPs,
				Sender:         s.sender,
				RecordAttempts: s.benign, // benign cells need per-delivery delays
				Setup:          setupBypassDNS,
			})
		}
	}
	return specs
}

// RunBypassStudy executes the study across workers labs (0 =
// GOMAXPROCS) and folds the results into one row per layer. Tracer,
// when non-nil, records every attempt.
func RunBypassStudy(recipients, workers int, tracer *trace.Tracer) ([]BypassRow, error) {
	senders := bypassSenders()
	specs := BypassSpecs(recipients)
	r := Runner{Workers: workers, Tracer: tracer}
	results, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	var rows []BypassRow
	for li, layer := range BypassLayers() {
		row := BypassRow{Layer: layer}
		for si, s := range senders {
			res := results[li*len(senders)+si]
			cell := BypassCell{
				Sender:     s.family.Name,
				Delivered:  res.Delivered,
				Recipients: len(res.Spec.RecipientAddrs),
			}
			if s.benign {
				cell.MeanDelay = meanDeliveryDelay(res.Attempts)
				row.Benign = append(row.Benign, cell)
			} else {
				row.Bots = append(row.Bots, cell)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// meanDeliveryDelay averages the first-attempt-to-acceptance offset
// over delivered recipients.
func meanDeliveryDelay(attempts []botnet.Attempt) time.Duration {
	var sum time.Duration
	var n int
	for _, a := range attempts {
		if a.Outcome == smtpclient.Delivered {
			sum += a.Offset
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// RenderBypassStudy formats the rows as the two-sided trade table:
// benign first-contact delay (with the saving relative to the off
// layer) against per-family bot leakage.
func RenderBypassStudy(rows []BypassRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bypass-layer study: benign first-contact delay vs bot leakage\n")
	fmt.Fprintf(&b, "(greylisting at the Postgrey 300 s threshold; client auto-whitelist off;\n")
	fmt.Fprintf(&b, " one bypass layer at a time ahead of the triplet check)\n\n")
	if len(rows) == 0 {
		return b.String()
	}

	fmt.Fprintf(&b, "Benign senders — delivered, mean delay, delay eliminated vs off:\n\n")
	fmt.Fprintf(&b, "  %-8s", "layer")
	for _, c := range rows[0].Benign {
		fmt.Fprintf(&b, "  %-30s", c.Sender)
	}
	fmt.Fprintf(&b, "\n")
	base := rows[0] // BypassLayers() puts LayerOff first
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-8s", row.Layer)
		for i, c := range row.Benign {
			cell := fmt.Sprintf("%d/%d  %6s  -%s",
				c.Delivered, c.Recipients, roundSeconds(c.MeanDelay),
				roundSeconds(base.Benign[i].MeanDelay-c.MeanDelay))
			fmt.Fprintf(&b, "  %-30s", cell)
		}
		fmt.Fprintf(&b, "\n")
	}

	fmt.Fprintf(&b, "\nBot leakage — recipients reached:\n\n")
	fmt.Fprintf(&b, "  %-8s", "layer")
	for _, c := range rows[0].Bots {
		fmt.Fprintf(&b, "  %-14s", c.Sender)
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-8s", row.Layer)
		for _, c := range row.Bots {
			fmt.Fprintf(&b, "  %-14s", fmt.Sprintf("%d/%d", c.Delivered, c.Recipients))
		}
		fmt.Fprintf(&b, "\n")
	}

	fmt.Fprintf(&b, "\nReading: the SPF layer is the only one that fixes the rotating-pool\n")
	fmt.Fprintf(&b, "sender without waiving the dance for it, and every layer's waiver is\n")
	fmt.Fprintf(&b, "exactly the surface SPFProbe walks through.\n")
	return b.String()
}

// roundSeconds renders a duration as whole seconds.
func roundSeconds(d time.Duration) string {
	return fmt.Sprintf("%ds", int(math.Round(d.Seconds())))
}
