package lab

import (
	"testing"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
)

// BenchmarkRunTableII measures the headline workload — the full Table II
// matrix (22 fresh labs) — serial vs. on the worker pool. The recorded
// serial/parallel pair is BENCH_lab.json's before/after: the serial
// number matches the pre-runner implementation (same per-lab work, same
// order), the parallel one is what the spec runner buys.
func BenchmarkRunTableII(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := RunTableIIWorkers(10, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 11 {
					b.Fatalf("rows = %d", len(rows))
				}
			}
		})
	}
}

// BenchmarkRunSample measures one fresh-lab sample run per family —
// the unit of work every batch entry point multiplies.
func BenchmarkRunSample(b *testing.B) {
	for _, f := range botnet.Families() {
		b.Run(f.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l, err := New(Config{Defense: core.DefenseGreylisting})
				if err != nil {
					b.Fatal(err)
				}
				res, err := l.RunSample(f, 1, 10)
				cerr := l.Close()
				if err != nil {
					b.Fatal(err)
				}
				if cerr != nil {
					b.Fatal(cerr)
				}
				if res.AttemptCount == 0 {
					b.Fatal("no attempts")
				}
			}
		})
	}
}

// BenchmarkRunSpecStreaming compares the two sink modes on a retry-heavy
// Kelihos campaign: the streaming path must not pay for the retained
// attempt log.
func BenchmarkRunSpecStreaming(b *testing.B) {
	for _, bc := range []struct {
		name   string
		record bool
	}{
		{"streaming", false},
		{"recording", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			spec := KelihosCDFSpec(300*time.Second, 50)
			spec.RecordAttempts = bc.record
			r := Runner{Workers: 1}
			for i := 0; i < b.N; i++ {
				results, err := r.Run([]Spec{spec})
				if err != nil {
					b.Fatal(err)
				}
				if results[0].Delivered == 0 {
					b.Fatal("Kelihos must deliver at 300s")
				}
			}
		})
	}
}
