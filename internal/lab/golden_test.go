package lab

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestRunnerGoldenByteIdentity mirrors scan.TestStudyResultGolden: one
// combined workload — the full Table II matrix plus the Figure 4
// timeline spec — rendered at workers = 1, GOMAXPROCS and an
// oversubscribed 32, asserting byte-identical output. Any scheduling
// dependence in the runner (shared rng, cross-lab state, out-of-order
// assembly) fails byte-for-byte.
func TestRunnerGoldenByteIdentity(t *testing.T) {
	render := func(workers int) string {
		specs := TableIISpecs(5)
		fig4 := KelihosCDFSpec(21600*time.Second, 10)
		specs = append(specs, fig4)

		r := Runner{Workers: workers}
		results, err := r.Run(specs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}

		var sb strings.Builder
		sb.WriteString(RenderTableII(MatrixFromResults(results[:len(results)-1])))
		sb.WriteString("\n")
		for _, a := range results[len(results)-1].Attempts {
			fmt.Fprintf(&sb, "%.3f,%d,%v\n",
				a.Offset.Seconds(), a.Try, a.Outcome.String())
		}
		return sb.String()
	}

	want := render(1)
	if !strings.Contains(want, "Kelihos") || !strings.Contains(want, ",") {
		t.Fatalf("implausible rendering:\n%s", want)
	}
	for _, workers := range []int{0, 32} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d: output drifted from serial run:\ngot:\n%s\nwant:\n%s",
				workers, got, want)
		}
	}
}
