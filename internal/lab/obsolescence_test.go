package lab

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/nolist"
)

func TestEvolvedFamilyBeatsBothDefenses(t *testing.T) {
	f := EvolvedFamily()
	if f.Behavior != nolist.BehaviorRFCCompliant || f.Retry.FireAndForget() {
		t.Fatalf("evolved family misconfigured: %+v", f)
	}
	for _, d := range []core.Defense{core.DefenseNolisting, core.DefenseGreylisting, core.DefenseBoth} {
		l, err := New(Config{Defense: d})
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.RunSample(f, 1, 3)
		l.Close()
		if err != nil {
			t.Fatal(err)
		}
		if res.Blocked() {
			t.Errorf("evolved family blocked by %v — it must defeat every defense", d)
		}
	}
}

func TestObsolescenceSweep(t *testing.T) {
	points, err := Obsolescence([]float64{0, 0.25, 0.5, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}

	// At zero evolution we recover the paper's 2015 picture (volumes
	// normalized to the 93.02% the families cover):
	// both ≈ 1.0, greylisting ≈ 56.69/93.02, nolisting ≈ 36.33/93.02.
	p0 := points[0]
	approx := func(got, want float64) bool { return math.Abs(got-want) < 0.01 }
	if !approx(p0.BlockedByDefense[core.DefenseBoth], 1.0) {
		t.Errorf("2015 both = %v, want 1.0", p0.BlockedByDefense[core.DefenseBoth])
	}
	if !approx(p0.BlockedByDefense[core.DefenseGreylisting], 56.69/93.02) {
		t.Errorf("2015 greylisting = %v", p0.BlockedByDefense[core.DefenseGreylisting])
	}
	if !approx(p0.BlockedByDefense[core.DefenseNolisting], 36.33/93.02) {
		t.Errorf("2015 nolisting = %v", p0.BlockedByDefense[core.DefenseNolisting])
	}
	if p0.BlockedByDefense[core.DefenseNone] != 0 {
		t.Errorf("no defense blocks nothing, got %v", p0.BlockedByDefense[core.DefenseNone])
	}

	// Effectiveness decays monotonically with evolution and hits zero
	// at full adoption — the obsolescence point.
	for _, d := range []core.Defense{core.DefenseNolisting, core.DefenseGreylisting, core.DefenseBoth} {
		prev := math.Inf(1)
		for _, p := range points {
			got := p.BlockedByDefense[d]
			if got > prev+1e-9 {
				t.Errorf("%v: effectiveness increased with evolution (%v -> %v)", d, prev, got)
			}
			prev = got
		}
		if final := points[len(points)-1].BlockedByDefense[d]; final != 0 {
			t.Errorf("%v: still blocks %v at full evolution", d, final)
		}
	}

	// Halfway: the combined defense blocks exactly the un-evolved half.
	if got := points[2].BlockedByDefense[core.DefenseBoth]; !approx(got, 0.5) {
		t.Errorf("both at 50%% evolution = %v, want 0.5", got)
	}
}

func TestObsolescenceClampsShares(t *testing.T) {
	points, err := Obsolescence([]float64{-0.5, 1.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].EvolvedShare != 0 || points[1].EvolvedShare != 1 {
		t.Fatalf("shares = %v, %v", points[0].EvolvedShare, points[1].EvolvedShare)
	}
}

func TestSwarmCost(t *testing.T) {
	const bots, recipients = 20, 5
	res, err := SwarmCost(bots, recipients)
	if err != nil {
		t.Fatal(err)
	}
	// One pending record per (bot, recipient) pair.
	if res.PendingRecords != bots*recipients {
		t.Fatalf("pending = %d, want %d", res.PendingRecords, bots*recipients)
	}
	if res.Checks < uint64(bots*recipients) {
		t.Fatalf("checks = %d", res.Checks)
	}
	// The GC reclaims everything after the retry window: the cost is
	// bounded, which is why the paper calls it acceptable.
	if res.DroppedByGC != bots*recipients {
		t.Fatalf("GC dropped %d, want %d", res.DroppedByGC, bots*recipients)
	}
}
