package lab

import (
	"strings"
	"testing"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestTracedRunExplainsBlockedAttempt is the issue's acceptance check in
// miniature: run a greylisted Cutwail cell and a nolisted Kelihos cell
// with tracing on, then show — from trace evidence alone — which span
// terminated a blocked attempt.
func TestTracedRunExplainsBlockedAttempt(t *testing.T) {
	tracer := trace.New(256)
	r := Runner{Workers: 1, Tracer: tracer}
	results, err := r.Run([]Spec{
		{Defense: core.DefenseGreylisting, Family: botnet.Cutwail(), SampleID: 1, Recipients: 3},
		{Defense: core.DefenseNolisting, Family: botnet.Kelihos(), SampleID: 1, Recipients: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !res.Blocked() {
			t.Fatalf("spec %d: expected the defense to block all deliveries", i)
		}
	}

	var sawGreylistDefer, sawRefusedDial bool
	for _, tr := range tracer.Snapshot() {
		tags := tr.Tags()
		switch {
		case tags.Family == "Cutwail" && tags.Defense == "greylisting":
			// The terminating span must be the greylist Defer verdict,
			// visible as both the greylist event and the 451 RCPT reply.
			if tr.Outcome() != "deferred" {
				t.Fatalf("Cutwail trace outcome = %q, want deferred", tr.Outcome())
			}
			if tags.Threshold != 300*time.Second {
				t.Fatalf("Cutwail trace threshold = %v, want Postgrey default", tags.Threshold)
			}
			var deferEvent, rcpt451 bool
			for _, ev := range tr.Events() {
				if ev.Kind == trace.KindGreylist && ev.Name == "defer" {
					if !strings.Contains(ev.Detail, "first-seen") {
						t.Fatalf("greylist event detail = %q, want first-seen reason", ev.Detail)
					}
					deferEvent = true
				}
				if ev.Kind == trace.KindVerb && ev.Name == "RCPT" && ev.Code == 451 {
					rcpt451 = true
				}
			}
			if !deferEvent || !rcpt451 {
				t.Fatalf("Cutwail trace lacks greylist Defer (%v) or 451 RCPT (%v):\n%+v",
					deferEvent, rcpt451, tr.Events())
			}
			sawGreylistDefer = true
		case tags.Family == "Kelihos" && tags.Defense == "nolisting":
			// Kelihos only dials the dead primary: the terminating span
			// is the refused TCP dial.
			if tr.Outcome() != "refused" {
				t.Fatalf("Kelihos trace outcome = %q, want refused", tr.Outcome())
			}
			var refusedDial bool
			for _, ev := range tr.Events() {
				if ev.Kind == trace.KindDial && strings.Contains(ev.Detail, "refused") {
					refusedDial = true
				}
			}
			if !refusedDial {
				t.Fatalf("Kelihos trace lacks a refused dial event:\n%+v", tr.Events())
			}
			sawRefusedDial = true
		}
	}
	if !sawGreylistDefer || !sawRefusedDial {
		t.Fatalf("missing traces: greylist defer seen=%v, refused dial seen=%v",
			sawGreylistDefer, sawRefusedDial)
	}
}

// TestTracedRunnerRace runs a Table II-shaped workload at 32 workers
// with tracing on — concurrent span recording from bot and server
// goroutines across many labs into one shared tracer. Run with -race
// (the tier-1 recipe does).
func TestTracedRunnerRace(t *testing.T) {
	tracer := trace.New(128)
	r := Runner{Workers: 32, Tracer: tracer}
	results, err := r.Run(TableIISpecs(2))
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	for _, res := range results {
		attempts += res.AttemptCount
	}
	if got := int(tracer.Finished()); got != attempts {
		t.Fatalf("finished traces = %d, want one per attempt = %d", got, attempts)
	}
	// Every spec's traces must carry its own tags (no cross-lab bleed).
	for _, tr := range tracer.Snapshot() {
		tags := tr.Tags()
		if tags.Family == "" || tags.Defense == "" || tags.Sample == 0 {
			t.Fatalf("trace %s has incomplete tags: %+v", trace.FormatID(tr.ID()), tags)
		}
	}
}
