package lab

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/greylist"
	"repro/internal/nolist"
	"repro/internal/trace"
)

// Spec describes one contained-lab experiment run: the victim's
// configuration (defense, threshold, exempt recipients) plus the
// campaign thrown at it (family, sample, recipients, seed) and how to
// observe it (window, attempt recording, inspection hook). Every
// bespoke experiment — Table II cells, the Figure 3/4 Kelihos runs,
// the Section V-A control — is a Spec; the Runner executes slices of
// them across a worker pool, one fresh Lab with an independent virtual
// clock per spec.
type Spec struct {
	// Defense selects the victim's protections.
	Defense core.Defense
	// Threshold is the greylisting threshold; 0 means the Postgrey
	// default of 300 s.
	Threshold time.Duration
	// UnprotectedRecipients are local parts exempt from greylisting
	// (the control addresses).
	UnprotectedRecipients []string
	// Bypass selects the victim's greylisting bypass layer (a Layer*
	// constant; "" means plain greylisting).
	Bypass string

	// Family is the malware family to run.
	Family botnet.Family
	// SampleID numbers the binary within the family (1-based, as in
	// Table II's sample rows).
	SampleID int
	// Recipients sizes the campaign: user0..userN-1@victim.example.
	// Ignored when RecipientAddrs is set.
	Recipients int
	// RecipientAddrs overrides the generated recipient list (the
	// control experiment mixes a protected user with the unprotected
	// postmaster).
	RecipientAddrs []string
	// Seed drives the bot's jitter; 0 derives the deterministic
	// per-(family, sample) seed with DeriveSeed.
	Seed int64
	// SourceIP is the infected machine's address; "" derives
	// 203.0.113.(10+SampleID).
	SourceIP string
	// SourceIPs, when set, is the sender's rotation pool: try n goes
	// out from SourceIPs[(n-1) mod len] (see botnet.Env.SourceIPs).
	SourceIPs []string
	// Sender is the envelope sender; "" derives
	// sample<ID>@<family>.bot.example.
	Sender string
	// Payload is the spam body; nil derives botnet.SpamPayload.
	Payload []byte

	// Window bounds the observation: 0 drives virtual time until every
	// scheduled attempt has fired (including Kelihos' day-later
	// retries); a positive window stops after that much virtual time
	// (the control experiment observes one hour).
	Window time.Duration
	// RecordAttempts retains the full per-attempt event stream in
	// Result.Attempts (timeline/CDF callers). When false the bot
	// streams attempts through an aggregating sink and the Result
	// carries counts and the inferred behaviour only — Table II's 22
	// cells retain nothing per sample.
	RecordAttempts bool
	// Inspect, when set, runs against the live Lab after the campaign
	// (before teardown): the hook for assertions that need the
	// victim's state, e.g. the control experiment's mailbox check.
	Inspect func(*Lab, *Result) error
	// Setup, when set, runs against the live Lab before the campaign
	// launches — the hook for publishing extra DNS state (SPF records,
	// DNSWL listings, PTR names) the bypass experiments need.
	Setup func(*Lab) error
}

// DeriveSeed returns the deterministic bot seed for a (family, sample)
// pair: FNV-1a over the family name folded with the sample ID. Every
// family gets an independent stream — unlike the former
// sampleID*1000+len(name) derivation, which handed identical seeds to
// families whose names merely share a length (Cutwail and Kelihos).
func DeriveSeed(family string, sampleID int) int64 {
	h := fnv.New64a()
	h.Write([]byte(family))
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(sampleID))
	h.Write(b[:])
	return int64(h.Sum64())
}

// withDefaults fills a spec's derived fields.
func (s Spec) withDefaults() Spec {
	if s.Seed == 0 {
		s.Seed = DeriveSeed(s.Family.Name, s.SampleID)
	}
	if s.SourceIP == "" {
		s.SourceIP = fmt.Sprintf("203.0.113.%d", 10+s.SampleID)
	}
	if s.Sender == "" {
		s.Sender = fmt.Sprintf("sample%d@%s.bot.example", s.SampleID, hostLabel(s.Family.Name))
	}
	if s.Payload == nil {
		s.Payload = botnet.SpamPayload(s.Family.Name, fmt.Sprintf("%s-%d", s.Family.Name, s.SampleID))
	}
	if s.RecipientAddrs == nil {
		addrs := make([]string, s.Recipients)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("user%d@%s", i, TargetDomain)
		}
		s.RecipientAddrs = addrs
	}
	return s
}

// labConfig projects the spec's victim-side fields.
func (s Spec) labConfig() Config {
	return Config{
		Defense:               s.Defense,
		Threshold:             s.Threshold,
		UnprotectedRecipients: s.UnprotectedRecipients,
		Bypass:                s.Bypass,
	}
}

// traceTags labels this spec's traces: family, sample, defense, and —
// when greylisting is deployed — the effective threshold.
func (s Spec) traceTags() trace.Tags {
	tags := trace.Tags{
		Family:  s.Family.Name,
		Defense: s.Defense.String(),
		Sample:  s.SampleID,
	}
	if s.Defense.Greylisting() {
		tags.Threshold = s.Threshold
		if tags.Threshold == 0 {
			tags.Threshold = greylist.DefaultPolicy().Threshold
		}
	}
	return tags
}

// Result is one spec's run outcome.
type Result struct {
	// Spec is the executed spec with every derived field resolved
	// (seed, source IP, sender, recipients), so a result is
	// self-describing and replayable.
	Spec Spec
	// AttemptCount is the total number of delivery attempts observed,
	// in both recording and streaming modes.
	AttemptCount int
	// Attempts is the full event stream; nil unless Spec.RecordAttempts.
	Attempts []botnet.Attempt
	// Delivered counts recipients whose message was delivered.
	Delivered int
	// Behavior is the MX-selection category inferred from the
	// connection log.
	Behavior nolist.Behavior
	// VirtualElapsed is how far the lab's virtual clock advanced — the
	// simulated duration of the campaign (Kelihos runs cover ~a day of
	// virtual time in milliseconds of wall clock).
	VirtualElapsed time.Duration
}

// Blocked reports whether the defense stopped every delivery.
func (r *Result) Blocked() bool { return r.Delivered == 0 }

// RunSpec executes the spec's campaign inside this lab. The spec's
// victim-side fields (Defense, Threshold, UnprotectedRecipients) are
// descriptive here — the receiver's configuration is what runs; the
// Runner is the path that builds a fresh Lab from them per spec.
func (l *Lab) RunSpec(spec Spec) (*Result, error) {
	spec = spec.withDefaults()

	var sink botnet.AttemptSink
	var rec *botnet.Recorder
	var tally *botnet.Tally
	if spec.RecordAttempts {
		rec = &botnet.Recorder{}
		sink = rec
	} else {
		tally = &botnet.Tally{}
		sink = tally
	}
	bot, err := botnet.New(spec.Family, botnet.Env{
		Net:       l.Net,
		Resolver:  l.Resolver,
		Sched:     l.Sched,
		SourceIP:  spec.SourceIP,
		SourceIPs: spec.SourceIPs,
		Seed:      spec.Seed,
		Sink:      sink,
		Tracer:    l.Tracer,
		TraceTags: spec.traceTags(),
	})
	if err != nil {
		return nil, err
	}
	if spec.Setup != nil {
		if err := spec.Setup(l); err != nil {
			return nil, fmt.Errorf("lab: setup: %w", err)
		}
	}
	bot.Launch(botnet.Campaign{
		Domain:     TargetDomain,
		Sender:     spec.Sender,
		Recipients: spec.RecipientAddrs,
		Data:       spec.Payload,
	})
	start := l.Clock.Now()
	if spec.Window > 0 {
		l.Sched.RunFor(spec.Window)
	} else {
		l.Sched.Run()
	}

	res := &Result{
		Spec:           spec,
		Delivered:      bot.Delivered(),
		VirtualElapsed: l.Clock.Now().Sub(start),
	}
	var contacted []string
	if rec != nil {
		res.Attempts = rec.Attempts()
		res.AttemptCount = len(res.Attempts)
		contacted = rec.ContactedHosts()
	} else {
		res.AttemptCount = tally.Attempts()
		contacted = tally.ContactedHosts()
	}
	res.Behavior = nolist.ClassifyBehavior(l.Domain.MXHosts(), contacted)
	if spec.Inspect != nil {
		if err := spec.Inspect(l, res); err != nil {
			return res, err
		}
	}
	return res, nil
}
