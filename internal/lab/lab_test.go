package lab

import (
	"strings"
	"testing"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/nolist"
)

// TestTableIIReproduction is the headline experiment: the full 11-sample
// matrix must match Table II exactly.
func TestTableIIReproduction(t *testing.T) {
	rows, err := RunTableII(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 samples", len(rows))
	}
	// Table II ground truth per family.
	want := map[string]struct{ grey, nolist bool }{
		"Cutwail":        {true, false},
		"Kelihos":        {false, true},
		"Darkmailer":     {true, false},
		"Darkmailer(v3)": {true, false},
	}
	perFamily := map[string]int{}
	for _, r := range rows {
		w := want[r.Family]
		if r.GreylistingEffective != w.grey {
			t.Errorf("%s sample %d: greylisting effective = %v, want %v",
				r.Family, r.SampleID, r.GreylistingEffective, w.grey)
		}
		if r.NolistingEffective != w.nolist {
			t.Errorf("%s sample %d: nolisting effective = %v, want %v",
				r.Family, r.SampleID, r.NolistingEffective, w.nolist)
		}
		perFamily[r.Family]++
	}
	// "all malware samples belonging to the same family shared the same
	// behavior" — verified implicitly by the per-sample assertions; the
	// sample counts must match Table I.
	if perFamily["Cutwail"] != 3 || perFamily["Kelihos"] != 6 ||
		perFamily["Darkmailer"] != 1 || perFamily["Darkmailer(v3)"] != 1 {
		t.Fatalf("per-family samples = %v", perFamily)
	}
}

func TestRenderTableII(t *testing.T) {
	rows := []MatrixRow{
		{Family: "Kelihos", SampleID: 1, GreylistingEffective: false, NolistingEffective: true},
		{Family: "Kelihos", SampleID: 2, GreylistingEffective: false, NolistingEffective: true},
	}
	out := RenderTableII(rows)
	if !strings.Contains(out, "Kelihos:") || !strings.Contains(out, "sample1") {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.Contains(out, "INEFFECTIVE") || !strings.Contains(out, "effective") {
		t.Fatalf("table:\n%s", out)
	}
}

// TestFigure3ThresholdInsensitivity reproduces Figure 3's key finding:
// the Kelihos delivery-delay CDF barely moves between a 5 s and a 300 s
// threshold, because the bot's first retry is never sooner than ~300 s.
func TestFigure3ThresholdInsensitivity(t *testing.T) {
	const n = 60
	cdf5, res5, err := KelihosDeliveryCDF(5*time.Second, n)
	if err != nil {
		t.Fatal(err)
	}
	cdf300, res300, err := KelihosDeliveryCDF(300*time.Second, n)
	if err != nil {
		t.Fatal(err)
	}
	if cdf5.N() != n || cdf300.N() != n {
		t.Fatalf("delivered: %d @5s, %d @300s, want all %d", cdf5.N(), cdf300.N(), n)
	}
	// Every delivery happens on the second try, inside the first retry
	// peak, at both thresholds.
	for _, res := range []*Result{res5, res300} {
		for _, a := range res.Attempts {
			if a.Try > 2 {
				t.Fatalf("attempt beyond second try: %+v", a)
			}
		}
	}
	// The two CDFs cover the same 300-600 s band: medians within the
	// peak and within 100 s of each other.
	m5, m300 := cdf5.Median(), cdf300.Median()
	for _, m := range []float64{m5, m300} {
		if m < 300 || m >= 600 {
			t.Fatalf("median %v outside the 300-600 s retry peak", m)
		}
	}
	if diff := m5 - m300; diff > 100 || diff < -100 {
		t.Fatalf("medians differ too much: %v vs %v", m5, m300)
	}
	// And no delivery beats the bot's built-in 300 s minimum, even with
	// the 5 s threshold — the whole point of the figure.
	if cdf5.Min() < 300 {
		t.Fatalf("delivery after %v s despite the bot's 300 s retry floor", cdf5.Min())
	}
}

// TestFigure4Timeline reproduces Figure 4: with a 21 600 s threshold the
// full retry ladder becomes visible — three peaks, failures below the
// threshold, deliveries above it.
func TestFigure4Timeline(t *testing.T) {
	const n = 40
	points, err := KelihosTimeline(21600*time.Second, n)
	if err != nil {
		t.Fatal(err)
	}
	// 4 attempts per recipient: initial + 3 retries.
	if len(points) != 4*n {
		t.Fatalf("points = %d, want %d", len(points), 4*n)
	}
	var delivered, failed int
	for _, p := range points {
		if p.Delivered {
			delivered++
			if p.Offset.Seconds() < 21600 {
				t.Fatalf("delivered below threshold: %+v", p)
			}
			if p.Try != 4 {
				t.Fatalf("delivery on try %d, want 4 (third retry peak)", p.Try)
			}
			if s := p.Offset.Seconds(); s < 80000 || s >= 90000 {
				t.Fatalf("delivery at %v s, want inside the 80000-90000 s peak", s)
			}
		} else {
			failed++
			if p.Offset.Seconds() >= 21600 {
				t.Fatalf("failed attempt above threshold: %+v", p)
			}
		}
	}
	if delivered != n {
		t.Fatalf("delivered = %d, want every message eventually through", delivered)
	}
	if failed != 3*n {
		t.Fatalf("failed = %d, want 3 per message", failed)
	}
}

func TestFigure4PeakStructure(t *testing.T) {
	points, err := KelihosTimeline(21600*time.Second, 60)
	if err != nil {
		t.Fatal(err)
	}
	centers, h := TimelinePeaks(points, 2000)
	if h == nil {
		t.Fatal("no histogram")
	}
	// The three Figure 4 peaks: one in 0-2000 (the 300-600 band), one
	// near 5000, one in 80000-90000.
	var early, mid, late bool
	for _, c := range centers {
		switch {
		case c < 2000:
			early = true
		case c >= 4000 && c < 7000:
			mid = true
		case c >= 80000 && c < 90000:
			late = true
		}
	}
	if !early || !mid || !late {
		t.Fatalf("peaks = %v, want the 300-600 / ~5000 / 80000-90000 s structure", centers)
	}
}

func TestTimelinePeaksEmpty(t *testing.T) {
	if centers, h := TimelinePeaks(nil, 100); centers != nil || h != nil {
		t.Fatal("TimelinePeaks on empty input should be nil")
	}
}

// TestControlExperiment reproduces Section V-A's validation: the
// unprotected postmaster receives the campaign immediately while the
// protected user's copy is still deferred, and the payloads match.
func TestControlExperiment(t *testing.T) {
	res, err := RunControlExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlDelivered == 0 {
		t.Fatal("control mailbox received nothing")
	}
	if res.ProtectedDelivered != 0 {
		t.Fatalf("protected user received %d messages below the 6h threshold", res.ProtectedDelivered)
	}
	if !res.SamePayload {
		t.Fatal("control copies differ — more than one spam task?")
	}
}

func TestRunSampleClassifiesBehavior(t *testing.T) {
	l, err := New(Config{Defense: core.DefenseNolisting})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := l.RunSample(botnet.Darkmailer(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Behavior != nolist.BehaviorRFCCompliant {
		t.Fatalf("behavior = %v", res.Behavior)
	}
	if res.Blocked() {
		t.Fatal("RFC-compliant sender must beat nolisting")
	}
}

func TestLabBothDefensesStopKelihos(t *testing.T) {
	// Kelihos beats greylisting and Cutwail beats nolisting, but
	// neither beats the combination.
	for _, f := range []botnet.Family{botnet.Kelihos(), botnet.Cutwail()} {
		l, err := New(Config{Defense: core.DefenseBoth})
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.RunSample(f, 1, 3)
		l.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Blocked() {
			t.Errorf("%s delivered %d through both defenses", f.Name, res.Delivered)
		}
	}
}
