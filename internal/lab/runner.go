package lab

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Runner executes a slice of Specs across a bounded worker pool. Each
// spec gets its own fresh Lab with an independent virtual clock, so
// specs share no mutable state and any worker count produces identical
// results; results are written at the spec's own index and returned in
// request order — the same determinism argument as report.RunMany and
// scan.RunStudyWorkers, pinned by the lab golden byte-identity test.
//
// The zero Runner is ready to use (GOMAXPROCS workers, no metrics).
type Runner struct {
	// Workers bounds the pool: 0 means GOMAXPROCS, 1 forces serial
	// execution.
	Workers int
	// Tracer, when non-nil, is installed on every lab the runner builds,
	// so each spec's attempts land in one shared trace store tagged by
	// family/sample/defense. Tracing never perturbs results — the golden
	// byte-identity test passes with it on or off.
	Tracer *trace.Tracer

	inst atomic.Pointer[runnerInstruments]
}

// runnerInstruments holds the optional counters installed by Register,
// reached through one atomic pointer load per spec (nil when no
// registry is attached — the uninstrumented runner pays that load
// only).
type runnerInstruments struct {
	specs          *metrics.Counter
	inflight       *metrics.Gauge
	virtualSeconds *metrics.Histogram
	specWall       *metrics.Histogram
	runWall        *metrics.Histogram
}

// labVirtualBuckets cover campaign virtual durations from
// fire-and-forget (sub-second: one immediate attempt) through Kelihos'
// 80 000-90 000 s third retry peak.
var labVirtualBuckets = []float64{
	1, 60, 300, 600, 3600, 7200, 21600, 43200, 86400, 120000, 200000,
}

// labWallBuckets cover per-spec and per-run wall clock from
// sub-millisecond test campaigns to minutes-long sweeps.
var labWallBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Register exports the runner's counters into reg under the lab_*
// namespace. Call it once before Run; instrumented runs observe one
// counter, one gauge and two histograms per spec.
func (r *Runner) Register(reg *metrics.Registry) {
	r.inst.Store(&runnerInstruments{
		specs: reg.Counter("lab_specs_total",
			"Experiment specs executed by the lab runner."),
		inflight: reg.Gauge("lab_labs_inflight",
			"Lab instances currently running a spec."),
		virtualSeconds: reg.Histogram("lab_spec_virtual_seconds",
			"Virtual time advanced per spec (simulated campaign duration).",
			labVirtualBuckets),
		specWall: reg.Histogram("lab_spec_wall_seconds",
			"Wall-clock duration of one spec (lab build, campaign, teardown).",
			labWallBuckets),
		runWall: reg.Histogram("lab_run_wall_seconds",
			"Wall-clock duration of one Runner.Run call.",
			labWallBuckets),
	})
}

// Run executes the specs and returns their results in request order.
// The first error (in request order) wins; the remaining specs still
// run to completion so partial failures never leak labs.
func (r *Runner) Run(specs []Spec) ([]Result, error) {
	started := time.Now()
	results := make([]Result, len(specs))
	errs := make([]error, len(specs))

	workers := r.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			results[i], errs[i] = r.runSpec(specs[i])
		}
	} else {
		var (
			next atomic.Int64
			wg   sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) {
						return
					}
					results[i], errs[i] = r.runSpec(specs[i])
				}
			}()
		}
		wg.Wait()
	}
	if inst := r.inst.Load(); inst != nil {
		inst.runWall.ObserveDuration(time.Since(started))
	}
	for i, err := range errs {
		if err != nil {
			s := specs[i]
			return nil, fmt.Errorf("lab: spec %d (%s sample %d vs %v): %w",
				i, s.Family.Name, s.SampleID, s.Defense, err)
		}
	}
	return results, nil
}

// runSpec builds a fresh lab, runs one spec in it, and tears the lab
// down — propagating the teardown error (the old runOnce dropped it).
func (r *Runner) runSpec(spec Spec) (Result, error) {
	inst := r.inst.Load()
	started := time.Now()
	if inst != nil {
		inst.inflight.Inc()
	}
	cfg := spec.labConfig()
	cfg.Tracer = r.Tracer
	l, err := New(cfg)
	if err != nil {
		if inst != nil {
			inst.inflight.Dec()
		}
		return Result{}, err
	}
	res, runErr := l.RunSpec(spec)
	closeErr := l.Close()
	if inst != nil {
		inst.inflight.Dec()
		inst.specs.Inc()
		if res != nil {
			inst.virtualSeconds.Observe(res.VirtualElapsed.Seconds())
		}
		inst.specWall.ObserveDuration(time.Since(started))
	}
	if runErr != nil {
		return deref(res), runErr
	}
	if closeErr != nil {
		return deref(res), closeErr
	}
	return deref(res), nil
}

func deref(r *Result) Result {
	if r == nil {
		return Result{}
	}
	return *r
}
