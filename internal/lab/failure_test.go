package lab

import (
	"errors"
	"testing"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/dnsmsg"
	"repro/internal/dnsresolver"
	"repro/internal/smtpclient"
)

// Failure-injection tests: the experiments must behave sensibly when the
// infrastructure itself misbehaves — servers going down mid-campaign,
// DNS flaking out — because the paper's scanners and labs had to survive
// exactly that (transient outages are the reason for the two-scan rule).

func TestSecondaryOutageMidRetrySequence(t *testing.T) {
	// Kelihos vs greylisting, but the live server goes down between the
	// first attempt and the first retry, and comes back before the
	// second retry. The bot's schedule is offset-anchored, so the
	// second retry (≈5000s) still lands, still beats the 300s
	// threshold, and the message is delivered.
	l, err := New(Config{Defense: core.DefenseGreylisting})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	bot, err := botnet.New(botnet.Kelihos(), botnet.Env{
		Net: l.Net, Resolver: l.Resolver, Sched: l.Sched,
		SourceIP: "203.0.113.77", Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot.Launch(botnet.Campaign{
		Domain: TargetDomain, Sender: "x@spam.example",
		Recipients: []string{"u@" + TargetDomain},
		Data:       botnet.SpamPayload("Kelihos", "outage"),
	})

	// Run the first attempt, then take the primary (the greylisting
	// server in this config) down across the first retry window.
	l.Sched.RunFor(10 * time.Second)
	l.Net.SetHostDown("10.0.0.1", true)
	l.Sched.RunFor(1000 * time.Second) // covers the 300-600s peak
	l.Net.SetHostDown("10.0.0.1", false)
	l.Sched.Run()

	attempts := bot.Attempts()
	// Initial (greylisted) + retry during the outage (unreachable) +
	// second retry at ~5000s, which clears the 300s threshold and
	// delivers — ending the sequence at 3 attempts.
	if len(attempts) != 3 {
		t.Fatalf("attempts = %d, want 3", len(attempts))
	}
	if attempts[0].Outcome != smtpclient.TransientFailure {
		t.Fatalf("first attempt = %v, want greylisted", attempts[0].Outcome)
	}
	if attempts[1].Outcome != smtpclient.Unreachable {
		t.Fatalf("retry during outage = %v, want unreachable", attempts[1].Outcome)
	}
	if attempts[2].Outcome != smtpclient.Delivered {
		t.Fatalf("post-recovery retry = %v, want delivered", attempts[2].Outcome)
	}
	if bot.Delivered() != 1 {
		t.Fatalf("delivered = %d", bot.Delivered())
	}
}

func TestPermanentOutageBlocksEveryone(t *testing.T) {
	l, err := New(Config{Defense: core.DefenseNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Net.SetHostDown("10.0.0.1", true)
	l.Net.SetHostDown("10.0.0.2", true)

	res, err := l.RunSample(botnet.Darkmailer(), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d through a fully-down domain", res.Delivered)
	}
	for _, a := range res.Attempts {
		if a.Outcome != smtpclient.Unreachable {
			t.Fatalf("attempt = %+v, want unreachable", a)
		}
	}
}

// flakyTransport fails the first n exchanges, then delegates.
type flakyTransport struct {
	inner dnsresolver.Transport
	fails int
}

var errDNSDown = errors.New("injected DNS failure")

func (f *flakyTransport) Exchange(q *dnsmsg.Message) (*dnsmsg.Message, error) {
	if f.fails > 0 {
		f.fails--
		return nil, errDNSDown
	}
	return f.inner.Exchange(q)
}

func TestFlakyDNSDuringCampaign(t *testing.T) {
	// The bot's first MX lookup fails outright; a retrying family
	// recovers on its next attempt once DNS is back.
	l, err := New(Config{Defense: core.DefenseNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	flaky := &flakyTransport{inner: dnsresolver.Direct(l.DNS), fails: 1}
	resolver := dnsresolver.New(flaky, l.Clock)
	resolver.DisableCache = true

	bot, err := botnet.New(botnet.Kelihos(), botnet.Env{
		Net: l.Net, Resolver: resolver, Sched: l.Sched,
		SourceIP: "203.0.113.88", Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot.Launch(botnet.Campaign{
		Domain: TargetDomain, Sender: "x@spam.example",
		Recipients: []string{"u@" + TargetDomain},
		Data:       botnet.SpamPayload("Kelihos", "flaky"),
	})
	l.Sched.Run()

	attempts := bot.Attempts()
	if len(attempts) < 2 {
		t.Fatalf("attempts = %d, want a retry after the DNS failure", len(attempts))
	}
	if attempts[0].Host != "" || attempts[0].Outcome != smtpclient.Unreachable {
		t.Fatalf("first attempt = %+v, want DNS-failed unreachable", attempts[0])
	}
	if bot.Delivered() != 1 {
		t.Fatalf("delivered = %d after DNS recovery", bot.Delivered())
	}
}

func TestFireAndForgetLosesMessageToTransientOutage(t *testing.T) {
	// The flip side: a fire-and-forget family that happens to hit a
	// transient outage loses the message forever, even with NO defense
	// deployed — volume-over-reliability in action.
	l, err := New(Config{Defense: core.DefenseNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Net.SetHostDown("10.0.0.1", true)
	l.Net.SetHostDown("10.0.0.2", true)

	bot, err := botnet.New(botnet.Cutwail(), botnet.Env{
		Net: l.Net, Resolver: l.Resolver, Sched: l.Sched,
		SourceIP: "203.0.113.99", Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	bot.Launch(botnet.Campaign{
		Domain: TargetDomain, Sender: "x@spam.example",
		Recipients: []string{"u@" + TargetDomain},
		Data:       botnet.SpamPayload("Cutwail", "outage"),
	})
	l.Sched.RunFor(time.Minute)

	// Servers come back — but Cutwail never retries.
	l.Net.SetHostDown("10.0.0.1", false)
	l.Net.SetHostDown("10.0.0.2", false)
	l.Sched.Run()

	if got := len(bot.Attempts()); got != 1 {
		t.Fatalf("attempts = %d, want 1 (fire and forget)", got)
	}
	if bot.Delivered() != 0 {
		t.Fatal("fire-and-forget delivered through an outage?")
	}
}
