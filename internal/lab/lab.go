// Package lab reproduces the paper's contained experiment environment
// (Section III): an "infected machine" (a botnet.Bot) whose DNS MX
// queries are intercepted and answered with records pointing at an
// instrumented mail server — our core.Domain — all running in virtual
// time.
//
// The experiments defined here regenerate:
//
//   - Table II — the defense-effectiveness matrix: each of the 11 malware
//     samples against nolisting and against greylisting.
//   - Figure 3 — the CDFs of Kelihos' delivery delays with greylisting
//     thresholds of 5 s and 300 s (nearly identical curves: the bot never
//     retries sooner than ~300 s, so the shorter threshold buys nothing).
//   - Figure 4 — Kelihos' full retransmission timeline against a 21 600 s
//     (6 h) threshold: failed attempts (below threshold) and the final
//     delivered ones, with the three characteristic peaks.
//   - The Section V-A control experiment: an unprotected postmaster
//     address that receives the same campaign immediately, proving the
//     greylisted and delivered messages belong to one spam task.
package lab

import (
	"fmt"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/dnsresolver"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/smtpclient"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TargetDomain is the victim domain used in all lab runs.
const TargetDomain = "victim.example"

// Lab is one instance of the contained environment.
type Lab struct {
	Net      *netsim.Network
	DNS      *dnsserver.Server
	Clock    *simtime.Sim
	Sched    *simtime.Scheduler
	Resolver *dnsresolver.Resolver
	Domain   *core.Domain
	// Metrics collects the victim's observability surface (greylist
	// engine, MX SMTP servers, intercepted DNS): labrun dumps it after a
	// run so an experiment's counters can be inspected post-hoc.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records every bot delivery attempt as an
	// end-to-end trace (MX walk, dials, server verbs, greylist verdict,
	// retry scheduling, outcome), tagged with the spec's family, sample,
	// defense and threshold.
	Tracer *trace.Tracer
}

// Config tunes a lab instance.
type Config struct {
	// Defense selects the victim's protections.
	Defense core.Defense
	// Threshold is the greylisting threshold (when greylisting is on);
	// 0 means the Postgrey default of 300 s.
	Threshold time.Duration
	// UnprotectedRecipients are local parts exempt from greylisting
	// (the control addresses).
	UnprotectedRecipients []string
	// Bypass selects a greylisting bypass layer for the victim (one of
	// the Layer* constants; "" or LayerOff means the plain triplet
	// check). Setting any layer also disables Postgrey's own
	// deliveries-per-client auto-whitelist, so the experiment measures
	// the chain stage alone.
	Bypass string
	// Tracer, when non-nil, is installed on the lab (see Lab.Tracer).
	Tracer *trace.Tracer
}

// New builds a lab with a freshly deployed victim domain.
func New(cfg Config) (*Lab, error) {
	l := &Lab{
		Net:    netsim.New(),
		DNS:    dnsserver.New(),
		Clock:  simtime.NewSim(simtime.Epoch),
		Tracer: cfg.Tracer,
	}
	l.Sched = simtime.NewScheduler(l.Clock)
	l.Resolver = dnsresolver.New(dnsresolver.Direct(l.DNS), l.Clock)
	l.Resolver.DisableCache = true

	policy := greylist.DefaultPolicy()
	if cfg.Threshold > 0 {
		policy.Threshold = cfg.Threshold
	}
	stages, err := l.bypassStages(cfg.Bypass, &policy)
	if err != nil {
		return nil, fmt.Errorf("lab: %w", err)
	}
	// The lab's retry window must accommodate Kelihos' 80 000-90 000 s
	// peak (Postgrey's 2-day default does, comfortably).
	domain, err := core.New(core.Config{
		Domain:                TargetDomain,
		PrimaryIP:             "10.0.0.1",
		SecondaryIP:           "10.0.0.2",
		Defense:               cfg.Defense,
		GreylistPolicy:        policy,
		BypassStages:          stages,
		UnprotectedRecipients: cfg.UnprotectedRecipients,
	}, core.Deps{Net: l.Net, DNS: l.DNS, Clock: l.Clock})
	if err != nil {
		return nil, fmt.Errorf("lab: %w", err)
	}
	l.Domain = domain
	l.Metrics = metrics.NewRegistry()
	l.Domain.Register(l.Metrics)
	l.DNS.Register(l.Metrics)
	return l, nil
}

// Close tears the lab down.
func (l *Lab) Close() error { return l.Domain.Close() }

// RunSample executes one malware sample against the lab's victim: launch
// a campaign with nRecipients targets and drive virtual time until every
// scheduled attempt (including Kelihos' day-later retries) has fired.
// It is the recording path — a thin wrapper over RunSpec that retains
// the full attempt log; batch callers go through the Runner instead.
func (l *Lab) RunSample(family botnet.Family, sampleID, nRecipients int) (*Result, error) {
	return l.RunSpec(Spec{
		Family:         family,
		SampleID:       sampleID,
		Recipients:     nRecipients,
		RecordAttempts: true,
	})
}

// hostLabel turns a family name like "Darkmailer(v3)" into a valid DNS
// label for synthesized sender domains.
func hostLabel(name string) string {
	var sb []byte
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			sb = append(sb, byte(r))
		case r >= 'A' && r <= 'Z':
			sb = append(sb, byte(r-'A'+'a'))
		}
	}
	if len(sb) == 0 {
		return "bot"
	}
	return string(sb)
}

// MatrixRow is one row of the Table II reproduction.
type MatrixRow struct {
	Family   string
	SampleID int
	// GreylistingEffective and NolistingEffective are Table II's two
	// columns: true means the technique blocked all spam from the
	// sample.
	GreylistingEffective bool
	NolistingEffective   bool
}

// TableIISpecs builds the Table II workload: every sample of every
// Table I family against both defenses (greylisting at the Postgrey
// default, then nolisting), in table row order. The specs stream
// attempts — Table II needs only blocked/delivered booleans.
func TableIISpecs(recipientsPerSample int) []Spec {
	var specs []Spec
	for _, family := range botnet.Families() {
		for s := 1; s <= family.Samples; s++ {
			for _, d := range []core.Defense{core.DefenseGreylisting, core.DefenseNolisting} {
				specs = append(specs, Spec{
					Defense:    d,
					Family:     family,
					SampleID:   s,
					Recipients: recipientsPerSample,
				})
			}
		}
	}
	return specs
}

// MatrixFromResults folds TableIISpecs results (greylisting/nolisting
// pairs in request order) into Table II rows.
func MatrixFromResults(results []Result) []MatrixRow {
	rows := make([]MatrixRow, 0, len(results)/2)
	for i := 0; i+1 < len(results); i += 2 {
		grey, nol := &results[i], &results[i+1]
		rows = append(rows, MatrixRow{
			Family:               grey.Spec.Family.Name,
			SampleID:             grey.Spec.SampleID,
			GreylistingEffective: grey.Blocked(),
			NolistingEffective:   nol.Blocked(),
		})
	}
	return rows
}

// RunTableII reproduces Table II on a GOMAXPROCS-wide runner: 22 specs
// (11 samples × 2 defenses), one fresh lab each, byte-identical output
// at any worker count.
func RunTableII(recipientsPerSample int) ([]MatrixRow, error) {
	return RunTableIIWorkers(recipientsPerSample, 0)
}

// RunTableIIWorkers is RunTableII with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial).
func RunTableIIWorkers(recipientsPerSample, workers int) ([]MatrixRow, error) {
	r := Runner{Workers: workers}
	results, err := r.Run(TableIISpecs(recipientsPerSample))
	if err != nil {
		return nil, err
	}
	return MatrixFromResults(results), nil
}

// RenderTableII formats matrix rows the way the paper prints Table II.
func RenderTableII(rows []MatrixRow) string {
	tbl := stats.NewTable("SAMPLE", "GREYLISTING", "NOLISTING")
	mark := func(effective bool) string {
		if effective {
			return "effective"
		}
		return "INEFFECTIVE"
	}
	last := ""
	for _, r := range rows {
		if r.Family != last {
			tbl.AddRow(r.Family + ":")
			last = r.Family
		}
		tbl.AddRow(fmt.Sprintf("  sample%d", r.SampleID), mark(r.GreylistingEffective), mark(r.NolistingEffective))
	}
	return tbl.String()
}

// KelihosCDFSpec is the Figure 3 spec for one threshold: a Kelihos
// sample against greylisting, attempt stream retained for the CDF.
func KelihosCDFSpec(threshold time.Duration, nRecipients int) Spec {
	return Spec{
		Defense:        core.DefenseGreylisting,
		Threshold:      threshold,
		Family:         botnet.Kelihos(),
		SampleID:       1,
		Recipients:     nRecipients,
		RecordAttempts: true,
	}
}

// KelihosDeliveryCDFs reproduces Figure 3 as one runner workload: one
// spec per threshold, fanned across workers (0 = GOMAXPROCS), CDFs of
// the delivery delays returned in threshold order. Every spec derives
// the same Kelihos seed, so the curves differ only through the
// threshold — the paper's point that 5 s buys nothing over 300 s.
func KelihosDeliveryCDFs(thresholds []time.Duration, nRecipients, workers int) ([]stats.CDF, []Result, error) {
	specs := make([]Spec, len(thresholds))
	for i, th := range thresholds {
		specs[i] = KelihosCDFSpec(th, nRecipients)
	}
	r := Runner{Workers: workers}
	results, err := r.Run(specs)
	if err != nil {
		return nil, nil, err
	}
	cdfs := make([]stats.CDF, len(results))
	for i := range results {
		var delays []time.Duration
		for _, a := range results[i].Attempts {
			if a.Outcome == smtpclient.Delivered {
				delays = append(delays, a.Offset)
			}
		}
		cdfs[i] = stats.NewDurationCDF(delays)
	}
	return cdfs, results, nil
}

// KelihosDeliveryCDF reproduces one Figure 3 curve: run a Kelihos sample
// against greylisting with the given threshold and return the CDF of the
// delivery delays of the messages that got through.
func KelihosDeliveryCDF(threshold time.Duration, nRecipients int) (stats.CDF, *Result, error) {
	cdfs, results, err := KelihosDeliveryCDFs([]time.Duration{threshold}, nRecipients, 1)
	if err != nil {
		return stats.CDF{}, nil, err
	}
	return cdfs[0], &results[0], nil
}

// TimelinePoint is one Figure 4 data point.
type TimelinePoint struct {
	// Offset is the retransmission delay since the message's first
	// attempt.
	Offset time.Duration
	// Try is the attempt number.
	Try int
	// Delivered marks the red dots (accepted attempts); failed blue
	// attempts have it false.
	Delivered bool
}

// KelihosTimeline reproduces Figure 4: every Kelihos delivery attempt
// against a high-threshold greylisting deployment (the paper used
// 21 600 s), flagged failed/delivered. It is a one-spec runner
// workload — the same KelihosCDFSpec, read as a timeline.
func KelihosTimeline(threshold time.Duration, nRecipients int) ([]TimelinePoint, error) {
	r := Runner{Workers: 1}
	results, err := r.Run([]Spec{KelihosCDFSpec(threshold, nRecipients)})
	if err != nil {
		return nil, err
	}
	points := make([]TimelinePoint, 0, len(results[0].Attempts))
	for _, a := range results[0].Attempts {
		points = append(points, TimelinePoint{
			Offset:    a.Offset,
			Try:       a.Try,
			Delivered: a.Outcome == smtpclient.Delivered,
		})
	}
	return points, nil
}

// TimelinePeaks summarizes a Figure 4 timeline into a histogram over
// offset seconds and returns the peak bucket centers, for checking the
// 300-600 / ~5 000 / 80 000-90 000 s structure.
func TimelinePeaks(points []TimelinePoint, bucketSeconds float64) ([]float64, *stats.Histogram) {
	if len(points) == 0 {
		return nil, nil
	}
	maxOff := 0.0
	for _, p := range points {
		if s := p.Offset.Seconds(); s > maxOff {
			maxOff = s
		}
	}
	n := int(maxOff/bucketSeconds) + 1
	h := stats.NewHistogram(0, float64(n)*bucketSeconds, n)
	for _, p := range points {
		if p.Try > 1 { // retransmissions only, as in Figure 4
			h.Observe(p.Offset.Seconds())
		}
	}
	var centers []float64
	for _, idx := range h.Peaks(1) {
		lo, hi := h.BucketBounds(idx)
		centers = append(centers, (lo+hi)/2)
	}
	return centers, h
}

// ControlResult is the Section V-A control experiment's outcome.
type ControlResult struct {
	// ProtectedDelivered counts deliveries to the greylisted user
	// within the observation window.
	ProtectedDelivered int
	// ControlDelivered counts deliveries to the unprotected postmaster.
	ControlDelivered int
	// SamePayload reports whether the control copies carry the same
	// message as the greylisted campaign — the evidence that "there
	// was only one spam task during the entire experiment".
	SamePayload bool
}

// ControlSpec builds the Section V-A control spec: a 21 600 s threshold,
// an unprotected postmaster next to a protected user, and a one-hour
// observation window (long enough for the first retry peak, far below
// the 6 h threshold). The Inspect hook fills out from the victim's
// mailboxes before the lab is torn down.
func ControlSpec(out *ControlResult) Spec {
	payload := botnet.SpamPayload("Kelihos", "control-task")
	return Spec{
		Defense:               core.DefenseGreylisting,
		Threshold:             21600 * time.Second,
		UnprotectedRecipients: []string{"postmaster"},
		Family:                botnet.Kelihos(),
		SampleID:              1,
		Seed:                  1,
		SourceIP:              "203.0.113.99",
		Sender:                "bot@spam.example",
		Payload:               payload,
		RecipientAddrs:        []string{"victim@" + TargetDomain, "postmaster@" + TargetDomain},
		Window:                time.Hour,
		Inspect: func(l *Lab, _ *Result) error {
			out.SamePayload = true
			for _, del := range l.Domain.InboxTo("postmaster@" + TargetDomain) {
				out.ControlDelivered++
				if string(del.Data) != string(payload) {
					out.SamePayload = false
				}
			}
			out.ProtectedDelivered = len(l.Domain.InboxTo("victim@" + TargetDomain))
			return nil
		},
	}
}

// RunControlExperiment reproduces Section V-A's check: with a 21 600 s
// threshold and an unprotected postmaster, a fire-and-forget-ish spam
// campaign lands immediately in the control mailbox while the protected
// user's copy is deferred.
func RunControlExperiment() (*ControlResult, error) {
	res := &ControlResult{}
	r := Runner{Workers: 1}
	if _, err := r.Run([]Spec{ControlSpec(res)}); err != nil {
		return nil, err
	}
	return res, nil
}
