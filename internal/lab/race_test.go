package lab

import (
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/botnet"
	"repro/internal/core"
	"repro/internal/metrics"
)

// TestRunnerConcurrencyRace drives many small specs through a small
// worker pool while other goroutines hammer the metrics registry —
// the production shape of a sweep with a live /metrics scrape. Run
// with -race (the tier-1 recipe does).
func TestRunnerConcurrencyRace(t *testing.T) {
	reg := metrics.NewRegistry()
	r := &Runner{Workers: 4}
	r.Register(reg)

	var specs []Spec
	for i := 0; i < 8; i++ {
		for _, f := range []botnet.Family{botnet.Cutwail(), botnet.Kelihos()} {
			specs = append(specs, Spec{
				Defense:    core.DefenseGreylisting,
				Threshold:  time.Duration(1+i) * 100 * time.Second,
				Family:     f,
				SampleID:   i + 1,
				Recipients: 2,
			})
		}
	}

	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := reg.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
				inst := r.inst.Load()
				_ = inst.specs.Value()
				_ = inst.inflight.Value()
				_ = inst.virtualSeconds.Sum()
			}
		}()
	}

	results, err := r.Run(specs)
	close(done)
	scrapers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("results = %d, want %d", len(results), len(specs))
	}
	for i := range results {
		if results[i].AttemptCount == 0 {
			t.Errorf("spec %d observed no attempts", i)
		}
	}
	if got := r.inst.Load().specs.Value(); got != uint64(len(specs)) {
		t.Errorf("lab_specs_total = %d, want %d", got, len(specs))
	}
}
