package lab

import (
	"testing"
	"time"
)

// bypassCells indexes a row's cells by sender name.
func bypassCells(t *testing.T, rows []BypassRow, layer string) map[string]BypassCell {
	t.Helper()
	for _, r := range rows {
		if r.Layer != layer {
			continue
		}
		cells := make(map[string]BypassCell)
		for _, c := range append(append([]BypassCell{}, r.Benign...), r.Bots...) {
			cells[c.Sender] = c
		}
		return cells
	}
	t.Fatalf("no row for layer %q", layer)
	return nil
}

// TestBypassStudyTrade pins the study's two-sided findings: what each
// layer saves the benign senders and what it leaks to the bots.
func TestBypassStudyTrade(t *testing.T) {
	rows, err := RunBypassStudy(20, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BypassLayers()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(BypassLayers()))
	}

	off := bypassCells(t, rows, LayerOff)
	// Baseline: benign senders pay the dance — the rotator
	// catastrophically (per-IP keying restarts its triplet every retry
	// until the pool wraps), and the probe's rotation keeps it out.
	if c := off["BenignMTA"]; c.Delivered != 20 || c.MeanDelay < 300*time.Second {
		t.Errorf("off BenignMTA = %+v, want all delivered after the dance", c)
	}
	if c := off["BenignRotator"]; c.Delivered != 20 || c.MeanDelay < 2*time.Hour {
		t.Errorf("off BenignRotator = %+v, want the pool-wrap delay", c)
	}
	for _, f := range []string{"Cutwail", "Darkmailer(v3)", "SPFProbe"} {
		if c := off[f]; c.Delivered != 0 {
			t.Errorf("off %s leaked %d/%d", f, c.Delivered, c.Recipients)
		}
	}
	if c := off["Kelihos"]; c.Delivered != 20 {
		t.Errorf("off Kelihos = %+v, want full leakage (it retries in place)", c)
	}

	// SPF keying: collapses the rotator's delay to one retry without
	// zeroing it — and the self-publishing probe now walks in.
	spfRow := bypassCells(t, rows, LayerSPF)
	if c := spfRow["BenignRotator"]; c.MeanDelay >= off["BenignRotator"].MeanDelay/4 || c.MeanDelay == 0 {
		t.Errorf("spf BenignRotator delay = %v (off %v), want collapsed but nonzero",
			c.MeanDelay, off["BenignRotator"].MeanDelay)
	}
	if c := spfRow["SPFProbe"]; c.Delivered != 20 {
		t.Errorf("spf SPFProbe = %+v, want full leakage", c)
	}

	// The waiver layers zero the benign delay — and wave the probe's
	// listed/flatteringly-named pool straight through.
	for _, layer := range []string{LayerDNSWL, LayerRDNS} {
		cells := bypassCells(t, rows, layer)
		for _, b := range []string{"BenignMTA", "BenignRotator"} {
			if c := cells[b]; c.Delivered != 20 || c.MeanDelay != 0 {
				t.Errorf("%s %s = %+v, want immediate delivery", layer, b, c)
			}
		}
		if c := cells["SPFProbe"]; c.Delivered != 20 {
			t.Errorf("%s SPFProbe = %+v, want full leakage", layer, c)
		}
	}

	// The earned whitelist helps only the steady sender (later
	// recipients ride the client's completed dance); rotation — benign
	// or hostile — never earns, because no single IP finishes a dance
	// before the retry moves on.
	earned := bypassCells(t, rows, LayerEarned)
	if c := earned["BenignMTA"]; !(c.MeanDelay < off["BenignMTA"].MeanDelay) {
		t.Errorf("earned BenignMTA delay = %v, want below off's %v",
			c.MeanDelay, off["BenignMTA"].MeanDelay)
	}
	if c := earned["SPFProbe"]; c.Delivered != 0 {
		t.Errorf("earned SPFProbe leaked %d/%d", c.Delivered, c.Recipients)
	}

	// No layer changes what the non-probe bot families achieve: the
	// Table I columns are flat across rows.
	for _, layer := range BypassLayers()[1:] {
		cells := bypassCells(t, rows, layer)
		for _, f := range []string{"Cutwail", "Kelihos", "Darkmailer(v3)"} {
			if cells[f].Delivered != off[f].Delivered {
				t.Errorf("%s %s delivered = %d, off = %d; layers must not change Table I families",
					layer, f, cells[f].Delivered, off[f].Delivered)
			}
		}
	}
}

// TestBypassStudyDeterministic is the chain-enabled half of the lab's
// byte-identity guarantee: the rendered study is identical at any
// worker count.
func TestBypassStudyDeterministic(t *testing.T) {
	serial, err := RunBypassStudy(10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunBypassStudy(10, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, b := RenderBypassStudy(serial), RenderBypassStudy(parallel)
	if a != b {
		t.Fatalf("worker count changed the study output:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}
