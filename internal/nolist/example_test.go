package nolist_test

import (
	"fmt"

	"repro/internal/nolist"
)

// Example builds the Figure 1 nolisting deployment and classifies two
// senders from their connection logs.
func Example() {
	dep := nolist.Deployment{
		Domain:   "foo.net",
		DeadHost: "smtp.foo.net", DeadIP: "1.2.3.4", // port 25 closed
		LiveHost: "smtp1.foo.net", LiveIP: "1.2.3.5",
	}
	zone, err := dep.Zone()
	if err != nil {
		panic(err)
	}
	fmt.Println("zone origin:", zone.Origin())

	mxs := []string{"smtp.foo.net", "smtp1.foo.net"}
	kelihosLog := []string{"smtp.foo.net", "smtp.foo.net"}    // hammers the dead primary
	compliantLog := []string{"smtp.foo.net", "smtp1.foo.net"} // walks to the secondary
	fmt.Println("kelihos-like: ", nolist.ClassifyBehavior(mxs, kelihosLog))
	fmt.Println("compliant MTA:", nolist.ClassifyBehavior(mxs, compliantLog))
	fmt.Println("nolisting stops kelihos-like senders:",
		nolist.ClassifyBehavior(mxs, kelihosLog).DefeatedByNolisting())

	// Output:
	// zone origin: foo.net
	// kelihos-like:  primary-only
	// compliant MTA: rfc-compliant
	// nolisting stops kelihos-like senders: true
}
