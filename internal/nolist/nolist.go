// Package nolist implements nolisting — the other half of the paper's
// subject matter — plus the two classifiers the paper's measurements are
// built on:
//
//   - Deployment describes a nolisting DNS configuration: a primary MX
//     record pointing to a host with a valid A record but no SMTP listener
//     and a fully functioning secondary MX (Section II, Figure 1).
//   - ClassifyDomain / FinalCategory implement the three-step scan
//     pipeline of Section IV-A that sorts every domain into the Figure 2
//     categories (one MX, multiple MX without nolisting, nolisting, DNS
//     misconfiguration), including the two-scans-two-months-apart rule
//     that separates real nolisting from transient primary failures.
//   - ClassifyBehavior implements Section IV-B's taxonomy of spam-bot MX
//     selection (RFC compliant, primary only, secondary only, all MX),
//     inferred from the servers a sender actually contacted.
package nolist

import (
	"fmt"

	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
)

// Deployment is a nolisting DNS configuration for one domain.
type Deployment struct {
	// Domain is the protected domain.
	Domain string
	// DeadHost/DeadIP are the primary MX: the A record must resolve
	// (the paper: "the common suggestion is to use a real machine that
	// has port 25 closed") but nothing listens on port 25.
	DeadHost string
	DeadIP   string
	// LiveHost/LiveIP are the working secondary MX.
	LiveHost string
	LiveIP   string
	// PrimaryPref/SecondaryPref are the MX preference values; the
	// defaults 0 and 15 mirror Figure 1. Lower preference = higher
	// priority.
	PrimaryPref   uint16
	SecondaryPref uint16
	// TTL applies to all records; 0 means 300.
	TTL uint32
}

// Validate checks the deployment is well-formed.
func (d Deployment) Validate() error {
	if d.Domain == "" {
		return fmt.Errorf("nolist: empty domain")
	}
	if d.DeadHost == "" || d.LiveHost == "" {
		return fmt.Errorf("nolist: %s: both MX hosts required", d.Domain)
	}
	if _, err := dnsmsg.ParseIPv4(d.DeadIP); err != nil {
		return fmt.Errorf("nolist: %s: dead host IP: %w", d.Domain, err)
	}
	if _, err := dnsmsg.ParseIPv4(d.LiveIP); err != nil {
		return fmt.Errorf("nolist: %s: live host IP: %w", d.Domain, err)
	}
	if pp, sp := d.prefs(); pp >= sp {
		return fmt.Errorf("nolist: %s: primary preference %d must be lower than secondary %d",
			d.Domain, pp, sp)
	}
	return nil
}

func (d Deployment) prefs() (primary, secondary uint16) {
	primary, secondary = d.PrimaryPref, d.SecondaryPref
	if primary == 0 && secondary == 0 {
		secondary = 15
	}
	return primary, secondary
}

// Zone builds the authoritative zone implementing the deployment.
func (d Deployment) Zone() (*dnsserver.Zone, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ttl := d.TTL
	if ttl == 0 {
		ttl = 300
	}
	pp, sp := d.prefs()
	z := dnsserver.NewZone(d.Domain)
	records := []dnsmsg.RR{
		{Name: d.Domain, Type: dnsmsg.TypeMX, TTL: ttl, Data: dnsmsg.MX{Preference: pp, Host: d.DeadHost}},
		{Name: d.Domain, Type: dnsmsg.TypeMX, TTL: ttl, Data: dnsmsg.MX{Preference: sp, Host: d.LiveHost}},
		{Name: d.DeadHost, Type: dnsmsg.TypeA, TTL: ttl, Data: dnsmsg.MustIPv4(d.DeadIP)},
		{Name: d.LiveHost, Type: dnsmsg.TypeA, TTL: ttl, Data: dnsmsg.MustIPv4(d.LiveIP)},
	}
	for _, rr := range records {
		if err := z.Add(rr); err != nil {
			return nil, err
		}
	}
	return z, nil
}

// Category is a Figure 2 domain classification.
type Category int

// Categories, in Figure 2's order.
const (
	// CatOneMX: the domain publishes a single (resolvable) MX record.
	CatOneMX Category = iota + 1
	// CatMultiMX: multiple MX records, primary reachable — no
	// nolisting.
	CatMultiMX
	// CatNolisting: primary consistently unreachable on port 25 while a
	// lower-priority server accepts connections.
	CatNolisting
	// CatMisconfigured: no MX record resolves to an address at all.
	CatMisconfigured
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatOneMX:
		return "one-mx"
	case CatMultiMX:
		return "multi-mx-no-nolisting"
	case CatNolisting:
		return "nolisting"
	case CatMisconfigured:
		return "dns-misconfigured"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// MXObservation is one MX record as seen by a scan: whether its target
// resolved (DNS dataset) and whether its address accepted a connection on
// port 25 (SMTP banner-grab dataset).
type MXObservation struct {
	Host      string
	Pref      uint16
	Resolved  bool
	Listening bool
}

// DomainObservation is everything one scan learned about a domain. MXs
// must be sorted by preference ascending (highest priority first);
// Normalize enforces this.
type DomainObservation struct {
	Domain string
	MXs    []MXObservation
}

// Normalize sorts the MX observations by preference (stable on host name).
func (o *DomainObservation) Normalize() {
	mxs := o.MXs
	for i := 1; i < len(mxs); i++ {
		for j := i; j > 0 && less(mxs[j], mxs[j-1]); j-- {
			mxs[j], mxs[j-1] = mxs[j-1], mxs[j]
		}
	}
}

func less(a, b MXObservation) bool {
	if a.Pref != b.Pref {
		return a.Pref < b.Pref
	}
	return a.Host < b.Host
}

// ClassifyDomain applies the single-scan part of the Section IV-A
// pipeline. A domain is a nolisting *candidate* when its highest-priority
// resolved MX is not listening while some lower-priority one is; a single
// scan cannot distinguish that from a transiently down primary.
//
// The classifier allocates nothing (it sorts o.MXs in place and walks it
// once), so the streaming scan pipeline can classify every domain as it
// is scanned without retaining observations.
func ClassifyDomain(o DomainObservation) Category {
	o.Normalize()
	nResolved := 0
	primaryListening := false
	lowerListening := false
	for _, mx := range o.MXs {
		if !mx.Resolved {
			continue
		}
		nResolved++
		if nResolved == 1 {
			primaryListening = mx.Listening
		} else if mx.Listening {
			lowerListening = true
		}
	}
	switch {
	case nResolved == 0:
		return CatMisconfigured
	case nResolved == 1:
		return CatOneMX
	case primaryListening:
		return CatMultiMX
	case lowerListening:
		return CatNolisting // candidate; confirm with FinalCategory
	default:
		return CatMultiMX // everything down: outage, not nolisting
	}
}

// FinalCategory combines two scans taken far apart (the paper used
// February 28 and April 25, 2015): a domain counts as nolisting only if
// the primary was dead and a secondary alive in BOTH scans — "if one
// domain had the primary email server operational in at least one of the
// two datasets, we concluded that it was not using nolisting".
func FinalCategory(first, second DomainObservation) Category {
	return FinalFromCategories(ClassifyDomain(first), ClassifyDomain(second))
}

// FinalFromCategories is the two-scan rule over already-computed
// single-scan categories. The streaming scan pipeline classifies each
// domain as it is scanned and joins the two scans' category records here
// — the full observations never need to be retained.
func FinalFromCategories(c1, c2 Category) Category {
	switch {
	case c1 == CatNolisting && c2 == CatNolisting:
		return CatNolisting
	case c1 == CatMisconfigured && c2 == CatMisconfigured:
		return CatMisconfigured
	case c1 == CatMisconfigured:
		return c2WithoutNolisting(c2)
	case c2 == CatMisconfigured:
		return c2WithoutNolisting(c1)
	case c1 == CatOneMX || c2 == CatOneMX:
		return CatOneMX
	default:
		// Any disagreement about nolisting means the primary worked at
		// least once: not nolisting.
		return CatMultiMX
	}
}

func c2WithoutNolisting(c Category) Category {
	if c == CatNolisting {
		// Only one scan supports it; not confirmed.
		return CatMultiMX
	}
	return c
}

// Behavior is Section IV-B's taxonomy of how a sender chooses among a
// domain's MX servers.
type Behavior int

// Behaviors.
const (
	// BehaviorRFCCompliant: contacts servers in priority order until
	// one accepts (Darkmailer in the paper's experiments).
	BehaviorRFCCompliant Behavior = iota + 1
	// BehaviorPrimaryOnly: only ever contacts the highest-priority
	// server (Kelihos) — the sender nolisting defeats.
	BehaviorPrimaryOnly
	// BehaviorSecondaryOnly: skips the primary entirely and contacts
	// the lowest-priority server (Cutwail) — the rumored "natural
	// reaction of malware writers to nolisting".
	BehaviorSecondaryOnly
	// BehaviorAllMX: contacts every server in random or systematic
	// (non-priority) order.
	BehaviorAllMX
	// BehaviorUnknown: the observations fit no category (e.g. the
	// sender contacted nothing).
	BehaviorUnknown
)

// String implements fmt.Stringer.
func (b Behavior) String() string {
	switch b {
	case BehaviorRFCCompliant:
		return "rfc-compliant"
	case BehaviorPrimaryOnly:
		return "primary-only"
	case BehaviorSecondaryOnly:
		return "secondary-only"
	case BehaviorAllMX:
		return "all-mx"
	case BehaviorUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Behavior(%d)", int(b))
	}
}

// DefeatedByNolisting reports whether a sender with this behavior fails to
// deliver against a nolisted domain (it never reaches the live secondary).
func (b Behavior) DefeatedByNolisting() bool { return b == BehaviorPrimaryOnly }

// ClassifyBehavior infers a sender's Behavior from the MX host list of the
// target domain (sorted by priority, highest first) and the ordered
// sequence of hosts the sender contacted, as recorded by the lab's DNS and
// connection logs.
func ClassifyBehavior(mxHosts []string, contacted []string) Behavior {
	if len(mxHosts) == 0 || len(contacted) == 0 {
		return BehaviorUnknown
	}
	distinct := make([]string, 0, len(contacted))
	seen := make(map[string]bool)
	known := make(map[string]bool, len(mxHosts))
	for _, h := range mxHosts {
		known[h] = true
	}
	for _, h := range contacted {
		if !known[h] {
			return BehaviorUnknown // contacted something off the MX list
		}
		if !seen[h] {
			seen[h] = true
			distinct = append(distinct, h)
		}
	}

	primary := mxHosts[0]
	lowest := mxHosts[len(mxHosts)-1]
	switch {
	case len(distinct) == 1 && distinct[0] == primary:
		return BehaviorPrimaryOnly
	case len(distinct) == 1 && distinct[0] == lowest:
		return BehaviorSecondaryOnly
	case len(distinct) == 1:
		return BehaviorAllMX // a single middle server: arbitrary choice
	}

	// Multiple servers contacted: compliant if the first contacts follow
	// priority order as a prefix of the MX list.
	inOrder := true
	for i, h := range distinct {
		if i >= len(mxHosts) || mxHosts[i] != h {
			inOrder = false
			break
		}
	}
	if inOrder {
		return BehaviorRFCCompliant
	}
	return BehaviorAllMX
}
