package nolist

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dnsmsg"
)

func validDeployment() Deployment {
	return Deployment{
		Domain:   "foo.net",
		DeadHost: "smtp.foo.net", DeadIP: "1.2.3.4",
		LiveHost: "smtp1.foo.net", LiveIP: "1.2.3.5",
	}
}

func TestDeploymentValidate(t *testing.T) {
	if err := validDeployment().Validate(); err != nil {
		t.Fatalf("valid deployment rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Deployment)
		name   string
	}{
		{func(d *Deployment) { d.Domain = "" }, "empty domain"},
		{func(d *Deployment) { d.DeadHost = "" }, "no dead host"},
		{func(d *Deployment) { d.LiveHost = "" }, "no live host"},
		{func(d *Deployment) { d.DeadIP = "bogus" }, "bad dead IP"},
		{func(d *Deployment) { d.LiveIP = "999.1.1.1" }, "bad live IP"},
		{func(d *Deployment) { d.PrimaryPref = 20; d.SecondaryPref = 10 }, "inverted prefs"},
		{func(d *Deployment) { d.PrimaryPref = 10; d.SecondaryPref = 10 }, "equal prefs"},
	}
	for _, tc := range cases {
		d := validDeployment()
		tc.mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad deployment", tc.name)
		}
	}
}

func TestDeploymentZone(t *testing.T) {
	z, err := validDeployment().Zone()
	if err != nil {
		t.Fatal(err)
	}
	mxs, exists := z.Lookup("foo.net", dnsmsg.TypeMX)
	if !exists || len(mxs) != 2 {
		t.Fatalf("MX records = %v", mxs)
	}
	prefs := map[uint16]string{}
	for _, rr := range mxs {
		mx := rr.Data.(dnsmsg.MX)
		prefs[mx.Preference] = mx.Host
	}
	if prefs[0] != "smtp.foo.net" || prefs[15] != "smtp1.foo.net" {
		t.Fatalf("MX layout = %v, want Figure 1's 0/15 split", prefs)
	}
	// Both hosts have A records: the "real machine with port 25 closed".
	for _, host := range []string{"smtp.foo.net", "smtp1.foo.net"} {
		if as, _ := z.Lookup(host, dnsmsg.TypeA); len(as) != 1 {
			t.Fatalf("A for %s = %v", host, as)
		}
	}
	bad := validDeployment()
	bad.DeadIP = "zzz"
	if _, err := bad.Zone(); err == nil {
		t.Fatal("Zone built from invalid deployment")
	}
}

func obs(domain string, mxs ...MXObservation) DomainObservation {
	return DomainObservation{Domain: domain, MXs: mxs}
}

func TestClassifyDomain(t *testing.T) {
	cases := []struct {
		name string
		o    DomainObservation
		want Category
	}{
		{"one MX up", obs("a", MXObservation{Host: "m1", Pref: 10, Resolved: true, Listening: true}), CatOneMX},
		{"one MX down", obs("a", MXObservation{Host: "m1", Pref: 10, Resolved: true}), CatOneMX},
		{"none resolved", obs("a", MXObservation{Host: "m1", Pref: 10}), CatMisconfigured},
		{"no MX at all", obs("a"), CatMisconfigured},
		{"multi primary up", obs("a",
			MXObservation{Host: "m1", Pref: 0, Resolved: true, Listening: true},
			MXObservation{Host: "m2", Pref: 15, Resolved: true, Listening: true}), CatMultiMX},
		{"nolisting candidate", obs("a",
			MXObservation{Host: "dead", Pref: 0, Resolved: true, Listening: false},
			MXObservation{Host: "live", Pref: 15, Resolved: true, Listening: true}), CatNolisting},
		{"all down outage", obs("a",
			MXObservation{Host: "m1", Pref: 0, Resolved: true},
			MXObservation{Host: "m2", Pref: 15, Resolved: true}), CatMultiMX},
		{"unresolved primary ignored", obs("a",
			MXObservation{Host: "ghost", Pref: 0, Resolved: false},
			MXObservation{Host: "m2", Pref: 15, Resolved: true, Listening: true}), CatOneMX},
		{"three-tier nolisting", obs("a",
			MXObservation{Host: "dead", Pref: 0, Resolved: true, Listening: false},
			MXObservation{Host: "mid", Pref: 10, Resolved: true, Listening: false},
			MXObservation{Host: "live", Pref: 20, Resolved: true, Listening: true}), CatNolisting},
	}
	for _, tc := range cases {
		if got := ClassifyDomain(tc.o); got != tc.want {
			t.Errorf("%s: ClassifyDomain = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifyDomainUnsortedInput(t *testing.T) {
	// Records arrive in DNS answer order, not priority order; the
	// classifier must sort.
	o := obs("a",
		MXObservation{Host: "live", Pref: 15, Resolved: true, Listening: true},
		MXObservation{Host: "dead", Pref: 0, Resolved: true, Listening: false})
	if got := ClassifyDomain(o); got != CatNolisting {
		t.Fatalf("ClassifyDomain(unsorted) = %v, want nolisting", got)
	}
}

func TestFinalCategoryTwoScanRule(t *testing.T) {
	nolisting := obs("a",
		MXObservation{Host: "dead", Pref: 0, Resolved: true, Listening: false},
		MXObservation{Host: "live", Pref: 15, Resolved: true, Listening: true})
	primaryUp := obs("a",
		MXObservation{Host: "dead", Pref: 0, Resolved: true, Listening: true},
		MXObservation{Host: "live", Pref: 15, Resolved: true, Listening: true})
	misconf := obs("a", MXObservation{Host: "ghost", Pref: 0})
	oneMX := obs("a", MXObservation{Host: "m1", Pref: 10, Resolved: true, Listening: true})

	cases := []struct {
		name   string
		s1, s2 DomainObservation
		want   Category
	}{
		{"confirmed nolisting", nolisting, nolisting, CatNolisting},
		{"transient outage scan1", nolisting, primaryUp, CatMultiMX},
		{"transient outage scan2", primaryUp, nolisting, CatMultiMX},
		{"healthy both", primaryUp, primaryUp, CatMultiMX},
		{"misconf both", misconf, misconf, CatMisconfigured},
		{"misconf once then healthy", misconf, primaryUp, CatMultiMX},
		{"misconf once then nolisting-candidate", misconf, nolisting, CatMultiMX},
		{"one MX", oneMX, oneMX, CatOneMX},
	}
	for _, tc := range cases {
		if got := FinalCategory(tc.s1, tc.s2); got != tc.want {
			t.Errorf("%s: FinalCategory = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	for c := CatOneMX; c <= CatMisconfigured; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "Category(") {
			t.Errorf("Category(%d).String() = %q", c, s)
		}
	}
}

func TestClassifyBehavior(t *testing.T) {
	mxs := []string{"mx0", "mx1", "mx2"} // priority order
	cases := []struct {
		name      string
		contacted []string
		want      Behavior
	}{
		{"primary only", []string{"mx0", "mx0", "mx0"}, BehaviorPrimaryOnly},
		{"secondary only", []string{"mx2"}, BehaviorSecondaryOnly},
		{"rfc compliant", []string{"mx0", "mx1", "mx2"}, BehaviorRFCCompliant},
		{"rfc compliant prefix", []string{"mx0", "mx1"}, BehaviorRFCCompliant},
		{"all mx random", []string{"mx1", "mx0", "mx2"}, BehaviorAllMX},
		{"middle only", []string{"mx1"}, BehaviorAllMX},
		{"reverse order", []string{"mx2", "mx1", "mx0"}, BehaviorAllMX},
		{"nothing contacted", nil, BehaviorUnknown},
		{"off-list host", []string{"elsewhere"}, BehaviorUnknown},
	}
	for _, tc := range cases {
		if got := ClassifyBehavior(mxs, tc.contacted); got != tc.want {
			t.Errorf("%s: ClassifyBehavior = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassifyBehaviorTwoMX(t *testing.T) {
	// With exactly two MX hosts (the common nolisting layout), the
	// paper's four categories reduce cleanly.
	mxs := []string{"primary", "secondary"}
	if got := ClassifyBehavior(mxs, []string{"primary"}); got != BehaviorPrimaryOnly {
		t.Errorf("primary-only = %v", got)
	}
	if got := ClassifyBehavior(mxs, []string{"secondary"}); got != BehaviorSecondaryOnly {
		t.Errorf("secondary-only = %v", got)
	}
	if got := ClassifyBehavior(mxs, []string{"primary", "secondary"}); got != BehaviorRFCCompliant {
		t.Errorf("compliant = %v", got)
	}
	if got := ClassifyBehavior(mxs, []string{"secondary", "primary"}); got != BehaviorAllMX {
		t.Errorf("reverse = %v", got)
	}
}

func TestDefeatedByNolisting(t *testing.T) {
	if !BehaviorPrimaryOnly.DefeatedByNolisting() {
		t.Error("primary-only must be defeated by nolisting (the Kelihos result)")
	}
	for _, b := range []Behavior{BehaviorSecondaryOnly, BehaviorRFCCompliant, BehaviorAllMX} {
		if b.DefeatedByNolisting() {
			t.Errorf("%v wrongly defeated by nolisting", b)
		}
	}
}

func TestBehaviorStrings(t *testing.T) {
	for b := BehaviorRFCCompliant; b <= BehaviorUnknown; b++ {
		if s := b.String(); s == "" || strings.HasPrefix(s, "Behavior(") {
			t.Errorf("Behavior(%d).String() = %q", b, s)
		}
	}
}

// Property: classification is invariant under permutation of the MX
// observation order (the scanner sees records in arbitrary DNS order).
func TestClassifyDomainOrderInvariant(t *testing.T) {
	f := func(seed uint8) bool {
		mxs := []MXObservation{
			{Host: "a", Pref: 0, Resolved: true, Listening: seed&1 != 0},
			{Host: "b", Pref: 10, Resolved: seed&2 != 0, Listening: seed&4 != 0},
			{Host: "c", Pref: 20, Resolved: true, Listening: seed&8 != 0},
		}
		want := ClassifyDomain(obs("d", mxs[0], mxs[1], mxs[2]))
		perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
		for _, p := range perms {
			got := ClassifyDomain(obs("d", mxs[p[0]], mxs[p[1]], mxs[p[2]]))
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
