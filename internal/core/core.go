// Package core ties the substrates together into the object the whole
// reproduction revolves around: a Domain — a mail domain deployed on the
// simulated Internet with a configurable combination of the paper's two
// defenses:
//
//   - Nolisting (Section II): the domain's DNS zone advertises a primary
//     MX whose host resolves but runs no SMTP listener, plus a working
//     secondary. Compliant senders fall through to the secondary; primary-
//     only bots fail.
//   - Greylisting (Section II): the working server defers the first
//     delivery attempt of every unknown (client IP, sender, recipient)
//     triplet with "451 4.7.1" and accepts a retry after the threshold.
//
// The recipient check deliberately runs BEFORE greylisting, because, as
// Section II notes, "email servers are typically configured to refuse
// messages for non-existing recipients before applying greylisting" —
// which is exactly what makes greylisting adoption unmeasurable from the
// outside.
//
// A Domain records every delivery, deferral and rejection with virtual
// timestamps; the lab (Table II, Figures 3-4), the benign-mail experiments
// (Figure 5, Table III) and the examples all read those logs.
package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dnsserver"
	"repro/internal/greylist"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/nolist"
	"repro/internal/simtime"
	"repro/internal/smtpproto"
	"repro/internal/smtpserver"
	"repro/internal/trace"
)

// Defense selects which protections a Domain deploys.
type Defense int

// Defense combinations, as compared throughout the paper's evaluation.
const (
	DefenseNone Defense = iota
	DefenseNolisting
	DefenseGreylisting
	// DefenseBoth is the paper's Section VI recommendation: "using both
	// techniques together is a very effective way to protect against
	// the majority of spam".
	DefenseBoth
)

// String implements fmt.Stringer.
func (d Defense) String() string {
	switch d {
	case DefenseNone:
		return "none"
	case DefenseNolisting:
		return "nolisting"
	case DefenseGreylisting:
		return "greylisting"
	case DefenseBoth:
		return "nolisting+greylisting"
	default:
		return fmt.Sprintf("Defense(%d)", int(d))
	}
}

// Nolisting reports whether the defense includes nolisting.
func (d Defense) Nolisting() bool { return d == DefenseNolisting || d == DefenseBoth }

// Greylisting reports whether the defense includes greylisting.
func (d Defense) Greylisting() bool { return d == DefenseGreylisting || d == DefenseBoth }

// Config describes a defended domain.
type Config struct {
	// Domain is the mail domain ("foo.net").
	Domain string
	// PrimaryIP is the primary MX host's address. Under nolisting this
	// host has no SMTP listener; otherwise it runs one.
	PrimaryIP string
	// SecondaryIP is the secondary MX host's address; it always runs a
	// listener. Empty means a single-MX domain (and is incompatible
	// with nolisting).
	SecondaryIP string
	// Defense selects the protections.
	Defense Defense
	// GreylistPolicy configures greylisting when enabled; the zero
	// value means greylist.DefaultPolicy().
	GreylistPolicy greylist.Policy
	// GreylistShards selects a sharded store when > 1 (lower lock
	// contention at high connection rates); <= 1 means a single store.
	GreylistShards int
	// BypassStages are evaluated ahead of the triplet check, after the
	// engine's own whitelist stage (SPF re-keying, DNSWL, rDNS — see
	// internal/bypass). Empty means the default whitelist-only chain.
	BypassStages []greylist.Stage
	// Users lists the valid local parts ("alice"); empty accepts any
	// recipient. Unknown recipients get "550 5.1.1" before greylisting.
	Users []string
	// UnprotectedRecipients are local parts exempt from greylisting —
	// the paper's postmaster control addresses.
	UnprotectedRecipients []string
	// TTL for the zone records; 0 means 300.
	TTL uint32
}

// Deps are the environment a Domain deploys into.
type Deps struct {
	// Net is the simulated Internet.
	Net *netsim.Network
	// DNS is the authoritative server to register the zone with.
	DNS *dnsserver.Server
	// Clock stamps all events; nil means real time.
	Clock simtime.Clock
}

// Delivery is one accepted message.
type Delivery struct {
	// At is the acceptance time.
	At time.Time
	// ClientIP, Sender, Recipients, Data mirror the SMTP envelope.
	ClientIP   string
	Sender     string
	Recipients []string
	Data       []byte
	// Host is the MX host name that accepted the message.
	Host string
}

// Deferral is one greylisting deferral event.
type Deferral struct {
	At      time.Time
	Triplet greylist.Triplet
	// WaitRemaining is how long until a retry would have been accepted.
	WaitRemaining time.Duration
}

// Rejection is one permanently rejected recipient.
type Rejection struct {
	At        time.Time
	ClientIP  string
	Sender    string
	Recipient string
	Code      int
}

// Domain is a deployed, defended mail domain.
type Domain struct {
	cfg   Config
	deps  Deps
	clock simtime.Clock

	greylister greylist.Engine
	users      map[string]bool

	mu         sync.Mutex
	inbox      []Delivery
	deferrals  []Deferral
	rejections []Rejection

	servers   []*smtpserver.Server
	listeners []*netsim.Listener
}

// Hostnames used for the MX records.
func primaryHost(domain string) string   { return "mx1." + domain }
func secondaryHost(domain string) string { return "mx2." + domain }

// PrimaryHost returns the primary MX host name of the domain.
func (d *Domain) PrimaryHost() string { return primaryHost(d.cfg.Domain) }

// SecondaryHost returns the secondary MX host name ("" for single-MX).
func (d *Domain) SecondaryHost() string {
	if d.cfg.SecondaryIP == "" {
		return ""
	}
	return secondaryHost(d.cfg.Domain)
}

// MXHosts returns the domain's MX host names in priority order.
func (d *Domain) MXHosts() []string {
	hosts := []string{d.PrimaryHost()}
	if s := d.SecondaryHost(); s != "" {
		hosts = append(hosts, s)
	}
	return hosts
}

// New deploys a defended domain: registers its DNS zone and starts SMTP
// listeners on the live hosts.
func New(cfg Config, deps Deps) (*Domain, error) {
	if cfg.Domain == "" {
		return nil, errors.New("core: empty domain")
	}
	if deps.Net == nil || deps.DNS == nil {
		return nil, errors.New("core: Net and DNS are required")
	}
	if cfg.PrimaryIP == "" {
		return nil, fmt.Errorf("core: %s: primary IP required", cfg.Domain)
	}
	if cfg.Defense.Nolisting() && cfg.SecondaryIP == "" {
		return nil, fmt.Errorf("core: %s: nolisting requires a secondary MX", cfg.Domain)
	}
	clock := deps.Clock
	if clock == nil {
		clock = simtime.Real{}
	}

	d := &Domain{cfg: cfg, deps: deps, clock: clock}
	if len(cfg.Users) > 0 {
		d.users = make(map[string]bool, len(cfg.Users))
		for _, u := range cfg.Users {
			d.users[strings.ToLower(u)] = true
		}
	}

	if cfg.Defense.Greylisting() {
		policy := cfg.GreylistPolicy
		if policy == (greylist.Policy{}) {
			policy = greylist.DefaultPolicy()
		}
		if cfg.GreylistShards > 1 {
			d.greylister = greylist.NewSharded(cfg.GreylistShards, policy, clock)
		} else {
			d.greylister = greylist.New(policy, clock)
		}
		for _, u := range cfg.UnprotectedRecipients {
			d.greylister.Whitelist().AddRecipient(strings.ToLower(u) + "@" + cfg.Domain)
		}
		if len(cfg.BypassStages) > 0 {
			stages := append([]greylist.Stage{greylist.WhitelistStage(d.greylister.Whitelist())},
				cfg.BypassStages...)
			d.greylister.SetChain(greylist.NewChain(stages...))
		}
	}

	if err := d.registerZone(); err != nil {
		return nil, err
	}
	if err := d.startServers(); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

func (d *Domain) registerZone() error {
	cfg := d.cfg
	if cfg.Defense.Nolisting() {
		dep := nolist.Deployment{
			Domain:   cfg.Domain,
			DeadHost: primaryHost(cfg.Domain), DeadIP: cfg.PrimaryIP,
			LiveHost: secondaryHost(cfg.Domain), LiveIP: cfg.SecondaryIP,
			TTL: cfg.TTL,
		}
		zone, err := dep.Zone()
		if err != nil {
			return err
		}
		d.deps.DNS.AddZone(zone)
		return nil
	}
	// Conventional layout: primary live, optional secondary live.
	ttl := cfg.TTL
	if ttl == 0 {
		ttl = 300
	}
	zone := dnsserver.NewZone(cfg.Domain)
	if err := addMX(zone, cfg.Domain, primaryHost(cfg.Domain), cfg.PrimaryIP, 0, ttl); err != nil {
		return err
	}
	if cfg.SecondaryIP != "" {
		if err := addMX(zone, cfg.Domain, secondaryHost(cfg.Domain), cfg.SecondaryIP, 15, ttl); err != nil {
			return err
		}
	}
	d.deps.DNS.AddZone(zone)
	return nil
}

func (d *Domain) startServers() error {
	cfg := d.cfg
	type mx struct {
		host string
		ip   string
	}
	var live []mx
	if cfg.Defense.Nolisting() {
		live = []mx{{secondaryHost(cfg.Domain), cfg.SecondaryIP}}
	} else {
		live = []mx{{primaryHost(cfg.Domain), cfg.PrimaryIP}}
		if cfg.SecondaryIP != "" {
			live = append(live, mx{secondaryHost(cfg.Domain), cfg.SecondaryIP})
		}
	}
	for _, m := range live {
		addr := m.ip + ":25"
		l, err := d.deps.Net.Listen(addr)
		if err != nil {
			return fmt.Errorf("core: %s: %w", cfg.Domain, err)
		}
		host := m.host
		srv := smtpserver.New(smtpserver.Config{
			Hostname: host,
			Clock:    d.clock,
			Hooks: smtpserver.Hooks{
				OnRcptTraced: d.onRcpt,
				OnMessage:    d.onMessage(host),
			},
		})
		d.servers = append(d.servers, srv)
		d.listeners = append(d.listeners, l)
		go srv.Serve(l)
	}
	return nil
}

// onRcpt enforces recipient validity first (the pre-greylisting 550 the
// paper leans on in Section II), then greylisting. tr is the session's
// trace handle — nil on untraced sessions — so traced runs see the
// greylist verdict (triplet key, reason, wait state) inline with the
// SMTP conversation.
func (d *Domain) onRcpt(tr *trace.Trace, clientIP, sender, recipient string) *smtpproto.Reply {
	if smtpproto.DomainOf(recipient) != strings.ToLower(d.cfg.Domain) {
		return d.reject(clientIP, sender, recipient, 550, "5.7.1", "Relay access denied")
	}
	if d.users != nil {
		local := strings.ToLower(recipient[:strings.LastIndexByte(recipient, '@')])
		if !d.users[local] && !d.isUnprotected(local) {
			return d.reject(clientIP, sender, recipient, 550, "5.1.1", "No such user")
		}
	}
	if d.greylister == nil {
		return nil
	}
	trip := greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: recipient}
	var verdict greylist.Verdict
	if tc, ok := d.greylister.(greylist.TracedChecker); ok {
		verdict = tc.CheckTraced(trip, tr)
	} else {
		verdict = d.greylister.Check(trip)
	}
	if verdict.Decision == greylist.Pass {
		return nil
	}
	d.mu.Lock()
	d.deferrals = append(d.deferrals, Deferral{
		At:            d.clock.Now(),
		Triplet:       greylist.Triplet{ClientIP: clientIP, Sender: sender, Recipient: recipient},
		WaitRemaining: verdict.WaitRemaining,
	})
	d.mu.Unlock()
	r := smtpproto.NewReply(451, "4.7.1", "Greylisted, please try again later")
	return &r
}

func (d *Domain) isUnprotected(local string) bool {
	for _, u := range d.cfg.UnprotectedRecipients {
		if strings.EqualFold(u, local) {
			return true
		}
	}
	return false
}

func (d *Domain) reject(clientIP, sender, recipient string, code int, enhanced, text string) *smtpproto.Reply {
	d.mu.Lock()
	d.rejections = append(d.rejections, Rejection{
		At: d.clock.Now(), ClientIP: clientIP, Sender: sender, Recipient: recipient, Code: code,
	})
	d.mu.Unlock()
	r := smtpproto.NewReply(code, enhanced, text)
	return &r
}

func (d *Domain) onMessage(host string) func(*smtpserver.Envelope) *smtpproto.Reply {
	return func(env *smtpserver.Envelope) *smtpproto.Reply {
		d.mu.Lock()
		defer d.mu.Unlock()
		d.inbox = append(d.inbox, Delivery{
			At:         env.ReceivedAt,
			ClientIP:   env.ClientIP,
			Sender:     env.Sender,
			Recipients: env.Recipients,
			Data:       env.Data,
			Host:       host,
		})
		return nil
	}
}

// Inbox returns a copy of all accepted deliveries.
func (d *Domain) Inbox() []Delivery {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Delivery(nil), d.inbox...)
}

// InboxTo returns accepted deliveries addressed to the given recipient.
func (d *Domain) InboxTo(recipient string) []Delivery {
	var out []Delivery
	for _, del := range d.Inbox() {
		for _, r := range del.Recipients {
			if strings.EqualFold(r, recipient) {
				out = append(out, del)
				break
			}
		}
	}
	return out
}

// Deferrals returns a copy of all greylisting deferral events.
func (d *Domain) Deferrals() []Deferral {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Deferral(nil), d.deferrals...)
}

// Rejections returns a copy of all permanent recipient rejections.
func (d *Domain) Rejections() []Rejection {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Rejection(nil), d.rejections...)
}

// Greylister exposes the greylisting engine (nil when disabled).
func (d *Domain) Greylister() greylist.Engine { return d.greylister }

// Register exports the domain's observability surface into reg: the
// greylisting engine (when the defense includes greylisting) and each MX
// host's SMTP server, labelled host="mx1.domain" etc. The shared DNS
// server in Deps is not registered here — it serves many domains, so the
// owner of the registry decides whether to include it.
func (d *Domain) Register(reg *metrics.Registry) {
	if d.greylister != nil {
		d.greylister.Register(reg)
	}
	for _, srv := range d.servers {
		srv.Register(reg, "host", srv.Hostname())
	}
}

// Config returns the domain's configuration.
func (d *Domain) Config() Config { return d.cfg }

// ClearLogs resets the recorded deliveries/deferrals/rejections (between
// experiment phases) without touching greylisting state.
func (d *Domain) ClearLogs() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inbox = nil
	d.deferrals = nil
	d.rejections = nil
}

// Close stops the SMTP servers and removes the zone.
func (d *Domain) Close() error {
	// Close the listeners directly: the Serve goroutines may not have
	// registered them with their servers yet.
	for _, l := range d.listeners {
		l.Close()
	}
	d.listeners = nil
	for _, s := range d.servers {
		s.Close()
	}
	d.servers = nil
	d.deps.DNS.RemoveZone(d.cfg.Domain)
	return nil
}

// addMX registers an MX record and its host's A record in zone.
func addMX(zone *dnsserver.Zone, domain, host, ip string, pref uint16, ttl uint32) error {
	a, err := dnsmsg.ParseIPv4(ip)
	if err != nil {
		return fmt.Errorf("core: %s: %w", domain, err)
	}
	if err := zone.Add(dnsmsg.RR{Name: domain, Type: dnsmsg.TypeMX, TTL: ttl,
		Data: dnsmsg.MX{Preference: pref, Host: host}}); err != nil {
		return err
	}
	return zone.Add(dnsmsg.RR{Name: host, Type: dnsmsg.TypeA, TTL: ttl, Data: a})
}
